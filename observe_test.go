package graphrealize

import (
	"testing"
	"time"
)

// TestRunnerObsInstruments pins the executeAdmitted instrumentation: an
// executed job lands in the latency histograms, its engine rounds feed the
// submitted driver's phase profile, and the flight recorder retains the
// job's trace ID and phase breakdown.
func TestRunnerObsInstruments(t *testing.T) {
	r := NewRunner(2)
	j := Job{
		Kind:    JobDegrees,
		Seq:     []int{3, 3, 2, 2, 2, 2},
		Opt:     &Options{Seed: 11, Scheduler: PoolScheduler},
		Label:   "obs-test",
		TraceID: "trace-abc",
	}
	res := <-r.Submit(j)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.Job.TraceID != "trace-abc" {
		t.Fatalf("TraceID not preserved on Result.Job: %q", res.Job.TraceID)
	}

	o := r.Obs()
	if got := o.Run.Snapshot().Count; got != 1 {
		t.Fatalf("run histogram count = %d, want 1", got)
	}
	if got := o.QueueWait.Snapshot().Count; got != 1 {
		t.Fatalf("queue-wait histogram count = %d, want 1", got)
	}
	pool := o.SchedProfile(PoolScheduler).Snapshot()
	if pool.Rounds == 0 {
		t.Fatal("pool phase profile recorded no rounds")
	}
	if total := pool.Compute + pool.Delivery + pool.Barrier; total <= 0 {
		t.Fatalf("pool phase time = %v, want > 0", total)
	}
	if other := o.SchedProfile(BarrierScheduler).Snapshot(); other.Rounds != 0 {
		t.Fatalf("barrier profile recorded %d rounds for a pool job", other.Rounds)
	}

	slow := o.Recorder.Slowest()
	if len(slow) != 1 {
		t.Fatalf("flight recorder holds %d entries, want 1", len(slow))
	}
	e := slow[0]
	if e.TraceID != "trace-abc" || e.Kind != "degrees" || e.Label != "obs-test" ||
		e.Scheduler != "pool" || e.N != 6 || e.Seed != 11 {
		t.Fatalf("flight entry fields wrong: %+v", e)
	}
	if e.Rounds != pool.Rounds {
		t.Fatalf("flight entry rounds %d != profile rounds %d", e.Rounds, pool.Rounds)
	}
	if e.Run <= 0 || e.Err != "" {
		t.Fatalf("flight entry run/err wrong: %+v", e)
	}

	// A cache hit is served without execution: no new histogram samples, no
	// new flight entry, and the submitter's own Profile hook never fires.
	profiled := 0
	j2 := j
	opt := *j.Opt
	opt.Profile = func(c, d, b time.Duration) { profiled++ }
	j2.Opt = &opt
	res2 := <-r.Submit(j2)
	if res2.Err != nil || !res2.Cached {
		t.Fatalf("second submit: err=%v cached=%v, want cached hit", res2.Err, res2.Cached)
	}
	if profiled != 0 {
		t.Fatalf("cache hit fired the Profile hook %d times", profiled)
	}
	if got := o.Run.Snapshot().Count; got != 1 {
		t.Fatalf("cache hit added a run histogram sample (count %d)", got)
	}
	if got := len(o.Recorder.Slowest()); got != 1 {
		t.Fatalf("cache hit added a flight entry (%d total)", got)
	}
}

// TestRunnerObsChainsCallerProfile pins that the Runner's instrumentation
// hook chains — not replaces — a caller-supplied Options.Profile.
func TestRunnerObsChainsCallerProfile(t *testing.T) {
	r := NewRunner(1)
	calls := 0
	var total time.Duration
	j := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{
		Seed:    3,
		Profile: func(c, d, b time.Duration) { calls++; total += c + d + b },
	}}
	if res := <-r.Submit(j); res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if calls == 0 {
		t.Fatal("caller Profile hook never fired")
	}
	prof := r.Obs().SchedProfile(BarrierScheduler).Snapshot()
	if int64(calls) != prof.Rounds {
		t.Fatalf("caller saw %d rounds, profile recorded %d", calls, prof.Rounds)
	}
	if total <= 0 {
		t.Fatalf("caller accumulated %v phase time, want > 0", total)
	}
}
