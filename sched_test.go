package graphrealize

import (
	"reflect"
	"testing"
)

// sched_test.go pins the facade-level scheduler contract: the driver in
// Options.Scheduler never changes a realization's outcome, and driver
// selection is part of the Runner's cache identity.

// realizeKind dispatches one (kind, seq, opt) through Execute's switch — the
// same path the Runner uses — and returns the Result.
func conformanceJobs() []Job {
	return []Job{
		{Kind: JobDegrees, Seq: []int{4, 3, 3, 2, 2, 2, 2, 2}, Opt: &Options{Seed: 3}},
		{Kind: JobDegreesExplicit, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: &Options{Seed: 5}},
		{Kind: JobUpperEnvelope, Seq: []int{9, 1, 1, 1}, Opt: &Options{Seed: 7}},
		{Kind: JobChainTree, Seq: []int{3, 2, 2, 1, 1, 1, 1, 1}, Opt: &Options{Seed: 9}},
		{Kind: JobMinDiamTree, Seq: []int{3, 2, 2, 1, 1, 1, 1, 1}, Opt: &Options{Seed: 11}},
		{Kind: JobConnectivity, Seq: []int{2, 2, 2, 2, 1, 1}, Opt: &Options{Seed: 13, Model: NCC1}},
		{Kind: JobConnectivity, Seq: []int{2, 2, 2, 2, 1, 1}, Opt: &Options{Seed: 13}},
		// A run that fails deterministically must fail identically too.
		{Kind: JobDegrees, Seq: []int{5, 1}, Opt: &Options{Seed: 1}},
	}
}

// TestSchedulerFacadeConformance runs every job kind under all three drivers
// and requires identical graphs, stats, envelopes, and errors.
func TestSchedulerFacadeConformance(t *testing.T) {
	for _, base := range conformanceJobs() {
		barrier := base
		bOpt := *base.Opt
		bOpt.Scheduler = BarrierScheduler
		barrier.Opt = &bOpt

		rb := Execute(t.Context(), barrier)
		label := base.Kind.String()
		for _, sched := range []Scheduler{PoolScheduler, FlatScheduler} {
			other := base
			oOpt := *base.Opt
			oOpt.Scheduler = sched
			other.Opt = &oOpt

			ro := Execute(t.Context(), other)
			if (rb.Err == nil) != (ro.Err == nil) || (rb.Err != nil && rb.Err.Error() != ro.Err.Error()) {
				t.Fatalf("%s: errors differ: barrier=%v %s=%v", label, rb.Err, sched, ro.Err)
			}
			if rb.Err != nil {
				continue
			}
			if !reflect.DeepEqual(rb.Stats, ro.Stats) {
				t.Fatalf("%s: stats differ:\nbarrier %+v\n%s %+v", label, rb.Stats, sched, ro.Stats)
			}
			if !reflect.DeepEqual(rb.Graph.Edges(), ro.Graph.Edges()) {
				t.Fatalf("%s vs %s: edge lists differ", label, sched)
			}
			if !reflect.DeepEqual(rb.Envelope, ro.Envelope) {
				t.Fatalf("%s vs %s: envelopes differ", label, sched)
			}
		}
	}
}

// TestSchedulerIsPartOfCacheKey: a pool submission must not be served by a
// cached barrier run (and vice versa) — the driver namespaces are separate so
// Cached flags stay predictable for benchmarks and conformance checks.
func TestSchedulerIsPartOfCacheKey(t *testing.T) {
	r := NewRunner(2)
	barrier := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 4}}
	pool := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 4, Scheduler: PoolScheduler}}

	if res := <-r.Submit(barrier); res.Err != nil || res.Cached {
		t.Fatalf("first barrier run: err=%v cached=%v", res.Err, res.Cached)
	}
	if res := <-r.Submit(pool); res.Err != nil {
		t.Fatalf("pool run: %v", res.Err)
	} else if res.Cached {
		t.Fatal("pool submission must not be served from the barrier run's cache entry")
	}
	if res := <-r.Submit(pool); !res.Cached {
		t.Fatal("second pool submission must hit the pool entry")
	}
	if res := <-r.Submit(barrier); !res.Cached {
		t.Fatal("barrier entry must still be cached separately")
	}
	flat := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 4, Scheduler: FlatScheduler}}
	if res := <-r.Submit(flat); res.Err != nil {
		t.Fatalf("flat run: %v", res.Err)
	} else if res.Cached {
		t.Fatal("flat submission must not be served from another driver's cache entry")
	}
}
