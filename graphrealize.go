// Package graphrealize is a Go implementation of "Distributed Graph
// Realizations" (Augustine, Choudhary, Cohen, Peleg, Sivasubramaniam,
// Sourav — IPDPS 2020): distributed construction of overlay networks that
// realize degree sequences, tree degree sequences, and pairwise
// edge-connectivity thresholds in the Node Capacitated Clique (NCC) model.
//
// The package is a facade over an executable NCC simulator: every call
// spins up n protocol goroutines (one per simulated node), runs the paper's
// distributed algorithm under the model's knowledge and capacity rules, and
// returns the realized overlay together with the round/message statistics
// that are the paper's figures of merit.
//
//	g, stats, err := graphrealize.RealizeDegrees([]int{3, 3, 2, 2, 2, 2}, nil)
//	// g.Adj is the realized overlay; stats.Rounds its round complexity.
//
// The heavy lifting lives in internal packages: internal/ncc (the model),
// internal/primitives and internal/aggregate (§3 toolbox), internal/core
// (§4 degree realization), internal/trees (§5), internal/connectivity (§6),
// and internal/seq (sequential baselines). See DESIGN.md for the map.
package graphrealize

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"graphrealize/internal/connectivity"
	"graphrealize/internal/core"
	"graphrealize/internal/gen"
	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
	"graphrealize/internal/trees"
)

// Model selects the NCC knowledge variant (§2 of the paper).
type Model int

const (
	// NCC0 gives each node only its successor in the knowledge path Gk.
	NCC0 Model = iota
	// NCC1 gives every node all IDs (the SPAA'19 NCC model).
	NCC1
)

// Scheduler selects the simulator's concurrency driver. All drivers produce
// byte-identical results for the same Options; they differ only in how node
// protocols are suspended and resumed, i.e. in speed and in how heavily a
// run leans on the Go runtime scheduler.
type Scheduler int

const (
	// BarrierScheduler makes every released node's goroutine runnable at
	// once each round — the default, and the reference driver.
	BarrierScheduler Scheduler = iota
	// PoolScheduler multiplexes node run-slices onto GOMAXPROCS workers in
	// bounded batches, keeping the runnable set small regardless of n. Pick
	// it for large simulations or when many jobs share one process.
	PoolScheduler
	// FlatScheduler runs the whole simulation with zero per-node goroutines:
	// protocols execute as resumable state machines stepped by a tight loop
	// over the runnable set. Fastest driver and the highest concurrent-job
	// ceiling; see DESIGN.md §2.
	FlatScheduler
)

// String returns the stable driver name used in flags and wire formats.
func (s Scheduler) String() string {
	switch s {
	case PoolScheduler:
		return "pool"
	case FlatScheduler:
		return "flat"
	default:
		return "barrier"
	}
}

// ParseScheduler resolves a driver name as used in flags and wire formats,
// case-insensitively; the empty string selects the default (barrier). It is
// the single parser shared by the HTTP layer and every CLI so the accepted
// spellings cannot drift apart.
func ParseScheduler(s string) (Scheduler, error) {
	switch strings.ToLower(s) {
	case "", "barrier":
		return BarrierScheduler, nil
	case "pool":
		return PoolScheduler, nil
	case "flat":
		return FlatScheduler, nil
	default:
		return 0, fmt.Errorf("graphrealize: unknown scheduler %q (want barrier, pool or flat)", s)
	}
}

// SortMethod selects the §3.1.2 sorting implementation used inside the
// realization algorithms.
type SortMethod int

const (
	// OracleSort executes the sort centrally and charges the Theorem 3
	// round bound ⌈log₂ n⌉³ — the default, keeping large runs fast while
	// round accounting stays faithful.
	OracleSort SortMethod = iota
	// OddEvenSort runs a real O(n)-round transposition sort protocol (the
	// naive baseline ablation).
	OddEvenSort
	// MergeSort runs the paper's real O(log³ n) merge-sort protocol
	// (Algorithm 2 / Theorem 3).
	MergeSort
)

// Options tunes a realization run. The zero value (or nil) is a sensible
// default: NCC0, seed 0, strict capacity checking off, oracle sorting.
type Options struct {
	// Model is the knowledge variant to run under.
	Model Model
	// Seed makes runs deterministic; different seeds vary IDs, the Gk
	// permutation and the protocols' internal randomness.
	Seed int64
	// Strict turns capacity violations into errors instead of statistics.
	Strict bool
	// CapMul scales the per-round message budget (default 8·⌈log₂ n⌉).
	CapMul int
	// Sort selects the sorting subroutine implementation.
	Sort SortMethod
	// MaxRounds aborts runaway protocols (default 50M).
	MaxRounds int
	// Progress, when non-nil, receives (rounds completed, messages delivered)
	// at every round barrier of the run — the hook long-running services use
	// to stream round-level progress. It is invoked from the simulation's
	// driver goroutine and must be fast and non-blocking. Progress does not
	// affect the result and is excluded from Runner cache keys: a job served
	// from the cache completes without any progress callbacks.
	Progress func(round, msgs int)
	// Profile, when non-nil, receives every completed round's wall-time split
	// into compute, delivery, and barrier phases — the observability hook the
	// server uses to feed per-driver phase histograms. Like Progress it runs
	// on the simulation's driver goroutine, must be fast, never affects the
	// result (timings stay out of Stats and traces), and is excluded from
	// Runner cache keys: a job served from the cache reports no phases.
	Profile func(compute, delivery, barrier time.Duration)
	// Scheduler selects the simulator's concurrency driver. The choice never
	// affects the result — only execution speed and memory behaviour.
	Scheduler Scheduler
}

// Stats reports the cost of a run in the NCC model's currency.
type Stats struct {
	N             int   // nodes
	Rounds        int   // total synchronous rounds (incl. charged)
	ChargedRounds int   // rounds charged by oracle collectives (⊆ Rounds)
	Messages      int64 // messages delivered
	Capacity      int   // per-node per-round message budget
	MaxSent       int   // max messages sent by one node in one round
	MaxRecv       int   // max messages received by one node in one round
	CapViolations int   // (node, round) pairs exceeding the budget
	Phases        int   // Havel–Hakimi phases (degree realizations only)
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("n=%d rounds=%d (charged %d) msgs=%d cap=%d maxRecv=%d viol=%d",
		s.N, s.Rounds, s.ChargedRounds, s.Messages, s.Capacity, s.MaxRecv, s.CapViolations)
}

// Errors returned by the realization entry points.
var (
	// ErrUnrealizable reports that the input admits no realization (the
	// distributed algorithm's Unrealizable broadcast).
	ErrUnrealizable = errors.New("graphrealize: sequence is not realizable")
	// ErrBadInput reports malformed input (empty sequence, wrong length).
	ErrBadInput = errors.New("graphrealize: invalid input")
)

// Graph is the realized overlay: vertex i is the node that was assigned
// input i, Adj its sorted adjacency lists.
type Graph struct {
	N   int
	Adj [][]int
}

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for v, a := range g.Adj {
		d[v] = len(a)
	}
	return d
}

// Edges returns all edges as (u < v) pairs in deterministic order.
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u, a := range g.Adj {
		for _, v := range a {
			if v > u {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return es
}

// Diameter returns the exact diameter (-1 if disconnected).
func (g *Graph) Diameter() int { return g.internal().Diameter() }

// TreeDiameter returns the diameter via two BFS passes — exact for trees and
// much cheaper than Diameter's all-sources sweep. It panics if the overlay
// is not a tree.
func (g *Graph) TreeDiameter() int { return g.internal().TreeDiameter() }

// IsTree reports whether the overlay is a tree.
func (g *Graph) IsTree() bool { return g.internal().IsTree() }

// Connected reports whether the overlay is connected.
func (g *Graph) Connected() bool { return g.internal().Connected() }

// EdgeConnectivity returns the number of pairwise edge-disjoint paths
// between u and v (Menger), via max-flow.
func (g *Graph) EdgeConnectivity(u, v int) int { return g.internal().EdgeConnectivity(u, v) }

func (g *Graph) internal() *graph.Graph {
	ig := graph.New(g.N)
	for u, a := range g.Adj {
		for _, v := range a {
			if v > u {
				_ = ig.AddEdge(u, v)
			}
		}
	}
	return ig
}

func fromInternal(ig *graph.Graph) *Graph {
	g := &Graph{N: ig.N(), Adj: make([][]int, ig.N())}
	for _, e := range ig.Edges() {
		g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
		g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
	}
	return g
}

// IsGraphic reports whether d is realizable by a simple graph
// (Erdős–Gallai).
func IsGraphic(d []int) bool { return seq.IsGraphic(d) }

// IsTreeSequence reports whether d is realizable by a tree.
func IsTreeSequence(d []int) bool { return seq.IsTreeSequence(d) }

// MakeGraphic repairs an arbitrary non-negative sequence into a graphic one
// while preserving its shape (see internal/gen).
func MakeGraphic(d []int) []int { return gen.MakeGraphic(d) }

func (o *Options) norm() Options {
	if o == nil {
		return Options{}
	}
	return *o
}

func (o Options) simConfig(ctx context.Context, n int, inputs []any) ncc.Config {
	model := ncc.NCC0
	if o.Model == NCC1 {
		model = ncc.NCC1
	}
	sched := ncc.SchedBarrier
	switch o.Scheduler {
	case PoolScheduler:
		sched = ncc.SchedPool
	case FlatScheduler:
		sched = ncc.SchedFlat
	}
	return ncc.Config{
		N:         n,
		Model:     model,
		Seed:      o.Seed,
		CapMul:    o.CapMul,
		Strict:    o.Strict,
		MaxRounds: o.MaxRounds,
		Inputs:    inputs,
		Stop:      ctx.Done(),
		Progress:  o.Progress,
		Profile:   o.Profile,
		Sched:     sched,
	}
}

// mapRunErr translates the engine's cancellation sentinel into the context's
// own error so callers can match context.Canceled / context.DeadlineExceeded.
func mapRunErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, ncc.ErrCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

func (o Options) sortMethod() sortnet.Method {
	switch o.Sort {
	case OddEvenSort:
		return sortnet.OddEven
	case MergeSort:
		return sortnet.Merge
	default:
		return sortnet.Oracle
	}
}

func statsOf(tr *ncc.Trace) *Stats {
	return &Stats{
		N:             tr.Metrics.N,
		Rounds:        tr.Metrics.Rounds,
		ChargedRounds: tr.Metrics.CollectiveRounds,
		Messages:      tr.Metrics.Messages,
		Capacity:      tr.Metrics.Capacity,
		MaxSent:       tr.Metrics.MaxSentPerRound,
		MaxRecv:       tr.Metrics.MaxRecvPerRound,
		CapViolations: tr.Metrics.SendViolations + tr.Metrics.RecvViolations,
	}
}

func graphOf(tr *ncc.Trace) *Graph {
	idx := make(map[ncc.ID]int, len(tr.IDs))
	for i, id := range tr.IDs {
		idx[id] = i
	}
	ig := graph.New(len(tr.IDs))
	for e := range tr.EdgeSet() {
		_ = ig.AddEdge(idx[e[0]], idx[e[1]])
	}
	return fromInternal(ig)
}

func toInputs(d []int) []any {
	inputs := make([]any, len(d))
	for i, v := range d {
		inputs[i] = v
	}
	return inputs
}

// RealizeDegrees runs the distributed Havel–Hakimi of §4.1 (Theorem 11) and
// returns the implicit realization of d (d[i] is the degree required by
// vertex i). It returns ErrUnrealizable when d is not graphic.
func RealizeDegrees(d []int, opt *Options) (*Graph, *Stats, error) {
	return realizeDegrees(context.Background(), d, opt, false)
}

// RealizeDegreesExplicit additionally converts the realization to explicit
// form (§4.2, Theorem 12): both endpoints of every edge know it.
func RealizeDegreesExplicit(d []int, opt *Options) (*Graph, *Stats, error) {
	return realizeDegrees(context.Background(), d, opt, true)
}

func realizeDegrees(ctx context.Context, d []int, opt *Options, explicit bool) (*Graph, *Stats, error) {
	if len(d) == 0 {
		return nil, nil, ErrBadInput
	}
	o := opt.norm()
	s := ncc.New(o.simConfig(ctx, len(d), toInputs(d)))
	sortnet.RegisterOracle(s)
	tr, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return core.SetupStep(nd, o.sortMethod(), func(env *core.Env) ncc.Op {
			return core.RealizeStep(nd, env, nd.Input().(int), core.Exact, true, func(out core.Outcome) ncc.Op {
				finish := func() ncc.Op {
					nd.SetOutput("phases", int64(out.Phases))
					return ncc.Done()
				}
				if out.OK && explicit {
					return core.MakeExplicitStep(nd, env, out.Neighbors, out.Delta, func(int) ncc.Op {
						return finish()
					})
				}
				return finish()
			})
		})
	})
	if err != nil {
		return nil, nil, mapRunErr(ctx, err)
	}
	st := statsOf(tr)
	if v, ok := tr.MaxOutput("phases"); ok {
		st.Phases = int(v)
	}
	if tr.Unrealizable {
		return nil, st, ErrUnrealizable
	}
	return graphOf(tr), st, nil
}

// RealizeUpperEnvelope runs the §4.3 variant (Theorem 13): it always
// succeeds, realizing an upper envelope d′ ≥ d with Σd′ ≤ 2Σd (after
// clamping d into [0, n−1]). It returns the realized graph and the envelope
// degrees d′ (indexed like d).
func RealizeUpperEnvelope(d []int, opt *Options) (*Graph, []int, *Stats, error) {
	return realizeEnvelope(context.Background(), d, opt)
}

func realizeEnvelope(ctx context.Context, d []int, opt *Options) (*Graph, []int, *Stats, error) {
	if len(d) == 0 {
		return nil, nil, nil, ErrBadInput
	}
	o := opt.norm()
	s := ncc.New(o.simConfig(ctx, len(d), toInputs(d)))
	sortnet.RegisterOracle(s)
	tr, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return core.SetupStep(nd, o.sortMethod(), func(env *core.Env) ncc.Op {
			return core.RealizeStep(nd, env, nd.Input().(int), core.Envelope, true, func(out core.Outcome) ncc.Op {
				nd.SetOutput("realized", int64(out.Realized))
				nd.SetOutput("phases", int64(out.Phases))
				return ncc.Done()
			})
		})
	})
	if err != nil {
		return nil, nil, nil, mapRunErr(ctx, err)
	}
	st := statsOf(tr)
	if v, ok := tr.MaxOutput("phases"); ok {
		st.Phases = int(v)
	}
	envl := make([]int, len(d))
	for i, id := range tr.IDs {
		v, _ := tr.Output(id, "realized")
		envl[i] = int(v)
	}
	return graphOf(tr), envl, st, nil
}

// RealizeTree runs Algorithm 4 (§5, Theorem 14), realizing a tree sequence
// as a maximum-diameter chain-plus-leaves tree.
func RealizeTree(d []int, opt *Options) (*Graph, *Stats, error) {
	return realizeTree(context.Background(), d, opt, false)
}

// RealizeMinDiameterTree runs Algorithm 5 (§5, Theorem 16): the greedy tree
// T_G, whose diameter is minimum over all tree realizations of d (Lemma 15).
func RealizeMinDiameterTree(d []int, opt *Options) (*Graph, *Stats, error) {
	return realizeTree(context.Background(), d, opt, true)
}

func realizeTree(ctx context.Context, d []int, opt *Options, greedy bool) (*Graph, *Stats, error) {
	if len(d) == 0 {
		return nil, nil, ErrBadInput
	}
	o := opt.norm()
	s := ncc.New(o.simConfig(ctx, len(d), toInputs(d)))
	sortnet.RegisterOracle(s)
	tr, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return core.SetupStep(nd, o.sortMethod(), func(env *core.Env) ncc.Op {
			deg := nd.Input().(int)
			done := func(trees.Outcome) ncc.Op { return ncc.Done() }
			if greedy {
				return trees.RealizeGreedyStep(nd, env, deg, done)
			}
			return trees.RealizeChainStep(nd, env, deg, done)
		})
	})
	if err != nil {
		return nil, nil, mapRunErr(ctx, err)
	}
	st := statsOf(tr)
	if tr.Unrealizable {
		return nil, st, ErrUnrealizable
	}
	return graphOf(tr), st, nil
}

// RealizeConnectivity builds an overlay meeting pairwise edge-connectivity
// thresholds (§6): Conn(u,v) ≥ min(rho[u], rho[v]) with at most Σρ edges (a
// 2-approximation). Under NCC1 it runs the O~(1) implicit algorithm of
// Theorem 17; under NCC0 the explicit O~(Δ) Algorithm 6 of Theorem 18.
func RealizeConnectivity(rho []int, opt *Options) (*Graph, *Stats, error) {
	return realizeConnectivity(context.Background(), rho, opt)
}

func realizeConnectivity(ctx context.Context, rho []int, opt *Options) (*Graph, *Stats, error) {
	if len(rho) == 0 {
		return nil, nil, ErrBadInput
	}
	o := opt.norm()
	s := ncc.New(o.simConfig(ctx, len(rho), toInputs(rho)))
	sortnet.RegisterOracle(s)
	tr, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		r := nd.Input().(int)
		done := func(connectivity.Outcome) ncc.Op { return ncc.Done() }
		if nd.Model() == ncc.NCC1 {
			return connectivity.RealizeNCC1Step(nd, r, done)
		}
		return core.SetupStep(nd, o.sortMethod(), func(env *core.Env) ncc.Op {
			return connectivity.RealizeNCC0Step(nd, env, r, done)
		})
	})
	if err != nil {
		return nil, nil, mapRunErr(ctx, err)
	}
	st := statsOf(tr)
	if tr.Unrealizable {
		return nil, st, ErrUnrealizable
	}
	return graphOf(tr), st, nil
}

// ConnectivityLowerBound returns ⌈Σρ/2⌉, the minimum edge count of any
// graph meeting the thresholds (the 2-approximation's denominator).
func ConnectivityLowerBound(rho []int) int { return seq.ConnectivityLowerBound(rho) }

// HavelHakimi is the sequential baseline of §3.3: it realizes d centrally,
// or returns ErrUnrealizable.
func HavelHakimi(d []int) (*Graph, error) {
	g, ok := seq.HavelHakimi(d)
	if !ok {
		return nil, ErrUnrealizable
	}
	return fromInternal(g), nil
}

// GreedyTree is the sequential minimum-diameter tree baseline (Lemma 15).
func GreedyTree(d []int) (*Graph, error) {
	g, ok := seq.GreedyTree(d)
	if !ok {
		return nil, ErrUnrealizable
	}
	return fromInternal(g), nil
}

// ChainTree is the sequential Algorithm 4 baseline.
func ChainTree(d []int) (*Graph, error) {
	g, ok := seq.ChainTree(d)
	if !ok {
		return nil, ErrUnrealizable
	}
	return fromInternal(g), nil
}

// MinTreeDiameter returns the minimum diameter over all tree realizations
// of d (−1 if d is not a tree sequence).
func MinTreeDiameter(d []int) int { return seq.MinTreeDiameter(d) }
