package graphrealize

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFacadeRealizeDegrees(t *testing.T) {
	d := []int{3, 3, 2, 2, 2, 2}
	g, stats, err := RealizeDegrees(d, nil)
	if err != nil {
		t.Fatalf("realize: %v", err)
	}
	for i, deg := range g.Degrees() {
		if deg != d[i] {
			t.Fatalf("vertex %d degree %d, want %d", i, deg, d[i])
		}
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Fatalf("empty stats: %+v", stats)
	}
	if stats.Phases == 0 {
		t.Fatal("phase count missing")
	}
}

func TestFacadeUnrealizable(t *testing.T) {
	_, _, err := RealizeDegrees([]int{3, 3, 1, 1}, nil)
	if !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("want ErrUnrealizable, got %v", err)
	}
	if _, _, err := RealizeDegrees(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestFacadeExplicit(t *testing.T) {
	d := []int{2, 2, 2, 2}
	g, _, err := RealizeDegreesExplicit(d, &Options{Strict: true, Seed: 3})
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	if !g.Connected() {
		t.Fatal("4-cycle family should be connected here")
	}
}

func TestFacadeEnvelope(t *testing.T) {
	d := []int{3, 3, 1, 1} // non-graphic
	g, envl, _, err := RealizeUpperEnvelope(d, &Options{Strict: true})
	if err != nil {
		t.Fatalf("envelope: %v", err)
	}
	sumD, sumE := 0, 0
	for i := range d {
		if envl[i] < d[i] {
			t.Fatalf("envelope[%d] = %d < %d", i, envl[i], d[i])
		}
		if g.Degrees()[i] != envl[i] {
			t.Fatalf("degree/envelope mismatch at %d", i)
		}
		sumD += d[i]
		sumE += envl[i]
	}
	if sumE > 2*sumD {
		t.Fatalf("Σd' = %d > 2Σd = %d", sumE, 2*sumD)
	}
}

func TestFacadeTrees(t *testing.T) {
	d := []int{3, 2, 2, 1, 1, 1, 1, 1} // Σ = 12? 3+2+2+5 = 12... n=8 needs 14
	d = []int{3, 3, 2, 1, 1, 1, 1, 2}  // Σ = 14 = 2·7
	if !IsTreeSequence(d) {
		t.Fatal("test bug")
	}
	chain, _, err := RealizeTree(d, &Options{Strict: true})
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	greedy, _, err := RealizeMinDiameterTree(d, &Options{Strict: true})
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if !chain.IsTree() || !greedy.IsTree() {
		t.Fatal("realizations are not trees")
	}
	if greedy.Diameter() != MinTreeDiameter(d) {
		t.Fatalf("greedy diameter %d, optimal %d", greedy.Diameter(), MinTreeDiameter(d))
	}
	if greedy.Diameter() > chain.Diameter() {
		t.Fatal("greedy worse than chain")
	}
	if _, _, err := RealizeTree([]int{2, 2, 2}, nil); !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("cycle accepted as tree: %v", err)
	}
}

func TestFacadeConnectivityBothModels(t *testing.T) {
	rho := []int{3, 3, 2, 2, 1, 1, 1, 1}
	for _, model := range []Model{NCC0, NCC1} {
		g, stats, err := RealizeConnectivity(rho, &Options{Model: model, Strict: true, Seed: 5})
		if err != nil {
			t.Fatalf("model %v: %v", model, err)
		}
		for u := 0; u < len(rho); u++ {
			for v := u + 1; v < len(rho); v++ {
				want := rho[u]
				if rho[v] < want {
					want = rho[v]
				}
				if c := g.EdgeConnectivity(u, v); c < want {
					t.Fatalf("model %v: Conn(%d,%d)=%d < %d", model, u, v, c, want)
				}
			}
		}
		lb := ConnectivityLowerBound(rho)
		if g.M() > 2*lb {
			t.Fatalf("model %v: %d edges > 2·LB = %d", model, g.M(), 2*lb)
		}
		if stats.Rounds == 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	d := []int{3, 3, 2, 2, 2, 2}
	g, err := HavelHakimi(d)
	if err != nil {
		t.Fatalf("hh: %v", err)
	}
	for i, deg := range g.Degrees() {
		if deg != d[i] {
			t.Fatalf("hh degree %d at %d", deg, i)
		}
	}
	if _, err := HavelHakimi([]int{3, 3, 1, 1}); !errors.Is(err, ErrUnrealizable) {
		t.Fatal("hh accepted non-graphic")
	}
	td := []int{2, 2, 1, 1}
	ct, err := ChainTree(td)
	if err != nil || !ct.IsTree() {
		t.Fatalf("chain tree: %v", err)
	}
	gt, err := GreedyTree(td)
	if err != nil || !gt.IsTree() {
		t.Fatalf("greedy tree: %v", err)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	d := MakeGraphic([]int{5, 4, 4, 3, 3, 2, 2, 1})
	opt := &Options{Seed: 42}
	g1, s1, err1 := RealizeDegrees(d, opt)
	g2, s2, err2 := RealizeDegrees(d, opt)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if s1.Rounds != s2.Rounds || s1.Messages != s2.Messages {
		t.Fatal("stats differ across identical runs")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge sets differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edges differ")
		}
	}
}

func TestFacadeAgreesWithSequentialOnGraphicness(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%14) + 2
		d := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(n)
		}
		_, _, errD := RealizeDegrees(d, &Options{Seed: seed})
		_, errS := HavelHakimi(d)
		return errors.Is(errD, ErrUnrealizable) == errors.Is(errS, ErrUnrealizable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphHelpers(t *testing.T) {
	g, _, err := RealizeDegrees([]int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.Connected() || !g.IsTree() || g.Diameter() != 1 {
		t.Fatalf("pair graph helpers wrong: m=%d", g.M())
	}
	if len(g.Edges()) != 1 {
		t.Fatal("edges helper")
	}
	if !IsGraphic([]int{1, 1}) || IsGraphic([]int{1}) {
		t.Fatal("IsGraphic re-export")
	}
}

func TestOddEvenSortOption(t *testing.T) {
	d := []int{2, 2, 2, 2, 2, 2}
	g, stats, err := RealizeDegrees(d, &Options{Sort: OddEvenSort, Strict: true})
	if err != nil {
		t.Fatalf("odd-even: %v", err)
	}
	for i, deg := range g.Degrees() {
		if deg != d[i] {
			t.Fatalf("degree %d at %d", deg, i)
		}
	}
	if stats.ChargedRounds != 0 {
		t.Fatal("odd-even run must charge nothing")
	}
}

func TestMergeSortOption(t *testing.T) {
	d := []int{3, 3, 2, 2, 2, 2, 1, 1}
	gM, stM, err := RealizeDegrees(d, &Options{Sort: MergeSort, Strict: true, Seed: 9})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	gO, _, err := RealizeDegrees(d, &Options{Sort: OracleSort, Strict: true, Seed: 9})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if stM.ChargedRounds != 0 {
		t.Fatal("merge-sort realization must charge nothing")
	}
	eM, eO := gM.Edges(), gO.Edges()
	if len(eM) != len(eO) {
		t.Fatalf("edge counts differ: %d vs %d", len(eM), len(eO))
	}
	for i := range eM {
		if eM[i] != eO[i] {
			t.Fatal("merge-sorted realization differs from oracle-sorted one")
		}
	}
}
