package graphrealize

import (
	"errors"
	"testing"
)

func TestRunnerMatchesSequential(t *testing.T) {
	seqs := [][]int{
		{3, 3, 2, 2, 2, 2},
		{2, 2, 2, 2},
		{4, 3, 3, 2, 2, 2, 2, 2},
		{1, 1},
	}
	jobs := make([]Job, 0, len(seqs))
	for i, d := range seqs {
		jobs = append(jobs, Job{Kind: JobDegrees, Seq: d, Opt: &Options{Seed: int64(i)}})
	}
	r := NewRunner(4)
	results := r.RealizeAll(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		g, st, err := RealizeDegrees(seqs[i], jobs[i].Opt)
		if (err == nil) != (res.Err == nil) {
			t.Fatalf("job %d: err %v vs sequential %v", i, res.Err, err)
		}
		if res.Err != nil {
			continue
		}
		if res.Stats.Rounds != st.Rounds || res.Stats.Messages != st.Messages {
			t.Fatalf("job %d: stats differ from sequential run", i)
		}
		re, se := res.Graph.Edges(), g.Edges()
		if len(re) != len(se) {
			t.Fatalf("job %d: edge counts differ", i)
		}
		for k := range re {
			if re[k] != se[k] {
				t.Fatalf("job %d: edges differ", i)
			}
		}
	}
}

func TestRunnerCacheHitsAndLabels(t *testing.T) {
	r := NewRunner(2)
	j := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 7}, Label: "first"}
	res1 := <-r.Submit(j)
	if res1.Err != nil {
		t.Fatalf("first run: %v", res1.Err)
	}
	if res1.Cached {
		t.Fatal("first run must not be cached")
	}
	j.Label = "second"
	res2 := <-r.Submit(j)
	if !res2.Cached {
		t.Fatal("identical resubmission must hit the cache")
	}
	if res2.Job.Label != "second" {
		t.Fatalf("cached result must carry the new job's label, got %q", res2.Job.Label)
	}
	if res2.Stats.Rounds != res1.Stats.Rounds {
		t.Fatal("cached stats differ")
	}
	// A different seed is a different key.
	j.Opt = &Options{Seed: 8}
	if res3 := <-r.Submit(j); res3.Cached {
		t.Fatal("different options must miss the cache")
	}
	// A permuted sequence is a different key even with equal sums.
	j2 := Job{Kind: JobDegrees, Seq: []int{2, 2, 1, 1}, Opt: &Options{Seed: 7}}
	j3 := Job{Kind: JobDegrees, Seq: []int{1, 2, 2, 1}, Opt: &Options{Seed: 7}}
	<-r.Submit(j2)
	if res := <-r.Submit(j3); res.Cached {
		t.Fatal("permuted sequence must miss the cache")
	}
}

func TestRunnerUnrealizableAndBadKinds(t *testing.T) {
	r := NewRunner(2)
	res := <-r.Submit(Job{Kind: JobDegrees, Seq: []int{3, 3, 1, 1}})
	if !errors.Is(res.Err, ErrUnrealizable) {
		t.Fatalf("want ErrUnrealizable, got %v", res.Err)
	}
	// Unrealizable results are deterministic too, so they are cacheable.
	if res2 := <-r.Submit(Job{Kind: JobDegrees, Seq: []int{3, 3, 1, 1}}); !res2.Cached || !errors.Is(res2.Err, ErrUnrealizable) {
		t.Fatalf("cached unrealizable: cached=%v err=%v", res2.Cached, res2.Err)
	}
	if res := <-r.Submit(Job{Kind: JobKind(99), Seq: []int{1, 1}}); res.Err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestRunnerAllKinds(t *testing.T) {
	r := NewRunner(0) // GOMAXPROCS default
	jobs := []Job{
		{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}},
		{Kind: JobDegreesExplicit, Seq: []int{2, 2, 2, 2}},
		{Kind: JobUpperEnvelope, Seq: []int{3, 3, 1, 1}},
		{Kind: JobChainTree, Seq: []int{3, 3, 2, 1, 1, 1, 1, 2}},
		{Kind: JobMinDiamTree, Seq: []int{3, 3, 2, 1, 1, 1, 1, 2}},
		{Kind: JobConnectivity, Seq: []int{2, 2, 1, 1, 1, 1}},
	}
	for i, res := range r.RealizeAll(jobs) {
		if res.Err != nil {
			t.Fatalf("kind %v: %v", jobs[i].Kind, res.Err)
		}
		if res.Graph == nil || res.Stats == nil {
			t.Fatalf("kind %v: missing graph or stats", jobs[i].Kind)
		}
		if jobs[i].Kind == JobUpperEnvelope && res.Envelope == nil {
			t.Fatal("envelope job must return the envelope")
		}
	}
}

func TestSweepSeedsDeterminism(t *testing.T) {
	base := Job{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: &Options{Strict: true}}
	seeds := []int64{1, 2, 3, 4, 5}
	jobs := SweepSeeds(base, seeds)
	if len(jobs) != len(seeds) {
		t.Fatalf("want %d jobs", len(seeds))
	}
	for i, j := range jobs {
		if j.Opt.Seed != seeds[i] || !j.Opt.Strict {
			t.Fatalf("job %d: options not derived correctly: %+v", i, j.Opt)
		}
	}
	if base.Opt.Seed != 0 {
		t.Fatal("SweepSeeds must not mutate the base options")
	}
	a := NewRunner(1).RealizeAll(jobs)
	b := NewRunner(8).RealizeAll(jobs)
	for i := range a {
		if a[i].Stats.Rounds != b[i].Stats.Rounds || a[i].Stats.Messages != b[i].Stats.Messages {
			t.Fatalf("seed %d: results depend on worker count", seeds[i])
		}
	}
}

func TestRunnerCacheEviction(t *testing.T) {
	c := newResultCache(2)
	k := func(seed int64) cacheKey {
		return Job{Kind: JobDegrees, Seq: []int{1, 1}, Opt: &Options{Seed: seed}}.cacheKey()
	}
	c.put(k(1), Result{})
	c.put(k(2), Result{})
	if _, hit := c.get(k(1)); !hit { // touch 1 so 2 becomes LRU
		t.Fatal("expected hit for key 1")
	}
	c.put(k(3), Result{})
	if _, hit := c.get(k(2)); hit {
		t.Fatal("key 2 should have been evicted")
	}
	for _, seed := range []int64{1, 3} {
		if _, hit := c.get(k(seed)); !hit {
			t.Fatalf("key %d should survive", seed)
		}
	}
}
