package graphrealize

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunnerMatchesSequential(t *testing.T) {
	seqs := [][]int{
		{3, 3, 2, 2, 2, 2},
		{2, 2, 2, 2},
		{4, 3, 3, 2, 2, 2, 2, 2},
		{1, 1},
	}
	jobs := make([]Job, 0, len(seqs))
	for i, d := range seqs {
		jobs = append(jobs, Job{Kind: JobDegrees, Seq: d, Opt: &Options{Seed: int64(i)}})
	}
	r := NewRunner(4)
	results := r.RealizeAll(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		g, st, err := RealizeDegrees(seqs[i], jobs[i].Opt)
		if (err == nil) != (res.Err == nil) {
			t.Fatalf("job %d: err %v vs sequential %v", i, res.Err, err)
		}
		if res.Err != nil {
			continue
		}
		if res.Stats.Rounds != st.Rounds || res.Stats.Messages != st.Messages {
			t.Fatalf("job %d: stats differ from sequential run", i)
		}
		re, se := res.Graph.Edges(), g.Edges()
		if len(re) != len(se) {
			t.Fatalf("job %d: edge counts differ", i)
		}
		for k := range re {
			if re[k] != se[k] {
				t.Fatalf("job %d: edges differ", i)
			}
		}
	}
}

func TestRunnerCacheHitsAndLabels(t *testing.T) {
	r := NewRunner(2)
	j := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 7}, Label: "first"}
	res1 := <-r.Submit(j)
	if res1.Err != nil {
		t.Fatalf("first run: %v", res1.Err)
	}
	if res1.Cached {
		t.Fatal("first run must not be cached")
	}
	j.Label = "second"
	res2 := <-r.Submit(j)
	if !res2.Cached {
		t.Fatal("identical resubmission must hit the cache")
	}
	if res2.Job.Label != "second" {
		t.Fatalf("cached result must carry the new job's label, got %q", res2.Job.Label)
	}
	if res2.Stats.Rounds != res1.Stats.Rounds {
		t.Fatal("cached stats differ")
	}
	// A different seed is a different key.
	j.Opt = &Options{Seed: 8}
	if res3 := <-r.Submit(j); res3.Cached {
		t.Fatal("different options must miss the cache")
	}
	// A permuted sequence is a different key even with equal sums.
	j2 := Job{Kind: JobDegrees, Seq: []int{2, 2, 1, 1}, Opt: &Options{Seed: 7}}
	j3 := Job{Kind: JobDegrees, Seq: []int{1, 2, 2, 1}, Opt: &Options{Seed: 7}}
	<-r.Submit(j2)
	if res := <-r.Submit(j3); res.Cached {
		t.Fatal("permuted sequence must miss the cache")
	}
}

func TestRunnerUnrealizableAndBadKinds(t *testing.T) {
	r := NewRunner(2)
	res := <-r.Submit(Job{Kind: JobDegrees, Seq: []int{3, 3, 1, 1}})
	if !errors.Is(res.Err, ErrUnrealizable) {
		t.Fatalf("want ErrUnrealizable, got %v", res.Err)
	}
	// Unrealizable results are deterministic too, so they are cacheable.
	if res2 := <-r.Submit(Job{Kind: JobDegrees, Seq: []int{3, 3, 1, 1}}); !res2.Cached || !errors.Is(res2.Err, ErrUnrealizable) {
		t.Fatalf("cached unrealizable: cached=%v err=%v", res2.Cached, res2.Err)
	}
	if res := <-r.Submit(Job{Kind: JobKind(99), Seq: []int{1, 1}}); res.Err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestRunnerAllKinds(t *testing.T) {
	r := NewRunner(0) // GOMAXPROCS default
	jobs := []Job{
		{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}},
		{Kind: JobDegreesExplicit, Seq: []int{2, 2, 2, 2}},
		{Kind: JobUpperEnvelope, Seq: []int{3, 3, 1, 1}},
		{Kind: JobChainTree, Seq: []int{3, 3, 2, 1, 1, 1, 1, 2}},
		{Kind: JobMinDiamTree, Seq: []int{3, 3, 2, 1, 1, 1, 1, 2}},
		{Kind: JobConnectivity, Seq: []int{2, 2, 1, 1, 1, 1}},
	}
	for i, res := range r.RealizeAll(jobs) {
		if res.Err != nil {
			t.Fatalf("kind %v: %v", jobs[i].Kind, res.Err)
		}
		if res.Graph == nil || res.Stats == nil {
			t.Fatalf("kind %v: missing graph or stats", jobs[i].Kind)
		}
		if jobs[i].Kind == JobUpperEnvelope && res.Envelope == nil {
			t.Fatal("envelope job must return the envelope")
		}
	}
}

func TestSweepSeedsDeterminism(t *testing.T) {
	base := Job{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: &Options{Strict: true}}
	seeds := []int64{1, 2, 3, 4, 5}
	jobs := SweepSeeds(base, seeds)
	if len(jobs) != len(seeds) {
		t.Fatalf("want %d jobs", len(seeds))
	}
	for i, j := range jobs {
		if j.Opt.Seed != seeds[i] || !j.Opt.Strict {
			t.Fatalf("job %d: options not derived correctly: %+v", i, j.Opt)
		}
	}
	if base.Opt.Seed != 0 {
		t.Fatal("SweepSeeds must not mutate the base options")
	}
	a := NewRunner(1).RealizeAll(jobs)
	b := NewRunner(8).RealizeAll(jobs)
	for i := range a {
		if a[i].Stats.Rounds != b[i].Stats.Rounds || a[i].Stats.Messages != b[i].Stats.Messages {
			t.Fatalf("seed %d: results depend on worker count", seeds[i])
		}
	}
}

// blockingExec installs a test executor that parks every job until release
// is closed (or its context dies) and counts invocations.
func blockingExec(r *Runner, release chan struct{}) *atomic.Int64 {
	var calls atomic.Int64
	r.exec = func(ctx context.Context, j Job) Result {
		calls.Add(1)
		select {
		case <-release:
			return Result{Job: j}
		case <-ctx.Done():
			return Result{Job: j, Err: ctx.Err()}
		}
	}
	return &calls
}

// distinctJob returns jobs with distinct cache keys so the cache never
// short-circuits the admission path under test.
func distinctJob(seed int64) Job {
	return Job{Kind: JobDegrees, Seq: []int{1, 1}, Opt: &Options{Seed: seed}}
}

func TestRunnerBackpressure(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 1})
	release := make(chan struct{})
	blockingExec(r, release)

	// Job 1 occupies the worker, job 2 the single queue slot.
	ch1, err := r.SubmitCtx(context.Background(), distinctJob(1))
	if err != nil {
		t.Fatalf("job 1 must be admitted: %v", err)
	}
	ch2, err := r.SubmitCtx(context.Background(), distinctJob(2))
	if err != nil {
		t.Fatalf("job 2 must be admitted: %v", err)
	}
	// Job 3 must be rejected immediately, not queued or blocked.
	if _, err := r.SubmitCtx(context.Background(), distinctJob(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated runner must reject with ErrQueueFull, got %v", err)
	}
	// The compat Submit path embeds the same rejection in the Result.
	if res := <-r.Submit(distinctJob(4)); !errors.Is(res.Err, ErrQueueFull) {
		t.Fatalf("Submit on a saturated runner must carry ErrQueueFull, got %v", res.Err)
	}
	st := r.Stats()
	if st.Rejected != 2 || st.Submitted != 2 {
		t.Fatalf("want 2 admitted / 2 rejected, got %+v", st)
	}

	// Draining the pool frees capacity for new submissions.
	close(release)
	if res := <-ch1; res.Err != nil {
		t.Fatalf("job 1: %v", res.Err)
	}
	if res := <-ch2; res.Err != nil {
		t.Fatalf("job 2: %v", res.Err)
	}
	ch5, err := r.SubmitCtx(context.Background(), distinctJob(5))
	if err != nil {
		t.Fatalf("drained runner must admit again: %v", err)
	}
	if res := <-ch5; res.Err != nil {
		t.Fatalf("job 5: %v", res.Err)
	}
	st = r.Stats()
	if st.Completed != 3 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("final stats wrong: %+v", st)
	}
}

// TestRunnerReplayBypassesAdmission: the crash-recovery path must re-admit
// jobs even when the admission queue is saturated — the replayed jobs held
// admission units before the crash, and refusing them would break the
// restart-recovery guarantee.
func TestRunnerReplayBypassesAdmission(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 0})
	release := make(chan struct{})
	blockingExec(r, release)

	ch1, err := r.SubmitCtx(context.Background(), distinctJob(1))
	if err != nil {
		t.Fatal(err)
	}
	// Regular submission is saturated...
	if _, err := r.SubmitCtx(context.Background(), distinctJob(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("precondition: runner must be saturated, got %v", err)
	}
	// ...but replay is admission-exempt.
	ch3, err := r.SubmitReplayCtx(context.Background(), distinctJob(3))
	if err != nil {
		t.Fatalf("replay must never be refused: %v", err)
	}
	close(release)
	if res := <-ch1; res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := <-ch3; res.Err != nil {
		t.Fatalf("replayed job must execute: %v", res.Err)
	}
	st := r.Stats()
	if st.Replayed != 1 {
		t.Fatalf("want 1 replayed, got %+v", st)
	}
	// A replayed job releases no admission unit it never held: afterwards
	// the pool admits exactly Workers+Queue = 1 fresh job, no more.
	release2 := make(chan struct{})
	blockingExec(r, release2)
	defer close(release2)
	if _, err := r.SubmitCtx(context.Background(), distinctJob(4)); err != nil {
		t.Fatalf("post-replay admission broken: %v", err)
	}
	if _, err := r.SubmitCtx(context.Background(), distinctJob(5)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("admission accounting corrupted by replay, got %v", err)
	}
}

func TestRunnerQueuedJobCancellation(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 1})
	release := make(chan struct{})
	blockingExec(r, release)
	defer close(release)

	ch1, err := r.SubmitCtx(context.Background(), distinctJob(1))
	if err != nil {
		t.Fatal(err)
	}
	_ = ch1
	ctx, cancel := context.WithCancel(context.Background())
	ch2, err := r.SubmitCtx(ctx, distinctJob(2))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	res := <-ch2
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("canceled queued job must return context.Canceled, got %v", res.Err)
	}
	// Receiving the Result guarantees the admission unit was released, so a
	// new submission fits in the freed queue slot immediately.
	if _, err := r.SubmitCtx(context.Background(), distinctJob(3)); err != nil {
		t.Fatalf("admission unit of the canceled job not released: %v", err)
	}
	if got := r.Stats().Canceled; got != 1 {
		t.Fatalf("want 1 canceled, got %d", got)
	}
}

func TestRunnerSubmitAllAtomicAdmission(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 2}) // capacity 3
	release := make(chan struct{})
	blockingExec(r, release)

	// A 2-job batch fits; a second 2-job batch needs 2 of the 1 remaining
	// unit and must be rejected whole, leaving its capacity untouched.
	first, err := r.SubmitAllCtx(context.Background(), []Job{distinctJob(1), distinctJob(2)})
	if err != nil {
		t.Fatalf("2-job batch must fit in capacity 3: %v", err)
	}
	if _, err := r.SubmitAllCtx(context.Background(), []Job{distinctJob(3), distinctJob(4)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch exceeding remaining capacity must reject whole, got %v", err)
	}
	if st := r.Stats(); st.Submitted != 2 || st.Rejected != 2 {
		t.Fatalf("rejected batch must admit nothing: %+v", st)
	}
	// The single remaining unit is still available to a smaller submission.
	ch5, err := r.SubmitCtx(context.Background(), distinctJob(5))
	if err != nil {
		t.Fatalf("rejected batch must not consume capacity: %v", err)
	}
	close(release)
	for i, ch := range append(first, ch5) {
		if res := <-ch; res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
}

func TestRunnerCachedJobsBypassAdmission(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 0})
	release := make(chan struct{})
	blockingExec(r, release)
	defer close(release)

	j := distinctJob(7)
	r.cache.put(j.cacheKey(), Result{Job: j})

	// Saturate the runner (capacity 1) with a non-cached job.
	if _, err := r.SubmitCtx(context.Background(), distinctJob(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitCtx(context.Background(), distinctJob(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("runner must be saturated, got %v", err)
	}
	// The cached job is still served instantly, bypassing admission.
	ch, err := r.SubmitCtx(context.Background(), j)
	if err != nil {
		t.Fatalf("cached job must bypass admission: %v", err)
	}
	if res := <-ch; !res.Cached || res.Err != nil {
		t.Fatalf("want an instant cached result, got %+v", res)
	}
	if st := r.Stats(); st.CacheHits != 1 {
		t.Fatalf("cache hit not counted: %+v", st)
	}
}

func TestRunnerJobTimeout(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: -1, JobTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	calls := blockingExec(r, release)
	defer close(release)

	res := <-r.Submit(distinctJob(1))
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("overrunning job must time out with DeadlineExceeded, got %v", res.Err)
	}
	if got := r.Stats().Canceled; got != 1 {
		t.Fatalf("timeouts must count as canceled, got %d", got)
	}
	// Abandoned results must not be cached: the same job resubmitted runs
	// the executor again (and times out again).
	res = <-r.Submit(distinctJob(1))
	if res.Cached {
		t.Fatal("timed-out result must not be served from the cache")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("executor must run twice, ran %d times", got)
	}
}

func TestRunnerCancellationReachesEngine(t *testing.T) {
	// No executor stub here: a pre-canceled context must stop a real
	// simulation between rounds and surface the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Execute(ctx, Job{Kind: JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("want context.Canceled from the engine, got %v", res.Err)
	}
}

func TestRunnerStatsLatencyAndCacheCounters(t *testing.T) {
	r := NewRunner(2)
	j := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 3}}
	if res := <-r.Submit(j); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := <-r.Submit(j); !res.Cached {
		t.Fatal("second submission must hit the cache")
	}
	st := r.Stats()
	if st.CacheHits != 1 || st.CacheLen != 1 {
		t.Fatalf("cache counters wrong: %+v", st)
	}
	// Completed/Executed track executions; the cache-served submission
	// counts only toward Submitted and CacheHits.
	if st.Submitted != 2 || st.Executed != 1 || st.Completed != 1 {
		t.Fatalf("throughput counters wrong: %+v", st)
	}
	if st.TotalRun <= 0 {
		t.Fatalf("TotalRun must accumulate, got %v", st.TotalRun)
	}
	if st.QueueLimit != -1 {
		t.Fatalf("batch runner must report an unbounded queue, got %d", st.QueueLimit)
	}
}

func TestRunnerPerJobTimeoutOverride(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 2, Queue: -1, JobTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	blockingExec(r, release)

	// A negative Timeout disables the Runner's deadline: the job survives
	// well past 10ms and completes once released.
	long := distinctJob(1)
	long.Timeout = -1
	ch := r.Submit(long)
	select {
	case res := <-ch:
		t.Fatalf("deadline-free job must still be running, got %+v", res)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if res := <-ch; res.Err != nil {
		t.Fatalf("deadline-free job must complete: %v", res.Err)
	}

	// A positive Timeout overrides a laxer Runner default.
	r2 := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: -1, JobTimeout: time.Hour})
	blockingExec(r2, make(chan struct{}))
	short := distinctJob(2)
	short.Timeout = 5 * time.Millisecond
	if res := <-r2.Submit(short); !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("per-job deadline must override the runner default, got %v", res.Err)
	}
}

// TestRunnerStatsReconcileUnderConcurrency hammers a small bounded Runner
// from many goroutines mixing successful jobs, pre-canceled contexts,
// deliberate timeouts, and queue-full rejections, then checks that the
// counters reconcile exactly against the client-observed outcomes. Run under
// -race (CI does), this also exercises the counter paths for data races.
func TestRunnerStatsReconcileUnderConcurrency(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 4, Queue: 4, JobTimeout: 25 * time.Millisecond})
	// The executor sleeps briefly (building queue pressure) and honours ctx;
	// every 7th job hangs until its deadline kills it.
	r.exec = func(ctx context.Context, j Job) Result {
		hang := j.Opt.Seed%7 == 0
		d := time.Millisecond
		if hang {
			d = time.Second
		}
		select {
		case <-time.After(d):
			return Result{Job: j}
		case <-ctx.Done():
			return Result{Job: j, Err: ctx.Err()}
		}
	}

	const (
		goroutines = 8
		perG       = 30
	)
	var (
		seedSrc                          atomic.Int64
		okN, rejectedN, canceledN, failN atomic.Int64
		wg                               sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				// Globally unique seeds keep every cache key distinct, so the
				// cache never short-circuits admission accounting.
				seed := seedSrc.Add(1)
				ctx := context.Background()
				if seed%5 == 0 {
					c, cancel := context.WithCancel(ctx)
					cancel()
					ctx = c
				}
				ch, err := r.SubmitCtx(ctx, distinctJob(seed))
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected submit error: %v", err)
					}
					rejectedN.Add(1)
					continue
				}
				res := <-ch
				switch {
				case res.Err == nil:
					okN.Add(1)
				case errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
					canceledN.Add(1)
				default:
					failN.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	st := r.Stats()
	total := int64(goroutines * perG)
	if got := okN.Load() + rejectedN.Load() + canceledN.Load() + failN.Load(); got != total {
		t.Fatalf("client accounting lost submissions: %d of %d", got, total)
	}
	// Every accepted submission ends in exactly one terminal counter, and the
	// mix guarantees traffic on each path.
	if st.Submitted != total-rejectedN.Load() {
		t.Fatalf("Submitted=%d, want %d accepted of %d", st.Submitted, total-rejectedN.Load(), total)
	}
	if st.CacheHits != 0 {
		t.Fatalf("distinct jobs must never hit the cache, got %d", st.CacheHits)
	}
	if st.Completed != okN.Load() {
		t.Fatalf("Completed=%d, clients observed %d successes", st.Completed, okN.Load())
	}
	if st.Canceled != canceledN.Load() {
		t.Fatalf("Canceled=%d, clients observed %d cancellations/timeouts", st.Canceled, canceledN.Load())
	}
	if st.Failed != failN.Load() {
		t.Fatalf("Failed=%d, clients observed %d failures", st.Failed, failN.Load())
	}
	if st.Rejected != rejectedN.Load() {
		t.Fatalf("Rejected=%d, clients observed %d rejections", st.Rejected, rejectedN.Load())
	}
	if st.Submitted != st.Completed+st.Failed+st.Canceled {
		t.Fatalf("terminal counters don't reconcile with Submitted: %+v", st)
	}
	// Executed counts jobs that reached a worker: everything except
	// submissions canceled while still queued.
	if st.Executed < st.Completed || st.Executed > st.Submitted {
		t.Fatalf("Executed out of range: %+v", st)
	}
	// All capacity returned: the drained Runner admits a full batch again.
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("drained Runner must be idle: %+v", st)
	}
	if ok := r.tryAdmit(8); !ok {
		t.Fatal("drained Runner must have all admission units free")
	}
	r.releaseAdmit(8)
	if st.Completed == 0 || st.Canceled == 0 {
		t.Fatalf("test mix must exercise completions and cancellations: %+v", st)
	}
}

func TestRunnerCacheEviction(t *testing.T) {
	c := newResultCache(2)
	k := func(seed int64) cacheKey {
		return Job{Kind: JobDegrees, Seq: []int{1, 1}, Opt: &Options{Seed: seed}}.cacheKey()
	}
	c.put(k(1), Result{})
	c.put(k(2), Result{})
	if _, hit := c.get(k(1)); !hit { // touch 1 so 2 becomes LRU
		t.Fatal("expected hit for key 1")
	}
	c.put(k(3), Result{})
	if _, hit := c.get(k(2)); hit {
		t.Fatal("key 2 should have been evicted")
	}
	for _, seed := range []int64{1, 3} {
		if _, hit := c.get(k(seed)); !hit {
			t.Fatalf("key %d should survive", seed)
		}
	}
}
