module graphrealize

go 1.24
