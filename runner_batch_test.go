package graphrealize

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// runner_batch_test.go pins two Runner serving-layer contracts: rejected
// batches must not leak counter increments for results that were never
// delivered, and cached results — shared by every requester of the same key —
// must be immutable under the read paths the service and the CLIs exercise.

// TestSubmitAllCtxRejectedBatchAccounting is the regression test for the
// rejected-batch bug: a batch refused with ErrQueueFull used to count its
// cached members as Submitted/CacheHits and drop their result channels, so
// stats overcounted and a retried batch double-counted.
func TestSubmitAllCtxRejectedBatchAccounting(t *testing.T) {
	r := NewRunnerConfig(RunnerConfig{Workers: 1, Queue: 0})

	// Warm the cache with job A using the real executor.
	cached := Job{Kind: JobDegrees, Seq: []int{2, 2, 2}, Opt: &Options{Seed: 1}}
	if res := <-r.Submit(cached); res.Err != nil {
		t.Fatalf("warming run: %v", res.Err)
	}

	// Occupy the only worker so the next non-cached admission is refused.
	release := make(chan struct{})
	blockingExec(r, release)
	chBlock, err := r.SubmitCtx(context.Background(), distinctJob(100))
	if err != nil {
		t.Fatalf("blocker must be admitted: %v", err)
	}
	before := r.Stats()

	batch := []Job{cached, distinctJob(101)}
	if _, err := r.SubmitAllCtx(context.Background(), batch); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated runner must refuse the batch, got %v", err)
	}
	st := r.Stats()
	if st.Submitted != before.Submitted {
		t.Fatalf("rejected batch leaked Submitted: %d -> %d", before.Submitted, st.Submitted)
	}
	if st.CacheHits != before.CacheHits {
		t.Fatalf("rejected batch leaked CacheHits: %d -> %d", before.CacheHits, st.CacheHits)
	}
	if st.Rejected != before.Rejected+1 {
		t.Fatalf("want exactly the non-cached job counted rejected, got %d -> %d", before.Rejected, st.Rejected)
	}

	// Retry after the worker frees up: the whole batch must be delivered and
	// the cached member counted exactly once.
	close(release)
	if res := <-chBlock; res.Err != nil {
		t.Fatalf("blocker: %v", res.Err)
	}
	chans, err := r.SubmitAllCtx(context.Background(), batch)
	if err != nil {
		t.Fatalf("retried batch must be admitted: %v", err)
	}
	if got := <-chans[0]; !got.Cached || got.Err != nil {
		t.Fatalf("cached member must be served from cache: cached=%v err=%v", got.Cached, got.Err)
	}
	if got := <-chans[1]; got.Err != nil {
		t.Fatalf("admitted member: %v", got.Err)
	}
	st = r.Stats()
	if want := before.CacheHits + 1; st.CacheHits != want {
		t.Fatalf("retried batch must count its cache hit once: want %d, got %d", want, st.CacheHits)
	}
	if want := before.Submitted + 2; st.Submitted != want {
		t.Fatalf("retried batch must count both submissions: want %d, got %d", want, st.Submitted)
	}
}

// graphFingerprint renders the full adjacency structure; any in-place
// mutation of a shared graph changes it.
func graphFingerprint(g *Graph) string {
	return fmt.Sprintf("%d:%v", g.N, g.Adj)
}

// TestCachedResultImmutableUnderConcurrentReaders pins the aliasing contract
// of cached results: Graph/Stats/Envelope pointers are shared by every
// requester of the same key, so every read path the HTTP layer and the CLIs
// use (edge extraction, degree/diameter queries, stats formatting) must leave
// them untouched. Run with -race this also proves the reads are synchronized.
func TestCachedResultImmutableUnderConcurrentReaders(t *testing.T) {
	r := NewRunner(2)
	job := Job{Kind: JobUpperEnvelope, Seq: []int{5, 3, 3, 2, 2, 1}, Opt: &Options{Seed: 6}}
	first := <-r.Submit(job)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	before := graphFingerprint(first.Graph)
	statsBefore := *first.Stats
	envBefore := fmt.Sprint(first.Envelope)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := <-r.Submit(job)
			if res.Err != nil || !res.Cached {
				t.Errorf("cached requester: err=%v cached=%v", res.Err, res.Cached)
				return
			}
			// The read surface of internal/serve (Edges, M, statsJSON),
			// cmd/degreal (Envelope), and the harness tables (Degrees,
			// Diameter, stats fields).
			_ = res.Graph.Edges()
			_ = res.Graph.M()
			_ = res.Graph.Degrees()
			_ = res.Graph.Connected()
			_ = res.Stats.String()
			_ = fmt.Sprint(res.Envelope)
		}()
	}
	wg.Wait()

	if after := graphFingerprint(first.Graph); after != before {
		t.Fatalf("cached graph mutated by readers:\nbefore %s\nafter  %s", before, after)
	}
	if statsAfter := *first.Stats; statsAfter != statsBefore {
		t.Fatalf("cached stats mutated by readers: %+v -> %+v", statsBefore, statsAfter)
	}
	if envAfter := fmt.Sprint(first.Envelope); envAfter != envBefore {
		t.Fatalf("cached envelope mutated by readers: %s -> %s", envBefore, envAfter)
	}
}
