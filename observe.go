package graphrealize

import (
	"time"

	"graphrealize/internal/obs"
)

// observe.go is the Runner's wall-clock observability: latency histograms,
// per-driver engine phase profiles, and the slowest-jobs flight recorder.
// Everything here is observational — it feeds /metrics, /v1/stats, and
// /v1/debug/slowest but never influences a job's outcome, its cache key, or
// the deterministic traces (see internal/ncc's Config.Profile contract).

// flightRecorderSize bounds the slowest-jobs flight recorder. 32 entries is
// enough to attribute a latency tail without holding meaningful memory.
const flightRecorderSize = 32

// RunnerObs aggregates a Runner's observability instruments. All fields are
// safe for concurrent use; read them via Snapshot-style accessors
// (Histogram.Snapshot, PhaseProfile.Snapshot, FlightRecorder.Slowest).
type RunnerObs struct {
	// QueueWait observes each executed job's time from admission to worker
	// acquisition; Run observes its execution time. Both complement the
	// TotalWait/TotalRun counters in RunnerStats with full distributions.
	QueueWait *obs.Histogram
	Run       *obs.Histogram
	// Recorder retains the slowest executed jobs by run duration.
	Recorder *obs.FlightRecorder

	// profiles[s] accumulates engine round phase time for scheduler driver s.
	profiles [3]*obs.PhaseProfile
}

func newRunnerObs() *RunnerObs {
	o := &RunnerObs{
		QueueWait: obs.NewHistogram(obs.DefaultLatencyBuckets),
		Run:       obs.NewHistogram(obs.DefaultLatencyBuckets),
		Recorder:  obs.NewFlightRecorder(flightRecorderSize),
	}
	for i := range o.profiles {
		o.profiles[i] = obs.NewPhaseProfile()
	}
	return o
}

// SchedProfile returns the phase profile accumulating rounds run under the
// given scheduler driver. Unknown values map to the default driver's profile.
func (o *RunnerObs) SchedProfile(s Scheduler) *obs.PhaseProfile {
	if s < 0 || int(s) >= len(o.profiles) {
		s = BarrierScheduler
	}
	return o.profiles[s]
}

// Obs exposes the Runner's observability instruments.
func (r *Runner) Obs() *RunnerObs { return r.obs }

// phaseAccum collects one job's engine phase totals. It is written from the
// simulation's driver goroutine — which is the goroutine running the job —
// and read only after the run returns, so it needs no synchronization.
type phaseAccum struct {
	compute, delivery, barrier time.Duration
	rounds                     int64
}

// observe returns a copy of j whose Options carry a Profile hook feeding both
// the Runner's per-driver phase profile and acc, chained in front of any
// caller-supplied hook (the instrument pattern internal/jobs uses for
// Progress). The caller's Job is left untouched and the cache key is
// unchanged by construction: Profile is excluded from optKey.
func (r *Runner) observe(j Job, acc *phaseAccum) Job {
	opt := j.Opt.norm()
	prof := r.obs.SchedProfile(opt.Scheduler)
	caller := opt.Profile
	opt.Profile = func(compute, delivery, barrier time.Duration) {
		acc.compute += compute
		acc.delivery += delivery
		acc.barrier += barrier
		acc.rounds++
		prof.ObserveRound(compute, delivery, barrier)
		if caller != nil {
			caller(compute, delivery, barrier)
		}
	}
	j.Opt = &opt
	return j
}

// recordFlight offers one finished execution to the flight recorder.
func (r *Runner) recordFlight(j Job, res Result, wait, run time.Duration, acc *phaseAccum) {
	opt := j.Opt.norm()
	var errStr string
	if res.Err != nil {
		errStr = res.Err.Error()
	}
	r.obs.Recorder.Record(obs.FlightEntry{
		TraceID:   j.TraceID,
		Kind:      j.Kind.String(),
		Label:     j.Label,
		N:         len(j.Seq),
		Seed:      opt.Seed,
		Scheduler: opt.Scheduler.String(),
		Wait:      wait,
		Run:       run,
		Rounds:    acc.rounds,
		Compute:   acc.compute,
		Delivery:  acc.delivery,
		Barrier:   acc.barrier,
		Err:       errStr,
		Finished:  time.Now(),
	})
}
