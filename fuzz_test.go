package graphrealize_test

import (
	"errors"
	"testing"

	"graphrealize"
)

// fuzz_test.go differential-tests the distributed degree realization (§4.1,
// Theorem 11) against the sequential Havel–Hakimi baseline (§3.3) on
// arbitrary degree sequences. The two implementations share no code above
// the graph type, so agreement on realizability — the Erdős–Gallai
// characterization both must decide — plus degree-exactness of every
// realized overlay is a strong end-to-end check. The seed corpus runs in
// every ordinary `go test`; CI additionally runs a short `-fuzz` smoke.

// fuzzSequence decodes fuzz bytes into a degree sequence small enough to
// simulate quickly: at most 24 nodes, degrees clamped into [0, n-1] by
// construction mod n (out-of-range degrees are ErrBadInput-free but trivially
// non-graphic, diluting coverage).
func fuzzSequence(data []byte) []int {
	if len(data) == 0 || len(data) > 24 {
		return nil
	}
	d := make([]int, len(data))
	for i, b := range data {
		d[i] = int(b) % len(data)
	}
	return d
}

func FuzzRealizeDegreesMatchesHavelHakimi(f *testing.F) {
	f.Add([]byte{3, 3, 2, 2, 2, 2}, int64(1)) // the package's quickstart sequence
	f.Add([]byte{4, 4, 4, 4, 4, 4, 4, 4}, int64(7))
	f.Add([]byte{3, 3, 1, 1}, int64(2)) // unrealizable
	f.Add([]byte{0, 0, 0}, int64(0))    // empty graph
	f.Add([]byte{5, 5, 4, 3, 2, 2, 2, 1}, int64(11))
	f.Add([]byte{1, 1}, int64(3))                   // single edge
	f.Add([]byte{7, 1, 1, 1, 1, 1, 1, 1}, int64(5)) // star
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		d := fuzzSequence(data)
		if d == nil {
			t.Skip()
		}
		g, _, derr := graphrealize.RealizeDegrees(d, &graphrealize.Options{Seed: seed})
		hg, herr := graphrealize.HavelHakimi(d)

		// Realizability is a property of the sequence alone (Erdős–Gallai):
		// the distributed protocol and the sequential baseline must agree.
		if errors.Is(derr, graphrealize.ErrUnrealizable) != errors.Is(herr, graphrealize.ErrUnrealizable) {
			t.Fatalf("realizability disagreement on %v: distributed=%v sequential=%v", d, derr, herr)
		}
		if derr != nil && !errors.Is(derr, graphrealize.ErrUnrealizable) {
			t.Fatalf("distributed realization failed unexpectedly on %v: %v", d, derr)
		}
		if derr == nil {
			checkRealization(t, "distributed", g, d)
		}
		if herr == nil {
			checkRealization(t, "sequential", hg, d)
		}
	})
}

// checkRealization asserts g is a simple graph realizing exactly d.
func checkRealization(t *testing.T, who string, g *graphrealize.Graph, d []int) {
	t.Helper()
	if g == nil || g.N != len(d) {
		t.Fatalf("%s: graph has wrong order for %v: %+v", who, d, g)
	}
	for v, adj := range g.Adj {
		if len(adj) != d[v] {
			t.Fatalf("%s: vertex %d has degree %d, want %d (seq %v)", who, v, len(adj), d[v], d)
		}
		seen := make(map[int]bool, len(adj))
		for _, u := range adj {
			if u == v {
				t.Fatalf("%s: self-loop at %d (seq %v)", who, v, d)
			}
			if u < 0 || u >= g.N {
				t.Fatalf("%s: edge endpoint %d out of range (seq %v)", who, u, d)
			}
			if seen[u] {
				t.Fatalf("%s: parallel edge %d-%d (seq %v)", who, v, u, d)
			}
			seen[u] = true
		}
	}
}
