package graphrealize

import (
	"fmt"
	"runtime"
	"sync"
)

// runner.go is the batch service layer on top of the facade: a worker pool
// that runs many independent realizations concurrently with bounded
// parallelism, plus an LRU cache of completed results. Each simulation
// already uses one goroutine per simulated node, but a single run spends
// most of its wall clock blocked on the round barrier; running independent
// jobs side by side is what actually saturates the hardware, which is why
// sweeps (multi-seed, multi-n, multi-family) should go through a Runner
// rather than a serial loop.

// JobKind selects which realization entry point a Job invokes.
type JobKind int

const (
	// JobDegrees runs RealizeDegrees (§4.1, Theorem 11).
	JobDegrees JobKind = iota
	// JobDegreesExplicit runs RealizeDegreesExplicit (§4.2, Theorem 12).
	JobDegreesExplicit
	// JobUpperEnvelope runs RealizeUpperEnvelope (§4.3, Theorem 13).
	JobUpperEnvelope
	// JobChainTree runs RealizeTree (§5, Theorem 14).
	JobChainTree
	// JobMinDiamTree runs RealizeMinDiameterTree (§5, Theorem 16).
	JobMinDiamTree
	// JobConnectivity runs RealizeConnectivity (§6, Theorems 17/18).
	JobConnectivity
)

// String returns a stable name for the kind (used in labels and cache keys).
func (k JobKind) String() string {
	switch k {
	case JobDegrees:
		return "degrees"
	case JobDegreesExplicit:
		return "degrees-explicit"
	case JobUpperEnvelope:
		return "upper-envelope"
	case JobChainTree:
		return "chain-tree"
	case JobMinDiamTree:
		return "min-diam-tree"
	case JobConnectivity:
		return "connectivity"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// Job is one independent realization request. Seq is the degree (or ρ)
// sequence; Opt follows the same nil-means-default convention as the facade
// entry points. Label is an optional caller tag carried through to the
// Result untouched.
type Job struct {
	Kind  JobKind
	Seq   []int
	Opt   *Options
	Label string
}

// Result is the outcome of one Job. Envelope is non-nil only for
// JobUpperEnvelope. Cached reports that the result was served from the
// Runner's cache; cached Graph/Stats/Envelope values are shared between all
// requesters of the same key and must be treated as read-only.
type Result struct {
	Job      Job
	Graph    *Graph
	Envelope []int
	Stats    *Stats
	Err      error
	Cached   bool
}

// Runner executes Jobs on a bounded worker pool with an LRU result cache.
// A Runner is safe for concurrent use and needs no shutdown: an idle Runner
// holds no goroutines.
type Runner struct {
	sem   chan struct{}
	cache *resultCache
}

// DefaultCacheSize is the number of distinct (kind, sequence, options)
// results a Runner retains.
const DefaultCacheSize = 256

// NewRunner creates a Runner that executes at most workers jobs at once.
// workers ≤ 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		sem:   make(chan struct{}, workers),
		cache: newResultCache(DefaultCacheSize),
	}
}

// Submit enqueues one job and returns a channel that receives its Result
// exactly once. Submission never blocks; execution waits for a free worker
// slot.
func (r *Runner) Submit(j Job) <-chan Result {
	out := make(chan Result, 1)
	go func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		out <- r.run(j)
	}()
	return out
}

// RealizeAll runs all jobs with the Runner's bounded parallelism and returns
// the results in job order. Every simulation is seeded only by its own
// Options, so results are independent of scheduling and worker count.
func (r *Runner) RealizeAll(jobs []Job) []Result {
	chans := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		chans[i] = r.Submit(j)
	}
	out := make([]Result, len(jobs))
	for i, c := range chans {
		out[i] = <-c
	}
	return out
}

// SweepSeeds expands a base job into one job per seed, overriding only
// Options.Seed. It is the standard way to build a deterministic multi-seed
// sweep for RealizeAll.
func SweepSeeds(base Job, seeds []int64) []Job {
	jobs := make([]Job, len(seeds))
	for i, seed := range seeds {
		opt := base.Opt.norm()
		opt.Seed = seed
		j := base
		j.Opt = &opt
		jobs[i] = j
	}
	return jobs
}

func (r *Runner) run(j Job) Result {
	key := j.cacheKey()
	if res, hit := r.cache.get(key); hit {
		res.Job = j
		res.Cached = true
		return res
	}
	res := executeJob(j)
	r.cache.put(key, res)
	return res
}

// executeJob dispatches a job to the facade entry point for its kind.
func executeJob(j Job) Result {
	res := Result{Job: j}
	switch j.Kind {
	case JobDegrees:
		res.Graph, res.Stats, res.Err = RealizeDegrees(j.Seq, j.Opt)
	case JobDegreesExplicit:
		res.Graph, res.Stats, res.Err = RealizeDegreesExplicit(j.Seq, j.Opt)
	case JobUpperEnvelope:
		res.Graph, res.Envelope, res.Stats, res.Err = RealizeUpperEnvelope(j.Seq, j.Opt)
	case JobChainTree:
		res.Graph, res.Stats, res.Err = RealizeTree(j.Seq, j.Opt)
	case JobMinDiamTree:
		res.Graph, res.Stats, res.Err = RealizeMinDiameterTree(j.Seq, j.Opt)
	case JobConnectivity:
		res.Graph, res.Stats, res.Err = RealizeConnectivity(j.Seq, j.Opt)
	default:
		res.Err = fmt.Errorf("graphrealize: unknown JobKind %d", int(j.Kind))
	}
	return res
}

// cacheKey identifies a job's deterministic result: the kind, the sequence
// (compacted into a collision-free byte string), and the full normalized
// Options value. Runs are deterministic for fixed options, so equal keys
// imply equal results; varint-style delta coding keeps typical keys short.
type cacheKey struct {
	kind JobKind
	seq  string
	opt  Options
}

func (j Job) cacheKey() cacheKey {
	buf := make([]byte, 0, 2*len(j.Seq))
	for _, v := range j.Seq {
		u := uint64(v)<<1 ^ uint64(int64(v)>>63) // zig-zag for the odd negative input
		for u >= 0x80 {
			buf = append(buf, byte(u)|0x80)
			u >>= 7
		}
		buf = append(buf, byte(u))
	}
	return cacheKey{
		kind: j.Kind,
		seq:  string(buf),
		opt:  j.Opt.norm(),
	}
}

// resultCache is a small mutex-guarded LRU keyed by cacheKey.
type resultCache struct {
	mu    sync.Mutex
	limit int
	m     map[cacheKey]*cacheEntry
	head  *cacheEntry // most recently used
	tail  *cacheEntry // least recently used
}

type cacheEntry struct {
	key        cacheKey
	res        Result
	prev, next *cacheEntry
}

func newResultCache(limit int) *resultCache {
	return &resultCache{limit: limit, m: make(map[cacheKey]*cacheEntry, limit)}
}

func (c *resultCache) get(k cacheKey) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return Result{}, false
	}
	c.moveToFront(e)
	return e.res, true
}

func (c *resultCache) put(k cacheKey, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.res = res
		c.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, res: res}
	c.m[k] = e
	c.pushFront(e)
	if len(c.m) > c.limit {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
}

func (c *resultCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *resultCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
