package graphrealize

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// runner.go is the batch and serving layer on top of the facade: a worker
// pool that runs many independent realizations concurrently with bounded
// parallelism, an LRU cache of completed results, and — for network-facing
// use — a bounded admission queue with backpressure, per-job deadlines, and
// exported counters. Each simulation already uses one goroutine per
// simulated node, but a single run spends most of its wall clock blocked on
// the round barrier; running independent jobs side by side is what actually
// saturates the hardware, which is why sweeps (multi-seed, multi-n,
// multi-family) and HTTP traffic should go through a Runner rather than a
// serial loop.

// JobKind selects which realization entry point a Job invokes.
type JobKind int

const (
	// JobDegrees runs RealizeDegrees (§4.1, Theorem 11).
	JobDegrees JobKind = iota
	// JobDegreesExplicit runs RealizeDegreesExplicit (§4.2, Theorem 12).
	JobDegreesExplicit
	// JobUpperEnvelope runs RealizeUpperEnvelope (§4.3, Theorem 13).
	JobUpperEnvelope
	// JobChainTree runs RealizeTree (§5, Theorem 14).
	JobChainTree
	// JobMinDiamTree runs RealizeMinDiameterTree (§5, Theorem 16).
	JobMinDiamTree
	// JobConnectivity runs RealizeConnectivity (§6, Theorems 17/18).
	JobConnectivity
)

// String returns a stable name for the kind (used in labels and cache keys).
func (k JobKind) String() string {
	switch k {
	case JobDegrees:
		return "degrees"
	case JobDegreesExplicit:
		return "degrees-explicit"
	case JobUpperEnvelope:
		return "upper-envelope"
	case JobChainTree:
		return "chain-tree"
	case JobMinDiamTree:
		return "min-diam-tree"
	case JobConnectivity:
		return "connectivity"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// Job is one independent realization request. Seq is the degree (or ρ)
// sequence; Opt follows the same nil-means-default convention as the facade
// entry points. Label is an optional caller tag carried through to the
// Result untouched.
type Job struct {
	Kind  JobKind
	Seq   []int
	Opt   *Options
	Label string
	// TraceID is an optional request-correlation ID carried through to the
	// Result untouched, like Label: it appears in job records, events, and
	// the flight recorder, but never affects execution or the cache key.
	TraceID string
	// Timeout overrides the Runner's JobTimeout for this job: positive caps
	// execution at the given duration, negative disables the per-job
	// deadline entirely, zero keeps the Runner's default. Long-regime
	// asynchronous jobs use this to outlive the synchronous deadline.
	// Timeout never affects a deterministic outcome, so it is not part of
	// the result cache key.
	Timeout time.Duration
}

// Result is the outcome of one Job. Envelope is non-nil only for
// JobUpperEnvelope. Cached reports that the result was served from the
// Runner's cache; cached Graph/Stats/Envelope values are shared between all
// requesters of the same key and must be treated as read-only.
type Result struct {
	Job      Job
	Graph    *Graph
	Envelope []int
	Stats    *Stats
	Err      error
	Cached   bool
}

// ErrQueueFull is returned by SubmitCtx (and embedded in Submit's Result)
// when a bounded Runner is saturated: all workers are busy and the waiting
// queue is at capacity. Network callers should surface it as backpressure
// (HTTP 429) rather than retrying immediately.
var ErrQueueFull = errors.New("graphrealize: runner queue is full")

// RunnerConfig tunes a serving Runner.
type RunnerConfig struct {
	// Workers bounds concurrently executing jobs (≤ 0 selects GOMAXPROCS).
	Workers int
	// Queue bounds jobs admitted but not yet executing. Negative means
	// unbounded (the batch default used by NewRunner); zero means no waiting
	// room: a job is only admitted when a worker is free.
	Queue int
	// JobTimeout, when positive, caps each job's execution time; a job that
	// exceeds it fails with context.DeadlineExceeded.
	JobTimeout time.Duration
	// CacheSize overrides the result-cache capacity (0 = DefaultCacheSize).
	CacheSize int
}

// Runner executes Jobs on a bounded worker pool with an LRU result cache.
// A Runner is safe for concurrent use and needs no shutdown: an idle Runner
// holds no goroutines.
type Runner struct {
	sem     chan struct{}
	queue   int // configured queue bound (-1 = unbounded)
	timeout time.Duration
	cache   *resultCache

	// Admission accounting: at most admitCap (= Workers+Queue) jobs hold a
	// unit from admission to completion; admitCap < 0 means unbounded. A
	// counter rather than a token channel so a batch can be admitted
	// atomically (SubmitAllCtx).
	admitMu  sync.Mutex
	admitCap int
	inFlight int

	// exec is the job executor, swappable in tests; Execute otherwise.
	exec func(context.Context, Job) Result

	// obs holds the wall-clock instruments (observe.go): latency histograms,
	// per-driver phase profiles, and the slowest-jobs flight recorder.
	obs *RunnerObs

	submitted atomic.Int64
	rejected  atomic.Int64
	replayed  atomic.Int64
	executed  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	cacheHits atomic.Int64
	queued    atomic.Int64
	active    atomic.Int64
	waitNanos atomic.Int64
	runNanos  atomic.Int64
}

// DefaultCacheSize is the number of distinct (kind, sequence, options)
// results a Runner retains.
const DefaultCacheSize = 256

// NewRunner creates a batch Runner that executes at most workers jobs at
// once and never rejects a submission (unbounded admission queue).
// workers ≤ 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	return NewRunnerConfig(RunnerConfig{Workers: workers, Queue: -1})
}

// NewRunnerConfig creates a Runner with explicit serving limits. The zero
// RunnerConfig gives GOMAXPROCS workers, no waiting room, no job timeout,
// and the default cache size.
func NewRunnerConfig(cfg RunnerConfig) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	r := &Runner{
		sem:      make(chan struct{}, cfg.Workers),
		queue:    cfg.Queue,
		timeout:  cfg.JobTimeout,
		cache:    newResultCache(cfg.CacheSize),
		admitCap: -1,
		obs:      newRunnerObs(),
	}
	if cfg.Queue >= 0 {
		// One admission unit per job in flight: Workers executing plus at
		// most Queue waiting. A unit is held from admission to completion,
		// so memory held by pending jobs is bounded.
		r.admitCap = cfg.Workers + cfg.Queue
	}
	r.exec = Execute
	return r
}

// tryAdmit reserves n admission units if they all fit, atomically.
func (r *Runner) tryAdmit(n int) bool {
	if r.admitCap < 0 {
		return true
	}
	r.admitMu.Lock()
	defer r.admitMu.Unlock()
	if r.inFlight+n > r.admitCap {
		return false
	}
	r.inFlight += n
	return true
}

func (r *Runner) releaseAdmit(n int) {
	if r.admitCap < 0 {
		return
	}
	r.admitMu.Lock()
	r.inFlight -= n
	r.admitMu.Unlock()
}

// Submit enqueues one job and returns a channel that receives its Result
// exactly once. Submission never blocks; on a bounded, saturated Runner the
// Result carries ErrQueueFull.
func (r *Runner) Submit(j Job) <-chan Result {
	out, err := r.SubmitCtx(context.Background(), j)
	if err != nil {
		ch := make(chan Result, 1)
		ch <- Result{Job: j, Err: err}
		return ch
	}
	return out
}

// SubmitCtx enqueues one job under a context and returns a channel that
// receives its Result exactly once. It never blocks: a cached result is
// delivered immediately without consuming any serving capacity, and on a
// bounded Runner at capacity it returns ErrQueueFull immediately
// (backpressure). The context cancels the job while queued or running; the
// Runner's JobTimeout, if set, additionally bounds execution time. A Result
// whose Err is the context's error was abandoned, not computed. By the time
// the Result is receivable, the job's worker slot and admission unit have
// been released: receive-then-resubmit never observes stale saturation.
func (r *Runner) SubmitCtx(ctx context.Context, j Job) (<-chan Result, error) {
	if out, ok := r.cachedFastPath(j); ok {
		return out, nil
	}
	if !r.tryAdmit(1) {
		r.rejected.Add(1)
		return nil, ErrQueueFull
	}
	return r.start(ctx, j, true), nil
}

// SubmitReplayCtx enqueues one job recovered from a durable job log,
// bypassing the admission bound: the job consumed an admission unit before
// the crash, so a colder post-restart queue must not refuse it with
// ErrQueueFull. Execution still shares the worker pool (a replay burst
// cannot starve the machine, only the waiting line), cached results are
// served as usual, and the context/timeout semantics match SubmitCtx. The
// error return is always nil for a Runner; it exists so scripted Backend
// seams can exercise refusal paths.
func (r *Runner) SubmitReplayCtx(ctx context.Context, j Job) (<-chan Result, error) {
	if out, ok := r.cachedFastPath(j); ok {
		return out, nil
	}
	r.replayed.Add(1)
	return r.start(ctx, j, false), nil
}

// SubmitAllCtx admits a batch of jobs atomically: either every non-cached
// job in the batch is admitted, or none is and ErrQueueFull is returned —
// concurrent batches cannot partially admit and mutually starve each other.
// Cached jobs are served without consuming capacity. Result channels are
// returned in job order.
//
// Cache hits are looked up before the admission decision but counted (and
// their result channels created) only after it succeeds: a refused batch
// delivers no results, so counting its cached members as Submitted/CacheHits
// would overcount — and double-count once the caller retries the batch.
func (r *Runner) SubmitAllCtx(ctx context.Context, jobs []Job) ([]<-chan Result, error) {
	hits := make([]Result, len(jobs))
	var misses []int
	for i, j := range jobs {
		if res, ok := r.cache.get(j.cacheKey()); ok {
			hits[i] = res
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) > 0 && !r.tryAdmit(len(misses)) {
		r.rejected.Add(int64(len(misses)))
		return nil, ErrQueueFull
	}
	chans := make([]<-chan Result, len(jobs))
	mi := 0
	for i := range jobs {
		if mi < len(misses) && misses[mi] == i {
			chans[i] = r.start(ctx, jobs[i], true)
			mi++
			continue
		}
		chans[i] = r.deliverCached(jobs[i], hits[i])
	}
	return chans, nil
}

// cachedFastPath serves a job straight from the result cache, bypassing
// admission and the worker pool. Cached results are immutable, so the only
// work is a map lookup — a hit must never queue behind real jobs or be
// rejected by a saturated Runner. Hits count only toward Submitted and
// CacheHits: Completed/Failed track executions, and re-counting a cached
// error on every hit would fabricate a failure spike.
func (r *Runner) cachedFastPath(j Job) (<-chan Result, bool) {
	res, hit := r.cache.get(j.cacheKey())
	if !hit {
		return nil, false
	}
	return r.deliverCached(j, res), true
}

// deliverCached counts one cache-served submission and wraps the stored
// result in a delivered channel. Callers must invoke it only once the result
// is actually going to reach the requester — after batch admission, in
// SubmitAllCtx's case.
func (r *Runner) deliverCached(j Job, res Result) <-chan Result {
	r.submitted.Add(1)
	r.cacheHits.Add(1)
	res.Job = j
	res.Cached = true
	out := make(chan Result, 1)
	out <- res
	return out
}

// start launches one job. admitted reports whether it holds an admission
// unit (replayed jobs do not); a held unit is released before the Result
// becomes receivable.
func (r *Runner) start(ctx context.Context, j Job, admitted bool) <-chan Result {
	r.submitted.Add(1)
	r.queued.Add(1)
	enqueued := time.Now()
	out := make(chan Result, 1)
	go func() {
		res := r.executeAdmitted(ctx, j, enqueued)
		if admitted {
			r.releaseAdmit(1)
		}
		out <- res
	}()
	return out
}

// executeAdmitted waits for a worker slot and runs the job; the slot is
// released (via defer) before the caller delivers the Result.
func (r *Runner) executeAdmitted(ctx context.Context, j Job, enqueued time.Time) Result {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		r.queued.Add(-1)
		r.canceled.Add(1)
		return Result{Job: j, Err: ctx.Err()}
	}
	r.queued.Add(-1)
	r.active.Add(1)
	r.executed.Add(1)
	wait := time.Since(enqueued)
	r.waitNanos.Add(wait.Nanoseconds())
	r.obs.QueueWait.ObserveDuration(wait)
	defer func() {
		<-r.sem
		r.active.Add(-1)
	}()
	jctx := ctx
	timeout := r.timeout
	if j.Timeout != 0 {
		timeout = j.Timeout // negative disables the deadline
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var acc phaseAccum
	start := time.Now()
	res := r.run(jctx, r.observe(j, &acc))
	res.Job = j // the observed copy's chained Profile hook is an internal detail
	run := time.Since(start)
	r.runNanos.Add(run.Nanoseconds())
	r.obs.Run.ObserveDuration(run)
	r.recordFlight(j, res, wait, run, &acc)
	r.countOutcome(res.Err)
	return res
}

func (r *Runner) countOutcome(err error) {
	switch {
	case err == nil:
		r.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.canceled.Add(1)
	default:
		r.failed.Add(1)
	}
}

// RunnerStats is a point-in-time snapshot of a Runner's counters.
type RunnerStats struct {
	Workers    int // worker-pool size
	QueueLimit int // admission queue bound (-1 = unbounded)

	Active int // jobs executing right now
	Queued int // jobs admitted and waiting for a worker

	Submitted int64 // submissions accepted (including cache-served)
	Rejected  int64 // submissions refused with ErrQueueFull
	Replayed  int64 // recovered jobs re-admitted outside the admission bound
	Executed  int64 // jobs that acquired a worker (the latency denominators)
	Completed int64 // executed jobs that finished without error
	Failed    int64 // executed jobs that finished with a non-cancellation error
	Canceled  int64 // jobs abandoned by context cancellation or timeout
	CacheHits int64 // submissions served from the result cache

	CacheLen int // distinct results currently cached

	TotalWait time.Duration // cumulative time jobs spent queued
	TotalRun  time.Duration // cumulative time jobs spent executing
}

// Stats returns a consistent-enough snapshot of the Runner's counters for
// monitoring; individual fields are loaded atomically but not as one
// transaction.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Workers:    cap(r.sem),
		QueueLimit: r.queue,
		Active:     int(r.active.Load()),
		Queued:     int(r.queued.Load()),
		Submitted:  r.submitted.Load(),
		Rejected:   r.rejected.Load(),
		Replayed:   r.replayed.Load(),
		Executed:   r.executed.Load(),
		Completed:  r.completed.Load(),
		Failed:     r.failed.Load(),
		Canceled:   r.canceled.Load(),
		CacheHits:  r.cacheHits.Load(),
		CacheLen:   r.cache.len(),
		TotalWait:  time.Duration(r.waitNanos.Load()),
		TotalRun:   time.Duration(r.runNanos.Load()),
	}
}

// RealizeAll runs all jobs with the Runner's bounded parallelism and returns
// the results in job order. Every simulation is seeded only by its own
// Options, so results are independent of scheduling and worker count.
func (r *Runner) RealizeAll(jobs []Job) []Result {
	chans := make([]<-chan Result, len(jobs))
	for i, j := range jobs {
		chans[i] = r.Submit(j)
	}
	out := make([]Result, len(jobs))
	for i, c := range chans {
		out[i] = <-c
	}
	return out
}

// SweepSeeds expands a base job into one job per seed, overriding only
// Options.Seed. It is the standard way to build a deterministic multi-seed
// sweep for RealizeAll.
func SweepSeeds(base Job, seeds []int64) []Job {
	jobs := make([]Job, len(seeds))
	for i, seed := range seeds {
		opt := base.Opt.norm()
		opt.Seed = seed
		j := base
		j.Opt = &opt
		jobs[i] = j
	}
	return jobs
}

func (r *Runner) run(ctx context.Context, j Job) Result {
	key := j.cacheKey()
	if res, hit := r.cache.get(key); hit {
		r.cacheHits.Add(1)
		res.Job = j
		res.Cached = true
		return res
	}
	res := r.exec(ctx, j)
	// Deterministic outcomes (including ErrUnrealizable / ErrBadInput) are
	// cacheable; an abandoned run is not — the next requester must compute it.
	// The stored entry carries no Job: every hit path overwrites it with the
	// requester's job anyway, and retaining it would pin the submitter's
	// Options (whose Progress hook can reference arbitrary caller state) for
	// the entry's whole LRU lifetime.
	if !errors.Is(res.Err, context.Canceled) && !errors.Is(res.Err, context.DeadlineExceeded) {
		stored := res
		stored.Job = Job{}
		r.cache.put(key, stored)
	}
	return res
}

// Execute dispatches one job to the facade entry point for its kind,
// honouring ctx: cancellation or deadline expiry aborts the simulation
// between rounds and yields a Result whose Err is the context's error.
func Execute(ctx context.Context, j Job) Result {
	res := Result{Job: j}
	switch j.Kind {
	case JobDegrees:
		res.Graph, res.Stats, res.Err = realizeDegrees(ctx, j.Seq, j.Opt, false)
	case JobDegreesExplicit:
		res.Graph, res.Stats, res.Err = realizeDegrees(ctx, j.Seq, j.Opt, true)
	case JobUpperEnvelope:
		res.Graph, res.Envelope, res.Stats, res.Err = realizeEnvelope(ctx, j.Seq, j.Opt)
	case JobChainTree:
		res.Graph, res.Stats, res.Err = realizeTree(ctx, j.Seq, j.Opt, false)
	case JobMinDiamTree:
		res.Graph, res.Stats, res.Err = realizeTree(ctx, j.Seq, j.Opt, true)
	case JobConnectivity:
		res.Graph, res.Stats, res.Err = realizeConnectivity(ctx, j.Seq, j.Opt)
	default:
		res.Err = fmt.Errorf("graphrealize: unknown JobKind %d", int(j.Kind))
	}
	return res
}

// cacheKey identifies a job's deterministic result: the kind, the sequence
// (compacted into a collision-free byte string), and the outcome-affecting
// Options fields. Runs are deterministic for fixed options, so equal keys
// imply equal results; varint-style delta coding keeps typical keys short.
type cacheKey struct {
	kind JobKind
	seq  string
	opt  optKey
}

// optKey is the comparable projection of Options used in cache keys: every
// field that affects a run's outcome, and nothing else. Progress and Profile
// are observational (and, being funcs, not comparable), so jobs differing
// only in their hooks share one cached result; Job.TraceID is likewise
// excluded — correlation IDs identify requests, not results.
type optKey struct {
	model     Model
	seed      int64
	strict    bool
	capMul    int
	sort      SortMethod
	maxRounds int
	// sched is part of the key even though both drivers produce identical
	// results: keeping the namespaces separate makes Cached flags (and
	// therefore benchmarks and driver-conformance checks) predictable —
	// a pool-driver submission is never silently served by a barrier run.
	sched Scheduler
}

func (o Options) key() optKey {
	return optKey{
		model:     o.Model,
		seed:      o.Seed,
		strict:    o.Strict,
		capMul:    o.CapMul,
		sort:      o.Sort,
		maxRounds: o.MaxRounds,
		sched:     o.Scheduler,
	}
}

func (j Job) cacheKey() cacheKey {
	buf := make([]byte, 0, 2*len(j.Seq))
	for _, v := range j.Seq {
		u := uint64(v)<<1 ^ uint64(int64(v)>>63) // zig-zag for the odd negative input
		for u >= 0x80 {
			buf = append(buf, byte(u)|0x80)
			u >>= 7
		}
		buf = append(buf, byte(u))
	}
	return cacheKey{
		kind: j.Kind,
		seq:  string(buf),
		opt:  j.Opt.norm().key(),
	}
}

// RouteKey returns the canonical routing key of a job: a printable,
// collision-free rendering of exactly the fields that form the Runner's
// result cache key — the kind, the zig-zag-varint-packed sequence, and the
// outcome-affecting Options (Model, Seed, Strict, CapMul, Sort, MaxRounds,
// Scheduler). Label, TraceID, Timeout, and the Progress/Profile hooks never
// contribute, mirroring their exclusion from the cache key. The cluster
// coordinator hashes this key to pick a job's owning worker (CLUSTER.md §4),
// so the distributed result cache shards: two jobs land on the same worker
// exactly when a single Runner would serve one from the other's cache.
func (j Job) RouteKey() string {
	k := j.cacheKey()
	return fmt.Sprintf("%s|%x|m%d.s%d.t%t.c%d.o%d.r%d.%s",
		k.kind, k.seq, int(k.opt.model), k.opt.seed, k.opt.strict,
		k.opt.capMul, int(k.opt.sort), k.opt.maxRounds, k.opt.sched)
}

// resultCache is a small mutex-guarded LRU keyed by cacheKey.
type resultCache struct {
	mu    sync.Mutex
	limit int
	m     map[cacheKey]*cacheEntry
	head  *cacheEntry // most recently used
	tail  *cacheEntry // least recently used
}

type cacheEntry struct {
	key        cacheKey
	res        Result
	prev, next *cacheEntry
}

func newResultCache(limit int) *resultCache {
	return &resultCache{limit: limit, m: make(map[cacheKey]*cacheEntry, limit)}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *resultCache) get(k cacheKey) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return Result{}, false
	}
	c.moveToFront(e)
	return e.res, true
}

func (c *resultCache) put(k cacheKey, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.res = res
		c.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, res: res}
	c.m[k] = e
	c.pushFront(e)
	if len(c.m) > c.limit {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
}

func (c *resultCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *resultCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
