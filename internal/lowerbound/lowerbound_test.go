package lowerbound

import (
	"testing"

	"graphrealize/internal/gen"
	"graphrealize/internal/seq"
)

func TestExplicitFloor(t *testing.T) {
	d := gen.Regular(64, 32)
	if f := ExplicitFloor(d, 8); f != 4 {
		t.Fatalf("floor = %d, want 4", f)
	}
	if f := ExplicitFloor(d, 100); f != 1 {
		t.Fatalf("floor = %d, want 1 (ceil)", f)
	}
	if f := ExplicitFloor(d, 0); f != 32 {
		t.Fatalf("cap clamp failed: %d", f)
	}
}

func TestImplicitFloorDStar(t *testing.T) {
	d := gen.LowerBoundDStar(128, 128*128/4)
	m := seq.SumDegrees(d) / 2
	if m == 0 {
		t.Fatal("degenerate D*")
	}
	f := ImplicitFloorDStar(d, 16)
	if f < 1 {
		t.Fatalf("floor = %d", f)
	}
	// Doubling the capacity should not increase the floor.
	if f2 := ImplicitFloorDStar(d, 32); f2 > f {
		t.Fatalf("floor grew with capacity: %d -> %d", f, f2)
	}
	if ImplicitFloorDStar([]int{0, 0, 0}, 8) != 0 {
		t.Fatal("zero-edge floor should be 0")
	}
}

func TestImplicitFloorRegular(t *testing.T) {
	info, structural := ImplicitFloorRegular(40, 8)
	if info != 5 || structural != 40 {
		t.Fatalf("got (%d,%d), want (5,40)", info, structural)
	}
}

func TestKnowledgeVolume(t *testing.T) {
	if KnowledgeVolume([]int{3, 2, 1}) != 6 {
		t.Fatal("volume")
	}
}

func TestTightness(t *testing.T) {
	ti := NewTightness(100, 10)
	if ti.Ratio != 10 {
		t.Fatalf("ratio = %v", ti.Ratio)
	}
	// floor 0 must not divide by zero
	ti = NewTightness(7, 0)
	if ti.Ratio != 7 {
		t.Fatalf("ratio with zero floor = %v", ti.Ratio)
	}
}
