// Package lowerbound operationalizes the lower bounds of §7 as measurable
// quantities, so the benchmark harness can report how close the upper-bound
// algorithms run to the Ω(·) barriers.
//
// The arguments being information-theoretic, the measurable counterpart of
// each bound is a knowledge-volume count: an implicit realization must move
// at least KnowledgeVolume(D) IDs into the nodes that request edges, and a
// node can take in at most capacity = Θ(log n) IDs per round. Theorem 19's
// explicit bound is the per-node version (the maximum-degree node alone must
// receive Δ IDs); Theorem 20's D* family forces some node to receive
// Ω(√m) IDs, and the Δ-regular family forces Ω(Δ) rounds.
package lowerbound

import (
	"math"

	"graphrealize/internal/seq"
)

// ExplicitFloor returns the Theorem 19 floor in rounds for a degree
// sequence with maximum degree Δ under per-round receive capacity cap:
// ⌈Δ/cap⌉. Any explicit realization algorithm needs at least this many
// rounds on every instance.
func ExplicitFloor(d []int, cap int) int {
	if cap < 1 {
		cap = 1
	}
	delta := seq.MaxDegree(d)
	return (delta + cap - 1) / cap
}

// ImplicitFloorDStar returns the Theorem 20 floor in rounds for the D*
// family: with k = ⌊√m⌋ nodes of degree ≈ k, the k requesting nodes must
// jointly learn Ω(m) IDs, so some node learns ≥ m/k ≈ √m of them:
// ⌈(m/k)/cap⌉ rounds.
func ImplicitFloorDStar(d []int, cap int) int {
	if cap < 1 {
		cap = 1
	}
	m := seq.SumDegrees(d) / 2
	if m == 0 {
		return 0
	}
	k := int(math.Sqrt(float64(m)))
	if k < 1 {
		k = 1
	}
	perNode := (m + k - 1) / k
	return (perNode + cap - 1) / cap
}

// ImplicitFloorRegular returns the Ω(Δ) floor of Theorem 20's second
// family (dᵢ = Δ for all i): every node must learn Δ IDs, but here the
// bound is stated in raw rounds — the adversarial argument of the paper
// charges Ω(Δ) rounds even with Θ(log n) capacity because knowledge must
// propagate from a path. We report the weaker ⌈Δ/cap⌉ information floor
// and the Δ structural floor separately.
func ImplicitFloorRegular(delta, cap int) (infoFloor, structFloor int) {
	if cap < 1 {
		cap = 1
	}
	return (delta + cap - 1) / cap, delta
}

// KnowledgeVolume returns Σdᵢ, the total number of (endpoint, ID) pairs any
// implicit realization must establish — the measurable core of both lower
// bound arguments.
func KnowledgeVolume(d []int) int { return seq.SumDegrees(d) }

// Tightness summarizes an upper-bound measurement against its floor.
type Tightness struct {
	MeasuredRounds int
	FloorRounds    int
	// Ratio = measured / max(1, floor); the theorems predict it is
	// O(polylog n) on the adversarial families.
	Ratio float64
}

// NewTightness computes the summary.
func NewTightness(measured, floor int) Tightness {
	f := floor
	if f < 1 {
		f = 1
	}
	return Tightness{MeasuredRounds: measured, FloorRounds: floor, Ratio: float64(measured) / float64(f)}
}
