package ncc

import (
	"fmt"
	"runtime/debug"
)

// flat.go is the zero-goroutine columnar Scheduler. The barrier and pool
// drivers suspend a blocking protocol by parking its goroutine; the flat
// driver runs step-form protocols (program.go) instead, so a node's
// between-round state is nothing but its stored continuation. All per-node
// "scheduler state" lives in struct-of-arrays slices indexed by Gk position —
// one continuation column and one op-kind column — and Release is a tight
// loop on the engine goroutine that invokes each released node's continuation
// inline. No node goroutines exist, so AwaitAll has nothing to wait for and
// the whole simulation is a single goroutine regardless of n.
//
// Trace identity with the goroutine drivers is achieved by mirroring, step by
// step, exactly what a blocking node observes around a park:
//
//	park entry:  recycle retired inbox → write state/wakeRound → check in
//	park return: killed? unwind · clear sentThisRound · take inbox · NCC0 learn
//	Collective:  additionally consume collOut (CollectiveOut → Learn + Val)
//
// step() performs the park-return bookkeeping before invoking the stored
// continuation and the park-entry bookkeeping after it returns the next Op,
// in the same order, against the same fields, so the engine — which is shared
// verbatim — sees byte-identical check-in states every round.
//
// Phase profiling (Config.Profile): Release steps every node inline, so the
// whole round's protocol work happens inside the engine's compute span
// (Release → AwaitAll, where AwaitAll is a no-op here). Compute therefore
// means the same thing on every driver — time spent running node slices —
// and barrier shrinks to pure engine bookkeeping.
type flatScheduler struct {
	sim   *Sim
	entry Proto
	// conts[i] / kinds[i] are node i's stored continuation and the op kind it
	// suspended with; kinds discriminates the collective wake path (blocking
	// code leaves collTag set after a collective, so the tag can't).
	conts []Cont
	kinds []opKind
	// panics collects classified node failures for the engine loop, exactly
	// like the channel Run passes to drive.
	panics chan error
}

func newFlatScheduler() *flatScheduler { return &flatScheduler{} }

// runFlat is RunProgram's flat path: Run's shape with the Spawn replaced by a
// direct Release of the full node set (step starts each node's protocol on
// first release, mirroring the pool driver's lazy body start).
func (s *Sim) runFlat(f *flatScheduler, entry Proto) (*Trace, error) {
	f.sim = s
	f.entry = entry
	f.conts = make([]Cont, s.n)
	f.kinds = make([]opKind, s.n)
	f.panics = make(chan error, s.n)
	s.active = append(s.active[:0], s.nodes...)
	f.Release(s.active)
	s.drive(f.panics)
	s.sched.Shutdown()
	return s.buildTrace(), s.firstErr
}

// Release advances every released node by one step, inline on the engine
// goroutine. The engine passes the set already in deterministic order.
func (f *flatScheduler) Release(nodes []*Node) {
	for _, nd := range nodes {
		f.step(nd)
	}
}

// AwaitAll is a no-op: Release already ran every check-in synchronously.
func (f *flatScheduler) AwaitAll() {}

// Shutdown is a no-op: the flat driver owns no goroutines at all.
func (f *flatScheduler) Shutdown() {}

// Spawn would start blocking bodies; the flat driver has no way to suspend
// them. Sim.Run refuses flat sims before ever reaching this.
func (f *flatScheduler) Spawn(nodes []*Node, body func(*Node)) {
	panic("ncc: the flat driver runs step-form protocols only; use Sim.RunProgram")
}

// Park/Depart are node-side barrier entries; a step-form protocol has no
// goroutine to block, so reaching them means a continuation called into the
// blocking Node API. The panic surfaces through step's recover as a protocol
// error on the offending node.
func (f *flatScheduler) Park(nd *Node) {
	panic("ncc: blocking Node call (NextRound/AwaitMessage/SkipRounds/Collective) inside a flat-driver step; return an Op instead")
}

func (f *flatScheduler) Depart(nd *Node) {
	panic("ncc: blocking Node call (NextRound/AwaitMessage/SkipRounds/Collective) inside a flat-driver step; return an Op instead")
}

// finish retires a node: the flat analogue of the body goroutine returning
// (or unwinding) into the deferred Depart.
func (f *flatScheduler) finish(nd *Node) {
	nd.state = stateDone
	f.conts[nd.idx] = nil
}

// step runs one node's compute slice for the current round: park-return
// bookkeeping, continuation, park-entry bookkeeping.
func (f *flatScheduler) step(nd *Node) {
	if nd.killed {
		// Blocking nodes unwind via killedPanic straight from park, before any
		// post-wake bookkeeping; mirror that by touching nothing.
		f.finish(nd)
		return
	}

	var w Wake
	started := nd.started
	if started {
		// park-return bookkeeping (node.go park, after sched.Park returns).
		nd.sentThisRound = 0
		in := nd.inbox
		nd.inbox = nil
		nd.retired = in
		if nd.known != nil {
			for i := range in {
				nd.known[in[i].Src] = struct{}{}
				for _, id := range in[i].IDs {
					if id != None && id != nd.id {
						nd.known[id] = struct{}{}
					}
				}
			}
		}
		if f.kinds[nd.idx] == opCollective {
			// Node.Collective's post-park consumption. collTag stays set, as
			// in the blocking code; the delivered inbox (always empty at a
			// collective barrier) was still taken and learned above.
			out := nd.collOut
			nd.collOut = nil
			nd.collIn = nil
			if co, ok := out.(CollectiveOut); ok {
				for _, id := range co.Learn {
					nd.Learn(id)
				}
				w.Coll = co.Val
			} else {
				w.Coll = out
			}
		} else {
			w.Msgs = in
		}
	} else {
		nd.started = true
	}

	op, ok := f.invoke(nd, w, started)
	if !ok || op.kind == opDone {
		// Depart path: no retired-inbox recycle — a blocking body's final
		// return never re-enters park either.
		f.finish(nd)
		return
	}

	// park-entry bookkeeping (node.go park, before sched.Park).
	if nd.retired != nil {
		f.sim.del.recycle(nd.retired)
		nd.retired = nil
	}
	switch op.kind {
	case opNext:
		nd.state = stateRunning
		nd.wakeRound = 0
	case opAwait:
		nd.state = stateAwait
		nd.wakeRound = 0
	case opSleep:
		nd.state = stateSleep
		nd.wakeRound = f.sim.round + op.sleep
	case opCollective:
		nd.collTag = op.tag
		nd.collIn = op.collIn
		nd.state = stateCollective
		nd.wakeRound = 0
	}
	f.conts[nd.idx] = op.k
	f.kinds[nd.idx] = op.kind
}

// invoke runs the node's continuation (or entry) with the same panic
// classification Run's deferred recover applies, then validates the returned
// Op against the blocking API's preconditions so violations carry identical
// error text and round numbers.
func (f *flatScheduler) invoke(nd *Node, w Wake, started bool) (op Op, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case killedPanic:
				// intentional unwind
			case protoError:
				f.panics <- v.err
			default:
				f.panics <- fmt.Errorf("ncc: node %d panicked: %v\n%s", nd.id, r, debug.Stack())
			}
			ok = false
		}
	}()
	if started {
		op = f.conts[nd.idx](nd, w)
	} else {
		op = f.entry(nd)
	}
	if op.kind == opSleep && op.sleep < 1 {
		nd.fail("SkipRounds(%d): k must be ≥ 1", op.sleep)
	}
	if op.kind != opDone && op.k == nil {
		nd.fail("step yielded a suspension with a nil continuation")
	}
	return op, true
}
