package ncc

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sched_conformance_test.go is the scheduler-conformance suite: every test
// runs against each Scheduler driver (and against a deliberately starved
// single-worker pool), pinning the contract that the driver choice never
// changes a run's observable outcome — traces, metrics, error classification,
// progress-hook ordering, and sleep fast-forwarding are all engine policy.

// schedVariant names one driver configuration under test. newSim exists so
// the suite can cover pool geometries (single worker) that Config alone
// cannot express.
type schedVariant struct {
	name   string
	newSim func(Config) *Sim
}

func schedVariants() []schedVariant {
	return []schedVariant{
		{"barrier", func(cfg Config) *Sim {
			cfg.Sched = SchedBarrier
			return New(cfg)
		}},
		{"pool", func(cfg Config) *Sim {
			cfg.Sched = SchedPool
			return New(cfg)
		}},
		// One worker is the maximally starved pool: every run-slice of every
		// node serializes through a single dispatcher, so any slice that
		// blocked on anything but the barrier would deadlock here. It also
		// pins the engine-inline fast path for every release size.
		{"pool-1worker", func(cfg Config) *Sim {
			s := New(cfg)
			s.sched = newPoolScheduler(1)
			return s
		}},
		// Three workers force the chunked dispatch path even on single-core
		// machines (where GOMAXPROCS would otherwise select one worker and
		// every release would run inline).
		{"pool-3workers", func(cfg Config) *Sim {
			s := New(cfg)
			s.sched = newPoolScheduler(3)
			return s
		}},
		// A tiny window forces every chunk through the worker's
		// multi-batch re-slicing loop (and the engine's multi-batch inline
		// loop) regardless of GOMAXPROCS, covering the countdown reuse
		// between batches that production sizes only hit at n > workers ×
		// poolWindow.
		{"pool-tinywindow", func(cfg Config) *Sim {
			s := New(cfg)
			p := newPoolScheduler(2)
			p.window = 4
			s.sched = p
			return s
		}},
	}
}

// forEachScheduler runs fn as a subtest per driver variant.
func forEachScheduler(t *testing.T, fn func(t *testing.T, v schedVariant)) {
	t.Helper()
	for _, v := range schedVariants() {
		t.Run("sched="+v.name, func(t *testing.T) { fn(t, v) })
	}
}

// mixedProto exercises every suspension kind the engine supports: fan-out
// sends, await, timed sleep, a collective, and staggered departure times.
func mixedProto(rounds int) func(*Node) {
	return func(nd *Node) {
		succ := nd.InitialSucc()
		for r := 0; r < rounds; r++ {
			switch {
			case r%5 == 3 && succ != None:
				nd.Send(succ, Message{Kind: 1, A: int64(r)})
				nd.NextRound()
			case r%7 == 5:
				nd.SkipRounds(2)
			default:
				nd.NextRound()
			}
		}
		total := nd.Collective("tally", int64(1)).(int64)
		nd.SetOutput("total", total)
		if succ != None {
			nd.AddEdge(succ)
		}
	}
}

func registerTally(s *Sim) {
	s.RegisterCollective("tally", func(s *Sim, ins []any) ([]any, int) {
		var sum int64
		for _, in := range ins {
			if v, ok := in.(int64); ok {
				sum += v
			}
		}
		outs := make([]any, len(ins))
		for i := range outs {
			outs[i] = sum
		}
		return outs, CeilLog2(s.N())
	})
}

// runMixed executes the mixed protocol on one driver variant and returns its
// trace.
func runMixed(t *testing.T, v schedVariant, n int, seed int64) *Trace {
	t.Helper()
	s := v.newSim(Config{N: n, Seed: seed})
	registerTally(s)
	tr, err := s.Run(mixedProto(24))
	if err != nil {
		t.Fatalf("%s: %v", v.name, err)
	}
	return tr
}

// tracesEqual compares everything a Trace exposes.
func tracesEqual(t *testing.T, want, got *Trace, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Fatalf("%s: metrics differ:\nwant %+v\ngot  %+v", label, want.Metrics, got.Metrics)
	}
	if !reflect.DeepEqual(want.IDs, got.IDs) {
		t.Fatalf("%s: ID layouts differ", label)
	}
	if want.Unrealizable != got.Unrealizable {
		t.Fatalf("%s: unrealizable flags differ", label)
	}
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: per-node results differ", label)
	}
}

// TestSchedConformanceTraceIdentical is the core guarantee: same seed, same
// protocol, byte-identical Trace on every driver, across several sizes and
// seeds — n=1, n smaller than the pool's worker count, and n=700 > poolWindow
// so multi-batch chunks and the dispatch path are both exercised.
func TestSchedConformanceTraceIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 700} {
		for _, seed := range []int64{1, 42} {
			ref := runMixed(t, schedVariants()[0], n, seed)
			for _, v := range schedVariants()[1:] {
				got := runMixed(t, v, n, seed)
				tracesEqual(t, ref, got, fmt.Sprintf("n=%d seed=%d %s", n, seed, v.name))
			}
		}
	}
}

func TestSchedConformanceDeadlock(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 5, Seed: 2})
		_, err := s.Run(func(nd *Node) {
			nd.AwaitMessage() // nobody will ever write
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("want ErrDeadlock, got %v", err)
		}
	})
}

func TestSchedConformanceStopAtBarrier(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		stop := make(chan struct{})
		cfg := Config{N: 4, Seed: 3, Stop: stop}
		s := v.newSim(cfg)
		first := s.IDs()[0]
		tr, err := s.Run(func(nd *Node) {
			for r := 0; ; r++ {
				if nd.ID() == first && r == 50 {
					close(stop)
				}
				nd.NextRound()
			}
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		if tr == nil || tr.Metrics.Rounds < 50 {
			t.Fatalf("run stopped before the protocol closed Stop (trace %+v)", tr)
		}
	})
}

// TestSchedConformanceProgressOrdering pins the hook contract: one invocation
// per barrier on the engine goroutine, (round, msgs) nondecreasing, and the
// exact same sequence on every driver.
func TestSchedConformanceProgressOrdering(t *testing.T) {
	type tick struct{ round, msgs int }
	record := func(v schedVariant) []tick {
		var ticks []tick
		cfg := Config{N: 6, Seed: 9, Progress: func(round, msgs int) {
			ticks = append(ticks, tick{round, msgs})
		}}
		s := v.newSim(cfg)
		registerTally(s)
		if _, err := s.Run(mixedProto(16)); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		return ticks
	}
	variants := schedVariants()
	ref := record(variants[0])
	if len(ref) == 0 {
		t.Fatal("progress hook never fired")
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].round < ref[i-1].round || ref[i].msgs < ref[i-1].msgs {
			t.Fatalf("progress not monotone at %d: %+v after %+v", i, ref[i], ref[i-1])
		}
	}
	for _, v := range variants[1:] {
		if got := record(v); !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: progress sequence differs from barrier's (%d vs %d ticks)", v.name, len(got), len(ref))
		}
	}
}

// TestSchedConformanceSleepFastForward pins the sleepHeap contract: rounds in
// which every node sleeps are skipped in O(1), on every driver, with
// identical round accounting.
func TestSchedConformanceSleepFastForward(t *testing.T) {
	const skip = 1_000_000
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 8, Seed: 4})
		tr, err := s.Run(func(nd *Node) {
			nd.SkipRounds(skip)
			nd.NextRound()
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Metrics.Rounds < skip {
			t.Fatalf("rounds=%d, want ≥ %d (fast-forwarded)", tr.Metrics.Rounds, skip)
		}
		// The engine charges no active-node rounds for skipped rounds.
		if tr.Metrics.ActiveNodeRounds > 3*8 {
			t.Fatalf("fast-forward was not cheap: %d active node-rounds", tr.Metrics.ActiveNodeRounds)
		}
	})
}

func TestSchedConformancePanicPropagates(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 4, Seed: 6})
		victim := s.IDs()[1]
		_, err := s.Run(func(nd *Node) {
			nd.NextRound()
			if nd.ID() == victim {
				panic("boom")
			}
			for {
				nd.NextRound()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("want propagated panic, got %v", err)
		}
	})
}

// TestSchedConformanceStrictViolation pins that strict-mode capacity errors
// (raised by the delivery layer, not the driver) classify identically.
func TestSchedConformanceStrictViolation(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 4, Seed: 8, CapMul: 1, Strict: true, Model: NCC1})
		_, err := s.Run(func(nd *Node) {
			if nd.ID() == 1 {
				// Flood node 2 beyond the capacity from a single sender.
				for i := 0; i < nd.Capacity()+1; i++ {
					nd.Send(2, Message{Kind: 1})
				}
			}
			nd.NextRound()
		})
		if err == nil {
			t.Fatal("want a strict capacity violation error")
		}
	})
}
