package ncc

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sched_conformance_test.go is the scheduler-conformance suite: every test
// runs against each Scheduler driver (and against a deliberately starved
// single-worker pool), pinning the contract that the driver choice never
// changes a run's observable outcome — traces, metrics, error classification,
// progress-hook ordering, and sleep fast-forwarding are all engine policy.
//
// Every test protocol exists in two forms: a blocking body (the legacy node
// API) and a step-form twin (program.go). Goroutine drivers run the blocking
// form; step variants run the step form via RunProgram. The barrier-steps
// variant runs the step form on the barrier driver, pinning that the RunOps
// adapter is observably identical to native blocking code — which, combined
// with the flat variant, proves blocking ≡ steps ≡ flat.

// schedVariant names one driver configuration under test. newSim exists so
// the suite can cover pool geometries (single worker) that Config alone
// cannot express; steps selects the step-form protocol twin via RunProgram.
type schedVariant struct {
	name   string
	steps  bool
	newSim func(Config) *Sim
}

// run executes the variant's preferred protocol form on s.
func (v schedVariant) run(s *Sim, blocking func(*Node), entry Proto) (*Trace, error) {
	if v.steps {
		return s.RunProgram(entry)
	}
	return s.Run(blocking)
}

func schedVariants() []schedVariant {
	return []schedVariant{
		{"barrier", false, func(cfg Config) *Sim {
			cfg.Sched = SchedBarrier
			return New(cfg)
		}},
		{"pool", false, func(cfg Config) *Sim {
			cfg.Sched = SchedPool
			return New(cfg)
		}},
		// One worker is the maximally starved pool: every run-slice of every
		// node serializes through a single dispatcher, so any slice that
		// blocked on anything but the barrier would deadlock here. It also
		// pins the engine-inline fast path for every release size.
		{"pool-1worker", false, func(cfg Config) *Sim {
			s := New(cfg)
			s.sched = newPoolScheduler(1)
			return s
		}},
		// Three workers force the chunked dispatch path even on single-core
		// machines (where GOMAXPROCS would otherwise select one worker and
		// every release would run inline).
		{"pool-3workers", false, func(cfg Config) *Sim {
			s := New(cfg)
			s.sched = newPoolScheduler(3)
			return s
		}},
		// A tiny window forces every chunk through the worker's
		// multi-batch re-slicing loop (and the engine's multi-batch inline
		// loop) regardless of GOMAXPROCS, covering the countdown reuse
		// between batches that production sizes only hit at n > workers ×
		// poolWindow.
		{"pool-tinywindow", false, func(cfg Config) *Sim {
			s := New(cfg)
			p := newPoolScheduler(2)
			p.window = 4
			s.sched = p
			return s
		}},
		// The zero-goroutine columnar driver; runs the step-form twins.
		{"flat", true, func(cfg Config) *Sim {
			cfg.Sched = SchedFlat
			return New(cfg)
		}},
		// Step-form protocols on the barrier driver: pins RunOps ≡ blocking,
		// so flat-vs-barrier diffs can be attributed to the driver, not the
		// protocol translation.
		{"barrier-steps", true, func(cfg Config) *Sim {
			cfg.Sched = SchedBarrier
			return New(cfg)
		}},
	}
}

// forEachScheduler runs fn as a subtest per driver variant.
func forEachScheduler(t *testing.T, fn func(t *testing.T, v schedVariant)) {
	t.Helper()
	for _, v := range schedVariants() {
		t.Run("sched="+v.name, func(t *testing.T) { fn(t, v) })
	}
}

// mixedProto exercises every suspension kind the engine supports: fan-out
// sends, await, timed sleep, a collective, and staggered departure times.
func mixedProto(rounds int) func(*Node) {
	return func(nd *Node) {
		succ := nd.InitialSucc()
		for r := 0; r < rounds; r++ {
			switch {
			case r%5 == 3 && succ != None:
				nd.Send(succ, Message{Kind: 1, A: int64(r)})
				nd.NextRound()
			case r%7 == 5:
				nd.SkipRounds(2)
			default:
				nd.NextRound()
			}
		}
		total := nd.Collective("tally", int64(1)).(int64)
		nd.SetOutput("total", total)
		if succ != None {
			nd.AddEdge(succ)
		}
	}
}

// mixedProtoStep is mixedProto compiled to step form: the loop variable lives
// in the closure chain instead of on a goroutine stack.
func mixedProtoStep(rounds int) Proto {
	return func(nd *Node) Op {
		succ := nd.InitialSucc()
		var loop func(r int) Op
		loop = func(r int) Op {
			if r >= rounds {
				return Collective("tally", int64(1), func(nd *Node, w Wake) Op {
					nd.SetOutput("total", w.Coll.(int64))
					if succ != None {
						nd.AddEdge(succ)
					}
					return Done()
				})
			}
			k := func(nd *Node, w Wake) Op { return loop(r + 1) }
			switch {
			case r%5 == 3 && succ != None:
				nd.Send(succ, Message{Kind: 1, A: int64(r)})
				return Next(k)
			case r%7 == 5:
				return Sleep(2, k)
			default:
				return Next(k)
			}
		}
		return loop(0)
	}
}

func registerTally(s *Sim) {
	s.RegisterCollective("tally", func(s *Sim, ins []any) ([]any, int) {
		var sum int64
		for _, in := range ins {
			if v, ok := in.(int64); ok {
				sum += v
			}
		}
		outs := make([]any, len(ins))
		for i := range outs {
			outs[i] = sum
		}
		return outs, CeilLog2(s.N())
	})
}

// runMixed executes the mixed protocol on one driver variant and returns its
// trace.
func runMixed(t *testing.T, v schedVariant, n int, seed int64) *Trace {
	t.Helper()
	s := v.newSim(Config{N: n, Seed: seed})
	registerTally(s)
	tr, err := v.run(s, mixedProto(24), mixedProtoStep(24))
	if err != nil {
		t.Fatalf("%s: %v", v.name, err)
	}
	return tr
}

// tracesEqual compares everything a Trace exposes.
func tracesEqual(t *testing.T, want, got *Trace, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Fatalf("%s: metrics differ:\nwant %+v\ngot  %+v", label, want.Metrics, got.Metrics)
	}
	if !reflect.DeepEqual(want.IDs, got.IDs) {
		t.Fatalf("%s: ID layouts differ", label)
	}
	if want.Unrealizable != got.Unrealizable {
		t.Fatalf("%s: unrealizable flags differ", label)
	}
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: per-node results differ", label)
	}
}

// TestSchedConformanceTraceIdentical is the core guarantee: same seed, same
// protocol, byte-identical Trace on every driver, across several sizes and
// seeds — n=1, n smaller than the pool's worker count, and n=700 > poolWindow
// so multi-batch chunks and the dispatch path are both exercised.
func TestSchedConformanceTraceIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 700} {
		for _, seed := range []int64{1, 42} {
			ref := runMixed(t, schedVariants()[0], n, seed)
			for _, v := range schedVariants()[1:] {
				got := runMixed(t, v, n, seed)
				tracesEqual(t, ref, got, fmt.Sprintf("n=%d seed=%d %s", n, seed, v.name))
			}
		}
	}
}

// TestSchedConformanceProfileInert pins the observability contract from
// Config.Profile's doc: enabling phase profiling changes nothing observable.
// The same (n, seed) run with the hook set produces a Trace byte-identical to
// the unprofiled run on every driver — wall-clock timings flow only through
// the hook, never into Metrics or per-node results.
func TestSchedConformanceProfileInert(t *testing.T) {
	for _, n := range []int{1, 6, 64} {
		for _, seed := range []int64{1, 42} {
			for _, v := range schedVariants() {
				ref := runMixed(t, v, n, seed)

				rounds := 0
				var total time.Duration
				s := v.newSim(Config{N: n, Seed: seed, Profile: func(c, d, b time.Duration) {
					rounds++
					total += c + d + b
				}})
				registerTally(s)
				got, err := v.run(s, mixedProto(24), mixedProtoStep(24))
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: %v", v.name, n, seed, err)
				}
				tracesEqual(t, ref, got, fmt.Sprintf("profiled n=%d seed=%d %s", n, seed, v.name))
				if rounds == 0 {
					t.Fatalf("%s n=%d seed=%d: profile hook never fired", v.name, n, seed)
				}
				if rounds > got.Metrics.Rounds {
					t.Fatalf("%s n=%d seed=%d: %d profile calls for %d rounds (final round must not report)",
						v.name, n, seed, rounds, got.Metrics.Rounds)
				}
				if total <= 0 {
					t.Fatalf("%s n=%d seed=%d: profiled phase time %v, want > 0", v.name, n, seed, total)
				}
			}
		}
	}
}

func TestSchedConformanceDeadlock(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 5, Seed: 2})
		_, err := v.run(s,
			func(nd *Node) {
				nd.AwaitMessage() // nobody will ever write
			},
			func(nd *Node) Op {
				return Await(func(nd *Node, w Wake) Op { return Done() })
			})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("want ErrDeadlock, got %v", err)
		}
	})
}

func TestSchedConformanceStopAtBarrier(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		stop := make(chan struct{})
		cfg := Config{N: 4, Seed: 3, Stop: stop}
		s := v.newSim(cfg)
		first := s.IDs()[0]
		spin := func(nd *Node, r int) {
			if nd.ID() == first && r == 50 {
				close(stop)
			}
		}
		tr, err := v.run(s,
			func(nd *Node) {
				for r := 0; ; r++ {
					spin(nd, r)
					nd.NextRound()
				}
			},
			func(nd *Node) Op {
				var loop func(r int) Op
				loop = func(r int) Op {
					spin(nd, r)
					return Next(func(nd *Node, w Wake) Op { return loop(r + 1) })
				}
				return loop(0)
			})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		if tr == nil || tr.Metrics.Rounds < 50 {
			t.Fatalf("run stopped before the protocol closed Stop (trace %+v)", tr)
		}
	})
}

// TestSchedConformanceProgressOrdering pins the hook contract: one invocation
// per barrier on the engine goroutine, (round, msgs) nondecreasing, and the
// exact same sequence on every driver.
func TestSchedConformanceProgressOrdering(t *testing.T) {
	type tick struct{ round, msgs int }
	record := func(v schedVariant) []tick {
		var ticks []tick
		cfg := Config{N: 6, Seed: 9, Progress: func(round, msgs int) {
			ticks = append(ticks, tick{round, msgs})
		}}
		s := v.newSim(cfg)
		registerTally(s)
		if _, err := v.run(s, mixedProto(16), mixedProtoStep(16)); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		return ticks
	}
	variants := schedVariants()
	ref := record(variants[0])
	if len(ref) == 0 {
		t.Fatal("progress hook never fired")
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].round < ref[i-1].round || ref[i].msgs < ref[i-1].msgs {
			t.Fatalf("progress not monotone at %d: %+v after %+v", i, ref[i], ref[i-1])
		}
	}
	for _, v := range variants[1:] {
		if got := record(v); !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: progress sequence differs from barrier's (%d vs %d ticks)", v.name, len(got), len(ref))
		}
	}
}

// TestSchedConformanceSleepFastForward pins the sleepHeap contract: rounds in
// which every node sleeps are skipped in O(1), on every driver, with
// identical round accounting.
func TestSchedConformanceSleepFastForward(t *testing.T) {
	const skip = 1_000_000
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 8, Seed: 4})
		tr, err := v.run(s,
			func(nd *Node) {
				nd.SkipRounds(skip)
				nd.NextRound()
			},
			func(nd *Node) Op {
				return Sleep(skip, func(nd *Node, w Wake) Op {
					return Next(func(nd *Node, w Wake) Op { return Done() })
				})
			})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Metrics.Rounds < skip {
			t.Fatalf("rounds=%d, want ≥ %d (fast-forwarded)", tr.Metrics.Rounds, skip)
		}
		// The engine charges no active-node rounds for skipped rounds.
		if tr.Metrics.ActiveNodeRounds > 3*8 {
			t.Fatalf("fast-forward was not cheap: %d active node-rounds", tr.Metrics.ActiveNodeRounds)
		}
	})
}

func TestSchedConformancePanicPropagates(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 4, Seed: 6})
		victim := s.IDs()[1]
		_, err := v.run(s,
			func(nd *Node) {
				nd.NextRound()
				if nd.ID() == victim {
					panic("boom")
				}
				for {
					nd.NextRound()
				}
			},
			func(nd *Node) Op {
				var loop Cont
				loop = func(nd *Node, w Wake) Op { return Next(loop) }
				return Next(func(nd *Node, w Wake) Op {
					if nd.ID() == victim {
						panic("boom")
					}
					return Next(loop)
				})
			})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("want propagated panic, got %v", err)
		}
	})
}

// TestSchedConformanceStrictViolation pins that strict-mode capacity errors
// (raised by the delivery layer, not the driver) classify identically.
func TestSchedConformanceStrictViolation(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, v schedVariant) {
		s := v.newSim(Config{N: 4, Seed: 8, CapMul: 1, Strict: true, Model: NCC1})
		flood := func(nd *Node) {
			if nd.ID() == 1 {
				// Flood node 2 beyond the capacity from a single sender.
				for i := 0; i < nd.Capacity()+1; i++ {
					nd.Send(2, Message{Kind: 1})
				}
			}
		}
		_, err := v.run(s,
			func(nd *Node) {
				flood(nd)
				nd.NextRound()
			},
			func(nd *Node) Op {
				flood(nd)
				return Next(func(nd *Node, w Wake) Op { return Done() })
			})
		if err == nil {
			t.Fatal("want a strict capacity violation error")
		}
	})
}

// TestFlatZeroNodeGoroutines is the acceptance check on the tentpole's whole
// point: a flat run at large n keeps the process goroutine count O(1) — the
// engine runs everything — instead of O(n).
func TestFlatZeroNodeGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	maxG := 0
	s := New(Config{N: 20_000, Seed: 5, Sched: SchedFlat, Progress: func(round, msgs int) {
		if g := runtime.NumGoroutine(); g > maxG {
			maxG = g
		}
	}})
	registerTally(s)
	_, err := s.RunProgram(mixedProtoStep(8))
	if err != nil {
		t.Fatal(err)
	}
	if maxG > base+8 {
		t.Fatalf("flat run grew the goroutine count: base=%d max=%d (want O(1), not O(n))", base, maxG)
	}
}

// TestFlatRefusesBlockingRun pins the guard rails: Sim.Run on a flat sim is a
// clean error, and a blocking Node call smuggled into a step classifies as a
// node panic naming the offense.
func TestFlatRefusesBlockingRun(t *testing.T) {
	s := New(Config{N: 2, Seed: 1, Sched: SchedFlat})
	if _, err := s.Run(func(nd *Node) {}); err == nil || !strings.Contains(err.Error(), "RunProgram") {
		t.Fatalf("want a RunProgram redirect error, got %v", err)
	}

	s = New(Config{N: 2, Seed: 1, Sched: SchedFlat})
	_, err := s.RunProgram(func(nd *Node) Op {
		nd.NextRound() // blocking call inside a step
		return Done()
	})
	if err == nil || !strings.Contains(err.Error(), "flat-driver step") {
		t.Fatalf("want a blocking-call-inside-step panic error, got %v", err)
	}
}

// TestFlatNilContinuation pins that a malformed Op (suspension without a
// continuation) is reported as a protocol violation, not a nil-call crash.
func TestFlatNilContinuation(t *testing.T) {
	s := New(Config{N: 1, Seed: 1, Sched: SchedFlat})
	_, err := s.RunProgram(func(nd *Node) Op { return Op{kind: opNext} })
	if err == nil || !strings.Contains(err.Error(), "nil continuation") {
		t.Fatalf("want a nil-continuation violation, got %v", err)
	}
}
