package ncc

import "sync/atomic"

// Scheduler owns the round barrier and the node wake/park lifecycle: it
// launches one worker per node, collects their barrier check-ins, and
// releases the next round's active set. The engine (engine.go) decides *which*
// nodes run each round; the scheduler decides *how* they are suspended and
// resumed. Splitting the two keeps the round semantics independent of the
// concurrency mechanism, so alternative drivers (e.g. a fiber/continuation
// scheduler that avoids goroutine parking entirely) can slot in without
// touching delivery or protocol code.
//
// The driver-side methods (Spawn, AwaitAll, Release) are called only from the
// engine goroutine; the node-side methods (Park, Depart) only from node
// worker goroutines. The happens-before edges a correct implementation must
// provide are: every write a node makes before Park/Depart is visible to the
// engine after AwaitAll returns, and every write the engine makes before
// Release is visible to the released node when Park returns.
type Scheduler interface {
	// Spawn starts one worker per node running body and marks all of them
	// active; the engine must observe their first check-in via AwaitAll.
	Spawn(nodes []*Node, body func(*Node))
	// AwaitAll blocks until every node released into the current round has
	// parked (via Park) or departed (via Depart).
	AwaitAll()
	// Release resumes the given nodes for one round. The engine passes the
	// set already sorted in deterministic (Gk index) order.
	Release(nodes []*Node)
	// Park is the node-side barrier entry: check in and block until the
	// engine releases this node again.
	Park(nd *Node)
	// Depart is a node's final check-in, made when its protocol function
	// returns (or unwinds); the node never blocks again.
	Depart(nd *Node)
}

// barrierScheduler is the goroutine-barrier implementation: one goroutine per
// node, a shared countdown of outstanding check-ins, and a one-slot channel
// that hands control to the engine when the countdown hits zero. Each node
// blocks on its own one-slot wake channel while parked.
type barrierScheduler struct {
	pending atomic.Int64
	allIn   chan struct{}
}

func newBarrierScheduler() *barrierScheduler {
	return &barrierScheduler{allIn: make(chan struct{}, 1)}
}

func (b *barrierScheduler) Spawn(nodes []*Node, body func(*Node)) {
	b.pending.Store(int64(len(nodes)))
	for _, nd := range nodes {
		go body(nd)
	}
}

func (b *barrierScheduler) AwaitAll() { <-b.allIn }

func (b *barrierScheduler) Release(nodes []*Node) {
	b.pending.Store(int64(len(nodes)))
	for _, nd := range nodes {
		nd.wake <- struct{}{}
	}
}

// checkin is called by a node goroutine after it has written its parked
// state; the final check-in of a round hands control to the engine.
func (b *barrierScheduler) checkin() {
	if b.pending.Add(-1) == 0 {
		b.allIn <- struct{}{}
	}
}

func (b *barrierScheduler) Park(nd *Node) {
	b.checkin()
	<-nd.wake
}

func (b *barrierScheduler) Depart(nd *Node) {
	b.checkin()
}

// sleepHeap orders sleeping nodes by wake round; the engine uses it to
// fast-forward rounds in which every node sleeps.
type sleepHeap []*Node

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].wakeRound < h[j].wakeRound }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(*Node)) }
func (h *sleepHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
