package ncc

import (
	"fmt"
	"sync/atomic"
)

// Scheduler owns the round barrier and the node wake/park lifecycle: it
// starts the node bodies, collects their barrier check-ins, and releases the
// next round's active set. The engine (engine.go) decides *which* nodes run
// each round; the scheduler decides *how* they are suspended and resumed.
// Splitting the two keeps the round semantics independent of the concurrency
// mechanism: barrierScheduler (below) wakes every released node at once,
// while poolScheduler (pool.go) multiplexes run-slices onto a small worker
// pool. Both produce byte-identical traces because the engine alone decides
// ordering.
//
// The driver-side methods (Spawn, AwaitAll, Release, Shutdown) are called
// only from the engine goroutine; the node-side methods (Park, Depart) only
// from node protocol goroutines. The happens-before edges a correct
// implementation must provide are: every write a node makes before
// Park/Depart is visible to the engine after AwaitAll returns, and every
// write the engine makes before Release is visible to the released node when
// Park returns.
type Scheduler interface {
	// Spawn starts body for every node and marks all of them active; the
	// engine must observe their first check-in via AwaitAll. How many bodies
	// execute concurrently is the implementation's choice.
	Spawn(nodes []*Node, body func(*Node))
	// AwaitAll blocks until every node released into the current round has
	// parked (via Park) or departed (via Depart).
	AwaitAll()
	// Release resumes the given nodes for one round. The engine passes the
	// set already sorted in deterministic (Gk index) order.
	Release(nodes []*Node)
	// Park is the node-side barrier entry: check in and block until the
	// engine releases this node again.
	Park(nd *Node)
	// Depart is a node's final check-in, made when its protocol function
	// returns (or unwinds); the node never blocks again.
	Depart(nd *Node)
	// Shutdown releases driver-side resources (e.g. pool workers) after the
	// engine loop has exited; no other method may be called afterwards. It is
	// called exactly once per run, when every node body has departed.
	Shutdown()
}

// SchedKind selects the Scheduler driver a simulation runs on.
type SchedKind int

const (
	// SchedBarrier is the goroutine-barrier driver: every released node's
	// goroutine is made runnable at once and the barrier is a countdown of
	// channel parks. The default; the reference for trace identity.
	SchedBarrier SchedKind = iota
	// SchedPool is the run-to-completion worker-pool driver (pool.go): node
	// run-slices are multiplexed onto a fixed worker pool via direct
	// handoffs, so per-round wakeup cost is a handful of worker dispatches
	// instead of N simultaneous goroutine wakeups.
	SchedPool
	// SchedFlat is the zero-goroutine columnar driver (flat.go): protocols
	// run in resumable step form (program.go) and the whole simulation runs
	// on the engine goroutine, storing only a continuation per node between
	// rounds. Requires Sim.RunProgram; Sim.Run refuses flat sims.
	SchedFlat
)

// String returns the stable driver name used in flags and wire formats.
func (k SchedKind) String() string {
	switch k {
	case SchedBarrier:
		return "barrier"
	case SchedPool:
		return "pool"
	case SchedFlat:
		return "flat"
	default:
		return fmt.Sprintf("SchedKind(%d)", int(k))
	}
}

// newScheduler constructs the configured driver.
func newScheduler(kind SchedKind) Scheduler {
	switch kind {
	case SchedPool:
		return newPoolScheduler(0)
	case SchedFlat:
		return newFlatScheduler()
	default:
		return newBarrierScheduler()
	}
}

// barrierScheduler is the goroutine-barrier implementation: one goroutine per
// node, a shared countdown of outstanding check-ins, and a one-slot channel
// that hands control to the engine when the countdown hits zero. Each node
// blocks on its own one-slot wake channel while parked.
type barrierScheduler struct {
	pending atomic.Int64
	allIn   chan struct{}
}

func newBarrierScheduler() *barrierScheduler {
	return &barrierScheduler{allIn: make(chan struct{}, 1)}
}

func (b *barrierScheduler) Spawn(nodes []*Node, body func(*Node)) {
	b.pending.Store(int64(len(nodes)))
	for _, nd := range nodes {
		go body(nd)
	}
}

func (b *barrierScheduler) AwaitAll() { <-b.allIn }

func (b *barrierScheduler) Release(nodes []*Node) {
	b.pending.Store(int64(len(nodes)))
	for _, nd := range nodes {
		nd.wake <- struct{}{}
	}
}

// checkin is called by a node goroutine after it has written its parked
// state; the final check-in of a round hands control to the engine.
func (b *barrierScheduler) checkin() {
	if b.pending.Add(-1) == 0 {
		b.allIn <- struct{}{}
	}
}

func (b *barrierScheduler) Park(nd *Node) {
	b.checkin()
	<-nd.wake
}

func (b *barrierScheduler) Depart(nd *Node) {
	b.checkin()
}

// Shutdown is a no-op: the barrier driver owns no goroutines of its own, and
// every node goroutine has already returned by the time it is called.
func (b *barrierScheduler) Shutdown() {}

// sleepHeap orders sleeping nodes by wake round; the engine uses it to
// fast-forward rounds in which every node sleeps.
type sleepHeap []*Node

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].wakeRound < h[j].wakeRound }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(*Node)) }
func (h *sleepHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
