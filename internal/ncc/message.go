package ncc

import "fmt"

// MaxIDsPerMessage bounds the number of node IDs a single message may carry.
// Together with the four scalar words this keeps every message at a constant
// number of Θ(log n)-bit words, as the model requires.
const MaxIDsPerMessage = 4

// Message is a single O(log n)-bit datagram. Protocols are free to assign
// meaning to Kind and the scalar payload words A..D. IDs carried in the IDs
// slice are "learned" by the receiver (NCC0 knowledge transfer); scalar words
// are not interpreted as IDs and teach the receiver nothing.
//
// Src is stamped by the simulator on delivery; senders need not set it.
// Receiving a message always teaches the receiver Src (a message carries its
// return address, like an IP packet).
type Message struct {
	Src  ID    // stamped by the simulator; the sender's ID
	Kind uint8 // protocol-defined message type
	A    int64 // scalar payload words (protocol-defined)
	B    int64
	C    int64
	D    int64
	IDs  []ID // node IDs carried by this message (≤ MaxIDsPerMessage)

	dst ID     // routing destination, stamped by Send
	seq uint32 // per-sender sequence number, for deterministic ordering
}

// validate checks the static size constraints of the model.
func (m *Message) validate() error {
	if len(m.IDs) > MaxIDsPerMessage {
		return fmt.Errorf("ncc: message carries %d IDs, max is %d", len(m.IDs), MaxIDsPerMessage)
	}
	return nil
}

// WithIDs returns a copy of m carrying the given IDs. It is a small
// convenience for the common "introduce these nodes" pattern.
func (m Message) WithIDs(ids ...ID) Message {
	m.IDs = ids
	return m
}
