package ncc

import (
	"fmt"
	"math/rand"
)

// nodeState is the parked state a node reports at its barrier check-in.
type nodeState int32

const (
	stateRunning    nodeState = iota // checked in via NextRound; acts next round
	stateAwait                       // sleeping until a message is delivered
	stateSleep                       // sleeping until wakeRound
	stateCollective                  // waiting inside a collective operation
	stateDone                        // protocol function returned (or was killed)
)

// Node is the per-node handle a protocol function receives. All methods must
// be called only from that node's protocol goroutine.
type Node struct {
	sim *Sim
	id  ID
	idx int // internal index in Gk order; not exposed to protocols

	rng   *rand.Rand
	known map[ID]struct{} // NCC0 knowledge set; nil in NCC1

	initialSucc ID  // Gk successor (None for the tail)
	input       any // protocol input (e.g. required degree), set by the runner

	// Barrier plumbing. The protocol goroutine writes state/outbox/collIn and
	// then checks in; the driver reads them, fills inbox/collOut, and wakes.
	wake      chan struct{}
	state     nodeState
	wakeRound int
	killed    bool

	// Pool-driver plumbing (pool.go): started records that the body's
	// goroutine exists (bodies start lazily at first release), and poolW is
	// the worker whose batch countdown this node checks in to, rewritten by
	// the dispatching worker before every wake. The barrier driver leaves
	// both untouched.
	started bool
	poolW   *poolWorker

	outbox  []Message
	inbox   []Message
	retired []Message // inbox handed out at the last park; recycled next park
	collTag string
	collIn  any
	collOut any

	sentThisRound int
	seq           uint32

	neighbors    []ID
	outputs      map[string]int64
	unrealizable bool
}

// killedPanic is the sentinel the driver uses to unwind killed protocol
// goroutines; the runner recovers it silently.
type killedPanic struct{}

// protoError wraps a protocol violation detected node-side; the runner
// converts it into a Run error.
type protoError struct{ err error }

func (nd *Node) fail(format string, args ...any) {
	panic(protoError{fmt.Errorf("ncc: node %d (round %d): %s", nd.id, nd.sim.round, fmt.Sprintf(format, args...))})
}

// ID returns this node's identifier.
func (nd *Node) ID() ID { return nd.id }

// N returns the total number of nodes, which the paper assumes is common
// knowledge (§3.1.1: "We assume that n is known").
func (nd *Node) N() int { return nd.sim.n }

// Model returns the knowledge variant the simulation runs under.
func (nd *Node) Model() Model { return nd.sim.cfg.Model }

// Capacity returns the per-round per-node message budget (both directions).
func (nd *Node) Capacity() int { return nd.sim.capacity }

// Round returns the current synchronous round number. Round 0 is the initial
// compute slice before any message has been delivered.
func (nd *Node) Round() int { return nd.sim.round }

// Rand returns this node's deterministic private random source.
func (nd *Node) Rand() *rand.Rand { return nd.rng }

// Input returns the protocol input installed for this node (nil if none).
func (nd *Node) Input() any { return nd.input }

// InitialSucc returns the ID of this node's successor in the directed initial
// knowledge graph Gk, or None for the tail. This is the entirety of a node's
// initial knowledge in NCC0.
func (nd *Node) InitialSucc() ID { return nd.initialSucc }

// AllIDs returns the sorted list of all node IDs. It is only available in
// NCC1 (where the paper grants full ID knowledge); calling it in NCC0 is a
// protocol violation. The returned slice is shared and must not be modified.
func (nd *Node) AllIDs() []ID {
	if nd.sim.cfg.Model != NCC1 {
		nd.fail("AllIDs is only available in NCC1")
	}
	return nd.sim.allIDs
}

// Knows reports whether this node currently knows the given ID.
func (nd *Node) Knows(id ID) bool {
	if id == nd.id {
		return true
	}
	if nd.sim.cfg.Model == NCC1 {
		_, ok := nd.sim.index[id]
		return ok
	}
	_, ok := nd.known[id]
	return ok
}

// Learn records that this node knows id without a message exchange. It is
// used by the runner to install pre-existing knowledge and by collective
// operations whose outputs carry IDs. Protocols themselves never need it.
func (nd *Node) Learn(id ID) {
	if nd.known != nil && id != None && id != nd.id {
		nd.known[id] = struct{}{}
	}
}

// Send enqueues a message to dst for delivery at the end of the current
// round. It enforces the model: dst must exist, differ from the sender, and —
// in NCC0 — be known to the sender. Exceeding the per-round send capacity is
// recorded as a violation (an error in Strict mode).
func (nd *Node) Send(dst ID, m Message) {
	if dst == nd.id {
		nd.fail("send to self")
	}
	if _, ok := nd.sim.index[dst]; !ok {
		nd.fail("send to nonexistent ID %d", dst)
	}
	if nd.known != nil {
		if _, ok := nd.known[dst]; !ok {
			nd.fail("NCC0 send to unknown ID %d", dst)
		}
	}
	if err := m.validate(); err != nil {
		nd.fail("%v", err)
	}
	nd.sentThisRound++
	if nd.sentThisRound > nd.sim.capacity {
		nd.sim.noteSendViolation(nd)
	}
	m.Src = nd.id
	m.dst = dst
	m.seq = nd.seq
	nd.seq++
	nd.outbox = append(nd.outbox, m)
}

// NextRound checks in at the barrier and returns the messages delivered to
// this node at the start of the next round (possibly none).
func (nd *Node) NextRound() []Message {
	return nd.park(stateRunning, 0)
}

// AwaitMessage sleeps until some round delivers at least one message to this
// node, then returns that round's inbox. The node does not participate in the
// barrier while asleep, so waiting is cheap regardless of duration. If the
// whole system would sleep forever the driver reports a deadlock.
func (nd *Node) AwaitMessage() []Message {
	return nd.park(stateAwait, 0)
}

// SkipRounds sleeps for k ≥ 1 rounds. Messages delivered while asleep are
// accumulated and returned together on wake-up. Receive-capacity accounting
// still applies per delivery round.
func (nd *Node) SkipRounds(k int) []Message {
	if k < 1 {
		nd.fail("SkipRounds(%d): k must be ≥ 1", k)
	}
	return nd.park(stateSleep, nd.sim.round+k)
}

// park is the single barrier entry point. The returned inbox slice is owned
// by the delivery layer's buffer pool and stays valid only until this node's
// next barrier call (NextRound, AwaitMessage, SkipRounds, or Collective);
// protocols that need messages longer must copy them out.
func (nd *Node) park(st nodeState, wakeRound int) []Message {
	if nd.retired != nil {
		nd.sim.del.recycle(nd.retired)
		nd.retired = nil
	}
	nd.state = st
	nd.wakeRound = wakeRound
	nd.sim.sched.Park(nd)
	if nd.killed {
		panic(killedPanic{})
	}
	nd.sentThisRound = 0
	in := nd.inbox
	nd.inbox = nil
	nd.retired = in
	if nd.known != nil {
		for i := range in {
			nd.known[in[i].Src] = struct{}{}
			for _, id := range in[i].IDs {
				if id != None && id != nd.id {
					nd.known[id] = struct{}{}
				}
			}
		}
	}
	return in
}

// Collective enters the named collective operation with the given input and
// blocks until every live node has entered the same collective, the driver
// has executed its handler centrally, and rounds have been charged. It
// returns this node's output. See RegisterCollective for the contract.
func (nd *Node) Collective(tag string, in any) any {
	nd.collTag = tag
	nd.collIn = in
	_ = nd.park(stateCollective, 0)
	out := nd.collOut
	nd.collOut = nil
	nd.collIn = nil
	if co, ok := out.(CollectiveOut); ok {
		for _, id := range co.Learn {
			nd.Learn(id)
		}
		return co.Val
	}
	return out
}

// AddEdge stores an overlay edge to peer in this node's neighbor list. This
// is how realizations are output: an implicit edge is stored at one endpoint,
// an explicit edge at both. Self-edges are protocol violations.
func (nd *Node) AddEdge(peer ID) {
	if peer == nd.id || peer == None {
		nd.fail("AddEdge(%d): invalid peer", peer)
	}
	nd.neighbors = append(nd.neighbors, peer)
}

// SetOutput declares a named scalar output collected into the Trace.
func (nd *Node) SetOutput(key string, v int64) {
	if nd.outputs == nil {
		nd.outputs = make(map[string]int64)
	}
	nd.outputs[key] = v
}

// Unrealizable marks the instance as unrealizable from this node's view.
func (nd *Node) Unrealizable() { nd.unrealizable = true }
