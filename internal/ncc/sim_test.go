package ncc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const (
	kindHello uint8 = iota
	kindData
)

// helloProto converts the directed path into an undirected one (the one-round
// conversion from §3.1 of the paper) and records the learned predecessor.
func helloProto(nd *Node) {
	if s := nd.InitialSucc(); s != None {
		nd.Send(s, Message{Kind: kindHello})
	}
	in := nd.NextRound()
	for _, m := range in {
		if m.Kind == kindHello {
			nd.SetOutput("pred", int64(m.Src))
		}
	}
}

func TestHelloPathLearnsPredecessors(t *testing.T) {
	for _, model := range []Model{NCC0, NCC1} {
		s := New(Config{N: 17, Seed: 1, Model: model, Strict: true})
		tr, err := s.Run(helloProto)
		if err != nil {
			t.Fatalf("%v: run: %v", model, err)
		}
		ids := tr.IDs
		if v, ok := tr.Output(ids[0], "pred"); ok {
			t.Fatalf("%v: head learned a predecessor %d", model, v)
		}
		for i := 1; i < len(ids); i++ {
			v, ok := tr.Output(ids[i], "pred")
			if !ok {
				t.Fatalf("%v: node at position %d learned no predecessor", model, i)
			}
			if ID(v) != ids[i-1] {
				t.Fatalf("%v: position %d: pred = %d, want %d", model, i, v, ids[i-1])
			}
		}
		if tr.Metrics.Rounds != 1 {
			t.Fatalf("%v: rounds = %d, want 1", model, tr.Metrics.Rounds)
		}
		if tr.Metrics.Messages != int64(len(ids)-1) {
			t.Fatalf("%v: messages = %d, want %d", model, tr.Metrics.Messages, len(ids)-1)
		}
	}
}

func TestDistinctIDs(t *testing.T) {
	s := New(Config{N: 300, Seed: 7})
	seen := make(map[ID]bool)
	for _, id := range s.IDs() {
		if id <= 0 {
			t.Fatalf("non-positive ID %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestNCC1IDsAreOneToN(t *testing.T) {
	s := New(Config{N: 50, Seed: 3, Model: NCC1})
	seen := make(map[ID]bool)
	for _, id := range s.IDs() {
		if id < 1 || id > 50 {
			t.Fatalf("NCC1 ID %d out of [1,50]", id)
		}
		seen[id] = true
	}
	if len(seen) != 50 {
		t.Fatalf("got %d distinct IDs, want 50", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Trace {
		s := New(Config{N: 64, Seed: 42})
		tr, err := s.Run(func(nd *Node) {
			// Random walk of introductions: forward a random token along the path.
			if s := nd.InitialSucc(); s != None {
				nd.Send(s, Message{Kind: kindData, A: nd.Rand().Int63n(1000)})
			}
			in := nd.NextRound()
			sum := int64(0)
			for _, m := range in {
				sum += m.A
			}
			nd.SetOutput("sum", sum)
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return tr
	}
	a, b := run(), run()
	if a.Metrics.Rounds != b.Metrics.Rounds || a.Metrics.Messages != b.Metrics.Messages {
		t.Fatalf("nondeterministic metrics: %+v vs %+v", a.Metrics, b.Metrics)
	}
	for id, nr := range a.Nodes {
		if nr.Outputs["sum"] != b.Nodes[id].Outputs["sum"] {
			t.Fatalf("node %d: sum differs across identical runs", id)
		}
	}
}

func TestNCC0SendToUnknownFails(t *testing.T) {
	s := New(Config{N: 8, Seed: 5})
	ids := s.IDs()
	head := ids[0]
	tail := ids[len(ids)-1]
	_, err := s.Run(func(nd *Node) {
		if nd.ID() == head {
			nd.Send(tail, Message{}) // head does not know the tail
		}
		nd.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "unknown ID") {
		t.Fatalf("want unknown-ID violation, got %v", err)
	}
}

func TestNCC1MayContactAnyone(t *testing.T) {
	s := New(Config{N: 8, Seed: 5, Model: NCC1, Strict: true})
	ids := s.IDs()
	head, tail := ids[0], ids[len(ids)-1]
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == head {
			nd.Send(tail, Message{Kind: kindData, A: 99})
		}
		in := nd.NextRound()
		for _, m := range in {
			nd.SetOutput("got", m.A)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(tail, "got"); v != 99 {
		t.Fatalf("tail got %d, want 99", v)
	}
}

func TestSendToSelfFails(t *testing.T) {
	s := New(Config{N: 4, Seed: 1})
	_, err := s.Run(func(nd *Node) {
		nd.Send(nd.ID(), Message{})
	})
	if err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("want self-send violation, got %v", err)
	}
}

func TestStrictSendCapacity(t *testing.T) {
	s := New(Config{N: 16, Seed: 2, CapMul: 1, Strict: true})
	capi := s.Capacity()
	_, err := s.Run(func(nd *Node) {
		if succ := nd.InitialSucc(); succ != None {
			for i := 0; i <= capi; i++ {
				nd.Send(succ, Message{Kind: kindData, A: int64(i)})
			}
		}
		nd.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("want capacity violation, got %v", err)
	}
}

func TestNonStrictRecordsViolations(t *testing.T) {
	s := New(Config{N: 16, Seed: 2, CapMul: 1})
	capi := s.Capacity()
	tr, err := s.Run(func(nd *Node) {
		if succ := nd.InitialSucc(); succ != None {
			for i := 0; i <= capi; i++ {
				nd.Send(succ, Message{Kind: kindData})
			}
		}
		nd.NextRound()
	})
	if err != nil {
		t.Fatalf("non-strict run should succeed: %v", err)
	}
	if tr.Metrics.SendViolations == 0 {
		t.Fatal("send violations not recorded")
	}
	if tr.Metrics.RecvViolations == 0 {
		t.Fatal("recv violations not recorded")
	}
	if tr.Metrics.MaxRecvPerRound <= capi {
		t.Fatalf("MaxRecvPerRound = %d, want > capacity %d", tr.Metrics.MaxRecvPerRound, capi)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(Config{N: 4, Seed: 9})
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			nd.AwaitMessage() // nobody will ever write
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestMaxRoundsAbort(t *testing.T) {
	s := New(Config{N: 4, Seed: 9, MaxRounds: 50})
	_, err := s.Run(func(nd *Node) {
		for {
			nd.NextRound()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Fatalf("want MaxRounds error, got %v", err)
	}
}

func TestPanicInProtocolSurfacesAsError(t *testing.T) {
	s := New(Config{N: 8, Seed: 9})
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		nd.NextRound()
		if nd.ID() == ids[3] {
			panic("kaboom")
		}
		nd.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want protocol panic surfaced, got %v", err)
	}
}

func TestSkipRoundsAccumulatesMail(t *testing.T) {
	s := New(Config{N: 2, Seed: 11, Strict: true})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			// Send one message per round for 3 rounds to the sleeping succ.
			for i := 0; i < 3; i++ {
				nd.Send(nd.InitialSucc(), Message{Kind: kindData, A: int64(i)})
				nd.NextRound()
			}
			return
		}
		in := nd.SkipRounds(5)
		nd.SetOutput("n", int64(len(in)))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(ids[1], "n"); v != 3 {
		t.Fatalf("sleeper accumulated %d messages, want 3", v)
	}
}

func TestAwaitMessageWakesOnDelivery(t *testing.T) {
	s := New(Config{N: 3, Seed: 13, Strict: true})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		switch nd.ID() {
		case ids[0]:
			nd.SkipRounds(4)
			nd.Send(nd.InitialSucc(), Message{Kind: kindData, A: 7})
			nd.NextRound()
		case ids[1]:
			in := nd.AwaitMessage()
			nd.SetOutput("round", int64(nd.Round()))
			nd.SetOutput("got", in[0].A)
		default:
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(ids[1], "got"); v != 7 {
		t.Fatalf("awaiter got %d, want 7", v)
	}
	if v, _ := tr.Output(ids[1], "round"); v != 5 {
		t.Fatalf("awaiter woke at round %d, want 5", v)
	}
}

func TestFastForwardIsCheap(t *testing.T) {
	s := New(Config{N: 2, Seed: 17})
	tr, err := s.Run(func(nd *Node) {
		nd.SkipRounds(1_000_000)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if tr.Metrics.Rounds < 1_000_000 {
		t.Fatalf("rounds = %d, want ≥ 1e6 (fast-forwarded)", tr.Metrics.Rounds)
	}
	// ActiveNodeRounds must be tiny despite the huge round count.
	if tr.Metrics.ActiveNodeRounds > 10 {
		t.Fatalf("ActiveNodeRounds = %d, fast-forward did not skip work", tr.Metrics.ActiveNodeRounds)
	}
}

func TestCollectiveSumAndCharge(t *testing.T) {
	s := New(Config{N: 10, Seed: 19, Strict: true})
	s.RegisterCollective("sum", func(s *Sim, ins []any) ([]any, int) {
		total := int64(0)
		for _, in := range ins {
			total += in.(int64)
		}
		outs := make([]any, len(ins))
		for i := range outs {
			outs[i] = total
		}
		return outs, 13
	})
	tr, err := s.Run(func(nd *Node) {
		nd.NextRound()
		got := nd.Collective("sum", int64(2)).(int64)
		nd.SetOutput("sum", got)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, nr := range tr.Nodes {
		if nr.Outputs["sum"] != 20 {
			t.Fatalf("node %d: collective sum = %d, want 20", nr.ID, nr.Outputs["sum"])
		}
	}
	if tr.Metrics.CollectiveRounds != 13 {
		t.Fatalf("charged %d rounds, want 13", tr.Metrics.CollectiveRounds)
	}
	if tr.Metrics.CollectiveCalls["sum"] != 1 {
		t.Fatalf("collective calls = %v", tr.Metrics.CollectiveCalls)
	}
	if tr.Metrics.Rounds < 14 {
		t.Fatalf("rounds = %d, want ≥ 14 (1 real + 13 charged)", tr.Metrics.Rounds)
	}
}

func TestCollectiveTeachesIDs(t *testing.T) {
	s := New(Config{N: 6, Seed: 23, Strict: true})
	ids := s.IDs()
	// The collective introduces everyone to the head node's ID.
	s.RegisterCollective("introduce-head", func(s *Sim, ins []any) ([]any, int) {
		outs := make([]any, s.N())
		for i := range outs {
			outs[i] = CollectiveOut{Val: int64(0), Learn: []ID{s.IDs()[0]}}
		}
		return outs, 1
	})
	tr, err := s.Run(func(nd *Node) {
		nd.Collective("introduce-head", nil)
		if nd.ID() != ids[0] {
			nd.Send(ids[0], Message{Kind: kindData, A: 1})
		}
		nd.NextRound()
		if nd.ID() == ids[0] {
			nd.SetOutput("heard", int64(nd.Round()))
		}
	})
	if err != nil {
		t.Fatalf("run (sending to a collectively learned ID): %v", err)
	}
	if _, ok := tr.Output(ids[0], "heard"); !ok {
		t.Fatal("head heard nothing")
	}
}

func TestCollectiveMismatchIsError(t *testing.T) {
	s := New(Config{N: 4, Seed: 29})
	s.RegisterCollective("a", func(s *Sim, ins []any) ([]any, int) { return nil, 0 })
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			nd.Collective("a", nil)
		} else {
			nd.NextRound()
			nd.NextRound()
			nd.NextRound()
		}
	})
	if err == nil {
		t.Fatal("mismatched collective participation should fail")
	}
}

func TestUnrealizableFlag(t *testing.T) {
	s := New(Config{N: 3, Seed: 31})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[1] {
			nd.Unrealizable()
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !tr.Unrealizable {
		t.Fatal("unrealizable flag lost")
	}
}

func TestEdgeSetCanonicalizes(t *testing.T) {
	s := New(Config{N: 2, Seed: 37, Strict: true})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			nd.AddEdge(ids[1])
		} else {
			nd.AddEdge(ids[0]) // both endpoints store the same edge
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(tr.EdgeSet()); got != 1 {
		t.Fatalf("edge set size = %d, want 1", got)
	}
}

func TestInputsReachNodes(t *testing.T) {
	inputs := make([]any, 5)
	for i := range inputs {
		inputs[i] = int64(i * i)
	}
	s := New(Config{N: 5, Seed: 41, Inputs: inputs})
	tr, err := s.Run(func(nd *Node) {
		nd.SetOutput("in", nd.Input().(int64))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		if v, _ := tr.Output(id, "in"); v != int64(i*i) {
			t.Fatalf("position %d: input %d, want %d", i, v, i*i)
		}
	}
}

func TestOrderedIDsLayout(t *testing.T) {
	s := New(Config{N: 20, Seed: 43, OrderedIDs: true})
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("OrderedIDs: ids[%d]=%d ≥ ids[%d]=%d", i-1, ids[i-1], i, ids[i])
		}
	}
}

// TestQuickHelloAnyN property-checks the path-conversion protocol over many
// sizes and seeds: every non-head node must learn exactly its predecessor.
func TestQuickHelloAnyN(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%97) + 1
		s := New(Config{N: n, Seed: seed, Strict: true})
		tr, err := s.Run(helloProto)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			v, ok := tr.Output(tr.IDs[i], "pred")
			if !ok || ID(v) != tr.IDs[i-1] {
				return false
			}
		}
		_, headLearned := tr.Output(tr.IDs[0], "pred")
		return !headLearned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKnowsSemantics(t *testing.T) {
	s := New(Config{N: 3, Seed: 47, Strict: true})
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		if !nd.Knows(nd.ID()) {
			nd.fail("node must know itself")
		}
		switch nd.ID() {
		case ids[0]:
			if !nd.Knows(ids[1]) {
				nd.fail("head must know its successor")
			}
			if nd.Knows(ids[2]) {
				nd.fail("head must not know the tail initially")
			}
			nd.Send(ids[1], Message{}.WithIDs(nd.ID()))
		case ids[1]:
			in := nd.NextRound()
			if len(in) != 1 || !nd.Knows(in[0].Src) {
				nd.fail("receiver must learn sender")
			}
		default:
			nd.NextRound()
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMessageTooManyIDs(t *testing.T) {
	s := New(Config{N: 2, Seed: 53})
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			nd.Send(ids[1], Message{IDs: []ID{1, 2, 3, 4, 5}})
		}
		nd.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "IDs") {
		t.Fatalf("want oversized-message violation, got %v", err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Fatalf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSingleNode(t *testing.T) {
	s := New(Config{N: 1, Seed: 59, Strict: true})
	tr, err := s.Run(func(nd *Node) {
		if nd.InitialSucc() != None {
			nd.fail("single node has no successor")
		}
		nd.SetOutput("ok", 1)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(tr.IDs[0], "ok"); v != 1 {
		t.Fatal("single-node protocol did not run")
	}
}

func TestSendToFinishedNodeIsDropped(t *testing.T) {
	// A message to a node whose protocol already returned must not wedge
	// the driver; it is delivered to a dead inbox and ignored.
	s := New(Config{N: 2, Seed: 71, Strict: true})
	ids := s.IDs()
	_, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[1] {
			return // dies immediately
		}
		nd.NextRound()
		nd.Send(ids[1], Message{Kind: kindData})
		nd.NextRound()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestAwaitAfterSkipOrdering(t *testing.T) {
	// SkipRounds then AwaitMessage: the await must see messages sent after
	// the skip expired, not lose them.
	s := New(Config{N: 2, Seed: 73, Strict: true})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			nd.SkipRounds(3)
			nd.Send(nd.InitialSucc(), Message{Kind: kindData, A: 5})
			nd.NextRound()
			return
		}
		nd.SkipRounds(2)
		in := nd.AwaitMessage()
		nd.SetOutput("got", in[0].A)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(ids[1], "got"); v != 5 {
		t.Fatalf("await after skip got %d", v)
	}
}

func TestDeterminismAcrossModels(t *testing.T) {
	// The same protocol must produce identical round counts per model; the
	// two models may differ from each other (different ID spaces).
	run := func(model Model) int {
		s := New(Config{N: 40, Seed: 99, Model: model})
		tr, err := s.Run(helloProto)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Metrics.Rounds
	}
	if run(NCC0) != run(NCC0) || run(NCC1) != run(NCC1) {
		t.Fatal("per-model determinism broken")
	}
}

func TestMaxSentTracksBursts(t *testing.T) {
	s := New(Config{N: 4, Seed: 75})
	ids := s.IDs()
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() == ids[0] {
			for i := 0; i < 3; i++ {
				nd.Send(ids[1], Message{Kind: kindData})
			}
		}
		nd.NextRound()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if tr.Metrics.MaxSentPerRound != 3 || tr.Metrics.MaxRecvPerRound != 3 {
		t.Fatalf("burst metrics: %+v", tr.Metrics)
	}
}

// TestStrictRecvViolationInFinalRound pins the strict-mode contract on the
// engine's early-exit path: when every protocol returns in the same compute
// slice, a receive-capacity violation in that final delivery must still fail
// the run (regression guard for the engine/delivery split).
func TestStrictRecvViolationInFinalRound(t *testing.T) {
	s := New(Config{N: 3, Model: NCC1, Seed: 3, CapMul: 1, Strict: true})
	target := s.IDs()[0]
	tr, err := s.Run(func(nd *Node) {
		if nd.ID() != target {
			// Two senders deliver 2 messages each: 4 > capacity 2 at the
			// target, while each sender stays within its send budget.
			nd.Send(target, Message{Kind: kindData})
			nd.Send(target, Message{Kind: kindData})
		}
		// No NextRound: all protocols finish in the initial compute slice.
	})
	if err == nil {
		t.Fatalf("strict run must fail on final-round receive violation; metrics: %+v", tr.Metrics)
	}
	if tr.Metrics.RecvViolations == 0 {
		t.Fatalf("violation not recorded: %+v", tr.Metrics)
	}
}
