// Package ncc implements the Node Capacitated Clique (NCC) model of
// distributed computing introduced by Augustine et al. (SPAA 2019) and used by
// "Distributed Graph Realizations" (IPDPS 2020) as its execution model.
//
// The model comprises n nodes with unique IDs that communicate in synchronous
// rounds. Any node u can send a message to any node v provided u knows v's ID
// (think of the ID as v's IP address). Per round, a node may send and receive
// at most O(log n) messages of O(log n) bits each. The simulator supports the
// two knowledge variants from the paper:
//
//   - NCC0: each node initially knows only the ID of its successor in a
//     directed path Gk (the initial knowledge graph). Knowledge grows only by
//     receiving messages: a receiver learns the sender's ID and any IDs
//     carried in the payload.
//   - NCC1: all nodes know all IDs from the start (IDs are w.l.o.g. 1..n).
//
// Protocols are ordinary Go functions executed one goroutine per node, written
// in a natural blocking style around a per-round barrier:
//
//	func proto(nd *ncc.Node) {
//	    nd.Send(nd.InitialSucc(), ncc.Message{Kind: hello})
//	    inbox := nd.NextRound()
//	    ...
//	}
//
// The driver enforces the model: it validates knowledge on send, counts
// capacity on both ends, advances rounds, fast-forwards rounds in which every
// node sleeps, detects deadlock and runaway protocols, and produces a Trace
// with round/message/congestion metrics plus each node's declared outputs and
// stored overlay edges. Runs are deterministic for a fixed Config.Seed.
package ncc

import "fmt"

// ID identifies a node. IDs are drawn from [1, n^2] in NCC0 (arbitrary,
// non-contiguous, in arbitrary path order) and are exactly 1..n in NCC1,
// matching the paper's "w.l.o.g." normalization. The zero ID is never a valid
// node and marks "no node" (e.g. the tail's successor).
type ID int64

// None is the zero ID, used to mean "no such node".
const None ID = 0

// Model selects the initial-knowledge variant of the NCC model.
type Model int

const (
	// NCC0 gives each node only the ID of its Gk successor initially.
	NCC0 Model = iota
	// NCC1 gives every node the IDs of all nodes initially.
	NCC1
)

// String returns the conventional name of the model variant.
func (m Model) String() string {
	switch m {
	case NCC0:
		return "NCC0"
	case NCC1:
		return "NCC1"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1, and 0 for n ≤ 1.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// CeilLog2 exposes ⌈log₂ n⌉ for use by protocol packages that need the same
// level count as the simulator (e.g. the structure-L construction).
func CeilLog2(n int) int { return ceilLog2(n) }
