package ncc

import (
	"strconv"
	"testing"
)

// benchSchedulers enumerates the drivers every engine benchmark runs under,
// so benchstat output compares them side by side.
var benchSchedulers = []SchedKind{SchedBarrier, SchedPool, SchedFlat}

// Benchmarks run step-form protocols through RunProgram so all drivers —
// including flat, which cannot host blocking calls — execute the identical
// protocol representation and ns/op is a pure driver comparison.

// BenchmarkDeliveryPooling drives the densest delivery workload — every node
// sends to its successor every round — so allocs/op tracks the receive-buffer
// pool in the delivery layer. Compare runs with benchstat to catch pooling
// regressions.
func BenchmarkDeliveryPooling(b *testing.B) {
	const n, rounds = 256, 64
	for _, sched := range benchSchedulers {
		b.Run("sched="+sched.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New(Config{N: n, Seed: 1, Sched: sched})
				_, err := s.RunProgram(func(nd *Node) Op {
					var loop func(r int) Op
					loop = func(r int) Op {
						if r >= rounds {
							return Done()
						}
						if succ := nd.InitialSucc(); succ != None {
							nd.Send(succ, Message{Kind: 1, A: int64(r)})
						}
						return Next(func(nd *Node, w Wake) Op { return loop(r + 1) })
					}
					return loop(0)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBarrierOverhead measures the scheduler's wake/park round trip
// with no messages in flight — n nodes spinning through empty rounds — at the
// sizes the batch-runner benchmarks use. This isolates exactly the cost the
// pool and flat drivers exist to cut: per-round wakeup of the whole active
// set.
func BenchmarkBarrierOverhead(b *testing.B) {
	const rounds = 64
	for _, n := range []int{256, 4096, 65536} {
		for _, sched := range benchSchedulers {
			b.Run("n="+strconv.Itoa(n)+"/sched="+sched.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := New(Config{N: n, Seed: 1, Sched: sched})
					_, err := s.RunProgram(func(nd *Node) Op {
						var loop func(r int) Op
						loop = func(r int) Op {
							if r >= rounds {
								return Done()
							}
							return Next(func(nd *Node, w Wake) Op { return loop(r + 1) })
						}
						return loop(0)
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
