package ncc

import "testing"

// BenchmarkDeliveryPooling drives the densest delivery workload — every node
// sends to its successor every round — so allocs/op tracks the receive-buffer
// pool in the delivery layer. Compare runs with benchstat to catch pooling
// regressions.
func BenchmarkDeliveryPooling(b *testing.B) {
	const n, rounds = 256, 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Config{N: n, Seed: 1})
		_, err := s.Run(func(nd *Node) {
			for r := 0; r < rounds; r++ {
				if succ := nd.InitialSucc(); succ != None {
					nd.Send(succ, Message{Kind: 1, A: int64(r)})
				}
				nd.NextRound()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrierOverhead measures the scheduler's wake/park round trip
// with no messages in flight: n nodes spinning through empty rounds.
func BenchmarkBarrierOverhead(b *testing.B) {
	const n, rounds = 256, 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Config{N: n, Seed: 1})
		_, err := s.Run(func(nd *Node) {
			for r := 0; r < rounds; r++ {
				nd.NextRound()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
