package ncc

// program.go defines the resumable-step (CPS) protocol form the flat driver
// executes. A blocking protocol is a function that calls NextRound /
// AwaitMessage / SkipRounds / Collective and owns a goroutine stack between
// rounds. A step-form protocol instead *returns* the suspension it wants as an
// Op carrying an explicit continuation; the driver applies the op and invokes
// the continuation when the node wakes. The two forms are interconvertible:
//
//   - RunOps drives a step-form protocol through the blocking Node API, so the
//     same compiled protocol runs unchanged on the barrier and pool drivers
//     (and step-form subprotocols compose into blocking callers).
//   - Sim.RunProgram runs a step-form protocol on whichever driver the Sim was
//     configured with: natively (zero per-node goroutines) on the flat driver,
//     via RunOps elsewhere.
//
// The contract mirrors the blocking API exactly: Next ≙ NextRound, Await ≙
// AwaitMessage, Sleep ≙ SkipRounds, Collective ≙ Node.Collective, Done ≙
// returning from the protocol function. A continuation runs as the node's
// compute slice for the wake round — it may Send, read Round(), and must end
// by returning the next Op.

// Wake carries what a resumed continuation receives: the inbox for message
// wakes (valid, like park's return, only until the node's next suspension) or
// the collective output for collective wakes.
type Wake struct {
	// Msgs is the delivered inbox (nil after a collective).
	Msgs []Message
	// Coll is the collective output (nil unless woken from a collective).
	Coll any
}

// Cont is a resumable protocol continuation: the node's compute slice for the
// round it wakes in.
type Cont func(nd *Node, w Wake) Op

// Proto is a step-form protocol entry point: it runs the node's round-0
// compute slice and returns the first suspension.
type Proto func(nd *Node) Op

// opKind enumerates the suspension kinds, one per blocking Node call.
type opKind uint8

const (
	opDone opKind = iota
	opNext
	opAwait
	opSleep
	opCollective
)

// Op is one explicit suspension: what to wait for and where to resume.
type Op struct {
	kind   opKind
	sleep  int
	tag    string
	collIn any
	k      Cont
}

// Done finishes the protocol (the step analogue of returning).
func Done() Op { return Op{kind: opDone} }

// Next checks in at the barrier; k resumes with next round's inbox.
func Next(k Cont) Op { return Op{kind: opNext, k: k} }

// Await sleeps until a round delivers at least one message; k resumes with
// that round's inbox.
func Await(k Cont) Op { return Op{kind: opAwait, k: k} }

// Sleep sleeps for rounds ≥ 1 rounds; k resumes with everything delivered
// while asleep.
func Sleep(rounds int, k Cont) Op { return Op{kind: opSleep, sleep: rounds, k: k} }

// Collective enters the named collective with the given input; k resumes with
// the node's output in Wake.Coll.
func Collective(tag string, in any, k Cont) Op {
	return Op{kind: opCollective, tag: tag, collIn: in, k: k}
}

// RunOps drives a step-form protocol fragment through the blocking Node API
// until it yields Done. It is the adapter that runs compiled protocols on the
// goroutine-based drivers, and the bridge that lets blocking wrappers embed
// step-form subprotocols (Done only terminates this driver loop, not the
// node).
func RunOps(nd *Node, op Op) {
	for {
		switch op.kind {
		case opDone:
			return
		case opNext:
			op = op.k(nd, Wake{Msgs: nd.NextRound()})
		case opAwait:
			op = op.k(nd, Wake{Msgs: nd.AwaitMessage()})
		case opSleep:
			op = op.k(nd, Wake{Msgs: nd.SkipRounds(op.sleep)})
		case opCollective:
			op = op.k(nd, Wake{Coll: nd.Collective(op.tag, op.collIn)})
		}
	}
}

// RunProgram executes a step-form protocol on every node and drives the
// rounds to completion, like Run but for compiled protocols. On the flat
// driver the whole simulation runs on the engine goroutine with zero per-node
// goroutines; on the barrier and pool drivers it is exactly Run(RunOps·entry),
// so all drivers produce byte-identical traces.
func (s *Sim) RunProgram(entry Proto) (*Trace, error) {
	if f, ok := s.sched.(*flatScheduler); ok {
		return s.runFlat(f, entry)
	}
	return s.Run(func(nd *Node) { RunOps(nd, entry(nd)) })
}
