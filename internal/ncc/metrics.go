package ncc

import "fmt"

// Metrics aggregates the cost accounting of a simulation run. Rounds is the
// primary figure of merit in the NCC model; message counts and congestion
// statistics support the capacity analysis.
//
// Metrics is deliberately wall-clock-free: every field is a deterministic
// function of the Config, so traces compare byte-identical across scheduler
// drivers (sched_conformance_test.go). Wall-time observability — per-phase
// round profiling — flows through Config.Profile instead and never lands
// here.
type Metrics struct {
	N        int   // number of nodes
	Capacity int   // per-node per-round send/recv message budget
	Rounds   int   // synchronous rounds elapsed (including charged rounds)
	Messages int64 // total messages delivered

	MaxSentPerRound int // max messages sent by any node in any round
	MaxRecvPerRound int // max messages received by any node in any round

	SendViolations int // (node,round) pairs exceeding the send capacity
	RecvViolations int // (node,round) pairs exceeding the receive capacity

	// CollectiveCalls counts invocations of each registered collective
	// operation (e.g. the oracle sort), and CollectiveRounds the rounds
	// charged for them. Both are folded into Rounds already; they are
	// reported separately so results remain honest about which portion of
	// the round count was executed as a real protocol.
	CollectiveCalls  map[string]int
	CollectiveRounds int

	// ActiveNodeRounds counts, over all rounds, how many nodes were awake —
	// a work measure useful for the HPC-style efficiency benchmarks.
	ActiveNodeRounds int64
}

// String renders a compact single-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d rounds=%d msgs=%d cap=%d maxSent=%d maxRecv=%d sendViol=%d recvViol=%d collRounds=%d",
		m.N, m.Rounds, m.Messages, m.Capacity, m.MaxSentPerRound, m.MaxRecvPerRound,
		m.SendViolations, m.RecvViolations, m.CollectiveRounds)
}

// NodeResult and Trace (the per-run result assembly) live in trace.go.
