package ncc

import "fmt"

// Metrics aggregates the cost accounting of a simulation run. Rounds is the
// primary figure of merit in the NCC model; message counts and congestion
// statistics support the capacity analysis.
type Metrics struct {
	N        int   // number of nodes
	Capacity int   // per-node per-round send/recv message budget
	Rounds   int   // synchronous rounds elapsed (including charged rounds)
	Messages int64 // total messages delivered

	MaxSentPerRound int // max messages sent by any node in any round
	MaxRecvPerRound int // max messages received by any node in any round

	SendViolations int // (node,round) pairs exceeding the send capacity
	RecvViolations int // (node,round) pairs exceeding the receive capacity

	// CollectiveCalls counts invocations of each registered collective
	// operation (e.g. the oracle sort), and CollectiveRounds the rounds
	// charged for them. Both are folded into Rounds already; they are
	// reported separately so results remain honest about which portion of
	// the round count was executed as a real protocol.
	CollectiveCalls  map[string]int
	CollectiveRounds int

	// ActiveNodeRounds counts, over all rounds, how many nodes were awake —
	// a work measure useful for the HPC-style efficiency benchmarks.
	ActiveNodeRounds int64
}

// String renders a compact single-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d rounds=%d msgs=%d cap=%d maxSent=%d maxRecv=%d sendViol=%d recvViol=%d collRounds=%d",
		m.N, m.Rounds, m.Messages, m.Capacity, m.MaxSentPerRound, m.MaxRecvPerRound,
		m.SendViolations, m.RecvViolations, m.CollectiveRounds)
}

// NodeResult is the per-node outcome of a run.
type NodeResult struct {
	ID ID
	// Neighbors is the node's stored overlay adjacency: every ID the node
	// recorded via AddEdge. Implicit realizations store each edge at one
	// endpoint; explicit realizations at both.
	Neighbors []ID
	// Outputs holds named scalar outputs declared via SetOutput.
	Outputs map[string]int64
}

// Trace is the complete result of Sim.Run.
type Trace struct {
	Metrics Metrics
	// IDs lists node IDs in Gk (initial path) order: IDs[0] is the head.
	IDs []ID
	// Nodes maps each ID to its results.
	Nodes map[ID]*NodeResult
	// Unrealizable is true if any node declared the instance unrealizable.
	Unrealizable bool
}

// Output returns the named output of node id, or (0, false) if absent.
func (t *Trace) Output(id ID, key string) (int64, bool) {
	nr, ok := t.Nodes[id]
	if !ok || nr.Outputs == nil {
		return 0, false
	}
	v, ok := nr.Outputs[key]
	return v, ok
}

// EdgeSet returns the union of all stored edges as canonical (lo,hi) ID pairs.
// Duplicate storage (both endpoints of an explicit edge) collapses to one set
// entry; self-loops are impossible by construction (Send forbids them and
// AddEdge rejects them).
func (t *Trace) EdgeSet() map[[2]ID]struct{} {
	edges := make(map[[2]ID]struct{})
	for id, nr := range t.Nodes {
		for _, p := range nr.Neighbors {
			a, b := id, p
			if a > b {
				a, b = b, a
			}
			edges[[2]ID{a, b}] = struct{}{}
		}
	}
	return edges
}
