package ncc

import (
	"errors"
	"testing"
)

// Cancellation is cooperative at round granularity: the engine polls
// Config.Stop once per barrier and unwinds every parked node, so even a
// protocol that never terminates on its own is reclaimed.

func TestStopCancelsRunningProtocol(t *testing.T) {
	stop := make(chan struct{})
	s := New(Config{N: 4, Seed: 3, Stop: stop})
	first := s.IDs()[0]
	tr, err := s.Run(func(nd *Node) {
		for r := 0; ; r++ {
			if nd.ID() == first && r == 50 {
				close(stop)
			}
			nd.NextRound()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if tr == nil {
		t.Fatal("canceled run must still return a trace")
	}
	if tr.Metrics.Rounds < 50 {
		t.Fatalf("run stopped before the protocol closed Stop (round %d)", tr.Metrics.Rounds)
	}
}

func TestStopClosedBeforeRun(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	s := New(Config{N: 2, Seed: 1, Stop: stop})
	_, err := s.Run(func(nd *Node) {
		for {
			nd.NextRound()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestStopUnusedDoesNotAffectRun(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	s := New(Config{N: 3, Seed: 9, Stop: stop})
	_, err := s.Run(func(nd *Node) {
		for i := 0; i < 5; i++ {
			nd.NextRound()
		}
	})
	if err != nil {
		t.Fatalf("run with an idle Stop channel must succeed, got %v", err)
	}
}
