package ncc

// NodeResult is the per-node outcome of a run.
type NodeResult struct {
	ID ID
	// Neighbors is the node's stored overlay adjacency: every ID the node
	// recorded via AddEdge. Implicit realizations store each edge at one
	// endpoint; explicit realizations at both.
	Neighbors []ID
	// Outputs holds named scalar outputs declared via SetOutput.
	Outputs map[string]int64
}

// Trace is the complete result of Sim.Run.
type Trace struct {
	Metrics Metrics
	// IDs lists node IDs in Gk (initial path) order: IDs[0] is the head.
	IDs []ID
	// Nodes maps each ID to its results.
	Nodes map[ID]*NodeResult
	// Unrealizable is true if any node declared the instance unrealizable.
	Unrealizable bool
}

// Output returns the named output of node id, or (0, false) if absent.
func (t *Trace) Output(id ID, key string) (int64, bool) {
	nr, ok := t.Nodes[id]
	if !ok || nr.Outputs == nil {
		return 0, false
	}
	v, ok := nr.Outputs[key]
	return v, ok
}

// MaxOutput returns the maximum of the named output over all nodes that
// declared it, and whether any did. Aggregating over nodes (rather than
// probing a fixed position) keeps derived statistics independent of which
// node happens to sit where on the knowledge path.
func (t *Trace) MaxOutput(key string) (int64, bool) {
	var best int64
	found := false
	//grlint:allow D001 -- order-independent max fold over final results
	for _, nr := range t.Nodes {
		if nr.Outputs == nil {
			continue
		}
		v, ok := nr.Outputs[key]
		if !ok {
			continue
		}
		if !found || v > best {
			best = v
		}
		found = true
	}
	return best, found
}

// EdgeSet returns the union of all stored edges as canonical (lo,hi) ID pairs.
// Duplicate storage (both endpoints of an explicit edge) collapses to one set
// entry; self-loops are impossible by construction (Send forbids them and
// AddEdge rejects them).
func (t *Trace) EdgeSet() map[[2]ID]struct{} {
	total := 0
	//grlint:allow D001 -- order-independent sum for a capacity hint
	for _, nr := range t.Nodes {
		total += len(nr.Neighbors)
	}
	edges := make(map[[2]ID]struct{}, total)
	//grlint:allow D001 -- builds an unordered set; insertion order is invisible
	for id, nr := range t.Nodes {
		for _, p := range nr.Neighbors {
			a, b := id, p
			if a > b {
				a, b = b, a
			}
			edges[[2]ID{a, b}] = struct{}{}
		}
	}
	return edges
}

// buildTrace assembles the run's Trace from the final node states and the
// accumulated metrics.
func (s *Sim) buildTrace() *Trace {
	s.met.Rounds = s.round
	t := &Trace{
		Metrics: s.met,
		IDs:     s.ids,
		Nodes:   make(map[ID]*NodeResult, s.n),
	}
	// One backing array for all per-node results instead of n small heap
	// objects: at large n the per-node allocations dominated buildTrace.
	results := make([]NodeResult, s.n)
	for i, nd := range s.nodes {
		results[i] = NodeResult{ID: nd.id, Neighbors: nd.neighbors, Outputs: nd.outputs}
		t.Nodes[nd.id] = &results[i]
		if nd.unrealizable {
			t.Unrealizable = true
		}
	}
	return t
}
