package ncc

import (
	"container/heap"
	"fmt"
	"time"
)

// engine.go is the round engine: the driver loop that sits between barriers,
// partitions checked-in nodes, invokes the delivery layer, advances rounds,
// and decides the next active set. It relies on the Scheduler for suspension
// mechanics and on delivery for message routing; this file owns only policy.

// drive is the engine loop. Between barriers it owns every parked node's
// state; the happens-before edges are provided by the Scheduler (check-in:
// node → engine; release: engine → node).
func (s *Sim) drive(panics chan error) {
	pt := startPhaseTimer(s.cfg.Profile)
	for {
		s.sched.AwaitAll()
		pt.endCompute()
		// Collect goroutine errors observed this round.
		for {
			select {
			case err := <-panics:
				if s.firstErr == nil {
					s.firstErr = err
				}
			default:
				goto drained
			}
		}
	drained:
		if s.firstErr == nil && s.cfg.Progress != nil {
			s.cfg.Progress(s.round, int(s.met.Messages))
		}
		if s.firstErr == nil && s.cfg.Stop != nil {
			select {
			case <-s.cfg.Stop:
				s.firstErr = ErrCanceled
			default:
			}
		}
		if s.firstErr != nil {
			if s.killAll() {
				continue
			}
			return
		}

		// Partition the nodes that just checked in.
		var collective []*Node
		justDone := 0
		for _, nd := range s.active {
			switch nd.state {
			case stateDone:
				justDone++
			case stateAwait:
				s.awaiters[nd.idx] = nd
			case stateSleep:
				heap.Push(&s.sleepers, nd)
			case stateCollective:
				collective = append(collective, nd)
			}
		}
		s.doneCnt += justDone

		if len(collective) > 0 {
			if !s.runCollective(collective) {
				if s.killAll() {
					continue
				}
				return
			}
		}

		// Deliver messages sent this round.
		sv := int(s.sendViol.Swap(0))
		if sv > 0 {
			s.met.SendViolations += sv
			if s.cfg.Strict {
				s.firstErr = fmt.Errorf("ncc: round %d: send capacity exceeded (capacity %d)", s.round, s.capacity)
			}
		}
		if s.doneCnt == s.n {
			// Every protocol returned during this round's compute slice; the
			// final slice performs no further communication and does not
			// start a new round. Deliver only to account for sent messages —
			// a strict-mode capacity violation here is still a run error.
			_, derr := s.del.route(s.active, s.awaiters, s.round, &s.met)
			if derr != nil && s.firstErr == nil {
				s.firstErr = derr
			}
			s.met.Rounds = s.round
			return
		}
		pt.beginDelivery()
		woken, derr := s.del.route(s.active, s.awaiters, s.round, &s.met)
		pt.endDelivery()
		if derr != nil && s.firstErr == nil {
			s.firstErr = derr
		}
		if s.firstErr != nil {
			if s.killAll() {
				continue
			}
			return
		}

		// Advance the round and compute the next active set.
		s.round++
		if s.round > s.cfg.MaxRounds {
			s.firstErr = fmt.Errorf("ncc: exceeded MaxRounds=%d", s.cfg.MaxRounds)
			if s.killAll() {
				continue
			}
			return
		}
		next := s.nextActive(woken)
		if len(next) == 0 {
			if s.sleepers.Len() > 0 {
				// Fast-forward empty rounds to the earliest wake time.
				s.round = s.sleepers[0].wakeRound
				next = s.nextActive(nil)
			}
			if len(next) == 0 {
				s.firstErr = ErrDeadlock
				if s.killAll() {
					continue
				}
				return
			}
		}
		pt.flushRound()
		s.wakeSet(next)
	}
}

// phaseTimer splits one round's wall time into the three Config.Profile
// phases. With a nil hook every method is a no-op with zero clock reads, so
// unprofiled runs pay nothing. The spans tile the driver loop exactly:
//
//	compute  — wakeSet's release → AwaitAll return (node slices running; on
//	           the flat driver Release steps the nodes inline, so compute is
//	           attributed identically)
//	delivery — the del.route call
//	barrier  — everything else between barriers (error collection, Progress/
//	           Stop polls, partitioning, collectives, round advance, and the
//	           wake-set sort inside wakeSet, which lands in the next round's
//	           compute span — negligible by construction)
//
// flushRound fires the hook immediately before the next release, i.e. once
// per completed round on the driver goroutine; rounds that end the run
// (every node done, or an aborting error) never flush and are dropped.
type phaseTimer struct {
	hook                       func(compute, delivery, barrier time.Duration)
	mark                       time.Time
	compute, delivery, barrier time.Duration
}

func startPhaseTimer(hook func(compute, delivery, barrier time.Duration)) phaseTimer {
	pt := phaseTimer{hook: hook}
	if hook != nil {
		pt.mark = time.Now() //grlint:allow D001 -- profile-only clock read; conformance proves phase profiling is trace-inert
	}
	return pt
}

// lap returns the span since the previous mark and re-marks.
func (pt *phaseTimer) lap() time.Duration {
	now := time.Now() //grlint:allow D001 -- profile-only clock read; conformance proves phase profiling is trace-inert
	d := now.Sub(pt.mark)
	pt.mark = now
	return d
}

func (pt *phaseTimer) endCompute() {
	if pt.hook != nil {
		pt.compute += pt.lap()
	}
}

func (pt *phaseTimer) beginDelivery() {
	if pt.hook != nil {
		pt.barrier += pt.lap()
	}
}

func (pt *phaseTimer) endDelivery() {
	if pt.hook != nil {
		pt.delivery += pt.lap()
	}
}

func (pt *phaseTimer) flushRound() {
	if pt.hook == nil {
		return
	}
	pt.barrier += pt.lap()
	pt.hook(pt.compute, pt.delivery, pt.barrier)
	pt.compute, pt.delivery, pt.barrier = 0, 0, 0
}

// nextActive gathers the nodes that act in the (already advanced) round:
// nodes that checked in Running, awaiters that received mail (woken), and
// sleepers whose wake round has arrived.
func (s *Sim) nextActive(woken []*Node) []*Node {
	// nextScratch is reused across rounds: wakeSet copies the result into
	// s.active before the next call, so the backing array is free again.
	next := s.nextScratch[:0]
	for _, nd := range s.active {
		if nd.state == stateRunning {
			next = append(next, nd)
		}
	}
	next = append(next, woken...)
	for s.sleepers.Len() > 0 && s.sleepers[0].wakeRound <= s.round {
		next = append(next, heap.Pop(&s.sleepers).(*Node))
	}
	s.nextScratch = next
	return next
}

// wakeSet releases the given nodes into the new round in deterministic order.
func (s *Sim) wakeSet(next []*Node) {
	sortNodesByIdx(next)
	s.active = append(s.active[:0], next...)
	s.met.ActiveNodeRounds += int64(len(next))
	s.sched.Release(s.active)
}

// runCollective validates and executes a collective barrier. All live
// (non-done) nodes must have entered the same collective; sleeping or
// awaiting nodes indicate a protocol bug.
func (s *Sim) runCollective(coll []*Node) bool {
	tag := coll[0].collTag
	for _, nd := range coll {
		if nd.collTag != tag {
			s.firstErr = fmt.Errorf("ncc: mixed collectives %q and %q at round %d", tag, nd.collTag, s.round)
			return false
		}
	}
	if len(coll)+s.doneCnt != s.n || s.sleepers.Len() > 0 || len(s.awaiters) > 0 {
		s.firstErr = fmt.Errorf("ncc: collective %q entered by %d of %d live nodes at round %d",
			tag, len(coll), s.n-s.doneCnt, s.round)
		return false
	}
	h, ok := s.collectives[tag]
	if !ok {
		s.firstErr = fmt.Errorf("ncc: unknown collective %q", tag)
		return false
	}
	ins := make([]any, s.n)
	for _, nd := range coll {
		ins[nd.idx] = nd.collIn
	}
	outs, charge := h(s, ins)
	if charge < 0 {
		charge = 0
	}
	s.round += charge
	s.met.CollectiveRounds += charge
	s.met.CollectiveCalls[tag]++
	for _, nd := range coll {
		if outs != nil {
			nd.collOut = outs[nd.idx]
		}
		nd.state = stateRunning // they resume next round
	}
	return true
}

// killAll wakes every parked node with the kill flag so goroutines unwind.
// It returns true if any node was woken (the engine must then consume their
// final check-ins) and false when everything has already terminated. The
// seen set dedupes nodes that appear both in the just-checked-in active set
// and in the awaiter/sleeper structures.
func (s *Sim) killAll() bool {
	seen := make(map[int]struct{}, s.n)
	var victims []*Node
	add := func(nd *Node) {
		if nd.state == stateDone {
			return
		}
		if _, dup := seen[nd.idx]; dup {
			return
		}
		seen[nd.idx] = struct{}{}
		victims = append(victims, nd)
	}
	for _, nd := range s.active {
		add(nd)
	}
	//grlint:allow D001 -- kill path: victims are only marked killed and unwound; the error is already set and victim order cannot reach the trace
	for _, nd := range s.awaiters {
		add(nd)
	}
	s.awaiters = map[int]*Node{}
	for s.sleepers.Len() > 0 {
		add(heap.Pop(&s.sleepers).(*Node))
	}
	if len(victims) == 0 {
		s.met.Rounds = s.round
		return false
	}
	for _, nd := range victims {
		nd.killed = true
	}
	s.active = victims
	s.sched.Release(s.active)
	return true
}
