package ncc

import (
	"fmt"
	"sync"
)

// delivery is the message-routing layer: it moves every active node's outbox
// into the destinations' inboxes at the end of a round, enforces the model's
// receive capacity, and owns the pool of receive buffers. It knows nothing
// about rounds advancing or node scheduling — the engine calls route once per
// barrier and reads back which awaiting nodes got mail.
type delivery struct {
	index    map[ID]int
	nodes    []*Node
	capacity int
	strict   bool

	recvCnt []int   // per-node receive count, current round
	touched []int   // scratch: indices with nonzero recvCnt this round
	woken   []*Node // scratch: awaiters woken this round, consumed before the next route

	// bufPool recycles inbox slices. A node's inbox slice is handed to its
	// protocol by park and stays valid until the node's next barrier call,
	// at which point the node returns it here (see Node.park). Pooling the
	// buffers removes the dominant per-round allocation of busy protocols.
	// ptrPool recycles the *[]Message wrapper objects themselves so that
	// Put never escapes a freshly allocated pointer (the classic sync.Pool
	// trap that would hand the allocation right back).
	bufPool sync.Pool
	ptrPool sync.Pool
}

func newDelivery(index map[ID]int, nodes []*Node, capacity int, strict bool) *delivery {
	return &delivery{
		index:    index,
		nodes:    nodes,
		capacity: capacity,
		strict:   strict,
		recvCnt:  make([]int, len(nodes)),
	}
}

// buffer returns an empty receive buffer, reusing a pooled one if available.
func (d *delivery) buffer() []Message {
	p, _ := d.bufPool.Get().(*[]Message)
	if p == nil {
		return make([]Message, 0, 8)
	}
	buf := *p
	*p = nil
	d.ptrPool.Put(p)
	return buf[:0]
}

// recycle returns a receive buffer to the pool. The full capacity is cleared
// so the pool does not pin Message.IDs slices from old rounds.
func (d *delivery) recycle(buf []Message) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	clear(buf)
	p, _ := d.ptrPool.Get().(*[]Message)
	if p == nil {
		p = new([]Message)
	}
	*p = buf[:0]
	d.bufPool.Put(p)
}

// route delivers every active node's outbox, enforcing receive capacity, and
// returns the awaiters that received mail plus the first strict-mode error.
// Inbox order is deterministic: senders are processed in Gk-index order
// (active is sorted) and each outbox in send order. met is updated with
// message counts and congestion statistics for the round.
func (d *delivery) route(active []*Node, awaiters map[int]*Node, round int, met *Metrics) (woken []*Node, err error) {
	touched := d.touched[:0]
	woken = d.woken[:0]
	maxSent := 0
	for _, nd := range active {
		if len(nd.outbox) > maxSent {
			maxSent = len(nd.outbox)
		}
		for i := range nd.outbox {
			m := nd.outbox[i]
			dsti, ok := d.index[m.dst]
			if !ok {
				continue // unreachable: Send validated
			}
			dst := d.nodes[dsti]
			if d.recvCnt[dsti] == 0 {
				touched = append(touched, dsti)
			}
			d.recvCnt[dsti]++
			if dst.inbox == nil {
				dst.inbox = d.buffer()
			}
			dst.inbox = append(dst.inbox, m)
			met.Messages++
			if aw, isAw := awaiters[dsti]; isAw {
				delete(awaiters, dsti)
				woken = append(woken, aw)
			}
		}
		nd.outbox = nd.outbox[:0]
	}
	if maxSent > met.MaxSentPerRound {
		met.MaxSentPerRound = maxSent
	}
	for _, i := range touched {
		c := d.recvCnt[i]
		if c > met.MaxRecvPerRound {
			met.MaxRecvPerRound = c
		}
		if c > d.capacity {
			met.RecvViolations++
			if d.strict && err == nil {
				err = fmt.Errorf("ncc: round %d: node %d received %d messages (capacity %d)",
					round, d.nodes[i].id, c, d.capacity)
			}
		}
		d.recvCnt[i] = 0
	}
	d.touched = touched
	d.woken = woken
	return woken, err
}
