package ncc

import (
	"runtime"
	"sync/atomic"
)

// pool.go is the run-to-completion worker-pool Scheduler. The barrier driver
// (scheduler.go) makes every released node's goroutine runnable at once, so a
// round keeps O(active) goroutines runnable and deep in the runtime's run
// queues. The pool driver dispatches the released set to a fixed worker pool
// in bounded batches: each worker wakes at most poolWindow nodes, lets their
// run-slices execute to the next Park/Depart, and only then wakes the next
// batch. The runnable set stays ≤ workers·poolWindow regardless of n, the
// round barrier becomes a countdown of per-worker chunks instead of N channel
// parks, and sleeping/dead nodes — never dispatched — cost nothing.
//
// Node bodies are ordinary blocking functions, so each node still owns a
// (parked, shrinkable) goroutine stack between slices — Go has no way to
// suspend a call stack without one — but a parked goroutine that is never
// made runnable costs only its stack. Bounding the runnable set is what makes
// many large simulations cheap to co-schedule inside one serving process: the
// runtime scheduler juggles a handful of runnable goroutines per job instead
// of n per job.
//
// Happens-before edges (the Scheduler contract):
//
//	release:  engine → dispatch send → worker recv → wake send / go stmt → node
//	check-in: node → outstanding.Add (release/acquire chain on the same
//	          counter) → last node's ran send → worker recv → pending.Add
//	          (same chain, per round) → last worker's allIn send → engine
//
// Both countdown chains are the pattern barrierScheduler already relies on:
// every decrement is an acquire of all prior release-decrements, so AwaitAll
// returning observes every parked node's writes.
//
// Phase profiling (Config.Profile): the engine's compute span covers
// Release → AwaitAll return, which here includes dispatch-channel hops and
// worker wakeups alongside the node slices themselves — scheduling overhead
// is deliberately attributed to compute, since it is the cost of running the
// slices under this driver.
type poolScheduler struct {
	workers int
	window  int // batch size; poolWindow unless overridden in tests
	body    func(*Node)
	// dispatch carries one contiguous chunk of the released set per worker
	// per round. Capacity = workers, so Release never blocks: at most
	// `workers` chunks are outstanding, and all of them were consumed before
	// the previous AwaitAll returned.
	dispatch chan []*Node
	// pending counts unfinished chunks this round; the worker that completes
	// the last chunk hands control to the engine.
	pending atomic.Int64
	allIn   chan struct{}

	// inline is the small-release fast path: a set that fits one batch is
	// stashed here by Release and driven by the engine goroutine itself in
	// AwaitAll (using eng as its pseudo-worker), skipping the worker handoff
	// entirely. Protocols spend most rounds with small active sets — a round
	// with ≤ one batch of runnable nodes costs exactly what the barrier
	// driver charges, and the pool's machinery only engages when the set is
	// large enough for dispatch to pay for itself.
	inline []*Node
	eng    poolWorker
}

// poolWindow bounds the run-slices a worker keeps in flight. Within a batch,
// woken nodes run back-to-back off the runtime's local run queue — about one
// goroutine switch per slice, none of them through the worker — and the
// worker is woken once per batch by the last check-in. The value keeps a
// worker's runnable nodes within the runtime's per-P local run queue (256) so
// dispatch never spills to the lock-guarded global queue.
const poolWindow = 256

// newPoolScheduler creates a pool driver with the given worker count
// (0 selects GOMAXPROCS). Workers are started by Spawn.
func newPoolScheduler(workers int) *poolScheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &poolScheduler{
		workers:  workers,
		window:   poolWindow,
		dispatch: make(chan []*Node, workers),
		allIn:    make(chan struct{}, 1),
	}
	p.eng.ran = make(chan struct{}, 1)
	return p
}

func (p *poolScheduler) Spawn(nodes []*Node, body func(*Node)) {
	p.body = body
	// A release can never exceed n nodes, so when every possible release
	// takes the inline path the workers would idle for the whole run — skip
	// starting them (Shutdown's close of an empty dispatch stays safe).
	if p.workers > 1 && len(nodes) > p.window {
		for i := 0; i < p.workers; i++ {
			w := &poolWorker{sched: p, ran: make(chan struct{}, 1)}
			go w.loop()
		}
	}
	p.Release(nodes)
}

func (p *poolScheduler) AwaitAll() {
	if nodes := p.inline; nodes != nil {
		p.inline = nil
		for len(nodes) > 0 {
			batch := nodes
			if len(batch) > p.window {
				batch = nodes[:p.window]
			}
			nodes = nodes[len(batch):]
			p.eng.runBatch(batch, p.body)
		}
		return
	}
	<-p.allIn
}

// Release splits the round's active set into one contiguous chunk per worker
// and dispatches them; a set that fits one batch — or any set when there is
// only one worker, where dispatch buys no parallelism — is deferred to
// AwaitAll's inline fast path instead. Chunking (instead of a shared
// per-node queue) keeps the hot path free of cross-worker contention: within
// a chunk the only shared state is the worker's own countdown.
func (p *poolScheduler) Release(nodes []*Node) {
	n := len(nodes)
	if n <= p.window || p.workers == 1 {
		// The engine mutates its active slice only after the next AwaitAll
		// returns, so deferring the reference (not a copy) is safe.
		p.inline = nodes
		return
	}
	chunks := p.workers
	if n < chunks {
		chunks = n // never dispatch an empty chunk
	}
	p.pending.Store(int64(chunks))
	// Ceil-divided bounds so every chunk is within ±1 node of the others.
	for i := 0; i < chunks; i++ {
		lo := i * n / chunks
		hi := (i + 1) * n / chunks
		p.dispatch <- nodes[lo:hi]
	}
}

func (p *poolScheduler) Park(nd *Node) {
	nd.poolW.checkin()
	<-nd.wake
}

func (p *poolScheduler) Depart(nd *Node) {
	nd.poolW.checkin()
}

// Shutdown retires the worker pool. Called only after every node body has
// departed, so no worker is mid-batch: each is blocked on (or about to reach)
// the dispatch receive and exits when it observes the close.
func (p *poolScheduler) Shutdown() { close(p.dispatch) }

// poolWorker drives one chunk per round in batches of ≤ poolWindow slices.
type poolWorker struct {
	sched *poolScheduler
	// outstanding counts the current batch's unfinished slices; the final
	// check-in of a batch wakes the worker via ran (capacity 1: the send
	// never blocks the parking node).
	outstanding atomic.Int64
	ran         chan struct{}
}

// checkin is called by a node goroutine after it has written its parked
// state; the final check-in of a batch hands control back to the worker.
func (w *poolWorker) checkin() {
	if w.outstanding.Add(-1) == 0 {
		w.ran <- struct{}{}
	}
}

// runBatch wakes every node in batch against w's countdown and blocks until
// the batch's last check-in hands control back.
func (w *poolWorker) runBatch(batch []*Node, body func(*Node)) {
	w.outstanding.Store(int64(len(batch)))
	for _, nd := range batch {
		nd.poolW = w
		if nd.started {
			nd.wake <- struct{}{}
		} else {
			// First release: the body starts here instead of at Spawn so
			// the runnable set is bounded from round 0.
			nd.started = true
			go body(nd)
		}
	}
	<-w.ran
}

func (w *poolWorker) loop() {
	for chunk := range w.sched.dispatch {
		win := w.sched.window
		for len(chunk) > 0 {
			batch := chunk
			if len(batch) > win {
				batch = chunk[:win]
			}
			chunk = chunk[len(batch):]
			w.runBatch(batch, w.sched.body)
		}
		if w.sched.pending.Add(-1) == 0 {
			w.sched.allIn <- struct{}{}
		}
	}
}
