package ncc

import (
	"errors"
	"testing"
)

// The progress hook fires at the same barrier that polls Stop, on the
// engine's driver goroutine, so it observes a frozen simulation: rounds and
// message counts must be monotone across invocations.

func TestProgressHookMonotone(t *testing.T) {
	const wantRounds = 20
	var rounds, msgs []int
	s := New(Config{
		N:    4,
		Seed: 11,
		Progress: func(round, m int) {
			rounds = append(rounds, round)
			msgs = append(msgs, m)
		},
	})
	_, err := s.Run(func(nd *Node) {
		succ := nd.InitialSucc()
		for r := 0; r < wantRounds; r++ {
			if succ != None {
				nd.Send(succ, Message{})
			}
			nd.NextRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) < wantRounds {
		t.Fatalf("hook fired %d times, want at least %d (once per barrier)", len(rounds), wantRounds)
	}
	if rounds[0] != 0 {
		t.Fatalf("first barrier must report 0 completed rounds, got %d", rounds[0])
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] < rounds[i-1] {
			t.Fatalf("rounds not monotone: %d after %d", rounds[i], rounds[i-1])
		}
		if msgs[i] < msgs[i-1] {
			t.Fatalf("messages not monotone: %d after %d", msgs[i], msgs[i-1])
		}
	}
	if last := msgs[len(msgs)-1]; last == 0 {
		t.Fatal("a sending protocol must report delivered messages")
	}
}

func TestProgressHookSeesCancellation(t *testing.T) {
	// The hook runs before the Stop poll in the same barrier, so a canceled
	// run still reports the rounds completed up to the cancellation point.
	stop := make(chan struct{})
	lastRound := -1
	s := New(Config{
		N:    3,
		Seed: 5,
		Stop: stop,
		Progress: func(round, m int) {
			lastRound = round
			if round == 10 {
				close(stop)
			}
		},
	})
	_, err := s.Run(func(nd *Node) {
		for {
			nd.NextRound()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if lastRound < 10 {
		t.Fatalf("hook must have observed round 10 before cancellation, last saw %d", lastRound)
	}
}
