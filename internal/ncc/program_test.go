package ncc

import (
	"reflect"
	"testing"
)

// program_test.go pins the single-node semantics of the resumable-op
// vocabulary (program.go), independent of any protocol package: each Op kind
// maps onto exactly one engine barrier, Wake carries exactly what the
// corresponding blocking call would have returned, and the flat stepper
// validates malformed ops the same way the goroutine drivers do.

// TestOpSingleNodeSemantics drives a lone node through Next and Sleep under
// the flat driver and checks the observed round at every resumption.
func TestOpSingleNodeSemantics(t *testing.T) {
	s := New(Config{N: 1, Seed: 1, Strict: true, Sched: SchedFlat})
	var at []int
	_, err := s.RunProgram(func(nd *Node) Op {
		at = append(at, nd.Round()) // entry runs in round 0
		return Next(func(nd *Node, w Wake) Op {
			at = append(at, nd.Round()) // Next advances exactly one round
			if len(w.Msgs) != 0 {
				t.Errorf("Next delivered %d messages, want 0", len(w.Msgs))
			}
			return Sleep(3, func(nd *Node, w Wake) Op {
				at = append(at, nd.Round()) // Sleep(3) skips three rounds
				return Done()
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 4}; !reflect.DeepEqual(at, want) {
		t.Fatalf("observed rounds %v, want %v", at, want)
	}
}

// TestOpAwaitWakeCarriesMessages checks that an Await continuation receives
// the delivered inbox in Wake.Msgs — the step-form analogue of AwaitMessage's
// return value.
func TestOpAwaitWakeCarriesMessages(t *testing.T) {
	s := New(Config{N: 2, Seed: 2, Strict: true, Sched: SchedFlat})
	_, err := s.RunProgram(func(nd *Node) Op {
		if succ := nd.InitialSucc(); succ != None {
			nd.Send(succ, Message{Kind: 7, A: 42})
			return Done()
		}
		return Await(func(nd *Node, w Wake) Op {
			if len(w.Msgs) != 1 || w.Msgs[0].Kind != 7 || w.Msgs[0].A != 42 {
				t.Errorf("await woke with %+v, want one message Kind=7 A=42", w.Msgs)
			}
			return Done()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpCollectiveRoundTrip checks that a Collective op hands the node's
// input to the handler and that Wake.Coll carries the per-node output back.
func TestOpCollectiveRoundTrip(t *testing.T) {
	const n = 5
	inputs := make([]any, n)
	for i := range inputs {
		inputs[i] = int64(i + 1)
	}
	s := New(Config{N: n, Seed: 3, Strict: true, Sched: SchedFlat, Inputs: inputs})
	s.RegisterCollective("sum", func(s *Sim, ins []any) ([]any, int) {
		var total int64
		for _, in := range ins {
			total += in.(int64)
		}
		outs := make([]any, len(ins))
		for i := range outs {
			outs[i] = total
		}
		return outs, 2
	})
	tr, err := s.RunProgram(func(nd *Node) Op {
		return Collective("sum", nd.Input(), func(nd *Node, w Wake) Op {
			nd.SetOutput("total", w.Coll.(int64))
			return Done()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n * (n + 1) / 2)
	for _, id := range tr.IDs {
		if v, ok := tr.Output(id, "total"); !ok || v != want {
			t.Fatalf("node %d: total %d (ok=%v), want %d", id, v, ok, want)
		}
	}
	if tr.Metrics.CollectiveRounds != 2 {
		t.Fatalf("collective charged %d rounds, want 2", tr.Metrics.CollectiveRounds)
	}
}

// TestOpSleepValidation: a non-positive sleep is a protocol error under the
// flat driver, matching SkipRounds' panic under the goroutine drivers.
func TestOpSleepValidation(t *testing.T) {
	for _, sched := range []SchedKind{SchedBarrier, SchedFlat} {
		s := New(Config{N: 1, Seed: 4, Sched: sched})
		_, err := s.RunProgram(func(nd *Node) Op {
			return Sleep(0, func(nd *Node, w Wake) Op { return Done() })
		})
		if err == nil {
			t.Fatalf("sched=%v: Sleep(0) did not error", sched)
		}
	}
}

// TestOpSequenceTraceIdentical runs one mixed-op micro protocol (send, next,
// await, sleep) under every driver and requires byte-identical traces — the
// smallest possible outbox-determinism check, below any real protocol.
func TestOpSequenceTraceIdentical(t *testing.T) {
	run := func(sched SchedKind) (*Trace, error) {
		s := New(Config{N: 4, Seed: 5, Strict: true, Sched: sched})
		return s.RunProgram(func(nd *Node) Op {
			if succ := nd.InitialSucc(); succ != None {
				nd.Send(succ, Message{Kind: 1, A: int64(nd.ID())})
				return Next(func(nd *Node, w Wake) Op {
					return Sleep(2, func(nd *Node, w Wake) Op {
						nd.SetOutput("sent", 1)
						return Done()
					})
				})
			}
			return Await(func(nd *Node, w Wake) Op {
				nd.SetOutput("got", w.Msgs[0].A)
				return Done()
			})
		})
	}
	base, err := run(SchedBarrier)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []SchedKind{SchedPool, SchedFlat} {
		tr, err := run(sched)
		if err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}
		if !reflect.DeepEqual(base, tr) {
			t.Fatalf("sched=%v: trace differs from barrier:\nbarrier %+v\n%v %+v", sched, base, sched, tr)
		}
	}
}
