package ncc

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync/atomic"
)

// Config parameterizes a simulation.
type Config struct {
	// N is the number of nodes (≥ 1).
	N int
	// Model selects NCC0 (default) or NCC1 initial knowledge.
	Model Model
	// Seed makes the run deterministic: node IDs, the Gk permutation and all
	// per-node random sources derive from it.
	Seed int64
	// CapMul scales the per-round capacity: capacity = CapMul·⌈log₂ N⌉
	// (minimum 1). Zero selects DefaultCapMul.
	CapMul int
	// Strict turns capacity violations into run errors instead of metrics.
	Strict bool
	// MaxRounds aborts runaway protocols. Zero selects DefaultMaxRounds.
	MaxRounds int
	// Inputs, if non-nil, assigns Inputs[i] to the node at Gk position i.
	Inputs []any
	// OrderedIDs forces node IDs to be assigned in increasing order along the
	// Gk path (IDs are still random in NCC0 unless Model is NCC1). Figures in
	// the paper use this layout; by default the path order is a random
	// permutation of random IDs.
	OrderedIDs bool
}

// DefaultCapMul is the default capacity multiplier. The paper's algorithms
// send O(log n) messages per round; a multiplier of 8 absorbs the constants
// of every protocol in this repository in strict mode.
const DefaultCapMul = 8

// DefaultMaxRounds bounds a run to guard against livelocked protocols.
const DefaultMaxRounds = 50_000_000

// ErrDeadlock is returned when every live node is waiting for a message and
// none is in flight.
var ErrDeadlock = errors.New("ncc: deadlock: all live nodes await messages and none are in flight")

// CollectiveOut is the per-node output of a collective handler. Learn lists
// IDs the node acquires knowledge of (NCC0 bookkeeping for centrally executed
// primitives).
type CollectiveOut struct {
	Val   any
	Learn []ID
}

// CollectiveHandler executes a named collective centrally. ins[i] is the
// input of the node at Gk position i (nil for nodes that passed nil). It
// returns per-position outputs and the number of rounds to charge, which
// must be justified by an analytic bound on the primitive being replaced.
type CollectiveHandler func(s *Sim, ins []any) (outs []any, chargeRounds int)

// Sim is a single NCC simulation instance. Create with New, register any
// collectives, then call Run exactly once.
type Sim struct {
	cfg      Config
	n        int
	capacity int

	ids    []ID // Gk order
	index  map[ID]int
	allIDs []ID // sorted, shared in NCC1
	nodes  []*Node

	collectives map[string]CollectiveHandler

	// driver state
	round    int
	pending  atomic.Int64
	allIn    chan struct{}
	active   []*Node // nodes woken for the current round (checked in when allIn fires)
	awaiters map[int]*Node
	sleepers sleepHeap
	doneCnt  int

	sendViol atomic.Int64
	recvCnt  []int // per-node receive count, current round
	touched  []int // scratch: indices with nonzero recvCnt this round

	met      Metrics
	firstErr error
}

// New creates a simulation with n nodes arranged on a directed path Gk.
func New(cfg Config) *Sim {
	if cfg.N < 1 {
		panic("ncc: Config.N must be ≥ 1")
	}
	if cfg.CapMul == 0 {
		cfg.CapMul = DefaultCapMul
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	n := cfg.N
	capacity := cfg.CapMul * ceilLog2(n)
	if capacity < cfg.CapMul {
		capacity = cfg.CapMul
	}
	s := &Sim{
		cfg:         cfg,
		n:           n,
		capacity:    capacity,
		index:       make(map[ID]int, n),
		collectives: make(map[string]CollectiveHandler),
		allIn:       make(chan struct{}, 1),
		awaiters:    make(map[int]*Node),
		recvCnt:     make([]int, n),
	}
	s.assignIDs()
	s.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := &Node{
			sim:  s,
			id:   s.ids[i],
			idx:  i,
			rng:  rand.New(rand.NewSource(mix64(cfg.Seed, int64(s.ids[i])))),
			wake: make(chan struct{}, 1),
		}
		if cfg.Model == NCC0 {
			nd.known = make(map[ID]struct{}, 8)
		}
		if i+1 < n {
			nd.initialSucc = s.ids[i+1]
			nd.Learn(nd.initialSucc)
		}
		if cfg.Inputs != nil && i < len(cfg.Inputs) {
			nd.input = cfg.Inputs[i]
		}
		s.nodes[i] = nd
	}
	s.met = Metrics{N: n, Capacity: capacity, CollectiveCalls: make(map[string]int)}
	return s
}

// assignIDs draws distinct IDs and fixes the Gk path order.
func (s *Sim) assignIDs() {
	n := s.n
	rng := rand.New(rand.NewSource(mix64(s.cfg.Seed, 0x1D5)))
	s.ids = make([]ID, n)
	if s.cfg.Model == NCC1 {
		// IDs are w.l.o.g. 1..n; the path order is still a permutation.
		for i := range s.ids {
			s.ids[i] = ID(i + 1)
		}
	} else {
		// Distinct random IDs from [1, 4n²] (the paper draws from [1, n^c]).
		span := int64(4*n)*int64(n) + 1
		seen := make(map[ID]struct{}, n)
		for i := 0; i < n; i++ {
			for {
				id := ID(rng.Int63n(span) + 1)
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					s.ids[i] = id
					break
				}
			}
		}
	}
	if !s.cfg.OrderedIDs {
		rng.Shuffle(n, func(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] })
	} else {
		sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	}
	for i, id := range s.ids {
		s.index[id] = i
	}
	s.allIDs = make([]ID, n)
	copy(s.allIDs, s.ids)
	sort.Slice(s.allIDs, func(i, j int) bool { return s.allIDs[i] < s.allIDs[j] })
}

// RegisterCollective installs a named collective handler. See Node.Collective.
func (s *Sim) RegisterCollective(tag string, h CollectiveHandler) {
	s.collectives[tag] = h
}

// IDs returns the node IDs in Gk (path) order. The slice is shared.
func (s *Sim) IDs() []ID { return s.ids }

// N returns the node count.
func (s *Sim) N() int { return s.n }

// Capacity returns the per-node per-round message budget.
func (s *Sim) Capacity() int { return s.capacity }

// checkin is called by a node goroutine after it has written its parked
// state; the final check-in of a round hands control to the driver.
func (s *Sim) checkin() {
	if s.pending.Add(-1) == 0 {
		s.allIn <- struct{}{}
	}
}

func (s *Sim) noteSendViolation(nd *Node) {
	s.sendViol.Add(1)
}

// Run executes proto on every node and drives the synchronous rounds to
// completion. It returns the Trace and the first error encountered (protocol
// violation, deadlock, strict capacity violation, round limit, or panic).
func (s *Sim) Run(proto func(*Node)) (*Trace, error) {
	panics := make(chan error, s.n)
	s.active = append(s.active[:0], s.nodes...)
	s.pending.Store(int64(s.n))
	for _, nd := range s.nodes {
		go func(nd *Node) {
			defer func() {
				if r := recover(); r != nil {
					switch v := r.(type) {
					case killedPanic:
						// intentional unwind
					case protoError:
						panics <- v.err
					default:
						panics <- fmt.Errorf("ncc: node %d panicked: %v\n%s", nd.id, r, debug.Stack())
					}
				}
				nd.state = stateDone
				s.checkin()
			}()
			proto(nd)
		}(nd)
	}
	s.drive(panics)
	return s.buildTrace(), s.firstErr
}

// drive is the barrier driver loop. Between barriers it owns every parked
// node's state; the happens-before edges are the checkin channel send (node →
// driver) and the wake channel send (driver → node).
func (s *Sim) drive(panics chan error) {
	for {
		<-s.allIn
		// Collect goroutine errors observed this round.
		for {
			select {
			case err := <-panics:
				if s.firstErr == nil {
					s.firstErr = err
				}
			default:
				goto drained
			}
		}
	drained:
		if s.firstErr != nil {
			if s.killAll() {
				continue
			}
			return
		}

		// Partition the nodes that just checked in.
		var collective []*Node
		justDone := 0
		for _, nd := range s.active {
			switch nd.state {
			case stateDone:
				justDone++
			case stateAwait:
				s.awaiters[nd.idx] = nd
			case stateSleep:
				heap.Push(&s.sleepers, nd)
			case stateCollective:
				collective = append(collective, nd)
			}
		}
		s.doneCnt += justDone

		if len(collective) > 0 {
			if !s.runCollective(collective) {
				if s.killAll() {
					continue
				}
				return
			}
		}

		// Deliver messages sent this round.
		sv := int(s.sendViol.Swap(0))
		if sv > 0 {
			s.met.SendViolations += sv
			if s.cfg.Strict {
				s.firstErr = fmt.Errorf("ncc: round %d: send capacity exceeded (capacity %d)", s.round, s.capacity)
			}
		}
		if s.doneCnt == s.n {
			// Every protocol returned during this round's compute slice; the
			// final slice performs no further communication and does not
			// start a new round. Deliver only to account for sent messages.
			s.deliver()
			s.met.Rounds = s.round
			return
		}
		woken := s.deliver()
		if s.firstErr != nil {
			if s.killAll() {
				continue
			}
			return
		}

		// Advance the round and compute the next active set.
		s.round++
		if s.round > s.cfg.MaxRounds {
			s.firstErr = fmt.Errorf("ncc: exceeded MaxRounds=%d", s.cfg.MaxRounds)
			if s.killAll() {
				continue
			}
			return
		}
		next := s.nextActive(woken)
		if len(next) == 0 {
			if s.sleepers.Len() > 0 {
				// Fast-forward empty rounds to the earliest wake time.
				s.round = s.sleepers[0].wakeRound
				next = s.nextActive(nil)
			}
			if len(next) == 0 {
				s.firstErr = ErrDeadlock
				if s.killAll() {
					continue
				}
				return
			}
		}
		s.wakeSet(next)
	}
}

// nextActive gathers the nodes that act in the (already advanced) round:
// nodes that checked in Running, awaiters that received mail (woken), and
// sleepers whose wake round has arrived.
func (s *Sim) nextActive(woken []*Node) []*Node {
	next := woken[:0:0]
	for _, nd := range s.active {
		if nd.state == stateRunning {
			next = append(next, nd)
		}
	}
	next = append(next, woken...)
	for s.sleepers.Len() > 0 && s.sleepers[0].wakeRound <= s.round {
		next = append(next, heap.Pop(&s.sleepers).(*Node))
	}
	return next
}

// wakeSet releases the given nodes into the new round in deterministic order.
func (s *Sim) wakeSet(next []*Node) {
	sort.Slice(next, func(i, j int) bool { return next[i].idx < next[j].idx })
	s.active = append(s.active[:0], next...)
	s.met.ActiveNodeRounds += int64(len(next))
	s.pending.Store(int64(len(next)))
	for _, nd := range next {
		nd.wake <- struct{}{}
	}
}

// deliver routes every active node's outbox, enforcing receive capacity, and
// returns the awaiters that received mail. Inbox order is deterministic:
// senders are processed in Gk-index order (active is sorted) and each outbox
// in send order.
func (s *Sim) deliver() []*Node {
	var woken []*Node
	touched := s.touched[:0]
	maxSent := 0
	for _, nd := range s.active {
		if len(nd.outbox) > maxSent {
			maxSent = len(nd.outbox)
		}
		for i := range nd.outbox {
			m := nd.outbox[i]
			dsti, ok := s.index[m.dst]
			if !ok {
				continue // unreachable: Send validated
			}
			dst := s.nodes[dsti]
			if s.recvCnt[dsti] == 0 {
				touched = append(touched, dsti)
			}
			s.recvCnt[dsti]++
			dst.inbox = append(dst.inbox, m)
			s.met.Messages++
			if aw, isAw := s.awaiters[dsti]; isAw {
				delete(s.awaiters, dsti)
				woken = append(woken, aw)
			}
		}
		nd.outbox = nd.outbox[:0]
	}
	if maxSent > s.met.MaxSentPerRound {
		s.met.MaxSentPerRound = maxSent
	}
	for _, i := range touched {
		c := s.recvCnt[i]
		if c > s.met.MaxRecvPerRound {
			s.met.MaxRecvPerRound = c
		}
		if c > s.capacity {
			s.met.RecvViolations++
			if s.cfg.Strict && s.firstErr == nil {
				s.firstErr = fmt.Errorf("ncc: round %d: node %d received %d messages (capacity %d)",
					s.round, s.nodes[i].id, c, s.capacity)
			}
		}
		s.recvCnt[i] = 0
	}
	s.touched = touched
	return woken
}

// runCollective validates and executes a collective barrier. All live
// (non-done) nodes must have entered the same collective; sleeping or
// awaiting nodes indicate a protocol bug.
func (s *Sim) runCollective(coll []*Node) bool {
	tag := coll[0].collTag
	for _, nd := range coll {
		if nd.collTag != tag {
			s.firstErr = fmt.Errorf("ncc: mixed collectives %q and %q at round %d", tag, nd.collTag, s.round)
			return false
		}
	}
	if len(coll)+s.doneCnt != s.n || s.sleepers.Len() > 0 || len(s.awaiters) > 0 {
		s.firstErr = fmt.Errorf("ncc: collective %q entered by %d of %d live nodes at round %d",
			tag, len(coll), s.n-s.doneCnt, s.round)
		return false
	}
	h, ok := s.collectives[tag]
	if !ok {
		s.firstErr = fmt.Errorf("ncc: unknown collective %q", tag)
		return false
	}
	ins := make([]any, s.n)
	for _, nd := range coll {
		ins[nd.idx] = nd.collIn
	}
	outs, charge := h(s, ins)
	if charge < 0 {
		charge = 0
	}
	s.round += charge
	s.met.CollectiveRounds += charge
	s.met.CollectiveCalls[tag]++
	for _, nd := range coll {
		if outs != nil {
			nd.collOut = outs[nd.idx]
		}
		nd.state = stateRunning // they resume next round
	}
	return true
}

// killAll wakes every parked node with the kill flag so goroutines unwind.
// It returns true if any node was woken (the driver must then consume their
// final check-ins) and false when everything has already terminated. The
// seen set dedupes nodes that appear both in the just-checked-in active set
// and in the awaiter/sleeper structures.
func (s *Sim) killAll() bool {
	seen := make(map[int]struct{}, s.n)
	var victims []*Node
	add := func(nd *Node) {
		if nd.state == stateDone {
			return
		}
		if _, dup := seen[nd.idx]; dup {
			return
		}
		seen[nd.idx] = struct{}{}
		victims = append(victims, nd)
	}
	for _, nd := range s.active {
		add(nd)
	}
	for _, nd := range s.awaiters {
		add(nd)
	}
	s.awaiters = map[int]*Node{}
	for s.sleepers.Len() > 0 {
		add(heap.Pop(&s.sleepers).(*Node))
	}
	if len(victims) == 0 {
		s.met.Rounds = s.round
		return false
	}
	for _, nd := range victims {
		nd.killed = true
	}
	s.pending.Store(int64(len(victims)))
	s.active = victims
	for _, nd := range victims {
		nd.wake <- struct{}{}
	}
	return true
}

func (s *Sim) buildTrace() *Trace {
	s.met.Rounds = s.round
	t := &Trace{
		Metrics: s.met,
		IDs:     s.ids,
		Nodes:   make(map[ID]*NodeResult, s.n),
	}
	for _, nd := range s.nodes {
		t.Nodes[nd.id] = &NodeResult{ID: nd.id, Neighbors: nd.neighbors, Outputs: nd.outputs}
		if nd.unrealizable {
			t.Unrealizable = true
		}
	}
	return t
}

// sleepHeap orders sleeping nodes by wake round.
type sleepHeap []*Node

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].wakeRound < h[j].wakeRound }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(*Node)) }
func (h *sleepHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// mix64 is a splitmix64-style mixer for deterministic seed derivation.
func mix64(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	v := int64(z)
	if v == 0 {
		v = 1
	}
	return v
}
