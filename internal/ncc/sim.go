package ncc

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"
)

// sim.go is the engine's front door: configuration, instance construction,
// and the Run entry point. The round loop lives in engine.go, suspension
// mechanics in scheduler.go, message routing in delivery.go, and result
// assembly in trace.go.

// Config parameterizes a simulation.
type Config struct {
	// N is the number of nodes (≥ 1).
	N int
	// Model selects NCC0 (default) or NCC1 initial knowledge.
	Model Model
	// Seed makes the run deterministic: node IDs, the Gk permutation and all
	// per-node random sources derive from it.
	Seed int64
	// CapMul scales the per-round capacity: capacity = CapMul·⌈log₂ N⌉
	// (minimum 1). Zero selects DefaultCapMul.
	CapMul int
	// Strict turns capacity violations into run errors instead of metrics.
	Strict bool
	// MaxRounds aborts runaway protocols. Zero selects DefaultMaxRounds.
	MaxRounds int
	// Inputs, if non-nil, assigns Inputs[i] to the node at Gk position i.
	Inputs []any
	// Stop, if non-nil, aborts the run when it becomes readable (typically a
	// context's Done channel). The engine checks it once per barrier, kills
	// every parked node, and Run returns ErrCanceled. Cancellation is
	// cooperative at round granularity: a run stops between rounds, never
	// mid-round.
	Stop <-chan struct{}
	// Progress, if non-nil, is invoked at the same per-barrier point that
	// polls Stop, with the number of rounds completed and messages delivered
	// so far. It runs on the engine's driver goroutine while every protocol
	// goroutine is parked, so it needs no synchronization with the protocol —
	// but it executes inside the round loop and must return quickly without
	// blocking; a slow hook stretches every round.
	Progress func(round, msgs int)
	// Profile, if non-nil, receives every completed round's wall-time split
	// into compute (node protocol slices running, release → barrier),
	// delivery (message routing), and barrier (remaining engine bookkeeping:
	// partitioning, collectives, round advance). It fires on the driver
	// goroutine immediately before the next round's release, so — like
	// Progress — it needs no synchronization with the protocol but must
	// return quickly. The timings are observational wall-clock measurements:
	// they never enter the Trace or Metrics, so profiled and unprofiled runs
	// of the same Config produce byte-identical traces on every scheduler
	// driver (see sched_conformance_test.go). The final partial round of a
	// run (the slice in which every node returns, or an aborting error) is
	// not reported. See DESIGN.md §10 for phase attribution per driver.
	Profile func(compute, delivery, barrier time.Duration)
	// OrderedIDs forces node IDs to be assigned in increasing order along the
	// Gk path (IDs are still random in NCC0 unless Model is NCC1). Figures in
	// the paper use this layout; by default the path order is a random
	// permutation of random IDs.
	OrderedIDs bool
	// Sched selects the concurrency driver: SchedBarrier (default, one
	// runnable goroutine per released node), SchedPool (run-to-completion
	// worker pool), or SchedFlat (zero-goroutine stepper; requires
	// Sim.RunProgram). The driver never affects a run's outcome — all
	// produce byte-identical traces for the same Config — only how node
	// bodies are suspended and resumed.
	Sched SchedKind
}

// DefaultCapMul is the default capacity multiplier. The paper's algorithms
// send O(log n) messages per round; a multiplier of 8 absorbs the constants
// of every protocol in this repository in strict mode.
const DefaultCapMul = 8

// DefaultMaxRounds bounds a run to guard against livelocked protocols.
const DefaultMaxRounds = 50_000_000

// ErrDeadlock is returned when every live node is waiting for a message and
// none is in flight.
var ErrDeadlock = errors.New("ncc: deadlock: all live nodes await messages and none are in flight")

// ErrCanceled is returned when Config.Stop aborts a run before the protocol
// completes.
var ErrCanceled = errors.New("ncc: run canceled")

// CollectiveOut is the per-node output of a collective handler. Learn lists
// IDs the node acquires knowledge of (NCC0 bookkeeping for centrally executed
// primitives).
type CollectiveOut struct {
	Val   any
	Learn []ID
}

// CollectiveHandler executes a named collective centrally. ins[i] is the
// input of the node at Gk position i (nil for nodes that passed nil). It
// returns per-position outputs and the number of rounds to charge, which
// must be justified by an analytic bound on the primitive being replaced.
type CollectiveHandler func(s *Sim, ins []any) (outs []any, chargeRounds int)

// Sim is a single NCC simulation instance. Create with New, register any
// collectives, then call Run exactly once.
type Sim struct {
	cfg      Config
	n        int
	capacity int

	ids    []ID // Gk order
	index  map[ID]int
	allIDs []ID // sorted, shared in NCC1
	nodes  []*Node

	collectives map[string]CollectiveHandler

	// Layered machinery: sched owns the barrier, del the message routing.
	sched Scheduler
	del   *delivery

	// engine state (engine.go)
	round       int
	active      []*Node // nodes woken for the current round
	nextScratch []*Node // reusable buffer for nextActive
	awaiters    map[int]*Node
	sleepers    sleepHeap
	doneCnt     int

	sendViol atomic.Int64

	met      Metrics
	firstErr error
}

// New creates a simulation with n nodes arranged on a directed path Gk.
func New(cfg Config) *Sim {
	if cfg.N < 1 {
		panic("ncc: Config.N must be ≥ 1")
	}
	if cfg.CapMul == 0 {
		cfg.CapMul = DefaultCapMul
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	n := cfg.N
	capacity := cfg.CapMul * ceilLog2(n)
	if capacity < cfg.CapMul {
		capacity = cfg.CapMul
	}
	s := &Sim{
		cfg:         cfg,
		n:           n,
		capacity:    capacity,
		index:       make(map[ID]int, n),
		collectives: make(map[string]CollectiveHandler),
		sched:       newScheduler(cfg.Sched),
		awaiters:    make(map[int]*Node),
	}
	s.assignIDs()
	s.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := &Node{
			sim:  s,
			id:   s.ids[i],
			idx:  i,
			rng:  rand.New(rand.NewSource(mix64(cfg.Seed, int64(s.ids[i])))),
			wake: make(chan struct{}, 1),
		}
		if cfg.Model == NCC0 {
			nd.known = make(map[ID]struct{}, 8)
		}
		if i+1 < n {
			nd.initialSucc = s.ids[i+1]
			nd.Learn(nd.initialSucc)
		}
		if cfg.Inputs != nil && i < len(cfg.Inputs) {
			nd.input = cfg.Inputs[i]
		}
		s.nodes[i] = nd
	}
	s.del = newDelivery(s.index, s.nodes, capacity, cfg.Strict)
	s.met = Metrics{N: n, Capacity: capacity, CollectiveCalls: make(map[string]int)}
	return s
}

// assignIDs draws distinct IDs and fixes the Gk path order.
func (s *Sim) assignIDs() {
	n := s.n
	rng := rand.New(rand.NewSource(mix64(s.cfg.Seed, 0x1D5)))
	s.ids = make([]ID, n)
	if s.cfg.Model == NCC1 {
		// IDs are w.l.o.g. 1..n; the path order is still a permutation.
		for i := range s.ids {
			s.ids[i] = ID(i + 1)
		}
	} else {
		// Distinct random IDs from [1, 4n²] (the paper draws from [1, n^c]).
		span := int64(4*n)*int64(n) + 1
		seen := make(map[ID]struct{}, n)
		for i := 0; i < n; i++ {
			for {
				id := ID(rng.Int63n(span) + 1)
				if _, dup := seen[id]; !dup {
					seen[id] = struct{}{}
					s.ids[i] = id
					break
				}
			}
		}
	}
	if !s.cfg.OrderedIDs {
		rng.Shuffle(n, func(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] })
	} else {
		sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	}
	for i, id := range s.ids {
		s.index[id] = i
	}
	s.allIDs = make([]ID, n)
	copy(s.allIDs, s.ids)
	sort.Slice(s.allIDs, func(i, j int) bool { return s.allIDs[i] < s.allIDs[j] })
}

// RegisterCollective installs a named collective handler. See Node.Collective.
func (s *Sim) RegisterCollective(tag string, h CollectiveHandler) {
	s.collectives[tag] = h
}

// IDs returns the node IDs in Gk (path) order. The slice is shared.
func (s *Sim) IDs() []ID { return s.ids }

// N returns the node count.
func (s *Sim) N() int { return s.n }

// Capacity returns the per-node per-round message budget.
func (s *Sim) Capacity() int { return s.capacity }

func (s *Sim) noteSendViolation(nd *Node) {
	s.sendViol.Add(1)
}

// Run executes proto on every node and drives the synchronous rounds to
// completion. It returns the Trace and the first error encountered (protocol
// violation, deadlock, strict capacity violation, round limit, or panic).
func (s *Sim) Run(proto func(*Node)) (*Trace, error) {
	if _, flat := s.sched.(*flatScheduler); flat {
		s.firstErr = errors.New("ncc: the flat driver cannot run blocking protocols; use Sim.RunProgram")
		return s.buildTrace(), s.firstErr
	}
	panics := make(chan error, s.n)
	s.active = append(s.active[:0], s.nodes...)
	s.sched.Spawn(s.nodes, func(nd *Node) {
		defer func() {
			if r := recover(); r != nil {
				switch v := r.(type) {
				case killedPanic:
					// intentional unwind
				case protoError:
					panics <- v.err
				default:
					panics <- fmt.Errorf("ncc: node %d panicked: %v\n%s", nd.id, r, debug.Stack())
				}
			}
			nd.state = stateDone
			s.sched.Depart(nd)
		}()
		proto(nd)
	})
	s.drive(panics)
	s.sched.Shutdown()
	return s.buildTrace(), s.firstErr
}

// sortNodesByIdx orders a wake set deterministically by Gk index.
func sortNodesByIdx(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].idx < nodes[j].idx })
}

// mix64 is a splitmix64-style mixer for deterministic seed derivation.
func mix64(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	v := int64(z)
	if v == 0 {
		v = 1
	}
	return v
}
