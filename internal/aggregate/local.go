package aggregate

import (
	"sort"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// This file implements the local computational primitives of §3.2.3
// (Theorems 6–8): aggregation, multicast and token collection over g
// possibly-overlapping groups A₁..A_g, each with a unique group ID.
//
// The SPAA'19 paper realizes these over an emulated butterfly; we realize
// them over the structure L's distance-doubling links, which every node
// already holds (DESIGN.md substitution #3): each group ID hashes to a
// rendezvous position, packets route greedily position-to-position in
// ≤ ⌈log₂ n⌉ hops, and relays combine (aggregation), deduplicate and
// remember reverse paths (multicast subscription trees), or throttle
// (collection) per hop. Termination is detected by global quiescence
// aggregation over the TBFS, so round counts adapt to the load as
// O(L/n + ℓ + log n) per epoch batch.

// Kinds for local primitives (continuing the 0x30 block).
const (
	kLAgg uint8 = 0x40 + iota
	kLReg
	kLSub
	kLTok
	kLDeliver
	kLCollect
)

// LocalCtx is the per-node context for the local primitives: the node's Gk
// position, its doubling links, and the Gk tree for quiescence detection.
type LocalCtx struct {
	Pos  int
	Lv   primitives.Levels
	Tree *primitives.Tree
	N    int
}

// NewLocalCtx assembles the context from the §3.1 structures.
func NewLocalCtx(pos int, lv primitives.Levels, tree *primitives.Tree, n int) *LocalCtx {
	return &LocalCtx{Pos: pos, Lv: lv, Tree: tree, N: n}
}

// sortedGIDs returns m's keys in ascending order. Group-keyed working state
// lives in maps, but anything that can reach the wire — sends, budgeted
// serving — must walk them deterministically: map iteration order would make
// message schedules (and so round counts in the trace) vary run to run.
// This is the one blessed raw map range; every other iteration goes through
// it or is an order-independent fold.
func sortedGIDs[V any](m map[int64]V) []int64 {
	out := make([]int64, 0, len(m))
	//grlint:allow D001 -- sole blessed map range: keys are sorted before any use
	for gid := range m {
		out = append(out, gid)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// rendezvous maps a group ID to a position via a splitmix64-style hash; all
// nodes share it, so no coordination is needed.
func (c *LocalCtx) rendezvous(gid int64) int {
	z := uint64(gid) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(c.N))
}

// nextHop returns the doubling link one greedy step from our position
// toward target (which must differ from Pos).
func (c *LocalCtx) nextHop(target int) ncc.ID {
	d := target - c.Pos
	if d == 0 {
		panic("aggregate: nextHop at target")
	}
	up := d > 0
	if !up {
		d = -d
	}
	j := 0
	for 1<<(j+1) <= d {
		j++
	}
	var link ncc.ID
	if up {
		link = c.Lv.Succ[j]
	} else {
		link = c.Lv.Pred[j]
	}
	if link == ncc.None {
		panic("aggregate: missing doubling link on greedy route")
	}
	return link
}

// GroupValue is one (group, value) contribution or result.
type GroupValue struct {
	GID   int64
	Value int64
}

// LocalAggregate implements Theorem 6: for every group, the op-fold of all
// members' contributions reaches the group's destination node. contribs are
// this node's memberships (one value per group it belongs to); destOf lists
// the group IDs this node is the destination of. Returns the folded value
// per destination group. All nodes must call it together.
func LocalAggregate(nd *ncc.Node, c *LocalCtx, contribs []GroupValue, destOf []int64, op Op) map[int64]int64 {
	type aggState struct {
		acc   int64
		fresh bool
	}
	// Registration pass: destinations announce themselves to rendezvous
	// nodes; contributions ride the same epochs afterwards.
	regTarget := map[int64]ncc.ID{} // rendezvous only: gid → destination ID
	results := map[int64]int64{}
	// Pending registration packets: (gid, destID) routed to rendezvous.
	type regPkt struct {
		gid  int64
		dest ncc.ID
	}
	var regQueue []regPkt
	for _, gid := range destOf {
		regQueue = append(regQueue, regPkt{gid, nd.ID()})
	}
	// Pending aggregation partials keyed by gid (combined per relay).
	pending := map[int64]*aggState{}
	for _, cv := range contribs {
		st, ok := pending[cv.GID]
		if !ok {
			st = &aggState{acc: op.Neutral}
			pending[cv.GID] = st
		}
		st.acc = op.Combine(st.acc, cv.Value)
		st.fresh = true
	}
	// Rendezvous-side accumulators; folds ship to destinations only after
	// global quiescence, when they are final.
	rvAcc := map[int64]*aggState{}

	K := ncc.CeilLog2(c.N)
	epoch := 2*K + 6
	for {
		for r := 0; r < epoch; r++ {
			// Send registrations (throttled: a few per round is plenty).
			nReg := len(regQueue)
			if nReg > 2 {
				nReg = 2
			}
			for i := 0; i < nReg; i++ {
				p := regQueue[i]
				t := c.rendezvous(p.gid)
				if t == c.Pos {
					regTarget[p.gid] = p.dest
				} else {
					nd.Send(c.nextHop(t), ncc.Message{Kind: kLReg, A: p.gid}.WithIDs(p.dest))
				}
			}
			regQueue = regQueue[nReg:]
			// Send one combined partial per fresh gid.
			for _, gid := range sortedGIDs(pending) {
				st := pending[gid]
				if !st.fresh {
					continue
				}
				t := c.rendezvous(gid)
				if t == c.Pos {
					rv, ok := rvAcc[gid]
					if !ok {
						rv = &aggState{acc: op.Neutral}
						rvAcc[gid] = rv
					}
					rv.acc = op.Combine(rv.acc, st.acc)
				} else {
					nd.Send(c.nextHop(t), ncc.Message{Kind: kLAgg, A: gid, B: st.acc})
				}
				delete(pending, gid)
			}
			for _, m := range nd.NextRound() {
				switch m.Kind {
				case kLReg:
					t := c.rendezvous(m.A)
					if t == c.Pos {
						regTarget[m.A] = m.IDs[0]
					} else {
						regQueue = append(regQueue, regPkt{m.A, m.IDs[0]})
					}
				case kLAgg:
					t := c.rendezvous(m.A)
					if t == c.Pos {
						rv, ok := rvAcc[m.A]
						if !ok {
							rv = &aggState{acc: op.Neutral}
							rvAcc[m.A] = rv
						}
						rv.acc = op.Combine(rv.acc, m.B)
					} else {
						st, ok := pending[m.A]
						if !ok {
							st = &aggState{acc: op.Neutral}
							pending[m.A] = st
						}
						st.acc = op.Combine(st.acc, m.B)
						st.fresh = true
					}
				case kLDeliver:
					results[m.A] = m.B
				}
			}
		}
		busy := int64(0)
		if len(pending) > 0 || len(regQueue) > 0 {
			busy = 1
		}
		if AggregateBroadcast(nd, c.Tree, busy, OrOp()) == 0 {
			break
		}
	}
	// Final delivery: rendezvous nodes ship folds to their destinations in
	// ascending gid order (several groups can share a destination, so send
	// order is observable), then one more quiescence epoch flushes them.
	for _, gid := range sortedGIDs(rvAcc) {
		rv := rvAcc[gid]
		dest, ok := regTarget[gid]
		if !ok {
			continue
		}
		if dest == nd.ID() {
			results[gid] = rv.acc
		} else {
			nd.Send(dest, ncc.Message{Kind: kLDeliver, A: gid, B: rv.acc})
		}
	}
	for _, m := range nd.NextRound() {
		if m.Kind == kLDeliver {
			results[m.A] = m.B
		}
	}
	primitives.SyncAt(nd, nd.Round()+1)
	return results
}

// GroupToken is one (group, token) pair for multicast/collection.
type GroupToken struct {
	GID   int64
	Token int64
}

// LocalMulticast implements Theorem 7: each group's source token reaches
// every member. sources are this node's tokens (it is the source of those
// groups); memberOf lists the groups this node belongs to. Returns the
// token per subscribed group.
func LocalMulticast(nd *ncc.Node, c *LocalCtx, sources []GroupToken, memberOf []int64) map[int64]int64 {
	results := map[int64]int64{}
	// Subscription state: members route SUB packets toward rendezvous;
	// every node on the way remembers (gid → children) and forwards one SUB
	// per gid, building a reverse-path multicast tree. Tokens later flow
	// down those trees; served[gid] tracks which children have been fed, so
	// subscriptions that arrive after the token are still served.
	children := map[int64][]ncc.ID{}
	served := map[int64]int{}
	knownTok := map[int64]int64{}
	haveTok := map[int64]bool{}
	selfWant := map[int64]bool{}
	subSeen := map[int64]bool{}
	var subQueue []int64
	for _, gid := range memberOf {
		selfWant[gid] = true
		if !subSeen[gid] && c.rendezvous(gid) != c.Pos {
			subSeen[gid] = true
			subQueue = append(subQueue, gid)
		}
	}
	tokQueue := append([]GroupToken(nil), sources...)

	K := ncc.CeilLog2(c.N)
	epoch := 2*K + 6
	budget := nd.Capacity() / 2
	if budget < 1 {
		budget = 1
	}
	learn := func(gid, tok int64) {
		if !haveTok[gid] {
			haveTok[gid] = true
			knownTok[gid] = tok
			if selfWant[gid] {
				results[gid] = tok
			}
		}
	}
	unserved := func() bool {
		//grlint:allow D001 -- order-independent any-predicate; no sends, result is a bool
		for gid := range haveTok {
			if served[gid] < len(children[gid]) {
				return true
			}
		}
		return false
	}
	for {
		for r := 0; r < epoch; r++ {
			// Forward subscriptions.
			nSub := len(subQueue)
			if nSub > budget {
				nSub = budget
			}
			for i := 0; i < nSub; i++ {
				gid := subQueue[i]
				nd.Send(c.nextHop(c.rendezvous(gid)), ncc.Message{Kind: kLSub, A: gid})
			}
			subQueue = subQueue[nSub:]
			// Route source tokens toward rendezvous.
			nTok := len(tokQueue)
			if nTok > budget {
				nTok = budget
			}
			for i := 0; i < nTok; i++ {
				p := tokQueue[i]
				if c.rendezvous(p.GID) == c.Pos {
					learn(p.GID, p.Token)
				} else {
					nd.Send(c.nextHop(c.rendezvous(p.GID)), ncc.Message{Kind: kLTok, A: p.GID, B: p.Token})
				}
			}
			tokQueue = tokQueue[nTok:]
			// Feed unserved children of known tokens, throttled. Ascending
			// gid order matters: the budget decides which groups are served
			// this round, so map order would leak into round counts.
			sent := 0
			for _, gid := range sortedGIDs(haveTok) {
				kids := children[gid]
				for served[gid] < len(kids) && sent < budget {
					nd.Send(kids[served[gid]], ncc.Message{Kind: kLDeliver, A: gid, B: knownTok[gid]})
					served[gid]++
					sent++
				}
				if sent >= budget {
					break
				}
			}
			for _, m := range nd.NextRound() {
				switch m.Kind {
				case kLSub:
					children[m.A] = append(children[m.A], m.Src)
					if c.rendezvous(m.A) != c.Pos && !subSeen[m.A] {
						subSeen[m.A] = true
						subQueue = append(subQueue, m.A)
					}
				case kLTok:
					if c.rendezvous(m.A) == c.Pos {
						learn(m.A, m.B)
					} else {
						tokQueue = append(tokQueue, GroupToken{m.A, m.B})
					}
				case kLDeliver:
					learn(m.A, m.B)
				}
			}
		}
		busy := int64(0)
		if len(subQueue) > 0 || len(tokQueue) > 0 || unserved() {
			busy = 1
		}
		if AggregateBroadcast(nd, c.Tree, busy, OrOp()) == 0 {
			return results
		}
	}
}

// LocalCollect implements Theorem 8: every member's token reaches the
// group's destination. tokens are this node's contributions; destOf the
// groups it collects. Returns collected tokens per destination group.
func LocalCollect(nd *ncc.Node, c *LocalCtx, tokens []GroupToken, destOf []int64) map[int64][]int64 {
	results := map[int64][]int64{}
	regTarget := map[int64]ncc.ID{}
	type pkt struct {
		gid int64
		val int64
	}
	var tokQueue []pkt
	for _, t := range tokens {
		tokQueue = append(tokQueue, pkt{t.GID, t.Token})
	}
	type regPkt struct {
		gid  int64
		dest ncc.ID
	}
	var regQueue []regPkt
	for _, gid := range destOf {
		regQueue = append(regQueue, regPkt{gid, nd.ID()})
	}
	var rvHold []pkt // tokens parked at rendezvous awaiting registration

	K := ncc.CeilLog2(c.N)
	epoch := 2*K + 6
	budget := nd.Capacity() / 2
	if budget < 1 {
		budget = 1
	}
	for {
		for r := 0; r < epoch; r++ {
			nReg := len(regQueue)
			if nReg > 2 {
				nReg = 2
			}
			for i := 0; i < nReg; i++ {
				p := regQueue[i]
				t := c.rendezvous(p.gid)
				if t == c.Pos {
					regTarget[p.gid] = p.dest
				} else {
					nd.Send(c.nextHop(t), ncc.Message{Kind: kLReg, A: p.gid}.WithIDs(p.dest))
				}
			}
			regQueue = regQueue[nReg:]
			// Ship tokens toward rendezvous / destinations, throttled.
			n := len(tokQueue)
			if n > budget {
				n = budget
			}
			for i := 0; i < n; i++ {
				p := tokQueue[i]
				t := c.rendezvous(p.gid)
				if t == c.Pos {
					rvHold = append(rvHold, p)
				} else {
					nd.Send(c.nextHop(t), ncc.Message{Kind: kLCollect, A: p.gid, B: p.val})
				}
			}
			tokQueue = tokQueue[n:]
			// Rendezvous forwards held tokens to registered destinations.
			var still []pkt
			sent := 0
			for _, p := range rvHold {
				dest, ok := regTarget[p.gid]
				if !ok || sent >= budget {
					still = append(still, p)
					continue
				}
				if dest == nd.ID() {
					results[p.gid] = append(results[p.gid], p.val)
				} else {
					nd.Send(dest, ncc.Message{Kind: kLDeliver, A: p.gid, B: p.val})
				}
				sent++
			}
			rvHold = still
			for _, m := range nd.NextRound() {
				switch m.Kind {
				case kLReg:
					t := c.rendezvous(m.A)
					if t == c.Pos {
						regTarget[m.A] = m.IDs[0]
					} else {
						regQueue = append(regQueue, regPkt{m.A, m.IDs[0]})
					}
				case kLCollect:
					t := c.rendezvous(m.A)
					if t == c.Pos {
						rvHold = append(rvHold, pkt{m.A, m.B})
					} else {
						tokQueue = append(tokQueue, pkt{m.A, m.B})
					}
				case kLDeliver:
					results[m.A] = append(results[m.A], m.B)
				}
			}
		}
		busy := int64(0)
		if len(tokQueue) > 0 || len(regQueue) > 0 || len(rvHold) > 0 {
			busy = 1
		}
		if AggregateBroadcast(nd, c.Tree, busy, OrOp()) == 0 {
			return results
		}
	}
}
