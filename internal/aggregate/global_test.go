package aggregate

import (
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

func TestBroadcastReachesAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 333} {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n), Strict: true})
		leaderPos := n / 2
		tr, err := s.Run(func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			have := tree.Pos == leaderPos
			v := Broadcast(nd, &tree, have, int64(nd.ID()))
			nd.SetOutput("got", v)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := int64(tr.IDs[leaderPos])
		for _, id := range tr.IDs {
			if v, _ := tr.Output(id, "got"); v != want {
				t.Fatalf("n=%d: node %d got %d, want %d", n, id, v, want)
			}
		}
		K := ncc.CeilLog2(n)
		if tr.Metrics.Rounds > 12*K+40 {
			t.Fatalf("n=%d: broadcast+setup took %d rounds", n, tr.Metrics.Rounds)
		}
	}
}

func TestAggregateBroadcastOps(t *testing.T) {
	n := 60
	s := ncc.New(ncc.Config{N: n, Seed: 9, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		_, _, tree := primitives.BuildAll(nd)
		v := int64(tree.Pos + 1)
		nd.SetOutput("sum", AggregateBroadcast(nd, &tree, v, SumOp()))
		nd.SetOutput("max", AggregateBroadcast(nd, &tree, v, MaxOp()))
		nd.SetOutput("min", AggregateBroadcast(nd, &tree, v, MinOp()))
		or := int64(0)
		if tree.Pos == 13 {
			or = 1
		}
		nd.SetOutput("or", AggregateBroadcast(nd, &tree, or, OrOp()))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wantSum := int64(n * (n + 1) / 2)
	for _, id := range tr.IDs {
		if v, _ := tr.Output(id, "sum"); v != wantSum {
			t.Fatalf("sum at %d = %d, want %d", id, v, wantSum)
		}
		if v, _ := tr.Output(id, "max"); v != int64(n) {
			t.Fatalf("max at %d = %d, want %d", id, v, n)
		}
		if v, _ := tr.Output(id, "min"); v != 1 {
			t.Fatalf("min at %d = %d, want 1", id, v)
		}
		if v, _ := tr.Output(id, "or"); v != 1 {
			t.Fatalf("or at %d = %d, want 1", id, v)
		}
	}
}

func TestFindByPosition(t *testing.T) {
	n := 41
	s := ncc.New(ncc.Config{N: n, Seed: 21, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		_, _, tree := primitives.BuildAll(nd)
		median := FindByPosition(nd, &tree, (n-1)/2)
		nd.SetOutput("median", int64(median))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := int64(tr.IDs[(n-1)/2])
	for _, id := range tr.IDs {
		if v, _ := tr.Output(id, "median"); v != want {
			t.Fatalf("median at %d = %d, want %d", id, v, want)
		}
	}
}

func TestCollectGathersAllTokens(t *testing.T) {
	for _, n := range []int{1, 2, 5, 32, 120} {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n) * 3, Strict: true})
		leaderPos := n - 1
		type res struct {
			id   ncc.ID
			toks []int64
		}
		ch := make(chan res, n)
		tr, err := s.Run(func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			leader := FindByPosition(nd, &tree, leaderPos)
			// Every third position contributes two tokens; others none.
			var toks []int64
			if tree.Pos%3 == 0 {
				toks = []int64{int64(tree.Pos), int64(tree.Pos) + 1000}
			}
			got := Collect(nd, &tree, toks, leader)
			ch <- res{nd.ID(), got}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		close(ch)
		want := map[int64]bool{}
		for p := 0; p < n; p += 3 {
			want[int64(p)] = true
			want[int64(p)+1000] = true
		}
		leaderID := tr.IDs[leaderPos]
		for r := range ch {
			if r.id != leaderID {
				if len(r.toks) != 0 {
					t.Fatalf("n=%d: non-leader %d holds %d tokens", n, r.id, len(r.toks))
				}
				continue
			}
			if len(r.toks) != len(want) {
				t.Fatalf("n=%d: leader got %d tokens, want %d", n, len(r.toks), len(want))
			}
			for _, tok := range r.toks {
				if !want[tok] {
					t.Fatalf("n=%d: unexpected token %d", n, tok)
				}
			}
		}
	}
}

func TestCollectRoundsScaleWithK(t *testing.T) {
	// Theorem 5: O(k + log n). Collect k tokens at one node and verify the
	// round count grows roughly linearly in k beyond the log-n setup.
	n := 64
	rounds := func(tokensPerNode int) int {
		s := ncc.New(ncc.Config{N: n, Seed: 7})
		tr, err := s.Run(func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			leader := FindByPosition(nd, &tree, 0)
			toks := make([]int64, tokensPerNode)
			for i := range toks {
				toks[i] = int64(tree.Pos*1000 + i)
			}
			Collect(nd, &tree, toks, leader)
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return tr.Metrics.Rounds
	}
	r1, r8 := rounds(1), rounds(8)
	if r8 <= r1 {
		t.Fatalf("collection rounds did not grow with k: k=1→%d, k=8→%d", r1, r8)
	}
	// k=8 means 8n tokens; throughput is ~capacity/2 per round, so the
	// growth should be bounded by a small multiple of kn/cap.
	if r8 > r1+8*n {
		t.Fatalf("collection rounds grew superlinearly: k=1→%d, k=8→%d", r1, r8)
	}
}
