// Package aggregate implements the computational primitives of §3.2 of
// "Distributed Graph Realizations": global broadcast and aggregation
// (Theorem 4), global collection (Theorem 5), and the local aggregation /
// multicast / token-collection primitives of Theorems 6–8 adapted from the
// SPAA'19 NCC paper. Global primitives run over the balanced binary search
// tree TBFS from package primitives; local primitives use rendezvous routing
// with per-hop combining over the distance-doubling overlay (see DESIGN.md
// for the substitution note).
//
// The global primitives follow the two-form convention of package primitives:
// the XxxStep form is the resumable implementation (runnable on the
// zero-goroutine flat driver) and the blocking form drives it via ncc.RunOps.
// The local primitives (local.go) are used only by harness experiments that
// construct their own goroutine-driver sims, so they intentionally stay in
// blocking-only form.
package aggregate

import (
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Message kinds used by this package (0x30–0x4F block).
const (
	kUp uint8 = 0x30 + iota
	kDown
	kAggUp
	kAggDown
	kToken
	kTokenDone
	kLeaderTok
	kPhaseEnd
	kGroupMsg
	kGroupReg
	kGroupDown
)

// Op is a distributive aggregate operator with a neutral element, e.g.
// {Combine: max, Neutral: math.MinInt64}.
type Op struct {
	Combine func(a, b int64) int64
	Neutral int64
}

// MaxOp aggregates the maximum.
func MaxOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, Neutral: -1 << 62}
}

// MinOp aggregates the minimum.
func MinOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}, Neutral: 1<<62 - 1}
}

// SumOp aggregates the sum.
func SumOp() Op {
	return Op{Combine: func(a, b int64) int64 { return a + b }, Neutral: 0}
}

// OrOp aggregates logical OR over {0,1}.
func OrOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}, Neutral: 0}
}

// BroadcastStep delivers the leader's value to every node (Theorem 4). The
// leader is whichever single node passes have=true; its token travels up to
// the TBFS root and floods down. Every node receives the value via k.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 2) from the caller's current round.
func BroadcastStep(nd *ncc.Node, t *primitives.Tree, have bool, value int64, k func(int64) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(nd.N())
	start := nd.Round()
	upDeadline := start + K + 2
	got := have
	val := value
	// Up phase: the leader's token climbs to the root; intermediate nodes
	// relay, the root records.
	if have && !t.IsRoot {
		nd.Send(t.Parent, ncc.Message{Kind: kUp, A: value})
	}
	finish := func() ncc.Op {
		sendDown(nd, t, kDown, val)
		return primitives.SyncAtStep(nd, upDeadline+K+3, func([]ncc.Message) ncc.Op { return k(val) })
	}
	// Down phase: flood from the root.
	down := func() ncc.Op {
		if t.IsRoot {
			if !got {
				panic("aggregate: Broadcast with no leader")
			}
			return finish()
		}
		var wait ncc.Cont
		wait = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			waiting := true
			for _, m := range w.Msgs {
				if m.Kind == kDown {
					val = m.A
					waiting = false
				}
			}
			if waiting {
				return ncc.Await(wait)
			}
			return finish()
		}
		return ncc.Await(wait)
	}
	var up func() ncc.Op
	up = func() ncc.Op {
		if nd.Round() >= upDeadline {
			return down()
		}
		return primitives.SyncAtStep(nd, nd.Round()+1, func(in []ncc.Message) ncc.Op {
			for _, m := range in {
				if m.Kind == kUp {
					if t.IsRoot {
						got, val = true, m.A
					} else {
						nd.Send(t.Parent, ncc.Message{Kind: kUp, A: m.A})
					}
				}
			}
			return up()
		})
	}
	return up()
}

// Broadcast is the blocking form of BroadcastStep.
func Broadcast(nd *ncc.Node, t *primitives.Tree, have bool, value int64) int64 {
	var out int64
	ncc.RunOps(nd, BroadcastStep(nd, t, have, value, func(v int64) ncc.Op { out = v; return ncc.Done() }))
	return out
}

func sendDown(nd *ncc.Node, t *primitives.Tree, kind uint8, v int64) {
	if t.Left != ncc.None {
		nd.Send(t.Left, ncc.Message{Kind: kind, A: v})
	}
	if t.Right != ncc.None {
		nd.Send(t.Right, ncc.Message{Kind: kind, A: v})
	}
}

// AggregateBroadcastStep folds every node's value with the distributive
// operator op and delivers the global result to every node via k (Theorem 4's
// aggregation followed by a broadcast of the result, the form all realization
// algorithms use). Convergecast up the TBFS, flood down.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 3) from the caller's current round.
func AggregateBroadcastStep(nd *ncc.Node, t *primitives.Tree, value int64, op Op, k func(int64) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(nd.N())
	startA := nd.Round()
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	acc := value
	got := 0

	phaseB := func() ncc.Op {
		startB := nd.Round()
		val := acc // correct only at the root; others receive it below
		finish := func() ncc.Op {
			sendDown(nd, t, kAggDown, val)
			return primitives.SyncAtStep(nd, startB+K+3, func([]ncc.Message) ncc.Op { return k(val) })
		}
		if t.IsRoot {
			return finish()
		}
		var wait ncc.Cont
		wait = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			waiting := true
			for _, m := range w.Msgs {
				if m.Kind == kAggDown {
					val = m.A
					waiting = false
				}
			}
			if waiting {
				return ncc.Await(wait)
			}
			return finish()
		}
		return ncc.Await(wait)
	}

	afterUp := func() ncc.Op {
		if !t.IsRoot {
			nd.Send(t.Parent, ncc.Message{Kind: kAggUp, A: acc})
		}
		return primitives.SyncAtStep(nd, startA+K+3, func([]ncc.Message) ncc.Op { return phaseB() })
	}
	if got >= children {
		return afterUp()
	}
	var ups ncc.Cont
	ups = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
		for _, m := range w.Msgs {
			if m.Kind == kAggUp {
				acc = op.Combine(acc, m.A)
				got++
			}
		}
		if got < children {
			return ncc.Await(ups)
		}
		return afterUp()
	}
	return ncc.Await(ups)
}

// AggregateBroadcast is the blocking form of AggregateBroadcastStep.
func AggregateBroadcast(nd *ncc.Node, t *primitives.Tree, value int64, op Op) int64 {
	var out int64
	ncc.RunOps(nd, AggregateBroadcastStep(nd, t, value, op, func(v int64) ncc.Op { out = v; return ncc.Done() }))
	return out
}

// FindByPositionStep delivers the ID of the node whose annotated inorder
// position equals pos, made common knowledge via aggregation (the Corollary 2
// median primitive generalized to any position). Rounds: one
// AggregateBroadcast.
func FindByPositionStep(nd *ncc.Node, t *primitives.Tree, pos int, k func(ncc.ID) ncc.Op) ncc.Op {
	v := int64(0)
	if t.Pos == pos {
		v = int64(nd.ID())
	}
	return AggregateBroadcastStep(nd, t, v, MaxOp(), func(r int64) ncc.Op {
		id := ncc.ID(r)
		if id != ncc.None {
			nd.Learn(id)
		}
		return k(id)
	})
}

// FindByPosition is the blocking form of FindByPositionStep.
func FindByPosition(nd *ncc.Node, t *primitives.Tree, pos int) ncc.ID {
	var out ncc.ID
	ncc.RunOps(nd, FindByPositionStep(nd, t, pos, func(id ncc.ID) ncc.Op { out = id; return ncc.Done() }))
	return out
}

// CollectStep gathers every node's tokens at the leader (Theorem 5): tokens
// are pipelined up the TBFS with per-round throttling that respects the node
// capacity, then streamed from the root to the leader. All nodes must pass
// the same leader ID (normally learned via Broadcast beforehand); nodes
// without tokens pass nil. k receives the collected tokens at the leader (nil
// elsewhere). Termination is event-driven — the root floods a phase-end
// marker once everything has drained — so the round cost adapts to the token
// count k as O(k + log n). All nodes are resynchronized to the same round
// before k runs (the marker's flood time is corrected using each node's
// depth).
func CollectStep(nd *ncc.Node, t *primitives.Tree, tokens []int64, leader ncc.ID, k func([]int64) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(nd.N())
	budget := nd.Capacity()/2 - 1
	if budget < 1 {
		budget = 1
	}
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	queue := append([]int64(nil), tokens...)
	var atLeader []int64
	doneChildren := 0
	sentDone := false
	var leaderQueue []int64 // root only: tokens to stream to the leader
	// resync aligns every node to the same round after the phase-end flood:
	// a node at depth d learns of the end d rounds after the root flooded it.
	resync := func() ncc.Op {
		base := nd.Round() - t.Depth
		return primitives.SyncAtStep(nd, base+K+3, func(in []ncc.Message) ncc.Op {
			for _, m := range in {
				if m.Kind == kLeaderTok {
					atLeader = append(atLeader, m.A)
				}
			}
			return k(atLeader)
		})
	}
	// ended is the round in which the (relayed) flood departs; its inbox is
	// intentionally discarded, exactly as in the event loop below.
	ended := func(nd *ncc.Node, w ncc.Wake) ncc.Op { return resync() }
	var iter func() ncc.Op
	iter = func() ncc.Op {
		// Ship up to budget tokens towards the root (or buffer at the root).
		nSend := len(queue)
		if nSend > budget {
			nSend = budget
		}
		for i := 0; i < nSend; i++ {
			if t.IsRoot {
				leaderQueue = append(leaderQueue, queue[i])
			} else {
				nd.Send(t.Parent, ncc.Message{Kind: kToken, A: queue[i]})
			}
		}
		queue = queue[nSend:]
		if t.IsRoot {
			// Stream buffered tokens to the leader.
			nLead := len(leaderQueue)
			if nLead > budget {
				nLead = budget
			}
			for i := 0; i < nLead; i++ {
				if leader == nd.ID() {
					atLeader = append(atLeader, leaderQueue[i])
				} else {
					nd.Send(leader, ncc.Message{Kind: kLeaderTok, A: leaderQueue[i]})
				}
			}
			leaderQueue = leaderQueue[nLead:]
			if doneChildren == children && len(queue) == 0 && len(leaderQueue) == 0 {
				sendDown(nd, t, kPhaseEnd, 0)
				return ncc.Next(ended)
			}
		} else if doneChildren == children && len(queue) == 0 && !sentDone {
			nd.Send(t.Parent, ncc.Message{Kind: kTokenDone})
			sentDone = true
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				switch m.Kind {
				case kToken:
					queue = append(queue, m.A)
				case kTokenDone:
					doneChildren++
				case kLeaderTok:
					atLeader = append(atLeader, m.A)
				case kPhaseEnd:
					// Relay and stop immediately; the rest of this inbox is
					// dead traffic from the drained phase.
					sendDown(nd, t, kPhaseEnd, 0)
					return ncc.Next(ended)
				}
			}
			return iter()
		})
	}
	return iter()
}

// Collect is the blocking form of CollectStep.
func Collect(nd *ncc.Node, t *primitives.Tree, tokens []int64, leader ncc.ID) []int64 {
	var out []int64
	ncc.RunOps(nd, CollectStep(nd, t, tokens, leader, func(ts []int64) ncc.Op { out = ts; return ncc.Done() }))
	return out
}
