// Package aggregate implements the computational primitives of §3.2 of
// "Distributed Graph Realizations": global broadcast and aggregation
// (Theorem 4), global collection (Theorem 5), and the local aggregation /
// multicast / token-collection primitives of Theorems 6–8 adapted from the
// SPAA'19 NCC paper. Global primitives run over the balanced binary search
// tree TBFS from package primitives; local primitives use rendezvous routing
// with per-hop combining over the distance-doubling overlay (see DESIGN.md
// for the substitution note).
package aggregate

import (
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Message kinds used by this package (0x30–0x4F block).
const (
	kUp uint8 = 0x30 + iota
	kDown
	kAggUp
	kAggDown
	kToken
	kTokenDone
	kLeaderTok
	kPhaseEnd
	kGroupMsg
	kGroupReg
	kGroupDown
)

// Op is a distributive aggregate operator with a neutral element, e.g.
// {Combine: max, Neutral: math.MinInt64}.
type Op struct {
	Combine func(a, b int64) int64
	Neutral int64
}

// MaxOp aggregates the maximum.
func MaxOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, Neutral: -1 << 62}
}

// MinOp aggregates the minimum.
func MinOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}, Neutral: 1<<62 - 1}
}

// SumOp aggregates the sum.
func SumOp() Op {
	return Op{Combine: func(a, b int64) int64 { return a + b }, Neutral: 0}
}

// OrOp aggregates logical OR over {0,1}.
func OrOp() Op {
	return Op{Combine: func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}, Neutral: 0}
}

// Broadcast delivers the leader's value to every node (Theorem 4). The
// leader is whichever single node passes have=true; its token travels up to
// the TBFS root and floods down. Every node returns the value.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 2) from the caller's current round.
func Broadcast(nd *ncc.Node, t *primitives.Tree, have bool, value int64) int64 {
	K := ncc.CeilLog2(nd.N())
	start := nd.Round()
	upDeadline := start + K + 2
	got := have
	val := value
	// Up phase: the leader's token climbs to the root.
	if have && !t.IsRoot {
		nd.Send(t.Parent, ncc.Message{Kind: kUp, A: value})
	}
	if !t.IsRoot {
		// Relay any up-token that passes through us.
		for nd.Round() < upDeadline {
			in := primitives.SyncAt(nd, nd.Round()+1)
			for _, m := range in {
				if m.Kind == kUp {
					nd.Send(t.Parent, ncc.Message{Kind: kUp, A: m.A})
				}
			}
		}
	} else {
		for nd.Round() < upDeadline {
			in := primitives.SyncAt(nd, nd.Round()+1)
			for _, m := range in {
				if m.Kind == kUp {
					got, val = true, m.A
				}
			}
		}
	}
	// Down phase: flood from the root.
	if t.IsRoot {
		if !got {
			panic("aggregate: Broadcast with no leader")
		}
		sendDown(nd, t, kDown, val)
	} else {
		waiting := true
		for waiting {
			for _, m := range nd.AwaitMessage() {
				if m.Kind == kDown {
					val = m.A
					waiting = false
				}
			}
		}
		sendDown(nd, t, kDown, val)
	}
	primitives.SyncAt(nd, upDeadline+K+3)
	return val
}

func sendDown(nd *ncc.Node, t *primitives.Tree, kind uint8, v int64) {
	if t.Left != ncc.None {
		nd.Send(t.Left, ncc.Message{Kind: kind, A: v})
	}
	if t.Right != ncc.None {
		nd.Send(t.Right, ncc.Message{Kind: kind, A: v})
	}
}

// AggregateBroadcast folds every node's value with the distributive operator
// op and returns the global result to every node (Theorem 4's aggregation
// followed by a broadcast of the result, the form all realization algorithms
// use). Convergecast up the TBFS, flood down.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 3) from the caller's current round.
func AggregateBroadcast(nd *ncc.Node, t *primitives.Tree, value int64, op Op) int64 {
	K := ncc.CeilLog2(nd.N())
	startA := nd.Round()
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	acc := value
	for got := 0; got < children; {
		for _, m := range nd.AwaitMessage() {
			if m.Kind == kAggUp {
				acc = op.Combine(acc, m.A)
				got++
			}
		}
	}
	if !t.IsRoot {
		nd.Send(t.Parent, ncc.Message{Kind: kAggUp, A: acc})
	}
	primitives.SyncAt(nd, startA+K+3)

	startB := nd.Round()
	val := acc // correct only at the root; others receive it below
	if t.IsRoot {
		sendDown(nd, t, kAggDown, val)
	} else {
		waiting := true
		for waiting {
			for _, m := range nd.AwaitMessage() {
				if m.Kind == kAggDown {
					val = m.A
					waiting = false
				}
			}
		}
		sendDown(nd, t, kAggDown, val)
	}
	primitives.SyncAt(nd, startB+K+3)
	return val
}

// FindByPosition returns the ID of the node whose annotated inorder position
// equals pos, made common knowledge via aggregation (the Corollary 2 median
// primitive generalized to any position). Rounds: one AggregateBroadcast.
func FindByPosition(nd *ncc.Node, t *primitives.Tree, pos int) ncc.ID {
	v := int64(0)
	if t.Pos == pos {
		v = int64(nd.ID())
	}
	id := ncc.ID(AggregateBroadcast(nd, t, v, MaxOp()))
	if id != ncc.None {
		nd.Learn(id)
	}
	return id
}

// Collect gathers every node's tokens at the leader (Theorem 5): tokens are
// pipelined up the TBFS with per-round throttling that respects the node
// capacity, then streamed from the root to the leader. All nodes must pass
// the same leader ID (normally learned via Broadcast beforehand); nodes
// without tokens pass nil. Returns the collected tokens at the leader (nil
// elsewhere). Termination is event-driven — the root floods a phase-end
// marker once everything has drained — so the round cost adapts to the token
// count k as O(k + log n). On return all nodes are resynchronized to the
// same round (the marker's flood time is corrected using each node's depth).
func Collect(nd *ncc.Node, t *primitives.Tree, tokens []int64, leader ncc.ID) []int64 {
	K := ncc.CeilLog2(nd.N())
	budget := nd.Capacity()/2 - 1
	if budget < 1 {
		budget = 1
	}
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	queue := append([]int64(nil), tokens...)
	var atLeader []int64
	doneChildren := 0
	sentDone := false
	var leaderQueue []int64 // root only: tokens to stream to the leader
	// resync aligns every node to the same round after the phase-end flood:
	// a node at depth d learns of the end d rounds after the root flooded it.
	resync := func() []int64 {
		base := nd.Round() - t.Depth
		for _, m := range primitives.SyncAt(nd, base+K+3) {
			if m.Kind == kLeaderTok {
				atLeader = append(atLeader, m.A)
			}
		}
		return atLeader
	}
	for {
		// Ship up to budget tokens towards the root (or buffer at the root).
		nSend := len(queue)
		if nSend > budget {
			nSend = budget
		}
		for i := 0; i < nSend; i++ {
			if t.IsRoot {
				leaderQueue = append(leaderQueue, queue[i])
			} else {
				nd.Send(t.Parent, ncc.Message{Kind: kToken, A: queue[i]})
			}
		}
		queue = queue[nSend:]
		if t.IsRoot {
			// Stream buffered tokens to the leader.
			nLead := len(leaderQueue)
			if nLead > budget {
				nLead = budget
			}
			for i := 0; i < nLead; i++ {
				if leader == nd.ID() {
					atLeader = append(atLeader, leaderQueue[i])
				} else {
					nd.Send(leader, ncc.Message{Kind: kLeaderTok, A: leaderQueue[i]})
				}
			}
			leaderQueue = leaderQueue[nLead:]
			if doneChildren == children && len(queue) == 0 && len(leaderQueue) == 0 {
				sendDown(nd, t, kPhaseEnd, 0)
				nd.NextRound() // the round in which the flood departs
				return resync()
			}
		} else if doneChildren == children && len(queue) == 0 && !sentDone {
			nd.Send(t.Parent, ncc.Message{Kind: kTokenDone})
			sentDone = true
		}
		for _, m := range nd.NextRound() {
			switch m.Kind {
			case kToken:
				queue = append(queue, m.A)
			case kTokenDone:
				doneChildren++
			case kLeaderTok:
				atLeader = append(atLeader, m.A)
			case kPhaseEnd:
				sendDown(nd, t, kPhaseEnd, 0)
				nd.NextRound() // the round in which the relayed flood departs
				return resync()
			}
		}
	}
}
