package aggregate

import (
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// localSetup builds the LocalCtx every local-primitive test needs.
func localSetup(nd *ncc.Node) *LocalCtx {
	_, lv, tree := primitives.BuildAll(nd)
	return NewLocalCtx(tree.Pos, lv, &tree, nd.N())
}

func TestLocalAggregateDisjointGroups(t *testing.T) {
	// Group gid = pos/8 sums the positions of its 8 members; destination is
	// the group's first member.
	n := 64
	s := ncc.New(ncc.Config{N: n, Seed: 3})
	tr, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		gid := int64(c.Pos / 8)
		contribs := []GroupValue{{GID: gid, Value: int64(c.Pos)}}
		var dest []int64
		if c.Pos%8 == 0 {
			dest = []int64{gid}
		}
		res := LocalAggregate(nd, c, contribs, dest, SumOp())
		if v, ok := res[gid]; ok {
			nd.SetOutput("sum", v)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for g := 0; g < n/8; g++ {
		base := g * 8
		want := int64(8*base + 28) // Σ pos..pos+7
		got, ok := tr.Output(tr.IDs[base], "sum")
		if !ok || got != want {
			t.Fatalf("group %d: sum %d (ok=%v), want %d", g, got, ok, want)
		}
	}
}

func TestLocalAggregateOverlappingGroups(t *testing.T) {
	// Every node belongs to two groups: its row and its column in an 8×8
	// arrangement; destinations are the diagonal nodes.
	n := 64
	s := ncc.New(ncc.Config{N: n, Seed: 5})
	tr, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		row, col := int64(c.Pos/8), int64(c.Pos%8)
		contribs := []GroupValue{
			{GID: row, Value: 1},
			{GID: 100 + col, Value: 1},
		}
		var dest []int64
		if row == col {
			dest = []int64{row, 100 + col}
		}
		res := LocalAggregate(nd, c, contribs, dest, SumOp())
		if v, ok := res[row]; ok {
			nd.SetOutput("rowcount", v)
		}
		if v, ok := res[100+col]; ok {
			nd.SetOutput("colcount", v)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for d := 0; d < 8; d++ {
		id := tr.IDs[d*8+d]
		if v, _ := tr.Output(id, "rowcount"); v != 8 {
			t.Fatalf("diag %d: row count %d, want 8", d, v)
		}
		if v, _ := tr.Output(id, "colcount"); v != 8 {
			t.Fatalf("diag %d: col count %d, want 8", d, v)
		}
	}
}

func TestLocalMulticast(t *testing.T) {
	// Group gid = pos/10: source is the last member, token = gid*111.
	n := 50
	s := ncc.New(ncc.Config{N: n, Seed: 7})
	tr, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		gid := int64(c.Pos / 10)
		var src []GroupToken
		if c.Pos%10 == 9 {
			src = []GroupToken{{GID: gid, Token: gid * 111}}
		}
		got := LocalMulticast(nd, c, src, []int64{gid})
		if v, ok := got[gid]; ok {
			nd.SetOutput("tok", v)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		want := int64(i/10) * 111
		got, ok := tr.Output(id, "tok")
		if !ok || got != want {
			t.Fatalf("pos %d: token %d (ok=%v), want %d", i, got, ok, want)
		}
	}
}

func TestLocalCollect(t *testing.T) {
	// One group per 16-block; each member sends its position; the block
	// head collects all 16.
	n := 64
	s := ncc.New(ncc.Config{N: n, Seed: 9})
	type res struct {
		id   ncc.ID
		toks []int64
	}
	ch := make(chan res, n)
	tr, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		gid := int64(c.Pos / 16)
		toks := []GroupToken{{GID: gid, Token: int64(c.Pos)}}
		var dest []int64
		if c.Pos%16 == 0 {
			dest = []int64{gid}
		}
		got := LocalCollect(nd, c, toks, dest)
		ch <- res{nd.ID(), got[gid]}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	close(ch)
	byID := map[ncc.ID][]int64{}
	for r := range ch {
		byID[r.id] = r.toks
	}
	for g := 0; g < 4; g++ {
		head := tr.IDs[g*16]
		toks := byID[head]
		if len(toks) != 16 {
			t.Fatalf("group %d: collected %d tokens, want 16", g, len(toks))
		}
		seen := map[int64]bool{}
		for _, v := range toks {
			if v < int64(g*16) || v >= int64((g+1)*16) || seen[v] {
				t.Fatalf("group %d: bad/duplicate token %d", g, v)
			}
			seen[v] = true
		}
	}
}

func TestLocalPrimitivesSingleNode(t *testing.T) {
	s := ncc.New(ncc.Config{N: 1, Seed: 11})
	_, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		res := LocalAggregate(nd, c, []GroupValue{{GID: 1, Value: 5}}, []int64{1}, SumOp())
		if res[1] != 5 {
			panic("self aggregation failed")
		}
		mc := LocalMulticast(nd, c, []GroupToken{{GID: 2, Token: 9}}, []int64{2})
		if mc[2] != 9 {
			panic("self multicast failed")
		}
		col := LocalCollect(nd, c, []GroupToken{{GID: 3, Token: 4}}, []int64{3})
		if len(col[3]) != 1 || col[3][0] != 4 {
			panic("self collect failed")
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestLocalAggregateMaxOp(t *testing.T) {
	n := 32
	s := ncc.New(ncc.Config{N: n, Seed: 13})
	tr, err := s.Run(func(nd *ncc.Node) {
		c := localSetup(nd)
		var dest []int64
		if c.Pos == n-1 {
			dest = []int64{7}
		}
		res := LocalAggregate(nd, c, []GroupValue{{GID: 7, Value: int64(c.Pos * c.Pos)}}, dest, MaxOp())
		if v, ok := res[7]; ok {
			nd.SetOutput("max", v)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := int64((n - 1) * (n - 1))
	if v, _ := tr.Output(tr.IDs[n-1], "max"); v != want {
		t.Fatalf("max = %d, want %d", v, want)
	}
}
