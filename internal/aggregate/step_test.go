package aggregate

import (
	"reflect"
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// step_test.go checks the resumable-step compilation of the global
// aggregation protocols: the full Broadcast → AggregateBroadcast →
// FindByPosition → Collect chain, compiled into continuations and driven by
// the flat scheduler, must produce a trace byte-identical to the blocking
// chain under the barrier driver.

func TestGlobalStepsMatchBlocking(t *testing.T) {
	for _, n := range []int{1, 4, 16, 65} {
		seed := int64(n)*31 + 5
		pos := 0
		if n > 2 {
			pos = 2
		}
		sb := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true})
		base, err := sb.Run(func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			root := Broadcast(nd, &tree, tree.IsRoot, int64(nd.ID()))
			sum := AggregateBroadcast(nd, &tree, int64(tree.Pos), SumOp())
			at := FindByPosition(nd, &tree, pos)
			var toks []int64
			if tree.Pos%2 == 0 {
				toks = []int64{int64(tree.Pos)}
			}
			got := Collect(nd, &tree, toks, ncc.ID(root))
			nd.SetOutput("root", root)
			nd.SetOutput("sum", sum)
			nd.SetOutput("at", int64(at))
			nd.SetOutput("ntok", int64(len(got)))
		})
		if err != nil {
			t.Fatalf("n=%d blocking: %v", n, err)
		}
		sf := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Sched: ncc.SchedFlat})
		flat, err := sf.RunProgram(func(nd *ncc.Node) ncc.Op {
			return primitives.BuildAllStep(nd, func(_ primitives.Path, _ primitives.Levels, tree primitives.Tree) ncc.Op {
				return BroadcastStep(nd, &tree, tree.IsRoot, int64(nd.ID()), func(root int64) ncc.Op {
					return AggregateBroadcastStep(nd, &tree, int64(tree.Pos), SumOp(), func(sum int64) ncc.Op {
						return FindByPositionStep(nd, &tree, pos, func(at ncc.ID) ncc.Op {
							var toks []int64
							if tree.Pos%2 == 0 {
								toks = []int64{int64(tree.Pos)}
							}
							return CollectStep(nd, &tree, toks, ncc.ID(root), func(got []int64) ncc.Op {
								nd.SetOutput("root", root)
								nd.SetOutput("sum", sum)
								nd.SetOutput("at", int64(at))
								nd.SetOutput("ntok", int64(len(got)))
								return ncc.Done()
							})
						})
					})
				})
			})
		})
		if err != nil {
			t.Fatalf("n=%d flat: %v", n, err)
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("n=%d: flat step trace differs from blocking barrier trace", n)
		}
		// Sanity beyond equality: the aggregate is the known prefix-position sum.
		want := int64(n*(n-1)) / 2
		for _, id := range flat.IDs {
			if v, _ := flat.Output(id, "sum"); v != want {
				t.Fatalf("n=%d: node %d sum=%d, want %d", n, id, v, want)
			}
		}
	}
}
