package wire

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenHex is the worked example of WIRE.md §9: the 4-vertex graph with
// edges {0,1} {0,2} {0,3} {1,2}, encoded with no metadata chunk.
const goldenHex = "47525746010300000038b2829d0104040b00000031a2bd09" +
	"02000403010101010100000100000037be0b4b03"

// goldenAdj is that graph's full symmetric adjacency.
func goldenAdj() (int, [][]int) {
	return 4, [][]int{{1, 2, 3}, {0, 2}, {0, 1}, {0}}
}

// TestGoldenWorkedExample pins the encoder byte-for-byte to the worked
// example in WIRE.md §9 and decodes those exact bytes back.
func TestGoldenWorkedExample(t *testing.T) {
	want, err := hex.DecodeString(goldenHex)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	n, adj := goldenAdj()
	got, err := EncodeGraph(n, adj)
	if err != nil {
		t.Fatalf("EncodeGraph: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoder diverged from WIRE.md §9:\n got %x\nwant %x", got, want)
	}
	msg, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("Decode(golden): %v", err)
	}
	if !msg.HasGraph || msg.N != 4 || msg.M != 4 {
		t.Fatalf("golden decoded to n=%d m=%d hasGraph=%v, want 4/4/true", msg.N, msg.M, msg.HasGraph)
	}
	if !adjEqual(msg.Adj, adj) {
		t.Fatalf("golden adjacency = %v, want %v", msg.Adj, adj)
	}
}

// randomGraph builds a random simple graph on n vertices with edge
// probability p, returning sorted symmetric adjacency and the edge count.
func randomGraph(rng *rand.Rand, n int, p float64) ([][]int, int) {
	adj := make([][]int, n)
	m := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				m++
			}
		}
	}
	return adj, m
}

func adjEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestRoundTripRandomGraphs is the encode→decode == identity property of
// WIRE.md §6 over random graphs, including the n=0 and edgeless corners
// and chunk targets small enough to force many ADJ chunks (§4).
func TestRoundTripRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		n int
		p float64
	}{
		{0, 0}, {1, 0}, {2, 1}, {5, 0}, {17, 0.3}, {64, 0.1}, {257, 0.05}, {1000, 0.01},
	}
	for _, target := range []int{1, 16, DefaultChunkTarget} {
		for _, c := range cases {
			adj, m := randomGraph(rng, c.n, c.p)
			var buf bytes.Buffer
			enc := NewEncoder(&buf)
			enc.ChunkTarget = target
			if err := enc.WriteGraph(c.n, adj); err != nil {
				t.Fatalf("n=%d target=%d WriteGraph: %v", c.n, target, err)
			}
			if err := enc.Close(); err != nil {
				t.Fatalf("n=%d target=%d Close: %v", c.n, target, err)
			}
			msg, err := Decode(&buf)
			if err != nil {
				t.Fatalf("n=%d target=%d Decode: %v", c.n, target, err)
			}
			if !msg.HasGraph || msg.N != c.n || msg.M != m {
				t.Fatalf("n=%d target=%d decoded n=%d m=%d, want n=%d m=%d", c.n, target, msg.N, msg.M, c.n, m)
			}
			if !adjEqual(msg.Adj, adj) {
				t.Fatalf("n=%d target=%d adjacency did not round-trip", c.n, target)
			}
			if buf.Len() != 0 {
				t.Fatalf("n=%d target=%d Decode left %d bytes unread", c.n, target, buf.Len())
			}
		}
	}
}

// TestStreamShapes exercises the WIRE.md §3 grammar: metadata-only
// streams, empty streams, and metadata + graph streams (§5.4).
func TestStreamShapes(t *testing.T) {
	doc := []byte(`{"realizable":true}`)

	t.Run("meta-only", func(t *testing.T) {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.WriteJSONMeta(doc); err != nil {
			t.Fatalf("WriteJSONMeta: %v", err)
		}
		if err := enc.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		msg, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if msg.HasGraph || !bytes.Equal(msg.Meta, doc) {
			t.Fatalf("meta-only stream decoded to hasGraph=%v meta=%q", msg.HasGraph, msg.Meta)
		}
	})

	t.Run("empty", func(t *testing.T) {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		msg, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if msg.HasGraph || msg.Meta != nil {
			t.Fatalf("empty stream decoded to %+v", msg)
		}
	})

	t.Run("meta+graph", func(t *testing.T) {
		n, adj := goldenAdj()
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.WriteJSONMeta(doc); err != nil {
			t.Fatalf("WriteJSONMeta: %v", err)
		}
		if err := enc.WriteGraph(n, adj); err != nil {
			t.Fatalf("WriteGraph: %v", err)
		}
		if err := enc.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		msg, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(msg.Meta, doc) || !msg.HasGraph || !adjEqual(msg.Adj, adj) {
			t.Fatalf("meta+graph stream decoded to %+v", msg)
		}
	})
}

// TestDecodeConsumesExactly checks the WIRE.md §3 requirement that a
// consumer reads exactly the stream and leaves subsequent bytes unread.
func TestDecodeConsumesExactly(t *testing.T) {
	n, adj := goldenAdj()
	stream, err := EncodeGraph(n, adj)
	if err != nil {
		t.Fatal(err)
	}
	trailer := []byte("bytes after the END chunk belong to the container")
	r := bytes.NewReader(append(append([]byte{}, stream...), trailer...))
	if _, err := Decode(r); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	rest, _ := io.ReadAll(r)
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("Decode consumed past END: %d trailing bytes left, want %d", len(rest), len(trailer))
	}
}

// TestEncoderStreamsBoundedChunks checks the WIRE.md §4 framing from the
// outside: a large graph becomes many independently CRC-valid frames, each
// payload near the configured target, and the Flush hook runs per frame.
func TestEncoderStreamsBoundedChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj, _ := randomGraph(rng, 2000, 0.02)

	var buf bytes.Buffer
	flushes := 0
	enc := NewEncoder(&buf)
	enc.ChunkTarget = 1 << 10
	enc.Flush = func() error { flushes++; return nil }
	if err := enc.WriteGraph(2000, adj); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Walk the raw frames (skipping the 5-byte header) the way a streaming
	// consumer would.
	r := bytes.NewReader(buf.Bytes()[headerSize:])
	chunks := 0
	for r.Len() > 0 {
		payload, err := readFrame(r, DefaultMaxChunkBytes)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunks, err)
		}
		// One vertex block may overshoot the target; deg+deltas for one
		// vertex of a p=0.02 graph on n=2000 stays far under 1 KiB.
		if payload[0] == chunkAdj && len(payload) > enc.ChunkTarget+512 {
			t.Fatalf("ADJ payload of %d bytes far exceeds the %d target", len(payload), enc.ChunkTarget)
		}
		chunks++
	}
	if chunks < 5 {
		t.Fatalf("expected a multi-chunk stream at a 1 KiB target, got %d chunks", chunks)
	}
	if flushes != chunks+1 { // header push flushes once too
		t.Fatalf("Flush ran %d times for %d chunks + header", flushes, chunks)
	}
}

// TestEncoderCallOrder pins the encoder side of the WIRE.md §3 grammar:
// at most one JMETA before the graph section, at most one graph section,
// nothing after Close.
func TestEncoderCallOrder(t *testing.T) {
	doc := []byte(`{}`)
	n, adj := goldenAdj()

	enc := NewEncoder(io.Discard)
	if err := enc.WriteJSONMeta(nil); err == nil {
		t.Fatal("empty JMETA document accepted")
	}
	if err := enc.WriteJSONMeta(doc); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteJSONMeta(doc); err == nil {
		t.Fatal("second JMETA chunk accepted")
	}
	if err := enc.WriteGraph(n, adj); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteJSONMeta(doc); err == nil {
		t.Fatal("JMETA after the graph section accepted")
	}
	if err := enc.WriteGraph(n, adj); err == nil {
		t.Fatal("second graph section accepted")
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteGraph(n, adj); err == nil {
		t.Fatal("WriteGraph after Close accepted")
	}
	if err := enc.Close(); err != nil {
		t.Fatal("repeated Close must be a no-op, got error")
	}
}

// TestEncoderRejectsNonCanonical pins the WIRE.md §6 producer rule:
// unsorted, duplicate, or out-of-range adjacency is an encode error, not
// a malformed stream.
func TestEncoderRejectsNonCanonical(t *testing.T) {
	cases := []struct {
		name string
		n    int
		adj  [][]int
	}{
		{"unsorted", 3, [][]int{{2, 1}, {}, {}}},
		{"duplicate", 3, [][]int{{1, 1}, {}, {}}},
		{"out-of-range", 3, [][]int{{5}, {}, {}}},
		{"too-many-rows", 2, [][]int{{1}, {0}, {}}},
		{"negative-n", -1, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := EncodeGraph(c.n, c.adj); err == nil {
				t.Fatalf("EncodeGraph(%d, %v) accepted non-canonical input", c.n, c.adj)
			}
		})
	}
}

// corrupt returns the golden stream with one mutation applied.
func corrupt(t *testing.T, mutate func([]byte) []byte) []byte {
	t.Helper()
	b, err := hex.DecodeString(goldenHex)
	if err != nil {
		t.Fatal(err)
	}
	return mutate(b)
}

// TestDecoderRejectsMalformed walks the WIRE.md §7 rejection list: every
// malformed stream decodes to an error wrapping ErrFormat, never a panic
// and never a silently wrong graph.
func TestDecoderRejectsMalformed(t *testing.T) {
	endFrame := func() []byte { return appendFrame(nil, []byte{chunkEnd}) }
	cases := []struct {
		name string
		in   func() []byte
	}{
		{"empty input", func() []byte { return nil }},
		{"truncated header", func() []byte { return []byte{'G', 'R', 'W'} }},
		{"bad magic", func() []byte {
			return corrupt(t, func(b []byte) []byte { b[0] = 'X'; return b })
		}},
		{"unsupported version", func() []byte {
			return corrupt(t, func(b []byte) []byte { b[4] = 99; return b })
		}},
		{"missing END", func() []byte {
			return corrupt(t, func(b []byte) []byte { return b[:len(b)-9] })
		}},
		{"truncated chunk payload", func() []byte {
			return corrupt(t, func(b []byte) []byte { return b[:12] })
		}},
		{"flipped payload bit", func() []byte {
			return corrupt(t, func(b []byte) []byte { b[14] ^= 0x40; return b })
		}},
		{"flipped CRC bit", func() []byte {
			return corrupt(t, func(b []byte) []byte { b[9] ^= 0x01; return b })
		}},
		{"zero-length chunk", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(hdr, 0, 0, 0, 0, 0, 0, 0, 0)
		}},
		{"unknown chunk type", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(appendFrame(hdr, []byte{0x7f}), endFrame()...)
		}},
		{"END with stray bytes", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return appendFrame(hdr, []byte{chunkEnd, 0})
		}},
		{"ADJ before META", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(appendFrame(hdr, []byte{chunkAdj, 0, 1, 0}), endFrame()...)
		}},
		{"second META", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 0, 0})
			s = appendFrame(s, []byte{chunkMeta, 0, 0})
			return append(s, endFrame()...)
		}},
		{"JMETA after graph", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 0, 0})
			s = appendFrame(s, []byte{chunkJMeta, '{', '}'})
			return append(s, endFrame()...)
		}},
		{"empty JMETA", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(appendFrame(hdr, []byte{chunkJMeta}), endFrame()...)
		}},
		{"m over simple-graph max", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(appendFrame(hdr, []byte{chunkMeta, 3, 4}), endFrame()...)
		}},
		{"META stray bytes", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			return append(appendFrame(hdr, []byte{chunkMeta, 0, 0, 0}), endFrame()...)
		}},
		{"ADJ ranges do not tile", func() []byte {
			// n=2, m=0 but the ADJ range starts at vertex 1.
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 0})
			s = appendFrame(s, []byte{chunkAdj, 1, 1, 0})
			return append(s, endFrame()...)
		}},
		{"ADJ range past n", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 1, 0})
			s = appendFrame(s, []byte{chunkAdj, 0, 2, 0, 0})
			return append(s, endFrame()...)
		}},
		{"empty ADJ range", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 1, 0})
			s = appendFrame(s, []byte{chunkAdj, 0, 0})
			return append(s, endFrame()...)
		}},
		{"zero delta", func() []byte {
			// n=2, m=1, vertex 0 claims neighbor 0+0.
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 1})
			s = appendFrame(s, []byte{chunkAdj, 0, 2, 1, 0, 0})
			return append(s, endFrame()...)
		}},
		{"endpoint past n", func() []byte {
			// n=2, m=1, vertex 0's delta reaches vertex 2.
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 1})
			s = appendFrame(s, []byte{chunkAdj, 0, 2, 1, 2, 0})
			return append(s, endFrame()...)
		}},
		{"degree claim beyond chunk", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 1})
			s = appendFrame(s, []byte{chunkAdj, 0, 2, 0x7f})
			return append(s, endFrame()...)
		}},
		{"edge count under declared m", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 1})
			s = appendFrame(s, []byte{chunkAdj, 0, 2, 0, 0})
			return append(s, endFrame()...)
		}},
		{"vertex coverage incomplete", func() []byte {
			hdr := []byte{'G', 'R', 'W', 'F', Version}
			s := appendFrame(hdr, []byte{chunkMeta, 2, 0})
			s = appendFrame(s, []byte{chunkAdj, 0, 1, 0})
			return append(s, endFrame()...)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			msg, err := Decode(bytes.NewReader(c.in()))
			if err == nil {
				t.Fatalf("malformed stream decoded to %+v", msg)
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error %v does not wrap ErrFormat", err)
			}
		})
	}
}

// TestDecoderLimits pins the WIRE.md §7 resource bounds: oversized vertex
// counts and chunk payloads are rejected before allocation.
func TestDecoderLimits(t *testing.T) {
	t.Run("max nodes", func(t *testing.T) {
		hdr := []byte{'G', 'R', 'W', 'F', Version}
		s := appendFrame(hdr, append(uvarint([]byte{chunkMeta}, 1_000_000), 0))
		s = appendFrame(s, []byte{chunkEnd})
		_, err := DecodeLimits(bytes.NewReader(s), Limits{MaxNodes: 1000})
		if !errors.Is(err, ErrFormat) || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("n over MaxNodes: got %v", err)
		}
	})
	t.Run("max chunk bytes", func(t *testing.T) {
		hdr := []byte{'G', 'R', 'W', 'F', Version}
		big := make([]byte, 100)
		big[0] = chunkJMeta
		s := appendFrame(hdr, big)
		_, err := DecodeLimits(bytes.NewReader(s), Limits{MaxChunkBytes: 64})
		if !errors.Is(err, ErrFormat) || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("chunk over MaxChunkBytes: got %v", err)
		}
	})
}

// forwardRandomGraph builds a simple graph on n vertices by giving each
// vertex k random forward neighbors (average degree ≈ 2k): the service's
// typical density with *no* index locality, so any compression it shows is
// a floor for real realizations, whose deltas are far more clustered. The
// construction keeps every adjacency list sorted: backward neighbors arrive
// in ascending outer-loop order, then the forward ones are appended sorted.
func forwardRandomGraph(rng *rand.Rand, n, k int) ([][]int, [][2]int) {
	adj := make([][]int, n)
	var edges [][2]int
	fwd := make([]int, 0, k)
	for u := 0; u < n; u++ {
		span := n - u - 1
		want := k
		if span < want {
			want = span
		}
		fwd = fwd[:0]
		seen := map[int]bool{}
		for len(seen) < want {
			v := u + 1 + rng.Intn(span)
			if !seen[v] {
				seen[v] = true
				fwd = append(fwd, v)
			}
		}
		sort.Ints(fwd)
		for _, v := range fwd {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
			edges = append(edges, [2]int{u, v})
		}
	}
	return adj, edges
}

// TestWireCompressionAtScale is the acceptance bar from the issue: an
// n=65536 graph at realization density must be at least 5x smaller as
// graphwire than as a JSON edge list (WIRE.md §1, §6). The graph here is
// adversarial — random endpoints, so deltas are as wide as the density
// allows; actual engine output compresses better (see the README table).
func TestWireCompressionAtScale(t *testing.T) {
	const n = 65536
	adj, edges := forwardRandomGraph(rand.New(rand.NewSource(65536)), n, 4)
	wireBytes, err := EncodeGraph(n, adj)
	if err != nil {
		t.Fatalf("EncodeGraph: %v", err)
	}
	jsonBytes, err := json.Marshal(edges)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(jsonBytes)) / float64(len(wireBytes))
	t.Logf("n=%d m=%d: JSON %d bytes, wire %d bytes, ratio %.1fx", n, len(edges), len(jsonBytes), len(wireBytes), ratio)
	if ratio < 5 {
		t.Fatalf("wire is only %.2fx smaller than JSON at n=%d, want ≥ 5x", ratio, n)
	}

	msg, err := Decode(bytes.NewReader(wireBytes))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !adjEqual(msg.Adj, adj) {
		t.Fatal("n=65536 graph did not round-trip")
	}
}

// TestSpecSectionsResolve keeps the code ↔ spec links honest: every
// "WIRE.md §x" citation in this package must name a section heading that
// actually exists in WIRE.md.
func TestSpecSectionsResolve(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("..", "..", "WIRE.md"))
	if err != nil {
		t.Fatalf("reading WIRE.md: %v", err)
	}
	sections := map[string]bool{}
	heading := regexp.MustCompile(`(?m)^#{2,3}\s+(\d+(?:\.\d+)?)[.\s]`)
	for _, m := range heading.FindAllStringSubmatch(string(spec), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("no numbered section headings found in WIRE.md")
	}

	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	cite := regexp.MustCompile(`WIRE\.md\s+§(\d+(?:\.\d+)?)`)
	cited := 0
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range cite.FindAllStringSubmatch(string(src), -1) {
			cited++
			if !sections[m[1]] {
				t.Errorf("%s cites WIRE.md §%s, but WIRE.md has no such section", f, m[1])
			}
		}
	}
	if cited == 0 {
		t.Fatal("no WIRE.md § citations found in internal/wire — the spec links are gone")
	}
}

// BenchmarkWireEncode and BenchmarkWireDecode are in the benchgate set
// (Makefile bench-compare): a regression in codec throughput fails CI the
// same way an engine regression does.
func BenchmarkWireEncode(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		adj, _ := forwardRandomGraph(rand.New(rand.NewSource(int64(n))), n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EncodeGraph(n, adj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		adj, _ := forwardRandomGraph(rand.New(rand.NewSource(int64(n))), n, 4)
		stream, err := EncodeGraph(n, adj)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(stream)))
			for i := 0; i < b.N; i++ {
				if _, err := Decode(bytes.NewReader(stream)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
