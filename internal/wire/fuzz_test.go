package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

// FuzzWireDecode pins the WIRE.md §7 robustness guarantee: Decode never
// panics on arbitrary input, every rejection wraps ErrFormat, and any
// input it does accept is a canonical stream — re-encoding the decoded
// graph succeeds and round-trips.
func FuzzWireDecode(f *testing.F) {
	golden, err := hex.DecodeString(goldenHex)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	f.Add(golden[:len(golden)-1])      // truncated END
	f.Add(golden[:7])                  // truncated frame header
	f.Add([]byte{})                    // empty
	f.Add([]byte{'G', 'R', 'W', 'F'})  // header cut short
	f.Add([]byte("GRWF\x02"))          // future version
	mut := append([]byte{}, golden...) // flipped payload byte
	mut[14] ^= 0x10
	f.Add(mut)
	metaOnly, err := hex.DecodeString("475257460116000000") // hand-cut frame
	if err != nil {
		f.Fatal(err)
	}
	f.Add(metaOnly)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Small limits keep a hostile META chunk from slowing the fuzzer
		// down with large (but legal) allocations.
		msg, err := DecodeLimits(bytes.NewReader(data), Limits{MaxNodes: 1 << 12, MaxChunkBytes: 1 << 16})
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("Decode error %v does not wrap ErrFormat", err)
			}
			return
		}
		if !msg.HasGraph {
			return
		}
		reenc, err := EncodeGraph(msg.N, msg.Adj)
		if err != nil {
			t.Fatalf("accepted stream re-encodes with error: %v", err)
		}
		again, err := Decode(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if again.N != msg.N || again.M != msg.M || !adjEqual(again.Adj, msg.Adj) {
			t.Fatal("decode→encode→decode changed the graph")
		}
	})
}
