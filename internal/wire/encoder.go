package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Encoder writes one graphwire stream: header, an optional JSON metadata
// chunk, an optional graph section, and the END chunk (WIRE.md §3). The
// chunk sequence is produced incrementally — each framed chunk is written
// (and, if Flush is set, flushed) as soon as it is complete, so a consumer
// can start validating before the graph section is finished and the
// first byte of an HTTP response does not wait on the last vertex.
//
// Call order: NewEncoder, then at most one WriteJSONMeta, then at most one
// WriteGraph, then Close. The zero number of either section is valid
// (WIRE.md §3: both are optional; END is not).
type Encoder struct {
	w io.Writer

	// ChunkTarget is the ADJ payload size the encoder aims for before
	// cutting a chunk (default DefaultChunkTarget). A vertex block is never
	// split, so a payload can overshoot by one block.
	ChunkTarget int

	// Flush, when non-nil, runs after every framed chunk reaches w —
	// the hook an HTTP handler uses to push frames to the client as they
	// are produced.
	Flush func() error

	buf        []byte // frame assembly buffer, reused across chunks
	headerSent bool
	metaSent   bool
	graphSent  bool
	closed     bool
	err        error // first write error; the encoder is dead after one
}

// NewEncoder returns an Encoder streaming to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, ChunkTarget: DefaultChunkTarget}
}

// writeHeader emits the 5-byte stream header once (WIRE.md §3).
func (e *Encoder) writeHeader() error {
	if e.headerSent {
		return nil
	}
	e.headerSent = true
	hdr := append(append(make([]byte, 0, headerSize), magic[:]...), Version)
	return e.push(hdr)
}

// push writes raw bytes and runs the Flush hook, latching the first error.
func (e *Encoder) push(b []byte) error {
	if e.err != nil {
		return e.err
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return err
	}
	if e.Flush != nil {
		if err := e.Flush(); err != nil {
			e.err = err
			return err
		}
	}
	return nil
}

// emit frames one chunk payload and pushes it.
func (e *Encoder) emit(payload []byte) error {
	if err := e.writeHeader(); err != nil {
		return err
	}
	e.buf = appendFrame(e.buf[:0], payload)
	return e.push(e.buf)
}

// WriteJSONMeta emits the stream's single JMETA chunk (WIRE.md §5.4)
// carrying an application-defined JSON document. It must precede
// WriteGraph; the document must be non-empty.
func (e *Encoder) WriteJSONMeta(doc []byte) error {
	switch {
	case e.closed:
		return errors.New("wire: WriteJSONMeta after Close")
	case e.metaSent:
		return errors.New("wire: second JMETA chunk (at most one per stream)")
	case e.graphSent:
		return errors.New("wire: JMETA chunk must precede the graph section")
	case len(doc) == 0:
		return errors.New("wire: empty JMETA document")
	}
	e.metaSent = true
	payload := append(make([]byte, 0, 1+len(doc)), chunkJMeta)
	return e.emit(append(payload, doc...))
}

// WriteGraph emits the graph section: one META chunk with the dimensions,
// then ADJ chunks covering vertices 0..n-1 in order (WIRE.md §5, §6).
// adj is the full symmetric adjacency (adj[u] lists every neighbor of u,
// sorted ascending, as in graphrealize.Graph); only forward neighbors
// (v > u) are encoded, so each edge costs one delta varint. The encoder
// rejects non-canonical input — unsorted or duplicate neighbors, self
// loops, out-of-range endpoints — rather than emit a stream no conforming
// decoder would accept.
func (e *Encoder) WriteGraph(n int, adj [][]int) error {
	switch {
	case e.closed:
		return errors.New("wire: WriteGraph after Close")
	case e.graphSent:
		return errors.New("wire: second graph section (at most one per stream)")
	case n < 0 || len(adj) > n:
		return fmt.Errorf("wire: adjacency for %d vertices does not fit n=%d", len(adj), n)
	}
	e.graphSent = true

	m := 0
	for u := range adj {
		prev := u // forward neighbors must strictly ascend from u
		for _, v := range adj[u] {
			if v <= u {
				continue
			}
			if v <= prev {
				return fmt.Errorf("wire: adjacency of vertex %d is not sorted strictly ascending", u)
			}
			if v >= n {
				return fmt.Errorf("wire: edge (%d,%d) out of range [0,%d)", u, v, n)
			}
			prev = v
			m++
		}
	}

	meta := append(make([]byte, 0, 1+2*binary64Max), byte(chunkMeta))
	meta = uvarint(meta, uint64(n))
	meta = uvarint(meta, uint64(m))
	if err := e.emit(meta); err != nil {
		return err
	}

	if e.ChunkTarget <= 0 {
		e.ChunkTarget = DefaultChunkTarget
	}
	// Assemble vertex blocks into bounded ADJ payloads. The payload prefix
	// (type, first, count) is patched in when the chunk is cut, so blocks
	// append straight into one reusable buffer.
	var (
		body  []byte
		first int
		count int
	)
	cut := func() error {
		if count == 0 {
			return nil
		}
		payload := append(make([]byte, 0, 1+2*binary64Max+len(body)), byte(chunkAdj))
		payload = uvarint(payload, uint64(first))
		payload = uvarint(payload, uint64(count))
		payload = append(payload, body...)
		body = body[:0]
		count = 0
		return e.emit(payload)
	}
	for u := 0; u < n; u++ {
		if count == 0 {
			first = u
		}
		var fwd []int
		if u < len(adj) {
			fwd = adj[u]
		}
		deg := 0
		for _, v := range fwd {
			if v > u {
				deg++
			}
		}
		body = uvarint(body, uint64(deg))
		prev := u
		for _, v := range fwd {
			if v <= u {
				continue
			}
			body = uvarint(body, uint64(v-prev))
			prev = v
		}
		count++
		if len(body) >= e.ChunkTarget {
			if err := cut(); err != nil {
				return err
			}
		}
	}
	return cut()
}

// Close emits the END chunk (WIRE.md §5.3) and finishes the stream. It
// does not close the underlying writer. Close on an empty encoder still
// writes a valid header-plus-END stream.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	return e.emit([]byte{chunkEnd})
}

// binary64Max is the worst-case byte length of one uvarint (LEB128 of a
// 64-bit value).
const binary64Max = 10

// EncodeGraph renders a complete single-graph stream (header, META+ADJ,
// END) into a fresh byte slice — the convenience form the job store and
// tests use. The stream round-trips through Decode.
func EncodeGraph(n int, adj [][]int) ([]byte, error) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WriteGraph(n, adj); err != nil {
		return nil, err
	}
	if err := enc.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
