package wire

import (
	"io"
)

// Limits bounds the resources a decoder will commit to one stream
// (WIRE.md §7). The zero value selects the package defaults.
type Limits struct {
	// MaxNodes caps the vertex count a META chunk may declare
	// (default DefaultMaxNodes).
	MaxNodes int
	// MaxChunkBytes caps one chunk payload (default DefaultMaxChunkBytes).
	// Streams produced by this package's Encoder stay far below it.
	MaxChunkBytes int
}

func (l Limits) norm() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxChunkBytes <= 0 {
		l.MaxChunkBytes = DefaultMaxChunkBytes
	}
	return l
}

// Message is one decoded graphwire stream.
type Message struct {
	// Meta is the JMETA chunk's JSON document, nil if the stream had none.
	Meta []byte
	// HasGraph reports whether the stream carried a graph section; N and
	// Adj are meaningful only when it is true (a stream of metadata alone —
	// e.g. a sweep response — has none).
	HasGraph bool
	// N is the vertex count.
	N int
	// M is the edge count declared by the META chunk and verified against
	// the ADJ chunks.
	M int
	// Adj is the full symmetric adjacency: Adj[u] lists every neighbor of
	// u in ascending order, exactly the graphrealize.Graph representation.
	Adj [][]int
}

// Decode reads and validates one complete graphwire stream from r under
// the default Limits. It consumes exactly the stream's bytes (header
// through END chunk) and no more, so it can read directly from a network
// body. Every malformed input — truncation, bad magic or version, CRC
// mismatch, grammar violations, inconsistent dimensions — returns an
// error wrapping ErrFormat; Decode never panics on arbitrary input
// (WIRE.md §7, pinned by FuzzWireDecode).
func Decode(r io.Reader) (*Message, error) {
	return DecodeLimits(r, Limits{})
}

// DecodeLimits is Decode with explicit resource Limits.
func DecodeLimits(r io.Reader, lim Limits) (*Message, error) {
	lim = lim.norm()
	d := &decoder{r: r, lim: lim}
	if err := d.header(); err != nil {
		return nil, err
	}
	msg := &Message{}
	// Stream grammar (WIRE.md §3): JMETA? (META ADJ*)? END.
	for {
		payload, err := readFrame(d.r, lim.MaxChunkBytes)
		if err != nil {
			return nil, err
		}
		body := &byteReader{buf: payload, pos: 1}
		switch payload[0] {
		case chunkJMeta:
			if msg.Meta != nil {
				return nil, formatErr("second JMETA chunk")
			}
			if msg.HasGraph {
				return nil, formatErr("JMETA chunk after the graph section")
			}
			if body.rest() == 0 {
				return nil, formatErr("empty JMETA document")
			}
			msg.Meta = payload[1:]
		case chunkMeta:
			if err := d.meta(msg, body); err != nil {
				return nil, err
			}
		case chunkAdj:
			if err := d.adj(msg, body); err != nil {
				return nil, err
			}
		case chunkEnd:
			if body.rest() != 0 {
				return nil, formatErr("END chunk carries %d stray bytes", body.rest())
			}
			return d.finish(msg)
		default:
			// Unknown chunk types are an error under the current version:
			// the version byte, not chunk skipping, is the compatibility
			// mechanism (WIRE.md §8).
			return nil, formatErr("unknown chunk type 0x%02x", payload[0])
		}
	}
}

type decoder struct {
	r   io.Reader
	lim Limits

	next    int // first vertex the next ADJ chunk must cover
	edges   int // edges accumulated across ADJ chunks
	sawMeta bool
}

// header validates the stream signature (WIRE.md §3).
func (d *decoder) header() error {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return formatErr("truncated stream header")
		}
		return err
	}
	if [4]byte(hdr[:4]) != magic {
		return formatErr("bad magic %q (want %q)", hdr[:4], magic[:])
	}
	if hdr[4] != Version {
		return formatErr("unsupported version %d (this decoder speaks version %d)", hdr[4], Version)
	}
	return nil
}

// meta applies the graph dimensions chunk (WIRE.md §5.1).
func (d *decoder) meta(msg *Message, body *byteReader) error {
	if d.sawMeta {
		return formatErr("second META chunk")
	}
	d.sawMeta = true
	n64, err := body.uvarint()
	if err != nil {
		return err
	}
	m64, err := body.uvarint()
	if err != nil {
		return err
	}
	if body.rest() != 0 {
		return formatErr("META chunk carries %d stray bytes", body.rest())
	}
	if n64 > uint64(d.lim.MaxNodes) {
		return formatErr("n=%d exceeds the decoder's %d-node limit", n64, d.lim.MaxNodes)
	}
	n := int(n64)
	// A simple graph on n vertices has at most n(n-1)/2 edges; reject
	// impossible claims before they size any allocation.
	if maxM := uint64(n) * uint64(max(n-1, 0)) / 2; m64 > maxM {
		return formatErr("m=%d exceeds the simple-graph maximum %d for n=%d", m64, maxM, n)
	}
	msg.HasGraph = true
	msg.N = n
	msg.M = int(m64)
	msg.Adj = make([][]int, n)
	return nil
}

// adj applies one adjacency range chunk (WIRE.md §5.2, §6). Ranges must
// tile 0..n-1 contiguously in order, every delta is ≥ 1, and endpoints
// stay in range — so each chunk is fully validated the moment it is read.
func (d *decoder) adj(msg *Message, body *byteReader) error {
	if !d.sawMeta {
		return formatErr("ADJ chunk before META")
	}
	first, err := body.uvarint()
	if err != nil {
		return err
	}
	count, err := body.uvarint()
	if err != nil {
		return err
	}
	if first != uint64(d.next) {
		return formatErr("ADJ range starts at vertex %d, want %d (ranges must tile in order)", first, d.next)
	}
	if count == 0 {
		return formatErr("empty ADJ range")
	}
	if first+count > uint64(msg.N) {
		return formatErr("ADJ range [%d,%d) exceeds n=%d", first, first+count, msg.N)
	}
	for u := int(first); u < int(first+count); u++ {
		deg64, err := body.uvarint()
		if err != nil {
			return err
		}
		// Each forward neighbor costs at least one payload byte, so a
		// degree claim beyond the remaining bytes is rejected before any
		// allocation proportional to it.
		if deg64 > uint64(body.rest()) {
			return formatErr("vertex %d claims %d forward neighbors with %d bytes left in chunk", u, deg64, body.rest())
		}
		prev := u
		for i := 0; i < int(deg64); i++ {
			delta, err := body.uvarint()
			if err != nil {
				return err
			}
			if delta == 0 {
				return formatErr("zero delta in adjacency of vertex %d (deltas are ≥ 1)", u)
			}
			v64 := uint64(prev) + delta
			if v64 >= uint64(msg.N) {
				return formatErr("edge (%d,%d) out of range [0,%d)", u, v64, msg.N)
			}
			v := int(v64)
			// Rebuild the symmetric adjacency. Vertices are processed in
			// ascending order and deltas ascend within a block, so both
			// append targets stay sorted without a final sort pass.
			msg.Adj[u] = append(msg.Adj[u], v)
			msg.Adj[v] = append(msg.Adj[v], u)
			prev = v
		}
		d.edges += int(deg64)
		if d.edges > msg.M {
			return formatErr("ADJ chunks carry more than the declared m=%d edges", msg.M)
		}
	}
	if body.rest() != 0 {
		return formatErr("ADJ chunk carries %d stray bytes after its %d vertex blocks", body.rest(), count)
	}
	d.next = int(first + count)
	return nil
}

// finish runs the whole-stream checks END triggers (WIRE.md §7): the
// graph section, if present, must have covered every vertex and carried
// exactly the declared edge count, and nothing may follow END.
func (d *decoder) finish(msg *Message) (*Message, error) {
	if msg.HasGraph {
		if d.next != msg.N {
			return nil, formatErr("ADJ chunks cover vertices [0,%d), want [0,%d)", d.next, msg.N)
		}
		if d.edges != msg.M {
			return nil, formatErr("ADJ chunks carry %d edges, META declared %d", d.edges, msg.M)
		}
	}
	return msg, nil
}
