// Package wire implements the graphwire binary encoding of simple
// undirected graphs — the compact, streamable alternative to JSON edge
// lists used by the HTTP service (content type application/x-graphwire)
// and by the durable job store's at-rest results.
//
// The format is specified normatively in WIRE.md at the repository root;
// this package is an implementation of that document, and the codec tests
// cite it section by section. In one paragraph: a stream is a 5-byte
// header (magic "GRWF" + version) followed by length-prefixed,
// CRC32-framed chunks — an optional JSON metadata chunk, a graph section
// (META chunk with n and m, then ADJ chunks carrying varint-delta-encoded
// sorted forward adjacency), and a mandatory END chunk. Every chunk is
// independently validated, so a reader can stream and verify incrementally
// and a truncated or corrupted stream is always detected.
//
// The package depends only on the standard library and operates on the
// raw (n, adjacency) representation, so every layer above — the facade,
// the serving stack, the job store, the load generator — can use it
// without import cycles.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MediaType is the HTTP content type of a graphwire stream (WIRE.md §1).
const MediaType = "application/x-graphwire"

// Version is the wire-format version this package reads and writes
// (WIRE.md §3, §8). Decoders reject streams with any other version.
const Version = 1

// magic is the 4-byte stream signature "GRWF" (WIRE.md §3).
var magic = [4]byte{'G', 'R', 'W', 'F'}

// headerSize is the byte length of the stream header: magic + version.
const headerSize = len(magic) + 1

// Chunk type codes (WIRE.md §5).
const (
	chunkMeta  = 0x01 // graph dimensions: varint n, varint m
	chunkAdj   = 0x02 // adjacency range: varint first, varint count, vertex blocks
	chunkEnd   = 0x03 // end of stream, empty body
	chunkJMeta = 0x04 // application JSON metadata document
)

// frameOverhead is the per-chunk framing cost: u32 length + u32 CRC
// (WIRE.md §4).
const frameOverhead = 8

// DefaultChunkTarget is the encoder's target ADJ chunk payload size
// (WIRE.md §4 recommends staying well under the decoder limit so readers
// validate in bounded memory). A vertex block never splits across chunks,
// so actual payloads may exceed the target by one block.
const DefaultChunkTarget = 32 << 10

// DefaultMaxChunkBytes is the decoder's default cap on a single chunk
// payload (WIRE.md §7): anything larger is rejected before allocation.
const DefaultMaxChunkBytes = 1 << 20

// DefaultMaxNodes is the decoder's default cap on the vertex count
// (WIRE.md §7), bounding the memory a hostile META chunk can demand.
const DefaultMaxNodes = 1 << 24

// ErrFormat is the base class of every malformed-stream error the decoder
// returns; test with errors.Is. Truncation, checksum failures, grammar
// violations, and limit breaches all wrap it — a decoder never panics on
// arbitrary input (WIRE.md §7).
var ErrFormat = errors.New("wire: malformed graphwire stream")

// formatErr wraps ErrFormat with position-independent detail.
func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// appendFrame appends one framed chunk — length, CRC-32 (IEEE) over the
// payload, payload — to dst (WIRE.md §4). The payload includes the leading
// chunk type byte, so the CRC covers it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one framed chunk and verifies its checksum. maxPayload
// bounds the allocation a corrupt or hostile length prefix can demand.
func readFrame(r io.Reader, maxPayload int) (payload []byte, err error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, formatErr("truncated chunk frame")
		}
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(length) > int64(maxPayload) {
		return nil, formatErr("chunk payload of %d bytes exceeds the %d-byte limit", length, maxPayload)
	}
	if length == 0 {
		return nil, formatErr("empty chunk payload (every chunk starts with a type byte)")
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, formatErr("truncated chunk payload (want %d bytes)", length)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, formatErr("chunk checksum mismatch (header %08x, payload %08x)", want, got)
	}
	return payload, nil
}

// uvarint appends x in unsigned LEB128 form (WIRE.md §2).
func uvarint(dst []byte, x uint64) []byte {
	return binary.AppendUvarint(dst, x)
}

// byteReader reads varints from a chunk payload without consuming past it.
type byteReader struct {
	buf []byte
	pos int
}

func (b *byteReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(b.buf[b.pos:])
	if n <= 0 {
		return 0, formatErr("truncated or overlong varint in chunk body")
	}
	b.pos += n
	return x, nil
}

func (b *byteReader) rest() int { return len(b.buf) - b.pos }
