package graph

// EdgeConnectivity returns the maximum number of pairwise edge-disjoint
// paths between s and t — by Menger's theorem, the minimum number of edges
// whose removal disconnects s from t. It runs Dinic's algorithm on the
// bidirected unit-capacity network, O(m·√m) for unit capacities, which is
// ample at verification scale.
func (g *Graph) EdgeConnectivity(s, t int) int {
	if s == t {
		panic("graph: EdgeConnectivity with s == t")
	}
	d := newDinic(g)
	return d.maxFlow(s, t)
}

// dinic is a unit-capacity max-flow solver over the bidirected version of an
// undirected graph: each undirected edge {u,v} becomes arcs u→v and v→u with
// capacity 1 each, each serving as the other's residual arc. This is the
// standard reduction for undirected edge connectivity.
type dinic struct {
	n     int
	head  []int32 // head[v]: first arc index of v, -1 terminated chains
	next  []int32 // next arc in v's chain
	to    []int32
	cap   []int8
	level []int32
	iter  []int32
}

func newDinic(g *Graph) *dinic {
	d := &dinic{
		n:     g.n,
		head:  make([]int32, g.n),
		next:  make([]int32, 0, 2*g.m),
		to:    make([]int32, 0, 2*g.m),
		cap:   make([]int8, 0, 2*g.m),
		level: make([]int32, g.n),
		iter:  make([]int32, g.n),
	}
	for i := range d.head {
		d.head[i] = -1
	}
	addArc := func(u, v int32) {
		d.next = append(d.next, d.head[u])
		d.head[u] = int32(len(d.to))
		d.to = append(d.to, v)
		d.cap = append(d.cap, 1)
	}
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				// Paired arcs: indices 2k and 2k+1 are mutual residuals.
				addArc(int32(u), w)
				addArc(w, int32(u))
			}
		}
	}
	return d
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap[e] > 0 && d.level[d.to[e]] == -1 {
				d.level[d.to[e]] = d.level[u] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] != -1
}

func (d *dinic) dfs(u, t int32) bool {
	if u == t {
		return true
	}
	for ; d.iter[u] != -1; d.iter[u] = d.next[d.iter[u]] {
		e := d.iter[u]
		v := d.to[e]
		if d.cap[e] > 0 && d.level[v] == d.level[u]+1 && d.dfs(v, t) {
			d.cap[e]--
			d.cap[e^1]++
			return true
		}
	}
	return false
}

func (d *dinic) maxFlow(s, t int) int {
	flow := 0
	for d.bfs(s, t) {
		copy(d.iter, d.head)
		for d.dfs(int32(s), int32(t)) {
			flow++
		}
	}
	return flow
}

// MinEdgeConnectivityOver returns the minimum s-t edge connectivity over the
// given vertex pairs, together with the pair achieving it. Used by the
// connectivity-realization verifiers to sample Menger checks.
func (g *Graph) MinEdgeConnectivityOver(pairs [][2]int) (minConn int, at [2]int) {
	minConn = -1
	for _, p := range pairs {
		c := g.EdgeConnectivity(p[0], p[1])
		if minConn == -1 || c < minConn {
			minConn, at = c, p
		}
	}
	return minConn, at
}
