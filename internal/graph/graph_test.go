package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func path(t *testing.T, n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(t, g, i, i+1)
	}
	return g
}

func cycle(t *testing.T, n int) *Graph {
	g := path(t, n)
	mustEdge(t, g, 0, n-1)
	return g
}

func complete(t *testing.T, n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustEdge(t, g, u, v)
		}
	}
	return g
}

func TestAddEdgeRejectsLoopsAndRange(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 1) // duplicate ignored
	mustEdge(t, g, 1, 0) // reversed duplicate ignored
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %v", g.Degrees())
	}
}

func TestBFSAndDiameterOnPath(t *testing.T) {
	g := path(t, 10)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if g.Diameter() != 9 {
		t.Fatalf("path diameter = %d, want 9", g.Diameter())
	}
	if !g.IsTree() {
		t.Fatal("path is a tree")
	}
	if g.TreeDiameter() != 9 {
		t.Fatalf("tree diameter = %d, want 9", g.TreeDiameter())
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Components() != 2 {
		t.Fatalf("components = %d, want 2", g.Components())
	}
	if g.Diameter() != -1 {
		t.Fatalf("diameter of disconnected graph = %d, want -1", g.Diameter())
	}
	if g.IsTree() {
		t.Fatal("forest with 2 components is not a tree")
	}
}

func TestEdgeConnectivityBasics(t *testing.T) {
	if c := path(t, 5).EdgeConnectivity(0, 4); c != 1 {
		t.Fatalf("path connectivity = %d, want 1", c)
	}
	if c := cycle(t, 6).EdgeConnectivity(0, 3); c != 2 {
		t.Fatalf("cycle connectivity = %d, want 2", c)
	}
	k5 := complete(t, 5)
	if c := k5.EdgeConnectivity(0, 4); c != 4 {
		t.Fatalf("K5 connectivity = %d, want 4", c)
	}
	// Two cycles joined by a single bridge: connectivity across = 1.
	g := New(8)
	for i := 0; i < 3; i++ {
		mustEdge(t, g, i, (i+1)%4)
	}
	mustEdge(t, g, 3, 0)
	for i := 4; i < 7; i++ {
		mustEdge(t, g, i, 4+(i-3)%4)
	}
	mustEdge(t, g, 7, 4)
	mustEdge(t, g, 0, 4)
	if c := g.EdgeConnectivity(1, 5); c != 1 {
		t.Fatalf("bridge connectivity = %d, want 1", c)
	}
}

func TestEdgeConnectivityDisconnected(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	if c := g.EdgeConnectivity(0, 3); c != 0 {
		t.Fatalf("disconnected pair connectivity = %d, want 0", c)
	}
}

// bruteEdgeConnectivity finds the min edge cut between s and t by trying all
// edge subsets (only viable for very small graphs). It is the ground truth
// for the property test below.
func bruteEdgeConnectivity(g *Graph, s, t int) int {
	edges := g.Edges()
	m := len(edges)
	best := m
	for mask := 0; mask < 1<<m; mask++ {
		// Build the graph without the masked edges and test reachability.
		popcount := 0
		for b := mask; b != 0; b &= b - 1 {
			popcount++
		}
		if popcount >= best {
			continue
		}
		h := New(g.N())
		for i, e := range edges {
			if mask&(1<<i) == 0 {
				_ = h.AddEdge(e[0], e[1])
			}
		}
		if h.BFS(s)[t] == -1 {
			best = popcount
		}
	}
	return best
}

func TestQuickEdgeConnectivityMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4) // 4..7 vertices
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					_ = g.AddEdge(u, v)
				}
			}
		}
		if g.M() > 12 {
			return true // keep brute force tractable
		}
		s, tt := 0, 1+rng.Intn(n-1)
		return g.EdgeConnectivity(s, tt) == bruteEdgeConnectivity(g, s, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDiameterMatchesAllPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		// random recursive tree
		for v := 1; v < n; v++ {
			_ = g.AddEdge(v, rng.Intn(v))
		}
		return g.TreeDiameter() == g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 2, 0)
	es := g.Edges()
	want := [][2]int{{0, 2}, {1, 3}}
	if len(es) != 2 || es[0] != want[0] || es[1] != want[1] {
		t.Fatalf("edges = %v, want %v", es, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path(t, 4)
	c := g.Clone()
	mustEdge(t, c, 0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone m = %d, want %d", c.M(), g.M()+1)
	}
}

func TestDegreesMatch(t *testing.T) {
	g := path(t, 4)
	if !g.DegreesMatch([]int{1, 2, 2, 1}) {
		t.Fatal("path degrees mismatch")
	}
	if g.DegreesMatch([]int{1, 2, 2, 2}) {
		t.Fatal("false positive")
	}
	if g.DegreesMatch([]int{1, 2, 2}) {
		t.Fatal("length mismatch accepted")
	}
}

func TestMinEdgeConnectivityOver(t *testing.T) {
	g := cycle(t, 5)
	mc, at := g.MinEdgeConnectivityOver([][2]int{{0, 2}, {1, 3}})
	if mc != 2 {
		t.Fatalf("min connectivity = %d at %v, want 2", mc, at)
	}
}

func TestEccentricityK4(t *testing.T) {
	g := complete(t, 4)
	for v := 0; v < 4; v++ {
		if e := g.Eccentricity(v); e != 1 {
			t.Fatalf("ecc(%d) = %d, want 1", v, e)
		}
	}
	if g.Diameter() != 1 {
		t.Fatalf("K4 diameter = %d, want 1", g.Diameter())
	}
}
