// Package graph provides the plain (centralized) graph substrate used to
// verify distributed realizations: adjacency storage, BFS, tree and diameter
// utilities, and a Dinic max-flow implementation for edge-connectivity
// (Menger) checks. Vertices are dense indices 0..n-1; the realization layers
// map NCC node IDs onto indices before verifying.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1 stored as adjacency
// lists. Use New and AddEdge to build one; AddEdge rejects self-loops and
// ignores duplicate edges so that a Graph is always simple.
type Graph struct {
	n   int
	adj [][]int32
	m   int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u,v}. It returns an error for
// out-of-range endpoints or self-loops, and silently ignores duplicates.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
	return nil
}

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	for _, w := range a {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for v := range g.adj {
		d[v] = len(g.adj[v])
	}
	return d
}

// Neighbors returns v's adjacency list (shared; do not modify).
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// Edges returns all edges as canonical (u<v) pairs, sorted.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.adj[u] {
			if int(w) > u {
				es = append(es, [2]int{u, int(w)})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v := range g.adj {
		c.adj[v] = append([]int32(nil), g.adj[v]...)
	}
	return c
}

// DegreesMatch reports whether the graph's degree vector equals want.
func (g *Graph) DegreesMatch(want []int) bool {
	if len(want) != g.n {
		return false
	}
	for v, d := range g.Degrees() {
		if d != want[v] {
			return false
		}
	}
	return true
}
