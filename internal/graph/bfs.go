package graph

// BFS returns the distance (in edges) from src to every vertex, with -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for n≤1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the number of connected components.
func (g *Graph) Components() int {
	seen := make([]bool, g.n)
	comps := 0
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comps++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, int(w))
				}
			}
		}
	}
	return comps
}

// Eccentricity returns the maximum BFS distance from v, or -1 if some vertex
// is unreachable.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter via all-pairs BFS (O(n·m)); it returns
// -1 for disconnected graphs. Intended for verification at test scale.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// IsTree reports whether g is a tree: connected with exactly n-1 edges.
func (g *Graph) IsTree() bool {
	if g.n == 0 {
		return false
	}
	return g.m == g.n-1 && g.Connected()
}

// TreeDiameter computes the diameter of a tree with two BFS sweeps. It panics
// if g is not a tree (the double-sweep argument needs acyclicity).
func (g *Graph) TreeDiameter() int {
	if !g.IsTree() {
		panic("graph: TreeDiameter on non-tree")
	}
	if g.n == 1 {
		return 0
	}
	d0 := g.BFS(0)
	far := 0
	for v, d := range d0 {
		if d > d0[far] {
			far = v
		}
	}
	d1 := g.BFS(far)
	diam := 0
	for _, d := range d1 {
		if d > diam {
			diam = d
		}
	}
	return diam
}
