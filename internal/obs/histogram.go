package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// histogram.go is a fixed-bucket, lock-free histogram plus its Prometheus
// text rendering. Buckets are chosen at construction and never change, so
// Observe is two atomic adds and a CAS loop for the sum — cheap enough to
// sit on every HTTP request and every engine round.

// DefaultLatencyBuckets covers request and job latencies from 0.5ms to 60s
// (the serving stack's synchronous deadline ceiling), roughly ×2–×2.5 per
// step so each decade gets three buckets — enough resolution for p99 without
// bloating every scrape.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// RoundBuckets covers single engine rounds: most rounds are microseconds
// (flat driver) to hundreds of microseconds (goroutine barriers), with a 1s
// top bucket to catch pathological stalls.
var RoundBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
	5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1,
}

// Histogram counts observations into fixed upper-bound buckets (Prometheus
// `le` semantics: a value equal to a bound lands in that bound's bucket).
// All methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64 // strictly ascending finite upper bounds
	counts  []atomic.Int64
	over    atomic.Int64 // observations above every bound (the +Inf bucket)
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram creates a histogram with the given finite upper bounds, which
// must be strictly ascending and non-empty (+Inf is implicit). The slice is
// copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: NewHistogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds))
	return h
}

// Observe records one value (in the unit the bounds are expressed in —
// seconds, for both bucket presets in this package).
func (h *Histogram) Observe(v float64) {
	// First bound ≥ v is exactly the `le` bucket the value belongs to.
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a point-in-time copy of a histogram: per-bound cumulative
// counts (Prometheus bucket semantics; the implicit +Inf bucket equals
// Count), the total count, and the sum of observed values.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // cumulative: Counts[i] = observations ≤ Bounds[i]
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's state. Individual loads are atomic but the
// snapshot is not one transaction; under concurrent writes the cumulative
// counts can trail Count by in-flight observations, which rendering treats
// as part of the +Inf bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]int64, len(h.bounds)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = cum + h.over.Load()
	if c := h.count.Load(); c > s.Count {
		s.Count = c
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the same estimate Prometheus'
// histogram_quantile computes. Values beyond the last finite bound clamp to
// it; an empty histogram yields 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, cum := range s.Counts {
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		prev := int64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
			prev = s.Counts[i-1]
		}
		width := s.Bounds[i] - lower
		inBucket := cum - prev
		if inBucket == 0 {
			return s.Bounds[i]
		}
		return lower + width*(rank-float64(prev))/float64(inBucket)
	}
	// Rank falls into the +Inf bucket: the last finite bound is the best
	// (and the conventional) answer.
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramSeries is one labeled series of a histogram family for rendering:
// Labels is a pre-rendered label list without the le label (e.g.
// `route="realize"`), empty for an unlabeled family.
type HistogramSeries struct {
	Labels string
	Snap   HistSnapshot
}

// WriteHistogram renders one complete histogram family in the Prometheus
// text exposition format: one HELP/TYPE header, then per series the
// cumulative `_bucket{le=...}` samples (including +Inf), `_sum`, and
// `_count`. Output is deterministic in the order series are given.
func WriteHistogram(w io.Writer, name, help string, series ...HistogramSeries) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		sep := ""
		if s.Labels != "" {
			sep = s.Labels + ","
		}
		for i, b := range s.Snap.Bounds {
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, formatBound(b), s.Snap.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, s.Snap.Count)
		labels := ""
		if s.Labels != "" {
			labels = "{" + s.Labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Snap.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Snap.Count)
	}
}

// formatBound renders a bucket bound the way Prometheus clients do: shortest
// representation that round-trips.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
