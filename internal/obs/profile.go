package obs

import (
	"sync/atomic"
	"time"
)

// profile.go accumulates engine phase timings. The engine's driver loop
// splits every completed round's wall time into three phases:
//
//	compute  — node protocol slices running, from release to the barrier
//	delivery — the delivery layer routing this round's messages
//	barrier  — everything else the engine does between barriers (partitioning
//	           checked-in nodes, collectives, round advance, wake-set sort)
//
// and reports them through ncc.Config.Profile once per round. A PhaseProfile
// aggregates those callbacks for one scheduler driver: total nanoseconds per
// phase, the round count, and a histogram of whole-round durations.

// PhaseProfile accumulates per-round phase timings for one scheduler driver.
// All methods are safe for concurrent use (many jobs on the same driver feed
// one profile).
type PhaseProfile struct {
	compute  atomic.Int64 // nanoseconds
	delivery atomic.Int64
	barrier  atomic.Int64
	rounds   atomic.Int64

	// Round is the distribution of whole-round durations (seconds).
	Round *Histogram
}

// NewPhaseProfile creates a profile with the standard round-duration buckets.
func NewPhaseProfile() *PhaseProfile {
	return &PhaseProfile{Round: NewHistogram(RoundBuckets)}
}

// ObserveRound records one completed round's phase split. Its signature
// matches ncc.Config.Profile so a profile can be installed directly as (or
// chained into) the hook.
func (p *PhaseProfile) ObserveRound(compute, delivery, barrier time.Duration) {
	p.compute.Add(int64(compute))
	p.delivery.Add(int64(delivery))
	p.barrier.Add(int64(barrier))
	p.rounds.Add(1)
	p.Round.ObserveDuration(compute + delivery + barrier)
}

// PhaseSnapshot is a point-in-time copy of a profile's accumulators.
type PhaseSnapshot struct {
	Compute  time.Duration
	Delivery time.Duration
	Barrier  time.Duration
	Rounds   int64
}

// Snapshot reads the accumulators. Loads are atomic but not transactional;
// totals can trail Rounds by in-flight observations.
func (p *PhaseProfile) Snapshot() PhaseSnapshot {
	return PhaseSnapshot{
		Compute:  time.Duration(p.compute.Load()),
		Delivery: time.Duration(p.delivery.Load()),
		Barrier:  time.Duration(p.barrier.Load()),
		Rounds:   p.rounds.Load(),
	}
}
