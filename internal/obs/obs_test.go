package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated trace ID %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "abc-123", "req_42.7", "X/Y:Z", strings.Repeat("x", 128)}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "has space", "quo\"te", "back\\slash", "newline\n", "tab\t", "héllo", strings.Repeat("x", 129)}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("TraceID(empty ctx) = %q, want \"\"", got)
	}
	ctx = WithTraceID(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("TraceID = %q, want abc123", got)
	}
}

func TestPhaseProfile(t *testing.T) {
	p := NewPhaseProfile()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.ObserveRound(time.Microsecond, 2*time.Microsecond, 3*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Rounds != 800 {
		t.Fatalf("Rounds = %d, want 800", s.Rounds)
	}
	if s.Compute != 800*time.Microsecond || s.Delivery != 1600*time.Microsecond || s.Barrier != 2400*time.Microsecond {
		t.Fatalf("phase totals = %v/%v/%v, want 800µs/1.6ms/2.4ms", s.Compute, s.Delivery, s.Barrier)
	}
	if got := p.Round.Snapshot().Count; got != 800 {
		t.Fatalf("round histogram count = %d, want 800", got)
	}
}

func TestFlightRecorder(t *testing.T) {
	r := NewFlightRecorder(3)
	for _, ms := range []int{5, 1, 9, 3, 7} {
		r.Record(FlightEntry{TraceID: "t", Run: time.Duration(ms) * time.Millisecond})
	}
	got := r.Slowest()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	want := []time.Duration{9 * time.Millisecond, 7 * time.Millisecond, 5 * time.Millisecond}
	for i, e := range got {
		if e.Run != want[i] {
			t.Fatalf("entry %d has Run %v, want %v (got order %v)", i, e.Run, want[i], got)
		}
	}
	// A run slower than the floor is dropped; a faster one displaces it.
	r.Record(FlightEntry{Run: 2 * time.Millisecond})
	if got := r.Slowest(); got[len(got)-1].Run != 5*time.Millisecond {
		t.Fatalf("2ms run displaced a 5ms entry")
	}
	r.Record(FlightEntry{Run: 8 * time.Millisecond})
	got = r.Slowest()
	if got[1].Run != 8*time.Millisecond || got[2].Run != 7*time.Millisecond {
		t.Fatalf("8ms run not inserted in order: %v", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(FlightEntry{Run: time.Duration(g*200+i) * time.Microsecond})
			}
		}(g)
	}
	wg.Wait()
	got := r.Slowest()
	if len(got) != 8 {
		t.Fatalf("retained %d entries, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Run > got[i-1].Run {
			t.Fatalf("entries out of order at %d: %v after %v", i, got[i].Run, got[i-1].Run)
		}
	}
}
