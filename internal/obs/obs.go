// Package obs is the dependency-free observability toolkit shared by the
// serving stack: request trace IDs propagated through context.Context,
// fixed-bucket histograms rendered in the Prometheus text exposition format,
// per-driver engine phase profiles, and a bounded flight recorder for the
// slowest jobs.
//
// Everything here is deliberately passive: nothing in this package starts
// goroutines, takes locks on hot paths (histograms and profiles are atomic),
// or feeds back into execution. In particular, phase profiling is delivered
// through a callback (ncc.Config.Profile) and never enters the engine's
// Trace or Metrics, so the scheduler-conformance guarantee — byte-identical
// traces across drivers — holds with profiling on or off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// HeaderRequestID is the HTTP header carrying a request's trace ID, both
// inbound (honored when valid) and outbound (always echoed).
const HeaderRequestID = "X-Request-Id"

// fallbackSeq guarantees distinct IDs if crypto/rand ever fails (it does not
// on supported platforms).
var fallbackSeq atomic.Int64

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015d", fallbackSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether an inbound ID is safe to adopt: non-empty, at
// most 128 bytes, and printable ASCII without spaces, quotes, or backslashes
// (so the ID embeds verbatim in log lines, JSON, and Prometheus labels).
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

type traceKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
