package obs

import (
	"sort"
	"sync"
	"time"
)

// recorder.go is the slowest-jobs flight recorder: a bounded, in-memory list
// of the slowest executed jobs by run duration, so a latency outlier under
// load is attributable — trace ID, job shape, and phase breakdown — from one
// GET /v1/debug/slowest, without external tracing infrastructure.

// FlightEntry is one recorded job execution.
type FlightEntry struct {
	TraceID   string
	Kind      string
	Label     string
	N         int // sequence length
	Seed      int64
	Scheduler string

	Wait time.Duration // queued, waiting for a worker
	Run  time.Duration // executing

	// Phase breakdown accumulated over the job's rounds (zero for jobs
	// served without engine execution, e.g. in-run cache hits).
	Rounds   int64
	Compute  time.Duration
	Delivery time.Duration
	Barrier  time.Duration

	Err      string // terminal error, "" on success
	Finished time.Time
}

// FlightRecorder retains the slowest entries by Run duration (ties at the
// eviction edge keep the earlier entry). It is safe for concurrent use;
// Record is O(log k + k) on the bounded k, off the engine's hot path (once
// per job, not per round).
type FlightRecorder struct {
	mu      sync.Mutex
	limit   int
	entries []FlightEntry // sorted by Run descending
}

// NewFlightRecorder creates a recorder retaining at most limit entries
// (minimum 1).
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit < 1 {
		limit = 1
	}
	return &FlightRecorder{limit: limit}
}

// Record offers one execution to the recorder; it is kept iff it ranks among
// the slowest retained runs.
func (r *FlightRecorder) Record(e FlightEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == r.limit && e.Run <= r.entries[len(r.entries)-1].Run {
		return
	}
	// Insert before the first shorter run; ties go after existing entries
	// of the same duration.
	idx := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].Run < e.Run })
	r.entries = append(r.entries, FlightEntry{})
	copy(r.entries[idx+1:], r.entries[idx:])
	r.entries[idx] = e
	if len(r.entries) > r.limit {
		r.entries = r.entries[:r.limit]
	}
}

// Slowest returns the retained entries, slowest first. The slice is a copy.
func (r *FlightRecorder) Slowest() []FlightEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEntry, len(r.entries))
	copy(out, r.entries)
	return out
}
