package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	h.Observe(1)         // → le="1"
	h.Observe(1.0000001) // → le="2"
	h.Observe(2)         // → le="2"
	h.Observe(4)         // → le="4"
	h.Observe(4.0000001) // → +Inf
	h.Observe(0)         // → le="1"
	h.Observe(-1)        // below the first bound still counts there
	h.Observe(1e300)     // → +Inf
	s := h.Snapshot()
	wantCum := []int64{3, 5, 6} // cumulative
	for i, want := range wantCum {
		if s.Counts[i] != want {
			t.Errorf("cumulative count for le=%g: got %d want %d", s.Bounds[i], s.Counts[i], want)
		}
	}
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}
	wantSum := 1 + 1.0000001 + 2 + 4 + 4.0000001 + 0 - 1 + 1e300
	if math.Abs(s.Sum-wantSum) > 1e285 {
		t.Errorf("Sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-5)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	// Sum of 1e-5 * (0 + 1 + ... + N-1).
	n := float64(goroutines * perG)
	wantSum := 1e-5 * n * (n - 1) / 2
	if math.Abs(s.Sum-wantSum)/wantSum > 1e-9 {
		t.Fatalf("Sum = %g, want %g", s.Sum, wantSum)
	}
	// Cumulative counts must be monotone and end ≤ Count.
	prev := int64(0)
	for i, c := range s.Counts {
		if c < prev {
			t.Fatalf("cumulative counts regress at bucket %d: %d after %d", i, c, prev)
		}
		prev = c
	}
	if prev > s.Count {
		t.Fatalf("last cumulative bucket %d exceeds Count %d", prev, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in (1, 2]
	}
	s := h.Snapshot()
	// Linear interpolation within the (1,2] bucket: p50 at rank 50/100.
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 = %g, want within (1, 2]", q)
	}
	if q := s.Quantile(1); q != 2 {
		t.Errorf("p100 = %g, want 2 (bucket upper bound)", q)
	}
	// Observations beyond the last finite bound clamp to it.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestWriteHistogramFormat(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	var b strings.Builder
	WriteHistogram(&b, "x_seconds", "Test family.",
		HistogramSeries{Labels: `route="a"`, Snap: h.Snapshot()},
		HistogramSeries{Snap: NewHistogram([]float64{1}).Snapshot()},
	)
	got := b.String()
	want := `# HELP x_seconds Test family.
# TYPE x_seconds histogram
x_seconds_bucket{route="a",le="0.001"} 1
x_seconds_bucket{route="a",le="0.01"} 2
x_seconds_bucket{route="a",le="+Inf"} 3
x_seconds_sum{route="a"} 5.0055
x_seconds_count{route="a"} 3
x_seconds_bucket{le="1"} 0
x_seconds_bucket{le="+Inf"} 0
x_seconds_sum 0
x_seconds_count 0
`
	if got != want {
		t.Errorf("WriteHistogram output:\n%s\nwant:\n%s", got, want)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.ObserveDuration(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Counts[0] != 0 || s.Counts[1] != 1 {
		t.Fatalf("500ms landed wrong: cumulative %v", s.Counts)
	}
}
