package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestCheckCatalogConsistency pins the three places a check ID lives to each
// other: the registered suite (DefaultChecks), the prose catalog (DESIGN.md
// §12 "Static enforcement"), and the golden testdata packages
// (testdata/src/<id>). Adding a check to any one of them without the other
// two fails here.
func TestCheckCatalogConsistency(t *testing.T) {
	root := testLoader(t).Root

	codeIDs := KnownIDs(DefaultChecks())

	docIDs := designSectionIDs(t, filepath.Join(root, "DESIGN.md"))

	var goldenIDs []string
	ents, err := os.ReadDir(filepath.Join(root, "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatalf("reading testdata/src: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			goldenIDs = append(goldenIDs, strings.ToUpper(e.Name()))
		}
	}
	sort.Strings(goldenIDs)

	if !equalSets(codeIDs, docIDs) {
		t.Errorf("DefaultChecks IDs %v != DESIGN.md §12 IDs %v", codeIDs, docIDs)
	}
	if !equalSets(codeIDs, goldenIDs) {
		t.Errorf("DefaultChecks IDs %v != golden testdata packages %v", codeIDs, goldenIDs)
	}
}

// designSectionIDs extracts the check IDs named in DESIGN.md's "Static
// enforcement" section (from its "## <n>." heading to the next "## ").
func designSectionIDs(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	text := string(data)
	start := strings.Index(text, "Static enforcement")
	if start < 0 {
		t.Fatal("DESIGN.md has no \"Static enforcement\" section")
	}
	section := text[start:]
	if end := strings.Index(section, "\n## "); end >= 0 {
		section = section[:end]
	}
	idRE := regexp.MustCompile(`\b[A-Z]\d{3}\b`)
	seen := map[string]bool{}
	var ids []string
	for _, id := range idRE.FindAllString(section, -1) {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
