package lint

import "strconv"

// X001 — suppression directive discipline.
//
// //grlint:allow is load-bearing: it is the only way to exempt a site from a
// check, so a malformed directive must be an error, not a silent no-op. A
// directive needs at least one check ID, every ID must name a real check,
// and the " -- <justification>" tail is mandatory — an unexplained
// suppression is indistinguishable from a stale one.
type X001 struct {
	// Known are the valid check IDs (every registered check, X001 included).
	Known []string
}

func (*X001) ID() string { return "X001" }
func (*X001) Doc() string {
	return "every //grlint:allow directive names known checks and carries a ' -- <justification>'"
}

func (c *X001) Run(pkgs []*Package) []Diagnostic {
	known := map[string]bool{}
	for _, id := range c.Known {
		known[id] = true
	}
	var out []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range fileDirectives(p.Fset, f) {
				switch {
				case len(d.ids) == 0:
					out = append(out, Diagnostic{Pos: d.pos, Check: c.ID(),
						Message: "grlint:allow names no check IDs"})
				case !d.hasSep || d.justification == "":
					out = append(out, Diagnostic{Pos: d.pos, Check: c.ID(),
						Message: "grlint:allow requires a justification: //grlint:allow <ID> -- <why this site is exempt>"})
				default:
					for _, id := range d.ids {
						if !known[id] {
							out = append(out, Diagnostic{Pos: d.pos, Check: c.ID(),
								Message: "grlint:allow names unknown check " + strconv.Quote(id)})
						}
					}
				}
			}
		}
	}
	return out
}
