package lint

import (
	"go/ast"
	"go/types"
)

// D001 — nondeterminism in trace-affecting packages.
//
// The engine guarantees byte-identical traces for a given (instance, seed)
// across all three scheduler drivers; the cluster layer replays failed-over
// jobs on that guarantee (CLUSTER.md §6.5). Inside the engine and the
// protocol packages, three constructs silently break it:
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - the process-global math/rand generator (package-level rand.Intn etc. —
//     the sanctioned source is a seeded *rand.Rand via Node.Rand or
//     rand.New(rand.NewSource(...))), and
//   - ranging over a map, whose iteration order changes run to run.
//
// Sites proven trace-inert (the profile-only phaseTimer clock reads,
// order-independent folds over result maps) carry //grlint:allow D001 with a
// justification.
type D001 struct {
	// Packages are the import paths in scope: the engine plus every
	// protocol package that runs under it.
	Packages []string
}

func (*D001) ID() string { return "D001" }
func (*D001) Doc() string {
	return "no time.Now/time.Since, package-level math/rand, or range-over-map in trace-affecting packages"
}

// randConstructors are the package-level math/rand functions that build a
// seeded generator rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (c *D001) Run(pkgs []*Package) []Diagnostic {
	scope := map[string]bool{}
	for _, p := range c.Packages {
		scope[p] = true
	}
	var out []Diagnostic
	for _, p := range pkgs {
		if !scope[p.PkgPath] {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					out = append(out, c.checkSelector(p, n)...)
				case *ast.RangeStmt:
					if tv, ok := p.Info.Types[n.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							out = append(out, Diagnostic{
								Pos:   p.Fset.Position(n.Pos()),
								Check: c.ID(),
								Message: "range over " + types.TypeString(tv.Type, types.RelativeTo(p.Types)) +
									": map iteration order is nondeterministic in trace-affecting package " + p.PkgPath,
							})
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// checkSelector flags references to package-level functions of time and
// math/rand. Methods (e.g. (*rand.Rand).Intn on a seeded generator, or
// time.Time.Sub on an injected timestamp) pass: only the package-global
// entry points are nondeterministic by construction.
func (c *D001) checkSelector(p *Package, sel *ast.SelectorExpr) []Diagnostic {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	var msg string
	switch path := fn.Pkg().Path(); path {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			msg = "time." + fn.Name() + " in trace-affecting package " + p.PkgPath +
				": wall-clock reads are nondeterministic"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			msg = "package-level " + path + "." + fn.Name() +
				" draws from the process-global generator; use a seeded *rand.Rand (Node.Rand or rand.New)"
		}
	}
	if msg == "" {
		return nil
	}
	return []Diagnostic{{Pos: p.Fset.Position(sel.Sel.Pos()), Check: c.ID(), Message: msg}}
}
