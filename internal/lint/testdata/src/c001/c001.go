// Package c001 is the golden-diagnostic package for check C001
// (DESIGN.md §12): context discipline in request-path packages.
package c001

import (
	"context"
	"time"
)

func handle(ctx context.Context) error {
	bg := context.Background() // want "context\\.Background in request-path package"
	_ = bg
	todo := context.TODO() // want "context\\.TODO in request-path package"
	_ = todo
	sub, cancel := context.WithTimeout(ctx, time.Second) // deriving from the request passes
	defer cancel()
	<-sub.Done()
	return sub.Err()
}
