// Package x001 is the golden-diagnostic package for check X001
// (DESIGN.md §12): suppression directive discipline. X001 diagnostics
// land on the directive's own line, which the directive comment already
// occupies, so expectations here use the harness's `// want-next "..."`
// form (the pattern applies to the line below the want comment) and the
// directives ride as trailing comments.
package x001

// want-next "grlint:allow requires a justification"
var missingJustification = 1 //grlint:allow D001

// want-next "grlint:allow names unknown check \"Z999\""
var unknownCheck = 2 //grlint:allow Z999 -- plausible-looking but no such check is registered

// want-next "grlint:allow names no check IDs"
var noIDs = 3 //grlint:allow -- a justification alone suppresses nothing

var wellFormed = 4 //grlint:allow D001 -- well-formed: at least one known ID and a justification

// grlint:allowed is prose, not a directive (no exact token match), so it
// parses as an ordinary comment and X001 stays silent.
var prose = 5
