// Package w001 is the golden-diagnostic package for check W001
// (DESIGN.md §12): wire decoder error discipline. Only decoder.go is in
// the check's file scope; encoder.go shows write-side code passing.
package w001

import (
	"errors"
	"fmt"
	"io"
)

// ErrFormat is the sentinel every decoder error must wrap.
var ErrFormat = errors.New("w001: malformed stream")

// formatErr is the sanctioned wrapper.
func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

func readMagic(r io.Reader) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err // propagating an existing error passes
	}
	if b[0] != 'G' {
		return formatErr("bad magic %q", b[0]) // the wrapper passes
	}
	return nil
}

func checkCount(n int) error {
	if n < 0 {
		return errors.New("negative count") // want "errors\\.New in a decoder path cannot wrap ErrFormat"
	}
	if n > 1<<20 {
		return fmt.Errorf("count %d out of range", n) // want "fmt\\.Errorf in a decoder path must wrap ErrFormat with %w"
	}
	return nil
}

func explicitWrap(n int) (int, error) {
	if n == 0 {
		return 0, fmt.Errorf("%w: zero count", ErrFormat) // explicit %w of the sentinel passes
	}
	check := func(v int) error {
		if v%2 != 0 {
			return errors.New("odd") // want "errors\\.New in a decoder path cannot wrap ErrFormat"
		}
		return nil
	}
	return n, check(n)
}
