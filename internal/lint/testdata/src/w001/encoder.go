package w001

import "errors"

// encodeGuard lives outside the decoder-path file set: write-side errors
// are the caller's bug, not stream corruption, and need not wrap ErrFormat.
func encodeGuard(closed bool) error {
	if closed {
		return errors.New("w001: write after close")
	}
	return nil
}
