// Package d001 is the golden-diagnostic package for check D001
// (DESIGN.md §12): nondeterminism in trace-affecting packages. Each
// trailing `// want "regex"` comment pins the diagnostic expected on its
// line; lines without one must stay clean.
package d001

import (
	"math/rand"
	"time"
)

func clocks(deadline time.Time) time.Duration {
	start := time.Now()         // want "time\\.Now in trace-affecting package"
	_ = time.Since(start)       // want "time\\.Since in trace-affecting package"
	_ = start.Sub(deadline)     // methods on injected timestamps pass
	return time.Until(deadline) // want "time\\.Until in trace-affecting package"
}

func draws(seeded *rand.Rand) int {
	n := seeded.Intn(10)               // methods on a seeded generator pass
	n += rand.Intn(10)                 // want "package-level math/rand\\.Intn draws from the process-global generator"
	rand.Shuffle(n, func(i, j int) {}) // want "package-level math/rand\\.Shuffle"
	r := rand.New(rand.NewSource(1))   // constructors pass
	return n + r.Intn(10)
}

func folds(m map[int]int, s []int) int {
	total := 0
	for _, v := range m { // want "range over map\\[int\\]int: map iteration order is nondeterministic"
		total += v
	}
	for _, v := range s { // ranging a slice passes
		total += v
	}
	//grlint:allow D001 -- golden: a justified allow on the line above suppresses the diagnostic
	for _, v := range m {
		total += v
	}
	return total
}
