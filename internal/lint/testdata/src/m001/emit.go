package m001

// registered names a family present in the table: pass.
const registered = "graphrealize_test_requests_total"

// unregistered mints a family the table never exposes.
const unregistered = "graphrealize_test_orphans_total" // want "is not registered in the pinned exposition table"

// help is prefix-adjacent prose, not a family name (spaces break the
// family shape), so it passes.
func help() string {
	return "graphrealize test help text"
}
