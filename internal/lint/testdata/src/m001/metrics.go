// Package m001 is the golden-diagnostic package for check M001
// (DESIGN.md §12): metric family registration. This file plays the role
// of the pinned exposition table (the check is configured with TableFile
// "m001/metrics.go"); emit.go holds the out-of-table literals.
package m001

// table is the pinned exposition order: every family named here is
// registered.
func table() []string {
	return []string{
		"graphrealize_test_requests_total",
		"graphrealize_test_active",
		"graphrealize_test_active", // want "appears twice in the exposition table"
	}
}
