// Package g001 is the golden-diagnostic package for check G001
// (DESIGN.md §12): the zero-goroutine flat driver. Roots are the
// functions declared in flat.go; any `go` statement statically reachable
// from a root is a violation.
package g001

// release is a root: it reaches step, which spawns.
func release() {
	step()
}

// fallback is a root too, but its only edge into goroutine land is
// severed by a justified allow, so spawnLegit's `go` stays clean.
func fallback() {
	//grlint:allow G001 -- golden: severed edge; the callee runs only under the goroutine drivers
	spawnLegit()
}

// direct spawns straight from a root.
func direct(done chan struct{}) {
	go func() { close(done) }() // want "go statement in direct, reachable from the flat driver"
}
