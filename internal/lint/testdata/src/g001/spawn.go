package g001

// step is reachable from the root release.
func step() {
	go work() // want "go statement in step, reachable from the flat driver"
}

// work has no go statement of its own; being called from a goroutine is fine.
func work() {}

// spawnLegit is only referenced across the severed edge in fallback, so it
// is unreachable from the flat driver and its spawn is legal.
func spawnLegit() {
	go work()
}

// orphan is never referenced from flat.go at all.
func orphan() {
	go work()
}
