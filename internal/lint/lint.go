// Package lint is grlint's analyzer framework: a dependency-free (go/parser +
// go/ast + go/types + go/importer, no x/tools) suite of repo-specific static
// checks that enforce the invariants the conformance suites otherwise only
// catch dynamically. DESIGN.md §12 is the normative catalog; every check ID
// documented there has a golden testdata package under testdata/src/ and vice
// versa (pinned by TestCheckCatalogConsistency).
//
// A check inspects one or more loaded packages and returns diagnostics. A
// diagnostic at a given file:line is suppressed by a
//
//	//grlint:allow <ID>[ <ID>...] -- <justification>
//
// directive on the same line or on the line directly above; the justification
// after " -- " is mandatory (X001 flags directives without one).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one analyzer. Run receives every loaded package (checks scope
// themselves by package path or file name) and returns its findings.
type Check interface {
	// ID is the stable check identifier (e.g. "D001"), as cataloged in
	// DESIGN.md §12.
	ID() string
	// Doc is a one-line description shown by `grlint -list`.
	Doc() string
	// Run analyzes the loaded packages and returns diagnostics.
	Run(pkgs []*Package) []Diagnostic
}

// Run executes every check over the loaded packages, applies //grlint:allow
// suppression, and returns the surviving diagnostics in deterministic
// file/line/column/check order.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	known := make(map[string]bool, len(checks))
	for _, c := range checks {
		known[c.ID()] = true
	}
	for _, p := range pkgs {
		p.buildAllows(known)
	}
	var out []Diagnostic
	for _, c := range checks {
		for _, d := range c.Run(pkgs) {
			if !allowedAt(pkgs, d.Pos, d.Check) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

func allowedAt(pkgs []*Package, pos token.Position, id string) bool {
	for _, p := range pkgs {
		if p.allowedAt(pos.Filename, pos.Line, id) {
			return true
		}
	}
	return false
}

// KnownIDs returns the sorted IDs of the given checks.
func KnownIDs(checks []Check) []string {
	ids := make([]string, 0, len(checks))
	for _, c := range checks {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	return ids
}
