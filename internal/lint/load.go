package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked (non-test) package.
type Package struct {
	// PkgPath is the import path (module path + relative directory).
	PkgPath string
	// Dir is the absolute directory.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors. Checks still run on the
	// partial Info, but grlint reports them: an unresolved identifier can
	// hide a violation from a type-driven check.
	TypeErrors []error

	// allows maps file → line → check IDs suppressed on that line, built by
	// Run from the //grlint:allow directives (see directive.go).
	allows map[string]map[int]map[string]bool
}

func (p *Package) allowedAt(file string, line int, id string) bool {
	return p.allows[file][line][id]
}

// Loader loads packages from one module using only the standard library.
// One Loader shares a FileSet and a source importer across Load calls, so
// dependencies (stdlib included) are type-checked at most once.
type Loader struct {
	// Root is the module root directory (contains go.mod).
	Root string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader creates a Loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the given patterns ("./...", "./internal/ncc",
// "./internal/...") against the module root and returns the type-checked
// packages in deterministic import-path order. Test files are excluded;
// directories named testdata or vendor, and hidden or underscore
// directories, are skipped by "..." expansion but can still be named
// explicitly (the golden tests load testdata packages that way).
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			dirSet[d] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

func (l *Loader) expand(pattern string) ([]string, error) {
	pat := strings.TrimPrefix(pattern, "./")
	if pat == "" || pat == "." {
		return []string{l.Root}, nil
	}
	recursive := false
	if pat == "..." {
		recursive, pat = true, ""
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	}
	base := filepath.Join(l.Root, filepath.FromSlash(pat))
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("lint: no Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := l.ModulePath
	if rel != "." {
		pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var soft []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { soft = append(soft, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)

	return &Package{
		PkgPath:    pkgPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: soft,
	}, nil
}
