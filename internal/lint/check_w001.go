package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// W001 — wire decoder error discipline.
//
// WIRE.md §7 promises that every malformed-stream error out of the graphwire
// decoder wraps ErrFormat, so callers can errors.Is-classify a framing
// problem (HTTP 400) apart from transport failure (HTTP 5xx). This check
// enforces the promise at construction sites: inside the decoder-path files,
// a return statement may propagate an existing error value, but an error
// *constructed* at the return site must wrap the sentinel — formatErr(...),
// or fmt.Errorf with a %w verb and ErrFormat among the arguments.
// errors.New can never wrap and is always flagged there.
type W001 struct {
	// Pkg is the wire package import path.
	Pkg string
	// Files are the base names of the decoder-path files (the decoder itself
	// plus the shared read-side framing/varint primitives).
	Files []string
	// Sentinel is the base error every format error must wrap ("ErrFormat").
	Sentinel string
	// Wrapper is the sanctioned helper, named in diagnostics ("formatErr").
	Wrapper string
}

func (*W001) ID() string { return "W001" }
func (*W001) Doc() string {
	return "errors constructed in wire decoder paths must wrap ErrFormat (WIRE.md §7)"
}

func (c *W001) Run(pkgs []*Package) []Diagnostic {
	var p *Package
	for _, cand := range pkgs {
		if cand.PkgPath == c.Pkg {
			p = cand
			break
		}
	}
	if p == nil {
		return nil
	}
	inScope := map[string]bool{}
	for _, f := range c.Files {
		inScope[f] = true
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if !inScope[filepath.Base(p.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, c.checkBody(p, fd.Body, fn.Type().(*types.Signature))...)
		}
	}
	return out
}

// checkBody walks one function body, descending into function literals with
// their own signatures, and classifies the error-position expression of
// every return statement.
func (c *W001) checkBody(p *Package, body *ast.BlockStmt, sig *types.Signature) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if litSig, ok := p.Info.Types[n].Type.(*types.Signature); ok {
				out = append(out, c.checkBody(p, n.Body, litSig)...)
			}
			return false
		case *ast.ReturnStmt:
			res := sig.Results()
			if len(n.Results) != res.Len() {
				return true // bare return, or a single multi-value call
			}
			for i := 0; i < res.Len(); i++ {
				if !isErrorType(res.At(i).Type()) {
					continue
				}
				if d, bad := c.classify(p, n.Results[i]); bad {
					out = append(out, d)
				}
			}
		}
		return true
	})
	return out
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// classify inspects one returned error expression. Propagated values
// (identifiers, fields, nil) and calls into same-package helpers pass; a
// fresh construction must wrap the sentinel.
func (c *W001) classify(p *Package, expr ast.Expr) (Diagnostic, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return Diagnostic{}, false
	}
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil {
		return Diagnostic{}, false // dynamic call: a propagated constructor, not a literal construction
	}
	pos := p.Fset.Position(call.Pos())
	switch callee.Pkg().Path() + "." + callee.Name() {
	case "errors.New":
		return Diagnostic{Pos: pos, Check: c.ID(), Message: "errors.New in a decoder path cannot wrap " +
			c.Sentinel + "; use " + c.Wrapper + "(...)"}, true
	case "fmt.Errorf":
		if !c.errorfWraps(call) {
			return Diagnostic{Pos: pos, Check: c.ID(), Message: "fmt.Errorf in a decoder path must wrap " +
				c.Sentinel + " with %w (or use " + c.Wrapper + "(...))"}, true
		}
	}
	return Diagnostic{}, false
}

// errorfWraps reports whether a fmt.Errorf call has a %w verb in a constant
// format string and references the sentinel among its arguments.
func (c *W001) errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.Contains(format, "%w") {
		return false
	}
	for _, arg := range call.Args[1:] {
		switch a := arg.(type) {
		case *ast.Ident:
			if a.Name == c.Sentinel {
				return true
			}
		case *ast.SelectorExpr:
			if a.Sel.Name == c.Sentinel {
				return true
			}
		}
	}
	return false
}
