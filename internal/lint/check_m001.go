package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// M001 — metric family registration.
//
// GET /metrics emits every family from one pinned-order exposition table in
// internal/serve/metrics.go; TestMetricsStableAcrossScrapes relies on that
// single table for scrape stability, and the CI e2e jobs grep families by
// name. A graphrealize_* family name minted anywhere else in non-test code
// is either dead (never exposed) or a second emission site that breaks the
// pinned order — both are flagged. Inside the table itself, a duplicated
// family name (an invalid exposition) is flagged too.
type M001 struct {
	// TableFile is the slash-separated path suffix of the exposition table
	// file ("internal/serve/metrics.go").
	TableFile string
	// Prefix is the metric namespace ("graphrealize_").
	Prefix string
}

func (*M001) ID() string { return "M001" }
func (*M001) Doc() string {
	return "graphrealize_* metric families must be registered in the pinned exposition table (internal/serve/metrics.go)"
}

func (c *M001) Run(pkgs []*Package) []Diagnostic {
	familyRE := regexp.MustCompile("^" + regexp.QuoteMeta(c.Prefix) + "[a-z0-9_]+$")

	// First pass: collect the table. When the run's patterns exclude the
	// table file entirely (a scoped `grlint ./internal/ncc` run), the check
	// has no registry to compare against and stays silent.
	table := map[string]token.Position{}
	var out []Diagnostic
	found := false
	for _, p := range pkgs {
		for _, f := range p.Files {
			if !c.isTableFile(p, f) {
				continue
			}
			found = true
			for _, lit := range stringLiterals(f) {
				name, ok := litValue(lit)
				if !ok || !familyRE.MatchString(name) {
					continue
				}
				if first, dup := table[name]; dup {
					out = append(out, Diagnostic{
						Pos:   p.Fset.Position(lit.Pos()),
						Check: c.ID(),
						Message: "metric family " + strconv.Quote(name) +
							" appears twice in the exposition table (first at " + first.String() + ")",
					})
					continue
				}
				table[name] = p.Fset.Position(lit.Pos())
			}
		}
	}
	if !found {
		return nil
	}

	// Second pass: every family-shaped literal outside the table must be
	// registered in it.
	for _, p := range pkgs {
		for _, f := range p.Files {
			if c.isTableFile(p, f) {
				continue
			}
			for _, lit := range stringLiterals(f) {
				name, ok := litValue(lit)
				if !ok || !familyRE.MatchString(name) {
					continue
				}
				if _, registered := table[name]; !registered {
					out = append(out, Diagnostic{
						Pos:   p.Fset.Position(lit.Pos()),
						Check: c.ID(),
						Message: "metric family " + strconv.Quote(name) +
							" is not registered in the pinned exposition table (" + c.TableFile + ")",
					})
				}
			}
		}
	}
	return out
}

func (c *M001) isTableFile(p *Package, f *ast.File) bool {
	name := filepath.ToSlash(p.Fset.Position(f.Pos()).Filename)
	return strings.HasSuffix(name, c.TableFile)
}

func stringLiterals(f *ast.File) []*ast.BasicLit {
	var lits []*ast.BasicLit
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

func litValue(lit *ast.BasicLit) (string, bool) {
	v, err := strconv.Unquote(lit.Value)
	return v, err == nil
}
