package lint

// defaults.go binds the checks to this repository's layout. DESIGN.md §12 is
// the prose catalog of the same bindings; TestCheckCatalogConsistency pins
// the two (and the golden testdata packages) to each other.

// TracePackages are the packages whose code can affect an engine trace: the
// engine itself plus every protocol package that runs under it (the same set
// the CI resumable-step suite drives). D001 scopes to these.
var TracePackages = []string{
	"graphrealize/internal/ncc",
	"graphrealize/internal/primitives",
	"graphrealize/internal/aggregate",
	"graphrealize/internal/rankov",
	"graphrealize/internal/sortnet",
	"graphrealize/internal/core",
	"graphrealize/internal/trees",
	"graphrealize/internal/connectivity",
}

// RequestPathPackages are the packages where every context must descend from
// the request (C001).
var RequestPathPackages = []string{
	"graphrealize/internal/serve",
	"graphrealize/internal/cluster",
}

// DefaultChecks returns the full suite with its repo bindings.
func DefaultChecks() []Check {
	return []Check{
		&D001{Packages: TracePackages},
		&G001{Pkg: "graphrealize/internal/ncc", RootFiles: []string{"flat.go", "program.go"}},
		&W001{
			Pkg:      "graphrealize/internal/wire",
			Files:    []string{"decoder.go", "wire.go"},
			Sentinel: "ErrFormat",
			Wrapper:  "formatErr",
		},
		&M001{TableFile: "internal/serve/metrics.go", Prefix: "graphrealize_"},
		&C001{Packages: RequestPathPackages},
		&X001{Known: []string{"D001", "G001", "W001", "M001", "C001", "X001"}},
	}
}
