package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// G001 — zero-goroutine flat driver.
//
// The flat scheduler's contract (DESIGN.md §2, PR 6) is that an entire
// simulation runs on a single goroutine: node state between rounds is a
// stored continuation, not a parked stack. This check walks the static
// same-package call graph from every function declared in the flat-driver
// root files (flat.go, program.go) and flags any `go` statement in a
// reachable function.
//
// The traversal over-approximates: any reference to a same-package function
// or method inside a reachable body is an edge, whether or not it is a call
// (a stored function value can be invoked later). It also under-approximates
// at dynamic dispatch: calls through interfaces (Scheduler) or function
// values (Cont, hooks) are not followed — goroutine-spawning scheduler
// implementations live behind exactly that interface seam, by design. A
// deliberate edge out of the zero-goroutine world (RunProgram's fallback to
// Sim.Run on the goroutine drivers) is severed with //grlint:allow G001 on
// the call line.
type G001 struct {
	// Pkg is the engine package import path.
	Pkg string
	// RootFiles are the base names of the flat-driver files whose declared
	// functions seed the traversal.
	RootFiles []string
}

func (*G001) ID() string { return "G001" }
func (*G001) Doc() string {
	return "no go statements reachable from the flat driver's step compilation (flat.go, program.go)"
}

func (c *G001) Run(pkgs []*Package) []Diagnostic {
	var p *Package
	for _, cand := range pkgs {
		if cand.PkgPath == c.Pkg {
			p = cand
			break
		}
	}
	if p == nil {
		return nil
	}
	roots := map[string]bool{}
	for _, f := range c.RootFiles {
		roots[f] = true
	}

	// Index every declared function/method, in deterministic source order.
	var order []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				order = append(order, fn)
			}
		}
	}

	// BFS from the root-file functions, recording a parent edge for the
	// diagnostic's call chain.
	parent := map[*types.Func]*types.Func{}
	seen := map[*types.Func]bool{}
	var queue []*types.Func
	for _, fn := range order {
		file := filepath.Base(p.Fset.Position(decls[fn].Pos()).Filename)
		if roots[file] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}

	var out []Diagnostic
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, Diagnostic{
					Pos:   p.Fset.Position(n.Pos()),
					Check: c.ID(),
					Message: "go statement in " + funcName(fn) +
						", reachable from the flat driver's step path (" + c.chain(parent, fn) + ")",
				})
			case *ast.Ident:
				callee, ok := p.Info.Uses[n].(*types.Func)
				if !ok || seen[callee] {
					return true
				}
				if _, declared := decls[callee]; !declared {
					return true // other package, interface method, or builtin
				}
				pos := p.Fset.Position(n.Pos())
				if p.allowedAt(pos.Filename, pos.Line, c.ID()) {
					return true // deliberate edge out, severed with a justification
				}
				seen[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
			return true
		})
	}
	return out
}

// chain renders the BFS path root → ... → fn.
func (c *G001) chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	names := []string{funcName(fn)}
	for i := 0; i < 16; i++ {
		up, ok := parent[fn]
		if !ok {
			break
		}
		names = append(names, funcName(up))
		fn = up
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// funcName renders "(*T).m" for methods and "f" for functions.
func funcName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return "(" + types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + ")." + fn.Name()
}
