package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive.go parses the //grlint:allow suppression directive:
//
//	//grlint:allow D001 -- profiling-only clock read, proven trace-inert
//	//grlint:allow D001 G001 -- one justification may cover several checks
//
// The IDs before " -- " name the checks being suppressed; the non-empty text
// after it is the mandatory justification. A directive suppresses matching
// diagnostics on its own line (trailing comment) and on the line directly
// below (comment line above the offending statement). Directives with no
// justification, no IDs, or unknown IDs are flagged by X001 and suppress
// nothing.

const allowPrefix = "//grlint:allow"

// directive is one parsed //grlint:allow comment line.
type directive struct {
	pos token.Position
	// ids are the check IDs named before " -- ".
	ids []string
	// justification is the text after " -- ", empty if absent.
	justification string
	// hasSep reports whether the " -- " separator was present at all.
	hasSep bool
}

// fileDirectives scans every comment line of f for grlint:allow directives.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			// Require an exact "//grlint:allow" token: "//grlint:allowed" is
			// not a directive.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			d := directive{pos: fset.Position(c.Pos())}
			head, tail, found := strings.Cut(rest, " -- ")
			d.hasSep = found
			d.justification = strings.TrimSpace(tail)
			for _, id := range strings.FieldsFunc(head, func(r rune) bool {
				return r == ' ' || r == '\t' || r == ','
			}) {
				d.ids = append(d.ids, id)
			}
			out = append(out, d)
		}
	}
	return out
}

// valid reports whether the directive is well-formed against the known check
// IDs: at least one ID, every ID known, and a non-empty justification.
func (d directive) valid(known map[string]bool) bool {
	if len(d.ids) == 0 || d.justification == "" {
		return false
	}
	for _, id := range d.ids {
		if !known[id] {
			return false
		}
	}
	return true
}

// buildAllows indexes every well-formed directive in the package by
// (file, line, check ID). Malformed directives are excluded — X001 reports
// them instead.
func (p *Package) buildAllows(known map[string]bool) {
	p.allows = map[string]map[int]map[string]bool{}
	add := func(file string, line int, id string) {
		byLine := p.allows[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			p.allows[file] = byLine
		}
		ids := byLine[line]
		if ids == nil {
			ids = map[string]bool{}
			byLine[line] = ids
		}
		ids[id] = true
	}
	for _, f := range p.Files {
		for _, d := range fileDirectives(p.Fset, f) {
			if !d.valid(known) {
				continue
			}
			for _, id := range d.ids {
				add(d.pos.Filename, d.pos.Line, id)
				add(d.pos.Filename, d.pos.Line+1, id)
			}
		}
	}
}
