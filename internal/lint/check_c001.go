package lint

import (
	"go/ast"
	"go/types"
)

// C001 — context discipline in request paths.
//
// internal/serve and internal/cluster handle requests end to end: admission
// timeouts, engine cancellation at the round barrier, and cluster proxy
// hops all hang off the request's context. A context.Background() or
// context.TODO() minted inside those packages detaches the downstream work
// from the caller — a canceled client keeps burning a worker, and a proxied
// job outlives the coordinator request that carried it. Contexts must flow
// in from the request (or from the owning component's lifecycle context,
// threaded through construction); process-lifecycle roots in cmd/ main
// functions are out of scope.
type C001 struct {
	// Packages are the request-path package import paths.
	Packages []string
}

func (*C001) ID() string { return "C001" }
func (*C001) Doc() string {
	return "no context.Background()/context.TODO() in serve/cluster request paths; contexts flow from the request"
}

func (c *C001) Run(pkgs []*Package) []Diagnostic {
	scope := map[string]bool{}
	for _, p := range c.Packages {
		scope[p] = true
	}
	var out []Diagnostic
	for _, p := range pkgs {
		if !scope[p.PkgPath] {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					out = append(out, Diagnostic{
						Pos:   p.Fset.Position(sel.Sel.Pos()),
						Check: c.ID(),
						Message: "context." + name + " in request-path package " + p.PkgPath +
							": derive the context from the request (or the component's lifecycle context)",
					})
				}
				return true
			})
		}
	}
	return out
}
