package lint

import (
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// One Loader (FileSet + source importer) is shared across all golden tests:
// stdlib dependencies are type-checked once instead of once per check.
var (
	loaderOnce sync.Once
	sharedLd   *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLd, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLd
}

// loadGolden loads one testdata/src package by explicit path (the "..."
// walker skips testdata directories; naming them directly is the sanctioned
// way in).
func loadGolden(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := testLoader(t).Load([]string{"./internal/lint/testdata/src/" + name})
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(pkgs))
	}
	for _, terr := range pkgs[0].TypeErrors {
		t.Errorf("golden package %s has a type error: %v", name, terr)
	}
	return pkgs
}

// want is one expected diagnostic, declared in the golden source as a
//
//	// want "<regex>"       — expected on the comment's own line
//	// want-next "<regex>"  — expected on the line below (for diagnostics
//	                          that land on a comment line, e.g. X001)
//
// The quoted pattern uses Go string escaping (\\. for a literal dot, \" for
// a quote) and is matched against "CHECK: message".
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`^// want(-next)? "(.+)"$`)

func collectWants(t *testing.T, p *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(`"` + m[2] + `"`)
				if err != nil {
					t.Fatalf("%s: malformed want pattern %q: %v", p.Fset.Position(c.Pos()), m[2], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: want pattern does not compile: %v", p.Fset.Position(c.Pos()), err)
				}
				pos := p.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] == "-next" {
					line++
				}
				out = append(out, &want{file: pos.Filename, line: line, re: re, raw: pat})
			}
		}
	}
	return out
}

// checkGolden runs the checks over the golden package and requires an exact
// match between produced diagnostics and want declarations: every diagnostic
// must satisfy a want on its file:line, and every want must be hit.
func checkGolden(t *testing.T, pkgs []*Package, checks []Check) {
	t.Helper()
	wants := collectWants(t, pkgs[0])
	for _, d := range Run(pkgs, checks) {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Check + ": " + d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no diagnostic matched", w.file, w.line, w.raw)
		}
	}
}

func TestGoldenD001(t *testing.T) {
	pkgs := loadGolden(t, "d001")
	checkGolden(t, pkgs, []Check{&D001{Packages: []string{pkgs[0].PkgPath}}})
}

func TestGoldenG001(t *testing.T) {
	pkgs := loadGolden(t, "g001")
	checkGolden(t, pkgs, []Check{&G001{Pkg: pkgs[0].PkgPath, RootFiles: []string{"flat.go"}}})
}

func TestGoldenW001(t *testing.T) {
	pkgs := loadGolden(t, "w001")
	checkGolden(t, pkgs, []Check{&W001{
		Pkg:      pkgs[0].PkgPath,
		Files:    []string{"decoder.go"},
		Sentinel: "ErrFormat",
		Wrapper:  "formatErr",
	}})
}

func TestGoldenM001(t *testing.T) {
	pkgs := loadGolden(t, "m001")
	checkGolden(t, pkgs, []Check{&M001{TableFile: "m001/metrics.go", Prefix: "graphrealize_"}})
}

func TestGoldenC001(t *testing.T) {
	pkgs := loadGolden(t, "c001")
	checkGolden(t, pkgs, []Check{&C001{Packages: []string{pkgs[0].PkgPath}}})
}

func TestGoldenX001(t *testing.T) {
	pkgs := loadGolden(t, "x001")
	checkGolden(t, pkgs, []Check{&X001{Known: KnownIDs(DefaultChecks())}})
}

// TestGoldenScopedRunStaysSilent pins the scoped-run behavior of the suite:
// checks bound to packages or files absent from the load set produce nothing,
// so `grlint ./internal/lint/...` style partial runs cannot false-positive.
func TestGoldenScopedRunStaysSilent(t *testing.T) {
	pkgs := loadGolden(t, "c001") // any golden package outside every binding
	if diags := Run(pkgs, DefaultChecks()); len(diags) != 0 {
		t.Fatalf("default suite on an out-of-scope package produced %d diagnostics, first: %s",
			len(diags), diags[0])
	}
}
