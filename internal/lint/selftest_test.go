package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The self-test injects a violation into a scratch module and proves the
// suite fails on it — and that a justified //grlint:allow makes the same
// code pass. CI repeats the exercise at the binary level (a scratch file
// dropped into internal/core must make `go run ./cmd/grlint` exit non-zero).

const selftestClock = `package proto

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

const selftestAllowed = `package proto

import "time"

func Stamp() int64 {
	//grlint:allow D001 -- self-test: proves a justified allow suppresses the injected violation
	return time.Now().UnixNano()
}
`

func writeScratchModule(t *testing.T, dir, protoSrc string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "proto"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "proto", "proto.go"), []byte(protoSrc), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runScratch(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	ld, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := ld.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	checks := []Check{
		&D001{Packages: []string{"scratch/proto"}},
		&X001{Known: KnownIDs(DefaultChecks())},
	}
	return Run(pkgs, checks)
}

func TestSelfTestInjectedViolationFails(t *testing.T) {
	dir := t.TempDir()
	writeScratchModule(t, dir, selftestClock)
	diags := runScratch(t, dir)
	if len(diags) != 1 {
		t.Fatalf("injected time.Now: got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "D001" || !strings.Contains(d.Message, "time.Now") {
		t.Fatalf("injected time.Now: got %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "proto.go" || d.Pos.Line != 6 {
		t.Fatalf("diagnostic position: got %s:%d, want proto.go:6", d.Pos.Filename, d.Pos.Line)
	}
}

func TestSelfTestJustifiedAllowSuppresses(t *testing.T) {
	dir := t.TempDir()
	writeScratchModule(t, dir, selftestAllowed)
	if diags := runScratch(t, dir); len(diags) != 0 {
		t.Fatalf("allowed time.Now: got %d diagnostics, want 0: %v", len(diags), diags)
	}
}
