package rankov

import (
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// buildOverlay gives every node an overlay over the Gk path itself (rank =
// path position), which is a perfectly good ranked path for testing.
func buildOverlay(nd *ncc.Node) (*Overlay, *primitives.Tree) {
	p, _, tree := primitives.BuildAll(nd)
	ov := Build(nd, tree.Pos, p.Pred, p.Succ)
	return ov, &tree
}

func TestPrefixSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 64, 100, 257} {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n) + 1, Strict: true})
		tr, err := s.Run(func(nd *ncc.Node) {
			ov, _ := buildOverlay(nd)
			v := int64(ov.Rank + 1)
			nd.SetOutput("prefix", PrefixSum(nd, ov, v))
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, id := range tr.IDs {
			want := int64((i + 1) * (i + 2) / 2)
			if v, _ := tr.Output(id, "prefix"); v != want {
				t.Fatalf("n=%d: prefix at rank %d = %d, want %d", n, i, v, want)
			}
		}
	}
}

func TestDisseminateSingleRange(t *testing.T) {
	n := 100
	s := ncc.New(ncc.Config{N: n, Seed: 5, Strict: true})
	lo, hi := 13, 77
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, gk := buildOverlay(nd)
		var job *Job
		if ov.Rank == 2 { // initiator well before the range
			job = &Job{Val: 4242, Payload: nd.ID(), Lo: lo, Hi: hi}
		}
		got := Disseminate(nd, ov, gk, job)
		nd.SetOutput("n", int64(len(got)))
		if len(got) == 1 {
			nd.SetOutput("val", got[0].Val)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		v, _ := tr.Output(id, "n")
		want := int64(0)
		if i >= lo && i <= hi {
			want = 1
		}
		if v != want {
			t.Fatalf("rank %d received %d jobs, want %d", i, v, want)
		}
		if want == 1 {
			if val, _ := tr.Output(id, "val"); val != 4242 {
				t.Fatalf("rank %d token = %d", i, val)
			}
		}
	}
}

func TestDisseminateDisjointRanges(t *testing.T) {
	// Every rank divisible by 10 covers the next 9 ranks — the exact group
	// pattern of Algorithm 3.
	n := 128
	s := ncc.New(ncc.Config{N: n, Seed: 6, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, gk := buildOverlay(nd)
		var job *Job
		if ov.Rank%10 == 0 && ov.Rank+9 < n {
			job = &Job{Val: int64(ov.Rank), Payload: nd.ID(), Lo: ov.Rank + 1, Hi: ov.Rank + 9}
		}
		got := Disseminate(nd, ov, gk, job)
		if len(got) > 1 {
			panic("node in two disjoint ranges")
		}
		if len(got) == 1 {
			nd.SetOutput("from", got[0].Val)
			nd.SetOutput("fromID", int64(got[0].Payload))
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		group := (i / 10) * 10
		inRange := i%10 != 0 && group+9 < n
		v, ok := tr.Output(id, "from")
		if inRange {
			if !ok || v != int64(group) {
				t.Fatalf("rank %d got group %d (ok=%v), want %d", i, v, ok, group)
			}
			fid, _ := tr.Output(id, "fromID")
			if ncc.ID(fid) != tr.IDs[group] {
				t.Fatalf("rank %d payload %d, want center %d", i, fid, tr.IDs[group])
			}
		} else if ok {
			t.Fatalf("rank %d unexpectedly received a job", i)
		}
	}
}

func TestDisseminateAdaptiveTermination(t *testing.T) {
	// A very long route (rank 0 → lone target at rank n-1) must still
	// terminate, exercising the multi-epoch quiescence path.
	n := 200
	s := ncc.New(ncc.Config{N: n, Seed: 8, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, gk := buildOverlay(nd)
		var job *Job
		if ov.Rank == 0 {
			job = &Job{Val: 1, Lo: n - 1, Hi: n - 1}
		}
		got := Disseminate(nd, ov, gk, job)
		nd.SetOutput("n", int64(len(got)))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v, _ := tr.Output(tr.IDs[n-1], "n"); v != 1 {
		t.Fatal("long route not delivered")
	}
}

func TestShiftDown(t *testing.T) {
	for _, dist := range []int{1, 2, 3, 5, 8, 17} {
		n := 50
		s := ncc.New(ncc.Config{N: n, Seed: int64(dist), Strict: true})
		tr, err := s.Run(func(nd *ncc.Node) {
			ov, _ := buildOverlay(nd)
			var tok *ShiftToken
			if ov.Rank >= dist {
				tok = &ShiftToken{A: int64(ov.Rank), ID: nd.ID()}
			}
			got := ShiftDown(nd, ov, tok, dist)
			if len(got) > 1 {
				panic("uniform shift collided")
			}
			if len(got) == 1 {
				nd.SetOutput("from", got[0].A)
				nd.SetOutput("fromID", int64(got[0].ID))
			}
		})
		if err != nil {
			t.Fatalf("dist=%d: %v", dist, err)
		}
		for i, id := range tr.IDs {
			v, ok := tr.Output(id, "from")
			if i+dist < n {
				if !ok || v != int64(i+dist) {
					t.Fatalf("dist=%d: rank %d got token from %d (ok=%v), want %d", dist, i, v, ok, i+dist)
				}
				fid, _ := tr.Output(id, "fromID")
				if ncc.ID(fid) != tr.IDs[i+dist] {
					t.Fatalf("dist=%d: rank %d payload ID mismatch", dist, i)
				}
			} else if ok {
				t.Fatalf("dist=%d: rank %d unexpectedly received a token", dist, i)
			}
		}
	}
}

func TestShiftUp(t *testing.T) {
	n, dist := 40, 7
	s := ncc.New(ncc.Config{N: n, Seed: 11, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, _ := buildOverlay(nd)
		var tok *ShiftToken
		if ov.Rank+dist < n {
			tok = &ShiftToken{A: int64(ov.Rank)}
		}
		got := ShiftUp(nd, ov, tok, dist)
		if len(got) == 1 {
			nd.SetOutput("from", got[0].A)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		v, ok := tr.Output(id, "from")
		if i >= dist {
			if !ok || v != int64(i-dist) {
				t.Fatalf("rank %d got %d (ok=%v), want %d", i, v, ok, i-dist)
			}
		} else if ok {
			t.Fatalf("rank %d unexpectedly received", i)
		}
	}
}

func TestShiftRoundsAreLogN(t *testing.T) {
	n := 256
	s := ncc.New(ncc.Config{N: n, Seed: 13, Strict: true})
	var setupRounds int
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, _ := buildOverlay(nd)
		if ov.Rank == 0 {
			setupRounds = nd.Round()
		}
		var tok *ShiftToken
		if ov.Rank >= 100 {
			tok = &ShiftToken{A: 1}
		}
		ShiftDown(nd, ov, tok, 100)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	K := ncc.CeilLog2(n)
	if tr.Metrics.Rounds-setupRounds > K {
		t.Fatalf("shift took %d rounds, want ≤ %d", tr.Metrics.Rounds-setupRounds, K)
	}
}

func TestDisseminateInitiatorInsideRange(t *testing.T) {
	// The initiator may own rank Lo itself: it must self-deliver.
	n := 30
	s := ncc.New(ncc.Config{N: n, Seed: 21, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, gk := buildOverlay(nd)
		var job *Job
		if ov.Rank == 5 {
			job = &Job{Val: 77, Lo: 5, Hi: 9}
		}
		got := Disseminate(nd, ov, gk, job)
		nd.SetOutput("n", int64(len(got)))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 5; i <= 9; i++ {
		if v, _ := tr.Output(tr.IDs[i], "n"); v != 1 {
			t.Fatalf("rank %d got %d deliveries", i, v)
		}
	}
}

func TestPrefixSumNegativeValues(t *testing.T) {
	n := 20
	s := ncc.New(ncc.Config{N: n, Seed: 23, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		ov, _ := buildOverlay(nd)
		v := int64(1)
		if ov.Rank%2 == 1 {
			v = -1
		}
		nd.SetOutput("p", PrefixSum(nd, ov, v))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, id := range tr.IDs {
		want := int64((i+2)/2 - (i+1)/2)
		_ = want
		// inclusive prefix of +1,-1,+1,... = 1 if even index else 0
		exp := int64(0)
		if i%2 == 0 {
			exp = 1
		}
		if v, _ := tr.Output(id, "p"); v != exp {
			t.Fatalf("rank %d prefix %d, want %d", i, v, exp)
		}
	}
}
