// Package rankov provides rank-addressed communication over a sorted path:
// after the sorting step of §3.1.2 each node knows its rank and its
// neighbors in sorted order, and BuildLevels gives it links to the nodes at
// rank ± 2^j (the structure L on the sorted path). On top of those doubling
// links this package implements the communication patterns the realization
// algorithms of §§4–6 actually use:
//
//   - RangeBroadcast: deliver a token to every rank in a contiguous interval
//     by recursive halving — the paper's "smaller instance of the global
//     broadcast problem" used for multicast groups of consecutive nodes.
//   - PrefixSum: the Hillis–Steele doubling scan used for the pᵢ prefix sums
//     of Algorithms 4 and 5.
//   - ShiftDown/ShiftUp: uniform-distance token shifts used by the second
//     phase of Algorithm 6 — every carrier moves its token the same
//     distance, so relays carry at most one token per step and the pattern
//     is congestion-free.
//
// All primitives are lockstep and take a deterministic number of rounds,
// except Disseminate whose routing prologue is adaptive (quiescence is
// detected by aggregation over the Gk tree).
package rankov

import (
	"sort"

	"graphrealize/internal/aggregate"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Message kinds used by this package (0x50–0x6F block).
const (
	kPacket uint8 = 0x50 + iota
	kScan
	kShift
)

// Overlay is a node's view of a ranked path: its rank, and doubling links
// Pred[j]/Succ[j] to the holders of rank ∓/± 2^j.
type Overlay struct {
	Rank int
	N    int
	Lv   primitives.Levels
}

// BuildStep constructs the overlay from sorted-path links by running the
// structure-L construction on the sorted path.
//
// Rounds: exactly ⌈log₂ n⌉.
func BuildStep(nd *ncc.Node, rank int, pred, succ ncc.ID, k func(*Overlay) ncc.Op) ncc.Op {
	return primitives.BuildLevelsStep(nd, primitives.Path{Pred: pred, Succ: succ}, func(lv primitives.Levels) ncc.Op {
		return k(&Overlay{Rank: rank, N: nd.N(), Lv: lv})
	})
}

// Build is the blocking form of BuildStep.
func Build(nd *ncc.Node, rank int, pred, succ ncc.ID) *Overlay {
	var out *Overlay
	ncc.RunOps(nd, BuildStep(nd, rank, pred, succ, func(ov *Overlay) ncc.Op { out = ov; return ncc.Done() }))
	return out
}

// succAt returns the link to rank+2^j, or None.
func (o *Overlay) succAt(j int) ncc.ID {
	if j > o.Lv.Top() {
		return ncc.None
	}
	return o.Lv.Succ[j]
}

// predAt returns the link to rank−2^j, or None.
func (o *Overlay) predAt(j int) ncc.ID {
	if j > o.Lv.Top() {
		return ncc.None
	}
	return o.Lv.Pred[j]
}

// Job is a token destined for every rank in [Lo, Hi]. Val is an arbitrary
// scalar and Payload an optional ID (typically "store this neighbor").
type Job struct {
	Val     int64
	Payload ncc.ID
	Lo, Hi  int
}

// DisseminateStep routes each initiator's Job to rank Lo (greedy doubling
// descent) and then floods it across [Lo, Hi] by recursive halving. Multiple
// jobs may run concurrently; the intervals the realization algorithms use
// are disjoint, which keeps the halving phase congestion-free, and the
// routing prologue's congestion is recorded by the simulator's metrics.
// Non-initiators pass nil. k receives the jobs delivered to this node's rank.
//
// Termination is adaptive: the caller's Gk tree is used to detect global
// quiescence, so the protocol costs O(log n) rounds per quiescence epoch and
// one aggregation per check.
func DisseminateStep(nd *ncc.Node, ov *Overlay, gk *primitives.Tree, job *Job, k func([]Job) ncc.Op) ncc.Op {
	var queue []Job
	var delivered []Job
	if job != nil {
		queue = append(queue, *job)
	}
	K := ncc.CeilLog2(nd.N())
	epoch := 2*K + 4
	var epochLoop func() ncc.Op
	var roundLoop func(r int) ncc.Op
	roundLoop = func(r int) ncc.Op {
		if r >= epoch {
			busy := int64(0)
			if len(queue) > 0 {
				busy = 1
			}
			return aggregate.AggregateBroadcastStep(nd, gk, busy, aggregate.OrOp(), func(v int64) ncc.Op {
				if v == 0 {
					return k(delivered)
				}
				return epochLoop()
			})
		}
		for _, j := range queue {
			processPacket(nd, ov, j, &delivered)
		}
		queue = queue[:0]
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				if m.Kind != kPacket {
					continue
				}
				j := Job{Val: m.A, Lo: int(m.B), Hi: int(m.C)}
				if len(m.IDs) > 0 {
					j.Payload = m.IDs[0]
				}
				queue = append(queue, j)
			}
			return roundLoop(r + 1)
		})
	}
	epochLoop = func() ncc.Op { return roundLoop(0) }
	return epochLoop()
}

// Disseminate is the blocking form of DisseminateStep.
func Disseminate(nd *ncc.Node, ov *Overlay, gk *primitives.Tree, job *Job) []Job {
	var out []Job
	ncc.RunOps(nd, DisseminateStep(nd, ov, gk, job, func(js []Job) ncc.Op { out = js; return ncc.Done() }))
	return out
}

// processPacket advances one job at this node: route toward Lo if we are
// before the interval, or deliver and issue all halving delegations for the
// remainder of the interval if we own Lo. Every outcome is an immediate
// send, so nothing is requeued locally.
func processPacket(nd *ncc.Node, ov *Overlay, j Job, delivered *[]Job) {
	r := ov.Rank
	switch {
	case r < j.Lo:
		// Greedy descent toward Lo: the largest jump not overshooting.
		d := j.Lo - r
		jj := bitLen(d) - 1
		dst := ov.succAt(jj)
		if dst == ncc.None {
			panic("rankov: missing forward link during routing")
		}
		sendJob(nd, dst, j)
	case r > j.Lo:
		panic("rankov: packet routed past its interval")
	default: // r == j.Lo
		*delivered = append(*delivered, j)
		// Recursive halving: delegate [r+2^t, Hi] for decreasing t.
		hi := j.Hi
		for hi > r {
			d := hi - r
			t := bitLen(d) - 1
			dst := ov.succAt(t)
			if dst == ncc.None {
				panic("rankov: missing halving link")
			}
			sendJob(nd, dst, Job{Val: j.Val, Payload: j.Payload, Lo: r + 1<<t, Hi: hi})
			hi = r + 1<<t - 1
		}
	}
}

func sendJob(nd *ncc.Node, dst ncc.ID, j Job) {
	m := ncc.Message{Kind: kPacket, A: j.Val, B: int64(j.Lo), C: int64(j.Hi)}
	if j.Payload != ncc.None {
		m.IDs = []ncc.ID{j.Payload}
	}
	nd.Send(dst, m)
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// PrefixSumStep delivers the inclusive prefix sum of value over ranks 0..Rank
// via the Hillis–Steele doubling scan: in step j, every node passes its
// accumulator to rank+2^j and folds in the accumulator from rank−2^j.
//
// Rounds: exactly ⌈log₂ n⌉; ≤ 1 send and 1 receive per node per round.
func PrefixSumStep(nd *ncc.Node, ov *Overlay, value int64, k func(int64) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(ov.N)
	acc := value
	var scan func(j int) ncc.Op
	scan = func(j int) ncc.Op {
		if j >= K {
			return k(acc)
		}
		if dst := ov.succAt(j); dst != ncc.None {
			nd.Send(dst, ncc.Message{Kind: kScan, A: acc})
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				if m.Kind == kScan {
					acc += m.A
				}
			}
			return scan(j + 1)
		})
	}
	return scan(0)
}

// PrefixSum is the blocking form of PrefixSumStep.
func PrefixSum(nd *ncc.Node, ov *Overlay, value int64) int64 {
	var out int64
	ncc.RunOps(nd, PrefixSumStep(nd, ov, value, func(v int64) ncc.Op { out = v; return ncc.Done() }))
	return out
}

// ShiftToken is the payload moved by ShiftDown/ShiftUp.
type ShiftToken struct {
	A, B int64
	ID   ncc.ID
}

// ShiftDown moves every carrier's token from rank r to rank r−dist; tokens
// whose destination would be negative must not be injected by the caller.
// dist must be common knowledge (same at every node). Because the shift is
// uniform, intermediate positions never collide: each node relays at most
// one token per step.
//
// Rounds: exactly ⌈log₂ n⌉ (one per bit of dist, missing bits idle).
func ShiftDown(nd *ncc.Node, ov *Overlay, tok *ShiftToken, dist int) []ShiftToken {
	var out []ShiftToken
	ncc.RunOps(nd, shiftStep(nd, ov, tok, dist, false, func(ts []ShiftToken) ncc.Op { out = ts; return ncc.Done() }))
	return out
}

// ShiftUp moves every carrier's token from rank r to rank r+dist.
func ShiftUp(nd *ncc.Node, ov *Overlay, tok *ShiftToken, dist int) []ShiftToken {
	var out []ShiftToken
	ncc.RunOps(nd, shiftStep(nd, ov, tok, dist, true, func(ts []ShiftToken) ncc.Op { out = ts; return ncc.Done() }))
	return out
}

// ShiftDownStep is the resumable form of ShiftDown.
func ShiftDownStep(nd *ncc.Node, ov *Overlay, tok *ShiftToken, dist int, k func([]ShiftToken) ncc.Op) ncc.Op {
	return shiftStep(nd, ov, tok, dist, false, k)
}

// ShiftUpStep is the resumable form of ShiftUp.
func ShiftUpStep(nd *ncc.Node, ov *Overlay, tok *ShiftToken, dist int, k func([]ShiftToken) ncc.Op) ncc.Op {
	return shiftStep(nd, ov, tok, dist, true, k)
}

func shiftStep(nd *ncc.Node, ov *Overlay, tok *ShiftToken, dist int, up bool, k func([]ShiftToken) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(ov.N)
	var carrying []ShiftToken
	if tok != nil {
		carrying = append(carrying, *tok)
	}
	var bit func(b int) ncc.Op
	bit = func(b int) ncc.Op {
		if b >= K {
			return k(append([]ShiftToken(nil), carrying...))
		}
		if dist&(1<<b) != 0 {
			var dst ncc.ID
			if up {
				dst = ov.succAt(b)
			} else {
				dst = ov.predAt(b)
			}
			for _, tk := range carrying {
				if dst == ncc.None {
					panic("rankov: shift over the edge of the path")
				}
				m := ncc.Message{Kind: kShift, A: tk.A, B: tk.B}
				if tk.ID != ncc.None {
					m.IDs = []ncc.ID{tk.ID}
				}
				nd.Send(dst, m)
			}
			carrying = carrying[:0]
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				if m.Kind != kShift {
					continue
				}
				tk := ShiftToken{A: m.A, B: m.B}
				if len(m.IDs) > 0 {
					tk.ID = m.IDs[0]
				}
				carrying = append(carrying, tk)
			}
			return bit(b + 1)
		})
	}
	return bit(0)
}

// SortedNeighbors is a convenience for tests: given per-rank values it
// returns the ranks sorted (used only in verification helpers).
func SortedNeighbors(vals []int) []int {
	out := append([]int(nil), vals...)
	sort.Ints(out)
	return out
}
