package rankov

import (
	"reflect"
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// step_test.go checks the resumable-step compilation of the ranked-overlay
// protocols: Build → PrefixSum → Disseminate → ShiftDown/ShiftUp compiled
// into continuations and driven by the flat scheduler must produce traces
// byte-identical to the blocking chain under the barrier driver.

// buildOverlayStep is the step form of the test overlay: rank = Gk position,
// exactly as buildOverlay in rankov_test.go.
func buildOverlayStep(nd *ncc.Node, k func(*Overlay, *primitives.Tree) ncc.Op) ncc.Op {
	return primitives.BuildAllStep(nd, func(p primitives.Path, _ primitives.Levels, tree primitives.Tree) ncc.Op {
		return BuildStep(nd, tree.Pos, p.Pred, p.Succ, func(ov *Overlay) ncc.Op {
			return k(ov, &tree)
		})
	})
}

func TestOverlayStepsMatchBlocking(t *testing.T) {
	for _, n := range []int{1, 2, 9, 40} {
		seed := int64(n)*23 + 7
		lo, hi := 1, n-2 // dissemination range; used only when n ≥ 4
		sb := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true})
		base, err := sb.Run(func(nd *ncc.Node) {
			ov, gk := buildOverlay(nd)
			prefix := PrefixSum(nd, ov, int64(ov.Rank+1))
			nd.SetOutput("prefix", prefix)
			if n >= 4 {
				var job *Job
				if ov.Rank == 0 {
					job = &Job{Val: 99, Payload: nd.ID(), Lo: lo, Hi: hi}
				}
				got := Disseminate(nd, ov, gk, job)
				nd.SetOutput("jobs", int64(len(got)))
			}
			var dtok, utok *ShiftToken
			if ov.Rank%2 == 0 && ov.Rank > 0 {
				dtok = &ShiftToken{ID: nd.ID()}
			}
			if ov.Rank%2 == 0 && ov.Rank+1 < n {
				utok = &ShiftToken{ID: nd.ID()}
			}
			down := ShiftDown(nd, ov, dtok, 1)
			up := ShiftUp(nd, ov, utok, 1)
			nd.SetOutput("down", int64(len(down)))
			nd.SetOutput("up", int64(len(up)))
		})
		if err != nil {
			t.Fatalf("n=%d blocking: %v", n, err)
		}
		sf := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Sched: ncc.SchedFlat})
		flat, err := sf.RunProgram(func(nd *ncc.Node) ncc.Op {
			return buildOverlayStep(nd, func(ov *Overlay, gk *primitives.Tree) ncc.Op {
				return PrefixSumStep(nd, ov, int64(ov.Rank+1), func(prefix int64) ncc.Op {
					nd.SetOutput("prefix", prefix)
					shifts := func() ncc.Op {
						var dtok, utok *ShiftToken
						if ov.Rank%2 == 0 && ov.Rank > 0 {
							dtok = &ShiftToken{ID: nd.ID()}
						}
						if ov.Rank%2 == 0 && ov.Rank+1 < n {
							utok = &ShiftToken{ID: nd.ID()}
						}
						return ShiftDownStep(nd, ov, dtok, 1, func(down []ShiftToken) ncc.Op {
							return ShiftUpStep(nd, ov, utok, 1, func(up []ShiftToken) ncc.Op {
								nd.SetOutput("down", int64(len(down)))
								nd.SetOutput("up", int64(len(up)))
								return ncc.Done()
							})
						})
					}
					if n < 4 {
						return shifts()
					}
					var job *Job
					if ov.Rank == 0 {
						job = &Job{Val: 99, Payload: nd.ID(), Lo: lo, Hi: hi}
					}
					return DisseminateStep(nd, ov, gk, job, func(got []Job) ncc.Op {
						nd.SetOutput("jobs", int64(len(got)))
						return shifts()
					})
				})
			})
		})
		if err != nil {
			t.Fatalf("n=%d flat: %v", n, err)
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("n=%d: flat step trace differs from blocking barrier trace", n)
		}
	}
}
