package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"graphrealize"
)

// JoinConfig assembles a worker-side Joiner.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL (grserved -join); required.
	Coordinator string
	// Name is the worker's stable cluster identity; required. Renaming a
	// worker moves its rendezvous shard (CLUSTER.md §4).
	Name string
	// Advertise is the base URL the coordinator reaches this worker at;
	// required.
	Advertise string
	// Capacity is the advertised worker-pool size (informational).
	Capacity int
	// Interval is the heartbeat period (default 1s). It must stay well
	// under the coordinator's SuspectAfter (CLUSTER.md §3.1 requires
	// SuspectAfter ≥ 2×Interval for a loss-free link to stay alive).
	Interval time.Duration
	// Stats, when non-nil, supplies the load snapshot each heartbeat
	// carries.
	Stats func() graphrealize.RunnerStats
	// Client issues coordinator requests (nil = http.DefaultClient).
	Client *http.Client
	// Logf, when non-nil, receives one line per state change.
	Logf func(format string, args ...any)
}

// Joiner is the worker half of the control plane: it registers with the
// coordinator and then heartbeats until its context ends, re-registering
// whenever the coordinator answers 404 — the recovery path for a
// coordinator restart or a liveness expiry (CLUSTER.md §2.3).
type Joiner struct {
	cfg JoinConfig
}

// NewJoiner validates the config and creates a Joiner.
func NewJoiner(cfg JoinConfig) (*Joiner, error) {
	if cfg.Coordinator == "" || cfg.Name == "" || cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: join needs coordinator, name, and advertise URLs (got %q, %q, %q)",
			cfg.Coordinator, cfg.Name, cfg.Advertise)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Joiner{cfg: cfg}, nil
}

// Run registers and heartbeats until ctx ends. Failures never abort the
// loop: an unreachable coordinator is retried every Interval, so a worker
// started before its coordinator joins as soon as the coordinator is up.
func (jn *Joiner) Run(ctx context.Context) {
	registered := false
	ticker := time.NewTicker(jn.cfg.Interval)
	defer ticker.Stop()
	for {
		if !registered {
			if err := jn.register(ctx); err != nil {
				jn.cfg.Logf("cluster: register with %s failed: %v (retrying)", jn.cfg.Coordinator, err)
			} else {
				jn.cfg.Logf("cluster: registered with %s as %s (%s)", jn.cfg.Coordinator, jn.cfg.Name, jn.cfg.Advertise)
				registered = true
			}
		}
		if registered {
			switch err := jn.heartbeat(ctx); {
			case err == nil:
			case ctx.Err() != nil:
				return
			default:
				jn.cfg.Logf("cluster: heartbeat failed: %v", err)
				var se statusError
				if ok := asStatusError(err, &se); ok && se.code == http.StatusNotFound {
					registered = false // expired or coordinator restarted: re-register
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// statusError carries a coordinator HTTP status through the error chain.
type statusError struct {
	code int
	body string
}

func (e statusError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.code, e.body)
}

func asStatusError(err error, out *statusError) bool {
	se, ok := err.(statusError)
	if ok {
		*out = se
	}
	return ok
}

func (jn *Joiner) register(ctx context.Context) error {
	return jn.post(ctx, "/cluster/v1/register", RegisterRequest{
		Name:     jn.cfg.Name,
		Addr:     jn.cfg.Advertise,
		Capacity: jn.cfg.Capacity,
	})
}

func (jn *Joiner) heartbeat(ctx context.Context) error {
	var load WorkerLoad
	if jn.cfg.Stats != nil {
		st := jn.cfg.Stats()
		load = WorkerLoad{
			Workers:   st.Workers,
			Active:    st.Active,
			Queued:    st.Queued,
			Executed:  st.Executed,
			CacheHits: st.CacheHits,
			CacheLen:  st.CacheLen,
		}
	}
	return jn.post(ctx, "/cluster/v1/heartbeat", HeartbeatRequest{Name: jn.cfg.Name, Load: load})
}

// post issues one control-plane request with a deadline bounded by the
// heartbeat interval, so a hung coordinator cannot stall the loop past one
// period.
func (jn *Joiner) post(ctx context.Context, path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, jn.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, jn.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := jn.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		detail := resp.Status
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			detail = eb.Error
		}
		return statusError{code: resp.StatusCode, body: detail}
	}
	return nil
}
