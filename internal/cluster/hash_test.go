package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"graphrealize"
)

// TestScoreGolden pins the §4.2 score function to the worked example of
// CLUSTER.md §4.3: the scores are part of the spec, so a drift in the hash
// input layout (separator, order) is a wire-breaking change, not a refactor.
func TestScoreGolden(t *testing.T) {
	key := "degrees|060604040202|m0.s7.tfalse.c0.o0.r0.barrier"
	golden := map[string]uint64{
		"w1": 0x9f24b56ee25b2ea7,
		"w2": 0xe7c527ae54882df4,
		"w3": 0x236cbf1ff3847ead,
	}
	for worker, want := range golden {
		if got := Score(worker, key); got != want {
			t.Errorf("Score(%q, key) = %#x, want %#x (CLUSTER.md §4.3)", worker, got, want)
		}
	}
}

// TestRouteKeyWorkedExample ties the root package's Job.RouteKey to the
// CLUSTER.md §4.3 example end to end: the job from the spec must produce the
// spec's key string, and rendezvous ranking over {w1,w2,w3} must produce the
// spec's rank, owner, and failover target.
func TestRouteKeyWorkedExample(t *testing.T) {
	job := graphrealize.Job{
		Kind: graphrealize.JobDegrees,
		Seq:  []int{3, 3, 2, 2, 1, 1},
		Opt:  &graphrealize.Options{Seed: 7},
	}
	key := job.RouteKey()
	if want := "degrees|060604040202|m0.s7.tfalse.c0.o0.r0.barrier"; key != want {
		t.Fatalf("RouteKey = %q, want %q (CLUSTER.md §4.3)", key, want)
	}

	workers := []string{"w1", "w2", "w3"}
	if got, want := Rank(workers, key), []string{"w2", "w1", "w3"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank = %v, want %v (CLUSTER.md §4.3)", got, want)
	}
	owner, ok := Owner(workers, key)
	if !ok || owner != "w2" {
		t.Fatalf("Owner = %q/%v, want w2/true", owner, ok)
	}

	// Remove the owner: the key moves to exactly the previous rank[1].
	if got, want := Rank([]string{"w1", "w3"}, key), []string{"w1", "w3"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank without owner = %v, want %v (CLUSTER.md §4.3)", got, want)
	}

	// Different seed, same sequence: independent shard (owner w1, not w2).
	job.Opt = &graphrealize.Options{Seed: 8}
	key8 := job.RouteKey()
	if want := "degrees|060604040202|m0.s8.tfalse.c0.o0.r0.barrier"; key8 != want {
		t.Fatalf("RouteKey(seed 8) = %q, want %q", key8, want)
	}
	if owner, _ := Owner(workers, key8); owner != "w1" {
		t.Fatalf("Owner(seed 8) = %q, want w1 (CLUSTER.md §4.3)", owner)
	}
}

// TestRankDeterministicAndComplete: ranking is a pure function of
// (workers, key) — order of the input slice must not matter — and always
// permutes the full worker set (CLUSTER.md §4.2).
func TestRankDeterministicAndComplete(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	perm := []string{"w4", "w2", "w5", "w1", "w3"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("degrees|02|m0.s%d.tfalse.c0.o0.r0.barrier", i)
		a, b := Rank(workers, key), Rank(perm, key)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("key %q: rank depends on input order: %v vs %v", key, a, b)
		}
		seen := make(map[string]bool, len(a))
		for _, w := range a {
			seen[w] = true
		}
		if len(seen) != len(workers) {
			t.Fatalf("key %q: rank %v is not a permutation of %v", key, a, workers)
		}
	}
}

// TestMinimalMotionOnRemoval pins the rendezvous minimal-motion property of
// CLUSTER.md §4.2: removing one worker reassigns exactly the keys it owned —
// every key owned by a surviving worker keeps its owner — so a worker death
// moves only the dead worker's cache shard.
func TestMinimalMotionOnRemoval(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	const dead = "w3"
	survivors := make([]string, 0, len(workers)-1)
	for _, w := range workers {
		if w != dead {
			survivors = append(survivors, w)
		}
	}

	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("degrees|0604|m0.s%d.tfalse.c0.o0.r0.pool", i)
		before, _ := Owner(workers, key)
		after, _ := Owner(survivors, key)
		if before == dead {
			moved++
			// The new owner must be the old rank[1] (CLUSTER.md §6.1).
			if next := Rank(workers, key)[1]; after != next {
				t.Fatalf("key %q: reassigned to %q, want old rank[1] %q", key, after, next)
			}
			continue
		}
		kept++
		if after != before {
			t.Fatalf("key %q: owner moved %q → %q though %q was not removed (CLUSTER.md §4.2)",
				key, before, after, dead)
		}
	}
	// Sanity: the dead worker owned a nontrivial share, so the property was
	// actually exercised. FNV spreads 2000 keys roughly evenly over 5 workers.
	if moved < 100 || kept < 100 {
		t.Fatalf("degenerate key distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRankTieBreak: equal scores order by name. Engineering a real FNV
// collision is impractical, so exercise the comparator through duplicate
// names, which score identically by construction (CLUSTER.md §4.2).
func TestRankTieBreak(t *testing.T) {
	got := Rank([]string{"dup", "dup"}, "any-key")
	if !reflect.DeepEqual(got, []string{"dup", "dup"}) {
		t.Fatalf("tie rank = %v", got)
	}
	if owner, ok := Owner([]string{"dup", "dup"}, "any-key"); !ok || owner != "dup" {
		t.Fatalf("tie owner = %q/%v", owner, ok)
	}
	if _, ok := Owner(nil, "any-key"); ok {
		t.Fatal("Owner over empty set reported ok")
	}
}

// TestScoreSeparator: the 0x00 separator keeps (name, key) splits distinct —
// Score("ab","c") must differ from Score("a","bc") even though the
// concatenations match (CLUSTER.md §4.2).
func TestScoreSeparator(t *testing.T) {
	if Score("ab", "c") == Score("a", "bc") {
		t.Fatal("scores collide across the name/key boundary; separator missing")
	}
}
