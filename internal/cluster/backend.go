package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"graphrealize"
	"graphrealize/internal/obs"
	"graphrealize/internal/wire"
)

// ErrNoWorkers reports that the routing set is empty — no worker is alive
// or suspect — or that every routable worker was tried and found down. The
// serving layer maps it to 503 (CLUSTER.md §6.2): unlike a 429, retrying
// helps only once a worker rejoins.
var ErrNoWorkers = errors.New("cluster: no routable workers")

// errWorkerDown classifies one proxy attempt as failover-eligible: the
// owning worker is unreachable or answered 502/503. Deterministic outcomes
// (realization errors, timeouts, backpressure) are never wrapped in it —
// re-routing those would re-run work for the same answer (CLUSTER.md §6.1).
var errWorkerDown = errors.New("cluster: worker down")

// BackendConfig assembles a Backend.
type BackendConfig struct {
	// Registry supplies the routing set; required.
	Registry *Registry
	// Client issues worker requests. Nil selects http.DefaultClient; job
	// deadlines ride on request contexts, not a client timeout.
	Client *http.Client
	// Logf, when non-nil, receives one line per failover decision.
	Logf func(format string, args ...any)
}

// Backend routes graphrealize jobs to their owning worker over the
// workers' synchronous /v1 API (CLUSTER.md §5). It implements the same
// Backend seams as *graphrealize.Runner — SubmitCtx, SubmitAllCtx,
// SubmitReplayCtx, Stats — so the unchanged serve.Server and jobs.Manager
// stack on top of it: the coordinator is an ordinary grserved whose
// "runner" happens to execute remotely.
type Backend struct {
	reg    *Registry
	client *http.Client
	logf   func(format string, args ...any)

	submitted atomic.Int64
	rejected  atomic.Int64
	executed  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	runNanos  atomic.Int64

	proxied     atomic.Int64
	proxyErrors atomic.Int64
}

// NewBackend creates a Backend over a Registry.
func NewBackend(cfg BackendConfig) *Backend {
	if cfg.Registry == nil {
		panic("cluster: BackendConfig.Registry is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Backend{reg: cfg.Registry, client: cfg.Client, logf: cfg.Logf}
}

// Registry returns the registry this backend routes over, for the serving
// layer's stats and metrics expositions.
func (b *Backend) Registry() *Registry { return b.reg }

// ProxyCounters is the backend's monotonic proxy counters (CLUSTER.md §7).
type ProxyCounters struct {
	Proxied     int64 // worker requests issued (including failover retries)
	ProxyErrors int64 // worker requests that failed as failover-eligible
}

// ProxyCounters returns a snapshot of the proxy counters.
func (b *Backend) ProxyCounters() ProxyCounters {
	return ProxyCounters{Proxied: b.proxied.Load(), ProxyErrors: b.proxyErrors.Load()}
}

// SubmitCtx admits one job for remote execution. Admission is refused only
// when the routing set is empty (ErrNoWorkers); per-worker backpressure
// surfaces on the result channel as graphrealize.ErrQueueFull, untranslated
// (CLUSTER.md §6.2), so the coordinator never spills an overloaded worker's
// keys onto another worker's cache shard.
func (b *Backend) SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	if len(b.reg.Routable()) == 0 {
		b.rejected.Add(1)
		return nil, ErrNoWorkers
	}
	b.submitted.Add(1)
	ch := make(chan graphrealize.Result, 1)
	go func() { ch <- b.run(ctx, j) }()
	return ch, nil
}

// SubmitReplayCtx re-admits a job recovered from the coordinator's durable
// store. The replay routes by the same key as the original submission, so
// it lands on the key's current owner — which, after a worker death, is
// exactly the failover target (CLUSTER.md §6.3); the recorded seed makes
// the re-run's graph identical wherever it executes.
func (b *Backend) SubmitReplayCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	return b.SubmitCtx(ctx, j)
}

// SubmitAllCtx admits a batch. Against a single Runner the batch is atomic;
// across a cluster each job is admitted by its own worker, so a sweep is
// per-job admitted and any one worker's backpressure fails the whole sweep
// at the first rejected row (CLUSTER.md §8.1) — the all-or-nothing guarantee
// is not global. The empty-routing-set check still rejects as a unit.
func (b *Backend) SubmitAllCtx(ctx context.Context, jobs []graphrealize.Job) ([]<-chan graphrealize.Result, error) {
	if len(b.reg.Routable()) == 0 {
		b.rejected.Add(1)
		return nil, ErrNoWorkers
	}
	out := make([]<-chan graphrealize.Result, len(jobs))
	for i, j := range jobs {
		job := j
		b.submitted.Add(1)
		ch := make(chan graphrealize.Result, 1)
		go func() { ch <- b.run(ctx, job) }()
		out[i] = ch
	}
	return out, nil
}

// Stats aggregates the cluster's counters into the RunnerStats shape the
// serving layer consumes: pool facts summed from the routable workers'
// heartbeat loads, lifecycle counters from the coordinator's own proxy
// accounting (CLUSTER.md §7.1).
func (b *Backend) Stats() graphrealize.RunnerStats {
	st := graphrealize.RunnerStats{
		QueueLimit: -1, // admission lives at the workers, not the coordinator
		Submitted:  b.submitted.Load(),
		Rejected:   b.rejected.Load(),
		Executed:   b.executed.Load(),
		Completed:  b.completed.Load(),
		Failed:     b.failed.Load(),
		Canceled:   b.canceled.Load(),
		TotalRun:   time.Duration(b.runNanos.Load()),
	}
	for _, w := range b.reg.Snapshot() {
		if w.State == string(StateDead) {
			continue
		}
		st.Workers += w.Load.Workers
		st.Active += w.Load.Active
		st.Queued += w.Load.Queued
		st.CacheHits += w.Load.CacheHits
		st.CacheLen += w.Load.CacheLen
	}
	return st
}

// run executes one job remotely: rank the routable workers for the job's
// RouteKey, try the owner, and on failover-eligible errors mark the worker
// failed and move to the next-ranked worker — which is rendezvous hashing's
// post-death owner of the same key (CLUSTER.md §6.1). Every other error is
// final. The loop is bounded: each failover removes a worker from
// consideration, and a drained candidate set fails with ErrNoWorkers.
func (b *Backend) run(ctx context.Context, j graphrealize.Job) graphrealize.Result {
	res := graphrealize.Result{Job: j}
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	key := j.RouteKey()
	start := time.Now()
	tried := make(map[string]bool)
	for {
		if err := ctx.Err(); err != nil {
			res.Err = err
			break
		}
		var names []string
		addrs := make(map[string]string)
		for _, m := range b.reg.Routable() {
			if !tried[m.Name] {
				names = append(names, m.Name)
				addrs[m.Name] = m.Addr
			}
		}
		owner, ok := Owner(names, key)
		if !ok {
			res.Err = fmt.Errorf("%w for job %s (tried %d)", ErrNoWorkers, j.Kind, len(tried))
			break
		}
		out, err := b.proxy(ctx, addrs[owner], j)
		if err == nil {
			res = out
			res.Job = j
			break
		}
		if errors.Is(err, errWorkerDown) && ctx.Err() == nil {
			tried[owner] = true
			b.reg.ReportFailure(owner)
			b.proxyErrors.Add(1)
			b.logf("cluster: worker %s down (%v); re-routing %s job", owner, err, j.Kind)
			continue
		}
		res.Err = err
		break
	}
	b.executed.Add(1)
	b.runNanos.Add(time.Since(start).Nanoseconds())
	switch {
	case res.Err == nil:
		b.completed.Add(1)
	case errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
		b.canceled.Add(1)
	default:
		b.failed.Add(1)
	}
	return res
}

// routeFor maps a JobKind back onto the workers' synchronous API — the
// exact inverse of the serving layer's {alg}/variant parsing (CLUSTER.md
// §5.1).
func routeFor(k graphrealize.JobKind) (path, variant string, err error) {
	switch k {
	case graphrealize.JobDegrees:
		return "/v1/realize/degree", "", nil
	case graphrealize.JobDegreesExplicit:
		return "/v1/realize/degree", "explicit", nil
	case graphrealize.JobUpperEnvelope:
		return "/v1/realize/degree", "envelope", nil
	case graphrealize.JobChainTree:
		return "/v1/realize/tree", "", nil
	case graphrealize.JobMinDiamTree:
		return "/v1/realize/tree", "mindiam", nil
	case graphrealize.JobConnectivity:
		return "/v1/realize/connectivity", "", nil
	}
	return "", "", fmt.Errorf("cluster: unroutable job kind %d", int(k))
}

// realizeBody mirrors the workers' POST /v1/realize/{alg} request schema.
type realizeBody struct {
	Sequence []int        `json:"sequence"`
	Variant  string       `json:"variant,omitempty"`
	Options  *optionsBody `json:"options,omitempty"`
}

// optionsBody mirrors the workers' options schema. The scheduler is always
// sent explicitly so a worker's -scheduler default can never fork the
// route key's namespace (CLUSTER.md §5.2).
type optionsBody struct {
	Model     string `json:"model,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Strict    bool   `json:"strict,omitempty"`
	CapMul    int    `json:"cap_mul,omitempty"`
	Sort      string `json:"sort,omitempty"`
	MaxRounds int    `json:"max_rounds,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
}

func optionsFor(o *graphrealize.Options) *optionsBody {
	if o == nil {
		o = &graphrealize.Options{}
	}
	out := &optionsBody{
		Seed:      o.Seed,
		Strict:    o.Strict,
		CapMul:    o.CapMul,
		MaxRounds: o.MaxRounds,
		Scheduler: o.Scheduler.String(),
	}
	if o.Model == graphrealize.NCC1 {
		out.Model = "ncc1"
	}
	switch o.Sort {
	case graphrealize.OddEvenSort:
		out.Sort = "oddeven"
	case graphrealize.MergeSort:
		out.Sort = "merge"
	}
	return out
}

// statsBody mirrors the workers' stats schema.
type statsBody struct {
	N             int   `json:"n"`
	Rounds        int   `json:"rounds"`
	ChargedRounds int   `json:"charged_rounds"`
	Messages      int64 `json:"messages"`
	Capacity      int   `json:"capacity"`
	MaxSent       int   `json:"max_sent"`
	MaxRecv       int   `json:"max_recv"`
	CapViolations int   `json:"cap_violations"`
	Phases        int   `json:"phases"`
}

// realizeMeta is the subset of the workers' realization response the
// coordinator rebuilds a Result from; the graph itself travels in the
// graphwire graph section, not in JSON (CLUSTER.md §5.3).
type realizeMeta struct {
	Envelope []int     `json:"envelope"`
	Stats    statsBody `json:"stats"`
	Cached   bool      `json:"cached"`
}

// errorBody is the workers' uniform non-2xx response body.
type errorBody struct {
	Error string `json:"error"`
}

// proxy issues one job to one worker and rebuilds the Result. The request
// negotiates graphwire (Accept) and forwards the job's trace ID
// (X-Request-Id) so a hop shows up under the same ID in both processes'
// request logs (CLUSTER.md §5.4).
func (b *Backend) proxy(ctx context.Context, addr string, j graphrealize.Job) (graphrealize.Result, error) {
	var res graphrealize.Result
	path, variant, err := routeFor(j.Kind)
	if err != nil {
		return res, err
	}
	body, err := json.Marshal(realizeBody{Sequence: j.Seq, Variant: variant, Options: optionsFor(j.Opt)})
	if err != nil {
		return res, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.MediaType)
	if j.TraceID != "" {
		req.Header.Set(obs.HeaderRequestID, j.TraceID)
	}
	b.proxied.Add(1)
	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		return res, fmt.Errorf("%w: %v", errWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return res, workerError(resp)
	}
	msg, err := wire.Decode(resp.Body)
	if err != nil {
		// A malformed stream means the worker died mid-response (or is not a
		// graphrealize worker at all); either way it cannot be trusted with
		// this key right now.
		return res, fmt.Errorf("%w: bad graphwire response: %v", errWorkerDown, err)
	}
	var meta realizeMeta
	if msg.Meta == nil {
		return res, fmt.Errorf("%w: graphwire response without JMETA", errWorkerDown)
	}
	if err := json.Unmarshal(msg.Meta, &meta); err != nil {
		return res, fmt.Errorf("%w: bad JMETA: %v", errWorkerDown, err)
	}
	if !msg.HasGraph {
		return res, fmt.Errorf("%w: realization response without a graph section", errWorkerDown)
	}
	res.Graph = &graphrealize.Graph{N: msg.N, Adj: msg.Adj}
	res.Envelope = meta.Envelope
	res.Cached = meta.Cached
	res.Stats = &graphrealize.Stats{
		N:             meta.Stats.N,
		Rounds:        meta.Stats.Rounds,
		ChargedRounds: meta.Stats.ChargedRounds,
		Messages:      meta.Stats.Messages,
		Capacity:      meta.Stats.Capacity,
		MaxSent:       meta.Stats.MaxSent,
		MaxRecv:       meta.Stats.MaxRecv,
		CapViolations: meta.Stats.CapViolations,
		Phases:        meta.Stats.Phases,
	}
	return res, nil
}

// workerError maps a worker's non-200 status back onto the job-level error
// vocabulary, inverting the serving layer's status mapping so the
// coordinator's own serving layer re-derives the same status (CLUSTER.md
// §5.5). Only 502/503 are failover-eligible: every other status is a
// deterministic verdict about the job, not the worker.
func workerError(resp *http.Response) error {
	var eb errorBody
	detail := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
		detail = eb.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w (worker: %s)", graphrealize.ErrQueueFull, detail)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w (worker: %s)", graphrealize.ErrUnrealizable, detail)
	case http.StatusBadRequest, http.StatusNotFound, http.StatusRequestEntityTooLarge:
		return fmt.Errorf("%w (worker: %s)", graphrealize.ErrBadInput, detail)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w (worker: %s)", context.DeadlineExceeded, detail)
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		return fmt.Errorf("%w: worker answered %s", errWorkerDown, detail)
	default:
		return fmt.Errorf("cluster: worker answered %d: %s", resp.StatusCode, detail)
	}
}
