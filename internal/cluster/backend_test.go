package cluster_test

// backend_test.go is the cluster integration test: real workers — stock
// serve.Server handlers over real Runners, exactly the processes CLUSTER.md
// §1 describes — behind httptest listeners, with a coordinator Backend
// routing to them over the actual JSON/graphwire data plane (CLUSTER.md §5).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/cluster"
	"graphrealize/internal/serve"
)

// testWorker is one stock grserved worker under httptest.
type testWorker struct {
	name   string
	runner *graphrealize.Runner
	srv    *httptest.Server
}

// newTestCluster registers n real workers (w1..wn) into a fresh registry
// and returns a Backend routing over them.
func newTestCluster(t *testing.T, n int) (*cluster.Backend, []*testWorker) {
	t.Helper()
	reg := cluster.NewRegistry(cluster.RegistryConfig{
		SuspectAfter: time.Minute, // liveness driven by ReportFailure, not clocks
	})
	workers := make([]*testWorker, 0, n)
	for i := 0; i < n; i++ {
		runner := graphrealize.NewRunnerConfig(graphrealize.RunnerConfig{Workers: 2, Queue: -1})
		h := serve.New(serve.Config{Backend: runner, MaxN: 4096}).Handler()
		srv := httptest.NewServer(h)
		w := &testWorker{name: "w" + string(rune('0'+i+1)), runner: runner, srv: srv}
		t.Cleanup(srv.Close)
		if err := reg.Register(cluster.RegisterRequest{Name: w.name, Addr: srv.URL}); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	return cluster.NewBackend(cluster.BackendConfig{Registry: reg, Logf: t.Logf}), workers
}

func submit(t *testing.T, b *cluster.Backend, j graphrealize.Job) graphrealize.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, err := b.SubmitCtx(ctx, j)
	if err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	return <-ch
}

func sortedEdges(t *testing.T, g *graphrealize.Graph) [][2]int {
	t.Helper()
	if g == nil {
		t.Fatal("nil graph")
	}
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// TestBackendRoutingDeterminism: repeated submissions of one key land on one
// worker — proven from the outside by the second response arriving from that
// worker's result cache — while a different seed routes independently, and
// the proxied graph matches a local single-node run byte for byte
// (CLUSTER.md §1, §4.1, §5.3).
func TestBackendRoutingDeterminism(t *testing.T) {
	b, _ := newTestCluster(t, 3)
	job := graphrealize.Job{
		Kind: graphrealize.JobDegrees,
		Seq:  []int{3, 3, 2, 2, 1, 1},
		Opt:  &graphrealize.Options{Seed: 7},
	}

	first := submit(t, b, job)
	if first.Err != nil {
		t.Fatalf("first submit: %v", first.Err)
	}
	if first.Cached {
		t.Fatal("first submit reported cached")
	}
	second := submit(t, b, job)
	if second.Err != nil {
		t.Fatalf("second submit: %v", second.Err)
	}
	if !second.Cached {
		t.Fatal("second submit of the same key missed the owner's cache; routing is not deterministic (CLUSTER.md §4.1)")
	}
	if !reflect.DeepEqual(sortedEdges(t, first.Graph), sortedEdges(t, second.Graph)) {
		t.Fatal("cached result differs from first result")
	}

	// The proxied graph must equal a local run of the same job (§5.3: the
	// graph crosses as a graphwire graph section, rebuilt losslessly).
	local := graphrealize.NewRunner(2)
	ch, err := local.SubmitCtx(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	ref := <-ch
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	if !reflect.DeepEqual(sortedEdges(t, ref.Graph), sortedEdges(t, first.Graph)) {
		t.Fatal("proxied graph differs from local run of the same job")
	}
	if first.Stats == nil || first.Stats.N != 6 {
		t.Fatalf("proxied stats not rebuilt: %+v", first.Stats)
	}

	// A different seed is a different key and may live on a different
	// worker; it must not hit seed 7's cache entry.
	other := submit(t, b, graphrealize.Job{
		Kind: graphrealize.JobDegrees,
		Seq:  []int{3, 3, 2, 2, 1, 1},
		Opt:  &graphrealize.Options{Seed: 8},
	})
	if other.Err != nil {
		t.Fatalf("seed-8 submit: %v", other.Err)
	}
	if other.Cached {
		t.Fatal("seed-8 submission reported cached; keys are colliding")
	}
}

// TestBackendFailoverByteIdentical kills the owning worker and checks the
// CLUSTER.md §6 contract end to end: the job re-routes to the old rank[1]
// (§6.1), the failed-over graph is byte-identical to a single-node run of
// the same seed (§6.5), and the registry/proxy counters record the event.
func TestBackendFailoverByteIdentical(t *testing.T) {
	b, workers := newTestCluster(t, 3)
	job := graphrealize.Job{
		Kind: graphrealize.JobDegrees,
		Seq:  []int{4, 3, 3, 2, 2, 1, 1},
		Opt:  &graphrealize.Options{Seed: 42},
	}

	// Reference run on a plain single-node Runner.
	local := graphrealize.NewRunner(2)
	ch, err := local.SubmitCtx(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	ref := <-ch
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	// Kill the key's owner before the first submission.
	names := make([]string, len(workers))
	byName := make(map[string]*testWorker, len(workers))
	for i, w := range workers {
		names[i] = w.name
		byName[w.name] = w
	}
	rank := cluster.Rank(names, job.RouteKey())
	byName[rank[0]].srv.Close()

	res := submit(t, b, job)
	if res.Err != nil {
		t.Fatalf("failover submit: %v", res.Err)
	}
	if !reflect.DeepEqual(sortedEdges(t, ref.Graph), sortedEdges(t, res.Graph)) {
		t.Fatal("failed-over graph differs from single-node run; seed determinism broken (CLUSTER.md §6.5)")
	}

	// The dead owner is now marked dead and out of the routing set (§6.1);
	// the surviving pair must not include it.
	routable := b.Registry().Routable()
	if len(routable) != 2 {
		t.Fatalf("routing set after failover = %v, want the 2 survivors", routable)
	}
	for _, m := range routable {
		if m.Name == rank[0] {
			t.Fatalf("dead worker %s still routable", rank[0])
		}
	}
	if c := b.Registry().Counters(); c.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", c.Failovers)
	}
	if pc := b.ProxyCounters(); pc.ProxyErrors != 1 || pc.Proxied < 2 {
		t.Fatalf("proxy counters = %+v, want 1 error and ≥2 attempts", pc)
	}

	// The re-run landed on the old rank[1] — rendezvous' post-death owner
	// (§4.2) — so resubmitting now is a cache hit there.
	again := submit(t, b, job)
	if again.Err != nil || !again.Cached {
		t.Fatalf("resubmit after failover: err=%v cached=%v, want cache hit on the failover target", again.Err, again.Cached)
	}
}

// TestBackendBackpressureNoSpillover: a worker's 429 maps to ErrQueueFull
// and MUST NOT re-route — backpressure is per-shard (CLUSTER.md §6.2), so
// the saturated worker stays registered and routable.
func TestBackendBackpressureNoSpillover(t *testing.T) {
	reg := cluster.NewRegistry(cluster.RegistryConfig{SuspectAfter: time.Minute})
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full: 1 queued"}`))
	}))
	defer full.Close()
	healthy := graphrealize.NewRunner(1)
	healthySrv := httptest.NewServer(serve.New(serve.Config{Backend: healthy}).Handler())
	defer healthySrv.Close()

	job := graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{2, 1, 1}, Opt: &graphrealize.Options{Seed: 3}}
	// Name the saturated worker so it owns the key: give it the rank[0]
	// name for this key among two candidates.
	rank := cluster.Rank([]string{"w1", "w2"}, job.RouteKey())
	if err := reg.Register(cluster.RegisterRequest{Name: rank[0], Addr: full.URL}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(cluster.RegisterRequest{Name: rank[1], Addr: healthySrv.URL}); err != nil {
		t.Fatal(err)
	}
	b := cluster.NewBackend(cluster.BackendConfig{Registry: reg})

	res := submit(t, b, job)
	if !errors.Is(res.Err, graphrealize.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull passthrough (CLUSTER.md §5.5)", res.Err)
	}
	if got := len(reg.Routable()); got != 2 {
		t.Fatalf("routing set after 429 = %d workers, want 2: backpressure must not mark the worker dead (CLUSTER.md §6.2)", got)
	}
	if pc := b.ProxyCounters(); pc.Proxied != 1 || pc.ProxyErrors != 0 {
		t.Fatalf("proxy counters = %+v: a 429 must not count as a proxy error or retry", pc)
	}
}

// TestBackendDeterministicVerdicts: worker verdicts that are about the job,
// not the worker, come back under the root error vocabulary and do not
// trigger failover (CLUSTER.md §5.5).
func TestBackendDeterministicVerdicts(t *testing.T) {
	b, _ := newTestCluster(t, 2)
	// Odd degree sum: unrealizable on any worker.
	res := submit(t, b, graphrealize.Job{
		Kind: graphrealize.JobDegrees, Seq: []int{3, 1, 1}, Opt: &graphrealize.Options{Seed: 1},
	})
	if !errors.Is(res.Err, graphrealize.ErrUnrealizable) {
		t.Fatalf("odd-sum err = %v, want ErrUnrealizable", res.Err)
	}
	if pc := b.ProxyCounters(); pc.ProxyErrors != 0 {
		t.Fatalf("unrealizable verdict counted as proxy error: %+v", pc)
	}
	if got := len(b.Registry().Routable()); got != 2 {
		t.Fatalf("routing set after 422 = %d, want 2", got)
	}
}

// TestBackendNoWorkers: an empty routing set refuses admission with
// ErrNoWorkers for both single submissions and batches (CLUSTER.md §6.2).
func TestBackendNoWorkers(t *testing.T) {
	reg := cluster.NewRegistry(cluster.RegistryConfig{})
	b := cluster.NewBackend(cluster.BackendConfig{Registry: reg})
	job := graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{2, 1, 1}}
	if _, err := b.SubmitCtx(context.Background(), job); !errors.Is(err, cluster.ErrNoWorkers) {
		t.Fatalf("SubmitCtx on empty cluster = %v, want ErrNoWorkers", err)
	}
	if _, err := b.SubmitAllCtx(context.Background(), []graphrealize.Job{job}); !errors.Is(err, cluster.ErrNoWorkers) {
		t.Fatalf("SubmitAllCtx on empty cluster = %v, want ErrNoWorkers", err)
	}
	if st := b.Stats(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}

// TestBackendSweepFanout: a batch fans each seed out to that seed's owning
// worker and every row completes (CLUSTER.md §8.1); the aggregate Stats
// gauges then reflect the workers' heartbeat loads (§7.1).
func TestBackendSweepFanout(t *testing.T) {
	b, workers := newTestCluster(t, 3)
	jobs := make([]graphrealize.Job, 6)
	for i := range jobs {
		jobs[i] = graphrealize.Job{
			Kind: graphrealize.JobDegrees,
			Seq:  []int{3, 3, 2, 2, 1, 1},
			Opt:  &graphrealize.Options{Seed: int64(i + 1)},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	chans, err := b.SubmitAllCtx(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("sweep row %d: %v", i, res.Err)
		}
	}

	// Heartbeat each worker's true runner load into the registry, as the
	// join loop would, and check the coordinator-side aggregation (§7.1).
	var wantExecuted int64
	for _, w := range workers {
		st := w.runner.Stats()
		wantExecuted += st.Executed
		err := b.Registry().Heartbeat(w.name, cluster.WorkerLoad{
			Workers: st.Workers, Executed: st.Executed,
			CacheHits: st.CacheHits, CacheLen: st.CacheLen,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if wantExecuted != 6 {
		t.Fatalf("workers executed %d jobs in total, want 6 (sweep fanned out wrong)", wantExecuted)
	}
	agg := b.Stats()
	if agg.Workers != 6 { // 3 workers × pool of 2
		t.Fatalf("aggregate workers = %d, want 6", agg.Workers)
	}
	if agg.Submitted != 6 || agg.Completed != 6 {
		t.Fatalf("coordinator lifecycle counters = %+v", agg)
	}
}

// TestBackendTracePropagation: the proxied request carries the job's trace
// ID as X-Request-Id so coordinator and worker request logs correlate
// (CLUSTER.md §5.4).
func TestBackendTracePropagation(t *testing.T) {
	runner := graphrealize.NewRunner(1)
	inner := serve.New(serve.Config{Backend: runner}).Handler()
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Request-Id")
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := cluster.NewRegistry(cluster.RegistryConfig{SuspectAfter: time.Minute})
	if err := reg.Register(cluster.RegisterRequest{Name: "w1", Addr: srv.URL}); err != nil {
		t.Fatal(err)
	}
	b := cluster.NewBackend(cluster.BackendConfig{Registry: reg})
	res := submit(t, b, graphrealize.Job{
		Kind: graphrealize.JobDegrees, Seq: []int{2, 1, 1},
		Opt: &graphrealize.Options{Seed: 5}, TraceID: "trace-e2e-01",
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got != "trace-e2e-01" {
		t.Fatalf("worker saw X-Request-Id %q, want the job's trace ID (CLUSTER.md §5.4)", got)
	}
}
