package cluster

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// specDirs are the packages whose sources carry CLUSTER.md citations: this
// package, the serving layer's cluster wiring, the job manager's ownership
// seam, and the root package's RouteKey.
var specDirs = []string{".", "../serve", "../jobs", "../../"}

func clusterSpecSections(t *testing.T) map[string]bool {
	t.Helper()
	spec, err := os.ReadFile(filepath.Join("..", "..", "CLUSTER.md"))
	if err != nil {
		t.Fatalf("reading CLUSTER.md: %v", err)
	}
	sections := map[string]bool{}
	heading := regexp.MustCompile(`(?m)^#{2,3}\s+(\d+(?:\.\d+)?)[.\s]`)
	for _, m := range heading.FindAllStringSubmatch(string(spec), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("no numbered section headings found in CLUSTER.md")
	}
	return sections
}

// TestClusterSpecSectionsResolve keeps the code ↔ spec links honest, the
// same contract TestSpecSectionsResolve gives WIRE.md: every "CLUSTER.md §x"
// citation anywhere in the cluster-touching packages must name a section
// heading that actually exists in CLUSTER.md.
func TestClusterSpecSectionsResolve(t *testing.T) {
	sections := clusterSpecSections(t)
	cite := regexp.MustCompile(`CLUSTER\.md\s+§(\d+(?:\.\d+)?)`)
	cited := 0
	for _, dir := range specDirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range cite.FindAllStringSubmatch(string(src), -1) {
				cited++
				if !sections[m[1]] {
					t.Errorf("%s cites CLUSTER.md §%s, but CLUSTER.md has no such section", f, m[1])
				}
			}
		}
	}
	if cited == 0 {
		t.Fatal("no CLUSTER.md § citations found — the spec links are gone")
	}
}

// TestClusterSpecSectionsCovered is the reverse direction, which WIRE.md
// does not demand of itself: every numbered CLUSTER.md section must be cited
// by at least one test file, so each normative statement stays pinned by an
// executable check. Citing a subsection (§4.2) covers its parent (§4) too.
func TestClusterSpecSectionsCovered(t *testing.T) {
	sections := clusterSpecSections(t)
	cite := regexp.MustCompile(`CLUSTER\.md\s+§(\d+(?:\.\d+)?)`)
	covered := map[string]bool{}
	for _, dir := range specDirs {
		files, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range cite.FindAllStringSubmatch(string(src), -1) {
				covered[m[1]] = true
				if head, _, ok := strings.Cut(m[1], "."); ok {
					covered[head] = true
				}
			}
		}
	}
	for sec := range sections {
		// Subsections are covered transitively through their top-level
		// section: the coverage bar is every §N, plus any §N.M a test cites
		// directly resolving (checked above).
		if strings.Contains(sec, ".") {
			continue
		}
		if !covered[sec] {
			t.Errorf("CLUSTER.md §%s is not cited by any test — every normative section needs an executable check", sec)
		}
	}
}
