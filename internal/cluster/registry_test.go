package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the registry's read-time liveness derivation without
// sleeping: tests advance it across the CLUSTER.md §3 thresholds.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(cfg RegistryConfig) (*Registry, *fakeClock) {
	r := NewRegistry(cfg)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	r.now = clk.now
	return r, clk
}

func stateOfName(t *testing.T, r *Registry, name string) string {
	t.Helper()
	for _, ws := range r.Snapshot() {
		if ws.Name == name {
			return ws.State
		}
	}
	return "<gone>"
}

// TestRegistryLivenessStateMachine walks one worker through the full
// CLUSTER.md §3 lifecycle: alive → suspect → dead → expired, with the
// routing-set membership rule of §4.1 (suspect stays routable, dead does
// not) checked at each step.
func TestRegistryLivenessStateMachine(t *testing.T) {
	cfg := RegistryConfig{SuspectAfter: 3 * time.Second, DeadAfter: 10 * time.Second, ExpireAfter: 50 * time.Second}
	r, clk := newTestRegistry(cfg)
	if err := r.Register(RegisterRequest{Name: "w1", Addr: "http://w1", Capacity: 4}); err != nil {
		t.Fatal(err)
	}

	if got := stateOfName(t, r, "w1"); got != string(StateAlive) {
		t.Fatalf("fresh worker state = %s, want alive", got)
	}
	if len(r.Routable()) != 1 {
		t.Fatal("fresh worker not routable")
	}

	// Just under SuspectAfter: still alive (§3).
	clk.advance(cfg.SuspectAfter - time.Millisecond)
	if got := stateOfName(t, r, "w1"); got != string(StateAlive) {
		t.Fatalf("state before SuspectAfter = %s, want alive", got)
	}

	// Cross SuspectAfter: suspect, and still in the routing set (§4.1).
	clk.advance(2 * time.Millisecond)
	if got := stateOfName(t, r, "w1"); got != string(StateSuspect) {
		t.Fatalf("state after SuspectAfter = %s, want suspect", got)
	}
	if len(r.Routable()) != 1 {
		t.Fatal("suspect worker dropped from routing set; §4.1 says it keeps its keys")
	}

	// Cross DeadAfter: dead and unroutable (§3).
	clk.advance(cfg.DeadAfter)
	if got := stateOfName(t, r, "w1"); got != string(StateDead) {
		t.Fatalf("state after DeadAfter = %s, want dead", got)
	}
	if len(r.Routable()) != 0 {
		t.Fatal("dead worker still routable")
	}
	// Dead-but-not-expired workers stay visible for operators (§7.1).
	if len(r.Snapshot()) != 1 {
		t.Fatal("dead worker missing from snapshot before expiry")
	}

	// A heartbeat revives a dead worker straight to alive (§2.2).
	if err := r.Heartbeat("w1", WorkerLoad{Active: 1}); err != nil {
		t.Fatalf("heartbeat on dead worker: %v", err)
	}
	if got := stateOfName(t, r, "w1"); got != string(StateAlive) {
		t.Fatalf("state after revival heartbeat = %s, want alive", got)
	}

	// Silence past ExpireAfter removes the record; the next heartbeat is
	// ErrUnknownWorker, which the joiner turns into re-registration (§2.3).
	clk.advance(cfg.ExpireAfter)
	if got := stateOfName(t, r, "w1"); got != "<gone>" {
		t.Fatalf("state after ExpireAfter = %s, want record removed", got)
	}
	if err := r.Heartbeat("w1", WorkerLoad{}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownWorker (CLUSTER.md §2.3)", err)
	}
	if got := r.Counters().Expired; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}

	// Re-registration resurrects it (§2.1).
	if err := r.Register(RegisterRequest{Name: "w1", Addr: "http://w1-new"}); err != nil {
		t.Fatal(err)
	}
	if addr, ok := r.Addr("w1"); !ok || addr != "http://w1-new" {
		t.Fatalf("addr after re-register = %q/%v", addr, ok)
	}
}

// TestRegistryRegisterValidation: §2.1 requires both name and addr.
func TestRegistryRegisterValidation(t *testing.T) {
	r, _ := newTestRegistry(RegistryConfig{})
	if err := r.Register(RegisterRequest{Name: "", Addr: "http://x"}); err == nil {
		t.Fatal("register without name accepted")
	}
	if err := r.Register(RegisterRequest{Name: "x", Addr: ""}); err == nil {
		t.Fatal("register without addr accepted")
	}
	if got := r.Counters().Registrations; got != 0 {
		t.Fatalf("rejected registers counted: %d", got)
	}
}

// TestRegistryReportFailure: proxy evidence kills a worker immediately —
// no waiting for DeadAfter — and a heartbeat revives it (CLUSTER.md §6.1).
// Repeated reports count one failover until the worker comes back.
func TestRegistryReportFailure(t *testing.T) {
	r, _ := newTestRegistry(RegistryConfig{})
	if err := r.Register(RegisterRequest{Name: "w1", Addr: "http://w1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(RegisterRequest{Name: "w2", Addr: "http://w2"}); err != nil {
		t.Fatal(err)
	}

	r.ReportFailure("w1")
	if got := stateOfName(t, r, "w1"); got != string(StateDead) {
		t.Fatalf("state after ReportFailure = %s, want dead (CLUSTER.md §6.1)", got)
	}
	routable := r.Routable()
	if len(routable) != 1 || routable[0].Name != "w2" {
		t.Fatalf("routing set after failure = %v, want [w2]", routable)
	}

	// Duplicate evidence is one failover event.
	r.ReportFailure("w1")
	r.ReportFailure("no-such-worker") // unknown names are ignored
	if got := r.Counters().Failovers; got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// Heartbeat revives (§2.2), and fresh evidence counts a new failover.
	if err := r.Heartbeat("w1", WorkerLoad{}); err != nil {
		t.Fatal(err)
	}
	if got := stateOfName(t, r, "w1"); got != string(StateAlive) {
		t.Fatalf("state after revival = %s, want alive", got)
	}
	r.ReportFailure("w1")
	if got := r.Counters().Failovers; got != 2 {
		t.Fatalf("failovers after revival+failure = %d, want 2", got)
	}
}

// TestRegistrySnapshotFields: the §7.1 member table carries load from the
// last heartbeat and a silence gauge that grows with the clock.
func TestRegistrySnapshotFields(t *testing.T) {
	cfg := RegistryConfig{SuspectAfter: 3 * time.Second, DeadAfter: 10 * time.Second, ExpireAfter: time.Hour}
	r, clk := newTestRegistry(cfg)
	if err := r.Register(RegisterRequest{Name: "w1", Addr: "http://w1", Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	load := WorkerLoad{Workers: 8, Active: 2, Queued: 1, Executed: 40, CacheHits: 7, CacheLen: 12}
	if err := r.Heartbeat("w1", load); err != nil {
		t.Fatal(err)
	}
	clk.advance(1500 * time.Millisecond)

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	ws := snap[0]
	if ws.Load != load {
		t.Fatalf("snapshot load = %+v, want %+v (CLUSTER.md §2.2)", ws.Load, load)
	}
	if ws.Capacity != 8 || ws.Addr != "http://w1" {
		t.Fatalf("snapshot identity fields wrong: %+v", ws)
	}
	if ws.SilenceMS < 1499 || ws.SilenceMS > 1501 {
		t.Fatalf("silence_ms = %v, want ≈1500", ws.SilenceMS)
	}
	c := r.Counters()
	if c.Registrations != 1 || c.Heartbeats != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestRegistryConfigNorm: zero config selects the documented §3.1 defaults,
// and inverted settings are repaired to keep SuspectAfter < DeadAfter <
// ExpireAfter.
func TestRegistryConfigNorm(t *testing.T) {
	def := RegistryConfig{}.norm()
	if def.SuspectAfter != 3*time.Second || def.DeadAfter != 10*time.Second || def.ExpireAfter != 50*time.Second {
		t.Fatalf("defaults = %+v", def)
	}
	inv := RegistryConfig{SuspectAfter: 20 * time.Second, DeadAfter: 5 * time.Second}.norm()
	if inv.DeadAfter <= inv.SuspectAfter || inv.ExpireAfter <= inv.DeadAfter {
		t.Fatalf("norm left thresholds unordered: %+v", inv)
	}
}

// TestRegistryConcurrent exercises the registry's mutators and readers
// concurrently; under -race (the Makefile race target includes this
// package) it proves the lock discipline around the shared member table.
func TestRegistryConcurrent(t *testing.T) {
	r, clk := newTestRegistry(RegistryConfig{SuspectAfter: time.Second, DeadAfter: 2 * time.Second, ExpireAfter: time.Hour})
	names := []string{"w1", "w2", "w3", "w4"}
	for _, n := range names {
		if err := r.Register(RegisterRequest{Name: n, Addr: "http://" + n}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for _, n := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Heartbeat(name, WorkerLoad{Active: i})
				if i%50 == 0 {
					r.ReportFailure(name)
				}
			}
		}(n)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Routable()
			_ = r.Snapshot()
			_ = r.Counters()
			if i%20 == 0 {
				clk.advance(10 * time.Millisecond)
			}
		}
	}()
	wg.Wait()

	// Every worker heartbeat last after any failure report it raced with;
	// end state must be a full routing set.
	for _, n := range names {
		if err := r.Heartbeat(n, WorkerLoad{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.Routable()); got != len(names) {
		t.Fatalf("routable after settling = %d, want %d", got, len(names))
	}
}
