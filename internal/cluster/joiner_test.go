package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"graphrealize"
)

// fakeCoordinator is a minimal /cluster/v1 control plane: a real Registry
// behind the two worker-facing endpoints, with a switch to simulate a
// coordinator restart (fresh empty registry → heartbeats answer 404).
type fakeCoordinator struct {
	mu  sync.Mutex
	reg *Registry
}

func (c *fakeCoordinator) registry() *Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg
}

func (c *fakeCoordinator) restart() {
	c.mu.Lock()
	c.reg = NewRegistry(RegistryConfig{SuspectAfter: time.Minute})
	c.mu.Unlock()
}

func (c *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.registry().Register(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(RegisterResponse{OK: true})
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.registry().Heartbeat(req.Name, req.Load); err != nil {
			// 404 is the §2.3 re-register signal.
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(HeartbeatResponse{OK: true})
	})
	return mux
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestJoinerLifecycle drives a worker join loop against a live control
// plane: it registers (CLUSTER.md §2.1), heartbeats its Runner load on the
// configured interval (§2.2, §3.1), and after a simulated coordinator
// restart recovers through the 404 → re-register path (§2.3) without
// operator intervention.
func TestJoinerLifecycle(t *testing.T) {
	coord := &fakeCoordinator{reg: NewRegistry(RegistryConfig{SuspectAfter: time.Minute})}
	srv := httptest.NewServer(coord.handler())
	defer srv.Close()

	jn, err := NewJoiner(JoinConfig{
		Coordinator: srv.URL,
		Name:        "w1",
		Advertise:   "http://127.0.0.1:8101",
		Capacity:    4,
		Interval:    10 * time.Millisecond,
		Stats:       func() graphrealize.RunnerStats { return graphrealize.RunnerStats{Workers: 4, Executed: 17} },
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); jn.Run(ctx) }()

	// Registration lands, then heartbeats carry the worker's load (§2.2).
	waitFor(t, "registration", func() bool {
		return len(coord.registry().Routable()) == 1
	})
	waitFor(t, "a heartbeat with load", func() bool {
		snap := coord.registry().Snapshot()
		return len(snap) == 1 && snap[0].Load.Executed == 17
	})
	if addr, ok := coord.registry().Addr("w1"); !ok || addr != "http://127.0.0.1:8101" {
		t.Fatalf("registered addr = %q/%v", addr, ok)
	}

	// Coordinator restart: the registry starts empty, heartbeats answer 404,
	// and the joiner re-registers on its own (§2.3).
	coord.restart()
	waitFor(t, "re-registration after coordinator restart", func() bool {
		return len(coord.registry().Routable()) == 1
	})
	if got := coord.registry().Counters().Registrations; got != 1 {
		t.Fatalf("registrations on restarted registry = %d, want 1", got)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("joiner did not stop on context cancellation")
	}
}

// TestJoinerConfigValidation: the three identity fields are required.
func TestJoinerConfigValidation(t *testing.T) {
	for _, cfg := range []JoinConfig{
		{Name: "w1", Advertise: "http://x"},
		{Coordinator: "http://c", Advertise: "http://x"},
		{Coordinator: "http://c", Name: "w1"},
	} {
		if _, err := NewJoiner(cfg); err == nil {
			t.Fatalf("NewJoiner(%+v) accepted an incomplete config", cfg)
		}
	}
}
