package cluster

// protocol.go defines the cluster control-plane JSON schemas, normatively
// specified in CLUSTER.md §2. The data plane — job proxying — reuses the
// service's existing /v1 JSON and graphwire wire types unchanged
// (CLUSTER.md §5), so workers need no cluster-specific endpoints at all.

// RegisterRequest is the body of POST /cluster/v1/register (CLUSTER.md
// §2.1): the worker's stable name (its hashing identity — renaming a worker
// moves its cache shard), the base URL the coordinator reaches it at, and
// its advertised capacity (worker-pool size; 0 = GOMAXPROCS, informational).
type RegisterRequest struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity,omitempty"`
}

// RegisterResponse acknowledges a registration (CLUSTER.md §2.1).
type RegisterResponse struct {
	OK bool `json:"ok"`
}

// HeartbeatRequest is the body of POST /cluster/v1/heartbeat (CLUSTER.md
// §2.2): the registered name plus a load snapshot the coordinator folds
// into its aggregate /v1/stats without fanning out.
type HeartbeatRequest struct {
	Name string     `json:"name"`
	Load WorkerLoad `json:"load"`
}

// HeartbeatResponse acknowledges a heartbeat (CLUSTER.md §2.2).
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// WorkerLoad is the worker-side Runner counter subset carried by heartbeats
// (CLUSTER.md §2.2) — the fields capacity planning and the coordinator's
// aggregate stats need, nothing more.
type WorkerLoad struct {
	Workers   int   `json:"workers"`
	Active    int   `json:"active"`
	Queued    int   `json:"queued"`
	Executed  int64 `json:"executed"`
	CacheHits int64 `json:"cache_hits"`
	CacheLen  int   `json:"cache_len"`
}

// WorkerStatus is one member row of GET /cluster/v1/workers and of the
// cluster object in /v1/stats (CLUSTER.md §7): identity, derived liveness
// state, last reported load, and how long the worker has been silent.
type WorkerStatus struct {
	Name      string     `json:"name"`
	Addr      string     `json:"addr"`
	Capacity  int        `json:"capacity,omitempty"`
	State     string     `json:"state"`
	Load      WorkerLoad `json:"load"`
	SilenceMS float64    `json:"silence_ms"`
}

// WorkersResponse is the body of GET /cluster/v1/workers (CLUSTER.md §7).
type WorkersResponse struct {
	Workers []WorkerStatus `json:"workers"`
}
