// Package cluster turns a set of grserved processes into one sharded
// service: a coordinator-side worker registry (HTTP register/heartbeat with
// liveness expiry, CLUSTER.md §2–§3), deterministic job routing by the
// Runner's canonical cache key (rendezvous hashing, §4), a remote Backend
// that proxies jobs to their owning worker over the existing JSON/graphwire
// wire types (§5), and failover that re-routes a dead worker's jobs to the
// next-ranked live worker (§6) — sound because realizations are
// seed-deterministic, so a re-run on any worker yields the identical graph.
//
// The package is the protocol's reference implementation; CLUSTER.md at the
// repository root is the normative spec, and the tests here cite it section
// by section the way internal/wire cites WIRE.md.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Score is the rendezvous weight of (worker, key): FNV-1a 64 over the
// worker name, a 0x00 separator, and the key (CLUSTER.md §4). The separator
// keeps (name, key) pair boundaries unambiguous, so distinct pairs hash
// distinct byte strings.
func Score(worker, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(worker))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Rank orders worker names by descending Score for key, breaking exact
// score ties by ascending name (CLUSTER.md §4). Rank[0] is the key's owner;
// the rest is the failover order. The input slice is not modified.
//
// This is rendezvous (highest-random-weight) hashing: each worker's score
// for a key is independent of the other workers, so removing one worker
// reassigns only the keys it owned — every other key's owner is unchanged —
// and adding a worker steals only the keys it now wins. That minimal-motion
// property is what lets the per-worker result caches shard instead of
// duplicating (§4).
func Rank(workers []string, key string) []string {
	ranked := append([]string(nil), workers...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := Score(ranked[i], key), Score(ranked[j], key)
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the key's owning worker — the Rank winner — and false when
// the worker set is empty.
func Owner(workers []string, key string) (string, bool) {
	if len(workers) == 0 {
		return "", false
	}
	best := workers[0]
	bestScore := Score(best, key)
	for _, w := range workers[1:] {
		s := Score(w, key)
		if s > bestScore || (s == bestScore && w < best) {
			best, bestScore = w, s
		}
	}
	return best, true
}
