package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a registered worker's liveness state, derived from heartbeat
// recency (CLUSTER.md §3). The state machine is alive → suspect → dead:
// silence longer than SuspectAfter makes a worker suspect (still routable),
// silence longer than DeadAfter makes it dead (unroutable), and silence
// longer than ExpireAfter removes the record entirely, after which the
// worker must re-register.
type State string

const (
	StateAlive   State = "alive"
	StateSuspect State = "suspect"
	StateDead    State = "dead"
)

// ErrUnknownWorker reports a heartbeat from a worker the registry does not
// hold — never registered, or expired. The coordinator answers 404 and the
// worker re-registers (CLUSTER.md §2.3).
var ErrUnknownWorker = errors.New("cluster: unknown worker (register first)")

// RegistryConfig tunes the liveness state machine (CLUSTER.md §3). The zero
// value selects the defaults.
type RegistryConfig struct {
	// SuspectAfter is the heartbeat silence after which a worker turns
	// suspect (default 3s). Suspect workers stay routable.
	SuspectAfter time.Duration
	// DeadAfter is the heartbeat silence after which a worker turns dead and
	// leaves the routing set (default 10s). Must exceed SuspectAfter.
	DeadAfter time.Duration
	// ExpireAfter is the heartbeat silence after which a dead worker's
	// record is removed entirely (default 5×DeadAfter).
	ExpireAfter time.Duration
}

func (c RegistryConfig) norm() RegistryConfig {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = max(10*time.Second, 2*c.SuspectAfter)
	}
	if c.ExpireAfter <= c.DeadAfter {
		c.ExpireAfter = 5 * c.DeadAfter
	}
	return c
}

// member is one registered worker's mutable record.
type member struct {
	info RegisterRequest
	load WorkerLoad
	last time.Time // last register or heartbeat
	// failed marks a worker the proxy observed down (transport error or
	// 502/503) before the heartbeat timeouts noticed: it is treated as dead
	// immediately (CLUSTER.md §6.1) until a fresh register or heartbeat
	// proves it back.
	failed bool
}

// Member is a routable worker: its stable name (the hashing identity,
// CLUSTER.md §4) and base URL.
type Member struct {
	Name string
	Addr string
}

// Registry is the coordinator's worker table. All methods are safe for
// concurrent use; liveness states are derived from heartbeat timestamps at
// read time, so the registry needs no background goroutine.
type Registry struct {
	cfg RegistryConfig
	now func() time.Time // test seam

	mu      sync.Mutex
	members map[string]*member

	registrations atomic.Int64
	heartbeats    atomic.Int64
	failovers     atomic.Int64
	expired       atomic.Int64
}

// NewRegistry creates an empty Registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{
		cfg:     cfg.norm(),
		now:     time.Now,
		members: make(map[string]*member),
	}
}

// Register adds or replaces a worker record and resets its liveness clock
// (CLUSTER.md §2.1). Registration is idempotent and doubles as revival: a
// worker the proxy marked failed, or one that expired and re-announced,
// becomes alive again.
func (r *Registry) Register(req RegisterRequest) error {
	if req.Name == "" || req.Addr == "" {
		return fmt.Errorf("cluster: register needs both name and addr (got name=%q addr=%q)", req.Name, req.Addr)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	r.members[req.Name] = &member{info: req, last: r.now()}
	r.registrations.Add(1)
	return nil
}

// Heartbeat refreshes a worker's liveness clock and load snapshot
// (CLUSTER.md §2.2). A heartbeat from an unregistered or expired worker
// returns ErrUnknownWorker; a heartbeat from a suspect, dead, or
// proxy-failed worker revives it to alive.
func (r *Registry) Heartbeat(name string, load WorkerLoad) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	m, ok := r.members[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, name)
	}
	m.load = load
	m.last = r.now()
	m.failed = false
	r.heartbeats.Add(1)
	return nil
}

// ReportFailure marks a worker dead on the proxy's evidence — a transport
// error or a 502/503 — without waiting for the heartbeat timeouts
// (CLUSTER.md §6.1), and counts one failover. The next successful heartbeat
// or registration revives it.
func (r *Registry) ReportFailure(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[name]; ok && !m.failed {
		m.failed = true
		r.failovers.Add(1)
	}
}

// stateOf derives a member's state from its liveness clock (CLUSTER.md §3).
func (r *Registry) stateOf(m *member, now time.Time) State {
	if m.failed {
		return StateDead
	}
	silence := now.Sub(m.last)
	switch {
	case silence < r.cfg.SuspectAfter:
		return StateAlive
	case silence < r.cfg.DeadAfter:
		return StateSuspect
	default:
		return StateDead
	}
}

// expireLocked removes members silent past ExpireAfter. Called under mu by
// every mutating entry point, so abandoned records cannot accumulate.
func (r *Registry) expireLocked() {
	now := r.now()
	for name, m := range r.members {
		if now.Sub(m.last) >= r.cfg.ExpireAfter {
			delete(r.members, name)
			r.expired.Add(1)
		}
	}
}

// Routable returns the current routing set — every alive or suspect member
// (CLUSTER.md §4.1: suspect workers keep their keys so a slow heartbeat
// does not reshuffle the cache shards) — sorted by name.
func (r *Registry) Routable() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		if r.stateOf(m, now) != StateDead {
			out = append(out, Member{Name: m.info.Name, Addr: m.info.Addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Addr resolves a member name to its base URL; false if the name is gone.
func (r *Registry) Addr(name string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[name]
	if !ok {
		return "", false
	}
	return m.info.Addr, true
}

// Snapshot reports every registered member — including dead ones awaiting
// expiry — sorted by name, for /v1/stats and /cluster/v1/workers
// (CLUSTER.md §7).
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked()
	now := r.now()
	out := make([]WorkerStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, WorkerStatus{
			Name:      m.info.Name,
			Addr:      m.info.Addr,
			Capacity:  m.info.Capacity,
			State:     string(r.stateOf(m, now)),
			Load:      m.load,
			SilenceMS: float64(now.Sub(m.last).Microseconds()) / 1000,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters is the registry's monotonic event counters (CLUSTER.md §7).
type Counters struct {
	Registrations int64 // register calls accepted
	Heartbeats    int64 // heartbeats accepted
	Failovers     int64 // workers marked dead on proxy evidence
	Expired       int64 // member records removed by liveness expiry
}

// Counters returns a snapshot of the registry's event counters.
func (r *Registry) Counters() Counters {
	return Counters{
		Registrations: r.registrations.Load(),
		Heartbeats:    r.heartbeats.Load(),
		Failovers:     r.failovers.Load(),
		Expired:       r.expired.Load(),
	}
}
