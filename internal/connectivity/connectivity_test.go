package connectivity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphrealize/internal/core"
	"graphrealize/internal/gen"
	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
)

func runConn(t *testing.T, rho []int, model ncc.Model, seed int64) (*ncc.Trace, error) {
	n := len(rho)
	inputs := make([]any, n)
	for i, v := range rho {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Model: model, Strict: true, Inputs: inputs})
	sortnet.RegisterOracle(s)
	tr, err := s.Run(func(nd *ncc.Node) {
		rho := nd.Input().(int)
		var out Outcome
		if nd.Model() == ncc.NCC1 {
			out = RealizeNCC1(nd, rho)
		} else {
			env := core.Setup(nd, sortnet.Oracle)
			out = RealizeNCC0(nd, env, rho)
		}
		nd.SetOutput("stored", int64(out.Stored))
		nd.SetOutput("d0", int64(out.D0))
	})
	if err != nil && t != nil {
		t.Fatalf("n=%d model=%v: %v", n, model, err)
	}
	return tr, err
}

func buildGraph(tr *ncc.Trace) *graph.Graph {
	idx := make(map[ncc.ID]int, len(tr.IDs))
	for i, id := range tr.IDs {
		idx[id] = i
	}
	g := graph.New(len(tr.IDs))
	for e := range tr.EdgeSet() {
		_ = g.AddEdge(idx[e[0]], idx[e[1]])
	}
	return g
}

// verifyThresholds checks Conn(u,v) ≥ min(ρu, ρv) for all pairs (exact
// max-flow; keep n modest).
func verifyThresholds(t *testing.T, g *graph.Graph, rho []int, label string) {
	t.Helper()
	for u := 0; u < len(rho); u++ {
		for v := u + 1; v < len(rho); v++ {
			want := rho[u]
			if rho[v] < want {
				want = rho[v]
			}
			if want == 0 {
				continue
			}
			if got := g.EdgeConnectivity(u, v); got < want {
				t.Fatalf("%s: Conn(%d,%d) = %d < min(ρ) = %d", label, u, v, got, want)
			}
		}
	}
}

func rhoCases() map[string][]int {
	return map[string][]int{
		"uniform1":  {1, 1, 1, 1, 1},
		"uniform3":  {3, 3, 3, 3, 3, 3},
		"tiered":    gen.TieredRho(16, 3, 6, 3, 1),
		"random12":  gen.UniformRho(12, 5, 3),
		"random20":  gen.UniformRho(20, 7, 4),
		"skewed":    {9, 2, 2, 2, 1, 1, 1, 1, 1, 1},
		"allbutone": {4, 4, 4, 4, 4, 1},
	}
}

func TestNCC1ConnectivityMeetsThresholds(t *testing.T) {
	for name, rho := range rhoCases() {
		tr, _ := runConn(t, rho, ncc.NCC1, 7)
		if tr.Unrealizable {
			t.Fatalf("%s: flagged unrealizable", name)
		}
		g := buildGraph(tr)
		verifyThresholds(t, g, permuteByID(tr, rho), name)
		if g.M() > seq.SumDegrees(rho) {
			t.Fatalf("%s: %d edges exceeds Σρ = %d (2-approx bound)", name, g.M(), seq.SumDegrees(rho))
		}
	}
}

func TestNCC0ConnectivityMeetsThresholds(t *testing.T) {
	for name, rho := range rhoCases() {
		tr, _ := runConn(t, rho, ncc.NCC0, 9)
		if tr.Unrealizable {
			t.Fatalf("%s: flagged unrealizable", name)
		}
		g := buildGraph(tr)
		verifyThresholds(t, g, permuteByID(tr, rho), name)
		if g.M() > seq.SumDegrees(rho) {
			t.Fatalf("%s: %d edges exceeds Σρ = %d", name, g.M(), seq.SumDegrees(rho))
		}
	}
}

// permuteByID maps the input vector (indexed by Gk position) onto the
// vertex indexing used by buildGraph (also Gk position) — the identity, kept
// as a function so tests read clearly where indices come from.
func permuteByID(tr *ncc.Trace, rho []int) []int { return rho }

func TestNCC0ExplicitStorage(t *testing.T) {
	// Every phase-2 edge must be stored at both endpoints (explicit).
	rho := gen.UniformRho(14, 4, 11)
	tr, _ := runConn(t, rho, ncc.NCC0, 11)
	counts := map[[2]ncc.ID]int{}
	for id, nr := range tr.Nodes {
		for _, p := range nr.Neighbors {
			a, b := id, p
			if a > b {
				a, b = b, a
			}
			counts[[2]ncc.ID{a, b}]++
		}
	}
	twice := 0
	for _, c := range counts {
		if c == 2 {
			twice++
		}
		if c > 2 {
			t.Fatalf("an edge was stored %d times", c)
		}
	}
	if twice == 0 {
		t.Fatal("no edge stored at both endpoints; realization is not explicit")
	}
}

func TestConnectivityRejectsInfeasible(t *testing.T) {
	for _, model := range []ncc.Model{ncc.NCC0, ncc.NCC1} {
		tr, err := runConn(nil, []int{5, 1, 1}, model, 13) // ρ > n-1
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if !tr.Unrealizable {
			t.Fatalf("%v: infeasible ρ accepted", model)
		}
	}
}

func TestQuickConnectivityBothModels(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 4
		rho := make([]int, n)
		for i := range rho {
			rho[i] = 1 + rng.Intn(n-1)
		}
		for _, model := range []ncc.Model{ncc.NCC0, ncc.NCC1} {
			tr, err := runConn(nil, rho, model, seed)
			if err != nil || tr.Unrealizable {
				return false
			}
			g := buildGraph(tr)
			if g.M() > seq.SumDegrees(rho) {
				return false
			}
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					want := rho[u]
					if rho[v] < want {
						want = rho[v]
					}
					if g.EdgeConnectivity(u, v) < want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNCC1RoundsArePolylog(t *testing.T) {
	// Theorem 17: O~(1); with the Gk-tree setup this is O(log n) rounds,
	// independent of Δ.
	for _, n := range []int{64, 256, 1024} {
		rho := gen.UniformRho(n, n/4, int64(n))
		tr, _ := runConn(t, rho, ncc.NCC1, int64(n))
		K := ncc.CeilLog2(n)
		if tr.Metrics.Rounds > 12*K+40 {
			t.Fatalf("n=%d: NCC1 connectivity took %d rounds (Δ=%d)", n, tr.Metrics.Rounds, n/4)
		}
	}
}

func TestNCC0RoundsScaleWithDelta(t *testing.T) {
	// Theorem 18: O~(Δ). Verify rounds grow with Δ but stay within
	// c·Δ·log n + sort/setup charges.
	n := 128
	K := ncc.CeilLog2(n)
	measure := func(maxRho int) int {
		rho := gen.UniformRho(n, maxRho, 5)
		tr, _ := runConn(t, rho, ncc.NCC0, 5)
		return tr.Metrics.Rounds
	}
	r4, r32 := measure(4), measure(32)
	if r32 <= r4 {
		t.Fatalf("rounds did not grow with Δ: %d vs %d", r4, r32)
	}
	// Upper bound: waves cost ≤ 2K per distance plus phases of the core
	// realization (each with a K³ sort charge).
	if r32 > 40*K*K*K+2*32*2*K+400*K {
		t.Fatalf("Δ=32 rounds %d exceed the O~(Δ) budget", r32)
	}
}
