package connectivity

import (
	"reflect"
	"testing"

	"graphrealize/internal/core"
	"graphrealize/internal/ncc"
	"graphrealize/internal/sortnet"
)

// step_test.go checks the resumable-step compilation of the connectivity
// realizations: RealizeNCC1Step and RealizeNCC0Step driven by the flat
// scheduler must produce traces byte-identical to the blocking forms under
// the barrier driver.

func runConnStepFlat(t *testing.T, rho []int, model ncc.Model, seed int64) (*ncc.Trace, error) {
	t.Helper()
	n := len(rho)
	inputs := make([]any, n)
	for i, v := range rho {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Model: model, Strict: true, Inputs: inputs, Sched: ncc.SchedFlat})
	sortnet.RegisterOracle(s)
	return s.RunProgram(func(nd *ncc.Node) ncc.Op {
		rho := nd.Input().(int)
		done := func(out Outcome) ncc.Op {
			nd.SetOutput("stored", int64(out.Stored))
			nd.SetOutput("d0", int64(out.D0))
			return ncc.Done()
		}
		if nd.Model() == ncc.NCC1 {
			return RealizeNCC1Step(nd, rho, done)
		}
		return core.SetupStep(nd, sortnet.Oracle, func(env *core.Env) ncc.Op {
			return RealizeNCC0Step(nd, env, rho, done)
		})
	})
}

func TestConnectivityStepMatchesBlocking(t *testing.T) {
	cases := []struct {
		name  string
		rho   []int
		model ncc.Model
	}{
		{"ncc1", []int{2, 2, 2, 2, 1, 1}, ncc.NCC1},
		{"ncc0", []int{2, 2, 2, 2, 1, 1}, ncc.NCC0},
		{"ncc0-zero", []int{0, 0, 0}, ncc.NCC0},
		{"ncc1-single", []int{0}, ncc.NCC1},
		{"ncc0-bad", []int{9, 1, 1}, ncc.NCC0},
	}
	for _, c := range cases {
		seed := int64(len(c.rho))*19 + 1
		base, berr := runConn(nil, c.rho, c.model, seed)
		flat, ferr := runConnStepFlat(t, c.rho, c.model, seed)
		if (berr == nil) != (ferr == nil) || (berr != nil && berr.Error() != ferr.Error()) {
			t.Fatalf("%s: errors differ: blocking=%v flat=%v", c.name, berr, ferr)
		}
		if berr != nil {
			continue
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("%s: flat step trace differs from blocking barrier trace", c.name)
		}
	}
}
