// Package connectivity implements the minimum connectivity-threshold
// realizations of §6. Each node holds ρ(v) = max_u σ(u,v), and the output
// overlay G guarantees Conn_G(u,v) ≥ min(ρ(u), ρ(v)) with at most Σρ edges —
// a 2-approximation of the optimal edge count (whose lower bound is Σρ/2).
//
//   - RealizeNCC1 (Theorem 17): the O~(1) implicit algorithm for NCC1 —
//     find the node w with maximum ρ by aggregation, then every node v
//     locally picks X_v = {w} ∪ (ρ(v)−1 arbitrary other nodes) and stores
//     X_v × {v}. Correctness follows from Menger's theorem via the star of
//     edge-disjoint paths through w.
//   - RealizeNCC0 (Theorem 18, Algorithm 6): sort by non-increasing ρ;
//     realize (ρ(x₁),…,ρ(x_{d₀+1})) on the d₀+1 core nodes via the
//     upper-envelope degree realization of Theorem 13; then every later
//     rank i connects explicitly to its ρ(xᵢ) immediate predecessors using
//     uniform-shift waves, O~(Δ) rounds in total.
package connectivity

import (
	"graphrealize/internal/aggregate"
	"graphrealize/internal/core"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
	"graphrealize/internal/rankov"
	"graphrealize/internal/sortnet"
)

// Outcome reports a node's view of the connectivity realization.
type Outcome struct {
	// OK is false if the threshold vector is infeasible (ρ outside [0,n−1]).
	OK bool
	// Stored counts the edges this node stored.
	Stored int
	// D0 is the maximum threshold (common knowledge after the run).
	D0 int
}

// RealizeNCC1 runs the Theorem 17 algorithm. It must run under the NCC1
// model (it uses full ID knowledge); rho is this node's threshold.
func RealizeNCC1(nd *ncc.Node, rho int) Outcome {
	var out Outcome
	ncc.RunOps(nd, RealizeNCC1Step(nd, rho, func(o Outcome) ncc.Op { out = o; return ncc.Done() }))
	return out
}

// RealizeNCC1Step is the resumable form of RealizeNCC1.
func RealizeNCC1Step(nd *ncc.Node, rho int, k func(Outcome) ncc.Op) ncc.Op {
	out := Outcome{}
	n := nd.N()
	// Even NCC1 needs a structure for aggregation; the Gk tree costs
	// O(log n) rounds and keeps the protocol identical to the NCC0 stack.
	return primitives.BuildAllStep(nd, func(_ primitives.Path, _ primitives.Levels, gk primitives.Tree) ncc.Op {
		bad := int64(0)
		if rho < 0 || rho > n-1 {
			bad = 1
		}
		return aggregate.AggregateBroadcastStep(nd, &gk, bad, aggregate.OrOp(), func(anyBad int64) ncc.Op {
			if anyBad == 1 {
				nd.Unrealizable()
				return k(out)
			}
			out.OK = true
			if n == 1 {
				return k(out)
			}
			// Find w = argmax ρ (ties toward the smaller ID), by encoded max.
			enc := int64(rho)*int64(n+2) + int64(n+1) - int64(nd.ID())
			return aggregate.AggregateBroadcastStep(nd, &gk, enc, aggregate.MaxOp(), func(best int64) ncc.Op {
				w := ncc.ID(int64(n+1) - best%int64(n+2))
				out.D0 = int(best / int64(n+2))
				if nd.ID() == w || rho == 0 {
					return k(out)
				}
				// X_v = {w} plus the first ρ(v)−1 other IDs, entirely local
				// in NCC1.
				nd.AddEdge(w)
				out.Stored++
				for _, id := range nd.AllIDs() {
					if out.Stored >= rho {
						break
					}
					if id == nd.ID() || id == w {
						continue
					}
					nd.AddEdge(id)
					out.Stored++
				}
				return k(out)
			})
		})
	})
}

// RealizeNCC0 runs Algorithm 6 (works in NCC0 and NCC1). env must come from
// core.Setup on the same run; rho is this node's threshold. The realization
// is explicit: both endpoints of every edge store it.
func RealizeNCC0(nd *ncc.Node, env *core.Env, rho int) Outcome {
	var out Outcome
	ncc.RunOps(nd, RealizeNCC0Step(nd, env, rho, func(o Outcome) ncc.Op { out = o; return ncc.Done() }))
	return out
}

// RealizeNCC0Step is the resumable form of RealizeNCC0.
func RealizeNCC0Step(nd *ncc.Node, env *core.Env, rho int, k func(Outcome) ncc.Op) ncc.Op {
	out := Outcome{}
	n := nd.N()
	bad := int64(0)
	if rho < 0 || rho > n-1 {
		bad = 1
	}
	return aggregate.AggregateBroadcastStep(nd, &env.GK, bad, aggregate.OrOp(), func(anyBad int64) ncc.Op {
		if anyBad == 1 {
			nd.Unrealizable()
			return k(out)
		}
		out.OK = true
		if n == 1 {
			return k(out)
		}

		// Step 1–2: sort by non-increasing ρ and broadcast d₀ = ρ(x₁).
		return env.Sort.SortStep(nd, int64(rho), func(sr sortnet.Result) ncc.Op {
			return rankov.BuildStep(nd, sr.Rank, sr.Pred, sr.Succ, func(ov *rankov.Overlay) ncc.Op {
				return aggregate.AggregateBroadcastStep(nd, &env.GK, int64(rho), aggregate.MaxOp(), func(d064 int64) ncc.Op {
					d0 := int(d064)
					out.D0 = d0
					if d0 == 0 {
						return k(out)
					}

					// Step 3: upper-envelope degree realization over the core
					// x₁..x_{d₀+1} (Theorem 13), made explicit so the Menger
					// star argument applies with both endpoints aware.
					inCore := sr.Rank <= d0
					coreDeg := 0
					if inCore {
						coreDeg = rho
					}
					return core.RealizeStep(nd, env, coreDeg, core.Envelope, inCore, func(degOut core.Outcome) ncc.Op {
						out.Stored += len(degOut.Neighbors)
						return core.MakeExplicitStep(nd, env, degOut.Neighbors, d0, func(stored int) ncc.Op {
							out.Stored += stored

							// Steps 4–6: each rank i > d₀ introduces itself to
							// its ρ predecessors via uniform-shift waves; each
							// wave w serves distance w in ⌈log n⌉ rounds with
							// zero contention, and the reverse wave makes it
							// explicit.
							tailRho := int64(0)
							if sr.Rank > d0 {
								tailRho = int64(rho)
							}
							return aggregate.AggregateBroadcastStep(nd, &env.GK, tailRho, aggregate.MaxOp(), func(maxW64 int64) ncc.Op {
								maxW := int(maxW64)
								var wave func(w int) ncc.Op
								wave = func(w int) ncc.Op {
									if w > maxW {
										return k(out)
									}
									var tok *rankov.ShiftToken
									if sr.Rank > d0 && rho >= w {
										tok = &rankov.ShiftToken{ID: nd.ID()}
									}
									return rankov.ShiftDownStep(nd, ov, tok, w, func(down []rankov.ShiftToken) ncc.Op {
										var reply *rankov.ShiftToken
										for _, got := range down {
											nd.AddEdge(got.ID)
											out.Stored++
											reply = &rankov.ShiftToken{ID: nd.ID()}
										}
										return rankov.ShiftUpStep(nd, ov, reply, w, func(up []rankov.ShiftToken) ncc.Op {
											for _, got := range up {
												nd.AddEdge(got.ID)
												out.Stored++
											}
											return wave(w + 1)
										})
									})
								}
								return wave(1)
							})
						})
					})
				})
			})
		})
	})
}
