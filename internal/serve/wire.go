package serve

import (
	"encoding/json"
	"net/http"
	"strings"

	"graphrealize"
	"graphrealize/internal/wire"
)

// wire.go is the content-negotiation seam (WIRE.md §10, DESIGN.md §9):
// when a request's Accept header asks for application/x-graphwire, the
// realization and job-result routes stream the graphwire binary encoding
// instead of JSON. JSON stays the default — absence, */*, and any other
// media range all keep the historical body — and errors are always JSON,
// because every error is mapped to its status before the first response
// byte is written.

// wantsWire reports whether the request explicitly negotiates the
// graphwire response encoding: application/x-graphwire listed in Accept.
// Wildcards do not opt in — a generic client must keep getting JSON.
func wantsWire(r *http.Request) bool {
	for _, header := range r.Header.Values("Accept") {
		for part := range strings.SplitSeq(header, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if strings.EqualFold(mt, wire.MediaType) {
				return true
			}
		}
	}
	return false
}

// writeWire streams one graphwire response: doc (the JSON body the route
// would otherwise send, minus any edge list) as the JMETA chunk, then g's
// graph section when g is non-nil, then END (WIRE.md §3).
//
// Contract with the flush-audit fix: every error→status decision has
// already happened by the time this runs — the only pre-commit failure
// left is marshaling doc, which is checked before the header is written,
// so a client never sees a 200 followed by a JSON error or vice versa.
// A mid-stream write failure simply truncates the stream, which the
// framing makes detectable (WIRE.md §5.3): no status rewrite is possible
// or attempted after the first chunk.
func writeWire(w http.ResponseWriter, doc any, g *graphrealize.Graph) {
	meta, err := json.Marshal(doc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response metadata: %v", err)
		return
	}
	w.Header().Set("Content-Type", wire.MediaType)
	w.WriteHeader(http.StatusOK)

	enc := wire.NewEncoder(w)
	if canFlush(w) {
		// Push each framed chunk to the client as it is cut, so first-byte
		// latency is decoupled from graph size.
		rc := http.NewResponseController(w)
		enc.Flush = func() error { return rc.Flush() }
	}
	if err := enc.WriteJSONMeta(meta); err != nil {
		return
	}
	if g != nil {
		if err := enc.WriteGraph(g.N, g.Adj); err != nil {
			return // truncated stream: the missing END chunk reports it
		}
	}
	_ = enc.Close()
}
