package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"graphrealize/internal/cluster"
	"graphrealize/internal/obs"
)

// metrics.go renders GET /metrics in the Prometheus text exposition format
// (version 0.0.4) with no external dependencies: the Runner's admission /
// execution counters, per-route HTTP latency histograms, job queue-wait and
// run-duration histograms, per-driver engine round histograms with phase
// counters, and — when the async subsystem is enabled — the job manager's
// per-state gauges, subscriber gauge, and GC eviction counter. Every family
// is emitted in a fixed order with sorted series, so consecutive scrapes of
// an idle server differ only in the metrics route's own latency series (each
// scrape observes the previous one) — pinned by TestMetricsStableAcrossScrapes.

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// metricsWriter accumulates one exposition document.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func (m *metricsWriter) counter(name, help string, v float64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
}

// labeled emits one gauge family with a single label dimension, rows sorted
// for a stable exposition.
func (m *metricsWriter) labeled(name, help, label string, rows map[string]int) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&m.b, "%s{%s=%q} %d\n", name, label, k, rows[k])
	}
}

// histogram emits one histogram family; the caller passes series in its
// fixed exposition order.
func (m *metricsWriter) histogram(name, help string, series ...obs.HistogramSeries) {
	obs.WriteHistogram(&m.b, name, help, series...)
}

// labeledCounter is one row of a multi-label counter family. Labels must be
// pre-rendered with keys in alphabetical order.
type labeledCounter struct {
	labels string
	value  float64
}

func (m *metricsWriter) counterSeries(name, help string, rows []labeledCounter) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, row := range rows {
		fmt.Fprintf(&m.b, "%s{%s} %g\n", name, row.labels, row.value)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Backend.Stats()
	var mw metricsWriter

	mw.gauge("graphrealize_runner_workers", "Size of the Runner worker pool.", float64(st.Workers))
	mw.gauge("graphrealize_runner_queue_limit", "Admission queue bound (-1 = unbounded).", float64(st.QueueLimit))
	mw.gauge("graphrealize_runner_active_jobs", "Jobs executing right now.", float64(st.Active))
	mw.gauge("graphrealize_runner_queued_jobs", "Jobs admitted and waiting for a worker.", float64(st.Queued))
	mw.counter("graphrealize_runner_submitted_total", "Submissions accepted (including cache-served).", float64(st.Submitted))
	mw.counter("graphrealize_runner_rejected_total", "Submissions refused with queue-full backpressure.", float64(st.Rejected))
	mw.counter("graphrealize_runner_executed_total", "Jobs that acquired a worker.", float64(st.Executed))
	mw.counter("graphrealize_runner_completed_total", "Executed jobs that finished without error.", float64(st.Completed))
	mw.counter("graphrealize_runner_failed_total", "Executed jobs that finished with a non-cancellation error.", float64(st.Failed))
	mw.counter("graphrealize_runner_canceled_total", "Jobs abandoned by cancellation or timeout.", float64(st.Canceled))
	mw.counter("graphrealize_runner_cache_hits_total", "Submissions served from the result cache.", float64(st.CacheHits))
	mw.gauge("graphrealize_runner_cache_entries", "Distinct results currently cached.", float64(st.CacheLen))
	mw.counter("graphrealize_runner_wait_seconds_total", "Cumulative time jobs spent queued.", st.TotalWait.Seconds())
	mw.counter("graphrealize_runner_run_seconds_total", "Cumulative time jobs spent executing.", st.TotalRun.Seconds())

	// HTTP latency distributions, one series per fixed route label.
	routeSeries := make([]obs.HistogramSeries, 0, len(routeNames))
	for _, route := range routeNames {
		routeSeries = append(routeSeries, obs.HistogramSeries{
			Labels: fmt.Sprintf("route=%q", route),
			Snap:   s.routeHist[route].Snapshot(),
		})
	}
	mw.histogram("graphrealize_http_request_seconds", "HTTP request latency by route.", routeSeries...)

	if o := s.runnerObs; o != nil {
		mw.histogram("graphrealize_runner_queue_wait_seconds",
			"Time executed jobs spent queued for a worker.",
			obs.HistogramSeries{Snap: o.QueueWait.Snapshot()})
		mw.histogram("graphrealize_runner_job_run_seconds",
			"Execution time of jobs that acquired a worker.",
			obs.HistogramSeries{Snap: o.Run.Snapshot()})

		// Engine phase profile per scheduler driver: a round-duration
		// histogram, cumulative per-phase wall time, and the round counter.
		roundSeries := make([]obs.HistogramSeries, 0, len(schedulers))
		phaseRows := make([]labeledCounter, 0, 3*len(schedulers))
		roundRows := make([]labeledCounter, 0, len(schedulers))
		for _, sched := range schedulers {
			p := o.SchedProfile(sched)
			snap := p.Snapshot()
			name := sched.String()
			roundSeries = append(roundSeries, obs.HistogramSeries{
				Labels: fmt.Sprintf("scheduler=%q", name),
				Snap:   p.Round.Snapshot(),
			})
			for _, ph := range []struct {
				phase string
				total float64
			}{
				{"barrier", snap.Barrier.Seconds()},
				{"compute", snap.Compute.Seconds()},
				{"delivery", snap.Delivery.Seconds()},
			} {
				phaseRows = append(phaseRows, labeledCounter{
					labels: fmt.Sprintf("phase=%q,scheduler=%q", ph.phase, name),
					value:  ph.total,
				})
			}
			roundRows = append(roundRows, labeledCounter{
				labels: fmt.Sprintf("scheduler=%q", name),
				value:  float64(snap.Rounds),
			})
		}
		mw.histogram("graphrealize_engine_round_seconds", "Engine round duration by scheduler driver.", roundSeries...)
		mw.counterSeries("graphrealize_engine_phase_seconds_total",
			"Cumulative engine round wall time split by phase and scheduler driver.", phaseRows)
		mw.counterSeries("graphrealize_engine_rounds_total",
			"Engine rounds profiled per scheduler driver.", roundRows)
	}

	if s.cfg.Jobs != nil {
		js := s.cfg.Jobs.StatsSnapshot()
		byState := make(map[string]int, len(js.Jobs))
		for state, n := range js.Jobs {
			byState[string(state)] = n
		}
		mw.labeled("graphrealize_async_jobs", "Retained async jobs by lifecycle state.", "state", byState)
		mw.gauge("graphrealize_async_retained_jobs", "Total retained async job records.", float64(js.Retained))
		mw.gauge("graphrealize_async_subscribers", "Open job event subscriptions.", float64(js.Subscribers))
		mw.counter("graphrealize_async_evictions_total", "Async job records removed by GC or capacity eviction.", float64(js.Evictions))

		// Durability: recovery outcomes of the last restart plus the live
		// WAL/compaction gauges (all zero when -data-dir is unset).
		mw.gauge("graphrealize_async_store_durable", "1 when jobs are persisted to a data dir, 0 for in-memory.", b2f(js.Store.Durable))
		mw.counter("graphrealize_async_recovered_terminal_total", "Terminal jobs reloaded from the durable store at startup.", float64(js.RecoveredTerminal))
		mw.counter("graphrealize_async_recovered_requeued_total", "In-flight jobs re-queued from the durable store at startup.", float64(js.RecoveredRequeued))
		mw.counter("graphrealize_async_recovered_reassigned_total", "In-flight jobs not re-run at startup because this process no longer owns them.", float64(js.RecoveredReassigned))
		mw.counter("graphrealize_async_persist_errors_total", "Durable-store operations that failed (durability degraded).", float64(js.PersistErrors))
		// Segment gauges, not counters: both reset to zero at every
		// compaction, when the WAL is truncated into the snapshot.
		mw.gauge("graphrealize_async_wal_records", "Lifecycle records in the current WAL segment.", float64(js.Store.WALRecords))
		mw.gauge("graphrealize_async_wal_bytes", "Bytes in the current WAL segment.", float64(js.Store.WALBytes))
		mw.counter("graphrealize_async_compactions_total", "Snapshot compactions since startup.", float64(js.Store.Compactions))
		mw.counter("graphrealize_async_wal_replay_errors_total", "Corrupt or truncated WAL records dropped at startup.", float64(js.Store.ReplayErrors))
	}

	if c := s.cfg.Cluster; c != nil {
		// Coordinator families (CLUSTER.md §7.2): the member gauge always
		// emits all three state rows so dashboards see explicit zeros, plus
		// the control-plane and proxy counters.
		byState := map[string]int{
			string(cluster.StateAlive):   0,
			string(cluster.StateSuspect): 0,
			string(cluster.StateDead):    0,
		}
		for _, ws := range c.Registry().Snapshot() {
			byState[ws.State]++
		}
		mw.labeled("graphrealize_cluster_workers", "Registered workers by liveness state.", "state", byState)
		ct := c.Registry().Counters()
		pc := c.ProxyCounters()
		mw.counter("graphrealize_cluster_registrations_total", "Worker registrations accepted.", float64(ct.Registrations))
		mw.counter("graphrealize_cluster_heartbeats_total", "Worker heartbeats accepted.", float64(ct.Heartbeats))
		mw.counter("graphrealize_cluster_failovers_total", "Workers marked dead on proxy evidence (jobs re-routed).", float64(ct.Failovers))
		mw.counter("graphrealize_cluster_expired_total", "Worker records removed by liveness expiry.", float64(ct.Expired))
		mw.counter("graphrealize_cluster_proxied_total", "Jobs proxied to workers (including failover retries).", float64(pc.Proxied))
		mw.counter("graphrealize_cluster_proxy_errors_total", "Proxied jobs that hit a down worker and re-routed.", float64(pc.ProxyErrors))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, mw.b.String())
}
