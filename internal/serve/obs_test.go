package serve_test

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"graphrealize"
	"graphrealize/internal/serve"
)

// obs_test.go covers the observability layer end to end over httptest:
// trace-ID adoption/minting and propagation into jobs, the slowest-jobs
// endpoint, per-route latency histograms, and the validity and stability of
// the full /metrics exposition.

const seqBody = `{"sequence":[3,3,2,2,2,2]}`

func TestTraceIDAdoptedAndEchoed(t *testing.T) {
	h := realServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/realize/degree", strings.NewReader(seqBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "client-trace-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("realize: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-Id"); got != "client-trace-1" {
		t.Fatalf("valid client trace ID not echoed: got %q", got)
	}
}

func TestTraceIDMintedWhenMissingOrInvalid(t *testing.T) {
	h := realServer(t)
	for _, header := range []string{"", "has spaces", strings.Repeat("x", 300)} {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if header != "" {
			req.Header.Set("X-Request-Id", header)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get("X-Request-Id")
		if got == "" || got == header {
			t.Fatalf("header %q: want a freshly minted trace ID, got %q", header, got)
		}
		if len(got) != 16 {
			t.Fatalf("minted trace ID %q has length %d, want 16", got, len(got))
		}
	}
}

// TestTraceIDThroughAsyncJob follows one X-Request-Id from submission through
// the job JSON, the SSE event stream, and the slowest-jobs flight recorder.
func TestTraceIDThroughAsyncJob(t *testing.T) {
	h, _ := asyncServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"kind":"degrees","sequence":[3,3,2,2,2,2]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "async-trace-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	sub := decodeInto[serve.JobJSON](t, rec)
	if sub.TraceID != "async-trace-7" {
		t.Fatalf("202 body trace_id = %q, want async-trace-7", sub.TraceID)
	}

	final := pollJob(t, h, sub.ID, "done")
	if final.TraceID != "async-trace-7" {
		t.Fatalf("job GET trace_id = %q, want async-trace-7", final.TraceID)
	}

	// The terminal SSE event carries the trace ID too.
	events := do(t, h, http.MethodGet, "/v1/jobs/"+sub.ID+"/events", "")
	if events.Code != http.StatusOK {
		t.Fatalf("events: %d", events.Code)
	}
	var sawTrace bool
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"trace_id":"async-trace-7"`) {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatal("no SSE event carried the trace ID")
	}

	// The executed job must be attributable in the flight recorder.
	slow := do(t, h, http.MethodGet, "/v1/debug/slowest", "")
	if slow.Code != http.StatusOK {
		t.Fatalf("slowest: %d", slow.Code)
	}
	resp := decodeInto[serve.SlowestResponse](t, slow)
	found := false
	for _, e := range resp.Slowest {
		if e.TraceID == "async-trace-7" {
			found = true
			if e.Kind != "degrees" || e.N != 6 || e.RunMS <= 0 {
				t.Fatalf("flight entry fields wrong: %+v", e)
			}
			if e.Rounds == 0 {
				t.Fatalf("flight entry recorded no engine rounds: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("trace ID absent from /v1/debug/slowest: %+v", resp.Slowest)
	}
}

func TestSlowestEmptyWithScriptedBackend(t *testing.T) {
	fb := &fakeBackend{}
	h := serve.New(serve.Config{Backend: fb}).Handler()
	rec := do(t, h, http.MethodGet, "/v1/debug/slowest", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("slowest: %d", rec.Code)
	}
	resp := decodeInto[serve.SlowestResponse](t, rec)
	if len(resp.Slowest) != 0 {
		t.Fatalf("scripted backend reported flight entries: %+v", resp.Slowest)
	}
}

// TestMetricsHistogramsExposed pins the new families: per-route HTTP latency,
// job queue-wait and run histograms, and the per-driver engine phase series.
func TestMetricsHistogramsExposed(t *testing.T) {
	h := realServer(t)
	if rec := post(t, h, "/v1/realize/degree", seqBody); rec.Code != http.StatusOK {
		t.Fatalf("realize: %d", rec.Code)
	}
	rec := do(t, h, http.MethodGet, "/metrics", "")
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE graphrealize_http_request_seconds histogram",
		`graphrealize_http_request_seconds_bucket{route="realize",le="+Inf"} 1`,
		`graphrealize_http_request_seconds_count{route="realize"} 1`,
		`graphrealize_http_request_seconds_bucket{route="healthz",le="+Inf"} 0`,
		"# TYPE graphrealize_runner_queue_wait_seconds histogram",
		"graphrealize_runner_queue_wait_seconds_count 1",
		"# TYPE graphrealize_runner_job_run_seconds histogram",
		"graphrealize_runner_job_run_seconds_count 1",
		"# TYPE graphrealize_engine_round_seconds histogram",
		`graphrealize_engine_round_seconds_bucket{scheduler="barrier",le="+Inf"}`,
		"# TYPE graphrealize_engine_phase_seconds_total counter",
		`graphrealize_engine_phase_seconds_total{phase="compute",scheduler="barrier"}`,
		`graphrealize_engine_phase_seconds_total{phase="delivery",scheduler="flat"} 0`,
		"# TYPE graphrealize_engine_rounds_total counter",
		`graphrealize_engine_rounds_total{scheduler="pool"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	// The barrier driver actually ran, so its round counter must be positive.
	re := regexp.MustCompile(`graphrealize_engine_rounds_total\{scheduler="barrier"\} (\d+)`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatal("barrier rounds counter not found")
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Fatal("barrier driver executed a job but profiled zero rounds")
	}
}

// TestMetricsStableAcrossScrapes pins exposition determinism: two
// consecutive scrapes of an otherwise idle server are identical except for
// the metrics route's own latency series (each scrape observes the one
// before it).
func TestMetricsStableAcrossScrapes(t *testing.T) {
	h, _ := asyncServer(t)
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[2,2,2]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	pollJob(t, h, decodeInto[serve.JobJSON](t, rec).ID, "done")

	stripSelf := func(body string) string {
		var keep []string
		for _, line := range strings.Split(body, "\n") {
			if strings.Contains(line, `route="metrics"`) {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	a := do(t, h, http.MethodGet, "/metrics", "").Body.String()
	b := do(t, h, http.MethodGet, "/metrics", "").Body.String()
	if stripSelf(a) != stripSelf(b) {
		t.Fatalf("consecutive scrapes differ beyond the self-observation series:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestMetricsValidExposition parse-checks the whole payload against the
// Prometheus text format: every line is a comment or a sample, every sample
// value parses, and every family's HELP and TYPE precede its samples.
func TestMetricsValidExposition(t *testing.T) {
	h, _ := asyncServer(t)
	if rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[2,2,2]}`); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	body := do(t, h, http.MethodGet, "/metrics", "").Body.String()

	helpRe := regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
	labelsRe := regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\}$`)

	declared := map[string]bool{} // family → HELP+TYPE seen
	sawSamples := false
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if declared[m[1]] {
				t.Fatalf("line %d: duplicate HELP for family %q", i+1, m[1])
			}
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			declared[m[1]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d is neither comment nor sample: %q", i+1, line)
		}
		sawSamples = true
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if !declared[m[1]] && !declared[family] {
			t.Fatalf("line %d: sample %q precedes its TYPE declaration", i+1, m[1])
		}
		if m[2] != "" && !labelsRe.MatchString(m[2]) {
			t.Fatalf("line %d: malformed label set %q", i+1, m[2])
		}
		if v := m[3]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("line %d: sample value %q does not parse: %v", i+1, v, err)
			}
		}
	}
	if !sawSamples {
		t.Fatal("exposition contained no samples")
	}
}

// TestStatsQuantilesAndPhases pins /v1/stats' histogram-derived run
// quantiles and per-driver phase report against a real Runner.
func TestStatsQuantilesAndPhases(t *testing.T) {
	h := realServer(t)
	if rec := post(t, h, "/v1/realize/degree", seqBody); rec.Code != http.StatusOK {
		t.Fatalf("realize: %d", rec.Code)
	}
	rec := do(t, h, http.MethodGet, "/v1/stats", "")
	st := decodeInto[serve.StatsResponse](t, rec)
	if st.Executed != 1 {
		t.Fatalf("executed = %d, want 1", st.Executed)
	}
	if st.P50RunMS <= 0 || st.P95RunMS < st.P50RunMS || st.P99RunMS < st.P95RunMS {
		t.Fatalf("quantiles not positive/monotone: p50=%g p95=%g p99=%g", st.P50RunMS, st.P95RunMS, st.P99RunMS)
	}
	if len(st.Phases) != 3 {
		t.Fatalf("phases report %d drivers, want 3: %+v", len(st.Phases), st.Phases)
	}
	if st.Phases["barrier"].Rounds == 0 {
		t.Fatalf("barrier driver ran but reports zero rounds: %+v", st.Phases)
	}
	if st.Phases["pool"].Rounds != 0 || st.Phases["flat"].Rounds != 0 {
		t.Fatalf("idle drivers report rounds: %+v", st.Phases)
	}
	// A scripted backend without instruments omits the whole section.
	h2 := serve.New(serve.Config{Backend: &fakeBackend{stats: graphrealize.RunnerStats{Executed: 5}}}).Handler()
	st2 := decodeInto[serve.StatsResponse](t, do(t, h2, http.MethodGet, "/v1/stats", ""))
	if st2.Phases != nil || st2.P50RunMS != 0 {
		t.Fatalf("instrument-less backend leaked quantiles/phases: %+v", st2)
	}
}
