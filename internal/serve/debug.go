package serve

import (
	"net/http"
	"time"
)

// debug.go serves GET /v1/debug/slowest: the Runner's flight recorder of the
// slowest executed jobs, so a latency outlier is attributable — trace ID,
// job shape, queue wait, and engine phase breakdown — from one curl, without
// external tracing infrastructure. The endpoint is always registered; with a
// backend that exposes no instruments (scripted tests) it returns an empty
// list.

// SlowJobJSON is one entry of GET /v1/debug/slowest.
type SlowJobJSON struct {
	TraceID   string `json:"trace_id,omitempty"`
	Kind      string `json:"kind"`
	Label     string `json:"label,omitempty"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	Scheduler string `json:"scheduler"`

	WaitMS float64 `json:"wait_ms"`
	RunMS  float64 `json:"run_ms"`

	// Engine phase breakdown over the job's completed rounds; all zero for
	// jobs that never drove the engine (e.g. in-run cache hits).
	Rounds     int64   `json:"rounds"`
	ComputeMS  float64 `json:"compute_ms"`
	DeliveryMS float64 `json:"delivery_ms"`
	BarrierMS  float64 `json:"barrier_ms"`

	Error      string    `json:"error,omitempty"`
	FinishedAt time.Time `json:"finished_at"`
}

// SlowestResponse is the body of GET /v1/debug/slowest, slowest run first.
type SlowestResponse struct {
	Slowest []SlowJobJSON `json:"slowest"`
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleDebugSlowest(w http.ResponseWriter, r *http.Request) {
	resp := SlowestResponse{Slowest: []SlowJobJSON{}}
	if s.runnerObs != nil {
		for _, e := range s.runnerObs.Recorder.Slowest() {
			resp.Slowest = append(resp.Slowest, SlowJobJSON{
				TraceID:    e.TraceID,
				Kind:       e.Kind,
				Label:      e.Label,
				N:          e.N,
				Seed:       e.Seed,
				Scheduler:  e.Scheduler,
				WaitMS:     durMS(e.Wait),
				RunMS:      durMS(e.Run),
				Rounds:     e.Rounds,
				ComputeMS:  durMS(e.Compute),
				DeliveryMS: durMS(e.Delivery),
				BarrierMS:  durMS(e.Barrier),
				Error:      e.Err,
				FinishedAt: e.Finished,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
