package serve

import (
	"fmt"
	"strings"
	"time"

	"graphrealize"
	"graphrealize/internal/cluster"
	"graphrealize/internal/jobs"
)

// types.go defines the service's JSON wire format and its mapping onto the
// graphrealize facade types. The wire format is deliberately flat: every
// field of Options and Stats is representable, sequences are plain integer
// arrays, and graphs travel as (u < v) edge lists.

// OptionsJSON mirrors graphrealize.Options with JSON-friendly enums.
type OptionsJSON struct {
	// Model is "ncc0" (default) or "ncc1".
	Model string `json:"model,omitempty"`
	// Seed makes the run deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Strict turns capacity violations into errors.
	Strict bool `json:"strict,omitempty"`
	// CapMul scales the per-round message budget.
	CapMul int `json:"cap_mul,omitempty"`
	// Sort is "oracle" (default), "oddeven", or "merge".
	Sort string `json:"sort,omitempty"`
	// MaxRounds aborts runaway protocols.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Scheduler is "barrier", "pool" or "flat"; empty selects the server's default
	// driver (grserved -scheduler). The choice never affects the result.
	Scheduler string `json:"scheduler,omitempty"`
}

// toOptions maps the wire options onto facade Options. defSched is the
// server-wide default driver, applied when the request leaves the scheduler
// field empty — including when the request carries no options at all.
func (o *OptionsJSON) toOptions(defSched graphrealize.Scheduler) (*graphrealize.Options, error) {
	if o == nil {
		if defSched == graphrealize.BarrierScheduler {
			return nil, nil
		}
		return &graphrealize.Options{Scheduler: defSched}, nil
	}
	out := &graphrealize.Options{
		Seed:      o.Seed,
		Strict:    o.Strict,
		CapMul:    o.CapMul,
		MaxRounds: o.MaxRounds,
	}
	switch strings.ToLower(o.Model) {
	case "", "ncc0":
	case "ncc1":
		out.Model = graphrealize.NCC1
	default:
		return nil, fmt.Errorf("unknown model %q (want ncc0 or ncc1)", o.Model)
	}
	switch strings.ToLower(o.Sort) {
	case "", "oracle":
	case "oddeven":
		out.Sort = graphrealize.OddEvenSort
	case "merge":
		out.Sort = graphrealize.MergeSort
	default:
		return nil, fmt.Errorf("unknown sort %q (want oracle, oddeven, or merge)", o.Sort)
	}
	if o.Scheduler == "" {
		out.Scheduler = defSched
	} else {
		sched, err := graphrealize.ParseScheduler(o.Scheduler)
		if err != nil {
			return nil, fmt.Errorf("unknown scheduler %q (want barrier, pool or flat)", o.Scheduler)
		}
		out.Scheduler = sched
	}
	return out, nil
}

// StatsJSON mirrors graphrealize.Stats.
type StatsJSON struct {
	N             int   `json:"n"`
	Rounds        int   `json:"rounds"`
	ChargedRounds int   `json:"charged_rounds"`
	Messages      int64 `json:"messages"`
	Capacity      int   `json:"capacity"`
	MaxSent       int   `json:"max_sent"`
	MaxRecv       int   `json:"max_recv"`
	CapViolations int   `json:"cap_violations"`
	Phases        int   `json:"phases,omitempty"`
}

func statsJSON(s *graphrealize.Stats) StatsJSON {
	if s == nil {
		return StatsJSON{}
	}
	return StatsJSON{
		N:             s.N,
		Rounds:        s.Rounds,
		ChargedRounds: s.ChargedRounds,
		Messages:      s.Messages,
		Capacity:      s.Capacity,
		MaxSent:       s.MaxSent,
		MaxRecv:       s.MaxRecv,
		CapViolations: s.CapViolations,
		Phases:        s.Phases,
	}
}

// RealizeRequest is the body of POST /v1/realize/{alg}.
type RealizeRequest struct {
	// Sequence is the degree (or ρ) sequence to realize.
	Sequence []int `json:"sequence"`
	// Variant selects the algorithm flavour. degree: "implicit" (default),
	// "explicit", or "envelope"; tree: "chain" (default) or "mindiam";
	// connectivity: must be empty.
	Variant string `json:"variant,omitempty"`
	// Options tunes the simulation; nil selects the defaults.
	Options *OptionsJSON `json:"options,omitempty"`
	// OmitEdges drops the edge list from the response (stats only).
	OmitEdges bool `json:"omit_edges,omitempty"`
}

// RealizeResponse is the body of a successful realization.
type RealizeResponse struct {
	Kind      string    `json:"kind"`
	N         int       `json:"n"`
	M         int       `json:"m"`
	Edges     [][2]int  `json:"edges,omitempty"`
	Envelope  []int     `json:"envelope,omitempty"`
	Stats     StatsJSON `json:"stats"`
	Cached    bool      `json:"cached"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// SweepRequest is the body of POST /v1/sweep: one sequence realized under
// many seeds (the Barrus-style "many realizations of one sequence"
// workload). Either Seeds lists them explicitly or SeedCount consecutive
// seeds starting at SeedStart are used.
type SweepRequest struct {
	// Kind names the realization algorithm: "degrees", "degrees-explicit",
	// "upper-envelope", "chain-tree", "min-diam-tree", or "connectivity"
	// (aliases "degree", "tree", "mindiam", "envelope" are accepted).
	Kind      string       `json:"kind"`
	Sequence  []int        `json:"sequence"`
	Seeds     []int64      `json:"seeds,omitempty"`
	SeedCount int          `json:"seed_count,omitempty"`
	SeedStart int64        `json:"seed_start,omitempty"`
	Options   *OptionsJSON `json:"options,omitempty"`
}

// SweepRow is one seed's outcome inside a SweepResponse. A sweep fails as
// a unit (realizability is seed-independent), so rows carry no error field.
type SweepRow struct {
	Seed   int64     `json:"seed"`
	M      int       `json:"m"`
	Stats  StatsJSON `json:"stats"`
	Cached bool      `json:"cached"`
}

// SweepResponse aggregates a multi-seed sweep.
type SweepResponse struct {
	Kind         string     `json:"kind"`
	N            int        `json:"n"`
	Seeds        int        `json:"seeds"`
	Rows         []SweepRow `json:"rows"`
	RoundsMin    int        `json:"rounds_min"`
	RoundsMedian int        `json:"rounds_median"`
	RoundsMax    int        `json:"rounds_max"`
	CacheHits    int        `json:"cache_hits"`
	ElapsedMS    float64    `json:"elapsed_ms"`
}

// StatsResponse is the body of GET /v1/stats: the Runner's counters plus
// service-level facts.
type StatsResponse struct {
	UptimeS    float64 `json:"uptime_s"`
	Workers    int     `json:"workers"`
	QueueLimit int     `json:"queue_limit"`
	Active     int     `json:"active"`
	Queued     int     `json:"queued"`
	Submitted  int64   `json:"submitted"`
	Rejected   int64   `json:"rejected"`
	Executed   int64   `json:"executed"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Canceled   int64   `json:"canceled"`
	CacheHits  int64   `json:"cache_hits"`
	CacheLen   int     `json:"cache_len"`
	AvgWaitMS  float64 `json:"avg_wait_ms"`
	AvgRunMS   float64 `json:"avg_run_ms"`
	// Run-latency quantiles from the Runner's histogram (histogram-derived:
	// interpolated within fixed buckets, not exact order statistics). Zero
	// when the backend exposes no instruments or nothing has executed.
	P50RunMS float64 `json:"p50_run_ms"`
	P95RunMS float64 `json:"p95_run_ms"`
	P99RunMS float64 `json:"p99_run_ms"`
	// Phases reports engine round counts and phase wall-time per scheduler
	// driver, keyed "barrier" / "pool" / "flat". Nil when the backend
	// exposes no instruments.
	Phases map[string]SchedPhaseJSON `json:"phases,omitempty"`
	// Cluster reports the coordinator's member table and proxy counters
	// (CLUSTER.md §7.1). Nil on a single node or a worker.
	Cluster *ClusterStatsJSON `json:"cluster,omitempty"`
}

// ClusterStatsJSON is the cluster object of GET /v1/stats on a coordinator:
// every registered worker with its derived liveness state, the state
// tallies, and the control-plane/proxy counters (CLUSTER.md §7.1).
type ClusterStatsJSON struct {
	Workers       []cluster.WorkerStatus `json:"workers"`
	Alive         int                    `json:"alive"`
	Suspect       int                    `json:"suspect"`
	Dead          int                    `json:"dead"`
	Registrations int64                  `json:"registrations"`
	Heartbeats    int64                  `json:"heartbeats"`
	Failovers     int64                  `json:"failovers"`
	Expired       int64                  `json:"expired"`
	Proxied       int64                  `json:"proxied"`
	ProxyErrors   int64                  `json:"proxy_errors"`
}

// SchedPhaseJSON is one scheduler driver's accumulated engine phase profile.
type SchedPhaseJSON struct {
	Rounds    int64   `json:"rounds"`
	ComputeS  float64 `json:"compute_s"`
	DeliveryS float64 `json:"delivery_s"`
	BarrierS  float64 `json:"barrier_s"`
}

func statsResponse(rs graphrealize.RunnerStats, uptime time.Duration, o *graphrealize.RunnerObs) StatsResponse {
	resp := StatsResponse{
		UptimeS:    uptime.Seconds(),
		Workers:    rs.Workers,
		QueueLimit: rs.QueueLimit,
		Active:     rs.Active,
		Queued:     rs.Queued,
		Submitted:  rs.Submitted,
		Rejected:   rs.Rejected,
		Executed:   rs.Executed,
		Completed:  rs.Completed,
		Failed:     rs.Failed,
		Canceled:   rs.Canceled,
		CacheHits:  rs.CacheHits,
		CacheLen:   rs.CacheLen,
	}
	// Average over jobs that actually acquired a worker — cache hits and
	// queued-cancellations contribute no wait/run time and would dilute the
	// figures capacity tuning relies on. Divide nanoseconds, not
	// pre-truncated milliseconds: sub-ms waits must not report as 0.0.
	if rs.Executed > 0 {
		resp.AvgWaitMS = float64(rs.TotalWait.Nanoseconds()) / 1e6 / float64(rs.Executed)
		resp.AvgRunMS = float64(rs.TotalRun.Nanoseconds()) / 1e6 / float64(rs.Executed)
	}
	if o != nil {
		run := o.Run.Snapshot()
		resp.P50RunMS = run.Quantile(0.50) * 1000
		resp.P95RunMS = run.Quantile(0.95) * 1000
		resp.P99RunMS = run.Quantile(0.99) * 1000
		resp.Phases = make(map[string]SchedPhaseJSON, len(schedulers))
		for _, sched := range schedulers {
			p := o.SchedProfile(sched).Snapshot()
			resp.Phases[sched.String()] = SchedPhaseJSON{
				Rounds:    p.Rounds,
				ComputeS:  p.Compute.Seconds(),
				DeliveryS: p.Delivery.Seconds(),
				BarrierS:  p.Barrier.Seconds(),
			}
		}
	}
	return resp
}

// schedulers lists every driver in the fixed (alphabetical-by-name) order
// the stats and metrics expositions use: barrier, flat, pool.
var schedulers = []graphrealize.Scheduler{
	graphrealize.BarrierScheduler,
	graphrealize.FlatScheduler,
	graphrealize.PoolScheduler,
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// JobRequest is the body of POST /v1/jobs: the same inputs as a synchronous
// realization, addressed by kind (the SweepRequest.Kind vocabulary).
type JobRequest struct {
	// Kind names the realization algorithm: "degrees", "degrees-explicit",
	// "upper-envelope", "chain-tree", "min-diam-tree", or "connectivity"
	// (the usual aliases are accepted).
	Kind string `json:"kind"`
	// Sequence is the degree (or ρ) sequence to realize.
	Sequence []int `json:"sequence"`
	// Options tunes the simulation; nil selects the defaults.
	Options *OptionsJSON `json:"options,omitempty"`
	// Label is an optional caller tag echoed back in job snapshots.
	Label string `json:"label,omitempty"`
}

// (The submitting request's trace ID is taken from the X-Request-Id header —
// the same channel as synchronous requests — not from the body.)

// JobJSON is one job's externally visible state (202/200 bodies and list
// rows). Result is present only on GET /v1/jobs/{id} of a done job.
type JobJSON struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"`
	State      string           `json:"state"`
	N          int              `json:"n"`
	Label      string           `json:"label,omitempty"`
	TraceID    string           `json:"trace_id,omitempty"`
	Round      int              `json:"round"`
	Messages   int              `json:"messages"`
	CreatedAt  time.Time        `json:"created_at"`
	StartedAt  *time.Time       `json:"started_at,omitempty"`
	FinishedAt *time.Time       `json:"finished_at,omitempty"`
	Error      string           `json:"error,omitempty"`
	Result     *RealizeResponse `json:"result,omitempty"`
	// Recovered marks a job reloaded (terminal) or re-queued (in-flight)
	// from the durable store after a restart (grserved -data-dir).
	Recovered bool `json:"recovered,omitempty"`
}

// jobJSON projects a snapshot onto the wire. includeResult attaches the
// realization payload of a done job; omitEdges drops its edge list.
func jobJSON(snap jobs.Snapshot, includeResult, omitEdges bool) JobJSON {
	out := JobJSON{
		ID:        snap.ID,
		Kind:      snap.Kind.String(),
		State:     string(snap.State),
		N:         snap.N,
		Label:     snap.Label,
		TraceID:   snap.TraceID,
		Round:     snap.Round,
		Messages:  snap.Messages,
		CreatedAt: snap.Created,
		Recovered: snap.Recovered,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		out.StartedAt = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		out.FinishedAt = &t
	}
	if snap.Err != nil {
		out.Error = snap.Err.Error()
	}
	if includeResult && snap.Result != nil && snap.Result.Graph != nil {
		started := snap.Started
		if started.IsZero() {
			started = snap.Created // cache-served jobs never ran
		}
		res := &RealizeResponse{
			Kind:      snap.Kind.String(),
			N:         snap.Result.Graph.N,
			M:         snap.Result.Graph.M(),
			Envelope:  snap.Result.Envelope,
			Stats:     statsJSON(snap.Result.Stats),
			Cached:    snap.Result.Cached,
			ElapsedMS: float64(snap.Finished.Sub(started).Microseconds()) / 1000,
		}
		if !omitEdges {
			res.Edges = snap.Result.Graph.Edges()
		}
		out.Result = res
	}
	return out
}

// JobListResponse is the body of GET /v1/jobs. Counts tallies every retained
// job by state (unaffected by the state filter or limit).
type JobListResponse struct {
	Jobs   []JobJSON      `json:"jobs"`
	Counts map[string]int `json:"counts"`
}

// JobEventJSON is the data payload of one SSE event on
// GET /v1/jobs/{id}/events.
type JobEventJSON struct {
	ID       string `json:"id"`
	TraceID  string `json:"trace_id,omitempty"`
	State    string `json:"state"`
	Round    int    `json:"round"`
	Messages int    `json:"messages"`
	Error    string `json:"error,omitempty"`
}

func jobEventJSON(ev jobs.Event) JobEventJSON {
	return JobEventJSON{
		ID:       ev.JobID,
		TraceID:  ev.TraceID,
		State:    string(ev.State),
		Round:    ev.Round,
		Messages: ev.Messages,
		Error:    ev.Err,
	}
}

// parseKind resolves a SweepRequest.Kind string to a JobKind.
func parseKind(s string) (graphrealize.JobKind, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "degree", "degrees", "implicit":
		return graphrealize.JobDegrees, true
	case "degree-explicit", "degrees-explicit", "explicit":
		return graphrealize.JobDegreesExplicit, true
	case "envelope", "upper-envelope":
		return graphrealize.JobUpperEnvelope, true
	case "tree", "chain-tree", "chain":
		return graphrealize.JobChainTree, true
	case "mindiam", "min-diam-tree", "mindiam-tree":
		return graphrealize.JobMinDiamTree, true
	case "connectivity":
		return graphrealize.JobConnectivity, true
	}
	return 0, false
}
