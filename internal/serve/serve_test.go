package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/serve"
)

// fakeBackend scripts the Backend seam so admission-control and
// cancellation paths are exercised deterministically, without real load.
type fakeBackend struct {
	submit func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	stats  graphrealize.RunnerStats
}

func (f *fakeBackend) SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	return f.submit(ctx, j)
}

// SubmitReplayCtx satisfies jobs.Backend (the manager's recovery path); the
// fake has no admission bound to bypass, so it scripts like SubmitCtx.
func (f *fakeBackend) SubmitReplayCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	return f.submit(ctx, j)
}

func (f *fakeBackend) SubmitAllCtx(ctx context.Context, jobs []graphrealize.Job) ([]<-chan graphrealize.Result, error) {
	chans := make([]<-chan graphrealize.Result, len(jobs))
	for i, j := range jobs {
		ch, err := f.submit(ctx, j)
		if err != nil {
			return nil, err
		}
		chans[i] = ch
	}
	return chans, nil
}

func (f *fakeBackend) Stats() graphrealize.RunnerStats { return f.stats }

func resultChan(res graphrealize.Result) <-chan graphrealize.Result {
	ch := make(chan graphrealize.Result, 1)
	ch <- res
	return ch
}

// realServer wires a Server to a real Runner, the production configuration.
func realServer(t *testing.T) http.Handler {
	t.Helper()
	s := serve.New(serve.Config{Backend: graphrealize.NewRunner(4), MaxN: 64, MaxSeeds: 8})
	return s.Handler()
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeInto[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(rec.Body).Decode(&v); err != nil {
		t.Fatalf("response is not valid JSON: %v (body %q)", err, rec.Body.String())
	}
	return v
}

func TestRealizeDegreeHappyPath(t *testing.T) {
	h := realServer(t)
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeInto[serve.RealizeResponse](t, rec)
	if resp.Kind != "degrees" || resp.N != 6 || resp.M != 7 {
		t.Fatalf("unexpected realization: %+v", resp)
	}
	if len(resp.Edges) != 7 {
		t.Fatalf("want 7 edges, got %d", len(resp.Edges))
	}
	if resp.Stats.Rounds <= 0 || resp.Stats.Messages <= 0 {
		t.Fatalf("stats not populated: %+v", resp.Stats)
	}

	// An identical request is served from the Runner cache.
	rec = post(t, h, "/v1/realize/degree", `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if resp := decodeInto[serve.RealizeResponse](t, rec); !resp.Cached {
		t.Fatal("identical request must be served from the cache")
	}
}

func TestRealizeVariantsAndOmitEdges(t *testing.T) {
	h := realServer(t)

	rec := post(t, h, "/v1/realize/degree", `{"sequence":[2,2,2,2],"variant":"explicit","omit_edges":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeInto[serve.RealizeResponse](t, rec); resp.Edges != nil || resp.M != 4 {
		t.Fatalf("omit_edges must drop the edge list but keep m: %+v", resp)
	}

	// The envelope variant succeeds on a non-graphic input and returns d'.
	rec = post(t, h, "/v1/realize/degree", `{"sequence":[3,3,1,1],"variant":"envelope"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("envelope: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeInto[serve.RealizeResponse](t, rec); len(resp.Envelope) != 4 {
		t.Fatalf("envelope variant must return the envelope degrees: %+v", resp)
	}

	rec = post(t, h, "/v1/realize/tree", `{"sequence":[3,3,2,1,1,1,1,2],"variant":"mindiam"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("tree: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeInto[serve.RealizeResponse](t, rec); resp.M != 7 {
		t.Fatalf("a tree on 8 vertices has 7 edges: %+v", resp)
	}

	rec = post(t, h, "/v1/realize/connectivity", `{"sequence":[2,2,1,1,1,1],"options":{"model":"ncc1"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("connectivity: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
}

func TestRealizeRejectsMalformedRequests(t *testing.T) {
	h := realServer(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/v1/realize/degree", `{"sequence":[3,`, http.StatusBadRequest},
		{"unknown field", "/v1/realize/degree", `{"sequenze":[1,1]}`, http.StatusBadRequest},
		{"empty sequence", "/v1/realize/degree", `{"sequence":[]}`, http.StatusBadRequest},
		{"missing sequence", "/v1/realize/degree", `{}`, http.StatusBadRequest},
		{"bad variant", "/v1/realize/degree", `{"sequence":[1,1],"variant":"nope"}`, http.StatusBadRequest},
		{"bad model", "/v1/realize/degree", `{"sequence":[1,1],"options":{"model":"ncc9"}}`, http.StatusBadRequest},
		{"bad sort", "/v1/realize/degree", `{"sequence":[1,1],"options":{"sort":"bogo"}}`, http.StatusBadRequest},
		{"unknown algorithm", "/v1/realize/matching", `{"sequence":[1,1]}`, http.StatusNotFound},
		{"unrealizable", "/v1/realize/degree", `{"sequence":[3,3,1,1]}`, http.StatusUnprocessableEntity},
		{"unrealizable tree", "/v1/realize/tree", `{"sequence":[3,3,3,3]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("want %d, got %d: %s", tc.want, rec.Code, rec.Body.String())
			}
			if e := decodeInto[serve.ErrorResponse](t, rec); e.Error == "" {
				t.Fatal("error responses must carry a message")
			}
		})
	}
}

func TestRealizeOversizedN(t *testing.T) {
	h := realServer(t) // MaxN: 64
	seq := make([]string, 65)
	for i := range seq {
		seq[i] = "1"
	}
	body := fmt.Sprintf(`{"sequence":[%s]}`, strings.Join(seq, ","))
	rec := post(t, h, "/v1/realize/degree", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized n must be 413, got %d: %s", rec.Code, rec.Body.String())
	}
}

func TestRealizeOversizedBody(t *testing.T) {
	s := serve.New(serve.Config{Backend: graphrealize.NewRunner(1), MaxBodyBytes: 64})
	h := s.Handler()
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[`+strings.Repeat("1,", 200)+`1]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body must be 413, got %d", rec.Code)
	}
}

func TestQueueFullMapsTo429(t *testing.T) {
	fb := &fakeBackend{
		submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			return nil, graphrealize.ErrQueueFull
		},
	}
	h := serve.New(serve.Config{Backend: fb}).Handler()
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full must be 429, got %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
}

func TestJobTimeoutMapsTo504(t *testing.T) {
	fb := &fakeBackend{
		submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			return resultChan(graphrealize.Result{Job: j, Err: context.DeadlineExceeded}), nil
		},
	}
	h := serve.New(serve.Config{Backend: fb}).Handler()
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("job timeout must be 504, got %d", rec.Code)
	}
}

func TestCancellationMidJobMapsTo499(t *testing.T) {
	// The backend sees the request context die mid-job and hands back the
	// context's error, exactly as a real Runner does.
	fb := &fakeBackend{
		submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			ch := make(chan graphrealize.Result, 1)
			go func() {
				<-ctx.Done()
				ch <- graphrealize.Result{Job: j, Err: ctx.Err()}
			}()
			return ch, nil
		},
	}
	h := serve.New(serve.Config{Backend: fb}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/realize/degree",
		strings.NewReader(`{"sequence":[1,1]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	cancel()
	<-done
	if rec.Code != serve.StatusClientClosedRequest {
		t.Fatalf("abandoned job must map to 499, got %d", rec.Code)
	}
}

func TestSweep(t *testing.T) {
	h := realServer(t)
	body := `{"kind":"degrees","sequence":[3,3,2,2,2,2],"seed_count":3,"seed_start":10}`
	rec := post(t, h, "/v1/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeInto[serve.SweepResponse](t, rec)
	if resp.Seeds != 3 || len(resp.Rows) != 3 {
		t.Fatalf("want 3 rows, got %+v", resp)
	}
	for i, row := range resp.Rows {
		if row.Seed != int64(10+i) || row.M != 7 || row.Stats.Rounds <= 0 {
			t.Fatalf("row %d wrong: %+v", i, row)
		}
	}
	if resp.RoundsMin > resp.RoundsMedian || resp.RoundsMedian > resp.RoundsMax {
		t.Fatalf("round aggregates out of order: %+v", resp)
	}

	// The same sweep again is all cache hits.
	rec = post(t, h, "/v1/sweep", body)
	if resp := decodeInto[serve.SweepResponse](t, rec); resp.CacheHits != 3 {
		t.Fatalf("repeat sweep must be served from the cache, got %d hits", resp.CacheHits)
	}
}

func TestSweepValidation(t *testing.T) {
	h := realServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown kind", `{"kind":"matching","sequence":[1,1],"seed_count":1}`, http.StatusBadRequest},
		{"no seeds", `{"kind":"degrees","sequence":[1,1]}`, http.StatusBadRequest},
		{"too many seeds", `{"kind":"degrees","sequence":[1,1],"seed_count":9}`, http.StatusRequestEntityTooLarge},
		{"absurd seed_count rejected before allocation", `{"kind":"degrees","sequence":[1,1],"seed_count":10000000000}`, http.StatusRequestEntityTooLarge},
		{"unrealizable", `{"kind":"degrees","sequence":[3,3,1,1],"seed_count":2}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := post(t, h, "/v1/sweep", tc.body); rec.Code != tc.want {
				t.Fatalf("want %d, got %d: %s", tc.want, rec.Code, rec.Body.String())
			}
		})
	}
}

func TestSweepQueueFullIsAtomic(t *testing.T) {
	// A real Runner with capacity 2 (1 worker + 1 queue slot) cannot admit
	// a 4-seed sweep: the sweep must come back 429 with nothing admitted,
	// not a partial result.
	r := graphrealize.NewRunnerConfig(graphrealize.RunnerConfig{Workers: 1, Queue: 1})
	h := serve.New(serve.Config{Backend: r}).Handler()
	rec := post(t, h, "/v1/sweep", `{"kind":"degrees","sequence":[1,1],"seed_count":4}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep must be 429, got %d: %s", rec.Code, rec.Body.String())
	}
	if st := r.Stats(); st.Submitted != 0 || st.Rejected != 4 {
		t.Fatalf("an unadmittable sweep must admit nothing: %+v", st)
	}
}

func TestHealthAndStats(t *testing.T) {
	r := graphrealize.NewRunnerConfig(graphrealize.RunnerConfig{Workers: 2, Queue: 5})
	h := serve.New(serve.Config{Backend: r}).Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// Push one job through so the counters move.
	if res := <-r.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{1, 1}}); res.Err != nil {
		t.Fatal(res.Err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	st := decodeInto[serve.StatsResponse](t, rec)
	if st.Workers != 2 || st.QueueLimit != 5 || st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats don't reflect the runner: %+v", st)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := realServer(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/realize/degree", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST route must be 405, got %d", rec.Code)
	}
}

// retryAfterOf drives one queue-full request against a scripted backend and
// returns the Retry-After hint it produced.
func retryAfterOf(t *testing.T, h http.Handler) int {
	t.Helper()
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", rec.Code, rec.Body.String())
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After not an integer: %q", rec.Header().Get("Retry-After"))
	}
	return secs
}

// queueFullBackend scripts a saturated Runner with the given counters.
func queueFullBackend(stats graphrealize.RunnerStats) *fakeBackend {
	return &fakeBackend{
		submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			return nil, graphrealize.ErrQueueFull
		},
		stats: stats,
	}
}

// TestRetryAfterClampEdges pins the [1, 30] clamp at both edges and the
// explicit cold-start fallback: a Runner that has never executed a job has no
// latency signal and must hint the 1-second floor, while an enormous backlog
// must cap at 30 seconds regardless of the estimate.
func TestRetryAfterClampEdges(t *testing.T) {
	t.Run("cold runner hints the 1s floor", func(t *testing.T) {
		h := serve.New(serve.Config{Backend: queueFullBackend(graphrealize.RunnerStats{
			Workers: 4, Queued: 100, Active: 4, Executed: 0,
		})}).Handler()
		if got := retryAfterOf(t, h); got != 1 {
			t.Fatalf("cold runner: want Retry-After 1, got %d", got)
		}
	})
	t.Run("fast jobs and small backlog hint the 1s floor", func(t *testing.T) {
		h := serve.New(serve.Config{Backend: queueFullBackend(graphrealize.RunnerStats{
			Workers: 4, Queued: 1, Active: 4, Executed: 1000, TotalRun: time.Second,
		})}).Handler()
		if got := retryAfterOf(t, h); got != 1 {
			t.Fatalf("fast workload: want Retry-After 1, got %d", got)
		}
	})
	t.Run("huge backlog clamps to 30s", func(t *testing.T) {
		h := serve.New(serve.Config{Backend: queueFullBackend(graphrealize.RunnerStats{
			Workers: 1, Queued: 10_000, Active: 1, Executed: 10, TotalRun: 50 * time.Second,
		})}).Handler()
		if got := retryAfterOf(t, h); got != 30 {
			t.Fatalf("saturated workload: want Retry-After 30, got %d", got)
		}
	})
}

// TestRetryAfterEmptyWindowFallback pins the fallback ladder: a hint computed
// while no job finished since the previous hint must reuse the previous
// window's mean instead of degenerating, so back-to-back 429s under a stalled
// Runner give consistent advice.
func TestRetryAfterEmptyWindowFallback(t *testing.T) {
	fb := queueFullBackend(graphrealize.RunnerStats{
		Workers: 1, Queued: 4, Active: 1, Executed: 10, TotalRun: 20 * time.Second,
	})
	h := serve.New(serve.Config{Backend: fb}).Handler()
	first := retryAfterOf(t, h) // 5 jobs backlog × 2s mean = 10s
	if first != 10 {
		t.Fatalf("first hint: want 10, got %d", first)
	}
	// Same counters again: the execution window is empty (dExec == 0), and
	// the hint must fall back to the previous window's mean, not recompute a
	// degenerate value.
	if second := retryAfterOf(t, h); second != first {
		t.Fatalf("empty-window hint: want %d (previous mean reused), got %d", first, second)
	}
}

// TestSchedulerOptionOnWire pins the scheduler request field: "pool" reaches
// the backend in Options, an unknown value is a 400, and an empty field picks
// up the server's configured default.
func TestSchedulerOptionOnWire(t *testing.T) {
	var got []graphrealize.Scheduler
	record := func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		opt := j.Opt
		if opt == nil {
			opt = &graphrealize.Options{}
		}
		got = append(got, opt.Scheduler)
		return resultChan(graphrealize.Result{Job: j, Graph: &graphrealize.Graph{N: 2, Adj: [][]int{{1}, {0}}}, Stats: &graphrealize.Stats{N: 2}}), nil
	}

	h := serve.New(serve.Config{Backend: &fakeBackend{submit: record}}).Handler()
	if rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1],"options":{"scheduler":"pool"}}`); rec.Code != http.StatusOK {
		t.Fatalf("pool scheduler request: %d %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1],"options":{"scheduler":"fiber"}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown scheduler must be 400, got %d", rec.Code)
	}

	// A server defaulting to the pool driver applies it to requests that
	// don't choose — with and without an options object.
	hp := serve.New(serve.Config{
		Backend:          &fakeBackend{submit: record},
		DefaultScheduler: graphrealize.PoolScheduler,
	}).Handler()
	if rec := post(t, hp, "/v1/realize/degree", `{"sequence":[1,1]}`); rec.Code != http.StatusOK {
		t.Fatalf("default scheduler request: %d %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, hp, "/v1/realize/degree", `{"sequence":[1,1],"options":{"seed":3}}`); rec.Code != http.StatusOK {
		t.Fatalf("default scheduler with options: %d %s", rec.Code, rec.Body.String())
	}
	if rec := post(t, hp, "/v1/realize/degree", `{"sequence":[1,1],"options":{"scheduler":"barrier"}}`); rec.Code != http.StatusOK {
		t.Fatalf("explicit barrier overrides the default: %d %s", rec.Code, rec.Body.String())
	}

	want := []graphrealize.Scheduler{
		graphrealize.PoolScheduler,    // explicit "pool"
		graphrealize.PoolScheduler,    // server default, no options
		graphrealize.PoolScheduler,    // server default, options without scheduler
		graphrealize.BarrierScheduler, // explicit "barrier" beats the default
	}
	if len(got) != len(want) {
		t.Fatalf("backend saw %d submissions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submission %d: scheduler %v, want %v", i, got[i], want[i])
		}
	}
}
