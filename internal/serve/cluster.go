package serve

// cluster.go mounts the coordinator's control plane — worker registration,
// heartbeats, and the member listing — when Config.Cluster is set. The data
// plane needs no routes of its own: proxying rides the ordinary /v1
// handlers through the cluster Backend, so JSON/graphwire negotiation,
// admission mapping, and trace propagation behave identically on a
// coordinator and a single node. Message schemas and the liveness state
// machine are specified normatively in CLUSTER.md §2–§3.

import (
	"errors"
	"net/http"

	"graphrealize/internal/cluster"
)

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.cfg.Cluster.Registry().Register(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{OK: true})
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.cfg.Cluster.Registry().Heartbeat(req.Name, req.Load); err != nil {
		// 404 tells the worker to re-register (CLUSTER.md §2.3) — the one
		// status its join loop treats as "start over".
		if errors.Is(err, cluster.ErrUnknownWorker) {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, cluster.HeartbeatResponse{OK: true})
}

func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cluster.WorkersResponse{Workers: s.cfg.Cluster.Registry().Snapshot()})
}

// clusterStats builds the cluster object of GET /v1/stats (CLUSTER.md §7.1).
func clusterStats(b *cluster.Backend) *ClusterStatsJSON {
	snap := b.Registry().Snapshot()
	out := &ClusterStatsJSON{Workers: snap}
	for _, w := range snap {
		switch w.State {
		case string(cluster.StateAlive):
			out.Alive++
		case string(cluster.StateSuspect):
			out.Suspect++
		default:
			out.Dead++
		}
	}
	ct := b.Registry().Counters()
	pc := b.ProxyCounters()
	out.Registrations = ct.Registrations
	out.Heartbeats = ct.Heartbeats
	out.Failovers = ct.Failovers
	out.Expired = ct.Expired
	out.Proxied = pc.Proxied
	out.ProxyErrors = pc.ProxyErrors
	return out
}
