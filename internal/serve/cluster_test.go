package serve_test

// cluster_test.go exercises the coordinator's serving layer: the
// /cluster/v1 control plane (CLUSTER.md §2), the cluster object in
// /v1/stats and the graphrealize_cluster_* metrics families (§7), and the
// full coordinator→worker proxy path through the ordinary /v1 handlers.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/cluster"
	"graphrealize/internal/serve"
)

// coordinator builds a coordinator Server: a cluster Backend serving both
// as the execution backend and as Config.Cluster, exactly as cmd/grserved
// wires -coordinator.
func coordinator(t *testing.T) (*cluster.Backend, http.Handler) {
	t.Helper()
	reg := cluster.NewRegistry(cluster.RegistryConfig{SuspectAfter: time.Minute})
	b := cluster.NewBackend(cluster.BackendConfig{Registry: reg})
	s := serve.New(serve.Config{Backend: b, Cluster: b, MaxN: 1024})
	return b, s.Handler()
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestClusterControlPlane walks the CLUSTER.md §2 handshake over HTTP:
// register (§2.1), heartbeat with load (§2.2), the 404 that sends an
// unknown worker back to registration (§2.3), and the member listing.
func TestClusterControlPlane(t *testing.T) {
	_, h := coordinator(t)

	// Heartbeat before registering: 404, the §2.3 re-register signal.
	rec := post(t, h, "/cluster/v1/heartbeat", `{"name":"w1","load":{}}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("heartbeat before register: want 404 (CLUSTER.md §2.3), got %d: %s", rec.Code, rec.Body.String())
	}

	// Register requires name and addr (§2.1).
	rec = post(t, h, "/cluster/v1/register", `{"name":"w1"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("register without addr: want 400, got %d", rec.Code)
	}
	rec = post(t, h, "/cluster/v1/register", `{"name":"w1","addr":"http://127.0.0.1:9999","capacity":4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("register: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeInto[cluster.RegisterResponse](t, rec); !resp.OK {
		t.Fatal("register response not ok")
	}

	// Heartbeat now succeeds and carries load (§2.2).
	rec = post(t, h, "/cluster/v1/heartbeat", `{"name":"w1","load":{"workers":4,"active":1,"executed":9}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: want 200, got %d: %s", rec.Code, rec.Body.String())
	}

	// The member listing reflects identity, state, and the last load (§7.1).
	rec = get(t, h, "/cluster/v1/workers")
	if rec.Code != http.StatusOK {
		t.Fatalf("workers: want 200, got %d", rec.Code)
	}
	ws := decodeInto[cluster.WorkersResponse](t, rec)
	if len(ws.Workers) != 1 {
		t.Fatalf("workers = %+v, want 1 member", ws.Workers)
	}
	w := ws.Workers[0]
	if w.Name != "w1" || w.Capacity != 4 || w.State != string(cluster.StateAlive) || w.Load.Executed != 9 {
		t.Fatalf("member row = %+v", w)
	}
}

// TestClusterStatsAndMetrics: on a coordinator, /v1/stats grows the cluster
// object (CLUSTER.md §7.1) and /metrics exposes the graphrealize_cluster_*
// families with the state gauge's explicit zero rows (§7.2). On a single
// node both stay absent — the shapes are coordinator-only.
func TestClusterStatsAndMetrics(t *testing.T) {
	_, h := coordinator(t)
	if rec := post(t, h, "/cluster/v1/register", `{"name":"w1","addr":"http://127.0.0.1:9999"}`); rec.Code != http.StatusOK {
		t.Fatalf("register: %d", rec.Code)
	}

	rec := get(t, h, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: want 200, got %d", rec.Code)
	}
	st := decodeInto[serve.StatsResponse](t, rec)
	if st.Cluster == nil {
		t.Fatal("coordinator /v1/stats has no cluster object (CLUSTER.md §7.1)")
	}
	if st.Cluster.Alive != 1 || st.Cluster.Registrations != 1 || len(st.Cluster.Workers) != 1 {
		t.Fatalf("cluster stats = %+v", st.Cluster)
	}

	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`graphrealize_cluster_workers{state="alive"} 1`,
		`graphrealize_cluster_workers{state="suspect"} 0`,
		`graphrealize_cluster_workers{state="dead"} 0`,
		"graphrealize_cluster_registrations_total 1",
		"graphrealize_cluster_heartbeats_total 0",
		"graphrealize_cluster_failovers_total 0",
		"graphrealize_cluster_expired_total 0",
		"graphrealize_cluster_proxied_total 0",
		"graphrealize_cluster_proxy_errors_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %q (CLUSTER.md §7.2)", want)
		}
	}

	// A single node must expose neither shape.
	single := serve.New(serve.Config{Backend: graphrealize.NewRunner(1)}).Handler()
	if st := decodeInto[serve.StatsResponse](t, get(t, single, "/v1/stats")); st.Cluster != nil {
		t.Fatal("single-node /v1/stats grew a cluster object")
	}
	if body := get(t, single, "/metrics").Body.String(); strings.Contains(body, "graphrealize_cluster_") {
		t.Fatal("single-node /metrics exposes cluster families")
	}
	if rec := post(t, single, "/cluster/v1/register", `{"name":"w1","addr":"http://x"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("single-node /cluster route: want 404, got %d", rec.Code)
	}
}

// TestCoordinatorProxiesRealize is the serving-layer slice of the data
// plane (CLUSTER.md §1, §5): a client's ordinary JSON request to the
// coordinator executes on a worker and comes back as an ordinary JSON
// response — the cluster is invisible to clients — and with no workers the
// coordinator answers 503 (§6.2).
func TestCoordinatorProxiesRealize(t *testing.T) {
	b, h := coordinator(t)

	// No workers yet: 503, not 429 — retrying won't help until a join (§6.2).
	rec := post(t, h, "/v1/realize/degree", `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-workers realize: want 503 (CLUSTER.md §6.2), got %d: %s", rec.Code, rec.Body.String())
	}

	// Stand up one real worker and register it.
	worker := httptest.NewServer(serve.New(serve.Config{Backend: graphrealize.NewRunner(2), MaxN: 1024}).Handler())
	defer worker.Close()
	if err := b.Registry().Register(cluster.RegisterRequest{Name: "w1", Addr: worker.URL}); err != nil {
		t.Fatal(err)
	}

	rec = post(t, h, "/v1/realize/degree", `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied realize: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeInto[serve.RealizeResponse](t, rec)
	if resp.N != 6 || resp.M != 7 || len(resp.Edges) != 7 {
		t.Fatalf("proxied realization: %+v", resp)
	}
	// Same request again: served from the worker's cache through the proxy.
	rec = post(t, h, "/v1/realize/degree", `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if resp := decodeInto[serve.RealizeResponse](t, rec); !resp.Cached {
		t.Fatal("repeat request through coordinator missed the worker cache")
	}

	// A worker-side deterministic verdict surfaces with the worker's own
	// status — the §5.5 mapping inverted back by the coordinator's serving
	// layer.
	rec = post(t, h, "/v1/realize/degree", `{"sequence":[3,1,1]}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unrealizable through proxy: want 422 (CLUSTER.md §5.5), got %d: %s", rec.Code, rec.Body.String())
	}
}
