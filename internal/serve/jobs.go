package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
	"graphrealize/internal/obs"
)

// jobs.go is the asynchronous half of the API: fire-and-poll realizations
// backed by internal/jobs. A submission is acknowledged with 202 + Location
// and runs under the job manager's context, so it survives the submitting
// connection closing; clients poll GET /v1/jobs/{id}, stream progress over
// SSE from GET /v1/jobs/{id}/events, and cancel with DELETE (the engine
// stops at its next round barrier).

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decode(w, r, &req) {
		return
	}
	kind, ok := parseKind(req.Kind)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown kind %q", req.Kind)
		return
	}
	if !s.checkSequence(w, req.Sequence) {
		return
	}
	opt, err := req.Options.toOptions(s.cfg.DefaultScheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := s.cfg.Jobs.Submit(graphrealize.Job{
		Kind: kind, Seq: req.Sequence, Opt: opt, Label: req.Label,
		TraceID: obs.TraceID(r.Context()),
	})
	if err != nil {
		switch {
		case errors.Is(err, graphrealize.ErrQueueFull):
			s.writeBackpressure(w, "runner queue is full; retry later")
		case errors.Is(err, jobs.ErrTooManyJobs):
			s.writeBackpressure(w, "retained job limit reached; retry later")
		case errors.Is(err, jobs.ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, jobJSON(snap, false, true))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.cfg.Jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	omitEdges := false
	switch r.URL.Query().Get("omit_edges") {
	case "1", "true":
		omitEdges = true
	}
	if wantsWire(r) {
		// The JMETA document is the usual job body minus the edge list; a
		// done job's graph travels as the graph section instead. Jobs that
		// are not done (or asked to omit edges) stream metadata alone.
		var g *graphrealize.Graph
		if !omitEdges && snap.Result != nil && snap.Result.Graph != nil {
			g = snap.Result.Graph
		}
		writeWire(w, jobJSON(snap, true, true), g)
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(snap, true, omitEdges))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var state jobs.State
	if raw := q.Get("state"); raw != "" {
		st, ok := jobs.ParseState(raw)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown state %q", raw)
			return
		}
		state = st
	}
	limit := 100
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = min(n, 1000)
	}
	snaps := s.cfg.Jobs.List(state, limit)
	resp := JobListResponse{Jobs: make([]JobJSON, 0, len(snaps)), Counts: map[string]int{}}
	for _, snap := range snaps {
		resp.Jobs = append(resp.Jobs, jobJSON(snap, false, true))
	}
	for st, n := range s.cfg.Jobs.StatsSnapshot().Jobs {
		resp.Counts[string(st)] = n
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	snap, initiated, err := s.cfg.Jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// 202 while the engine unwinds to its next round barrier; 200 when the
	// job was already terminal (idempotent no-op).
	code := http.StatusOK
	if initiated {
		code = http.StatusAccepted
	}
	writeJSON(w, code, jobJSON(snap, false, true))
}

// canFlush reports whether the writer (or anything it wraps, following the
// http.ResponseController Unwrap convention) supports http.Flusher.
func canFlush(w http.ResponseWriter) bool {
	for {
		if _, ok := w.(http.Flusher); ok {
			return true
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return false
		}
		w = u.Unwrap()
	}
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events: one
// "progress" event per observed round watermark (coalesced under load) and a
// final event named after the terminal state. The stream ends at the
// terminal event or when the client disconnects; the job itself is
// unaffected by disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	events, cancel, err := s.cfg.Jobs.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()
	// Probe flushability before committing any headers: the check walks
	// Unwrap chains (e.g. the logging recorder), so a genuinely
	// non-flushable writer is rejected instead of silently buffering the
	// stream. Actual flushes go through ResponseController, which performs
	// the same walk.
	if !canFlush(w) {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	// Heartbeat comments keep idle-timeout proxies from dropping a stream
	// whose job is still queued (the first round barrier can be far away).
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()

	ctx := r.Context()
	for {
		select {
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			if rc.Flush() != nil {
				return
			}
		case ev, open := <-events:
			if !open {
				return
			}
			name := "progress"
			if ev.Terminal {
				name = string(ev.State)
			}
			data, err := json.Marshal(jobEventJSON(ev))
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
			if rc.Flush() != nil {
				return // connection gone
			}
			if ev.Terminal {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
