// Package serve is the HTTP layer of the realization service: a thin,
// stateless router that maps JSON requests onto graphrealize Runner jobs
// and the Runner's backpressure onto HTTP status codes.
//
// Endpoints:
//
//	POST /v1/realize/degree        degree-sequence realization (§4)
//	POST /v1/realize/tree          tree realization (§5)
//	POST /v1/realize/connectivity  connectivity realization (§6)
//	POST /v1/sweep                 one sequence under many seeds
//	GET  /healthz                  liveness
//	GET  /v1/stats                 Runner queue/cache/latency counters
//	GET  /metrics                  Prometheus text exposition
//
// With a job manager configured (Config.Jobs), the asynchronous API is also
// served — fire-and-poll realizations that survive the submitting connection
// closing:
//
//	POST   /v1/jobs                submit (202 + Location)
//	GET    /v1/jobs                list/filter retained jobs
//	GET    /v1/jobs/{id}           state, round progress, and result
//	DELETE /v1/jobs/{id}           cancel (engine stops at a round barrier)
//	GET    /v1/jobs/{id}/events    SSE stream of progress/terminal events
//
// Error mapping: malformed requests are 400, oversized inputs 413,
// unrealizable sequences 422, a saturated Runner 429 (backpressure — the
// request was never admitted) with a Retry-After hint derived from live
// queue depth and mean job latency, job timeouts 504, and a client that
// disconnected mid-job 499.
//
// Responses are JSON by default. The realization, sweep, and job-result
// routes additionally negotiate the compact graphwire binary encoding
// (internal/wire, specified in WIRE.md) when a request lists
// application/x-graphwire in Accept — see wire.go; errors stay JSON in
// every case.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"graphrealize"
	"graphrealize/internal/cluster"
	"graphrealize/internal/jobs"
	"graphrealize/internal/obs"
)

// StatusClientClosedRequest reports a job abandoned because the client went
// away (nginx's non-standard 499); it is never seen by a live client.
const StatusClientClosedRequest = 499

// Backend is the slice of the graphrealize.Runner API the service uses.
// It is an interface so tests can pin queue-full and cancellation paths
// deterministically.
type Backend interface {
	SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	SubmitAllCtx(ctx context.Context, jobs []graphrealize.Job) ([]<-chan graphrealize.Result, error)
	Stats() graphrealize.RunnerStats
}

// Config assembles a Server.
type Config struct {
	// Backend executes jobs; typically a *graphrealize.Runner.
	Backend Backend
	// MaxN caps the sequence length of a single request (default 4096).
	MaxN int
	// MaxSeeds caps the seeds of one sweep request (default 64).
	MaxSeeds int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Jobs, when non-nil, enables the asynchronous job API backed by this
	// manager (which should wrap the same Backend so admission control is
	// shared).
	Jobs *jobs.Manager
	// DefaultScheduler is the simulator driver used when a request's options
	// leave the scheduler field empty (grserved -scheduler). The driver never
	// affects results, only execution speed, so changing the default is safe
	// for clients.
	DefaultScheduler graphrealize.Scheduler
	// Cluster, when non-nil, marks this server a coordinator: the cluster
	// control plane (/cluster/v1/*) is mounted, /v1/stats grows a cluster
	// object, and /metrics grows the graphrealize_cluster_* families. It
	// should be the same Backend configured above, so routing and stats
	// describe one object (grserved -coordinator).
	Cluster *cluster.Backend
	// Logf, when non-nil, receives one line per request.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives one structured record per request
	// (trace_id, route, method, path, status, elapsed_ms) — the machine-
	// grep-able counterpart of Logf. Both may be set; both fire.
	Logger *slog.Logger
}

// obsBackend is the optional Backend extension exposing the Runner's
// wall-clock observability (histograms, phase profiles, flight recorder).
// It is a separate assertion rather than part of Backend so the scripted
// test backends stay minimal; a *graphrealize.Runner always satisfies it.
type obsBackend interface {
	Obs() *graphrealize.RunnerObs
}

// routeNames is every route label the server exports, in the sorted order
// /metrics emits them. Fixed at compile time: per-route histograms must not
// be allocated from request paths (unbounded label cardinality).
var routeNames = []string{
	"cluster_heartbeat",
	"cluster_register",
	"cluster_workers",
	"healthz",
	"jobs_cancel",
	"jobs_events",
	"jobs_get",
	"jobs_list",
	"jobs_submit",
	"metrics",
	"realize",
	"slowest",
	"stats",
	"sweep",
}

// Server routes realization requests onto a Backend.
type Server struct {
	cfg     Config
	started time.Time

	// runnerObs is the Backend's instrument set, nil when the backend does
	// not implement obsBackend (scripted test backends).
	runnerObs *graphrealize.RunnerObs
	// routeHist holds one HTTP latency histogram per entry of routeNames.
	routeHist map[string]*obs.Histogram

	// Watermarks of the executed-job counters at the previous Retry-After
	// computation, so the hint reflects recent latency, not the lifetime
	// mean (which goes stale when the workload shifts). lastMean caches the
	// most recent per-job mean so a window with no completed executions
	// falls back to the last real observation instead of re-deriving a
	// lifetime figure.
	retryMu     sync.Mutex
	lastExec    int64
	lastRunNano int64
	lastMean    time.Duration
}

// New creates a Server. It panics if cfg.Backend is nil: a service without
// an executor is a programming error, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("serve: Config.Backend is required")
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 4096
	}
	if cfg.MaxSeeds <= 0 {
		cfg.MaxSeeds = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{cfg: cfg, started: time.Now(), routeHist: make(map[string]*obs.Histogram, len(routeNames))}
	if ob, ok := cfg.Backend.(obsBackend); ok {
		s.runnerObs = ob.Obs()
	}
	for _, route := range routeNames {
		s.routeHist[route] = obs.NewHistogram(obs.DefaultLatencyBuckets)
	}
	return s
}

// Handler returns the service's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/realize/{alg}", s.instrument("realize", s.handleRealize))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/debug/slowest", s.instrument("slowest", s.handleDebugSlowest))
	if s.cfg.Cluster != nil {
		mux.HandleFunc("POST /cluster/v1/register", s.instrument("cluster_register", s.handleClusterRegister))
		mux.HandleFunc("POST /cluster/v1/heartbeat", s.instrument("cluster_heartbeat", s.handleClusterHeartbeat))
		mux.HandleFunc("GET /cluster/v1/workers", s.instrument("cluster_workers", s.handleClusterWorkers))
	}
	if s.cfg.Jobs != nil {
		mux.HandleFunc("POST /v1/jobs", s.instrument("jobs_submit", s.handleJobSubmit))
		mux.HandleFunc("GET /v1/jobs", s.instrument("jobs_list", s.handleJobList))
		mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs_get", s.handleJobGet))
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs_cancel", s.handleJobCancel))
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("jobs_events", s.handleJobEvents))
	}
	return mux
}

// statusRecorder captures the status code for request logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so SSE
// streaming works through the logging middleware without the recorder
// falsely claiming http.Flusher support the underlying writer lacks.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// instrument is the per-request observability middleware, applied to every
// route: it adopts the client's X-Request-Id (when valid) or mints a trace
// ID, echoes it on the response, carries it in the request context for
// handlers to propagate into jobs, observes the route's latency histogram,
// and emits the request log line(s). Unlike the old Logf-only wrapper it
// always wraps — tracing and histograms are unconditional; the statusRecorder
// keeps the Unwrap chain intact so SSE flushing still works.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.routeHist[route]
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.HeaderRequestID)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.HeaderRequestID, id)
		r = r.WithContext(obs.WithTraceID(r.Context(), id))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		hist.ObserveDuration(elapsed)
		elapsedMS := float64(elapsed.Microseconds()) / 1000
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				"trace_id", id,
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"elapsed_ms", elapsedMS)
		}
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s -> %d (%.1fms) trace=%s", r.Method, r.URL.Path, rec.status, elapsedMS, id)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeResultError maps a job-level error onto an HTTP status. The two
// cluster-only cases surface proxied admission outcomes that a local Runner
// reports at submit time instead: a worker's backpressure rides a Result
// (429, CLUSTER.md §8.1), and an emptied routing set is 503 — retrying is
// pointless until a worker rejoins (CLUSTER.md §6.2).
func writeResultError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, graphrealize.ErrUnrealizable):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, graphrealize.ErrBadInput):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, graphrealize.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, cluster.ErrNoWorkers):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "job exceeded its deadline")
	case errors.Is(err, context.Canceled):
		writeError(w, StatusClientClosedRequest, "client closed request")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// decode reads a JSON body with the configured size cap. It distinguishes
// oversized bodies (413) from malformed ones (400).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		}
		return false
	}
	return true
}

// checkSequence enforces presence and the MaxN cap.
func (s *Server) checkSequence(w http.ResponseWriter, seq []int) bool {
	if len(seq) == 0 {
		writeError(w, http.StatusBadRequest, "sequence is required and must be non-empty")
		return false
	}
	if len(seq) > s.cfg.MaxN {
		writeError(w, http.StatusRequestEntityTooLarge, "sequence length %d exceeds the service cap n=%d", len(seq), s.cfg.MaxN)
		return false
	}
	return true
}

// retryAfterSeconds estimates when Runner capacity will free up, for 429
// Retry-After hints: the current backlog (queued + active jobs) spread over
// the worker pool, times the recent mean job latency, rounded up and clamped
// to [1, 30] seconds. "Recent" is the window since the previous hint (the
// lifetime mean goes stale when the workload shifts). The fallback ladder
// when the window is empty is explicit: a window with no completed
// executions reuses the previous hint's mean; before any hint has observed
// an execution the lifetime mean stands in; and a fully cold Runner (nothing
// ever executed) hints the 1-second floor.
func (s *Server) retryAfterSeconds() int {
	st := s.cfg.Backend.Stats()
	if st.Executed == 0 {
		return 1 // cold start: no latency signal at all
	}
	s.retryMu.Lock()
	dExec := st.Executed - s.lastExec
	dRun := st.TotalRun.Nanoseconds() - s.lastRunNano
	var mean time.Duration
	switch {
	case dExec > 0:
		mean = time.Duration(dRun / dExec)
		s.lastExec = st.Executed
		s.lastRunNano = st.TotalRun.Nanoseconds()
		s.lastMean = mean
	case s.lastMean > 0:
		mean = s.lastMean // empty window: keep the last real observation
	default:
		mean = st.TotalRun / time.Duration(st.Executed) // st.Executed > 0
	}
	s.retryMu.Unlock()
	workers := max(st.Workers, 1)
	backlog := st.Queued + st.Active
	eta := time.Duration(backlog) * mean / time.Duration(workers)
	secs := int((eta + time.Second - 1) / time.Second)
	return min(max(secs, 1), 30)
}

// writeBackpressure emits a 429 with the live Retry-After hint.
func (s *Server) writeBackpressure(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// submit runs one job to completion under the request context, translating
// admission rejection into 429 with a Retry-After hint.
func (s *Server) submit(w http.ResponseWriter, ctx context.Context, j graphrealize.Job) (graphrealize.Result, bool) {
	ch, err := s.cfg.Backend.SubmitCtx(ctx, j)
	if err != nil {
		switch {
		case errors.Is(err, graphrealize.ErrQueueFull):
			s.writeBackpressure(w, "runner queue is full; retry later")
		case errors.Is(err, cluster.ErrNoWorkers):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return graphrealize.Result{}, false
	}
	res := <-ch
	if res.Err != nil {
		writeResultError(w, res.Err)
		return res, false
	}
	return res, true
}

// errUnknownAlgorithm distinguishes a bad {alg} path element (404) from a
// bad variant on a known algorithm (400).
var errUnknownAlgorithm = errors.New("unknown algorithm")

// jobKindFor maps an /v1/realize/{alg} path plus variant to a JobKind.
func jobKindFor(alg, variant string) (graphrealize.JobKind, error) {
	switch alg {
	case "degree":
		switch variant {
		case "", "implicit":
			return graphrealize.JobDegrees, nil
		case "explicit":
			return graphrealize.JobDegreesExplicit, nil
		case "envelope":
			return graphrealize.JobUpperEnvelope, nil
		}
		return 0, fmt.Errorf("unknown degree variant %q (want implicit, explicit, or envelope)", variant)
	case "tree":
		switch variant {
		case "", "chain":
			return graphrealize.JobChainTree, nil
		case "mindiam", "min-diam", "greedy":
			return graphrealize.JobMinDiamTree, nil
		}
		return 0, fmt.Errorf("unknown tree variant %q (want chain or mindiam)", variant)
	case "connectivity":
		if variant != "" {
			return 0, fmt.Errorf("connectivity has no variants (got %q)", variant)
		}
		return graphrealize.JobConnectivity, nil
	}
	return 0, fmt.Errorf("%w %q (want degree, tree, or connectivity)", errUnknownAlgorithm, alg)
}

func (s *Server) handleRealize(w http.ResponseWriter, r *http.Request) {
	var req RealizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	kind, err := jobKindFor(r.PathValue("alg"), req.Variant)
	if err != nil {
		if errors.Is(err, errUnknownAlgorithm) {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if !s.checkSequence(w, req.Sequence) {
		return
	}
	opt, err := req.Options.toOptions(s.cfg.DefaultScheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	res, ok := s.submit(w, r.Context(), graphrealize.Job{
		Kind: kind, Seq: req.Sequence, Opt: opt,
		TraceID: obs.TraceID(r.Context()),
	})
	if !ok {
		return
	}
	resp := RealizeResponse{
		Kind:      kind.String(),
		N:         res.Graph.N,
		M:         res.Graph.M(),
		Envelope:  res.Envelope,
		Stats:     statsJSON(res.Stats),
		Cached:    res.Cached,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	// Everything that can fail has failed by here (the flush-audit
	// contract): both encodings below start from a committed 200.
	if wantsWire(r) {
		var g *graphrealize.Graph
		if !req.OmitEdges {
			g = res.Graph
		}
		writeWire(w, resp, g)
		return
	}
	if !req.OmitEdges {
		resp.Edges = res.Graph.Edges()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	kind, ok := parseKind(req.Kind)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown kind %q", req.Kind)
		return
	}
	if !s.checkSequence(w, req.Sequence) {
		return
	}
	opt, err := req.Options.toOptions(s.cfg.DefaultScheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		count := req.SeedCount
		if count <= 0 {
			writeError(w, http.StatusBadRequest, "either seeds or a positive seed_count is required")
			return
		}
		// Cap before allocating: seed_count is attacker-controlled.
		if count > s.cfg.MaxSeeds {
			writeError(w, http.StatusRequestEntityTooLarge, "%d seeds exceed the service cap %d", count, s.cfg.MaxSeeds)
			return
		}
		seeds = make([]int64, count)
		for i := range seeds {
			seeds[i] = req.SeedStart + int64(i)
		}
	}
	if len(seeds) > s.cfg.MaxSeeds {
		writeError(w, http.StatusRequestEntityTooLarge, "%d seeds exceed the service cap %d", len(seeds), s.cfg.MaxSeeds)
		return
	}

	start := time.Now()
	sweepJobs := graphrealize.SweepSeeds(graphrealize.Job{
		Kind: kind, Seq: req.Sequence, Opt: opt,
		TraceID: obs.TraceID(r.Context()),
	}, seeds)
	// The whole sweep is admitted atomically (every job or none), so a
	// saturated Runner rejects it as a unit (429) instead of wedging it
	// halfway or starving a concurrent sweep.
	chans, err := s.cfg.Backend.SubmitAllCtx(r.Context(), sweepJobs)
	if err != nil {
		switch {
		case errors.Is(err, graphrealize.ErrQueueFull):
			s.writeBackpressure(w, "runner queue cannot admit a %d-job sweep; retry later", len(sweepJobs))
		case errors.Is(err, cluster.ErrNoWorkers):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	resp := SweepResponse{Kind: kind.String(), N: len(req.Sequence), Seeds: len(seeds)}
	var rounds []int
	for i, ch := range chans {
		res := <-ch
		row := SweepRow{Seed: seeds[i], Cached: res.Cached}
		if res.Err != nil {
			// Realizability is seed-independent, so an unrealizable (or
			// otherwise failed) sweep fails as a unit with the usual mapping.
			writeResultError(w, res.Err)
			return
		}
		row.M = res.Graph.M()
		row.Stats = statsJSON(res.Stats)
		if res.Cached {
			resp.CacheHits++
		}
		rounds = append(rounds, res.Stats.Rounds)
		resp.Rows = append(resp.Rows, row)
	}
	sort.Ints(rounds)
	resp.RoundsMin = rounds[0]
	resp.RoundsMedian = rounds[len(rounds)/2]
	resp.RoundsMax = rounds[len(rounds)-1]
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if wantsWire(r) {
		// Sweep rows carry no edge lists, so the stream is JMETA + END.
		writeWire(w, resp, nil)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse(s.cfg.Backend.Stats(), time.Since(s.started), s.runnerObs)
	if s.cfg.Cluster != nil {
		resp.Cluster = clusterStats(s.cfg.Cluster)
	}
	writeJSON(w, http.StatusOK, resp)
}
