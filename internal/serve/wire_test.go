package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphrealize"
	"graphrealize/internal/serve"
	"graphrealize/internal/wire"
)

// wire_test.go covers the application/x-graphwire content negotiation
// (WIRE.md §10) and its flush-audit contract: errors map to their status
// strictly before the first response byte, so a wire client never sees a
// 200 header followed by a JSON error, and an error response never starts
// with wire magic.

// postWire is post with the graphwire Accept header.
func postWire(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.MediaType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeWire asserts a 200 graphwire response and decodes it.
func decodeWire(t *testing.T, rec *httptest.ResponseRecorder) *wire.Message {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.MediaType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.MediaType)
	}
	msg, err := wire.Decode(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("response is not a valid graphwire stream: %v", err)
	}
	return msg
}

func TestRealizeWireNegotiation(t *testing.T) {
	h := realServer(t)
	body := `{"sequence":[3,3,2,2,2,2],"options":{"seed":7}}`

	// Baseline JSON response for the same request.
	jsonRec := post(t, h, "/v1/realize/degree", body)
	jsonResp := decodeInto[serve.RealizeResponse](t, jsonRec)

	msg := decodeWire(t, postWire(t, h, "/v1/realize/degree", body))
	if !msg.HasGraph || msg.N != 6 || msg.M != 7 {
		t.Fatalf("wire stream carries n=%d m=%d hasGraph=%v, want 6/7/true", msg.N, msg.M, msg.HasGraph)
	}

	// The JMETA document is the JSON body minus the edge list.
	var meta serve.RealizeResponse
	if err := json.Unmarshal(msg.Meta, &meta); err != nil {
		t.Fatalf("JMETA is not a RealizeResponse: %v", err)
	}
	if meta.Edges != nil {
		t.Fatal("JMETA must not duplicate the edge list (it travels as the graph section)")
	}
	if meta.Kind != jsonResp.Kind || meta.N != jsonResp.N || meta.M != jsonResp.M {
		t.Fatalf("JMETA %+v disagrees with the JSON body %+v", meta, jsonResp)
	}

	// Same graph both ways: the wire adjacency must contain exactly the
	// JSON edge list.
	edges := map[[2]int]bool{}
	for _, e := range jsonResp.Edges {
		edges[e] = true
	}
	count := 0
	for u, nbrs := range msg.Adj {
		for _, v := range nbrs {
			if u < v {
				count++
				if !edges[[2]int{u, v}] {
					t.Fatalf("wire edge (%d,%d) not in the JSON response", u, v)
				}
			}
		}
	}
	if count != len(jsonResp.Edges) {
		t.Fatalf("wire carries %d edges, JSON %d", count, len(jsonResp.Edges))
	}
}

func TestRealizeWireOmitEdges(t *testing.T) {
	h := realServer(t)
	msg := decodeWire(t, postWire(t, h, "/v1/realize/degree", `{"sequence":[2,2,2,2],"omit_edges":true}`))
	if msg.HasGraph {
		t.Fatal("omit_edges stream must have no graph section")
	}
	var meta serve.RealizeResponse
	if err := json.Unmarshal(msg.Meta, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.M != 4 {
		t.Fatalf("metadata-only stream lost the stats: %+v", meta)
	}
}

func TestSweepWireNegotiation(t *testing.T) {
	h := realServer(t)
	msg := decodeWire(t, postWire(t, h, "/v1/sweep", `{"kind":"degrees","sequence":[3,3,2,2,2,2],"seeds":[1,2,3]}`))
	if msg.HasGraph {
		t.Fatal("sweep responses carry no graph section")
	}
	var meta serve.SweepResponse
	if err := json.Unmarshal(msg.Meta, &meta); err != nil {
		t.Fatalf("JMETA is not a SweepResponse: %v", err)
	}
	if meta.Seeds != 3 || len(meta.Rows) != 3 {
		t.Fatalf("sweep metadata wrong: %+v", meta)
	}
}

func TestJobGetWireNegotiation(t *testing.T) {
	h, _ := asyncServer(t)
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	id := decodeInto[serve.JobJSON](t, rec).ID
	pollJob(t, h, id, "done")

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
	req.Header.Set("Accept", wire.MediaType)
	wrec := httptest.NewRecorder()
	h.ServeHTTP(wrec, req)
	msg := decodeWire(t, wrec)
	if !msg.HasGraph || msg.N != 6 || msg.M != 7 {
		t.Fatalf("done job stream carries n=%d m=%d hasGraph=%v, want 6/7/true", msg.N, msg.M, msg.HasGraph)
	}
	var meta serve.JobJSON
	if err := json.Unmarshal(msg.Meta, &meta); err != nil {
		t.Fatalf("JMETA is not a JobJSON: %v", err)
	}
	if meta.State != "done" || meta.Result == nil || meta.Result.Edges != nil {
		t.Fatalf("job JMETA wrong (edges must travel as the graph section): %+v", meta)
	}

	// omit_edges over wire: metadata alone.
	req = httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"?omit_edges=1", nil)
	req.Header.Set("Accept", wire.MediaType)
	wrec = httptest.NewRecorder()
	h.ServeHTTP(wrec, req)
	if msg := decodeWire(t, wrec); msg.HasGraph {
		t.Fatal("omit_edges job stream must have no graph section")
	}
}

// TestWireErrorsStayJSON is the flush-audit regression test: every error
// must be mapped to its status before the first response byte, so even a
// wire-negotiated request gets a JSON error body with the right status —
// never a 200, never wire magic bytes.
func TestWireErrorsStayJSON(t *testing.T) {
	h := realServer(t)
	cases := []struct {
		name string
		path string
		body string
		code int
	}{
		{"unrealizable", "/v1/realize/degree", `{"sequence":[3,1,1]}`, http.StatusUnprocessableEntity},
		{"malformed body", "/v1/realize/degree", `{"sequence":`, http.StatusBadRequest},
		{"unknown algorithm", "/v1/realize/nope", `{"sequence":[1,1]}`, http.StatusNotFound},
		{"oversized", "/v1/realize/degree", `{"sequence":[` + strings.Repeat("1,", 100) + `1]}`, http.StatusRequestEntityTooLarge},
		{"unrealizable sweep", "/v1/sweep", `{"kind":"degrees","sequence":[3,1,1],"seeds":[1]}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postWire(t, h, c.path, c.body)
			if rec.Code != c.code {
				t.Fatalf("want %d, got %d: %s", c.code, rec.Code, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type = %q, want application/json", ct)
			}
			if bytes.HasPrefix(rec.Body.Bytes(), []byte("GRWF")) {
				t.Fatal("error response starts with wire magic")
			}
			if resp := decodeInto[serve.ErrorResponse](t, rec); resp.Error == "" {
				t.Fatal("error body has no error field")
			}
		})
	}

	// Backpressure too: a saturated backend rejects before any body bytes.
	fb := &fakeBackend{submit: func(context.Context, graphrealize.Job) (<-chan graphrealize.Result, error) {
		return nil, graphrealize.ErrQueueFull
	}}
	sat := serve.New(serve.Config{Backend: fb}).Handler()
	rec := postWire(t, sat, "/v1/realize/degree", `{"sequence":[1,1]}`)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("queue-full over wire: %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestWireNotNegotiatedByWildcard pins the default: only an explicit
// application/x-graphwire opts in; */* and other types keep JSON.
func TestWireNotNegotiatedByWildcard(t *testing.T) {
	h := realServer(t)
	for _, accept := range []string{"", "*/*", "application/json", "application/*"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/realize/degree", strings.NewReader(`{"sequence":[1,1]}`))
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("accept %q: %d %s", accept, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("accept %q negotiated %q; JSON must stay the default", accept, ct)
		}
	}

	// And the header is recognized inside a list with q-values.
	req := httptest.NewRequest(http.MethodPost, "/v1/realize/degree", strings.NewReader(`{"sequence":[1,1]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json;q=0.5, application/x-graphwire;q=0.9")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != wire.MediaType {
		t.Fatalf("listed Accept member not honored: Content-Type %q", ct)
	}
}
