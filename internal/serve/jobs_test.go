package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
	"graphrealize/internal/serve"
)

// asyncServer wires a Server to a real Runner plus a job manager — the
// production configuration of the async API.
func asyncServer(t *testing.T) (http.Handler, *jobs.Manager) {
	t.Helper()
	runner := graphrealize.NewRunner(4)
	m := jobs.New(jobs.Config{Backend: runner})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	s := serve.New(serve.Config{Backend: runner, Jobs: m, MaxN: 512})
	return s.Handler(), m
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// pollJob GETs the job until it reaches one of the wanted states.
func pollJob(t *testing.T, h http.Handler, id string, want ...string) serve.JobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, h, http.MethodGet, "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: %d %s", rec.Code, rec.Body.String())
		}
		j := decodeInto[serve.JobJSON](t, rec)
		for _, w := range want {
			if j.State == w {
				return j
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return serve.JobJSON{}
}

func TestJobSubmitPollResult(t *testing.T) {
	h, _ := asyncServer(t)
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[3,3,2,2,2,2],"options":{"seed":7},"label":"t"}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("want 202, got %d: %s", rec.Code, rec.Body.String())
	}
	j := decodeInto[serve.JobJSON](t, rec)
	if j.ID == "" || j.State != "queued" || j.Kind != "degrees" || j.N != 6 || j.Label != "t" {
		t.Fatalf("submission snapshot wrong: %+v", j)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Fatalf("Location header wrong: %q", loc)
	}
	if j.Result != nil {
		t.Fatal("202 body must not carry a result")
	}

	done := pollJob(t, h, j.ID, "done")
	if done.Result == nil || done.Result.M != 7 || len(done.Result.Edges) != 7 {
		t.Fatalf("done job must carry the realization: %+v", done.Result)
	}
	if done.Result.Stats.Rounds <= 0 {
		t.Fatalf("result stats missing: %+v", done.Result.Stats)
	}
	if done.FinishedAt == nil {
		t.Fatal("done job must carry finished_at")
	}

	// omit_edges drops the edge list but keeps m.
	rec = do(t, h, http.MethodGet, "/v1/jobs/"+j.ID+"?omit_edges=1", "")
	if got := decodeInto[serve.JobJSON](t, rec); got.Result == nil || got.Result.Edges != nil || got.Result.M != 7 {
		t.Fatalf("omit_edges wrong: %+v", got.Result)
	}
}

func TestJobValidation(t *testing.T) {
	h, _ := asyncServer(t)
	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown kind", `{"kind":"matching","sequence":[1,1]}`, http.StatusBadRequest},
		{"empty sequence", `{"kind":"degrees","sequence":[]}`, http.StatusBadRequest},
		{"bad options", `{"kind":"degrees","sequence":[1,1],"options":{"model":"ncc9"}}`, http.StatusBadRequest},
		{"unknown field", `{"kind":"degrees","sequenze":[1,1]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := do(t, h, http.MethodPost, "/v1/jobs", tc.body); rec.Code != tc.want {
				t.Fatalf("want %d, got %d: %s", tc.want, rec.Code, rec.Body.String())
			}
		})
	}
	if rec := do(t, h, http.MethodGet, "/v1/jobs/nope", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job must 404, got %d", rec.Code)
	}
	if rec := do(t, h, http.MethodDelete, "/v1/jobs/nope", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel of unknown job must 404, got %d", rec.Code)
	}
	if rec := do(t, h, http.MethodGet, "/v1/jobs/nope/events", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("events of unknown job must 404, got %d", rec.Code)
	}
	if rec := do(t, h, http.MethodGet, "/v1/jobs?state=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus state filter must 400, got %d", rec.Code)
	}
}

// TestJobUnrealizableLandsInFailed: input errors are job failures, not HTTP
// errors — the submission is still a 202.
func TestJobUnrealizableLandsInFailed(t *testing.T) {
	h, _ := asyncServer(t)
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[3,3,1,1]}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("want 202, got %d", rec.Code)
	}
	j := decodeInto[serve.JobJSON](t, rec)
	failed := pollJob(t, h, j.ID, "failed")
	if !strings.Contains(failed.Error, "not realizable") {
		t.Fatalf("failure cause missing: %+v", failed)
	}
}

func TestJobCancelFlow(t *testing.T) {
	h, _ := asyncServer(t)
	// OddEvenSort at n=256 runs long enough to cancel mid-flight.
	seq := make([]string, 256)
	for i := range seq {
		seq[i] = "4"
	}
	body := fmt.Sprintf(`{"kind":"degrees","sequence":[%s],"options":{"sort":"oddeven"}}`, strings.Join(seq, ","))
	rec := do(t, h, http.MethodPost, "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("want 202, got %d: %s", rec.Code, rec.Body.String())
	}
	j := decodeInto[serve.JobJSON](t, rec)
	pollJob(t, h, j.ID, "running")

	rec = do(t, h, http.MethodDelete, "/v1/jobs/"+j.ID, "")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel of a running job must 202, got %d", rec.Code)
	}
	got := pollJob(t, h, j.ID, "canceled")
	if got.Error == "" {
		t.Fatal("canceled job must carry the cancellation cause")
	}
	// A second DELETE is an idempotent no-op on the terminal job.
	if rec := do(t, h, http.MethodDelete, "/v1/jobs/"+j.ID, ""); rec.Code != http.StatusOK {
		t.Fatalf("cancel of a terminal job must 200, got %d", rec.Code)
	}
}

func TestJobEventsSSE(t *testing.T) {
	h, _ := asyncServer(t)
	seq := make([]string, 64)
	for i := range seq {
		seq[i] = "4"
	}
	body := fmt.Sprintf(`{"kind":"degrees","sequence":[%s],"options":{"seed":3}}`, strings.Join(seq, ","))
	rec := do(t, h, http.MethodPost, "/v1/jobs", body)
	j := decodeInto[serve.JobJSON](t, rec)

	// httptest.ResponseRecorder implements http.Flusher, and the handler
	// returns at the terminal event, so the full stream is in the body.
	stream := do(t, h, http.MethodGet, "/v1/jobs/"+j.ID+"/events", "")
	if stream.Code != http.StatusOK {
		t.Fatalf("events: %d %s", stream.Code, stream.Body.String())
	}
	if ct := stream.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("want SSE content type, got %q", ct)
	}

	var names []string
	var rounds []int
	sc := bufio.NewScanner(stream.Body)
	var current string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			names = append(names, current)
		case strings.HasPrefix(line, "data: "):
			var ev serve.JobEventJSON
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event payload: %v in %q", err, line)
			}
			rounds = append(rounds, ev.Round)
		}
	}
	if len(names) == 0 || names[len(names)-1] != "done" {
		t.Fatalf("stream must end with a done event, got %v", names)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] < rounds[i-1] {
			t.Fatalf("SSE rounds must be monotone, got %v", rounds)
		}
	}
}

func TestJobListEndpoint(t *testing.T) {
	h, _ := asyncServer(t)
	var ids []string
	for i := 0; i < 3; i++ {
		rec := do(t, h, http.MethodPost, "/v1/jobs", fmt.Sprintf(`{"kind":"degrees","sequence":[2,2,2],"options":{"seed":%d}}`, i))
		ids = append(ids, decodeInto[serve.JobJSON](t, rec).ID)
	}
	for _, id := range ids {
		pollJob(t, h, id, "done")
	}
	rec := do(t, h, http.MethodGet, "/v1/jobs?state=done&limit=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	resp := decodeInto[serve.JobListResponse](t, rec)
	if len(resp.Jobs) != 2 {
		t.Fatalf("limit must cap rows, got %d", len(resp.Jobs))
	}
	if resp.Counts["done"] != 3 {
		t.Fatalf("counts must tally all retained jobs: %+v", resp.Counts)
	}
	if resp.Jobs[0].Result != nil {
		t.Fatal("list rows must not embed results")
	}
}

// TestJobRecoveredFlagOnWire: a job reloaded from a durable store serves
// its persisted result with "recovered":true, and /metrics exposes the
// recovery counters.
func TestJobRecoveredFlagOnWire(t *testing.T) {
	dir := t.TempDir()
	open := func() (*jobs.Manager, http.Handler) {
		fs, err := jobs.OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		runner := graphrealize.NewRunner(2)
		m, err := jobs.Open(jobs.Config{Backend: runner, Store: fs})
		if err != nil {
			t.Fatal(err)
		}
		return m, serve.New(serve.Config{Backend: runner, Jobs: m}).Handler()
	}

	m1, h1 := open()
	rec := do(t, h1, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[3,3,2,2,2,2],"options":{"seed":7}}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("want 202, got %d: %s", rec.Code, rec.Body.String())
	}
	j := decodeInto[serve.JobJSON](t, rec)
	if j.Recovered {
		t.Fatal("a freshly submitted job must not be marked recovered")
	}
	before := pollJob(t, h1, j.ID, "done")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2, h2 := open()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m2.Close(ctx)
	}()
	got := pollJob(t, h2, j.ID, "done")
	if !got.Recovered {
		t.Fatalf("reloaded job must carry recovered: %+v", got)
	}
	if got.Result == nil || got.Result.M != before.Result.M || len(got.Result.Edges) != len(before.Result.Edges) {
		t.Fatalf("persisted result must be served after restart: %+v", got.Result)
	}
	metrics := do(t, h2, http.MethodGet, "/metrics", "")
	body := metrics.Body.String()
	for _, want := range []string{
		"graphrealize_async_store_durable 1",
		"graphrealize_async_recovered_terminal_total 1",
		"graphrealize_async_wal_records",
		"graphrealize_async_compactions_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestJobSubmitBackpressure(t *testing.T) {
	fb := &fakeBackend{
		submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			return nil, graphrealize.ErrQueueFull
		},
		stats: graphrealize.RunnerStats{Workers: 1},
	}
	m := jobs.New(jobs.Config{Backend: fb})
	defer m.Close(context.Background())
	h := serve.New(serve.Config{Backend: fb, Jobs: m}).Handler()
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[1,1]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit must 429, got %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

func TestJobsDisabledWithoutManager(t *testing.T) {
	h := serve.New(serve.Config{Backend: graphrealize.NewRunner(1)}).Handler()
	if rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[1,1]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("async API without a manager must 404, got %d", rec.Code)
	}
}

// TestRetryAfterDerivedFromStats pins the satellite formula: backlog spread
// over workers times mean run latency, ceil'd and clamped to [1, 30].
func TestRetryAfterDerivedFromStats(t *testing.T) {
	cases := []struct {
		name  string
		stats graphrealize.RunnerStats
		want  string
	}{
		{
			name:  "cold runner hints 1",
			stats: graphrealize.RunnerStats{Workers: 2},
			want:  "1",
		},
		{
			// 6 backlogged jobs / 2 workers × 1s mean = 3s.
			name: "queue times mean latency",
			stats: graphrealize.RunnerStats{
				Workers: 2, Queued: 5, Active: 1,
				Executed: 10, TotalRun: 10 * time.Second,
			},
			want: "3",
		},
		{
			name: "clamped to 30",
			stats: graphrealize.RunnerStats{
				Workers: 1, Queued: 500, Active: 1,
				Executed: 2, TotalRun: 2 * time.Second,
			},
			want: "30",
		},
		{
			name: "sub-second backlog rounds up to 1",
			stats: graphrealize.RunnerStats{
				Workers: 8, Queued: 1,
				Executed: 100, TotalRun: time.Second,
			},
			want: "1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fb := &fakeBackend{
				submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
					return nil, graphrealize.ErrQueueFull
				},
				stats: tc.stats,
			}
			h := serve.New(serve.Config{Backend: fb}).Handler()
			rec := post(t, h, "/v1/realize/degree", `{"sequence":[1,1]}`)
			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("want 429, got %d", rec.Code)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.want {
				t.Fatalf("Retry-After = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestMetricsExposition(t *testing.T) {
	h, m := asyncServer(t)
	rec := do(t, h, http.MethodPost, "/v1/jobs", `{"kind":"degrees","sequence":[2,2,2]}`)
	j := decodeInto[serve.JobJSON](t, rec)
	pollJob(t, h, j.ID, "done")
	if st := m.StatsSnapshot(); st.Jobs[jobs.StateDone] != 1 {
		t.Fatalf("precondition: one done job, got %+v", st.Jobs)
	}

	rec = do(t, h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("wrong exposition content type: %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE graphrealize_runner_submitted_total counter",
		"graphrealize_runner_submitted_total 1",
		"graphrealize_runner_completed_total 1",
		"# TYPE graphrealize_async_jobs gauge",
		`graphrealize_async_jobs{state="done"} 1`,
		`graphrealize_async_jobs{state="queued"} 0`,
		"graphrealize_async_subscribers 0",
		"graphrealize_async_evictions_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestMetricsWithoutJobsManager(t *testing.T) {
	h := serve.New(serve.Config{Backend: graphrealize.NewRunner(1)}).Handler()
	rec := do(t, h, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "graphrealize_runner_workers") {
		t.Fatal("runner metrics must always be exposed")
	}
	if strings.Contains(body, "graphrealize_async_") {
		t.Fatal("async gauges must be absent without a job manager")
	}
}
