package serve

import (
	"testing"

	"graphrealize/internal/obs"
)

// metrics_internal_test.go pins the metricsWriter's exact output — the
// exposition must be deterministic (sorted label rows, fixed series order)
// so consecutive scrapes and golden diffs are trustworthy.

func TestMetricsWriterGolden(t *testing.T) {
	var mw metricsWriter
	mw.gauge("g_metric", "A gauge.", 2.5)
	mw.counter("c_metric", "A counter.", 7)
	// Map iteration order is random; labeled must sort rows.
	mw.labeled("l_metric", "Labeled.", "state", map[string]int{
		"queued": 1, "done": 3, "canceled": 0, "failed": 2, "running": 4,
	})
	h := obs.NewHistogram([]float64{0.01, 0.1})
	h.Observe(0.05)
	mw.histogram("h_metric", "Histogram.", obs.HistogramSeries{Labels: `route="x"`, Snap: h.Snapshot()})
	mw.counterSeries("s_metric", "Series.", []labeledCounter{
		{labels: `phase="compute",scheduler="barrier"`, value: 1.5},
		{labels: `phase="delivery",scheduler="barrier"`, value: 0},
	})

	want := `# HELP g_metric A gauge.
# TYPE g_metric gauge
g_metric 2.5
# HELP c_metric A counter.
# TYPE c_metric counter
c_metric 7
# HELP l_metric Labeled.
# TYPE l_metric gauge
l_metric{state="canceled"} 0
l_metric{state="done"} 3
l_metric{state="failed"} 2
l_metric{state="queued"} 1
l_metric{state="running"} 4
# HELP h_metric Histogram.
# TYPE h_metric histogram
h_metric_bucket{route="x",le="0.01"} 0
h_metric_bucket{route="x",le="0.1"} 1
h_metric_bucket{route="x",le="+Inf"} 1
h_metric_sum{route="x"} 0.05
h_metric_count{route="x"} 1
# HELP s_metric Series.
# TYPE s_metric counter
s_metric{phase="compute",scheduler="barrier"} 1.5
s_metric{phase="delivery",scheduler="barrier"} 0
`
	if got := mw.b.String(); got != want {
		t.Errorf("metricsWriter output:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsWriterLabeledStable runs labeled repeatedly over the same map:
// any reliance on map iteration order shows up as flaky output.
func TestMetricsWriterLabeledStable(t *testing.T) {
	rows := map[string]int{"b": 2, "a": 1, "d": 4, "c": 3, "e": 5, "f": 6}
	var first string
	for i := 0; i < 20; i++ {
		var mw metricsWriter
		mw.labeled("x", "X.", "k", rows)
		if i == 0 {
			first = mw.b.String()
			continue
		}
		if got := mw.b.String(); got != first {
			t.Fatalf("labeled output varies between calls:\n%s\nvs\n%s", got, first)
		}
	}
}
