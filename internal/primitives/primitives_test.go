package primitives

import (
	"testing"
	"testing/quick"

	"graphrealize/internal/ncc"
)

// runAll executes BuildAll on every node and returns per-ID tree views plus
// the trace.
func runAll(t *testing.T, n int, seed int64, model ncc.Model) (map[ncc.ID]Tree, *ncc.Trace) {
	t.Helper()
	s := ncc.New(ncc.Config{N: n, Seed: seed, Model: model, Strict: true})
	views := make(map[ncc.ID]Tree, n)
	type res struct {
		id ncc.ID
		tr Tree
	}
	ch := make(chan res, n)
	trace, err := s.Run(func(nd *ncc.Node) {
		_, _, tree := BuildAll(nd)
		ch <- res{nd.ID(), tree}
	})
	if err != nil {
		t.Fatalf("n=%d: run: %v", n, err)
	}
	close(ch)
	for r := range ch {
		views[r.id] = r.tr
	}
	return views, trace
}

// validateTree checks the Theorem 1 properties of a TBFS over the Gk order.
func validateTree(t *testing.T, views map[ncc.ID]Tree, ids []ncc.ID) {
	t.Helper()
	n := len(ids)
	K := ncc.CeilLog2(n)
	roots := 0
	for id, v := range views {
		if v.IsRoot {
			roots++
			if id != ids[0] {
				t.Fatalf("root is %d, want the path head %d", id, ids[0])
			}
			if v.Parent != ncc.None {
				t.Fatal("root has a parent")
			}
		} else if v.Parent == ncc.None {
			t.Fatalf("non-root %d without parent (not spanned)", id)
		}
		if v.Depth > K+1 {
			t.Fatalf("node %d depth %d exceeds ⌈log n⌉+1 = %d", id, v.Depth, K+1)
		}
	}
	if roots != 1 {
		t.Fatalf("found %d roots, want 1", roots)
	}
	// Parent/child mutual consistency.
	for id, v := range views {
		if v.Left != ncc.None {
			if c, ok := views[v.Left]; !ok || c.Parent != id {
				t.Fatalf("left child %d of %d does not point back", v.Left, id)
			}
			if views[v.Left].Depth != v.Depth+1 {
				t.Fatalf("depth mismatch at edge %d→%d", id, v.Left)
			}
		}
		if v.Right != ncc.None {
			if c, ok := views[v.Right]; !ok || c.Parent != id {
				t.Fatalf("right child %d of %d does not point back", v.Right, id)
			}
		}
	}
	// Inorder positions are exactly the Gk positions (the search property).
	for i, id := range ids {
		if views[id].Pos != i {
			t.Fatalf("node %d at path position %d has inorder pos %d", id, i, views[id].Pos)
		}
	}
	// Root size is n.
	for _, v := range views {
		if v.IsRoot && v.Size != n {
			t.Fatalf("root subtree size %d, want %d", v.Size, n)
		}
	}
}

func TestTBFSSmallSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		views, trace := runAll(t, n, int64(n)*7+1, ncc.NCC0)
		validateTree(t, views, trace.IDs)
	}
}

func TestTBFSLarger(t *testing.T) {
	for _, n := range []int{64, 100, 257, 512, 1000} {
		views, trace := runAll(t, n, int64(n), ncc.NCC0)
		validateTree(t, views, trace.IDs)
		K := ncc.CeilLog2(n)
		maxRounds := 8*K + 20 // BuildAll is O(log n) with small constants
		if trace.Metrics.Rounds > maxRounds {
			t.Fatalf("n=%d: BuildAll took %d rounds, budget %d", n, trace.Metrics.Rounds, maxRounds)
		}
	}
}

func TestTBFSNCC1(t *testing.T) {
	views, trace := runAll(t, 200, 5, ncc.NCC1)
	validateTree(t, views, trace.IDs)
}

// TestFigure2Golden reproduces Figure 2 of the paper exactly: on the ordered
// path 1..8, the BBST is rooted at 1 with right child 5; 5 has children 3
// and 7; 3 has 2 and 4; 7 has 6 and 8.
func TestFigure2Golden(t *testing.T) {
	s := ncc.New(ncc.Config{N: 8, Seed: 1, Model: ncc.NCC1, OrderedIDs: true, Strict: true})
	views := make([]Tree, 9)
	results := make(chan struct {
		id ncc.ID
		tr Tree
	}, 8)
	_, err := s.Run(func(nd *ncc.Node) {
		_, _, tree := BuildAll(nd)
		results <- struct {
			id ncc.ID
			tr Tree
		}{nd.ID(), tree}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	close(results)
	for r := range results {
		views[r.id] = r.tr
	}
	type want struct {
		parent, left, right ncc.ID
	}
	wants := map[ncc.ID]want{
		1: {0, 0, 5},
		5: {1, 3, 7},
		3: {5, 2, 4},
		7: {5, 6, 8},
		2: {3, 0, 0},
		4: {3, 0, 0},
		6: {7, 0, 0},
		8: {7, 0, 0},
	}
	for id, w := range wants {
		v := views[id]
		if v.Parent != w.parent || v.Left != w.left || v.Right != w.right {
			t.Fatalf("node %d: parent/left/right = %d/%d/%d, want %d/%d/%d",
				id, v.Parent, v.Left, v.Right, w.parent, w.left, w.right)
		}
	}
}

func TestQuickTBFS(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := int(nRaw%300) + 1
		s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true})
		type res struct {
			id ncc.ID
			tr Tree
		}
		ch := make(chan res, n)
		trace, err := s.Run(func(nd *ncc.Node) {
			_, _, tree := BuildAll(nd)
			ch <- res{nd.ID(), tree}
		})
		if err != nil {
			return false
		}
		close(ch)
		views := make(map[ncc.ID]Tree, n)
		for r := range ch {
			views[r.id] = r.tr
		}
		for i, id := range trace.IDs {
			if views[id].Pos != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPathRounds(t *testing.T) {
	s := ncc.New(ncc.Config{N: 50, Seed: 2, Strict: true})
	trace, err := s.Run(func(nd *ncc.Node) {
		p := BuildPath(nd)
		if nd.InitialSucc() == ncc.None && !p.IsTail() {
			panic("tail misdetected")
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if trace.Metrics.Rounds != 1 {
		t.Fatalf("BuildPath rounds = %d, want 1", trace.Metrics.Rounds)
	}
}

func TestLevelsAreDoublingLinks(t *testing.T) {
	n := 37
	s := ncc.New(ncc.Config{N: n, Seed: 3, Strict: true})
	type res struct {
		id ncc.ID
		lv Levels
	}
	ch := make(chan res, n)
	trace, err := s.Run(func(nd *ncc.Node) {
		p := BuildPath(nd)
		lv := BuildLevels(nd, p)
		ch <- res{nd.ID(), lv}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	close(ch)
	pos := make(map[ncc.ID]int, n)
	for i, id := range trace.IDs {
		pos[id] = i
	}
	for r := range ch {
		p := pos[r.id]
		for j := 0; j <= r.lv.Top(); j++ {
			d := 1 << j
			wantPred, wantSucc := ncc.None, ncc.None
			if p-d >= 0 {
				wantPred = trace.IDs[p-d]
			}
			if p+d < n {
				wantSucc = trace.IDs[p+d]
			}
			if r.lv.Pred[j] != wantPred || r.lv.Succ[j] != wantSucc {
				t.Fatalf("node %d (pos %d) level %d: links %d/%d, want %d/%d",
					r.id, p, j, r.lv.Pred[j], r.lv.Succ[j], wantPred, wantSucc)
			}
		}
	}
}

func TestWarmupTreeProperties(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 17, 33, 100} {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n) + 11, Strict: true})
		type res struct {
			id ncc.ID
			wt WarmTree
		}
		ch := make(chan res, n)
		trace, err := s.Run(func(nd *ncc.Node) {
			p := BuildPath(nd)
			wt := BuildWarmupTree(nd, p)
			ch <- res{nd.ID(), wt}
		})
		if err != nil {
			t.Fatalf("n=%d: run: %v", n, err)
		}
		close(ch)
		views := make(map[ncc.ID]WarmTree, n)
		for r := range ch {
			views[r.id] = r.wt
		}
		K := ncc.CeilLog2(n)
		roots := 0
		for id, v := range views {
			if v.IsRoot {
				roots++
				if id != trace.IDs[0] {
					t.Fatalf("n=%d: warm root %d is not the head %d", n, id, trace.IDs[0])
				}
			} else if v.Parent == ncc.None {
				t.Fatalf("n=%d: node %d unplaced", n, id)
			}
			if v.Depth > K+1 {
				t.Fatalf("n=%d: node %d depth %d > %d", n, id, v.Depth, K+1)
			}
			if v.Left != ncc.None {
				if views[v.Left].Parent != id {
					t.Fatalf("n=%d: left child %d of %d does not point back", n, v.Left, id)
				}
			}
			if v.Right != ncc.None {
				if views[v.Right].Parent != id {
					t.Fatalf("n=%d: right child %d of %d does not point back", n, v.Right, id)
				}
			}
		}
		if roots != 1 {
			t.Fatalf("n=%d: %d roots", n, roots)
		}
		// Spanning: walk from the root.
		seen := map[ncc.ID]bool{}
		stack := []ncc.ID{trace.IDs[0]}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] {
				t.Fatalf("n=%d: cycle at %d", n, id)
			}
			seen[id] = true
			v := views[id]
			if v.Left != ncc.None {
				stack = append(stack, v.Left)
			}
			if v.Right != ncc.None {
				stack = append(stack, v.Right)
			}
		}
		if len(seen) != n {
			t.Fatalf("n=%d: warm tree spans %d of %d nodes", n, len(seen), n)
		}
	}
}

func TestSyncAtIsBarrier(t *testing.T) {
	s := ncc.New(ncc.Config{N: 4, Seed: 17, Strict: true})
	_, err := s.Run(func(nd *ncc.Node) {
		// Desynchronize wildly, then re-align.
		for i := 0; i < int(nd.ID()%7); i++ {
			nd.NextRound()
		}
		SyncAt(nd, 10)
		if nd.Round() != 10 {
			panic("SyncAt did not land on the target round")
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestAnnotateLeftSizes(t *testing.T) {
	// LeftSize must equal the node's inorder position minus its subtree's
	// interval start — verified indirectly: pos = lo + leftSize means for
	// the root leftSize == pos.
	n := 100
	s := ncc.New(ncc.Config{N: n, Seed: 91, Strict: true})
	type res struct {
		id ncc.ID
		tr Tree
	}
	ch := make(chan res, n)
	trace, err := s.Run(func(nd *ncc.Node) {
		_, _, tree := BuildAll(nd)
		ch <- res{nd.ID(), tree}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	close(ch)
	views := map[ncc.ID]Tree{}
	for r := range ch {
		views[r.id] = r.tr
	}
	var sizeOf func(id ncc.ID) int
	sizeOf = func(id ncc.ID) int {
		if id == ncc.None {
			return 0
		}
		v := views[id]
		return 1 + sizeOf(v.Left) + sizeOf(v.Right)
	}
	for id, v := range views {
		if got := sizeOf(id); got != v.Size {
			t.Fatalf("node %d: size %d, recomputed %d", id, v.Size, got)
		}
		if got := sizeOf(v.Left); got != v.LeftSize {
			t.Fatalf("node %d: leftSize %d, recomputed %d", id, v.LeftSize, got)
		}
	}
	_ = trace
}

func TestBuildPathHeadAndTail(t *testing.T) {
	s := ncc.New(ncc.Config{N: 5, Seed: 93, Strict: true})
	tr, err := s.Run(func(nd *ncc.Node) {
		p := BuildPath(nd)
		if p.IsHead() {
			nd.SetOutput("head", 1)
		}
		if p.IsTail() {
			nd.SetOutput("tail", 1)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, ok := tr.Output(tr.IDs[0], "head"); !ok {
		t.Fatal("head not detected")
	}
	if _, ok := tr.Output(tr.IDs[4], "tail"); !ok {
		t.Fatal("tail not detected")
	}
	for i := 1; i < 4; i++ {
		if _, ok := tr.Output(tr.IDs[i], "head"); ok {
			t.Fatalf("interior node %d claims head", i)
		}
	}
}
