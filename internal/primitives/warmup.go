package primitives

import "graphrealize/internal/ncc"

// WarmTree is a node's view of the warm-up balanced binary tree of §3.1.1
// (Figure 1). Unlike TBFS it is not a search tree: it is built by the simple
// odd/even recursive decomposition.
type WarmTree struct {
	IsRoot      bool
	Parent      ncc.ID
	Left, Right ncc.ID
	Depth       int // iteration at which the node was placed
}

// BuildWarmupTree builds the warm-up balanced binary tree over an undirected
// path: in every iteration, the leftmost node r of each live path takes its
// immediate neighbor a as left child and a's other neighbor b as right
// child, removes itself, and the remaining path splits into the odd- and
// even-position paths headed by a and b. Paths halve each iteration, so
// ⌈log₂ n⌉+1 iterations suffice.
//
// Rounds: exactly 3·(⌈log₂ n⌉ + 1) from the caller's current round (three
// lockstep rounds per iteration: link exchange, claims, link update).
func BuildWarmupTree(nd *ncc.Node, p Path) WarmTree {
	t := WarmTree{Parent: ncc.None, Left: ncc.None, Right: ncc.None}
	t.IsRoot = p.IsHead()
	pred, succ := p.Pred, p.Succ
	placed := false
	iters := ncc.CeilLog2(nd.N()) + 1
	for it := 0; it < iters; it++ {
		// Round 1: exchange grand links within the current path.
		if !placed {
			if succ != ncc.None && pred != ncc.None {
				nd.Send(succ, ncc.Message{Kind: kWGrandPred}.WithIDs(pred))
				nd.Send(pred, ncc.Message{Kind: kWGrandSucc}.WithIDs(succ))
			}
		}
		gpred, gsucc := ncc.None, ncc.None
		for _, m := range nd.NextRound() {
			switch m.Kind {
			case kWGrandPred:
				gpred = m.IDs[0]
			case kWGrandSucc:
				gsucc = m.IDs[0]
			}
		}
		// Round 2: leftmost nodes claim their children and leave the path.
		if !placed && pred == ncc.None {
			t.Depth = it
			placed = true
			if succ != ncc.None {
				nd.Send(succ, ncc.Message{Kind: kWClaim, A: 0})
				t.Left = succ
			}
			if gsucc != ncc.None {
				nd.Send(gsucc, ncc.Message{Kind: kWClaim, A: 1})
				t.Right = gsucc
			}
			pred, succ = ncc.None, ncc.None
		}
		claims := nd.NextRound()
		// Round 3: apply claims and switch to the odd/even sub-path links.
		if !placed {
			newPred, newSucc := gpred, gsucc
			for _, m := range claims {
				if m.Kind == kWClaim {
					t.Parent = m.Src
					newPred = ncc.None // the claimant was our (grand-)predecessor
				}
			}
			pred, succ = newPred, newSucc
		}
		nd.NextRound()
	}
	return t
}
