package primitives

import (
	"reflect"
	"testing"

	"graphrealize/internal/ncc"
)

// step_test.go checks the resumable-step compilation of this package's
// protocols in isolation: the Step forms, driven by the zero-goroutine flat
// scheduler, must produce byte-identical traces (same outputs, same message
// and round counts — outbox determinism) to the blocking forms under the
// goroutine barrier driver.

// treeOutputs records the per-node view of a BuildAll run as trace outputs so
// traces are comparable across drivers.
func treeOutputs(nd *ncc.Node, p Path, tree Tree) {
	nd.SetOutput("pred", int64(p.Pred))
	nd.SetOutput("succ", int64(p.Succ))
	nd.SetOutput("parent", int64(tree.Parent))
	nd.SetOutput("depth", int64(tree.Depth))
	nd.SetOutput("pos", int64(tree.Pos))
	nd.SetOutput("size", int64(tree.Size))
}

func TestBuildAllStepMatchesBlocking(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33} {
		seed := int64(n)*17 + 1
		sb := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true})
		base, err := sb.Run(func(nd *ncc.Node) {
			p, _, tree := BuildAll(nd)
			treeOutputs(nd, p, tree)
		})
		if err != nil {
			t.Fatalf("n=%d blocking: %v", n, err)
		}
		sf := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Sched: ncc.SchedFlat})
		flat, err := sf.RunProgram(func(nd *ncc.Node) ncc.Op {
			return BuildAllStep(nd, func(p Path, _ Levels, tree Tree) ncc.Op {
				treeOutputs(nd, p, tree)
				return ncc.Done()
			})
		})
		if err != nil {
			t.Fatalf("n=%d flat: %v", n, err)
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("n=%d: flat step trace differs from blocking barrier trace", n)
		}
	}
}

// TestSyncAtStepSingleNodeSemantics: SyncAtStep must resume its continuation
// exactly at the requested round, even for a single node with no mail.
func TestSyncAtStepSingleNodeSemantics(t *testing.T) {
	s := ncc.New(ncc.Config{N: 1, Seed: 9, Strict: true, Sched: ncc.SchedFlat})
	_, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return SyncAtStep(nd, 6, func(msgs []ncc.Message) ncc.Op {
			if nd.Round() != 6 {
				t.Errorf("resumed at round %d, want 6", nd.Round())
			}
			if len(msgs) != 0 {
				t.Errorf("resumed with %d messages, want 0", len(msgs))
			}
			return ncc.Done()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
