// Package primitives implements the structural primitives of §3.1 of
// "Distributed Graph Realizations": converting the directed knowledge path
// Gk into an undirected path, building the level structure L (distance-
// doubling links), the controlled BFS that turns L into a balanced binary
// search tree TBFS (Theorem 1, Figure 2), inorder annotation that gives every
// node its position in the path (Corollary 2), and the warm-up balanced
// binary tree of Figure 1.
//
// Every primitive is written in lockstep style: it consumes a number of
// rounds that is a deterministic function of n (via SyncAt barriers), so
// primitives compose sequentially without extra coordination, and round
// metrics are reproducible.
package primitives

import (
	"fmt"

	"graphrealize/internal/ncc"
)

// Message kinds used by this package (0x10–0x2F block; see DESIGN.md).
const (
	kHello uint8 = 0x10 + iota
	kGrandPred
	kGrandSucc
	kInvite
	kAccept
	kSize
	kInterval
	kWGrandPred
	kWGrandSucc
	kWClaim
)

// Path holds a node's undirected path links. Pred/Succ are None at the ends.
type Path struct {
	Pred, Succ ncc.ID
}

// IsHead reports whether the node is the first node of the path.
func (p Path) IsHead() bool { return p.Pred == ncc.None }

// IsTail reports whether the node is the last node of the path.
func (p Path) IsTail() bool { return p.Succ == ncc.None }

// BuildPath converts the directed initial knowledge path Gk into an
// undirected ordered path in one round (§3.1): every node introduces itself
// to its successor, so each node learns its predecessor.
//
// Rounds: exactly 1.
func BuildPath(nd *ncc.Node) Path {
	succ := nd.InitialSucc()
	if succ != ncc.None {
		nd.Send(succ, ncc.Message{Kind: kHello})
	}
	p := Path{Pred: ncc.None, Succ: succ}
	for _, m := range nd.NextRound() {
		if m.Kind == kHello {
			p.Pred = m.Src
		}
	}
	return p
}

// Levels is the structure L of §3.1.1: Pred[r]/Succ[r] are the node's
// neighbors at distance 2^r in the underlying path (None where absent),
// for r = 0..⌈log₂ n⌉. Level-r links are exactly the paths of level L_r:
// each level splits its parent path into the odd- and even-position paths.
type Levels struct {
	Pred, Succ []ncc.ID
}

// Top returns the highest level index, ⌈log₂ n⌉.
func (l Levels) Top() int { return len(l.Pred) - 1 }

// BuildLevels constructs the structure L above an arbitrary undirected path
// (usually the converted Gk, but any path with valid Pred/Succ links works,
// which the sorting layer exploits on sub-paths). At each level every node
// introduces its level-r predecessor to its level-r successor and vice
// versa; the receivers adopt them as level-(r+1) links.
//
// Rounds: exactly ⌈log₂ n⌉ (one per level). Each node sends ≤ 2 messages
// per round.
func BuildLevels(nd *ncc.Node, p Path) Levels {
	K := ncc.CeilLog2(nd.N())
	l := Levels{Pred: make([]ncc.ID, K+1), Succ: make([]ncc.ID, K+1)}
	l.Pred[0], l.Succ[0] = p.Pred, p.Succ
	for r := 0; r < K; r++ {
		if l.Succ[r] != ncc.None && l.Pred[r] != ncc.None {
			// Teach my successor its grand-predecessor (= my predecessor).
			nd.Send(l.Succ[r], ncc.Message{Kind: kGrandPred}.WithIDs(l.Pred[r]))
			// Teach my predecessor its grand-successor (= my successor).
			nd.Send(l.Pred[r], ncc.Message{Kind: kGrandSucc}.WithIDs(l.Succ[r]))
		}
		for _, m := range nd.NextRound() {
			switch m.Kind {
			case kGrandPred:
				l.Pred[r+1] = m.IDs[0]
			case kGrandSucc:
				l.Succ[r+1] = m.IDs[0]
			}
		}
	}
	return l
}

// Tree is a node's view of the balanced binary search tree TBFS produced by
// the controlled BFS of Algorithm 1, later annotated with subtree sizes and
// inorder positions.
type Tree struct {
	IsRoot      bool
	Parent      ncc.ID // None for the root
	Left, Right ncc.ID // child IDs, None where absent
	Depth       int    // root has depth 0

	// Filled by AnnotateTree:
	Size     int // size of this node's subtree
	LeftSize int // size of the left subtree
	Pos      int // inorder position, equal to the node's path position
}

// BuildTBFS runs the controlled BFS of Algorithm 1 over the structure L.
// The path head (the unique node with no predecessor) is the root. For
// levels i = top−1 down to 0, members of Sp invite their level-i predecessor
// as left child and members of Ss invite their level-i successor as right
// child; an invited node outside the tree accepts one invitation, ACKs, and
// joins Sp and Ss. The resulting tree has height ≤ ⌈log₂ n⌉ + 1 and its
// inorder traversal is the underlying path order (Theorem 1).
//
// Rounds: exactly 2·⌈log₂ n⌉ (an invite round and an accept round per level).
func BuildTBFS(nd *ncc.Node, l Levels) Tree {
	t := Tree{Parent: ncc.None, Left: ncc.None, Right: ncc.None}
	isRoot := l.Pred[0] == ncc.None
	t.IsRoot = isRoot
	inTree := isRoot
	inSp, inSs := isRoot, isRoot
	for i := l.Top() - 1; i >= 0; i-- {
		// Invite round.
		if inSp && l.Pred[i] != ncc.None {
			nd.Send(l.Pred[i], ncc.Message{Kind: kInvite, A: 0, B: int64(t.Depth)})
			inSp = false
		}
		if inSs && l.Succ[i] != ncc.None {
			nd.Send(l.Succ[i], ncc.Message{Kind: kInvite, A: 1, B: int64(t.Depth)})
			inSs = false
		}
		in := nd.NextRound()
		// Accept round: join under the first inviter (the uniqueness argument
		// of Theorem 1 shows competing invitations cannot occur).
		if !inTree {
			for _, m := range in {
				if m.Kind != kInvite {
					continue
				}
				inTree = true
				t.Parent = m.Src
				t.Depth = int(m.B) + 1
				nd.Send(m.Src, ncc.Message{Kind: kAccept, A: m.A})
				inSp, inSs = true, true
				break
			}
		}
		for _, m := range nd.NextRound() {
			if m.Kind == kAccept {
				if m.A == 0 {
					t.Left = m.Src
				} else {
					t.Right = m.Src
				}
			}
		}
	}
	if !inTree {
		// Theorem 1 guarantees spanning; reaching here means the level
		// structure was corrupted by the caller.
		panic(fmt.Sprintf("primitives: node %d not spanned by TBFS", nd.ID()))
	}
	return t
}

// AnnotateTree computes subtree sizes (convergecast) and inorder positions
// (top-down) on a TBFS, giving every node its position in the underlying
// path — Corollary 2. The root's inorder interval starts at 0, so Pos is
// 0-based.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 3) from the caller's current round.
func AnnotateTree(nd *ncc.Node, t *Tree) {
	K := ncc.CeilLog2(nd.N())
	// Phase A: subtree sizes, leaves upward. A node at height h sends in
	// round startA+h, so everything completes within K+2 rounds.
	startA := nd.Round()
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	t.Size = 1
	t.LeftSize = 0
	for got := 0; got < children; {
		for _, m := range nd.AwaitMessage() {
			if m.Kind != kSize {
				continue
			}
			t.Size += int(m.A)
			if m.Src == t.Left {
				t.LeftSize = int(m.A)
			}
			got++
		}
	}
	if !t.IsRoot {
		nd.Send(t.Parent, ncc.Message{Kind: kSize, A: int64(t.Size)})
	}
	SyncAt(nd, startA+K+3)

	// Phase B: inorder intervals, root downward.
	startB := nd.Round()
	lo := 0
	if !t.IsRoot {
		waiting := true
		for waiting {
			for _, m := range nd.AwaitMessage() {
				if m.Kind == kInterval {
					lo = int(m.A)
					waiting = false
				}
			}
		}
	}
	t.Pos = lo + t.LeftSize
	if t.Left != ncc.None {
		nd.Send(t.Left, ncc.Message{Kind: kInterval, A: int64(lo)})
	}
	if t.Right != ncc.None {
		nd.Send(t.Right, ncc.Message{Kind: kInterval, A: int64(t.Pos + 1)})
	}
	SyncAt(nd, startB+K+3)
}

// BuildAll runs the full §3.1 pipeline — path conversion, structure L,
// controlled BFS, and annotation — returning the node's complete structural
// state. Rounds: O(log n), deterministic in n.
func BuildAll(nd *ncc.Node) (Path, Levels, Tree) {
	p := BuildPath(nd)
	l := BuildLevels(nd, p)
	t := BuildTBFS(nd, l)
	AnnotateTree(nd, &t)
	return p, l, t
}

// SyncAt advances the node to the given round (no-op if already past it).
// It returns any messages that were delivered while waiting; lockstep
// protocols use it as a barrier between phases.
func SyncAt(nd *ncc.Node, round int) []ncc.Message {
	if nd.Round() >= round {
		return nil
	}
	return nd.SkipRounds(round - nd.Round())
}
