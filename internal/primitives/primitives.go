// Package primitives implements the structural primitives of §3.1 of
// "Distributed Graph Realizations": converting the directed knowledge path
// Gk into an undirected path, building the level structure L (distance-
// doubling links), the controlled BFS that turns L into a balanced binary
// search tree TBFS (Theorem 1, Figure 2), inorder annotation that gives every
// node its position in the path (Corollary 2), and the warm-up balanced
// binary tree of Figure 1.
//
// Every primitive is written in lockstep style: it consumes a number of
// rounds that is a deterministic function of n (via SyncAt barriers), so
// primitives compose sequentially without extra coordination, and round
// metrics are reproducible.
//
// Each primitive exists in two forms. The resumable step form (XxxStep) is
// the implementation: it performs the current round's compute slice and
// returns an ncc.Op whose continuation eventually invokes k with the result,
// so the zero-goroutine flat driver can run it without a goroutine stack. The
// blocking form is a thin adapter that drives the step form through
// ncc.RunOps for callers on the goroutine drivers; both forms are therefore
// observably identical by construction.
package primitives

import (
	"fmt"

	"graphrealize/internal/ncc"
)

// Message kinds used by this package (0x10–0x2F block; see DESIGN.md).
const (
	kHello uint8 = 0x10 + iota
	kGrandPred
	kGrandSucc
	kInvite
	kAccept
	kSize
	kInterval
	kWGrandPred
	kWGrandSucc
	kWClaim
)

// Path holds a node's undirected path links. Pred/Succ are None at the ends.
type Path struct {
	Pred, Succ ncc.ID
}

// IsHead reports whether the node is the first node of the path.
func (p Path) IsHead() bool { return p.Pred == ncc.None }

// IsTail reports whether the node is the last node of the path.
func (p Path) IsTail() bool { return p.Succ == ncc.None }

// BuildPathStep converts the directed initial knowledge path Gk into an
// undirected ordered path in one round (§3.1): every node introduces itself
// to its successor, so each node learns its predecessor.
//
// Rounds: exactly 1.
func BuildPathStep(nd *ncc.Node, k func(Path) ncc.Op) ncc.Op {
	succ := nd.InitialSucc()
	if succ != ncc.None {
		nd.Send(succ, ncc.Message{Kind: kHello})
	}
	p := Path{Pred: ncc.None, Succ: succ}
	return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
		for _, m := range w.Msgs {
			if m.Kind == kHello {
				p.Pred = m.Src
			}
		}
		return k(p)
	})
}

// BuildPath is the blocking form of BuildPathStep.
func BuildPath(nd *ncc.Node) Path {
	var out Path
	ncc.RunOps(nd, BuildPathStep(nd, func(p Path) ncc.Op { out = p; return ncc.Done() }))
	return out
}

// Levels is the structure L of §3.1.1: Pred[r]/Succ[r] are the node's
// neighbors at distance 2^r in the underlying path (None where absent),
// for r = 0..⌈log₂ n⌉. Level-r links are exactly the paths of level L_r:
// each level splits its parent path into the odd- and even-position paths.
type Levels struct {
	Pred, Succ []ncc.ID
}

// Top returns the highest level index, ⌈log₂ n⌉.
func (l Levels) Top() int { return len(l.Pred) - 1 }

// BuildLevelsStep constructs the structure L above an arbitrary undirected
// path (usually the converted Gk, but any path with valid Pred/Succ links
// works, which the sorting layer exploits on sub-paths). At each level every
// node introduces its level-r predecessor to its level-r successor and vice
// versa; the receivers adopt them as level-(r+1) links.
//
// Rounds: exactly ⌈log₂ n⌉ (one per level). Each node sends ≤ 2 messages
// per round.
func BuildLevelsStep(nd *ncc.Node, p Path, k func(Levels) ncc.Op) ncc.Op {
	K := ncc.CeilLog2(nd.N())
	l := Levels{Pred: make([]ncc.ID, K+1), Succ: make([]ncc.ID, K+1)}
	l.Pred[0], l.Succ[0] = p.Pred, p.Succ
	var level func(r int) ncc.Op
	level = func(r int) ncc.Op {
		if r >= K {
			return k(l)
		}
		if l.Succ[r] != ncc.None && l.Pred[r] != ncc.None {
			// Teach my successor its grand-predecessor (= my predecessor).
			nd.Send(l.Succ[r], ncc.Message{Kind: kGrandPred}.WithIDs(l.Pred[r]))
			// Teach my predecessor its grand-successor (= my successor).
			nd.Send(l.Pred[r], ncc.Message{Kind: kGrandSucc}.WithIDs(l.Succ[r]))
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				switch m.Kind {
				case kGrandPred:
					l.Pred[r+1] = m.IDs[0]
				case kGrandSucc:
					l.Succ[r+1] = m.IDs[0]
				}
			}
			return level(r + 1)
		})
	}
	return level(0)
}

// BuildLevels is the blocking form of BuildLevelsStep.
func BuildLevels(nd *ncc.Node, p Path) Levels {
	var out Levels
	ncc.RunOps(nd, BuildLevelsStep(nd, p, func(l Levels) ncc.Op { out = l; return ncc.Done() }))
	return out
}

// Tree is a node's view of the balanced binary search tree TBFS produced by
// the controlled BFS of Algorithm 1, later annotated with subtree sizes and
// inorder positions.
type Tree struct {
	IsRoot      bool
	Parent      ncc.ID // None for the root
	Left, Right ncc.ID // child IDs, None where absent
	Depth       int    // root has depth 0

	// Filled by AnnotateTree:
	Size     int // size of this node's subtree
	LeftSize int // size of the left subtree
	Pos      int // inorder position, equal to the node's path position
}

// BuildTBFSStep runs the controlled BFS of Algorithm 1 over the structure L.
// The path head (the unique node with no predecessor) is the root. For
// levels i = top−1 down to 0, members of Sp invite their level-i predecessor
// as left child and members of Ss invite their level-i successor as right
// child; an invited node outside the tree accepts one invitation, ACKs, and
// joins Sp and Ss. The resulting tree has height ≤ ⌈log₂ n⌉ + 1 and its
// inorder traversal is the underlying path order (Theorem 1).
//
// Rounds: exactly 2·⌈log₂ n⌉ (an invite round and an accept round per level).
func BuildTBFSStep(nd *ncc.Node, l Levels, k func(Tree) ncc.Op) ncc.Op {
	t := Tree{Parent: ncc.None, Left: ncc.None, Right: ncc.None}
	isRoot := l.Pred[0] == ncc.None
	t.IsRoot = isRoot
	inTree := isRoot
	inSp, inSs := isRoot, isRoot
	var level func(i int) ncc.Op
	level = func(i int) ncc.Op {
		if i < 0 {
			if !inTree {
				// Theorem 1 guarantees spanning; reaching here means the level
				// structure was corrupted by the caller.
				panic(fmt.Sprintf("primitives: node %d not spanned by TBFS", nd.ID()))
			}
			return k(t)
		}
		// Invite round.
		if inSp && l.Pred[i] != ncc.None {
			nd.Send(l.Pred[i], ncc.Message{Kind: kInvite, A: 0, B: int64(t.Depth)})
			inSp = false
		}
		if inSs && l.Succ[i] != ncc.None {
			nd.Send(l.Succ[i], ncc.Message{Kind: kInvite, A: 1, B: int64(t.Depth)})
			inSs = false
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			// Accept round: join under the first inviter (the uniqueness
			// argument of Theorem 1 shows competing invitations cannot occur).
			if !inTree {
				for _, m := range w.Msgs {
					if m.Kind != kInvite {
						continue
					}
					inTree = true
					t.Parent = m.Src
					t.Depth = int(m.B) + 1
					nd.Send(m.Src, ncc.Message{Kind: kAccept, A: m.A})
					inSp, inSs = true, true
					break
				}
			}
			return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
				for _, m := range w.Msgs {
					if m.Kind == kAccept {
						if m.A == 0 {
							t.Left = m.Src
						} else {
							t.Right = m.Src
						}
					}
				}
				return level(i - 1)
			})
		})
	}
	return level(l.Top() - 1)
}

// BuildTBFS is the blocking form of BuildTBFSStep.
func BuildTBFS(nd *ncc.Node, l Levels) Tree {
	var out Tree
	ncc.RunOps(nd, BuildTBFSStep(nd, l, func(t Tree) ncc.Op { out = t; return ncc.Done() }))
	return out
}

// AnnotateTreeStep computes subtree sizes (convergecast) and inorder
// positions (top-down) on a TBFS, giving every node its position in the
// underlying path — Corollary 2. The root's inorder interval starts at 0, so
// Pos is 0-based.
//
// Rounds: exactly 2·(⌈log₂ n⌉ + 3) from the caller's current round.
func AnnotateTreeStep(nd *ncc.Node, t *Tree, k func() ncc.Op) ncc.Op {
	K := ncc.CeilLog2(nd.N())
	// Phase A: subtree sizes, leaves upward. A node at height h sends in
	// round startA+h, so everything completes within K+2 rounds.
	startA := nd.Round()
	children := 0
	if t.Left != ncc.None {
		children++
	}
	if t.Right != ncc.None {
		children++
	}
	t.Size = 1
	t.LeftSize = 0
	got := 0

	phaseB := func() ncc.Op {
		startB := nd.Round()
		lo := 0
		assign := func() ncc.Op {
			t.Pos = lo + t.LeftSize
			if t.Left != ncc.None {
				nd.Send(t.Left, ncc.Message{Kind: kInterval, A: int64(lo)})
			}
			if t.Right != ncc.None {
				nd.Send(t.Right, ncc.Message{Kind: kInterval, A: int64(t.Pos + 1)})
			}
			return SyncAtStep(nd, startB+K+3, func([]ncc.Message) ncc.Op { return k() })
		}
		if t.IsRoot {
			return assign()
		}
		var wait ncc.Cont
		wait = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			waiting := true
			for _, m := range w.Msgs {
				if m.Kind == kInterval {
					lo = int(m.A)
					waiting = false
				}
			}
			if waiting {
				return ncc.Await(wait)
			}
			return assign()
		}
		return ncc.Await(wait)
	}

	afterSizes := func() ncc.Op {
		if !t.IsRoot {
			nd.Send(t.Parent, ncc.Message{Kind: kSize, A: int64(t.Size)})
		}
		return SyncAtStep(nd, startA+K+3, func([]ncc.Message) ncc.Op { return phaseB() })
	}
	if got >= children {
		return afterSizes()
	}
	var sizes ncc.Cont
	sizes = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
		for _, m := range w.Msgs {
			if m.Kind != kSize {
				continue
			}
			t.Size += int(m.A)
			if m.Src == t.Left {
				t.LeftSize = int(m.A)
			}
			got++
		}
		if got < children {
			return ncc.Await(sizes)
		}
		return afterSizes()
	}
	return ncc.Await(sizes)
}

// AnnotateTree is the blocking form of AnnotateTreeStep.
func AnnotateTree(nd *ncc.Node, t *Tree) {
	ncc.RunOps(nd, AnnotateTreeStep(nd, t, ncc.Done))
}

// BuildAllStep runs the full §3.1 pipeline — path conversion, structure L,
// controlled BFS, and annotation — delivering the node's complete structural
// state to k. Rounds: O(log n), deterministic in n.
func BuildAllStep(nd *ncc.Node, k func(Path, Levels, Tree) ncc.Op) ncc.Op {
	return BuildPathStep(nd, func(p Path) ncc.Op {
		return BuildLevelsStep(nd, p, func(l Levels) ncc.Op {
			return BuildTBFSStep(nd, l, func(t Tree) ncc.Op {
				return AnnotateTreeStep(nd, &t, func() ncc.Op {
					return k(p, l, t)
				})
			})
		})
	})
}

// BuildAll is the blocking form of BuildAllStep.
func BuildAll(nd *ncc.Node) (Path, Levels, Tree) {
	var (
		op Path
		ol Levels
		ot Tree
	)
	ncc.RunOps(nd, BuildAllStep(nd, func(p Path, l Levels, t Tree) ncc.Op {
		op, ol, ot = p, l, t
		return ncc.Done()
	}))
	return op, ol, ot
}

// SyncAtStep advances the node to the given round (no-op if already past it),
// delivering any messages that arrived while waiting to k; lockstep protocols
// use it as a barrier between phases.
func SyncAtStep(nd *ncc.Node, round int, k func([]ncc.Message) ncc.Op) ncc.Op {
	if nd.Round() >= round {
		return k(nil)
	}
	return ncc.Sleep(round-nd.Round(), func(nd *ncc.Node, w ncc.Wake) ncc.Op { return k(w.Msgs) })
}

// SyncAt is the blocking form of SyncAtStep.
func SyncAt(nd *ncc.Node, round int) []ncc.Message {
	var out []ncc.Message
	ncc.RunOps(nd, SyncAtStep(nd, round, func(ms []ncc.Message) ncc.Op { out = ms; return ncc.Done() }))
	return out
}
