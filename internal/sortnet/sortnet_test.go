package sortnet

import (
	"sort"
	"testing"
	"testing/quick"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// runSort sorts random keys with the given method and checks the result
// against a centralized sort. Returns the trace for metric assertions.
func runSort(t *testing.T, n int, seed int64, method Method) *ncc.Trace {
	t.Helper()
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true})
	RegisterOracle(s)
	tr, err := s.Run(func(nd *ncc.Node) {
		p, _, tree := primitives.BuildAll(nd)
		srt := &Sorter{Method: method, Path: p, Pos: tree.Pos, Tree: &tree}
		key := nd.Rand().Int63n(50) // plenty of ties
		res := srt.Sort(nd, key)
		nd.SetOutput("key", key)
		nd.SetOutput("rank", int64(res.Rank))
		nd.SetOutput("pred", int64(res.Pred))
		nd.SetOutput("succ", int64(res.Succ))
	})
	if err != nil {
		t.Fatalf("n=%d method=%v: %v", n, method, err)
	}
	validateSorted(t, tr)
	return tr
}

// validateSorted recomputes the expected ranking centrally and compares.
func validateSorted(t *testing.T, tr *ncc.Trace) {
	t.Helper()
	type kv struct {
		key int64
		id  ncc.ID
	}
	pairs := make([]kv, 0, len(tr.IDs))
	for _, id := range tr.IDs {
		k, _ := tr.Output(id, "key")
		pairs = append(pairs, kv{k, id})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].key != pairs[b].key {
			return pairs[a].key > pairs[b].key
		}
		return pairs[a].id < pairs[b].id
	})
	for rank, p := range pairs {
		r, _ := tr.Output(p.id, "rank")
		if int(r) != rank {
			t.Fatalf("node %d: rank %d, want %d", p.id, r, rank)
		}
		wantPred, wantSucc := ncc.None, ncc.None
		if rank > 0 {
			wantPred = pairs[rank-1].id
		}
		if rank+1 < len(pairs) {
			wantSucc = pairs[rank+1].id
		}
		pred, _ := tr.Output(p.id, "pred")
		succ, _ := tr.Output(p.id, "succ")
		if ncc.ID(pred) != wantPred || ncc.ID(succ) != wantSucc {
			t.Fatalf("node %d: sorted links %d/%d, want %d/%d", p.id, pred, succ, wantPred, wantSucc)
		}
	}
}

func TestOracleSortSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 64, 111, 500} {
		runSort(t, n, int64(n)*13+1, Oracle)
	}
}

func TestOddEvenSortSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 33, 64, 101} {
		runSort(t, n, int64(n)*17+3, OddEven)
	}
}

func TestOracleChargesTheoremBound(t *testing.T) {
	n := 128
	K := ncc.CeilLog2(n)
	tr := runSort(t, n, 7, Oracle)
	if tr.Metrics.CollectiveRounds != K*K*K {
		t.Fatalf("oracle charged %d rounds, want %d", tr.Metrics.CollectiveRounds, K*K*K)
	}
	if tr.Metrics.CollectiveCalls[CollectiveOracleSort] != 1 {
		t.Fatalf("collective calls: %v", tr.Metrics.CollectiveCalls)
	}
}

func TestOddEvenIsRealProtocol(t *testing.T) {
	tr := runSort(t, 64, 9, OddEven)
	if tr.Metrics.CollectiveRounds != 0 {
		t.Fatal("odd-even sort must not charge collective rounds")
	}
	if tr.Metrics.Messages == 0 {
		t.Fatal("odd-even sort sent no messages")
	}
}

func TestMethodsAgree(t *testing.T) {
	// Identical seeds produce identical keys, so both methods must produce
	// identical rank assignments.
	for _, n := range []int{17, 50} {
		a := runSort(t, n, 1234, Oracle)
		b := runSort(t, n, 1234, OddEven)
		for _, id := range a.IDs {
			ra, _ := a.Output(id, "rank")
			rb, _ := b.Output(id, "rank")
			if ra != rb {
				t.Fatalf("n=%d node %d: oracle rank %d, odd-even rank %d", n, id, ra, rb)
			}
		}
	}
}

func TestQuickSortersAgree(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%40) + 1
		a := runSort(t, n, seed, Oracle)
		b := runSort(t, n, seed, OddEven)
		for _, id := range a.IDs {
			ra, _ := a.Output(id, "rank")
			rb, _ := b.Output(id, "rank")
			if ra != rb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestChargedRounds(t *testing.T) {
	if ChargedRounds(1) != 1 {
		t.Fatal("n=1 charge")
	}
	if ChargedRounds(1024) != 1000 {
		t.Fatalf("n=1024 charge = %d, want 1000", ChargedRounds(1024))
	}
}

func TestMergeSortSmallSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		runSort(t, n, int64(n)*31+5, Merge)
	}
}

func TestMergeSortMediumSizes(t *testing.T) {
	for _, n := range []int{6, 7, 8, 11, 16, 23, 32, 50, 64, 100, 128} {
		runSort(t, n, int64(n)*37+11, Merge)
	}
}

func TestMergeSortIsRealAndPolylog(t *testing.T) {
	for _, n := range []int{64, 256} {
		tr := runSort(t, n, int64(n), Merge)
		if tr.Metrics.CollectiveRounds != 0 {
			t.Fatal("merge sort must not charge collective rounds")
		}
		K := ncc.CeilLog2(n)
		// Generous constant: levels × recursion depth × per-step budget.
		budget := (K + 2) * ((5*K/2 + 4) * (5*K + 40 + 6)) * 2
		if tr.Metrics.Rounds > budget {
			t.Fatalf("n=%d: %d rounds exceeds O(log³ n) budget %d", n, tr.Metrics.Rounds, budget)
		}
	}
}

func TestQuickMergeAgreesWithOracle(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%60) + 1
		a := runSort(t, n, seed, Oracle)
		b := runSort(t, n, seed, Merge)
		for _, id := range a.IDs {
			ra, _ := a.Output(id, "rank")
			rb, _ := b.Output(id, "rank")
			if ra != rb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
