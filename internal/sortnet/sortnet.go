// Package sortnet provides the sorting primitive of §3.1.2: arranging the n
// nodes into a path sorted by a locally known key (non-increasing), after
// which every node knows its rank and its sorted-order neighbors.
//
// Three interchangeable implementations exist:
//
//   - Oracle: a collective operation executed centrally by the simulator and
//     charged ⌈log₂ n⌉³ rounds, the exact bound of Theorem 3. This is the
//     default used by the realization algorithms; the charge keeps round
//     accounting faithful while making large benchmarks cheap.
//   - OddEven: a real message-level odd-even transposition sort, O(n)
//     rounds. It is the naive baseline the paper's polylogarithmic sort is
//     measured against (ablation A1 in DESIGN.md).
//   - Merge: the paper's real algorithm — bottom-up merging over the TBFS
//     with recursive median splitting (Algorithm 2), O(log³ n) rounds. See
//     protocol.go.
//
// Rank order is by key descending, ties broken by node ID ascending, so the
// result is unique and deterministic. Tests cross-check that all methods
// produce identical ranks.
package sortnet

import (
	"fmt"
	"sort"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Message kinds used by this package (0x90–0x9F block).
const (
	kExchange uint8 = 0x90 + iota
	kNeighbor
	kAssign
)

// CollectiveOracleSort is the collective tag for the oracle implementation.
const CollectiveOracleSort = "oracle-sort"

// Result is a node's view of the sorted path: its rank (0 = largest key)
// and its neighbors in sorted order (None at the ends).
type Result struct {
	Rank       int
	Pred, Succ ncc.ID
}

// Method selects a sorting implementation.
type Method int

const (
	// Oracle uses the charged collective described in the package comment.
	Oracle Method = iota
	// OddEven runs a real odd-even transposition sort (O(n) rounds).
	OddEven
	// Merge runs the paper's real merge-sort protocol (O(log³ n) rounds);
	// it requires Sorter.Tree. See protocol.go.
	Merge
)

// String names the method for benchmark labels.
func (m Method) String() string {
	switch m {
	case Oracle:
		return "oracle"
	case OddEven:
		return "oddeven"
	case Merge:
		return "merge"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Sorter carries the per-node structural state sorting needs: the undirected
// Gk path and the node's Gk position (from the annotated TBFS).
type Sorter struct {
	Method Method
	Path   primitives.Path
	Pos    int              // Gk position of this node
	Tree   *primitives.Tree // annotated TBFS; required by the Merge method
}

// RegisterOracle installs the oracle-sort collective on a simulation. It
// must be called before Sim.Run for any protocol that may sort with the
// Oracle method.
func RegisterOracle(s *ncc.Sim) {
	s.RegisterCollective(CollectiveOracleSort, oracleHandler)
}

// oracleHandler sorts (key, id) pairs centrally and hands every node its
// rank and sorted neighbors, charging the Theorem 3 round bound.
func oracleHandler(s *ncc.Sim, ins []any) ([]any, int) {
	n := s.N()
	ids := s.IDs()
	type kv struct {
		key int64
		id  ncc.ID
		pos int
	}
	pairs := make([]kv, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv{key: ins[i].(int64), id: ids[i], pos: i}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].key != pairs[b].key {
			return pairs[a].key > pairs[b].key
		}
		return pairs[a].id < pairs[b].id
	})
	outs := make([]any, n)
	for rank, p := range pairs {
		r := Result{Rank: rank, Pred: ncc.None, Succ: ncc.None}
		var learn []ncc.ID
		if rank > 0 {
			r.Pred = pairs[rank-1].id
			learn = append(learn, r.Pred)
		}
		if rank+1 < n {
			r.Succ = pairs[rank+1].id
			learn = append(learn, r.Succ)
		}
		outs[p.pos] = ncc.CollectiveOut{Val: r, Learn: learn}
	}
	return outs, ChargedRounds(n)
}

// ChargedRounds is the round cost the oracle charges: ⌈log₂ n⌉³ (minimum 1),
// the Theorem 3 bound with constant 1.
func ChargedRounds(n int) int {
	k := ncc.CeilLog2(n)
	c := k * k * k
	if c < 1 {
		c = 1
	}
	return c
}

// SortStep arranges the nodes by non-increasing key using the Sorter's
// method and delivers this node's rank and sorted neighbors to k. All nodes
// must enter the sort at the same protocol point. This is the resumable form
// the flat driver runs; Sort is its blocking adapter.
func (s *Sorter) SortStep(nd *ncc.Node, key int64, k func(Result) ncc.Op) ncc.Op {
	switch s.Method {
	case OddEven:
		return s.oddEvenSortStep(nd, key, k)
	case Merge:
		return s.mergeSortStep(nd, key, k)
	default:
		return ncc.Collective(CollectiveOracleSort, key, func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			return k(w.Coll.(Result))
		})
	}
}

// Sort is the blocking form of SortStep.
func (s *Sorter) Sort(nd *ncc.Node, key int64) Result {
	var out Result
	ncc.RunOps(nd, s.SortStep(nd, key, func(r Result) ncc.Op { out = r; return ncc.Done() }))
	return out
}

// oddEvenSortStep is a real protocol: (key, id) pairs ripple along the Gk
// path via n rounds of alternating compare-exchanges; afterwards the holder
// of path position p owns the rank-p pair, learns its neighbors' pairs, and
// notifies the pair's owner of its rank and sorted neighbors.
//
// Rounds: exactly n + 3. Each node sends ≤ 2 messages per round.
func (s *Sorter) oddEvenSortStep(nd *ncc.Node, key int64, k func(Result) ncc.Op) ncc.Op {
	n := nd.N()
	curKey, curID := key, nd.ID()

	assign := func() ncc.Op {
		// Neighbor exchange: tell path neighbors which pair we hold.
		if s.Path.Pred != ncc.None {
			nd.Send(s.Path.Pred, ncc.Message{Kind: kNeighbor, A: 1}.WithIDs(curID))
		}
		if s.Path.Succ != ncc.None {
			nd.Send(s.Path.Succ, ncc.Message{Kind: kNeighbor, A: 0}.WithIDs(curID))
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			predPair, succPair := ncc.None, ncc.None
			for _, m := range w.Msgs {
				if m.Kind != kNeighbor {
					continue
				}
				if m.A == 0 { // sent towards successors: sender precedes us
					predPair = m.IDs[0]
				} else {
					succPair = m.IDs[0]
				}
			}
			// Assignment: the holder notifies the pair's owner of rank/links.
			msg := ncc.Message{Kind: kAssign, A: int64(s.Pos)}
			ids := make([]ncc.ID, 0, 2)
			ids = append(ids, predPair, succPair) // None encodes a path end
			msg.IDs = ids
			if curID == nd.ID() {
				// We hold our own pair; no message needed.
				return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
					return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
						return k(Result{Rank: s.Pos, Pred: predPair, Succ: succPair})
					})
				})
			}
			nd.Send(curID, msg)
			res := Result{Rank: -1, Pred: ncc.None, Succ: ncc.None}
			return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
				for _, m := range w.Msgs {
					if m.Kind == kAssign {
						res = Result{Rank: int(m.A), Pred: m.IDs[0], Succ: m.IDs[1]}
					}
				}
				return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
					if res.Rank == -1 {
						// Our assignment arrives exactly one round after the
						// holders send; a second round is allowed for skew,
						// after which silence is a bug.
						panic(fmt.Sprintf("sortnet: node %d received no rank assignment", nd.ID()))
					}
					return k(res)
				})
			})
		})
	}

	// Compare-exchange phase. In even rounds positions (0,1),(2,3),…
	// exchange; in odd rounds (1,2),(3,4),…. The left partner keeps the
	// larger pair (descending order).
	var round func(r int) ncc.Op
	round = func(r int) ncc.Op {
		if r >= n {
			return assign()
		}
		var partner ncc.ID
		left := false // we are the left end of our compare pair
		if s.Pos%2 == r%2 {
			partner, left = s.Path.Succ, true
		} else {
			partner = s.Path.Pred
		}
		if partner != ncc.None {
			nd.Send(partner, ncc.Message{Kind: kExchange, A: curKey}.WithIDs(curID))
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				if m.Kind != kExchange || m.Src != partner {
					continue
				}
				oKey, oID := m.A, m.IDs[0]
				oLarger := oKey > curKey || (oKey == curKey && oID < curID)
				if left == oLarger {
					// Left keeps the larger pair; right keeps the smaller.
					curKey, curID = oKey, oID
				}
			}
			return round(r + 1)
		})
	}
	return round(0)
}
