package sortnet

import (
	"fmt"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Step-scoped coordinator state (reset every recursion step).
type stepState struct {
	psize   [2]int
	ptail   [2]ncc.ID
	median  pair
	newHead [2]ncc.ID
	insDone bool
	insFlag int64
	insY    ncc.ID
	// side exchange of the relink sub-phase (-1 = not received)
	mySide, predSide, succSide int64
}

const (
	flagFront = 1 << iota
	flagEnd
)

// window advances to the deadline, dispatching non-splice messages to h,
// then continues with k. Resumable: each round is one suspension.
func (ms *mergeState) window(deadline int, h func(m ncc.Message), k func() ncc.Op) ncc.Op {
	var loop ncc.Cont
	loop = func(nd *ncc.Node, w ncc.Wake) ncc.Op {
		ms.apply(w.Msgs, h)
		if ms.nd.Round() < deadline {
			return ncc.Next(loop)
		}
		return k()
	}
	if ms.nd.Round() < deadline {
		return ncc.Next(loop)
	}
	return k()
}

// maxJump returns the largest level with a valid succ link, or -1.
func (ms *mergeState) maxJump(limit int) int {
	for j := len(ms.succAt) - 1; j >= 0; j-- {
		if ms.succAt[j].valid() && (limit < 0 || 1<<j <= limit) {
			return j
		}
	}
	return -1
}

// buildLinks refreshes the value-annotated doubling links along the node's
// current path, then continues with k. Rounds: exactly K+2 from base.
func (ms *mergeState) buildLinks(base int, k func() ncc.Op) ncc.Op {
	nd := ms.nd
	K := ms.K
	ms.predAt = make([]pair, K+1)
	ms.succAt = make([]pair, K+1)
	// Level 0: exchange own keys with path neighbors.
	if !ms.out {
		if ms.pred != ncc.None {
			nd.Send(ms.pred, ncc.Message{Kind: kMKeyS, A: ms.me.key, B: 0})
		}
		if ms.succ != ncc.None {
			nd.Send(ms.succ, ncc.Message{Kind: kMKeyP, A: ms.me.key, B: 0})
		}
	}
	var round func(r int) ncc.Op
	round = func(r int) ncc.Op {
		if r > K {
			return primitives.SyncAtStep(nd, base+K+2, func([]ncc.Message) ncc.Op { return k() })
		}
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			ms.apply(w.Msgs, func(m ncc.Message) {
				lvl := int(m.B)
				switch m.Kind {
				case kMKeyP:
					id := m.Src
					if len(m.IDs) > 0 {
						id = m.IDs[0]
					}
					ms.predAt[lvl] = pair{m.A, id}
				case kMKeyS:
					id := m.Src
					if len(m.IDs) > 0 {
						id = m.IDs[0]
					}
					ms.succAt[lvl] = pair{m.A, id}
				default:
					panic(fmt.Sprintf("sortnet: unexpected 0x%x in buildLinks", m.Kind))
				}
			})
			// Propagate level r to level r+1.
			if r < K && !ms.out && ms.predAt[r].valid() && ms.succAt[r].valid() {
				nd.Send(ms.succAt[r].id, ncc.Message{Kind: kMKeyP, A: ms.predAt[r].key, B: int64(r + 1)}.WithIDs(ms.predAt[r].id))
				nd.Send(ms.predAt[r].id, ncc.Message{Kind: kMKeyS, A: ms.succAt[r].key, B: int64(r + 1)}.WithIDs(ms.succAt[r].id))
			}
			return round(r + 1)
		})
	}
	return round(0)
}

// active reports whether this node currently coordinates an unfinished
// instance.
func (ms *mergeState) active() bool {
	return !ms.done && (ms.instA != ncc.None || ms.instB != ncc.None || ms.resH != ncc.None)
}

func (ms *mergeState) finish(h, t ncc.ID) {
	ms.done = true
	ms.resH, ms.resT = h, t
}

// stepHandler processes every participant-side message of a recursion step;
// st collects coordinator-side responses.
func (ms *mergeState) stepHandler(st *stepState) func(m ncc.Message) {
	nd := ms.nd
	return func(m ncc.Message) {
		switch m.Kind {
		case kMProbe:
			// We are a head: start the tail/size descent. pos accumulates.
			ms.forwardProbe(m.Src, int(m.B), 0)
		case kMTailHop:
			ms.forwardProbe(m.IDs[0], int(m.B), int(m.A))
		case kMTailR:
			st.psize[m.B] = int(m.A) + 1
			st.ptail[m.B] = m.IDs[0]
		case kMPosHop:
			ms.forwardPos(m.IDs[0], int(m.A))
		case kMPosR:
			st.median = pair{m.A, m.Src}
		case kMSplit:
			ms.handleSplit(m)
		case kMSide:
			if m.B == 0 {
				st.predSide = m.A
			} else {
				st.succSide = m.A
			}
		case kMNewHead:
			st.newHead[m.B] = m.Src
		case kMAppoint:
			idx := 0
			ms.instA, ms.instB = ncc.None, ncc.None
			if m.A&1 != 0 {
				ms.instA = m.IDs[idx]
				idx++
			}
			if m.A&2 != 0 {
				ms.instB = m.IDs[idx]
			}
			ms.done = false
			ms.resH, ms.resT = ncc.None, ncc.None
			ms.parentCoord = m.Src
			ms.myDepthSlot = int(m.B)
			if ms.instA == ncc.None && ms.instB == ncc.None {
				ms.finish(ncc.None, ncc.None)
			}
		case kMInsert:
			ms.startInsertion(m.Src, m.IDs[0])
		case kMInsHop:
			ms.forwardInsert(m)
		case kMInsR:
			ms.completeInsertion(m)
		case kMInsDone:
			st.insDone = true
			st.insFlag = m.B
			st.insY = m.Src
		case kMResult:
			panic("sortnet: kMResult outside ascent")
		default:
			panic(fmt.Sprintf("sortnet: node %d unexpected kind 0x%x in step", nd.ID(), m.Kind))
		}
	}
}

// forwardProbe advances a tail/size probe: pos is our position so far.
func (ms *mergeState) forwardProbe(coord ncc.ID, tag, pos int) {
	j := ms.maxJump(-1)
	if j < 0 {
		// We are the tail.
		ms.nd.Send(coord, ncc.Message{Kind: kMTailR, A: int64(pos), B: int64(tag)}.WithIDs(ms.nd.ID()))
		return
	}
	ms.nd.Send(ms.succAt[j].id, ncc.Message{Kind: kMTailHop, A: int64(pos + 1<<j), B: int64(tag)}.WithIDs(coord))
}

// forwardPos advances a find-by-position descent (k hops remaining).
func (ms *mergeState) forwardPos(coord ncc.ID, k int) {
	if k == 0 {
		ms.nd.Send(coord, ncc.Message{Kind: kMPosR, A: ms.me.key})
		return
	}
	j := ms.maxJump(k)
	if j < 0 {
		panic("sortnet: position descent ran off the path")
	}
	ms.nd.Send(ms.succAt[j].id, ncc.Message{Kind: kMPosHop, A: int64(k - 1<<j)}.WithIDs(coord))
}

// split bookkeeping (participant side).
type splitInfo struct {
	x     pair
	coord ncc.ID
	tag   int
}

// handleSplit stores split info and continues the recursive-halving
// broadcast along the path.
func (ms *mergeState) handleSplit(m ncc.Message) {
	ms.split = &splitInfo{x: pair{m.A, m.IDs[0]}, coord: m.IDs[1], tag: int(m.C)}
	rem := int(m.B)
	for rem > 0 {
		t := 0
		for 1<<(t+1) <= rem {
			t++
		}
		if !ms.succAt[t].valid() {
			panic("sortnet: split broadcast missing link")
		}
		ms.nd.Send(ms.succAt[t].id, ncc.Message{Kind: kMSplit, A: m.A, B: int64(rem - 1<<t), C: m.C}.WithIDs(m.IDs[0], m.IDs[1]))
		rem = 1<<t - 1
	}
}

// Insertion machinery: y inserts itself into the path headed by head.
func (ms *mergeState) startInsertion(coord, head ncc.ID) {
	ms.insCoord = coord
	if head == ncc.None {
		panic("sortnet: insert into empty path")
	}
	ms.nd.Send(head, ncc.Message{Kind: kMInsHop, A: ms.me.key}.WithIDs(ms.nd.ID()))
}

// forwardInsert advances y's predecessor search along our path.
func (ms *mergeState) forwardInsert(m ncc.Message) {
	y := pair{m.A, m.IDs[0]}
	if !ms.me.before(y) {
		// Even we sort after y: y becomes the new head, in front of us.
		ms.nd.Send(m.IDs[0], ncc.Message{Kind: kMInsR, A: 1}.WithIDs(ms.nd.ID()))
		return
	}
	for j := len(ms.succAt) - 1; j >= 0; j-- {
		if ms.succAt[j].valid() && ms.succAt[j].before(y) {
			ms.nd.Send(ms.succAt[j].id, ncc.Message{Kind: kMInsHop, A: m.A}.WithIDs(m.IDs[0]))
			return
		}
	}
	// We are y's predecessor; report ourselves and our successor.
	msg := ncc.Message{Kind: kMInsR, A: 0}
	if ms.succ != ncc.None {
		msg = msg.WithIDs(ms.nd.ID(), ms.succ)
		msg.B = 1
	} else {
		msg = msg.WithIDs(ms.nd.ID())
	}
	ms.nd.Send(m.IDs[0], msg)
}

// completeInsertion splices y (this node) into the path and reports flags
// to the coordinator.
func (ms *mergeState) completeInsertion(m ncc.Message) {
	nd := ms.nd
	flags := int64(0)
	if m.A == 1 {
		// Insert at the front: IDs[0] is the old head.
		head := m.IDs[0]
		ms.pred = ncc.None
		ms.succ = head
		nd.Send(head, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(nd.ID()))
		flags |= flagFront
	} else {
		u := m.IDs[0]
		ms.pred = u
		nd.Send(u, ncc.Message{Kind: kMSpliceS, A: 1}.WithIDs(nd.ID()))
		if m.B == 1 {
			sp := m.IDs[1]
			ms.succ = sp
			nd.Send(sp, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(nd.ID()))
		} else {
			ms.succ = ncc.None
			flags |= flagEnd
		}
	}
	ms.out = false
	nd.Send(ms.insCoord, ncc.Message{Kind: kMInsDone, B: flags})
}
