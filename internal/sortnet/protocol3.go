package sortnet

import (
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// recursionStep runs one globally synchronized step of the merge recursion:
// link refresh, size probes, base-case/insert/median handling, split
// broadcast, relink, and sub-instance appointment, then continues with k.
// Every node participates in lockstep; per-step round budget is fixed by
// stepBudget.
func (ms *mergeState) recursionStep(step int, k func() ncc.Op) ncc.Op {
	nd := ms.nd
	K := ms.K
	base := nd.Round()
	st := &stepState{psize: [2]int{-1, -1}, ptail: [2]ncc.ID{ncc.None, ncc.None},
		newHead: [2]ncc.ID{ncc.None, ncc.None}, mySide: -1, predSide: -1, succSide: -1}
	h := ms.stepHandler(st)
	// Set by the coordinator decision after SP2, read again at SP4/SP6.
	coord := false
	mode := 0

	// SP6: appoint (4 rounds).
	appoint := func() ncc.Op {
		if coord {
			switch mode {
			case 2:
				if !st.insDone {
					panic("sortnet: insertion did not complete in budget")
				}
				head, tail := ms.instA, st.ptail[0]
				if st.insFlag&flagFront != 0 {
					head = st.insY
				}
				if st.insFlag&flagEnd != 0 {
					tail = st.insY
				}
				ms.finish(head, tail)
			case 3:
				x := st.median
				// The (<) piece of each path keeps the old head — unless the
				// median was that head, or the whole path fell on the (>) side
				// (its old head reported itself as a boundary head).
				h0A := ms.instA
				if h0A == x.id || st.newHead[0] == ms.instA {
					h0A = ncc.None
				}
				h0B := ms.instB
				if h0B == x.id || st.newHead[1] == ms.instB {
					h0B = ncc.None
				}
				// Appoint x as coordinator of the (<) instance.
				flags := int64(0)
				var ids []ncc.ID
				if h0A != ncc.None {
					flags |= 1
					ids = append(ids, h0A)
				}
				if h0B != ncc.None {
					flags |= 2
					ids = append(ids, h0B)
				}
				nd.Send(x.id, ncc.Message{Kind: kMAppoint, A: flags, B: int64(step)}.WithIDs(ids...))
				ms.pend = append(ms.pend, pendSplice{x: x.id, depth: step})
				// Keep the (>) instance ourselves.
				ms.instA = st.newHead[0]
				ms.instB = st.newHead[1]
				if ms.instA == ncc.None && ms.instB == ncc.None {
					panic("sortnet: > instance cannot be empty (median is never the tail)")
				}
			}
		}
		return ms.window(base+ms.stepBudget(), h, k)
	}

	// SP5: relink (8 rounds). Participants with split info exchange sides
	// with their path neighbors and cut the path at the boundaries.
	relink := func() ncc.Op {
		relDeadline := base + ms.stepBudget() - 4
		if ms.split != nil && !ms.out {
			side := int64(0)
			switch {
			case ms.me == ms.split.x:
				side = 2
			case !ms.me.before(ms.split.x):
				side = 1
			}
			st.mySide = side
			if ms.pred != ncc.None {
				nd.Send(ms.pred, ncc.Message{Kind: kMSide, A: side, B: 1}) // B=1: from your succ
			}
			if ms.succ != ncc.None {
				nd.Send(ms.succ, ncc.Message{Kind: kMSide, A: side, B: 0}) // from your pred
			}
		}
		// One round for sides to land.
		return ms.window(nd.Round()+1, h, func() ncc.Op {
			if ms.split != nil && !ms.out {
				ms.applySplit(st)
			}
			ms.split = nil
			return ms.window(relDeadline, h, appoint)
		})
	}

	// SP4: split broadcast (K+6 rounds). The insert descent also completes
	// within SP4/SP5.
	sp4 := func() ncc.Op {
		if coord && mode == 3 {
			if !st.median.valid() {
				panic("sortnet: median descent did not complete in budget")
			}
			nd.Send(ms.instA, ncc.Message{Kind: kMSplit, A: st.median.key,
				B: int64(st.psize[0] - 1), C: 0}.WithIDs(st.median.id, nd.ID()))
			nd.Send(ms.instB, ncc.Message{Kind: kMSplit, A: st.median.key,
				B: int64(st.psize[1] - 1), C: 1}.WithIDs(st.median.id, nd.ID()))
		}
		return ms.window(base+K+2+2*K+8+K+6+K+6, h, relink)
	}

	// Coordinator decision + SP3: median descent / insert start (K+6 rounds).
	decide := func() ncc.Op {
		if coord {
			sA, sB := st.psize[0], st.psize[1]
			if sA < 0 || sB < 0 {
				panic("sortnet: probe did not complete in budget")
			}
			switch {
			case sA == 0 && sB == 0:
				ms.finish(ncc.None, ncc.None)
			case sB == 0:
				ms.finish(ms.instA, st.ptail[0])
			case sA == 0:
				ms.finish(ms.instB, st.ptail[1])
			case sB == 1:
				mode = 2
				st.insY = ms.instB
				nd.Send(ms.instB, ncc.Message{Kind: kMInsert}.WithIDs(ms.instA))
			case sA == 1:
				mode = 2
				st.insY = ms.instA
				// Swap: insert the A singleton into B; the result replaces both.
				nd.Send(ms.instA, ncc.Message{Kind: kMInsert}.WithIDs(ms.instB))
				ms.instA, ms.instB = ms.instB, ms.instA
				st.psize[0], st.psize[1] = st.psize[1], st.psize[0]
				st.ptail[0], st.ptail[1] = st.ptail[1], st.ptail[0]
			default:
				mode = 3
				largerHead, largerSize := ms.instA, sA
				if st.psize[1] > sA {
					largerHead, largerSize = ms.instB, st.psize[1]
				}
				pos := (largerSize - 1) / 2
				nd.Send(largerHead, ncc.Message{Kind: kMPosHop, A: int64(pos)}.WithIDs(nd.ID()))
			}
		}
		return ms.window(base+K+2+2*K+8+K+6, h, sp4)
	}

	// SP2: probes (2K+8 rounds).
	probes := func() ncc.Op {
		coord = ms.active()
		if coord {
			if ms.instA == ncc.None {
				st.psize[0] = 0
			} else {
				nd.Send(ms.instA, ncc.Message{Kind: kMProbe, B: 0})
			}
			if ms.instB == ncc.None {
				st.psize[1] = 0
			} else {
				nd.Send(ms.instB, ncc.Message{Kind: kMProbe, B: 1})
			}
		}
		return ms.window(base+K+2+2*K+8, h, decide)
	}

	// SP1: refresh value-annotated doubling links (K+2 rounds).
	return ms.buildLinks(base, probes)
}

// applySplit cuts the node's path links according to the side exchange.
func (ms *mergeState) applySplit(st *stepState) {
	if st.mySide == 2 {
		// We are the median: leave the path until the ascent splices us.
		ms.out = true
		ms.pred, ms.succ = ncc.None, ncc.None
		return
	}
	newHead := false
	if ms.succ != ncc.None && (st.succSide == 2 || st.succSide != st.mySide) {
		ms.succ = ncc.None
	}
	if ms.pred == ncc.None {
		if st.mySide == 1 {
			newHead = true // the whole path is on the (>) side
		}
	} else if st.predSide == 2 || st.predSide != st.mySide {
		ms.pred = ncc.None
		if st.mySide == 1 {
			newHead = true
		}
	}
	if newHead {
		ms.nd.Send(ms.split.coord, ncc.Message{Kind: kMNewHead, B: int64(ms.split.tag)})
	}
}

// ascentStep splices the median appointed at recursion step `slot` back
// between the two merged halves, then continues with k. Budget: 6 rounds.
func (ms *mergeState) ascentStep(slot int, k func() ncc.Op) ncc.Op {
	nd := ms.nd
	base := nd.Round()
	st := &stepState{}
	h := ms.stepHandler(st)
	// Sub-coordinators appointed at this slot report their final result.
	if ms.parentCoord != ncc.None && ms.myDepthSlot == slot {
		flags := int64(0)
		var ids []ncc.ID
		if ms.resH != ncc.None {
			flags |= 1
			ids = append(ids, ms.resH, ms.resT)
		}
		nd.Send(ms.parentCoord, ncc.Message{Kind: kMResult, A: flags}.WithIDs(ids...))
		ms.parentCoord = ncc.None
	}
	// Coordinators with a pending splice at this slot consume the report.
	expect := len(ms.pend) > 0 && ms.pend[len(ms.pend)-1].depth == slot
	got := false
	handler := func(m ncc.Message) {
		if m.Kind == kMResult {
			if !expect {
				panic("sortnet: unexpected sub-result")
			}
			p := &ms.pend[len(ms.pend)-1]
			p.haveResult = true
			if m.A&1 != 0 {
				p.h, p.t = m.IDs[0], m.IDs[1]
			} else {
				p.h, p.t = ncc.None, ncc.None
			}
			got = true
			return
		}
		h(m)
	}
	return ms.window(base+2, handler, func() ncc.Op {
		if expect {
			if !got {
				panic("sortnet: missing sub-result at ascent")
			}
			p := ms.pend[len(ms.pend)-1]
			ms.pend = ms.pend[:len(ms.pend)-1]
			x := p.x
			// Splice: P< (p.h, p.t) → x → P> (ms.resH, ms.resT).
			if p.t != ncc.None {
				nd.Send(p.t, ncc.Message{Kind: kMSpliceS, A: 1}.WithIDs(x))
			}
			// x's own links:
			if p.t != ncc.None {
				nd.Send(x, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(p.t))
			} else {
				nd.Send(x, ncc.Message{Kind: kMSpliceP, A: 0})
			}
			if ms.resH != ncc.None {
				nd.Send(x, ncc.Message{Kind: kMSpliceS, A: 1}.WithIDs(ms.resH))
				nd.Send(ms.resH, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(x))
			} else {
				nd.Send(x, ncc.Message{Kind: kMSpliceS, A: 0})
			}
			// New result bounds.
			if p.h != ncc.None {
				ms.resH = p.h
			} else {
				ms.resH = x
			}
			if ms.resT == ncc.None {
				ms.resT = x
			}
		}
		return ms.window(base+ms.ascBudget(), h, k)
	})
}

// insertSelf has this level's coordinators insert their own pair into the
// merged path, then continues with k. The ascent splices invalidated the
// doubling links, so they are rebuilt first. Budget: 2K+12 rounds.
func (ms *mergeState) insertSelf(lvl int, k func() ncc.Op) ncc.Op {
	nd := ms.nd
	base := nd.Round()
	return ms.buildLinks(base, func() ncc.Op { // K+2 rounds
		st := &stepState{}
		mine := ms.gk.Depth == lvl && ms.needSelf
		if mine && len(ms.pend) != 0 {
			panic("sortnet: unconsumed splices at level end")
		}
		if mine && ms.resH == ncc.None {
			// Children's merge was empty (cannot happen: children report
			// non-empty paths), kept as a defensive singleton fallback.
			ms.resH, ms.resT = nd.ID(), nd.ID()
			ms.pred, ms.succ = ncc.None, ncc.None
			mine = false
		}
		if mine {
			nd.Send(ms.resH, ncc.Message{Kind: kMInsHop, A: ms.me.key}.WithIDs(nd.ID()))
		}
		ms.needSelf = false
		handler := func(m ncc.Message) {
			if m.Kind == kMInsR && mine {
				// Complete our own insertion inline (no coordinator to notify).
				if m.A == 1 {
					head := m.IDs[0]
					ms.pred, ms.succ = ncc.None, head
					nd.Send(head, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(nd.ID()))
					ms.resH = nd.ID()
				} else {
					u := m.IDs[0]
					ms.pred = u
					nd.Send(u, ncc.Message{Kind: kMSpliceS, A: 1}.WithIDs(nd.ID()))
					if m.B == 1 {
						sp := m.IDs[1]
						ms.succ = sp
						nd.Send(sp, ncc.Message{Kind: kMSpliceP, A: 1}.WithIDs(nd.ID()))
					} else {
						ms.succ = ncc.None
						ms.resT = nd.ID()
					}
				}
				return
			}
			ms.stepHandler(st)(m)
		}
		return ms.window(base+2*ms.K+12, handler, k)
	})
}

// finalRanks computes every node's rank on the single global sorted path by
// a doubling prefix count, and delivers the Result to k.
func (ms *mergeState) finalRanks(k func(Result) ncc.Op) ncc.Op {
	nd := ms.nd
	base := nd.Round()
	return ms.buildLinks(base, func() ncc.Op {
		acc := int64(1)
		var count func(j int) ncc.Op
		count = func(j int) ncc.Op {
			if j >= ms.K {
				return primitives.SyncAtStep(nd, base+ms.K+2+ms.K+1, func([]ncc.Message) ncc.Op {
					return k(Result{Rank: int(acc - 1), Pred: ms.pred, Succ: ms.succ})
				})
			}
			if ms.succAt[j].valid() {
				nd.Send(ms.succAt[j].id, ncc.Message{Kind: kMRankP, A: acc})
			}
			return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
				for _, m := range w.Msgs {
					if m.Kind != kMRankP {
						panic("sortnet: unexpected message during ranking")
					}
					acc += m.A
				}
				return count(j + 1)
			})
		}
		return count(0)
	})
}
