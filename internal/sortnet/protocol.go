package sortnet

// This file implements the paper's real sorting protocol (§3.1.2, Theorem 3
// and Algorithm 2): sorted sub-paths are merged bottom-up along the TBFS;
// each merge recursively splits both paths around the median of the larger
// one and recurses on the two halves in parallel.
//
// Where the paper builds a balanced binary search tree on each sub-path to
// answer median/search queries, this implementation annotates the sub-path's
// distance-doubling links (the structure L restricted to the path) with the
// neighbors' keys — the same information a BBST provides, built by the same
// O(log n) exchange, and queried by greedy descent in O(log n) hops. The
// recursion hands each split's sub-instance to the removed median node,
// so every coordinator drives O(1) messages per step.
//
// The whole protocol is lockstep: every recursion step, ascent step and
// insertion runs in a fixed budget that is a function of ⌈log₂ n⌉ only, so
// all merge instances across the network stay synchronized. Total rounds:
// O(log³ n) — (tree levels) × (recursion depth) × (O(log n) per step).

import (
	"fmt"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// Message kinds for the merge protocol (0xA0 block).
const (
	kMKeyP    uint8 = 0xA0 + iota // doubling build: key of pred's pred
	kMKeyS                        // doubling build: key of succ's succ
	kMProbe                       // coordinator → head: find tail & size
	kMTailHop                     // descent hop for probe
	kMTailR                       // tail → coordinator: size
	kMPosHop                      // find-by-position descent
	kMPosR                        // median → coordinator: my key
	kMSplit                       // split broadcast along the path
	kMSide                        // side exchange with path neighbors
	kMNewHead                     // new boundary head → coordinator
	kMAppoint                     // coordinator → median: run the < instance
	kMInsert                      // coordinator → singleton: insert into path
	kMInsHop                      // insertion descent
	kMSpliceP                     // set your pred
	kMSpliceS                     // set your succ
	kMInsR                        // predecessor → inserted node: splice point
	kMInsDone                     // inserted node → coordinator: done + flags
	kMResult                      // sub-coordinator → parent coordinator
	kMReport                      // TBFS child → parent: my subtree's path head
	kMRankP                       // final ranking: prefix count
)

// pair is a (key, id) sort item; order is key descending, id ascending.
type pair struct {
	key int64
	id  ncc.ID
}

func (p pair) valid() bool { return p.id != ncc.None }

// before reports whether p sorts strictly before q (descending keys).
func (p pair) before(q pair) bool {
	if p.key != q.key {
		return p.key > q.key
	}
	return p.id < q.id
}

// mergeState is the per-node protocol state.
type mergeState struct {
	nd  *ncc.Node
	K   int // ⌈log₂ n⌉
	me  pair
	gk  primitives.Tree // the TBFS on Gk (merge schedule)
	out bool            // temporarily cut out as a split median

	pred, succ ncc.ID
	// doubling links along the current sorted sub-path, with keys
	predAt, succAt []pair
	split          *splitInfo // pending split of the current path
	insCoord       ncc.ID     // who asked us to insert ourselves

	// coordinator state
	instA, instB ncc.ID // heads of the active instance's paths (None = empty)
	resH, resT   ncc.ID // result of the active instance when done
	done         bool
	needSelf     bool         // must still insert own pair at this level
	pend         []pendSplice // one per depth where this coordinator split
	parentCoord  ncc.ID       // whom to send kMResult to (None = top level)
	myDepthSlot  int          // appointment step (for the ascent schedule)
}

type pendSplice struct {
	x          ncc.ID // the removed median, coordinator of the < instance
	depth      int
	haveResult bool
	h, t       ncc.ID // < result, filled at ascent
}

// budgets (rounds), all fixed functions of K so the network stays lockstep
func (ms *mergeState) stepBudget() int { return 5*ms.K + 34 }
func (ms *mergeState) ascBudget() int  { return 6 }
func (ms *mergeState) recDepth() int   { return (5*ms.K)/2 + 4 }
func (ms *mergeState) levelBudget() int {
	return ms.recDepth()*(ms.stepBudget()+ms.ascBudget()) + (2*ms.K + 12) + 3
}

// mergeSortStep runs the full protocol and delivers the node's rank and
// sorted neighbors to k. It needs the Sorter's TBFS tree; see Sorter.Tree.
func (s *Sorter) mergeSortStep(nd *ncc.Node, key int64, k func(Result) ncc.Op) ncc.Op {
	if s.Tree == nil {
		panic("sortnet: Merge method requires Sorter.Tree (the annotated TBFS)")
	}
	n := nd.N()
	if n == 1 {
		return k(Result{Rank: 0, Pred: ncc.None, Succ: ncc.None})
	}
	ms := &mergeState{
		nd:   nd,
		K:    ncc.CeilLog2(n),
		me:   pair{key, nd.ID()},
		gk:   *s.Tree,
		pred: ncc.None, succ: ncc.None,
		instA: ncc.None, instB: ncc.None,
		resH: ncc.None, resT: ncc.None,
		parentCoord: ncc.None,
	}
	maxDepth := ms.K + 1
	// Heads reported by our TBFS children, per level.
	childHead := map[ncc.ID]ncc.ID{}

	var level func(lvl int) ncc.Op
	level = func(lvl int) ncc.Op {
		if lvl < 0 {
			// Final ranking over the global sorted path.
			return ms.finalRanks(k)
		}
		start := nd.Round()
		if ms.gk.Depth == lvl {
			// We coordinate this level: our instance is (left child's path,
			// right child's path); afterwards we insert ourselves.
			ms.instA, ms.instB = ncc.None, ncc.None
			if ms.gk.Left != ncc.None {
				ms.instA = childHead[ms.gk.Left]
			}
			if ms.gk.Right != ncc.None {
				ms.instB = childHead[ms.gk.Right]
			}
			ms.done = false
			ms.resH, ms.resT = ncc.None, ncc.None
			ms.parentCoord = ncc.None
			ms.needSelf = true
			if ms.instA == ncc.None && ms.instB == ncc.None {
				// Leaf: the path is {me} — nothing to merge or insert into.
				ms.done = true
				ms.needSelf = false
				ms.resH, ms.resT = nd.ID(), nd.ID()
			}
		}
		// After descent + ascent + self-insertion: report the merged path's
		// head to the TBFS parent, then recurse to the next level.
		report := func() ncc.Op {
			return primitives.SyncAtStep(nd, start+ms.levelBudget()-2, func(in []ncc.Message) ncc.Op {
				ms.apply(in, func(m ncc.Message) {
					panic(fmt.Sprintf("sortnet: unexpected kind 0x%x before report", m.Kind))
				})
				if ms.out {
					panic(fmt.Sprintf("sortnet: node %d still cut out at level end", nd.ID()))
				}
				if ms.gk.Depth == lvl && !ms.gk.IsRoot {
					nd.Send(ms.gk.Parent, ncc.Message{Kind: kMReport}.WithIDs(ms.resH))
				}
				return primitives.SyncAtStep(nd, start+ms.levelBudget(), func(in []ncc.Message) ncc.Op {
					ms.apply(in, func(m ncc.Message) {
						if m.Kind == kMReport {
							childHead[m.Src] = m.IDs[0]
							return
						}
						panic(fmt.Sprintf("sortnet: unexpected kind 0x%x at report", m.Kind))
					})
					return level(lvl - 1)
				})
			})
		}
		// Ascent: splice pending medians back, deepest first.
		var ascend func(step int) ncc.Op
		ascend = func(step int) ncc.Op {
			if step < 0 {
				// Self-insertion by this level's coordinators.
				return ms.insertSelf(lvl, report)
			}
			return ms.ascentStep(step, func() ncc.Op { return ascend(step - 1) })
		}
		// Descent: fixed number of synchronized recursion steps.
		var descend func(step int) ncc.Op
		descend = func(step int) ncc.Op {
			if step >= ms.recDepth() {
				return ascend(ms.recDepth() - 1)
			}
			return ms.recursionStep(step, func() ncc.Op { return descend(step + 1) })
		}
		return descend(0)
	}
	return level(maxDepth)
}

// spliceKinds applies splices found in any inbox (used inside sub-phases
// too, since splice targets can be mid-phase members).
func (ms *mergeState) apply(in []ncc.Message, f func(m ncc.Message)) {
	for _, m := range in {
		switch m.Kind {
		case kMSpliceP:
			if len(m.IDs) > 0 {
				ms.pred = m.IDs[0]
			} else {
				ms.pred = ncc.None
			}
			ms.out = false
		case kMSpliceS:
			if len(m.IDs) > 0 {
				ms.succ = m.IDs[0]
			} else {
				ms.succ = ncc.None
			}
			ms.out = false
		default:
			if f != nil {
				f(m)
			}
		}
	}
}
