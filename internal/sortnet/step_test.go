package sortnet

import (
	"reflect"
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
)

// step_test.go checks the resumable-step compilation of the sorting
// protocols — the largest state machines in the repository. For every method
// the SortStep form, driven by the flat scheduler, must rank correctly and
// produce a trace byte-identical to the blocking Sort under the barrier
// driver (outbox determinism: same messages, same rounds, same outputs).

// runSortStepFlat mirrors runSort but compiles the protocol into steps and
// drives it with the zero-goroutine flat scheduler.
func runSortStepFlat(t *testing.T, n int, seed int64, method Method) *ncc.Trace {
	t.Helper()
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Sched: ncc.SchedFlat})
	RegisterOracle(s)
	tr, err := s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return primitives.BuildAllStep(nd, func(p primitives.Path, _ primitives.Levels, tree primitives.Tree) ncc.Op {
			srt := &Sorter{Method: method, Path: p, Pos: tree.Pos, Tree: &tree}
			key := nd.Rand().Int63n(50)
			return srt.SortStep(nd, key, func(res Result) ncc.Op {
				nd.SetOutput("key", key)
				nd.SetOutput("rank", int64(res.Rank))
				nd.SetOutput("pred", int64(res.Pred))
				nd.SetOutput("succ", int64(res.Succ))
				return ncc.Done()
			})
		})
	})
	if err != nil {
		t.Fatalf("n=%d method=%v flat: %v", n, method, err)
	}
	validateSorted(t, tr)
	return tr
}

func TestSortStepMatchesBlocking(t *testing.T) {
	for _, method := range []Method{Oracle, OddEven, Merge} {
		for _, n := range []int{1, 2, 3, 10, 33} {
			seed := int64(n)*13 + 1
			base := runSort(t, n, seed, method)
			flat := runSortStepFlat(t, n, seed, method)
			if !reflect.DeepEqual(base, flat) {
				t.Fatalf("method=%v n=%d: flat step trace differs from blocking barrier trace", method, n)
			}
			// Outbox determinism within the driver: a second identical flat
			// run reproduces the trace exactly.
			again := runSortStepFlat(t, n, seed, method)
			if !reflect.DeepEqual(flat, again) {
				t.Fatalf("method=%v n=%d: flat run is not reproducible", method, n)
			}
		}
	}
}
