// Package trees implements the degree-sequence tree realizations of §5:
//
//   - RealizeChain (Algorithm 4): the k non-leaf nodes, sorted by
//     non-increasing degree, form a chain; each satisfies its remaining
//     degree from a contiguous block of leaves located via distributed
//     prefix sums. This yields the maximum-diameter realization.
//   - RealizeGreedy (Algorithm 5): the greedy tree T_G — every node, in
//     sorted order, adopts the next block of unparented nodes as children.
//     By Lemma 15 the result has the minimum possible diameter over all
//     tree realizations of the sequence.
//
// Both run in O(polylog n) rounds (Theorems 14 and 16): one sort, O(1)
// aggregations, one prefix-sum scan, and one disjoint-range dissemination.
package trees

import (
	"graphrealize/internal/aggregate"
	"graphrealize/internal/core"
	"graphrealize/internal/ncc"
	"graphrealize/internal/rankov"
	"graphrealize/internal/sortnet"
)

// Outcome reports a node's view of the tree realization.
type Outcome struct {
	// OK is false when the sequence is not tree-realizable (Σd ≠ 2(n−1) or
	// some degree < 1 for n ≥ 2).
	OK bool
	// Realized is the node's degree in the constructed tree.
	Realized int
	// IsLeaf reports whether the node ended up a leaf (degree 1 for n ≥ 2).
	IsLeaf bool
	// Neighbors lists the IDs this node stored (the edges it is
	// responsible for in the implicit realization).
	Neighbors []ncc.ID
}

// validateStep checks tree realizability by aggregation: Σd = 2(n−1) and
// d ≥ 1 everywhere (n = 1 requires d = 0). Rounds: two aggregations.
func validateStep(nd *ncc.Node, env *core.Env, deg int, k func(bool) ncc.Op) ncc.Op {
	n := nd.N()
	return aggregate.AggregateBroadcastStep(nd, &env.GK, int64(deg), aggregate.SumOp(), func(sum int64) ncc.Op {
		bad := int64(0)
		if n == 1 {
			if deg != 0 {
				bad = 1
			}
		} else if deg < 1 || deg > n-1 {
			bad = 1
		}
		return aggregate.AggregateBroadcastStep(nd, &env.GK, bad, aggregate.OrOp(), func(anyBad int64) ncc.Op {
			if anyBad == 1 {
				return k(false)
			}
			if n == 1 {
				return k(sum == 0)
			}
			return k(sum == int64(2*(n-1)))
		})
	})
}

// store records an edge at this node.
func (o *Outcome) store(nd *ncc.Node, peer ncc.ID) {
	nd.AddEdge(peer)
	o.Neighbors = append(o.Neighbors, peer)
	o.Realized++
}

// RealizeChain runs Algorithm 4. deg is this node's required tree degree.
// The realization is implicit except for the chain edges, which both
// endpoints store (as the paper's line 9 specifies).
func RealizeChain(nd *ncc.Node, env *core.Env, deg int) Outcome {
	var out Outcome
	ncc.RunOps(nd, RealizeChainStep(nd, env, deg, func(o Outcome) ncc.Op { out = o; return ncc.Done() }))
	return out
}

// RealizeChainStep is the resumable form of RealizeChain.
func RealizeChainStep(nd *ncc.Node, env *core.Env, deg int, kont func(Outcome) ncc.Op) ncc.Op {
	out := Outcome{}
	return validateStep(nd, env, deg, func(valid bool) ncc.Op {
		if !valid {
			nd.Unrealizable()
			return kont(out)
		}
		out.OK = true
		n := nd.N()
		if n == 1 {
			return kont(out)
		}
		return env.Sort.SortStep(nd, int64(deg), func(sr sortnet.Result) ncc.Op {
			return rankov.BuildStep(nd, sr.Rank, sr.Pred, sr.Succ, func(ov *rankov.Overlay) ncc.Op {
				// k = number of non-leaves.
				isNonLeaf := int64(0)
				if deg > 1 {
					isNonLeaf = 1
				}
				return aggregate.AggregateBroadcastStep(nd, &env.GK, isNonLeaf, aggregate.SumOp(), func(k64 int64) ncc.Op {
					k := int(k64)
					out.IsLeaf = deg == 1

					if k == 0 {
						// All degrees are 1: the only valid case is n = 2, a
						// single edge. k is common knowledge, so every node
						// takes this branch together and lockstep is preserved
						// without the scan/dissemination stages.
						if sr.Rank == 0 {
							out.store(nd, sr.Succ)
						} else {
							out.store(nd, sr.Pred)
						}
						return kont(out)
					}

					// Chain the non-leaves: both endpoints store (explicit
					// chain edges).
					if sr.Rank > 0 && sr.Rank <= k-1 {
						out.store(nd, sr.Pred)
					}
					if sr.Rank < k-1 {
						out.store(nd, sr.Succ)
					}
					// Remaining leaf demand r per non-leaf.
					r := 0
					if sr.Rank < k {
						switch {
						case k == 1:
							r = deg
						case sr.Rank == 0 || sr.Rank == k-1:
							r = deg - 1
						default:
							r = deg - 2
						}
					}
					// Leaf block start: k + (exclusive prefix of r over ranks).
					return rankov.PrefixSumStep(nd, ov, int64(r), func(inc int64) ncc.Op {
						start := k + int(inc) - r
						var job *rankov.Job
						if r > 0 {
							job = &rankov.Job{Payload: nd.ID(), Lo: start, Hi: start + r - 1}
						}
						return rankov.DisseminateStep(nd, ov, &env.GK, job, func(got []rankov.Job) ncc.Op {
							for _, g := range got {
								out.store(nd, g.Payload)
							}
							// A chain node's leaves store their edges; account
							// for them here so Realized equals the input degree
							// at every node.
							out.Realized += r
							return kont(out)
						})
					})
				})
			})
		})
	})
}

// RealizeGreedy runs Algorithm 5, producing the minimum-diameter greedy
// tree: the rank-0 node adopts the next d₀ ranks as children; every other
// rank i adopts d_i − 1 children from the next unparented block, located via
// a prefix-sum scan. Children store the edge to their parent (implicit).
func RealizeGreedy(nd *ncc.Node, env *core.Env, deg int) Outcome {
	var out Outcome
	ncc.RunOps(nd, RealizeGreedyStep(nd, env, deg, func(o Outcome) ncc.Op { out = o; return ncc.Done() }))
	return out
}

// RealizeGreedyStep is the resumable form of RealizeGreedy.
func RealizeGreedyStep(nd *ncc.Node, env *core.Env, deg int, kont func(Outcome) ncc.Op) ncc.Op {
	out := Outcome{}
	return validateStep(nd, env, deg, func(valid bool) ncc.Op {
		if !valid {
			nd.Unrealizable()
			return kont(out)
		}
		out.OK = true
		n := nd.N()
		if n == 1 {
			return kont(out)
		}
		return env.Sort.SortStep(nd, int64(deg), func(sr sortnet.Result) ncc.Op {
			return rankov.BuildStep(nd, sr.Rank, sr.Pred, sr.Succ, func(ov *rankov.Overlay) ncc.Op {
				out.IsLeaf = deg == 1
				// Children count: the root keeps all deg slots, others reserve
				// one for their parent.
				c := deg - 1
				if sr.Rank == 0 {
					c = deg
				}
				return rankov.PrefixSumStep(nd, ov, int64(c), func(inc int64) ncc.Op {
					start := 1 + int(inc) - c
					var job *rankov.Job
					if c > 0 {
						job = &rankov.Job{Payload: nd.ID(), Lo: start, Hi: start + c - 1}
					}
					return rankov.DisseminateStep(nd, ov, &env.GK, job, func(got []rankov.Job) ncc.Op {
						for _, g := range got {
							out.store(nd, g.Payload) // child stores its parent
						}
						// The parent's own degree accounting: its c children
						// store the edges.
						out.Realized += c
						return kont(out)
					})
				})
			})
		})
	})
}
