package trees

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphrealize/internal/core"
	"graphrealize/internal/gen"
	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
)

func runTree(t *testing.T, d []int, greedy bool, seed int64) (*ncc.Trace, error) {
	n := len(d)
	inputs := make([]any, n)
	for i, v := range d {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Inputs: inputs})
	sortnet.RegisterOracle(s)
	tr, err := s.Run(func(nd *ncc.Node) {
		env := core.Setup(nd, sortnet.Oracle)
		deg := nd.Input().(int)
		var out Outcome
		if greedy {
			out = RealizeGreedy(nd, env, deg)
		} else {
			out = RealizeChain(nd, env, deg)
		}
		nd.SetOutput("realized", int64(out.Realized))
		if out.OK {
			nd.SetOutput("ok", 1)
		}
	})
	if err != nil && t != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return tr, err
}

func buildGraph(tr *ncc.Trace) *graph.Graph {
	idx := make(map[ncc.ID]int, len(tr.IDs))
	for i, id := range tr.IDs {
		idx[id] = i
	}
	g := graph.New(len(tr.IDs))
	for e := range tr.EdgeSet() {
		_ = g.AddEdge(idx[e[0]], idx[e[1]])
	}
	return g
}

func treeCases() map[string][]int {
	return map[string][]int{
		"edge":        {1, 1},
		"path5":       {1, 2, 2, 2, 1},
		"star7":       gen.StarSequence(7),
		"caterpillar": gen.CaterpillarSequence(12, 5),
		"random20":    gen.TreeSequence(20, 4),
		"random50":    gen.TreeSequence(50, 5),
		"random100":   gen.TreeSequence(100, 6),
		"broom":       {4, 4, 1, 1, 1, 1, 1, 1},
	}
}

func TestChainTreeRealizes(t *testing.T) {
	for name, d := range treeCases() {
		tr, _ := runTree(t, d, false, 17)
		if tr.Unrealizable {
			t.Fatalf("%s: flagged unrealizable", name)
		}
		g := buildGraph(tr)
		if !g.IsTree() {
			t.Fatalf("%s: not a tree (m=%d, comps=%d)", name, g.M(), g.Components())
		}
		if !g.DegreesMatch(d) {
			t.Fatalf("%s: degrees %v, want %v", name, g.Degrees(), d)
		}
		// Same structure family as the sequential Algorithm 4 baseline:
		// identical diameter.
		want, _ := seq.ChainTree(d)
		if g.TreeDiameter() != want.TreeDiameter() {
			t.Fatalf("%s: chain diameter %d, sequential %d", name, g.TreeDiameter(), want.TreeDiameter())
		}
		for i, id := range tr.IDs {
			if v, _ := tr.Output(id, "realized"); v != int64(d[i]) {
				t.Fatalf("%s: node %d realized %d, want %d", name, id, v, d[i])
			}
		}
	}
}

func TestGreedyTreeRealizesWithMinDiameter(t *testing.T) {
	for name, d := range treeCases() {
		tr, _ := runTree(t, d, true, 19)
		if tr.Unrealizable {
			t.Fatalf("%s: flagged unrealizable", name)
		}
		g := buildGraph(tr)
		if !g.IsTree() {
			t.Fatalf("%s: not a tree", name)
		}
		if !g.DegreesMatch(d) {
			t.Fatalf("%s: degrees %v, want %v", name, g.Degrees(), d)
		}
		// Lemma 15: the greedy tree has minimum diameter.
		if want := seq.MinTreeDiameter(d); g.TreeDiameter() != want {
			t.Fatalf("%s: greedy diameter %d, optimal %d", name, g.TreeDiameter(), want)
		}
		for i, id := range tr.IDs {
			if v, _ := tr.Output(id, "realized"); v != int64(d[i]) {
				t.Fatalf("%s: node %d realized %d, want %d", name, id, v, d[i])
			}
		}
	}
}

func TestGreedyNeverWorseThanChain(t *testing.T) {
	for name, d := range treeCases() {
		trC, _ := runTree(t, d, false, 23)
		trG, _ := runTree(t, d, true, 23)
		dc := buildGraph(trC).TreeDiameter()
		dg := buildGraph(trG).TreeDiameter()
		if dg > dc {
			t.Fatalf("%s: greedy diameter %d > chain diameter %d", name, dg, dc)
		}
	}
}

func TestTreeRejectsBadSequences(t *testing.T) {
	for _, d := range [][]int{
		{2, 2, 2},          // cycle
		{1, 1, 1, 1},       // forest
		{0, 1},             // zero degree
		{3, 3, 3, 1, 1, 1}, // sum too big
	} {
		for _, greedy := range []bool{false, true} {
			tr, err := runTree(nil, d, greedy, 29)
			if err != nil {
				t.Fatalf("%v: run error: %v", d, err)
			}
			if !tr.Unrealizable {
				t.Fatalf("%v greedy=%v: not flagged", d, greedy)
			}
		}
	}
}

func TestSingleNodeTree(t *testing.T) {
	for _, greedy := range []bool{false, true} {
		tr, _ := runTree(t, []int{0}, greedy, 31)
		if tr.Unrealizable {
			t.Fatal("single vertex with degree 0 is a (trivial) tree")
		}
		if len(tr.EdgeSet()) != 0 {
			t.Fatal("single vertex tree has edges")
		}
	}
}

func TestQuickTreeRealizations(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%40) + 2
		d := gen.TreeSequence(n, seed)
		rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { d[i], d[j] = d[j], d[i] })
		trC, errC := runTree(nil, d, false, seed)
		trG, errG := runTree(nil, d, true, seed)
		if errC != nil || errG != nil || trC.Unrealizable || trG.Unrealizable {
			return false
		}
		gc, gg := buildGraph(trC), buildGraph(trG)
		if !gc.IsTree() || !gg.IsTree() || !gc.DegreesMatch(d) || !gg.DegreesMatch(d) {
			return false
		}
		return gg.TreeDiameter() == seq.MinTreeDiameter(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRoundsArePolylog(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		d := gen.TreeSequence(n, int64(n))
		tr, _ := runTree(t, d, true, int64(n))
		K := ncc.CeilLog2(n)
		// One sort charge (K³) + O(K) real rounds with modest constants.
		budget := K*K*K + 40*K + 60
		if tr.Metrics.Rounds > budget {
			t.Fatalf("n=%d: %d rounds exceeds polylog budget %d", n, tr.Metrics.Rounds, budget)
		}
	}
}
