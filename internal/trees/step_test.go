package trees

import (
	"reflect"
	"testing"

	"graphrealize/internal/core"
	"graphrealize/internal/ncc"
	"graphrealize/internal/sortnet"
)

// step_test.go checks the resumable-step compilation of the tree
// realizations: RealizeChainStep and RealizeGreedyStep driven by the flat
// scheduler must produce traces byte-identical to the blocking forms under
// the barrier driver.

func runTreeStepFlat(t *testing.T, d []int, greedy bool, seed int64) (*ncc.Trace, error) {
	t.Helper()
	n := len(d)
	inputs := make([]any, n)
	for i, v := range d {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Inputs: inputs, Sched: ncc.SchedFlat})
	sortnet.RegisterOracle(s)
	return s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return core.SetupStep(nd, sortnet.Oracle, func(env *core.Env) ncc.Op {
			deg := nd.Input().(int)
			done := func(out Outcome) ncc.Op {
				nd.SetOutput("realized", int64(out.Realized))
				if out.OK {
					nd.SetOutput("ok", 1)
				}
				return ncc.Done()
			}
			if greedy {
				return RealizeGreedyStep(nd, env, deg, done)
			}
			return RealizeChainStep(nd, env, deg, done)
		})
	})
}

func TestTreeStepMatchesBlocking(t *testing.T) {
	cases := []struct {
		name   string
		d      []int
		greedy bool
	}{
		{"chain", []int{3, 2, 2, 1, 1, 1, 1, 1}, false},
		{"greedy", []int{3, 2, 2, 1, 1, 1, 1, 1}, true},
		{"chain-star", []int{5, 1, 1, 1, 1, 1}, false},
		{"chain-two", []int{1, 1}, false},
		{"not-a-tree", []int{3, 3, 3, 3}, false},
	}
	for _, c := range cases {
		seed := int64(len(c.d))*11 + 3
		base, berr := runTree(nil, c.d, c.greedy, seed)
		flat, ferr := runTreeStepFlat(t, c.d, c.greedy, seed)
		if (berr == nil) != (ferr == nil) || (berr != nil && berr.Error() != ferr.Error()) {
			t.Fatalf("%s: errors differ: blocking=%v flat=%v", c.name, berr, ferr)
		}
		if berr != nil {
			continue
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("%s: flat step trace differs from blocking barrier trace", c.name)
		}
	}
}
