package jobs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
)

// wireera_test.go covers the at-rest graphwire adoption (WIRE.md §10):
// new records persist graphs as graph_wire streams, and JSON-era data
// directories — represented by the committed testdata/jsonera fixture,
// generated with the pre-wire code — still recover and are converted to
// the wire form by the open-time compaction.

// copyFixture clones a testdata directory into a temp dir, because opening
// a store compacts (rewrites) it.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join("testdata", name, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// readStoreBytes returns the concatenated snapshot + WAL of a data dir.
func readStoreBytes(t *testing.T, dir string) []byte {
	t.Helper()
	var out []byte
	for _, f := range []string{"snapshot.json", "wal.log"} {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// TestJSONEraDirRecoversAndConverts opens a data directory written entirely
// by the pre-wire code: the edges-form done job must be served with its
// graph intact, the failed job with its error, and the open-time compaction
// must rewrite the store in graph_wire form (the version sniff of WIRE.md
// §8 — no migration step, old dirs convert on first open).
func TestJSONEraDirRecoversAndConverts(t *testing.T) {
	dir := copyFixture(t, "jsonera")
	m := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})

	done := waitStateFor(t, m, "j1-00000000a1b2", jobs.StateDone, 5*time.Second)
	if !done.Recovered || done.Result == nil || done.Result.Graph == nil {
		t.Fatalf("JSON-era done job recovered as %+v", done)
	}
	wantAdj := [][]int{{1, 2, 3}, {0, 2}, {0, 1}, {0}}
	if !reflect.DeepEqual(done.Result.Graph.Adj, wantAdj) {
		t.Fatalf("JSON-era graph = %v, want %v", done.Result.Graph.Adj, wantAdj)
	}
	if done.Result.Stats == nil || done.Result.Stats.Rounds != 3 {
		t.Fatalf("JSON-era stats not preserved: %+v", done.Result.Stats)
	}

	failed := waitStateFor(t, m, "j2-00000000c3d4", jobs.StateFailed, 5*time.Second)
	if failed.Err == nil || failed.Err.Error() != "degree sequence is not graphic" {
		t.Fatalf("JSON-era failed job error = %v", failed.Err)
	}

	if err := m.Close(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The open-time compaction rewrote the store: the done job's graph now
	// travels as graph_wire, and no record carries a JSON edge list.
	disk := readStoreBytes(t, dir)
	if !bytes.Contains(disk, []byte(`"graph_wire"`)) {
		t.Fatal("converted store has no graph_wire field")
	}
	if bytes.Contains(disk, []byte(`"edges"`)) {
		t.Fatal("converted store still carries a JSON-era edges field")
	}

	// And the converted directory recovers identically.
	m2 := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})
	defer crashClose(m2)
	again := waitStateFor(t, m2, "j1-00000000a1b2", jobs.StateDone, 5*time.Second)
	if !reflect.DeepEqual(again.Result.Graph.Adj, wantAdj) {
		t.Fatalf("wire-era graph = %v, want %v", again.Result.Graph.Adj, wantAdj)
	}
}

// TestNewRecordsPersistGraphWire runs a real job against a FileStore and
// checks the written form: graph_wire present, edges absent, and the graph
// identical after a reopen.
func TestNewRecordsPersistGraphWire(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})
	snap, err := m.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{3, 2, 2, 2, 1}, Opt: &graphrealize.Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitStateFor(t, m, snap.ID, jobs.StateDone, 10*time.Second)
	if err := m.Close(t.Context()); err != nil {
		t.Fatal(err)
	}

	disk := readStoreBytes(t, dir)
	if !bytes.Contains(disk, []byte(`"graph_wire"`)) {
		t.Fatal("new terminal record does not carry graph_wire")
	}
	if bytes.Contains(disk, []byte(`"edges"`)) {
		t.Fatal("new terminal record still writes the JSON-era edges field")
	}

	m2 := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})
	defer crashClose(m2)
	rec := waitStateFor(t, m2, snap.ID, jobs.StateDone, 5*time.Second)
	if !reflect.DeepEqual(rec.Result.Graph.Adj, got.Result.Graph.Adj) {
		t.Fatal("graph served after reopen differs from the original result")
	}
}

// TestCorruptGraphWireSurfacesAsFailure: a terminal record whose embedded
// stream no longer decodes (out-of-band damage past the WAL checksum) must
// surface as a failed job naming the loss — never a done job with a wrong
// graph, and never a dropped job.
func TestCorruptGraphWireSurfacesAsFailure(t *testing.T) {
	dir := t.TempDir()
	st := openFileStore(t, dir)
	pj := jobs.PersistedJob{
		ID:      "j1-deadbeef0000",
		Kind:    int(graphrealize.JobDegrees),
		Seq:     []int{1, 1},
		State:   jobs.StateDone,
		Created: time.Now(),
		Result:  &jobs.PersistedResult{N: 2, GraphWire: []byte("GRWF\x01 not a stream")},
	}
	if err := st.LogTerminal(pj); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})
	defer crashClose(m)
	snap := waitStateFor(t, m, pj.ID, jobs.StateFailed, 5*time.Second)
	if snap.Err == nil {
		t.Fatal("corrupt graph_wire surfaced without an error")
	}
	if snap.Result != nil {
		t.Fatalf("corrupt graph_wire still served a result: %+v", snap.Result)
	}
}
