package jobs_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
)

// persist_test.go is the black-box half of the persistence tests: FileStore
// recovery through the Manager — crash simulation, terminal reload,
// in-flight re-queue, determinism of recovered runs, and GC-driven
// compaction of the on-disk store.

// crashStore wraps a Store and, once crashed, silently swallows every write
// — the closest a test can get to kill -9 without leaving the process: the
// disk freezes at the pre-crash state while the in-memory Manager runs on.
type crashStore struct {
	jobs.Store
	crashed atomic.Bool
}

func (c *crashStore) LogSubmitted(pj jobs.PersistedJob) error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.LogSubmitted(pj)
}

func (c *crashStore) LogTerminal(pj jobs.PersistedJob) error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.LogTerminal(pj)
}

func (c *crashStore) LogExpired(id string) error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.LogExpired(id)
}

func (c *crashStore) LogRemoved(ids []string) error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.LogRemoved(ids)
}

func (c *crashStore) Compact(live []jobs.PersistedJob) error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.Compact(live)
}

func (c *crashStore) Close() error {
	if c.crashed.Load() {
		return nil
	}
	return c.Store.Close()
}

func openFileStore(t *testing.T, dir string) *jobs.FileStore {
	t.Helper()
	fs, err := jobs.OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func openManager(t *testing.T, cfg jobs.Config) *jobs.Manager {
	t.Helper()
	m, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// crashClose tears a manager down with a near-zero drain budget — the
// in-flight jobs are force-canceled, standing in for the process dying.
func crashClose(m *jobs.Manager) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_ = m.Close(ctx)
}

// waitStateFor is waitState with a caller-chosen deadline, for recovered
// re-runs that take real simulation time.
func waitStateFor(t *testing.T, m *jobs.Manager, id string, want jobs.State, timeout time.Duration) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished while waiting for %s: %v", id, want, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, snap.State)
	return jobs.Snapshot{}
}

// TestCrashRecoveryServesTerminalAndRequeuesInFlight is the tentpole's core
// guarantee: after a crash, completed jobs are served from disk with their
// results and in-flight jobs re-run through the replay path.
func TestCrashRecoveryServesTerminalAndRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	cs := &crashStore{Store: openFileStore(t, dir)}
	m1 := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: cs})

	// A fast job completes (its terminal record is fsynced)...
	fast, err := m1.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: &graphrealize.Options{Seed: 7}, Label: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	fastDone := waitState(t, m1, fast.ID, jobs.StateDone)
	wantEdges := fastDone.Result.Graph.Edges()

	// ...and a slow job (odd-even sort, n=192) is mid-run at crash time.
	seq := make([]int, 192)
	for i := range seq {
		seq[i] = 4
	}
	slowJob := graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: seq, Opt: &graphrealize.Options{Seed: 5, Sort: graphrealize.OddEvenSort}, Label: "slow"}
	slow, err := m1.Submit(slowJob)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, slow.ID, jobs.StateRunning)

	// Crash: the disk freezes here; the doomed manager's forced shutdown
	// (which would log a canceled terminal state) never reaches it.
	cs.crashed.Store(true)
	crashClose(m1)

	// Restart on the same directory.
	var replays atomic.Int64
	runner := graphrealize.NewRunner(2)
	backend := &fakeBackend{
		submit: runner.SubmitCtx,
		replay: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			replays.Add(1)
			return runner.SubmitReplayCtx(ctx, j)
		},
	}
	m2 := openManager(t, jobs.Config{Backend: backend, Store: openFileStore(t, dir)})
	defer closeNow(t, m2)

	// The completed job is served from disk, marked recovered, same graph.
	got, err := m2.Get(fast.ID)
	if err != nil {
		t.Fatalf("completed job lost in crash: %v", err)
	}
	if got.State != jobs.StateDone || !got.Recovered {
		t.Fatalf("want recovered done job, got %+v", got)
	}
	if got.Label != "fast" || got.Kind != graphrealize.JobDegrees || got.N != 6 {
		t.Fatalf("job spec mangled by recovery: %+v", got)
	}
	if got.Result == nil || !reflect.DeepEqual(got.Result.Graph.Edges(), wantEdges) {
		t.Fatal("persisted result must match the pre-crash realization")
	}
	if got.Result.Stats == nil || got.Result.Stats.Rounds != fastDone.Result.Stats.Rounds {
		t.Fatal("persisted stats must survive recovery")
	}

	// The in-flight job was re-queued through the replay path and re-runs
	// to completion with the identical graph (same recorded seed).
	if replays.Load() != 1 {
		t.Fatalf("want exactly 1 replay submission, got %d", replays.Load())
	}
	reslow, err := m2.Get(slow.ID)
	if err != nil {
		t.Fatalf("in-flight job lost in crash: %v", err)
	}
	if !reslow.Recovered {
		t.Fatalf("re-queued job must be marked recovered: %+v", reslow)
	}
	redone := waitStateFor(t, m2, slow.ID, jobs.StateDone, 60*time.Second)
	ref, _, err := graphrealize.RealizeDegrees(slowJob.Seq, &graphrealize.Options{Seed: 5, Sort: graphrealize.OddEvenSort})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(redone.Result.Graph.Edges(), ref.Edges()) {
		t.Fatal("recovered re-run must realize the seed-identical graph")
	}

	st := m2.StatsSnapshot()
	if st.RecoveredTerminal != 1 || st.RecoveredRequeued != 1 {
		t.Fatalf("recovery counters wrong: %+v", st)
	}
	if !st.Store.Durable {
		t.Fatal("file-backed manager must report a durable store")
	}
}

// TestFailedAndCanceledOutcomesSurviveRestart: non-done terminal states are
// persisted too — their error strings included.
func TestFailedAndCanceledOutcomesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: openFileStore(t, dir)})
	failed, err := m1.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{3, 3, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, failed.ID, jobs.StateFailed)
	closeNow(t, m1)

	m2 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir)})
	defer closeNow(t, m2)
	got, err := m2.Get(failed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateFailed || !got.Recovered || got.Err == nil {
		t.Fatalf("failed outcome must survive restart with its cause: %+v", got)
	}
	if got.Err.Error() == "" {
		t.Fatal("recovered failure must carry the error string")
	}
}

// TestInMemoryManagerSurvivesNothing pins the default: without a Store,
// restarting means starting empty (the pre-persistence behaviour).
func TestInMemoryManagerSurvivesNothing(t *testing.T) {
	m1 := jobs.New(jobs.Config{Backend: instantBackend()})
	snap, err := m1.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobs.StateDone)
	closeNow(t, m1)

	m2 := jobs.New(jobs.Config{Backend: instantBackend()})
	defer closeNow(t, m2)
	if _, err := m2.Get(snap.ID); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("in-memory jobs must not survive, got %v", err)
	}
	if st := m2.StatsSnapshot(); st.Store.Durable || st.RecoveredTerminal != 0 {
		t.Fatalf("in-memory manager must report a non-durable empty store: %+v", st)
	}
}

// TestGCCompactsDiskStore: the two-phase TTL GC physically shrinks the
// on-disk store, so a restart after GC recovers nothing.
func TestGCCompactsDiskStore(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir), Retention: time.Minute})
	snap, err := m1.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobs.StateDone)
	m1.GC(time.Now().Add(2 * time.Minute)) // phase one: expired
	m1.GC(time.Now().Add(4 * time.Minute)) // phase two: removed + compacted
	if st := m1.StatsSnapshot(); st.Store.Compactions == 0 {
		t.Fatalf("GC removal must compact the store: %+v", st.Store)
	}
	closeNow(t, m1)

	// The snapshot now holds the (empty) live set and the WAL is truncated.
	fs2 := openFileStore(t, dir)
	recovered, err := fs2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("GC'd jobs must be gone from disk, recovered %d", len(recovered))
	}
	fs2.Close()
}

// TestExpiredJobSurvivesAsExpired: phase-one jobs are still queryable after
// a restart, and the next sweep removes them.
func TestExpiredJobSurvivesAsExpired(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir), Retention: time.Minute})
	snap, err := m1.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobs.StateDone)
	m1.GC(time.Now().Add(2 * time.Minute))
	closeNow(t, m1)

	m2 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir), Retention: time.Minute})
	defer closeNow(t, m2)
	got, err := m2.Get(snap.ID)
	if err != nil || got.State != jobs.StateExpired {
		t.Fatalf("expired job must still be queryable after restart, got %+v err %v", got, err)
	}
	if m2.GC(time.Now().Add(4*time.Minute)) != 1 {
		t.Fatal("restarted GC must remove the recovered expired job")
	}
}

// TestCorruptWALTailToleratedOnOpen: garbage appended to the WAL (a torn
// write at crash time) is dropped and counted, and everything before it is
// recovered.
func TestCorruptWALTailToleratedOnOpen(t *testing.T) {
	dir := t.TempDir()
	cs := &crashStore{Store: openFileStore(t, dir)}
	m1 := openManager(t, jobs.Config{Backend: instantBackend(), Store: cs})
	snap, err := m1.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, jobs.StateDone)
	cs.crashed.Store(true) // skip Close's compaction: keep records in the WAL
	crashClose(m1)

	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef torn-half-record"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2 := openFileStore(t, dir)
	if st := fs2.Stats(); st.ReplayErrors == 0 {
		t.Fatalf("dropped tail must be counted: %+v", st)
	}
	m2 := openManager(t, jobs.Config{Backend: instantBackend(), Store: fs2})
	defer closeNow(t, m2)
	got, err := m2.Get(snap.ID)
	if err != nil || got.State != jobs.StateDone || got.Result == nil {
		t.Fatalf("records before the torn tail must recover, got %+v err %v", got, err)
	}
}

// TestCompactionTriggersOnWALGrowth: a tiny CompactBytes bound makes every
// terminal append overflow the segment, so compaction runs without GC.
func TestCompactionTriggersOnWALGrowth(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir), CompactBytes: 1})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.StatsSnapshot().Store.Compactions > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("WAL growth past CompactBytes must trigger compaction: %+v", m.StatsSnapshot().Store)
}

// TestIDSequenceContinuesAfterRecovery: freshly minted IDs must not reuse
// the numeric prefixes of recovered ones.
func TestIDSequenceContinuesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir)})
	var lastID string
	for i := 0; i < 3; i++ {
		snap, err := m1.Submit(job(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		lastID = snap.ID
		waitState(t, m1, snap.ID, jobs.StateDone)
	}
	closeNow(t, m1)

	m2 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir)})
	defer closeNow(t, m2)
	fresh, err := m2.Submit(job(9))
	if err != nil {
		t.Fatal(err)
	}
	// IDs are "j<seq>-<hex>": the restarted sequence must continue past the
	// recovered maximum, not restart at 1.
	if seqOf(t, fresh.ID) <= seqOf(t, lastID) {
		t.Fatalf("fresh ID %s does not continue past recovered %s", fresh.ID, lastID)
	}
	if _, err := m2.Get(lastID); err != nil {
		t.Fatalf("recovered job %s must coexist with fresh submissions: %v", lastID, err)
	}
}

// seqOf parses the numeric sequence prefix of a job ID.
func seqOf(t *testing.T, id string) int64 {
	t.Helper()
	head, _, _ := strings.Cut(id, "-")
	n, err := strconv.ParseInt(strings.TrimPrefix(head, "j"), 10, 64)
	if err != nil {
		t.Fatalf("unparseable job ID %q: %v", id, err)
	}
	return n
}
