package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"graphrealize"
)

// record.go holds the job lifecycle: the states, the externally visible
// Snapshot, and the per-job record with its concurrency contract.

// State is a job's position in the lifecycle
//
//	queued → running → done | failed | canceled → expired → (removed)
//
// Transitions only move rightward. A job may skip "running" (a cache-served
// or immediately failing job goes queued → done/failed directly), and every
// terminal outcome passes through "expired" for one GC interval before the
// record is removed, so clients polling a finished job see its state age out
// before their GETs start returning 404.
type State string

const (
	// StateQueued: admitted by the Runner but not yet executing.
	StateQueued State = "queued"
	// StateRunning: the simulation has started (first progress barrier seen).
	StateRunning State = "running"
	// StateDone: finished with a result (which may be ErrUnrealizable-free
	// graph output; realization failures of the input are StateFailed).
	StateDone State = "done"
	// StateFailed: finished with an error (unrealizable input, strict-mode
	// violation, job timeout, ...).
	StateFailed State = "failed"
	// StateCanceled: stopped by DELETE or manager drain before completing;
	// the engine unwound at a round barrier (ncc.ErrCanceled → ctx error).
	StateCanceled State = "canceled"
	// StateExpired: a terminal job past its retention TTL, queryable for one
	// more GC interval before the record is dropped.
	StateExpired State = "expired"
)

// States lists every state in lifecycle order (for metrics exposition).
var States = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateExpired}

// Terminal reports whether no further execution can happen in this state.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// ParseState resolves a wire string ("queued", "running", ...) to a State.
func ParseState(s string) (State, bool) {
	for _, st := range States {
		if string(st) == s {
			return st, true
		}
	}
	return "", false
}

// Snapshot is an immutable copy of a job's externally visible state. Result
// points at the shared job outcome and must be treated as read-only (the
// same convention as Runner cache hits).
type Snapshot struct {
	ID       string
	Kind     graphrealize.JobKind
	Label    string
	TraceID  string // request-correlation ID, "" when the submitter sent none
	N        int    // sequence length
	State    State
	Round    int // rounds completed at the last progress barrier
	Messages int // messages delivered at the last progress barrier
	Created  time.Time
	Started  time.Time // zero until the first progress barrier
	Finished time.Time // zero until terminal
	Err      error     // non-nil in failed/canceled
	Result   *graphrealize.Result
	// Recovered marks a job reloaded (or re-queued) from the durable store
	// after a restart rather than submitted over this process's lifetime.
	Recovered bool
}

// outcomeOf maps a Runner result onto the job's terminal state. It is shared
// by the in-memory transition (record.finishAt) and the durable log
// (Manager.persistTerminal) so the two can never disagree about an outcome.
func outcomeOf(res graphrealize.Result) (State, error) {
	switch {
	case res.Err == nil:
		return StateDone, nil
	case errors.Is(res.Err, context.Canceled):
		return StateCanceled, res.Err
	default:
		// Timeouts (DeadlineExceeded), unrealizable inputs, strict-mode
		// violations: the job ran and failed.
		return StateFailed, res.Err
	}
}

// record is one job's full server-side state. Concurrency contract:
//
//   - round/msgs are written lock-free by the engine's driver goroutine at
//     every barrier and read via atomics by snapshot().
//   - subs is copy-on-write: notifyAll (engine goroutine, once per round)
//     loads the pointer without locking; addSub/removeSub swap in a copy
//     under mu.
//   - everything else (state, times, result) is guarded by mu; writers are
//     the manager (submit/cancel/GC) and the per-job watch goroutine.
type record struct {
	id        string
	job       graphrealize.Job
	created   time.Time
	recovered bool
	cancel    context.CancelFunc

	round atomic.Int64
	msgs  atomic.Int64
	ran   atomic.Bool // guards the one-time queued → running transition
	subs  atomic.Pointer[[]chan struct{}]

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   *graphrealize.Result
	err      error
}

// reportProgress is installed as the job's Options.Progress hook. It runs on
// the simulation's driver goroutine between rounds, so the hot path is two
// atomic stores and a lock-free fan-out; only the first call (the queued →
// running transition) takes the record mutex. The transition happens before
// the watermark stores so that — together with snapshot() loading the
// atomics first — no snapshot can ever pair state "queued" with non-zero
// progress.
func (r *record) reportProgress(round, msgs int) {
	if r.ran.CompareAndSwap(false, true) {
		r.mu.Lock()
		if r.state == StateQueued {
			r.state = StateRunning
			r.started = time.Now()
		}
		r.mu.Unlock()
	}
	r.round.Store(int64(round))
	r.msgs.Store(int64(msgs))
	r.notifyAll()
}

// finishAt records the job's outcome at the given instant. It runs exactly
// once, on the watch goroutine, after the Runner's result channel delivered —
// by which time the engine has unwound, so no progress callback can race the
// terminal state. The instant is supplied by the caller so the durable log
// (written before this transition becomes visible) carries the same
// timestamp.
func (r *record) finishAt(res graphrealize.Result, now time.Time) {
	st, err := outcomeOf(res)
	r.mu.Lock()
	r.state = st
	if st == StateDone {
		r.result = &res
	} else {
		r.err = err
	}
	r.finished = now
	r.mu.Unlock()
	r.cancel() // release the per-job context's resources
	r.notifyAll()
}

// expire moves a terminal record into StateExpired (first GC phase).
func (r *record) expire() {
	r.mu.Lock()
	r.state = StateExpired
	r.mu.Unlock()
	r.notifyAll()
}

func (r *record) snapshot() Snapshot {
	// Watermarks first, state second: a non-zero round implies the running
	// transition already happened (reportProgress orders it before the
	// stores), so the snapshot can lag in progress but never claim "queued"
	// while carrying progress.
	round := int(r.round.Load())
	msgs := int(r.msgs.Load())
	r.mu.Lock()
	snap := Snapshot{
		ID:        r.id,
		Kind:      r.job.Kind,
		Label:     r.job.Label,
		TraceID:   r.job.TraceID,
		N:         len(r.job.Seq),
		State:     r.state,
		Round:     round,
		Messages:  msgs,
		Created:   r.created,
		Started:   r.started,
		Finished:  r.finished,
		Err:       r.err,
		Result:    r.result,
		Recovered: r.recovered,
	}
	r.mu.Unlock()
	return snap
}

func (r *record) currentState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *record) addSub(sig chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.subs.Load()
	list := make([]chan struct{}, 0, 1)
	if old != nil {
		list = append(list, *old...)
	}
	list = append(list, sig)
	r.subs.Store(&list)
}

func (r *record) removeSub(sig chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.subs.Load()
	if old == nil {
		return
	}
	list := make([]chan struct{}, 0, len(*old))
	for _, s := range *old {
		if s != sig {
			list = append(list, s)
		}
	}
	r.subs.Store(&list)
}

// notifyAll posts a coalescing wake-up to every subscriber: each signal
// channel has capacity 1, so a slow consumer accumulates at most one pending
// token and re-reads the latest snapshot when it drains it. States only move
// forward, so coalescing can never hide a terminal transition.
func (r *record) notifyAll() {
	subs := r.subs.Load()
	if subs == nil {
		return
	}
	for _, sig := range *subs {
		select {
		case sig <- struct{}{}:
		default:
		}
	}
}
