package jobs_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
)

// fakeBackend scripts the Backend seam. Its submit func decides admission;
// the helpers below model an instantly succeeding job and a long-running
// engine that reports progress until its context dies.
type fakeBackend struct {
	submit func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	replay func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
}

func (f *fakeBackend) SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	return f.submit(ctx, j)
}

// SubmitReplayCtx scripts the recovery path: replay, unless overridden,
// behaves like a regular submission (the fake has no admission bound).
func (f *fakeBackend) SubmitReplayCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
	if f.replay != nil {
		return f.replay(ctx, j)
	}
	return f.submit(ctx, j)
}

func (f *fakeBackend) Stats() graphrealize.RunnerStats { return graphrealize.RunnerStats{} }

// instantBackend completes every job immediately with a success result.
func instantBackend() *fakeBackend {
	return &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		ch := make(chan graphrealize.Result, 1)
		ch <- graphrealize.Result{Job: j, Graph: &graphrealize.Graph{N: len(j.Seq)}, Stats: &graphrealize.Stats{N: len(j.Seq), Rounds: 1}}
		return ch, nil
	}}
}

// engineBackend mimics the NCC engine's cooperative cancellation: a driver
// goroutine fires the job's Progress hook once per simulated round barrier
// and stops only when the job context dies, exactly like ncc.Config.Stop.
func engineBackend(roundLen time.Duration) *fakeBackend {
	return &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		ch := make(chan graphrealize.Result, 1)
		go func() {
			for round := 0; ; round++ {
				if j.Opt != nil && j.Opt.Progress != nil {
					j.Opt.Progress(round, 3*round)
				}
				select {
				case <-ctx.Done():
					ch <- graphrealize.Result{Job: j, Err: ctx.Err()}
					return
				case <-time.After(roundLen):
				}
			}
		}()
		return ch, nil
	}}
}

func job(seed int64) graphrealize.Job {
	return graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{2, 2, 2}, Opt: &graphrealize.Options{Seed: seed}}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *jobs.Manager, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished while waiting for %s: %v", id, want, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, snap.State)
	return jobs.Snapshot{}
}

func closeNow(t *testing.T, m *jobs.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLifecycleAgainstRealRunner(t *testing.T) {
	// End to end through a real Runner and the real engine hook: a 4-regular
	// degree realization is large enough to cross many round barriers.
	m := jobs.New(jobs.Config{Backend: graphrealize.NewRunner(2)})
	defer closeNow(t, m)

	seq := make([]int, 64)
	for i := range seq {
		seq[i] = 4
	}
	snap, err := m.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: seq, Opt: &graphrealize.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.State != jobs.StateQueued {
		t.Fatalf("fresh job must be queued with an ID: %+v", snap)
	}

	events, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	lastRound := -1
	var final jobs.Event
	for ev := range events {
		if ev.Round < lastRound {
			t.Fatalf("round went backwards: %d after %d", ev.Round, lastRound)
		}
		lastRound = ev.Round
		final = ev
	}
	if !final.Terminal || final.State != jobs.StateDone {
		t.Fatalf("stream must end in done, got %+v", final)
	}

	done, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != jobs.StateDone || done.Result == nil || done.Result.Graph == nil {
		t.Fatalf("done job must carry its result: %+v", done)
	}
	if done.Round <= 0 {
		t.Fatal("a multi-round run must have reported progress")
	}
	if done.Result.Stats.Rounds < done.Round {
		t.Fatalf("final stats (%d rounds) inconsistent with progress watermark %d",
			done.Result.Stats.Rounds, done.Round)
	}
	if done.Started.IsZero() || done.Finished.Before(done.Started) {
		t.Fatalf("timestamps out of order: %+v", done)
	}
}

func TestCancelStopsRealEngineRun(t *testing.T) {
	// The acceptance path: DELETE-style cancellation must stop the engine at
	// a round barrier (ncc.ErrCanceled → context.Canceled → StateCanceled).
	// OddEvenSort at n=256 runs long enough that cancellation after the
	// first progress barrier always lands mid-run.
	m := jobs.New(jobs.Config{Backend: graphrealize.NewRunner(2)})
	defer closeNow(t, m)

	seq := make([]int, 256)
	for i := range seq {
		seq[i] = 4
	}
	snap, err := m.Submit(graphrealize.Job{
		Kind: graphrealize.JobDegrees,
		Seq:  seq,
		Opt:  &graphrealize.Options{Seed: 2, Sort: graphrealize.OddEvenSort},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateRunning)
	if _, initiated, err := m.Cancel(snap.ID); err != nil || !initiated {
		t.Fatalf("cancel of a running job must initiate: initiated=%v err=%v", initiated, err)
	}
	got := waitState(t, m, snap.ID, jobs.StateCanceled)
	if !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("canceled job must record the context error, got %v", got.Err)
	}
	if got.Result != nil {
		t.Fatal("canceled job must not carry a result")
	}
	// Cancel is idempotent: on a terminal job it is a no-op, not an error.
	if _, initiated, err := m.Cancel(snap.ID); err != nil || initiated {
		t.Fatalf("cancel of a terminal job must be a no-op: initiated=%v err=%v", initiated, err)
	}
}

func TestProgressStreamFromEngineHook(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: engineBackend(time.Millisecond)})
	defer closeNow(t, m)

	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Watch progress accumulate, then cancel mid-flight.
	sawProgress := false
	for ev := range events {
		if ev.State == jobs.StateRunning && ev.Round >= 3 {
			sawProgress = true
			if _, _, err := m.Cancel(snap.ID); err != nil {
				t.Fatal(err)
			}
		}
		if ev.Terminal {
			if ev.State != jobs.StateCanceled || ev.Err == "" {
				t.Fatalf("terminal event must report cancellation: %+v", ev)
			}
			break
		}
	}
	if !sawProgress {
		t.Fatal("never observed running progress before cancellation")
	}
}

func TestSubscribeTerminalJobYieldsOneEvent(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend()})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateDone)
	events, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var got []jobs.Event
	for ev := range events {
		got = append(got, ev)
	}
	if len(got) != 1 || !got[0].Terminal || got[0].State != jobs.StateDone {
		t.Fatalf("want exactly the terminal event, got %+v", got)
	}
}

func TestSubscribeUnknownJob(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend()})
	defer closeNow(t, m)
	if _, _, err := m.Subscribe("nope"); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTwoPhaseGC(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend(), Retention: time.Minute})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateDone)

	// Before retention: untouched.
	if n := m.GC(time.Now()); n != 0 {
		t.Fatalf("fresh job must survive GC, removed %d", n)
	}
	// After retention, phase one: still queryable, but expired.
	if n := m.GC(time.Now().Add(2 * time.Minute)); n != 0 {
		t.Fatalf("first sweep must only mark expired, removed %d", n)
	}
	got, err := m.Get(snap.ID)
	if err != nil || got.State != jobs.StateExpired {
		t.Fatalf("want queryable expired job, got %+v err %v", got, err)
	}
	// Phase two: removed; lookups now 404.
	if n := m.GC(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("second sweep must remove the expired job, removed %d", n)
	}
	if _, err := m.Get(snap.ID); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("GC'd job must be gone, got %v", err)
	}
	if st := m.StatsSnapshot(); st.Evictions != 1 || st.Retained != 0 {
		t.Fatalf("eviction accounting wrong: %+v", st)
	}
}

func TestGCLoopRunsOnItsOwn(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend(), Retention: 20 * time.Millisecond, GCInterval: 10 * time.Millisecond})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateDone)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := m.Get(snap.ID); errors.Is(err, jobs.ErrNotFound) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background GC never removed the finished job")
}

func TestMaxJobsEvictsFinishedFirst(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend(), MaxJobs: 2})
	defer closeNow(t, m)
	first, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, jobs.StateDone)
	if _, err := m.Submit(job(2)); err != nil {
		t.Fatal(err)
	}
	third, err := m.Submit(job(3))
	if err != nil {
		t.Fatalf("at the cap, a finished job must be evicted to admit: %v", err)
	}
	if _, err := m.Get(first.ID); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("oldest finished job must have been evicted, got %v", err)
	}
	if _, err := m.Get(third.ID); err != nil {
		t.Fatalf("newest job must be retained: %v", err)
	}
	if st := m.StatsSnapshot(); st.Evictions != 1 {
		t.Fatalf("capacity eviction must be counted: %+v", st)
	}
}

func TestMaxJobsAllLiveRefuses(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: engineBackend(time.Millisecond), MaxJobs: 1})
	defer closeNow(t, m)
	live, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(job(2)); !errors.Is(err, jobs.ErrTooManyJobs) {
		t.Fatalf("a cap full of live jobs must refuse, got %v", err)
	}
	if _, _, err := m.Cancel(live.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRejectedSubmitEvictsNothing: eviction happens only after admission, so
// a backend rejection at the MaxJobs cap must not destroy a retained result.
func TestRejectedSubmitEvictsNothing(t *testing.T) {
	full := false
	fb := &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		if full {
			return nil, graphrealize.ErrQueueFull
		}
		ch := make(chan graphrealize.Result, 1)
		ch <- graphrealize.Result{Job: j, Graph: &graphrealize.Graph{N: len(j.Seq)}, Stats: &graphrealize.Stats{}}
		return ch, nil
	}}
	m := jobs.New(jobs.Config{Backend: fb, MaxJobs: 1})
	defer closeNow(t, m)
	done, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, done.ID, jobs.StateDone)

	full = true
	if _, err := m.Submit(job(2)); !errors.Is(err, graphrealize.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if _, err := m.Get(done.ID); err != nil {
		t.Fatalf("rejected submission must not evict the finished job: %v", err)
	}
	if st := m.StatsSnapshot(); st.Evictions != 0 {
		t.Fatalf("no eviction may be counted on rejection: %+v", st)
	}

	// Once the backend admits again, the finished job is evicted to make room.
	full = false
	fresh, err := m.Submit(job(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(done.ID); !errors.Is(err, jobs.ErrNotFound) {
		t.Fatalf("admitted submission at the cap must evict the finished job, got %v", err)
	}
	waitState(t, m, fresh.ID, jobs.StateDone)
}

func TestBackpressurePassesThrough(t *testing.T) {
	fb := &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		return nil, graphrealize.ErrQueueFull
	}}
	m := jobs.New(jobs.Config{Backend: fb})
	defer closeNow(t, m)
	if _, err := m.Submit(job(1)); !errors.Is(err, graphrealize.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull passthrough, got %v", err)
	}
	if st := m.StatsSnapshot(); st.Retained != 0 {
		t.Fatal("rejected submissions must not be retained")
	}
}

func TestJobTimeoutLandsInFailed(t *testing.T) {
	fb := &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		ch := make(chan graphrealize.Result, 1)
		ch <- graphrealize.Result{Job: j, Err: context.DeadlineExceeded}
		return ch, nil
	}}
	m := jobs.New(jobs.Config{Backend: fb})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, jobs.StateFailed)
	if !errors.Is(got.Err, context.DeadlineExceeded) {
		t.Fatalf("timeout must be recorded as the failure cause, got %v", got.Err)
	}
}

// TestCallerProgressHookIsChained: a caller-supplied Options.Progress keeps
// firing alongside the manager's own snapshot reporter.
func TestCallerProgressHookIsChained(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: engineBackend(100 * time.Microsecond)})
	defer closeNow(t, m)
	var callerRounds atomic.Int64
	j := job(1)
	j.Opt.Progress = func(round, msgs int) { callerRounds.Store(int64(round)) }
	snap, err := m.Submit(j)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got, err := m.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Round >= 3 && callerRounds.Load() >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if callerRounds.Load() < 3 {
		t.Fatalf("caller hook must keep firing, last saw round %d", callerRounds.Load())
	}
	got, err := m.Get(snap.ID)
	if err != nil || got.Round < 3 {
		t.Fatalf("manager snapshot must advance too: %+v err %v", got, err)
	}
	if _, _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobTimeoutConfigThreadsThrough: the manager stamps its JobTimeout
// override onto submitted jobs (without clobbering an explicit per-job one),
// so async jobs can outlive the Runner's synchronous deadline.
func TestJobTimeoutConfigThreadsThrough(t *testing.T) {
	var got []time.Duration
	fb := &fakeBackend{submit: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
		got = append(got, j.Timeout)
		ch := make(chan graphrealize.Result, 1)
		ch <- graphrealize.Result{Job: j, Graph: &graphrealize.Graph{N: len(j.Seq)}, Stats: &graphrealize.Stats{}}
		return ch, nil
	}}
	m := jobs.New(jobs.Config{Backend: fb, JobTimeout: -1})
	defer closeNow(t, m)
	if _, err := m.Submit(job(1)); err != nil {
		t.Fatal(err)
	}
	explicit := job(2)
	explicit.Timeout = time.Minute
	if _, err := m.Submit(explicit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != -1 || got[1] != time.Minute {
		t.Fatalf("timeout threading wrong: %v", got)
	}
}

func TestListAndFilter(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend()})
	defer closeNow(t, m)
	var ids []string
	for i := 0; i < 3; i++ {
		snap, err := m.Submit(job(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, jobs.StateDone)
	}
	all := m.List("", 0)
	if len(all) != 3 {
		t.Fatalf("want 3 jobs, got %d", len(all))
	}
	if all[0].ID != ids[2] {
		t.Fatal("list must be newest-first")
	}
	if got := m.List(jobs.StateDone, 2); len(got) != 2 {
		t.Fatalf("limit must cap the listing, got %d", len(got))
	}
	if got := m.List(jobs.StateRunning, 0); len(got) != 0 {
		t.Fatalf("state filter must apply, got %d", len(got))
	}
}

func TestCloseDrainsThenForcesCancellation(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: engineBackend(time.Millisecond)})
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("a drain that had to force must report the deadline, got %v", err)
	}
	got, err := m.Get(snap.ID)
	if err != nil || got.State != jobs.StateCanceled {
		t.Fatalf("forced drain must cancel live jobs, got %+v err %v", got, err)
	}
	if _, err := m.Submit(job(2)); !errors.Is(err, jobs.ErrShuttingDown) {
		t.Fatalf("submissions after Close must be refused, got %v", err)
	}
	// Close is idempotent.
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestGCSubscribeRaceNeverLosesTerminalEvent is the regression test for the
// TTL-GC vs. subscriber-attach race on one job ID: a GC sweep can decide to
// expire (or remove) a record in the same instant a subscriber registers on
// it. The audited invariants — addSub happens before the pump's first
// snapshot read, the pump re-reads the snapshot after every wake-up, and
// expire()/notifyAll() follow states that only move rightward — mean every
// subscriber that found the record must observe exactly one terminal event
// and the stream must close; a subscriber that lost the lookup race gets
// ErrNotFound. Run under -race in CI, this also proves the window is free of
// data races (no generation check was needed: a subscriber attached to a
// record GC already unlinked still sees its terminal state, it just streams
// one event for a job whose GET now 404s).
func TestGCSubscribeRaceNeverLosesTerminalEvent(t *testing.T) {
	for i := 0; i < 50; i++ {
		m := jobs.New(jobs.Config{Backend: instantBackend(), Retention: time.Nanosecond, GCInterval: time.Hour})
		snap, err := m.Submit(job(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, snap.ID, jobs.StateDone)

		// One goroutine drives both GC phases while another subscribes.
		sweep := make(chan struct{})
		go func() {
			defer close(sweep)
			m.GC(time.Now().Add(time.Minute)) // done → expired
			m.GC(time.Now().Add(time.Minute)) // expired → removed
		}()
		events, cancel, err := m.Subscribe(snap.ID)
		if err != nil {
			// The sweep won the lookup race: the job is gone, which a GET
			// would report the same way.
			if !errors.Is(err, jobs.ErrNotFound) {
				t.Fatalf("subscribe may only fail NotFound, got %v", err)
			}
			<-sweep
			closeNow(t, m)
			continue
		}
		var final jobs.Event
		got := 0
		timeout := time.After(5 * time.Second)
	drain:
		for {
			select {
			case ev, open := <-events:
				if !open {
					break drain
				}
				got++
				final = ev
			case <-timeout:
				t.Fatal("subscriber hung: terminal event lost to the GC race")
			}
		}
		if got == 0 || !final.Terminal {
			t.Fatalf("subscriber must see a terminal event, got %d events (last %+v)", got, final)
		}
		cancel()
		<-sweep
		closeNow(t, m)
	}
}

func TestSubscriberGaugeAndSlowConsumerCoalesces(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: engineBackend(100 * time.Microsecond)})
	defer closeNow(t, m)
	snap, err := m.Submit(job(1))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.StatsSnapshot(); st.Subscribers != 1 {
		t.Fatalf("want 1 subscriber, got %d", st.Subscribers)
	}
	// Sleep instead of reading: hundreds of barriers fire while we are away,
	// but the coalescing stream only owes us the latest snapshot and the
	// terminal event — the engine side never blocks.
	time.Sleep(20 * time.Millisecond)
	if _, _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	var sawTerminal atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Terminal {
				sawTerminal.Store(true)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream never terminated")
	}
	if !sawTerminal.Load() {
		t.Fatal("slow consumer must still receive the terminal event")
	}
	cancel()
	deadline := time.Now().Add(time.Second)
	for m.StatsSnapshot().Subscribers != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := m.StatsSnapshot().Subscribers; got != 0 {
		t.Fatalf("subscriber gauge must drop to 0, got %d", got)
	}
}
