package jobs

import (
	"sync"
	"time"
)

// ledger.go is the live in-memory job index: id → record plus insertion
// order, backing lookup, listing, TTL sweeps, and capacity eviction. The
// ledger is always authoritative for what the API serves; the Store
// (store.go) is the durable shadow of it that restarts are rebuilt from.

// ledger is the runtime index of retained records.
type ledger struct {
	mu    sync.Mutex
	byID  map[string]*record
	order []*record // created ascending
}

func newLedger() *ledger {
	return &ledger{byID: make(map[string]*record)}
}

func (s *ledger) put(r *record) {
	s.mu.Lock()
	s.byID[r.id] = r
	s.order = append(s.order, r)
	s.mu.Unlock()
}

func (s *ledger) get(id string) (*record, bool) {
	s.mu.Lock()
	r, ok := s.byID[id]
	s.mu.Unlock()
	return r, ok
}

func (s *ledger) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// all returns the records newest-first (the listing order).
func (s *ledger) all() []*record {
	s.mu.Lock()
	out := make([]*record, len(s.order))
	for i, r := range s.order {
		out[len(s.order)-1-i] = r
	}
	s.mu.Unlock()
	return out
}

// oldestFirst returns the records in creation order (the compaction order,
// matching what Recover will rebuild).
func (s *ledger) oldestFirst() []*record {
	s.mu.Lock()
	out := append([]*record(nil), s.order...)
	s.mu.Unlock()
	return out
}

// counts tallies records by state (the metrics gauges).
func (s *ledger) counts() map[State]int {
	s.mu.Lock()
	records := append([]*record(nil), s.order...)
	s.mu.Unlock()
	c := make(map[State]int, len(States))
	for _, st := range States {
		c[st] = 0
	}
	for _, r := range records {
		c[r.currentState()]++
	}
	return c
}

// sweep implements the two GC phases in one pass: terminal records whose
// retention expired move to StateExpired (still queryable), and records
// already expired are removed. It returns the records to expire (the caller
// marks them outside the ledger lock) and the IDs removed (which the caller
// forwards to the durable store).
func (s *ledger) sweep(now time.Time, retention time.Duration) (toExpire []*record, removed []string) {
	s.mu.Lock()
	kept := s.order[:0]
	for _, r := range s.order {
		r.mu.Lock()
		st, finished := r.state, r.finished
		r.mu.Unlock()
		switch {
		case st == StateExpired:
			delete(s.byID, r.id)
			removed = append(removed, r.id)
		case st.Terminal() && now.Sub(finished) >= retention:
			toExpire = append(toExpire, r)
			kept = append(kept, r)
		default:
			kept = append(kept, r)
		}
	}
	// Zero the freed tail so removed records are collectible.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
	s.mu.Unlock()
	return toExpire, removed
}

// hasFinished reports whether any retained record is terminal (evictable).
func (s *ledger) hasFinished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.order {
		if r.currentState().Terminal() {
			return true
		}
	}
	return false
}

// evictOldestFinished drops the oldest terminal record to make room at the
// MaxJobs cap, returning its ID. It returns "" when every retained job is
// still live.
func (s *ledger) evictOldestFinished() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.order {
		if r.currentState().Terminal() {
			delete(s.byID, r.id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return r.id
		}
	}
	return ""
}
