package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"
)

// wal.go is the append-only write-ahead log of job lifecycle events. The
// format is one record per line:
//
//	<crc32-hex> <json>\n
//
// where the CRC (IEEE, over the JSON bytes) makes torn or bit-rotted
// records detectable. Because the framing is line-delimited, replay can
// resynchronize at the next newline: a record that is truncated or fails
// its checksum is dropped and counted, and every intact record around it
// is kept — corruption costs only the damaged records, never the suffix.
// Two realignment guards keep one torn write from merging with the next
// intact one: openWAL terminates a segment whose previous process died
// mid-append (no trailing newline), and a failed in-process write poisons
// the writer so the next append starts on a fresh line. Terminal records
// are fsynced before the in-memory transition becomes visible, so a result
// a client could have observed is never lost.

// WAL operation codes.
const (
	opSubmit   = "submit"   // job admitted (state queued, full spec)
	opTerminal = "terminal" // job reached done/failed/canceled (full spec + result)
	opExpired  = "expired"  // GC phase one
	opRemoved  = "removed"  // GC phase two or capacity eviction
)

// walRecord is one WAL entry. Job is set for submit/terminal, ID for
// expired, IDs for removed.
type walRecord struct {
	Seq int64         `json:"seq"`
	Op  string        `json:"op"`
	Job *PersistedJob `json:"job,omitempty"`
	ID  string        `json:"id,omitempty"`
	IDs []string      `json:"ids,omitempty"`
}

// encodeWALRecord renders one record line (including the trailing newline).
func encodeWALRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, []byte(fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload)))...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeWALLine verifies and parses one line (without its newline).
func decodeWALLine(line []byte) (walRecord, error) {
	var rec walRecord
	crcHex, payload, ok := bytes.Cut(line, []byte{' '})
	if !ok {
		return rec, fmt.Errorf("jobs: wal line has no checksum separator")
	}
	want, err := strconv.ParseUint(string(crcHex), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("jobs: bad wal checksum field: %v", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return rec, fmt.Errorf("jobs: wal checksum mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("jobs: wal payload unmarshals dirty: %v", err)
	}
	return rec, nil
}

// walWriter appends records to one WAL segment file.
type walWriter struct {
	mu       sync.Mutex
	f        *os.File
	seq      int64 // last sequence number handed out
	records  int64 // records appended to this segment
	bytes    int64 // bytes in this segment
	poisoned bool  // last write failed: realign with '\n' before the next
}

// openWAL opens (creating if needed) the segment for appending. startSeq is
// the highest sequence number already in the file (from replay), so fresh
// appends continue the numbering. A segment whose previous owner died
// mid-append (torn tail without a newline) is terminated first, so the
// first fresh record cannot merge into the torn line and be lost with it.
func openWAL(path string, startSeq int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := info.Size()
	if size > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, size-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
			size++
		}
	}
	return &walWriter{f: f, seq: startSeq, bytes: size}, nil
}

// append writes one record; sync forces it to stable storage before
// returning (the terminal-state durability contract). A failed write may
// have left a partial line on disk, so the writer is poisoned and the next
// append first emits a newline — the torn fragment becomes one isolated
// CRC-failing line instead of swallowing its successor.
func (w *walWriter) append(rec walRecord, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errStoreClosed
	}
	if w.poisoned {
		if _, err := w.f.Write([]byte{'\n'}); err != nil {
			return err
		}
		w.poisoned = false
		w.bytes++
	}
	w.seq++
	rec.Seq = w.seq
	line, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(line); err != nil {
		w.poisoned = true
		return err
	}
	w.records++
	w.bytes += int64(len(line))
	if sync {
		return w.f.Sync()
	}
	return nil
}

// reset truncates the segment after a snapshot subsumed it (compaction).
// Sequence numbering continues — records are never renumbered, so a replay
// of snapshot + fresh WAL stays ordered.
func (w *walWriter) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errStoreClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.records = 0
	w.bytes = 0
	return w.f.Sync()
}

func (w *walWriter) stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads every intact record from the segment, in order. A missing
// file is an empty log. Damaged lines — torn writes, bit rot, a truncated
// tail — are dropped and counted, and replay resynchronizes at the next
// newline: file order is append order, so the surviving records still
// replay in the order they were logged.
func replayWAL(path string) (recs []walRecord, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, derr := decodeWALLine(line)
		if derr != nil {
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		// An unreadable tail (e.g. a line overflowing the scanner buffer)
		// cannot be resynchronized past: count it and stop.
		dropped++
	}
	return recs, dropped, nil
}
