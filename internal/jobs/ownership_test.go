package jobs_test

// ownership_test.go pins the cluster-worker recovery contract of CLUSTER.md
// §6.4: a process that no longer owns a recovered in-flight job must not
// re-run it — while it was down, its coordinator already failed the job
// over or failed it to the client — but must surface it as failed with
// ErrReassigned rather than silently dropping the record.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
)

// crashWithInFlight runs one job to completion and leaves a second
// in-flight on disk, then crashes, returning the data dir and both IDs.
func crashWithInFlight(t *testing.T) (dir, doneID, inflightID string) {
	t.Helper()
	dir = t.TempDir()
	cs := &crashStore{Store: openFileStore(t, dir)}
	m := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(2), Store: cs})

	fast, err := m.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: []int{3, 3, 2, 2, 2, 2}, Opt: &graphrealize.Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, fast.ID, jobs.StateDone)

	seq := make([]int, 192)
	for i := range seq {
		seq[i] = 4
	}
	slow, err := m.Submit(graphrealize.Job{Kind: graphrealize.JobDegrees, Seq: seq, Opt: &graphrealize.Options{Seed: 5, Sort: graphrealize.OddEvenSort}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, jobs.StateRunning)
	cs.crashed.Store(true)
	crashClose(m)
	return dir, fast.ID, slow.ID
}

// TestRecoveryReassignedNotRerun: with an Owns predicate rejecting every
// job — how cmd/grserved opens the manager on a -join worker — recovery
// re-runs nothing, records the in-flight job as failed with ErrReassigned,
// still reloads terminal jobs, and counts the outcome (CLUSTER.md §6.4).
func TestRecoveryReassignedNotRerun(t *testing.T) {
	dir, doneID, inflightID := crashWithInFlight(t)

	var replays atomic.Int64
	runner := graphrealize.NewRunner(2)
	backend := &fakeBackend{
		submit: runner.SubmitCtx,
		replay: func(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error) {
			replays.Add(1)
			return runner.SubmitReplayCtx(ctx, j)
		},
	}
	m := openManager(t, jobs.Config{
		Backend: backend,
		Store:   openFileStore(t, dir),
		Owns:    func(graphrealize.Job) bool { return false },
	})
	defer closeNow(t, m)

	if got := replays.Load(); got != 0 {
		t.Fatalf("reassigned job was replayed %d times; §6.4 forbids re-running it here", got)
	}

	// Terminal jobs always reload: a finished result is correct wherever it
	// is read.
	done, err := m.Get(doneID)
	if err != nil || done.State != jobs.StateDone || !done.Recovered {
		t.Fatalf("terminal job after owned-elsewhere recovery: %+v, %v", done, err)
	}

	// The in-flight job is retained as failed — visible, never dropped.
	snap, err := m.Get(inflightID)
	if err != nil {
		t.Fatalf("reassigned job vanished: %v", err)
	}
	if snap.State != jobs.StateFailed || !snap.Recovered {
		t.Fatalf("reassigned job state = %+v, want recovered failed", snap)
	}
	if snap.Err == nil || !errors.Is(snap.Err, jobs.ErrReassigned) {
		t.Fatalf("reassigned job error = %v, want ErrReassigned", snap.Err)
	}

	st := m.StatsSnapshot()
	if st.RecoveredReassigned != 1 || st.RecoveredRequeued != 0 || st.RecoveredTerminal != 1 {
		t.Fatalf("recovery counters = %+v, want 1 reassigned, 0 requeued, 1 terminal", st)
	}
}

// TestRecoveryOwnsSelective: the predicate is per-job — an owned in-flight
// job still replays while an unowned one is reassigned, so a future
// ownership rule finer than all-or-nothing composes with recovery as-is.
func TestRecoveryOwnsSelective(t *testing.T) {
	dir, _, inflightID := crashWithInFlight(t)

	runner := graphrealize.NewRunner(2)
	m := openManager(t, jobs.Config{
		Backend: runner,
		Store:   openFileStore(t, dir),
		// Own exactly the crashed in-flight job's shape (seed 5).
		Owns: func(j graphrealize.Job) bool { return j.Opt != nil && j.Opt.Seed == 5 },
	})
	defer closeNow(t, m)

	snap := waitStateFor(t, m, inflightID, jobs.StateDone, 60*time.Second)
	if !snap.Recovered {
		t.Fatalf("owned in-flight job not marked recovered: %+v", snap)
	}
	st := m.StatsSnapshot()
	if st.RecoveredRequeued != 1 || st.RecoveredReassigned != 0 {
		t.Fatalf("recovery counters = %+v, want the owned job requeued", st)
	}
}

// TestReassignedSurvivesSecondRestart: the ErrReassigned verdict is itself
// durable — after another restart the job reloads as a terminal failure
// (CLUSTER.md §6.4), not as a fresh in-flight record.
func TestReassignedSurvivesSecondRestart(t *testing.T) {
	dir, _, inflightID := crashWithInFlight(t)

	m1 := openManager(t, jobs.Config{
		Backend: instantBackend(),
		Store:   openFileStore(t, dir),
		Owns:    func(graphrealize.Job) bool { return false },
	})
	closeNow(t, m1)

	m2 := openManager(t, jobs.Config{Backend: instantBackend(), Store: openFileStore(t, dir)})
	defer closeNow(t, m2)
	snap, err := m2.Get(inflightID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StateFailed {
		t.Fatalf("reassigned job after second restart = %+v, want failed", snap)
	}
	if snap.Err == nil || !strings.Contains(snap.Err.Error(), "reassigned") {
		t.Fatalf("reassigned error string lost across restart: %v", snap.Err)
	}
	if st := m2.StatsSnapshot(); st.RecoveredRequeued != 0 {
		t.Fatalf("terminal reassigned job was requeued on second restart: %+v", st)
	}
}
