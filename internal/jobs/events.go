package jobs

// events.go is the subscriber side of progress streaming. The engine's
// driver goroutine posts coalescing wake-ups (record.notifyAll); each
// subscription runs a pump goroutine that turns wake-ups into a deduplicated
// stream of Events built from state snapshots. Because events are derived
// from snapshots rather than queued by the producer, a slow consumer can
// only ever skip intermediate progress — never the terminal transition — and
// the engine never blocks on a subscriber.

import "sync"

// Event is one entry in a job's event stream. Progress events carry the
// rounds/messages watermark; the final event has Terminal set and reflects
// the job's terminal state.
type Event struct {
	JobID    string
	TraceID  string // request-correlation ID, "" when the submitter sent none
	State    State
	Round    int
	Messages int
	Terminal bool
	Err      string // terminal failure/cancellation detail, "" otherwise
}

// eventOf projects a snapshot onto the wire event.
func eventOf(snap Snapshot) Event {
	ev := Event{
		JobID:    snap.ID,
		TraceID:  snap.TraceID,
		State:    snap.State,
		Round:    snap.Round,
		Messages: snap.Messages,
		Terminal: snap.State.Terminal(),
	}
	if snap.Err != nil {
		ev.Err = snap.Err.Error()
	}
	return ev
}

// Subscribe opens an event stream for a job: the current state immediately,
// then every observable change until a terminal event, after which the
// channel is closed. The returned cancel function detaches the subscription
// (safe to call multiple times, and required even after the channel closes).
// Subscribing to an already-terminal job yields exactly its terminal event.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	rec, ok := m.ledger.get(id)
	if !ok {
		return nil, nil, ErrNotFound
	}
	sig := make(chan struct{}, 1)
	rec.addSub(sig)
	m.subscribers.Add(1)
	stop := make(chan struct{})
	out := make(chan Event)
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		defer func() {
			rec.removeSub(sig)
			m.subscribers.Add(-1)
			close(out)
		}()
		var last Event
		first := true
		for {
			ev := eventOf(rec.snapshot())
			if first || ev != last {
				select {
				case out <- ev:
					last, first = ev, false
				case <-stop:
					return
				}
			}
			if ev.Terminal {
				return
			}
			select {
			case <-sig:
			case <-stop:
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	return out, cancel, nil
}
