package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"graphrealize"
	"graphrealize/internal/wire"
)

// store.go is the durability contract of the job subsystem: a Store receives
// every externally meaningful lifecycle event and can replay the surviving
// set on open. The Manager treats the Store as a shadow of its in-memory
// ledger — the ledger serves traffic, the Store makes restarts boring.
//
// Two implementations ship: MemStore (the historical behaviour — nothing
// survives the process) and FileStore (append-only WAL plus compacted
// snapshots, wal.go/snapshot.go/filestore.go).

// PersistedOptions is the JSON-serializable projection of
// graphrealize.Options: the same field set as the Runner's cache key — every
// outcome-affecting field plus the scheduler driver (outcome-neutral, but a
// recovered job should re-run on the driver its client chose) — and nothing
// else. In particular the Progress hook is reattached by the Manager on
// recovery, never persisted.
type PersistedOptions struct {
	Model     int   `json:"model,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Strict    bool  `json:"strict,omitempty"`
	CapMul    int   `json:"cap_mul,omitempty"`
	Sort      int   `json:"sort,omitempty"`
	MaxRounds int   `json:"max_rounds,omitempty"`
	Scheduler int   `json:"scheduler,omitempty"`
}

func persistedOptions(o *graphrealize.Options) *PersistedOptions {
	if o == nil {
		return nil
	}
	return &PersistedOptions{
		Model:     int(o.Model),
		Seed:      o.Seed,
		Strict:    o.Strict,
		CapMul:    o.CapMul,
		Sort:      int(o.Sort),
		MaxRounds: o.MaxRounds,
		Scheduler: int(o.Scheduler),
	}
}

func (p *PersistedOptions) options() *graphrealize.Options {
	if p == nil {
		return nil
	}
	return &graphrealize.Options{
		Model:     graphrealize.Model(p.Model),
		Seed:      p.Seed,
		Strict:    p.Strict,
		CapMul:    p.CapMul,
		Sort:      graphrealize.SortMethod(p.Sort),
		MaxRounds: p.MaxRounds,
		Scheduler: graphrealize.Scheduler(p.Scheduler),
	}
}

// PersistedResult is a done job's realization in durable form: the graph as
// a graphwire stream plus the run statistics. Stats is stored by value —
// it is plain integers.
type PersistedResult struct {
	N int `json:"n"`
	// GraphWire is a complete single-graph graphwire stream — header,
	// META + ADJ chunks, END (WIRE.md §10) — base64-coded by JSON. It is the
	// written form for every new record; its per-chunk CRCs make at-rest
	// byte comparison and corruption detection cheap.
	GraphWire []byte `json:"graph_wire,omitempty"`
	// Edges is the JSON-era (u < v) edge list. It is never written anymore,
	// only read: the version sniff on recovery is simply which of the two
	// graph fields a record carries, GraphWire preferred (WIRE.md §8), so
	// data directories from before the wire format recover unchanged.
	Edges    [][2]int           `json:"edges,omitempty"`
	Envelope []int              `json:"envelope,omitempty"`
	Stats    graphrealize.Stats `json:"stats"`
	Cached   bool               `json:"cached,omitempty"`
}

func persistedResult(res *graphrealize.Result) *PersistedResult {
	if res == nil || res.Graph == nil {
		return nil
	}
	out := &PersistedResult{
		N:        res.Graph.N,
		Envelope: res.Envelope,
		Cached:   res.Cached,
	}
	if res.Stats != nil {
		out.Stats = *res.Stats
	}
	if b, err := wire.EncodeGraph(res.Graph.N, res.Graph.Adj); err == nil {
		out.GraphWire = b
	} else {
		// A canonical Graph always encodes; if one ever does not, keep the
		// result durable in the legacy form rather than lose it.
		out.Edges = res.Graph.Edges()
	}
	return out
}

// result rebuilds the shared Result a recovered done-job serves, from
// whichever graph form the record carries (wire-era GraphWire, or the
// JSON-era Edges list).
func (p *PersistedResult) result(j graphrealize.Job) (*graphrealize.Result, error) {
	if p == nil {
		return nil, nil
	}
	var g *graphrealize.Graph
	if len(p.GraphWire) > 0 {
		msg, err := wire.Decode(bytes.NewReader(p.GraphWire))
		if err != nil {
			return nil, fmt.Errorf("jobs: persisted graph_wire: %w", err)
		}
		if !msg.HasGraph || msg.N != p.N {
			return nil, fmt.Errorf("jobs: persisted graph_wire carries n=%d (HasGraph=%v), record says n=%d", msg.N, msg.HasGraph, p.N)
		}
		g = &graphrealize.Graph{N: msg.N, Adj: msg.Adj}
	} else {
		g = &graphrealize.Graph{N: p.N, Adj: make([][]int, p.N)}
		for _, e := range p.Edges {
			if e[0] < 0 || e[0] >= p.N || e[1] < 0 || e[1] >= p.N {
				return nil, fmt.Errorf("jobs: persisted edge %v out of range [0,%d)", e, p.N)
			}
			g.Adj[e[0]] = append(g.Adj[e[0]], e[1])
			g.Adj[e[1]] = append(g.Adj[e[1]], e[0])
		}
		for _, a := range g.Adj {
			sort.Ints(a)
		}
	}
	st := p.Stats
	return &graphrealize.Result{Job: j, Graph: g, Envelope: p.Envelope, Stats: &st, Cached: p.Cached}, nil
}

// PersistedJob is one job's full durable state: enough to serve a terminal
// job's result forever, and enough to re-run a non-terminal job
// deterministically (the recorded seed travels in Options).
type PersistedJob struct {
	ID      string            `json:"id"`
	Kind    int               `json:"kind"`
	Seq     []int             `json:"seq"`
	Label   string            `json:"label,omitempty"`
	TraceID string            `json:"trace_id,omitempty"`
	Timeout int64             `json:"timeout_ns,omitempty"`
	Options *PersistedOptions `json:"options,omitempty"`

	State    State            `json:"state"`
	Created  time.Time        `json:"created"`
	Started  time.Time        `json:"started,omitzero"`
	Finished time.Time        `json:"finished,omitzero"`
	Error    string           `json:"error,omitempty"`
	Result   *PersistedResult `json:"result,omitempty"`
}

// jobSpec rebuilds the Runner job a recovered record re-runs (or is keyed
// by). The Options carry the recorded seed, so the re-run is deterministic.
func (p *PersistedJob) jobSpec() graphrealize.Job {
	return graphrealize.Job{
		Kind:    graphrealize.JobKind(p.Kind),
		Seq:     p.Seq,
		Opt:     p.Options.options(),
		Label:   p.Label,
		TraceID: p.TraceID,
		Timeout: time.Duration(p.Timeout),
	}
}

// persistedJob projects a record (plus an explicit outcome, for the
// persist-before-publish terminal path) onto its durable form.
func persistedJob(rec *record, st State, jerr error, res *graphrealize.Result, finished time.Time) PersistedJob {
	rec.mu.Lock()
	started := rec.started
	rec.mu.Unlock()
	pj := PersistedJob{
		ID:       rec.id,
		Kind:     int(rec.job.Kind),
		Seq:      rec.job.Seq,
		Label:    rec.job.Label,
		TraceID:  rec.job.TraceID,
		Timeout:  int64(rec.job.Timeout),
		Options:  persistedOptions(rec.job.Opt),
		State:    st,
		Created:  rec.created,
		Started:  started,
		Finished: finished,
	}
	if jerr != nil {
		pj.Error = jerr.Error()
	}
	if st == StateDone {
		pj.Result = persistedResult(res)
	}
	return pj
}

// StoreStats is a point-in-time snapshot of a Store's durability gauges.
type StoreStats struct {
	Durable      bool  // false for MemStore
	WALRecords   int64 // records appended to the current WAL segment
	WALBytes     int64 // bytes in the current WAL segment
	Compactions  int64 // snapshots written since open
	Recovered    int   // jobs reloaded at open
	ReplayErrors int   // corrupt/truncated WAL records dropped at open
}

// Store persists job lifecycle events and replays them on open. All methods
// must be safe for concurrent use; LogTerminal must be durable (synced to
// stable storage) before it returns, the other appends may be best-effort.
// A Store error never fails the in-memory operation that triggered it — the
// Manager counts it (Stats.PersistErrors) and serves on.
type Store interface {
	// Recover returns every job surviving in the store, oldest first. It is
	// called once, before any Log call.
	Recover() ([]PersistedJob, error)
	// LogSubmitted appends a freshly admitted job (state queued, no result).
	LogSubmitted(pj PersistedJob) error
	// LogTerminal appends a job's terminal state (done jobs carry their
	// result) and syncs it to stable storage before returning.
	LogTerminal(pj PersistedJob) error
	// LogExpired appends the first GC phase for one job.
	LogExpired(id string) error
	// LogRemoved appends the second GC phase (or a capacity eviction).
	LogRemoved(ids []string) error
	// Compact replaces the store's contents with the given live set: a
	// snapshot is written and the WAL truncated, physically dropping
	// removed jobs from disk.
	Compact(live []PersistedJob) error
	// Stats reports the durability gauges for /metrics.
	Stats() StoreStats
	// Close releases resources. No Log/Compact calls may follow.
	Close() error
}

// MemStore is the non-durable Store: every operation is a no-op and nothing
// survives a restart. It is the default, preserving the pre-persistence
// behaviour of the job subsystem exactly.
type MemStore struct{}

// Recover returns no jobs: memory starts empty.
func (MemStore) Recover() ([]PersistedJob, error) { return nil, nil }

// LogSubmitted is a no-op.
func (MemStore) LogSubmitted(PersistedJob) error { return nil }

// LogTerminal is a no-op.
func (MemStore) LogTerminal(PersistedJob) error { return nil }

// LogExpired is a no-op.
func (MemStore) LogExpired(string) error { return nil }

// LogRemoved is a no-op.
func (MemStore) LogRemoved([]string) error { return nil }

// Compact is a no-op.
func (MemStore) Compact([]PersistedJob) error { return nil }

// Stats reports a non-durable store with empty gauges.
func (MemStore) Stats() StoreStats { return StoreStats{} }

// Close is a no-op.
func (MemStore) Close() error { return nil }

// errStoreClosed guards Log calls after Close (a programming error surfaced
// as a counted persist error rather than a panic).
var errStoreClosed = errors.New("jobs: store is closed")
