package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// wal_test.go is the white-box half of the persistence tests: the WAL line
// format, its checksum discipline, and the replay guarantee that corruption
// or truncation costs only the damaged suffix. The black-box recovery tests
// (manager + FileStore) live in persist_test.go.

func walJob(id string, st State) PersistedJob {
	return PersistedJob{
		ID:      id,
		Kind:    0,
		Seq:     []int{2, 2, 2},
		State:   st,
		Created: time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC),
	}
}

func writeWALRecords(t *testing.T, path string, recs ...walRecord) {
	t.Helper()
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j1 := walJob("j1-aa", StateQueued)
	j2 := walJob("j1-aa", StateDone)
	writeWALRecords(t, path,
		walRecord{Op: opSubmit, Job: &j1},
		walRecord{Op: opTerminal, Job: &j2},
		walRecord{Op: opExpired, ID: "j1-aa"},
		walRecord{Op: opRemoved, IDs: []string{"j1-aa"}},
	)
	recs, dropped, err := replayWAL(path)
	if err != nil || dropped != 0 {
		t.Fatalf("clean replay: dropped=%d err=%v", dropped, err)
	}
	if len(recs) != 4 {
		t.Fatalf("want 4 records, got %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if recs[0].Op != opSubmit || recs[0].Job.State != StateQueued {
		t.Fatalf("submit record mangled: %+v", recs[0])
	}
	if recs[1].Job.State != StateDone || recs[2].ID != "j1-aa" || recs[3].IDs[0] != "j1-aa" {
		t.Fatal("payloads mangled in round trip")
	}
}

func TestWALReplayMissingFileIsEmpty(t *testing.T) {
	recs, dropped, err := replayWAL(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || dropped != 0 || len(recs) != 0 {
		t.Fatalf("missing WAL must be empty: %v %d %d", err, dropped, len(recs))
	}
}

// TestWALCorruptMiddleDropsOnlyThatRecord: a flipped byte invalidates that
// record's checksum; replay drops it, counts it, and resynchronizes at the
// next newline — the intact records on both sides survive.
func TestWALCorruptMiddleDropsOnlyThatRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j := walJob("j1-aa", StateQueued)
	writeWALRecords(t, path,
		walRecord{Op: opSubmit, Job: &j},
		walRecord{Op: opExpired, ID: "j1-aa"},
		walRecord{Op: opRemoved, IDs: []string{"j1-aa"}},
	)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(buf, []byte("\n"))
	// Flip a payload byte in the second record (past the checksum field).
	lines[1][15] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != opSubmit || recs[1].Op != opRemoved {
		t.Fatalf("want the two intact records, got %+v", recs)
	}
	if dropped != 1 {
		t.Fatalf("want exactly the corrupt record dropped, got %d", dropped)
	}
}

// TestWALTornTailRealignedOnReopen: a segment whose previous process died
// mid-append (no trailing newline) is terminated on reopen, so the first
// fresh append cannot merge into the torn fragment and be lost with it.
func TestWALTornTailRealignedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j := walJob("j1-aa", StateQueued)
	writeWALRecords(t, path, walRecord{Op: opSubmit, Job: &j})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef torn-fragment-without-newline"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, err := openWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Op: opExpired, ID: "j1-aa"}, true); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != opSubmit || recs[1].Op != opExpired {
		t.Fatalf("the post-reopen append must survive the torn tail, got %+v", recs)
	}
	if dropped != 1 {
		t.Fatalf("want exactly the torn fragment dropped, got %d", dropped)
	}
}

// TestWALTruncatedTailIsDropped: a torn final write (crash mid-append) loses
// only that record.
func TestWALTruncatedTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	j := walJob("j1-aa", StateQueued)
	done := walJob("j1-aa", StateDone)
	writeWALRecords(t, path,
		walRecord{Op: opSubmit, Job: &j},
		walRecord{Op: opTerminal, Job: &done},
	)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the last record.
	if err := os.WriteFile(path, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != opSubmit || dropped != 1 {
		t.Fatalf("want intact prefix + 1 dropped, got %d records, %d dropped", len(recs), dropped)
	}
}

func TestWALResetAfterCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	j := walJob("j1-aa", StateQueued)
	if err := w.append(walRecord{Op: opSubmit, Job: &j}, false); err != nil {
		t.Fatal(err)
	}
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	if recs, bytes := w.stats(); recs != 0 || bytes != 0 {
		t.Fatalf("reset must zero the segment gauges, got %d/%d", recs, bytes)
	}
	// Sequence numbering continues across the reset.
	if err := w.append(walRecord{Op: opExpired, ID: "j1-aa"}, false); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := replayWAL(path)
	if err != nil || dropped != 0 {
		t.Fatalf("replay after reset: dropped=%d err=%v", dropped, err)
	}
	if len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("want one post-reset record with continued seq, got %+v", recs)
	}
}

// FuzzWALReplay: replay must never panic or error on arbitrary file
// contents, and — the prefix guarantee — a valid log with an arbitrary
// suffix appended must replay at least the intact records it started with.
func FuzzWALReplay(f *testing.F) {
	j := walJob("j7-ff", StateQueued)
	valid, err := encodeWALRecord(walRecord{Seq: 1, Op: opSubmit, Job: &j})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), []byte("deadbeef not-json\n")...))
	f.Add([]byte("00000000 {}\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, _, err := replayWAL(path)
		if err != nil {
			t.Fatalf("replay must tolerate arbitrary contents, got %v", err)
		}
		// Whatever survives must be checksum-clean re-encodable records.
		for _, rec := range recs {
			if _, err := encodeWALRecord(rec); err != nil {
				t.Fatalf("surviving record is not re-encodable: %v", err)
			}
		}
		// The prefix guarantee: prepending one valid record to the fuzzed
		// bytes must yield at least that record.
		withPrefix := append(append([]byte{}, valid...), data...)
		if err := os.WriteFile(path, withPrefix, 0o644); err != nil {
			t.Skip()
		}
		recs, _, err = replayWAL(path)
		if err != nil {
			t.Fatalf("replay with valid prefix: %v", err)
		}
		if len(recs) == 0 || recs[0].Op != opSubmit || recs[0].Job == nil || recs[0].Job.ID != "j7-ff" {
			t.Fatalf("valid prefix record lost: %+v", recs)
		}
	})
}
