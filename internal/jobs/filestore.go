package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// filestore.go is the durable Store: a data directory holding
//
//	snapshot.json  — compacted live set at one WAL sequence number
//	wal.log        — lifecycle events appended since that snapshot
//
// Recovery order: snapshot first, then the WAL replayed on top. The WAL is
// order-tolerant on the one race recovery can observe (an "expired" append
// racing a terminal append is ignored for a job not yet terminal); every
// other op applies by last-writer-wins on the job ID. Compaction writes a
// fresh snapshot and truncates the WAL under one lock, so appends never
// interleave with a half-taken snapshot.

// Default FileStore file names.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
)

// FileStore is the file-backed Store. Create with OpenFileStore.
type FileStore struct {
	dir string

	// mu orders appends (read lock — the walWriter serializes them among
	// themselves) against compaction's snapshot + WAL reset (write lock),
	// so no record can land in a segment after its snapshot cut was taken
	// and then be truncated away.
	mu  sync.RWMutex
	wal *walWriter

	recovered    []PersistedJob
	replayErrors int
	compactions  atomic.Int64
	closed       atomic.Bool
}

// OpenFileStore opens (creating if needed) a durable job store in dir and
// performs recovery: the snapshot is loaded, the WAL replayed on top, and
// the surviving jobs are held for the Manager's Recover call.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create data dir: %w", err)
	}
	snap, err := loadSnapshot(dir, snapshotFileName)
	if err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, walFileName)
	recs, dropped, err := replayWAL(walPath)
	if err != nil {
		return nil, fmt.Errorf("jobs: replay wal: %w", err)
	}

	byID := make(map[string]*PersistedJob, len(snap.Jobs)+len(recs))
	for i := range snap.Jobs {
		pj := snap.Jobs[i]
		byID[pj.ID] = &pj
	}
	lastSeq := snap.WALSeq
	for _, rec := range recs {
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		switch rec.Op {
		case opSubmit, opTerminal:
			if rec.Job != nil {
				pj := *rec.Job
				byID[pj.ID] = &pj
			}
		case opExpired:
			// Only age out a job recovery knows to be terminal: an expired
			// append can land before its terminal append under a tiny
			// retention (the GC races the watch goroutine's durable write),
			// and replaying it onto a queued job would wrongly bury a run
			// that should be re-queued.
			if pj, ok := byID[rec.ID]; ok && pj.State.Terminal() {
				pj.State = StateExpired
			}
		case opRemoved:
			for _, id := range rec.IDs {
				delete(byID, id)
			}
		}
	}

	live := make([]PersistedJob, 0, len(byID))
	for _, pj := range byID {
		live = append(live, *pj)
	}
	sort.Slice(live, func(i, j int) bool {
		if !live[i].Created.Equal(live[j].Created) {
			return live[i].Created.Before(live[j].Created)
		}
		return live[i].ID < live[j].ID
	})

	wal, err := openWAL(walPath, lastSeq)
	if err != nil {
		return nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	return &FileStore{dir: dir, wal: wal, recovered: live, replayErrors: dropped}, nil
}

// Recover returns the jobs surviving on disk, oldest first.
func (s *FileStore) Recover() ([]PersistedJob, error) {
	return s.recovered, nil
}

// LogSubmitted appends an admission record (best-effort: not synced — a
// crash may forget a job that was never acknowledged as terminal).
func (s *FileStore) LogSubmitted(pj PersistedJob) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.append(walRecord{Op: opSubmit, Job: &pj}, false)
}

// LogTerminal appends a terminal record and fsyncs before returning: once
// the Manager publishes the state a client can observe, it is durable.
func (s *FileStore) LogTerminal(pj PersistedJob) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.append(walRecord{Op: opTerminal, Job: &pj}, true)
}

// LogExpired appends the first GC phase (best-effort).
func (s *FileStore) LogExpired(id string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.append(walRecord{Op: opExpired, ID: id}, false)
}

// LogRemoved appends the second GC phase or a capacity eviction
// (best-effort; the next compaction physically drops the bytes).
func (s *FileStore) LogRemoved(ids []string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal.append(walRecord{Op: opRemoved, IDs: ids}, false)
}

// Compact atomically replaces the snapshot with the given live set and
// truncates the WAL. The write lock holds appends out for the duration, so
// no record can land in the doomed segment after the snapshot cut. (The
// Manager additionally excludes its ledger-mutation + append pairs, so the
// live set it passes covers everything the segment recorded.)
func (s *FileStore) Compact(live []PersistedJob) error {
	if s.closed.Load() {
		return errStoreClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.mu.Lock()
	seq := s.wal.seq
	s.wal.mu.Unlock()
	if live == nil {
		live = []PersistedJob{}
	}
	snap := walSnapshot{Format: snapshotFormat, WALSeq: seq, SavedAt: time.Now(), Jobs: live}
	if err := writeSnapshot(s.dir, snapshotFileName, snap); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.compactions.Add(1)
	return nil
}

// Stats reports the durability gauges.
func (s *FileStore) Stats() StoreStats {
	records, bytes := s.wal.stats()
	return StoreStats{
		Durable:      true,
		WALRecords:   records,
		WALBytes:     bytes,
		Compactions:  s.compactions.Load(),
		Recovered:    len(s.recovered),
		ReplayErrors: s.replayErrors,
	}
}

// Close syncs and closes the WAL segment.
func (s *FileStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.wal.close()
}
