package jobs_test

import (
	"testing"
	"time"

	"graphrealize"
	"graphrealize/internal/jobs"
)

// trace_test.go pins request-trace propagation through the async layer: a
// submitted Job's TraceID must surface in snapshots and events, survive a
// restart via the durable log, and ride the recovered job spec.

func TestTraceIDInSnapshotAndEvents(t *testing.T) {
	m := jobs.New(jobs.Config{Backend: instantBackend()})
	defer closeNow(t, m)

	snap, err := m.Submit(graphrealize.Job{
		Kind: graphrealize.JobDegrees, Seq: []int{2, 2, 2},
		TraceID: "trace-xyz",
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.TraceID != "trace-xyz" {
		t.Fatalf("submit snapshot TraceID = %q, want trace-xyz", snap.TraceID)
	}
	final := waitState(t, m, snap.ID, jobs.StateDone)
	if final.TraceID != "trace-xyz" {
		t.Fatalf("terminal snapshot TraceID = %q, want trace-xyz", final.TraceID)
	}

	events, cancel, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for ev := range events {
		if ev.TraceID != "trace-xyz" {
			t.Fatalf("event TraceID = %q, want trace-xyz (event %+v)", ev.TraceID, ev)
		}
	}
}

func TestTraceIDSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(1), Store: openFileStore(t, dir)})
	snap, err := m.Submit(graphrealize.Job{
		Kind: graphrealize.JobDegrees, Seq: []int{2, 2, 2},
		Opt:     &graphrealize.Options{Seed: 5},
		TraceID: "trace-restart",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, jobs.StateDone)
	closeNow(t, m)

	m2 := openManager(t, jobs.Config{Backend: graphrealize.NewRunner(1), Store: openFileStore(t, dir)})
	defer closeNow(t, m2)
	got := waitStateFor(t, m2, snap.ID, jobs.StateDone, 5*time.Second)
	if got.TraceID != "trace-restart" {
		t.Fatalf("recovered snapshot TraceID = %q, want trace-restart", got.TraceID)
	}
	if !got.Recovered {
		t.Fatalf("job %s not marked recovered after restart", snap.ID)
	}
}
