package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// snapshot.go is the compaction half of the durable store: a snapshot is
// the full live job set at one WAL sequence number, written atomically
// (temp file + fsync + rename + directory fsync) so a crash mid-compaction
// leaves the previous snapshot intact. Recovery loads the snapshot first,
// then replays the WAL on top; compaction truncates the WAL once the
// snapshot that subsumes it is durable.

// snapshotFormat versions the on-disk layout; bump on incompatible change.
const snapshotFormat = 1

// walSnapshot is the snapshot file's JSON document.
type walSnapshot struct {
	Format  int            `json:"format"`
	WALSeq  int64          `json:"wal_seq"` // last WAL sequence folded in
	SavedAt time.Time      `json:"saved_at"`
	Jobs    []PersistedJob `json:"jobs"`
}

// writeSnapshot atomically replaces dir/name with the given snapshot.
func writeSnapshot(dir, name string, snap walSnapshot) error {
	buf, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		cleanup()
		return err
	}
	return syncDir(dir)
}

// loadSnapshot reads dir/name; a missing file is an empty snapshot. A
// corrupt snapshot is an error — it is the recovery baseline, and silently
// dropping it would discard every compacted job.
func loadSnapshot(dir, name string) (walSnapshot, error) {
	var snap walSnapshot
	buf, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil
		}
		return snap, err
	}
	if err := json.Unmarshal(buf, &snap); err != nil {
		return snap, fmt.Errorf("jobs: snapshot %s is corrupt: %w", name, err)
	}
	if snap.Format != snapshotFormat {
		return snap, fmt.Errorf("jobs: snapshot %s has format %d, want %d", name, snap.Format, snapshotFormat)
	}
	return snap, nil
}

// syncDir fsyncs a directory so a rename in it is durable. Best-effort on
// platforms where directories cannot be opened for sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	return d.Sync()
}
