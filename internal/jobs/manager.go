// Package jobs is the asynchronous job subsystem between the graphrealize
// Runner and the HTTP service: fire-and-poll realizations for workloads that
// outlive any one connection (large n, NCC0 connectivity's O~(Δ) rounds,
// multi-seed families).
//
// A Manager wraps Runner.SubmitCtx with server-generated job IDs, a
// lifecycle state machine (queued → running → done | failed | canceled →
// expired), round-level progress snapshots fed by the engine's per-barrier
// hook (ncc.Config.Progress, threaded through Options.Progress), coalescing
// subscriber fan-out for event streams, bounded retention with two-phase
// TTL garbage collection, and graceful drain on shutdown. Jobs run under a
// manager-owned context, so they survive the submitting connection closing
// and stop only via Cancel or drain — in both cases the engine unwinds at
// its next round barrier (ncc.ErrCanceled) and the job lands in
// StateCanceled.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphrealize"
)

// Errors returned by the Manager's entry points.
var (
	// ErrNotFound reports an unknown (or already garbage-collected) job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrShuttingDown reports a submission during drain.
	ErrShuttingDown = errors.New("jobs: manager is shutting down")
	// ErrTooManyJobs reports that the retention cap is full of live jobs —
	// backpressure, like the Runner's ErrQueueFull.
	ErrTooManyJobs = errors.New("jobs: retained job limit reached")
)

// Backend is the slice of the graphrealize.Runner API the Manager needs; an
// interface so tests can script admission and execution deterministically.
type Backend interface {
	SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	Stats() graphrealize.RunnerStats
}

// Config assembles a Manager.
type Config struct {
	// Backend executes jobs; typically a *graphrealize.Runner.
	Backend Backend
	// Retention is how long a terminal job stays fully queryable before the
	// GC marks it expired (default 5 minutes). Expired jobs are removed one
	// GC interval later.
	Retention time.Duration
	// GCInterval is the sweep period (default Retention/4, capped at 30s).
	GCInterval time.Duration
	// MaxJobs caps retained records. At the cap a submission first evicts
	// the oldest finished job; if every retained job is live it is refused
	// with ErrTooManyJobs. Default 4096.
	MaxJobs int
	// JobTimeout overrides the backend Runner's per-job deadline for async
	// jobs: positive caps each job at the given duration, negative disables
	// the deadline, zero keeps the Runner's own default. Async jobs exist
	// for runs too long for a held-open connection, so they usually want a
	// far larger deadline than the synchronous API.
	JobTimeout time.Duration
}

// Manager owns the asynchronous job lifecycle. Create with New, submit with
// Submit, and call Close exactly once on shutdown.
type Manager struct {
	cfg   Config
	store *store

	// baseCtx parents every job's context: jobs are deliberately detached
	// from request contexts so they survive client disconnects. kill cancels
	// it when the drain budget runs out.
	baseCtx context.Context
	kill    context.CancelFunc

	seq         atomic.Int64
	subscribers atomic.Int64
	evictions   atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // one unit per job between submit and finish

	gcStop chan struct{}
	gcDone chan struct{}
}

// New creates a Manager and starts its GC loop.
func New(cfg Config) *Manager {
	if cfg.Backend == nil {
		panic("jobs: Config.Backend is required")
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 5 * time.Minute
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.Retention / 4
		if cfg.GCInterval > 30*time.Second {
			cfg.GCInterval = 30 * time.Second
		}
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	ctx, kill := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		store:   newStore(),
		baseCtx: ctx,
		kill:    kill,
		gcStop:  make(chan struct{}),
		gcDone:  make(chan struct{}),
	}
	go m.gcLoop()
	return m
}

// newID mints an unguessable server-generated job ID; the sequence prefix
// keeps IDs unique even if the random source ever repeated.
func (m *Manager) newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to the
		// sequence alone rather than minting a guessable suffix.
		return fmt.Sprintf("j%d", m.seq.Add(1))
	}
	return fmt.Sprintf("j%d-%s", m.seq.Add(1), hex.EncodeToString(b[:]))
}

// Submit admits one job for asynchronous execution and returns its initial
// snapshot. The Runner's backpressure passes through untranslated: a
// saturated backend returns graphrealize.ErrQueueFull and nothing is
// retained. The job runs under the Manager's context, not the caller's.
func (m *Manager) Submit(j graphrealize.Job) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrShuttingDown
	}
	// Check capacity without evicting yet: eviction must not happen until
	// the backend has actually admitted the new job, or a rejected
	// submission would destroy a retained result for nothing.
	if m.store.len() >= m.cfg.MaxJobs && !m.store.hasFinished() {
		return Snapshot{}, ErrTooManyJobs
	}
	rec := &record{
		id:      m.newID(),
		job:     j,
		created: time.Now(),
		state:   StateQueued,
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	rec.cancel = cancel

	// Run a private copy of the job whose Options carry the progress hook;
	// the caller's Options are never mutated, and a caller-supplied hook is
	// chained after the record's, not overwritten. The hook is excluded from
	// the Runner's cache key, so a cache-served job simply completes with no
	// progress barriers.
	run := j
	var opt graphrealize.Options
	if j.Opt != nil {
		opt = *j.Opt
	}
	if caller := opt.Progress; caller != nil {
		opt.Progress = func(round, msgs int) {
			rec.reportProgress(round, msgs)
			caller(round, msgs)
		}
	} else {
		opt.Progress = rec.reportProgress
	}
	run.Opt = &opt
	if m.cfg.JobTimeout != 0 && run.Timeout == 0 {
		run.Timeout = m.cfg.JobTimeout
	}

	ch, err := m.cfg.Backend.SubmitCtx(ctx, run)
	if err != nil {
		cancel()
		return Snapshot{}, err
	}
	// Admitted: now make room if still needed. A concurrent GC sweep may
	// have freed space (or removed the last finished record) since the check
	// above; in the latter case the cap is exceeded by one record until the
	// next sweep — a soft bound, preferable to canceling an admitted job.
	if m.store.len() >= m.cfg.MaxJobs && m.store.evictOldestFinished() {
		m.evictions.Add(1)
	}
	m.store.put(rec)
	m.wg.Add(1)
	go m.watch(rec, ch)
	return rec.snapshot(), nil
}

// watch waits for one job's result and records the terminal transition.
func (m *Manager) watch(rec *record, ch <-chan graphrealize.Result) {
	defer m.wg.Done()
	rec.finish(<-ch)
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	rec, ok := m.store.get(id)
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return rec.snapshot(), nil
}

// Cancel requests cancellation of a live job: its context is canceled and
// the engine stops at the next round barrier. It reports whether the request
// actually initiated a cancellation (false: the job was already terminal —
// Cancel is idempotent and never an error on a known job).
func (m *Manager) Cancel(id string) (Snapshot, bool, error) {
	rec, ok := m.store.get(id)
	if !ok {
		return Snapshot{}, false, ErrNotFound
	}
	if rec.currentState().Terminal() {
		return rec.snapshot(), false, nil
	}
	rec.cancel()
	return rec.snapshot(), true, nil
}

// List returns snapshots newest-first, optionally filtered by state.
// limit ≤ 0 means no limit.
func (m *Manager) List(state State, limit int) []Snapshot {
	var out []Snapshot
	for _, rec := range m.store.all() {
		snap := rec.snapshot()
		if state != "" && snap.State != state {
			continue
		}
		out = append(out, snap)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Stats is a point-in-time snapshot of the Manager's gauges and counters.
type Stats struct {
	Jobs        map[State]int // retained jobs by state (every state present)
	Retained    int           // total retained records
	Subscribers int64         // open event subscriptions
	Evictions   int64         // records removed by GC or capacity eviction
}

// StatsSnapshot returns the Manager's gauges for monitoring.
func (m *Manager) StatsSnapshot() Stats {
	counts := m.store.counts()
	return Stats{
		Jobs:        counts,
		Retained:    m.store.len(),
		Subscribers: m.subscribers.Load(),
		Evictions:   m.evictions.Load(),
	}
}

// gcLoop sweeps retention on a ticker until Close.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.GC(time.Now())
		case <-m.gcStop:
			return
		}
	}
}

// GC runs one retention sweep at the given instant and returns the number of
// records removed. Terminal jobs older than Retention become expired;
// already-expired records are removed (subsequent Gets return ErrNotFound).
// Exported so tests and embedders can drive retention deterministically.
func (m *Manager) GC(now time.Time) int {
	toExpire, removed := m.store.sweep(now, m.cfg.Retention)
	for _, rec := range toExpire {
		rec.expire()
	}
	m.evictions.Add(int64(removed))
	return removed
}

// Close drains the Manager: submissions are refused, the GC stops, and
// running jobs get until ctx's deadline to finish on their own. Jobs still
// live at the deadline are canceled (the engine unwinds at its next round
// barrier, so the forced phase is short) and Close waits for them to record
// their terminal state. It returns ctx.Err() if the force phase was needed.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	close(m.gcStop)
	<-m.gcDone

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.kill()
	<-done
	return ctx.Err()
}
