// Package jobs is the asynchronous job subsystem between the graphrealize
// Runner and the HTTP service: fire-and-poll realizations for workloads that
// outlive any one connection (large n, NCC0 connectivity's O~(Δ) rounds,
// multi-seed families).
//
// A Manager wraps Runner.SubmitCtx with server-generated job IDs, a
// lifecycle state machine (queued → running → done | failed | canceled →
// expired), round-level progress snapshots fed by the engine's per-barrier
// hook (ncc.Config.Progress, threaded through Options.Progress), coalescing
// subscriber fan-out for event streams, bounded retention with two-phase
// TTL garbage collection, and graceful drain on shutdown. Jobs run under a
// manager-owned context, so they survive the submitting connection closing
// and stop only via Cancel or drain — in both cases the engine unwinds at
// its next round barrier (ncc.ErrCanceled) and the job lands in
// StateCanceled.
//
// With a durable Store configured (FileStore), every lifecycle event is
// shadowed to disk: completed jobs survive a crash with their results, and
// jobs that were queued or running at crash time are re-queued on Open with
// their recorded seeds, so the recovered runs realize bit-identical graphs.
// Result graphs rest in the graphwire binary encoding (internal/wire,
// WIRE.md §10); legacy stores whose records carry JSON edge lists are still
// read and are rewritten in the wire form by the first compaction.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphrealize"
)

// Errors returned by the Manager's entry points.
var (
	// ErrNotFound reports an unknown (or already garbage-collected) job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrShuttingDown reports a submission during drain.
	ErrShuttingDown = errors.New("jobs: manager is shutting down")
	// ErrTooManyJobs reports that the retention cap is full of live jobs —
	// backpressure, like the Runner's ErrQueueFull.
	ErrTooManyJobs = errors.New("jobs: retained job limit reached")
	// ErrReassigned marks an in-flight job found at recovery that this
	// process no longer owns (Config.Owns said no): in a cluster the
	// coordinator re-homed it to another worker while this one was down, so
	// re-running it here would execute the job twice (CLUSTER.md §6.4). The
	// job is retained as failed — visible, never silently dropped — and the
	// authoritative result lives with the coordinator.
	ErrReassigned = errors.New("jobs: job reassigned during recovery (not re-run here)")
)

// Backend is the slice of the graphrealize.Runner API the Manager needs; an
// interface so tests can script admission and execution deterministically.
type Backend interface {
	SubmitCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	// SubmitReplayCtx re-admits a job recovered from the durable store,
	// exempt from the admission bound: the job was admitted before the
	// crash, so a colder post-restart queue must not refuse it.
	SubmitReplayCtx(ctx context.Context, j graphrealize.Job) (<-chan graphrealize.Result, error)
	Stats() graphrealize.RunnerStats
}

// Config assembles a Manager.
type Config struct {
	// Backend executes jobs; typically a *graphrealize.Runner.
	Backend Backend
	// Retention is how long a terminal job stays fully queryable before the
	// GC marks it expired (default 5 minutes). Expired jobs are removed one
	// GC interval later.
	Retention time.Duration
	// GCInterval is the sweep period (default Retention/4, capped at 30s).
	GCInterval time.Duration
	// MaxJobs caps retained records. At the cap a submission first evicts
	// the oldest finished job; if every retained job is live it is refused
	// with ErrTooManyJobs. Default 4096.
	MaxJobs int
	// JobTimeout overrides the backend Runner's per-job deadline for async
	// jobs: positive caps each job at the given duration, negative disables
	// the deadline, zero keeps the Runner's own default. Async jobs exist
	// for runs too long for a held-open connection, so they usually want a
	// far larger deadline than the synchronous API.
	JobTimeout time.Duration
	// Store shadows the lifecycle to durable storage for crash recovery;
	// nil selects MemStore (nothing survives a restart — the historical
	// behaviour).
	Store Store
	// CompactBytes is the WAL size that triggers a snapshot compaction
	// outside of GC (default 4 MiB). Ignored by non-durable stores.
	CompactBytes int64
	// Owns, when non-nil, gates recovery of in-flight jobs: Open re-queues
	// a queued-or-running job only if Owns accepts it, and records the rest
	// as failed with ErrReassigned. Cluster workers set it to reject
	// everything (the coordinator owns routing and already failed their
	// in-flight work over to a live worker, CLUSTER.md §6.4); single nodes
	// and coordinators leave it nil, which re-queues everything — the
	// pre-cluster behaviour. Terminal jobs always reload regardless: a
	// finished result is correct wherever it is read.
	Owns func(j graphrealize.Job) bool
}

// Manager owns the asynchronous job lifecycle. Create with Open (or New),
// submit with Submit, and call Close exactly once on shutdown.
type Manager struct {
	cfg     Config
	ledger  *ledger
	persist Store

	// baseCtx parents every job's context: jobs are deliberately detached
	// from request contexts so they survive client disconnects. kill cancels
	// it when the drain budget runs out.
	baseCtx context.Context
	kill    context.CancelFunc

	seq                 atomic.Int64
	subscribers         atomic.Int64
	evictions           atomic.Int64
	persistErrors       atomic.Int64
	recoveredTerminal   atomic.Int64
	recoveredRequeued   atomic.Int64
	recoveredReassigned atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // one unit per job between submit and finish

	// persistMu orders Store appends against compaction. Every
	// "mutate the ledger + append the matching WAL record" pair runs under
	// the read lock; compact takes the write lock around "read the ledger,
	// snapshot, truncate the WAL". This makes the pair atomic with respect
	// to the snapshot cut: an appended record is either visible in the
	// ledger the snapshot is built from, or it lands in the fresh segment —
	// never truncated away while the snapshot still shows the older state.
	persistMu sync.RWMutex

	gcStop chan struct{}
	gcDone chan struct{}
}

// New creates a Manager and starts its GC loop. It is Open for
// configurations that cannot fail — with a non-durable (nil) Store,
// recovery has nothing to read, so the error path is unreachable.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("jobs: New: %v", err))
	}
	return m
}

// Open creates a Manager, recovers any jobs surviving in cfg.Store, and
// starts the GC loop. Terminal jobs are reloaded with their persisted
// results; jobs that were queued or running at crash time are re-queued
// through the Backend's replay path with their recorded seeds, so recovered
// runs are deterministic. Both carry Snapshot.Recovered.
func Open(cfg Config) (*Manager, error) {
	if cfg.Backend == nil {
		panic("jobs: Config.Backend is required")
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 5 * time.Minute
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.Retention / 4
		if cfg.GCInterval > 30*time.Second {
			cfg.GCInterval = 30 * time.Second
		}
		if cfg.GCInterval <= 0 {
			// A sub-4ns Retention (tests) must not panic the GC ticker.
			cfg.GCInterval = time.Millisecond
		}
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.Store == nil {
		cfg.Store = MemStore{}
	}
	if cfg.CompactBytes <= 0 {
		cfg.CompactBytes = 4 << 20
	}
	ctx, kill := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		ledger:  newLedger(),
		persist: cfg.Store,
		baseCtx: ctx,
		kill:    kill,
		gcStop:  make(chan struct{}),
		gcDone:  make(chan struct{}),
	}
	recovered, err := m.persist.Recover()
	if err != nil {
		kill()
		return nil, err
	}
	var maxSeq int64
	for i := range recovered {
		pj := &recovered[i]
		if n := idSeq(pj.ID); n > maxSeq {
			maxSeq = n
		}
		if pj.State.Terminal() {
			m.reloadTerminal(pj)
		} else {
			m.requeue(pj)
		}
	}
	m.seq.Store(maxSeq)
	// Fold the pre-crash log into a fresh snapshot so the next restart
	// replays from a clean baseline. WALBytes covers a segment that
	// recovered nothing but still holds records (or a corrupt region that
	// must not stay ahead of future fsynced appends).
	if st := m.persist.Stats(); len(recovered) > 0 || st.WALBytes > 0 || st.ReplayErrors > 0 {
		m.compact()
	}
	go m.gcLoop()
	return m, nil
}

// idSeq extracts the numeric sequence prefix of a job ID ("j42-9f..." → 42),
// so freshly minted IDs keep their uniqueness claim across restarts.
func idSeq(id string) int64 {
	id, _, _ = strings.Cut(id, "-")
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	var n int64
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// newID mints an unguessable server-generated job ID; the sequence prefix
// keeps IDs unique even if the random source ever repeated.
func (m *Manager) newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to the
		// sequence alone rather than minting a guessable suffix.
		return fmt.Sprintf("j%d", m.seq.Add(1))
	}
	return fmt.Sprintf("j%d-%s", m.seq.Add(1), hex.EncodeToString(b[:]))
}

// instrument returns the private copy of a job the backend actually runs:
// its Options carry the record's progress hook (chained after any
// caller-supplied hook, never overwriting it) and the manager's async
// timeout default. The hook is excluded from the Runner's cache key, so a
// cache-served job simply completes with no progress barriers.
func (m *Manager) instrument(rec *record, j graphrealize.Job) graphrealize.Job {
	run := j
	var opt graphrealize.Options
	if j.Opt != nil {
		opt = *j.Opt
	}
	if caller := opt.Progress; caller != nil {
		opt.Progress = func(round, msgs int) {
			rec.reportProgress(round, msgs)
			caller(round, msgs)
		}
	} else {
		opt.Progress = rec.reportProgress
	}
	run.Opt = &opt
	if m.cfg.JobTimeout != 0 && run.Timeout == 0 {
		run.Timeout = m.cfg.JobTimeout
	}
	return run
}

// Submit admits one job for asynchronous execution and returns its initial
// snapshot. The Runner's backpressure passes through untranslated: a
// saturated backend returns graphrealize.ErrQueueFull and nothing is
// retained. The job runs under the Manager's context, not the caller's.
func (m *Manager) Submit(j graphrealize.Job) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrShuttingDown
	}
	// Check capacity without evicting yet: eviction must not happen until
	// the backend has actually admitted the new job, or a rejected
	// submission would destroy a retained result for nothing.
	if m.ledger.len() >= m.cfg.MaxJobs && !m.ledger.hasFinished() {
		return Snapshot{}, ErrTooManyJobs
	}
	rec := &record{
		id:      m.newID(),
		job:     j,
		created: time.Now(),
		state:   StateQueued,
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	rec.cancel = cancel

	ch, err := m.cfg.Backend.SubmitCtx(ctx, m.instrument(rec, j))
	if err != nil {
		cancel()
		return Snapshot{}, err
	}
	// Admitted: now make room if still needed. A concurrent GC sweep may
	// have freed space (or removed the last finished record) since the check
	// above; in the latter case the cap is exceeded by one record until the
	// next sweep — a soft bound, preferable to canceling an admitted job.
	m.persistMu.RLock()
	if m.ledger.len() >= m.cfg.MaxJobs {
		if id := m.ledger.evictOldestFinished(); id != "" {
			m.evictions.Add(1)
			m.logPersist(m.persist.LogRemoved([]string{id}))
		}
	}
	m.ledger.put(rec)
	m.logPersist(m.persist.LogSubmitted(recordPersisted(rec)))
	m.persistMu.RUnlock()
	m.wg.Add(1)
	go m.watch(rec, ch)
	return rec.snapshot(), nil
}

// reloadTerminal rebuilds a finished job from its durable form: the result
// is served from disk, no execution happens.
func (m *Manager) reloadTerminal(pj *PersistedJob) {
	job := pj.jobSpec()
	rec := &record{
		id:        pj.ID,
		job:       job,
		created:   pj.Created,
		recovered: true,
		cancel:    func() {},
		state:     pj.State,
		started:   pj.Started,
		finished:  pj.Finished,
	}
	if pj.Error != "" {
		rec.err = errors.New(pj.Error)
	}
	res, err := pj.Result.result(job)
	if err != nil {
		// The record survived its WAL/snapshot checksum but its embedded
		// graph is unreadable (possible only through out-of-band damage).
		// Keep the job visible rather than silently dropping it, but as a
		// failure that names the loss — never as a done job with a wrong
		// graph.
		m.logPersist(err)
		rec.state = StateFailed
		rec.err = err
		res = nil
	}
	if res != nil {
		rec.result = res
		rec.ran.Store(true)
		rec.round.Store(int64(res.Stats.Rounds))
		rec.msgs.Store(res.Stats.Messages)
	}
	m.persistMu.RLock()
	m.ledger.put(rec)
	m.persistMu.RUnlock()
	m.recoveredTerminal.Add(1)
}

// requeue re-runs a job that was queued or running at crash time, through
// the Backend's admission-exempt replay path. The recorded seed travels in
// the job's Options, so the re-run realizes the identical graph the
// original would have. With Config.Owns set, jobs this process no longer
// owns are recorded as failed with ErrReassigned instead of re-run.
func (m *Manager) requeue(pj *PersistedJob) {
	job := pj.jobSpec()
	rec := &record{
		id:        pj.ID,
		job:       job,
		created:   pj.Created,
		recovered: true,
		state:     StateQueued,
	}
	if m.cfg.Owns != nil && !m.cfg.Owns(job) {
		now := time.Now()
		rec.mu.Lock()
		rec.state = StateFailed
		rec.err = ErrReassigned
		rec.finished = now
		rec.mu.Unlock()
		m.persistMu.RLock()
		m.ledger.put(rec)
		m.logPersist(m.persist.LogTerminal(recordPersisted(rec)))
		m.persistMu.RUnlock()
		m.recoveredReassigned.Add(1)
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	rec.cancel = cancel
	ch, err := m.cfg.Backend.SubmitReplayCtx(ctx, m.instrument(rec, job))
	if err != nil {
		// The backend cannot take the job back (it should — replay is
		// admission-exempt — but the seam allows refusal): record the loss
		// durably instead of dropping the job on the floor.
		cancel()
		now := time.Now()
		jerr := fmt.Errorf("jobs: recovery resubmission refused: %w", err)
		rec.mu.Lock()
		rec.state = StateFailed
		rec.err = jerr
		rec.finished = now
		rec.mu.Unlock()
		m.persistMu.RLock()
		m.ledger.put(rec)
		m.logPersist(m.persist.LogTerminal(recordPersisted(rec)))
		m.persistMu.RUnlock()
		return
	}
	m.persistMu.RLock()
	m.ledger.put(rec)
	m.persistMu.RUnlock()
	m.recoveredRequeued.Add(1)
	m.wg.Add(1)
	go m.watch(rec, ch)
}

// watch waits for one job's result and records the terminal transition —
// durably first (fsync), then in memory: a terminal state a client can
// observe is never lost to a crash. The append + publish pair runs under
// persistMu so a concurrent compaction cannot truncate the terminal record
// while its snapshot still shows the job running.
func (m *Manager) watch(rec *record, ch <-chan graphrealize.Result) {
	defer m.wg.Done()
	res := <-ch
	now := time.Now()
	st, jerr := outcomeOf(res)
	m.persistMu.RLock()
	m.logPersist(m.persist.LogTerminal(persistedJob(rec, st, jerr, &res, now)))
	rec.finishAt(res, now)
	m.persistMu.RUnlock()
	m.maybeCompact()
}

// logPersist counts (but never propagates) a Store failure: the in-memory
// subsystem keeps serving, the gauge tells the operator durability is gone.
func (m *Manager) logPersist(err error) {
	if err != nil {
		m.persistErrors.Add(1)
	}
}

// recordPersisted projects a record's current state onto its durable form
// (the compaction and submission paths; the terminal path uses persistedJob
// with the outcome passed explicitly, before it is visible in the record).
func recordPersisted(rec *record) PersistedJob {
	rec.mu.Lock()
	st, started, finished, jerr, res := rec.state, rec.started, rec.finished, rec.err, rec.result
	rec.mu.Unlock()
	pj := PersistedJob{
		ID:       rec.id,
		Kind:     int(rec.job.Kind),
		Seq:      rec.job.Seq,
		Label:    rec.job.Label,
		TraceID:  rec.job.TraceID,
		Timeout:  int64(rec.job.Timeout),
		Options:  persistedOptions(rec.job.Opt),
		State:    st,
		Created:  rec.created,
		Started:  started,
		Finished: finished,
		Result:   persistedResult(res),
	}
	if jerr != nil {
		pj.Error = jerr.Error()
	}
	return pj
}

// maybeCompact folds the WAL into a snapshot when it outgrows the
// configured bound.
func (m *Manager) maybeCompact() {
	if st := m.persist.Stats(); st.Durable && st.WALBytes >= m.cfg.CompactBytes {
		m.compact()
	}
}

// compact snapshots the current ledger into the Store and truncates the
// WAL. The write lock excludes every ledger-mutation + append pair, so the
// snapshot reflects everything the truncated segment recorded.
func (m *Manager) compact() {
	m.persistMu.Lock()
	defer m.persistMu.Unlock()
	recs := m.ledger.oldestFirst()
	live := make([]PersistedJob, 0, len(recs))
	for _, rec := range recs {
		live = append(live, recordPersisted(rec))
	}
	m.logPersist(m.persist.Compact(live))
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	rec, ok := m.ledger.get(id)
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return rec.snapshot(), nil
}

// Cancel requests cancellation of a live job: its context is canceled and
// the engine stops at the next round barrier. It reports whether the request
// actually initiated a cancellation (false: the job was already terminal —
// Cancel is idempotent and never an error on a known job).
func (m *Manager) Cancel(id string) (Snapshot, bool, error) {
	rec, ok := m.ledger.get(id)
	if !ok {
		return Snapshot{}, false, ErrNotFound
	}
	if rec.currentState().Terminal() {
		return rec.snapshot(), false, nil
	}
	rec.cancel()
	return rec.snapshot(), true, nil
}

// List returns snapshots newest-first, optionally filtered by state.
// limit ≤ 0 means no limit.
func (m *Manager) List(state State, limit int) []Snapshot {
	var out []Snapshot
	for _, rec := range m.ledger.all() {
		snap := rec.snapshot()
		if state != "" && snap.State != state {
			continue
		}
		out = append(out, snap)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Stats is a point-in-time snapshot of the Manager's gauges and counters.
type Stats struct {
	Jobs        map[State]int // retained jobs by state (every state present)
	Retained    int           // total retained records
	Subscribers int64         // open event subscriptions
	Evictions   int64         // records removed by GC or capacity eviction

	RecoveredTerminal   int64      // terminal jobs reloaded from the store at open
	RecoveredRequeued   int64      // non-terminal jobs re-queued at open
	RecoveredReassigned int64      // in-flight jobs Config.Owns rejected at open
	PersistErrors       int64      // Store operations that failed (durability degraded)
	Store               StoreStats // the Store's own durability gauges
}

// StatsSnapshot returns the Manager's gauges for monitoring.
func (m *Manager) StatsSnapshot() Stats {
	counts := m.ledger.counts()
	return Stats{
		Jobs:                counts,
		Retained:            m.ledger.len(),
		Subscribers:         m.subscribers.Load(),
		Evictions:           m.evictions.Load(),
		RecoveredTerminal:   m.recoveredTerminal.Load(),
		RecoveredRequeued:   m.recoveredRequeued.Load(),
		RecoveredReassigned: m.recoveredReassigned.Load(),
		PersistErrors:       m.persistErrors.Load(),
		Store:               m.persist.Stats(),
	}
}

// gcLoop sweeps retention on a ticker until Close.
func (m *Manager) gcLoop() {
	defer close(m.gcDone)
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.GC(time.Now())
		case <-m.gcStop:
			return
		}
	}
}

// GC runs one retention sweep at the given instant and returns the number of
// records removed. Terminal jobs older than Retention become expired;
// already-expired records are removed (subsequent Gets return ErrNotFound).
// A sweep that removed records also compacts the durable store, so disk
// usage tracks retention like memory does. Exported so tests and embedders
// can drive retention deterministically.
func (m *Manager) GC(now time.Time) int {
	m.persistMu.RLock()
	toExpire, removed := m.ledger.sweep(now, m.cfg.Retention)
	for _, rec := range toExpire {
		rec.expire()
		m.logPersist(m.persist.LogExpired(rec.id))
	}
	if len(removed) > 0 {
		m.logPersist(m.persist.LogRemoved(removed))
	}
	m.persistMu.RUnlock()
	if len(removed) > 0 {
		m.compact()
	}
	m.evictions.Add(int64(len(removed)))
	return len(removed)
}

// Close drains the Manager: submissions are refused, the GC stops, and
// running jobs get until ctx's deadline to finish on their own. Jobs still
// live at the deadline are canceled (the engine unwinds at its next round
// barrier, so the forced phase is short) and Close waits for them to record
// their terminal state. The durable store is compacted and closed last, so
// the snapshot on disk reflects the drained ledger. It returns ctx.Err() if
// the force phase was needed.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	close(m.gcStop)
	<-m.gcDone

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		m.kill()
		<-done
		err = ctx.Err()
	}
	m.compact()
	m.logPersist(m.persist.Close())
	return err
}
