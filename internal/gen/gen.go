// Package gen generates the workloads the benchmark harness sweeps over:
// graphic degree sequences from several families (regular, power-law,
// random-graph, star-heavy, bimodal), tree-realizable sequences, connectivity
// threshold vectors, and the adversarial lower-bound instances of §7. All
// generators are deterministic in their seed.
package gen

import (
	"math"
	"math/rand"

	"graphrealize/internal/seq"
)

// Regular returns the d-regular sequence on n vertices. A regular sequence
// is graphic iff 0 ≤ d < n and n·d is even; the generator panics on an
// infeasible request so tests cannot silently diverge from their intent.
func Regular(n, d int) []int {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		panic("gen: Regular(n,d) requires 0 ≤ d < n and n·d even")
	}
	s := make([]int, n)
	for i := range s {
		s[i] = d
	}
	return s
}

// FromRandomGraph samples G(n,p) and returns its degree sequence, which is
// graphic by construction. This is the "typical instance" family.
func FromRandomGraph(n int, p float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	d := make([]int, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				d[u]++
				d[v]++
			}
		}
	}
	return d
}

// PowerLaw returns a graphic sequence with Pr[deg = k] ∝ k^(−alpha) truncated
// to [1, dmax], repaired to graphicality by MakeGraphic. Models skewed P2P
// degree demands.
func PowerLaw(n int, alpha float64, dmax int, seed int64) []int {
	if dmax >= n {
		dmax = n - 1
	}
	if dmax < 1 {
		dmax = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Inverse-CDF sampling over the discrete truncated power law.
	weights := make([]float64, dmax+1)
	total := 0.0
	for k := 1; k <= dmax; k++ {
		weights[k] = math.Pow(float64(k), -alpha)
		total += weights[k]
	}
	d := make([]int, n)
	for i := range d {
		r := rng.Float64() * total
		acc := 0.0
		d[i] = dmax
		for k := 1; k <= dmax; k++ {
			acc += weights[k]
			if r <= acc {
				d[i] = k
				break
			}
		}
	}
	return MakeGraphic(d)
}

// StarHeavy returns a graphic sequence with h hubs of degree hubDeg and the
// rest leaves of small degree, repaired to graphicality. This family drives
// the Δ ≫ √m regime of Theorem 11.
func StarHeavy(n, h, hubDeg int) []int {
	if hubDeg >= n {
		hubDeg = n - 1
	}
	d := make([]int, n)
	for i := 0; i < h && i < n; i++ {
		d[i] = hubDeg
	}
	for i := h; i < n; i++ {
		d[i] = 1
	}
	return MakeGraphic(d)
}

// Bimodal returns a graphic sequence with half the vertices at degree lo and
// half at degree hi, repaired to graphicality.
func Bimodal(n, lo, hi int) []int {
	if hi >= n {
		hi = n - 1
	}
	if lo > hi {
		lo = hi
	}
	d := make([]int, n)
	for i := range d {
		if i%2 == 0 {
			d[i] = hi
		} else {
			d[i] = lo
		}
	}
	return MakeGraphic(d)
}

// MakeGraphic repairs an arbitrary non-negative sequence into a graphic one
// by clamping to n−1 and then decrementing the largest positive entries until
// the Erdős–Gallai conditions hold. The result preserves the shape of the
// input distribution.
func MakeGraphic(d []int) []int {
	n := len(d)
	out := append([]int(nil), d...)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
		if out[i] > n-1 {
			out[i] = n - 1
		}
	}
	for !seq.IsGraphic(out) {
		// Decrement the current maximum entry.
		maxI := 0
		for i := range out {
			if out[i] > out[maxI] {
				maxI = i
			}
		}
		if out[maxI] == 0 {
			break // all-zero is graphic; defensive
		}
		out[maxI]--
	}
	return out
}

// NonGraphic returns a sequence guaranteed to be non-graphic with total
// degree parameterized by n and base: it takes a graphic base sequence and
// raises its maximum entry to n−1 while pinning many entries at 1, violating
// Erdős–Gallai. Used by the Theorem 13 (upper-envelope) experiments.
func NonGraphic(n int, seed int64) []int {
	if n < 4 {
		panic("gen: NonGraphic needs n ≥ 4")
	}
	rng := rand.New(rand.NewSource(seed))
	d := make([]int, n)
	// Three high-degree vertices in a sea of degree-1 vertices: k=3 gives
	// lhs ≈ 3(n−1) vs rhs = 6 + (n−3), violated for n ≥ 7; smaller n are
	// fixed up below by the explicit check.
	for i := range d {
		d[i] = 1
	}
	d[0], d[1], d[2] = n-1, n-1, n-1
	if seq.IsGraphic(d) {
		// Tiny n fallback: force odd sum.
		d[3] = 2
		if seq.IsGraphic(d) {
			d[0] = n - 1
			d[1] = 1
		}
	}
	// Shuffle so positions are not degree-sorted.
	rng.Shuffle(n, func(i, j int) { d[i], d[j] = d[j], d[i] })
	if seq.IsGraphic(d) {
		panic("gen: NonGraphic produced a graphic sequence")
	}
	return d
}

// TreeSequence returns a uniformly random tree-realizable degree sequence on
// n vertices, derived from a random Prüfer string: deg(v) = 1 + multiplicity
// of v in the string. Always satisfies Σd = 2(n−1).
func TreeSequence(n int, seed int64) []int {
	if n == 1 {
		return []int{0}
	}
	if n == 2 {
		return []int{1, 1}
	}
	rng := rand.New(rand.NewSource(seed))
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	for i := 0; i < n-2; i++ {
		d[rng.Intn(n)]++
	}
	return d
}

// CaterpillarSequence returns the tree sequence of a caterpillar with spine
// length k on n vertices: a long-diameter stress case for Algorithm 4 vs 5.
func CaterpillarSequence(n, k int) []int {
	if k < 2 || k > n {
		panic("gen: CaterpillarSequence needs 2 ≤ k ≤ n")
	}
	d := make([]int, n)
	leaves := n - k
	for i := 0; i < k; i++ {
		d[i] = 2
	}
	for i := k; i < n; i++ {
		d[i] = 1
	}
	d[0], d[k-1] = 1, 1
	i := 0
	for leaves > 0 {
		d[i%k]++
		i++
		leaves--
	}
	return d
}

// StarSequence returns the star tree sequence: one hub of degree n−1.
func StarSequence(n int) []int {
	d := make([]int, n)
	for i := 1; i < n; i++ {
		d[i] = 1
	}
	d[0] = n - 1
	return d
}

// UniformRho returns a connectivity threshold vector with ρ(v) uniform in
// [1, maxRho].
func UniformRho(n, maxRho int, seed int64) []int {
	if maxRho > n-1 {
		maxRho = n - 1
	}
	if maxRho < 1 {
		maxRho = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rho := make([]int, n)
	for i := range rho {
		rho[i] = 1 + rng.Intn(maxRho)
	}
	return rho
}

// TieredRho returns a threshold vector modeling a survivable network: a small
// core requiring high connectivity, a middle tier, and an edge tier.
func TieredRho(n, coreSize, coreRho, midRho, edgeRho int) []int {
	rho := make([]int, n)
	for i := range rho {
		switch {
		case i < coreSize:
			rho[i] = coreRho
		case i < n/2:
			rho[i] = midRho
		default:
			rho[i] = edgeRho
		}
		if rho[i] > n-1 {
			rho[i] = n - 1
		}
		if rho[i] < 1 {
			rho[i] = 1
		}
	}
	return rho
}

// LowerBoundDStar returns the §7 family D*: k = ⌊√m⌋ vertices of degree k
// and the rest zero, so the realization is (essentially) a clique among the
// first k vertices and the first k nodes must jointly learn Ω(m) IDs.
func LowerBoundDStar(n, m int) []int {
	k := int(math.Sqrt(float64(m)))
	if k > n {
		k = n
	}
	if k%2 == 0 {
		// k vertices of degree k−1 form K_k; keep Σd even and graphic.
		d := make([]int, n)
		for i := 0; i < k; i++ {
			d[i] = k - 1
		}
		return d
	}
	d := make([]int, n)
	for i := 0; i < k; i++ {
		d[i] = k - 1
	}
	return MakeGraphic(d)
}
