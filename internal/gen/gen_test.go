package gen

import (
	"testing"
	"testing/quick"

	"graphrealize/internal/seq"
)

func TestRegularGraphic(t *testing.T) {
	for _, c := range []struct{ n, d int }{{8, 3}, {10, 4}, {7, 2}, {2, 1}, {5, 0}} {
		s := Regular(c.n, c.d)
		if len(s) != c.n {
			t.Fatalf("Regular(%d,%d) length %d", c.n, c.d, len(s))
		}
		if !seq.IsGraphic(s) {
			t.Fatalf("Regular(%d,%d) not graphic", c.n, c.d)
		}
	}
}

func TestRegularPanicsOnInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Regular(5,3) should panic (odd n·d)")
		}
	}()
	Regular(5, 3)
}

func TestFromRandomGraphAlwaysGraphic(t *testing.T) {
	f := func(seed int64) bool {
		d := FromRandomGraph(30, 0.2, seed)
		return seq.IsGraphic(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawGraphicAndBounded(t *testing.T) {
	d := PowerLaw(200, 2.2, 40, 7)
	if !seq.IsGraphic(d) {
		t.Fatal("PowerLaw not graphic after repair")
	}
	for _, v := range d {
		if v < 0 || v > 40 {
			t.Fatalf("degree %d out of [0,40]", v)
		}
	}
}

func TestStarHeavyGraphic(t *testing.T) {
	d := StarHeavy(100, 3, 60)
	if !seq.IsGraphic(d) {
		t.Fatal("StarHeavy not graphic")
	}
	if seq.MaxDegree(d) < 30 {
		t.Fatalf("StarHeavy hub degree collapsed to %d", seq.MaxDegree(d))
	}
}

func TestBimodalGraphic(t *testing.T) {
	d := Bimodal(50, 2, 10)
	if !seq.IsGraphic(d) {
		t.Fatal("Bimodal not graphic")
	}
}

func TestMakeGraphicIdempotentOnGraphic(t *testing.T) {
	d := []int{3, 3, 3, 3}
	got := MakeGraphic(d)
	for i := range d {
		if got[i] != d[i] {
			t.Fatalf("MakeGraphic changed an already graphic sequence: %v -> %v", d, got)
		}
	}
}

func TestMakeGraphicRepairs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		d := make([]int, n)
		r := seed
		for i := range d {
			r = r*6364136223846793005 + 1442695040888963407
			v := int(uint64(r) % uint64(2*n))
			d[i] = v
		}
		return seq.IsGraphic(MakeGraphic(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNonGraphicReallyIsnt(t *testing.T) {
	for n := 4; n <= 40; n += 3 {
		d := NonGraphic(n, int64(n))
		if seq.IsGraphic(d) {
			t.Fatalf("NonGraphic(%d) produced a graphic sequence %v", n, d)
		}
		if len(d) != n {
			t.Fatalf("length %d, want %d", len(d), n)
		}
	}
}

func TestTreeSequenceValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		return seq.IsTreeSequence(TreeSequence(n, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillarAndStarSequences(t *testing.T) {
	if d := CaterpillarSequence(10, 5); !seq.IsTreeSequence(d) {
		t.Fatalf("caterpillar not a tree sequence: %v", d)
	}
	if d := CaterpillarSequence(6, 6); !seq.IsTreeSequence(d) {
		t.Fatalf("pure path not a tree sequence: %v", d)
	}
	if d := StarSequence(7); !seq.IsTreeSequence(d) || seq.MaxDegree(d) != 6 {
		t.Fatalf("star sequence wrong: %v", d)
	}
}

func TestUniformRhoInRange(t *testing.T) {
	rho := UniformRho(30, 6, 5)
	for _, v := range rho {
		if v < 1 || v > 6 {
			t.Fatalf("rho %d out of [1,6]", v)
		}
	}
}

func TestTieredRho(t *testing.T) {
	rho := TieredRho(20, 4, 8, 3, 1)
	if rho[0] != 8 || rho[3] != 8 {
		t.Fatalf("core rho wrong: %v", rho)
	}
	if rho[5] != 3 || rho[19] != 1 {
		t.Fatalf("tier rho wrong: %v", rho)
	}
}

func TestLowerBoundDStarGraphic(t *testing.T) {
	for _, m := range []int{16, 64, 100, 256, 1000} {
		d := LowerBoundDStar(200, m)
		if !seq.IsGraphic(d) {
			t.Fatalf("DStar(m=%d) not graphic: max=%d", m, seq.MaxDegree(d))
		}
		nonzero := 0
		for _, v := range d {
			if v > 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Fatalf("DStar(m=%d) degenerate", m)
		}
	}
}

func TestDeterminismOfSeededGenerators(t *testing.T) {
	a := PowerLaw(100, 2.0, 30, 11)
	b := PowerLaw(100, 2.0, 30, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PowerLaw not deterministic in seed")
		}
	}
	c := TreeSequence(50, 13)
	d := TreeSequence(50, 13)
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("TreeSequence not deterministic in seed")
		}
	}
}
