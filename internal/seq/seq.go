// Package seq implements the sequential (centralized) baselines the paper
// builds on: the Erdős–Gallai graphicality test, the Havel–Hakimi
// construction (§3.3), tree-sequence realization including the minimum
// diameter greedy tree of Smith–Székely–Wang used by Algorithm 5, and a
// Frank–Chou-style 2-approximate connectivity-threshold construction (§6).
// The distributed algorithms are validated against these baselines, and the
// benchmark harness reports them as the comparison points.
package seq

import "sort"

// IsGraphic reports whether the degree sequence d (any order) is realizable
// by a simple undirected graph, using the Erdős–Gallai characterization:
// Σdᵢ even and, for the non-increasing ordering and every k ∈ [1,n],
//
//	Σ_{i≤k} dᵢ ≤ k(k−1) + Σ_{i>k} min(dᵢ, k).
func IsGraphic(d []int) bool {
	n := len(d)
	if n == 0 {
		return true
	}
	s := append([]int(nil), d...)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	if s[0] >= n || s[n-1] < 0 {
		return false
	}
	total := 0
	for _, v := range s {
		total += v
	}
	if total%2 != 0 {
		return false
	}
	// Prefix sums and the standard O(n) evaluation of the right-hand side.
	prefix := make([]int, n+1)
	for i, v := range s {
		prefix[i+1] = prefix[i] + v
	}
	// For each k we need Σ_{i>k} min(dᵢ,k). Since s is non-increasing, find
	// the first index j ≥ k where s[j] ≤ k (0-based); entries before j
	// contribute k each, the tail contributes its actual sum.
	for k := 1; k <= n; k++ {
		lhs := prefix[k]
		// binary search in s[k:] for first value ≤ k
		lo, hi := k, n
		for lo < hi {
			mid := (lo + hi) / 2
			if s[mid] <= k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		rhs := k*(k-1) + (lo-k)*k + (prefix[n] - prefix[lo])
		if lhs > rhs {
			return false
		}
	}
	return true
}

// IsTreeSequence reports whether d is realizable by a tree: n ≥ 2 with every
// dᵢ ≥ 1 and Σdᵢ = 2(n−1), or the single-vertex sequence (0).
func IsTreeSequence(d []int) bool {
	n := len(d)
	if n == 0 {
		return false
	}
	if n == 1 {
		return d[0] == 0
	}
	sum := 0
	for _, v := range d {
		if v < 1 {
			return false
		}
		sum += v
	}
	return sum == 2*(n-1)
}

// SumDegrees returns Σdᵢ.
func SumDegrees(d []int) int {
	s := 0
	for _, v := range d {
		s += v
	}
	return s
}

// MaxDegree returns max dᵢ (0 for an empty sequence).
func MaxDegree(d []int) int {
	m := 0
	for _, v := range d {
		if v > m {
			m = v
		}
	}
	return m
}
