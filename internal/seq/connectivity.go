package seq

import (
	"sort"

	"graphrealize/internal/graph"
)

// ConnectivityLowerBound returns ⌈Σρ(v)/2⌉, a lower bound on the number of
// edges in any graph meeting the connectivity thresholds: every vertex v
// needs degree ≥ ρ(v) (§6, "Approximation factor").
func ConnectivityLowerBound(rho []int) int {
	s := 0
	for _, v := range rho {
		s += v
	}
	return (s + 1) / 2
}

// ConnectivityRealize is the sequential analog of the paper's Algorithm 6
// (after Frank–Chou): sort vertices by non-increasing ρ; realize the first
// d₀+1 vertices (d₀ = max ρ) as a degree-approximate core via Havel–Hakimi
// with upper-envelope clamping; then each later vertex xᵢ connects to its
// ρ(xᵢ) immediate predecessors in sorted order. The result G satisfies
// Conn_G(u,v) ≥ min(ρ(u), ρ(v)) with at most Σρ edges (a 2-approximation).
func ConnectivityRealize(rho []int) (*graph.Graph, bool) {
	n := len(rho)
	g := graph.New(n)
	if n <= 1 {
		return g, true
	}
	for _, v := range rho {
		if v < 0 || v > n-1 {
			return nil, false
		}
	}
	order, sorted := sortDesc(rho)
	d0 := sorted[0]
	if d0 == 0 {
		return g, true
	}
	core := d0 + 1
	if core > n {
		core = n
	}
	// Phase 1: approximate degree realization of (ρ(x₁),…,ρ(x_{d₀+1})) on the
	// core, mirroring Theorem 13's clamp-at-zero Havel–Hakimi.
	coreDeg := make([]int, core)
	copy(coreDeg, sorted[:core])
	envelopeRealize(g, order[:core], coreDeg)
	// Phase 2: each remaining vertex connects to its ρ immediate predecessors.
	for i := core; i < n; i++ {
		for j := 1; j <= sorted[i]; j++ {
			_ = g.AddEdge(order[i], order[i-j])
		}
	}
	return g, true
}

// envelopeRealize runs Havel–Hakimi over the given vertices with the
// clamp-at-zero rule of Theorem 13: the maximum-remaining vertex becomes a
// center, connects to the next rem highest-remaining live vertices, and
// leaves the pool; receivers whose requirement is already met keep a zero
// requirement instead of going negative. Every vertex therefore finishes
// with degree ≥ its requirement (an upper envelope), at the cost of at most
// doubling Σd. Centers leaving the pool is what makes duplicate edges
// impossible, exactly as in the distributed Algorithm 3.
//
// Provided len(verts) = maxDeg+1 (the caller's core), a center's remaining
// requirement never exceeds the live pool: initially pool = d₀ = max need,
// and an exchange argument shows the invariant pool ≥ max-remaining is
// preserved by every step.
func envelopeRealize(g *graph.Graph, verts []int, deg []int) {
	type vd struct{ rem, pos int }
	live := make([]vd, len(verts))
	for i := range live {
		live[i] = vd{deg[i], i}
	}
	for len(live) > 0 {
		sort.Slice(live, func(a, b int) bool {
			if live[a].rem != live[b].rem {
				return live[a].rem > live[b].rem
			}
			return live[a].pos < live[b].pos
		})
		if live[0].rem <= 0 {
			return
		}
		k := live[0].rem
		if k > len(live)-1 {
			k = len(live) - 1 // defensive; unreachable for a d₀+1-sized core
		}
		for j := 1; j <= k; j++ {
			_ = g.AddEdge(verts[live[0].pos], verts[live[j].pos])
			if live[j].rem > 0 {
				live[j].rem--
			}
		}
		live = live[1:]
	}
}
