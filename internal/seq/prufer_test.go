package seq

import (
	"fmt"
	"strconv"
	"strings"

	"graphrealize/internal/graph"
)

// pruferToTree decodes a Prüfer string into its labeled tree. Used by the
// exhaustive minimum-diameter test as an independent enumeration of all
// labeled trees on n vertices.
func pruferToTree(n int, pr []int) *graph.Graph {
	g := graph.New(n)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range pr {
		deg[v]++
	}
	// Min-leaf selection, classic decode.
	used := make([]bool, n)
	for _, v := range pr {
		leaf := -1
		for u := 0; u < n; u++ {
			if deg[u] == 1 && !used[u] {
				leaf = u
				break
			}
		}
		_ = g.AddEdge(leaf, v)
		used[leaf] = true
		deg[leaf]--
		deg[v]--
	}
	// Two vertices of degree 1 remain.
	a, b := -1, -1
	for u := 0; u < n; u++ {
		if deg[u] == 1 && !used[u] {
			if a == -1 {
				a = u
			} else {
				b = u
			}
		}
	}
	_ = g.AddEdge(a, b)
	return g
}

// degKey canonicalizes a degree sequence (sorted desc) into a map key.
func degKey(d []int) string {
	s := append([]int(nil), d...)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] > s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// keyDeg inverts degKey.
func keyDeg(k string) []int {
	parts := strings.Split(k, ",")
	d := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			panic(fmt.Sprintf("bad key %q", k))
		}
		d[i] = v
	}
	return d
}
