package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsGraphicKnownCases(t *testing.T) {
	cases := []struct {
		d    []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1}, false},
		{[]int{1, 1}, true},
		{[]int{2, 2, 2}, true},           // triangle
		{[]int{3, 3, 3, 3}, true},        // K4
		{[]int{3, 1, 1, 1}, true},        // star
		{[]int{4, 1, 1, 1, 1}, true},     // star K1,4
		{[]int{3, 3, 1, 1}, false},       // classic non-graphic
		{[]int{5, 5, 5, 1, 1, 1}, false}, // EG violation at k=3
		{[]int{2, 2, 1, 1}, true},        // path
		{[]int{1, 1, 1}, false},          // odd sum
		{[]int{4, 4, 4, 4, 4}, true},     // K5
		{[]int{5, 4, 3, 2, 1}, false},    // odd sum
		{[]int{5, 4, 3, 2, 1, 1}, false}, // EG fails at k=2: 9 > 8
		{[]int{3, 3, 2, 2, 2, 2}, true},
		{[]int{-1, 1}, false},
		{[]int{3, 2, 1}, false}, // d exceeds n-1... 3 > 2
	}
	for _, c := range cases {
		if got := IsGraphic(c.d); got != c.want {
			t.Errorf("IsGraphic(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestHavelHakimiRealizesGraphicSequences(t *testing.T) {
	seqs := [][]int{
		{2, 2, 2},
		{3, 3, 3, 3},
		{3, 1, 1, 1},
		{2, 2, 1, 1},
		{4, 4, 4, 4, 4},
		{3, 3, 2, 2, 2, 2},
		{0, 0, 0},
	}
	for _, d := range seqs {
		g, ok := HavelHakimi(d)
		if !ok {
			t.Fatalf("HavelHakimi(%v) reported non-graphic", d)
		}
		if !g.DegreesMatch(d) {
			t.Fatalf("HavelHakimi(%v) degrees = %v", d, g.Degrees())
		}
	}
}

func TestHavelHakimiRejectsNonGraphic(t *testing.T) {
	for _, d := range [][]int{{3, 3, 1, 1}, {1, 1, 1}, {1}, {5, 5, 5, 1, 1, 1}} {
		if _, ok := HavelHakimi(d); ok {
			t.Fatalf("HavelHakimi(%v) accepted a non-graphic sequence", d)
		}
	}
}

// TestQuickHavelHakimiAgreesWithErdosGallai is the central equivalence
// property: the constructive and the characterization-based tests agree, and
// every construction exactly realizes its input.
func TestQuickHavelHakimiAgreesWithErdosGallai(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		d := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(n)
		}
		g, ok := HavelHakimi(d)
		if ok != IsGraphic(d) {
			return false
		}
		if ok && !g.DegreesMatch(d) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsTreeSequence(t *testing.T) {
	cases := []struct {
		d    []int
		want bool
	}{
		{[]int{0}, true},
		{[]int{1, 1}, true},
		{[]int{2, 1, 1}, true},
		{[]int{3, 1, 1, 1}, true},
		{[]int{2, 2, 1, 1}, true},
		{[]int{2, 2, 2}, false}, // cycle, not tree
		{[]int{1, 1, 1, 1}, false},
		{[]int{0, 1}, false},
		{[]int{}, false},
	}
	for _, c := range cases {
		if got := IsTreeSequence(c.d); got != c.want {
			t.Errorf("IsTreeSequence(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestChainTreeAndGreedyTreeRealize(t *testing.T) {
	seqs := [][]int{
		{1, 1},
		{2, 1, 1},
		{3, 1, 1, 1},
		{2, 2, 1, 1},
		{4, 3, 3, 2, 1, 1, 1, 1, 1, 1}, // n=10, Σd = 18 = 2(n-1)
		{4, 1, 1, 1, 1},                // star
		{1, 2, 2, 2, 2, 1},             // path, unsorted input order
	}
	for _, d := range seqs {
		if !IsTreeSequence(d) {
			t.Fatalf("test bug: %v is not a tree sequence", d)
		}
		ct, ok := ChainTree(d)
		if !ok || !ct.IsTree() || !ct.DegreesMatch(d) {
			t.Fatalf("ChainTree(%v): ok=%v tree=%v degrees=%v", d, ok, ct != nil && ct.IsTree(), ct.Degrees())
		}
		gt, ok := GreedyTree(d)
		if !ok || !gt.IsTree() || !gt.DegreesMatch(d) {
			t.Fatalf("GreedyTree(%v): ok=%v", d, ok)
		}
		if gt.TreeDiameter() > ct.TreeDiameter() {
			t.Fatalf("GreedyTree diameter %d > ChainTree diameter %d for %v",
				gt.TreeDiameter(), ct.TreeDiameter(), d)
		}
	}
}

func TestGreedyTreeMinimalityByExhaustion(t *testing.T) {
	// For small n, enumerate all labeled trees via Prüfer strings and verify
	// no realization of the sequence has smaller diameter than GreedyTree.
	for n := 3; n <= 6; n++ {
		// Enumerate Prüfer strings of length n-2 over [0,n).
		total := 1
		for i := 0; i < n-2; i++ {
			total *= n
		}
		type key string
		best := map[string]int{}
		for code := 0; code < total; code++ {
			pr := make([]int, n-2)
			c := code
			for i := range pr {
				pr[i] = c % n
				c /= n
			}
			g := pruferToTree(n, pr)
			d := g.Degrees()
			k := degKey(d)
			diam := g.TreeDiameter()
			if cur, ok := best[k]; !ok || diam < cur {
				best[k] = diam
			}
		}
		for k, wantDiam := range best {
			d := keyDeg(k)
			gt, ok := GreedyTree(d)
			if !ok {
				t.Fatalf("n=%d: GreedyTree rejected realizable %v", n, d)
			}
			if got := gt.TreeDiameter(); got != wantDiam {
				t.Fatalf("n=%d seq=%v: greedy diameter %d, optimal %d", n, d, got, wantDiam)
			}
		}
	}
}

func TestMinTreeDiameterStarAndPath(t *testing.T) {
	star := []int{4, 1, 1, 1, 1}
	if d := MinTreeDiameter(star); d != 2 {
		t.Fatalf("star min diameter = %d, want 2", d)
	}
	path := []int{1, 2, 2, 2, 1}
	if d := MinTreeDiameter(path); d != 4 {
		t.Fatalf("path min diameter = %d, want 4", d)
	}
	if d := MinTreeDiameter([]int{2, 2, 2}); d != -1 {
		t.Fatalf("non-tree sequence min diameter = %d, want -1", d)
	}
}

func TestConnectivityRealizeMeetsThresholds(t *testing.T) {
	cases := [][]int{
		{1, 1, 1, 1},
		{2, 2, 2, 2, 2},
		{3, 3, 2, 2, 1, 1, 1, 1},
		{4, 3, 3, 2, 2, 2, 1, 1, 1, 1},
	}
	for _, rho := range cases {
		g, ok := ConnectivityRealize(rho)
		if !ok {
			t.Fatalf("ConnectivityRealize(%v) failed", rho)
		}
		// Verify Conn(u,v) ≥ min(ρu, ρv) for all pairs (small n: exact).
		for u := 0; u < len(rho); u++ {
			for v := u + 1; v < len(rho); v++ {
				want := rho[u]
				if rho[v] < want {
					want = rho[v]
				}
				if got := g.EdgeConnectivity(u, v); got < want {
					t.Fatalf("rho=%v: Conn(%d,%d) = %d < %d", rho, u, v, got, want)
				}
			}
		}
		// 2-approximation: edges ≤ Σρ = 2 · (Σρ/2) ≥ 2·LB.
		sum := SumDegrees(rho)
		if g.M() > sum {
			t.Fatalf("rho=%v: %d edges > Σρ = %d", rho, g.M(), sum)
		}
	}
}

func TestQuickConnectivityRealize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		rho := make([]int, n)
		for i := range rho {
			rho[i] = 1 + rng.Intn(n-1)
		}
		g, ok := ConnectivityRealize(rho)
		if !ok {
			return false
		}
		if g.M() > SumDegrees(rho) {
			return false
		}
		// Sampled pairs (all pairs for these sizes).
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := rho[u]
				if rho[v] < want {
					want = rho[v]
				}
				if g.EdgeConnectivity(u, v) < want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectivityLowerBound(t *testing.T) {
	if lb := ConnectivityLowerBound([]int{3, 3, 3}); lb != 5 {
		t.Fatalf("LB = %d, want 5", lb)
	}
	if lb := ConnectivityLowerBound([]int{2, 2}); lb != 2 {
		t.Fatalf("LB = %d, want 2", lb)
	}
}

func TestSumAndMax(t *testing.T) {
	if SumDegrees([]int{1, 2, 3}) != 6 {
		t.Fatal("SumDegrees")
	}
	if MaxDegree([]int{1, 5, 3}) != 5 || MaxDegree(nil) != 0 {
		t.Fatal("MaxDegree")
	}
}
