package seq

import (
	"sort"

	"graphrealize/internal/graph"
)

// HavelHakimi constructs a simple graph realizing the degree sequence d
// (d[i] is the required degree of vertex i), or returns (nil, false) if d is
// not graphic. It is the classical sequential algorithm of §3.3: repeatedly
// satisfy a maximum-degree vertex by connecting it to the next-highest-degree
// vertices, re-sorting between steps. Runtime O((n + Σd)·log n).
func HavelHakimi(d []int) (*graph.Graph, bool) {
	n := len(d)
	g := graph.New(n)
	// rem[i] = (remaining degree, vertex); maintained sorted non-increasing.
	type vd struct{ deg, v int }
	rem := make([]vd, n)
	for i, v := range d {
		if v < 0 || v >= n {
			if !(n == 1 && v == 0) {
				return nil, false
			}
		}
		rem[i] = vd{v, i}
	}
	for {
		sort.Slice(rem, func(i, j int) bool {
			if rem[i].deg != rem[j].deg {
				return rem[i].deg > rem[j].deg
			}
			return rem[i].v < rem[j].v
		})
		if rem[0].deg == 0 {
			break
		}
		k := rem[0].deg
		if k >= len(rem) {
			return nil, false
		}
		for j := 1; j <= k; j++ {
			if rem[j].deg <= 0 {
				return nil, false
			}
			if err := g.AddEdge(rem[0].v, rem[j].v); err != nil {
				return nil, false
			}
			rem[j].deg--
		}
		rem[0].deg = 0
	}
	return g, true
}
