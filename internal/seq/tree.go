package seq

import (
	"sort"

	"graphrealize/internal/graph"
)

// sortDesc returns the indices of d sorted by non-increasing degree, ties
// broken by index, together with the sorted degree values.
func sortDesc(d []int) (order []int, sorted []int) {
	n := len(d)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if d[order[a]] != d[order[b]] {
			return d[order[a]] > d[order[b]]
		}
		return order[a] < order[b]
	})
	sorted = make([]int, n)
	for i, v := range order {
		sorted[i] = d[v]
	}
	return order, sorted
}

// ChainTree realizes a tree sequence as Algorithm 4 does sequentially: the k
// non-leaf vertices (sorted by non-increasing degree) form a path, and each
// consumes its remaining degree requirement from the pool of leaves in order.
// This produces the maximum-diameter realization among the paper's two tree
// algorithms. Returns (nil,false) if d is not a tree sequence.
func ChainTree(d []int) (*graph.Graph, bool) {
	if !IsTreeSequence(d) {
		return nil, false
	}
	n := len(d)
	g := graph.New(n)
	if n == 1 {
		return g, true
	}
	order, sorted := sortDesc(d)
	k := 0
	for k < n && sorted[k] > 1 {
		k++
	}
	if k == 0 {
		// All degrees are 1: only n=2 is a valid tree sequence here.
		if n != 2 {
			return nil, false
		}
		_ = g.AddEdge(order[0], order[1])
		return g, true
	}
	// Chain the non-leaves.
	for i := 0; i+1 < k; i++ {
		_ = g.AddEdge(order[i], order[i+1])
	}
	// Attach leaves: vertex at sorted position i needs dᵢ−2 leaves (dᵢ−1 for
	// the two chain endpoints).
	leaf := k
	for i := 0; i < k; i++ {
		need := sorted[i] - 2
		if i == 0 || i == k-1 {
			need = sorted[i] - 1
		}
		if k == 1 {
			need = sorted[i] // single internal vertex: all neighbors are leaves
		}
		for j := 0; j < need; j++ {
			if leaf >= n {
				return nil, false
			}
			_ = g.AddEdge(order[i], order[leaf])
			leaf++
		}
	}
	if leaf != n {
		return nil, false
	}
	return g, true
}

// GreedyTree realizes a tree sequence as the greedy tree T_G of
// Smith–Székely–Wang (the paper's Algorithm 5, sequential form): vertices
// sorted by non-increasing degree; the root takes the next d₁ vertices as
// children, and each subsequent vertex xᵢ takes the next d(xᵢ)−1 unparented
// vertices. By Lemma 15 this realization has minimum diameter among all tree
// realizations of d. Returns (nil,false) if d is not a tree sequence.
func GreedyTree(d []int) (*graph.Graph, bool) {
	if !IsTreeSequence(d) {
		return nil, false
	}
	n := len(d)
	g := graph.New(n)
	if n == 1 {
		return g, true
	}
	order, sorted := sortDesc(d)
	// next is the position of the next vertex without a parent.
	next := 1
	for i := 0; i < n && next < n; i++ {
		take := sorted[i]
		if i > 0 {
			take-- // already attached to its parent
		}
		for j := 0; j < take; j++ {
			if next >= n {
				return nil, false
			}
			_ = g.AddEdge(order[i], order[next])
			next++
		}
	}
	if next != n {
		return nil, false
	}
	return g, true
}

// MinTreeDiameter returns the minimum possible diameter of any tree realizing
// d, which by Lemma 15 is the diameter of the greedy tree. Returns -1 if d
// is not a tree sequence.
func MinTreeDiameter(d []int) int {
	g, ok := GreedyTree(d)
	if !ok {
		return -1
	}
	if g.N() == 1 {
		return 0
	}
	return g.TreeDiameter()
}
