package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphrealize/internal/gen"
	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
)

// runRealize executes the realization protocol on the degree sequence d
// (d[i] assigned to the node at Gk position i) and returns the trace.
func runRealize(t *testing.T, d []int, mode Mode, method sortnet.Method, explicit bool, seed int64) *ncc.Trace {
	t.Helper()
	tr, err := runRealizeErr(d, mode, method, explicit, seed)
	if err != nil {
		t.Fatalf("n=%d: run: %v", len(d), err)
	}
	return tr
}

func runRealizeErr(d []int, mode Mode, method sortnet.Method, explicit bool, seed int64) (*ncc.Trace, error) {
	n := len(d)
	inputs := make([]any, n)
	for i, v := range d {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Inputs: inputs})
	sortnet.RegisterOracle(s)
	return s.Run(func(nd *ncc.Node) {
		env := Setup(nd, method)
		deg := nd.Input().(int)
		out := Realize(nd, env, deg, mode, true)
		nd.SetOutput("ok", b2i(out.OK))
		nd.SetOutput("phases", int64(out.Phases))
		nd.SetOutput("realized", int64(out.Realized))
		nd.SetOutput("delta", int64(out.Delta))
		if out.OK && explicit {
			stored := MakeExplicit(nd, env, out.Neighbors, out.Delta)
			nd.SetOutput("reverse", int64(stored))
		}
	})
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// buildGraph converts a trace's stored edges into a verification graph with
// vertices indexed by Gk position.
func buildGraph(tr *ncc.Trace) *graph.Graph {
	idx := make(map[ncc.ID]int, len(tr.IDs))
	for i, id := range tr.IDs {
		idx[id] = i
	}
	g := graph.New(len(tr.IDs))
	for e := range tr.EdgeSet() {
		_ = g.AddEdge(idx[e[0]], idx[e[1]])
	}
	return g
}

// multiEdgeFree checks that no edge was stored twice across the network
// (which EdgeSet would silently collapse).
func multiEdgeFree(tr *ncc.Trace) bool {
	seen := map[[2]ncc.ID]int{}
	for id, nr := range tr.Nodes {
		for _, p := range nr.Neighbors {
			a, b := id, p
			if a > b {
				a, b = b, a
			}
			seen[[2]ncc.ID{a, b}]++
		}
	}
	for _, c := range seen {
		if c > 1 {
			return false
		}
	}
	return true
}

func TestRealizeGraphicFamilies(t *testing.T) {
	cases := map[string][]int{
		"triangle":    {2, 2, 2},
		"k4":          {3, 3, 3, 3},
		"star":        {5, 1, 1, 1, 1, 1},
		"path":        {1, 2, 2, 2, 2, 1},
		"regular8x3":  gen.Regular(8, 3),
		"regular16x6": gen.Regular(16, 6),
		"rand30":      gen.FromRandomGraph(30, 0.3, 42),
		"rand64":      gen.FromRandomGraph(64, 0.1, 43),
		"powerlaw":    gen.PowerLaw(60, 2.1, 20, 44),
		"starheavy":   gen.StarHeavy(50, 2, 30),
		"bimodal":     gen.Bimodal(40, 2, 9),
		"zeros":       {0, 0, 0, 0},
		"mixedzeros":  {2, 2, 0, 0, 2, 0},
		"single":      {0},
		"pair":        {1, 1},
	}
	for name, d := range cases {
		if !seq.IsGraphic(d) {
			t.Fatalf("%s: test bug, sequence not graphic", name)
		}
		tr := runRealize(t, d, Exact, sortnet.Oracle, false, 99)
		if tr.Unrealizable {
			t.Fatalf("%s: declared unrealizable", name)
		}
		g := buildGraph(tr)
		if !g.DegreesMatch(d) {
			t.Fatalf("%s: degrees %v, want %v", name, g.Degrees(), d)
		}
		if !multiEdgeFree(tr) {
			t.Fatalf("%s: duplicate edge storage", name)
		}
		// Per-node realized accounting must equal the input degree.
		for i, id := range tr.IDs {
			if v, _ := tr.Output(id, "realized"); v != int64(d[i]) {
				t.Fatalf("%s: node %d realized %d, want %d", name, id, v, d[i])
			}
		}
	}
}

func TestRealizeDetectsNonGraphic(t *testing.T) {
	cases := [][]int{
		{3, 3, 1, 1},
		{1, 1, 1},
		{5, 5, 5, 1, 1, 1},
		{2, 0, 0},
		gen.NonGraphic(20, 3),
		gen.NonGraphic(41, 5),
		{9, 1, 1}, // degree exceeds n-1
		{-1, 1},   // negative degree
	}
	for _, d := range cases {
		tr := runRealize(t, d, Exact, sortnet.Oracle, false, 7)
		if !tr.Unrealizable {
			t.Fatalf("sequence %v not flagged unrealizable", d)
		}
	}
}

// TestQuickRealizeMatchesErdosGallai is the central correctness property:
// the distributed algorithm accepts exactly the graphic sequences, and its
// accepted outputs realize the degrees exactly.
func TestQuickRealizeMatchesErdosGallai(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		d := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(n)
		}
		tr, err := runRealizeErr(d, Exact, sortnet.Oracle, false, seed)
		if err != nil {
			return false
		}
		if tr.Unrealizable == seq.IsGraphic(d) {
			return false
		}
		if !tr.Unrealizable {
			if !buildGraph(tr).DegreesMatch(d) {
				return false
			}
			if !multiEdgeFree(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRealizeWithOddEvenSortAgrees(t *testing.T) {
	d := gen.FromRandomGraph(24, 0.25, 10)
	trO := runRealize(t, d, Exact, sortnet.Oracle, false, 11)
	trE := runRealize(t, d, Exact, sortnet.OddEven, false, 11)
	gO, gE := buildGraph(trO), buildGraph(trE)
	if !gO.DegreesMatch(d) || !gE.DegreesMatch(d) {
		t.Fatal("degree mismatch")
	}
	// Same seed ⇒ same IDs ⇒ identical deterministic realizations.
	eO, eE := gO.Edges(), gE.Edges()
	if len(eO) != len(eE) {
		t.Fatalf("edge counts differ: %d vs %d", len(eO), len(eE))
	}
	for i := range eO {
		if eO[i] != eE[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, eO[i], eE[i])
		}
	}
}

func TestEnvelopeRealization(t *testing.T) {
	cases := [][]int{
		{3, 3, 1, 1},
		{1, 1, 1},
		gen.NonGraphic(25, 9),
		gen.NonGraphic(40, 10),
		{2, 2, 2}, // already graphic: envelope must equal it
	}
	for _, d := range cases {
		tr := runRealize(t, d, Envelope, sortnet.Oracle, false, 13)
		if tr.Unrealizable {
			t.Fatalf("%v: envelope mode must never be unrealizable", d)
		}
		g := buildGraph(tr)
		if !multiEdgeFree(tr) {
			t.Fatalf("%v: duplicate edges", d)
		}
		sumD, sumDP := 0, 0
		for i, id := range tr.IDs {
			dp, _ := tr.Output(id, "realized")
			want := d[i]
			if want < 0 {
				want = 0
			}
			if want > len(d)-1 {
				want = len(d) - 1
			}
			if int(dp) < want {
				t.Fatalf("%v: node %d realized %d < required %d", d, id, dp, want)
			}
			if g.Degree(i) != int(dp) {
				t.Fatalf("%v: node %d graph degree %d != accounted %d", d, id, g.Degree(i), dp)
			}
			sumD += want
			sumDP += int(dp)
		}
		if sumDP > 2*sumD {
			t.Fatalf("%v: Σd' = %d exceeds 2Σd = %d", d, sumDP, 2*sumD)
		}
	}
}

func TestQuickEnvelope(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 3
		d := make([]int, n)
		for i := range d {
			d[i] = rng.Intn(n - 1)
		}
		tr, err := runRealizeErr(d, Envelope, sortnet.Oracle, false, seed)
		if err != nil || tr.Unrealizable {
			return false
		}
		g := buildGraph(tr)
		sumD, sumDP := 0, 0
		for i, id := range tr.IDs {
			dp, _ := tr.Output(id, "realized")
			if int(dp) < d[i] || g.Degree(i) != int(dp) {
				return false
			}
			sumD += d[i]
			sumDP += int(dp)
		}
		return sumD == 0 || sumDP <= 2*sumD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseBoundLemma10(t *testing.T) {
	cases := [][]int{
		gen.Regular(64, 8),
		gen.FromRandomGraph(80, 0.15, 21),
		gen.StarHeavy(60, 2, 40),
		gen.PowerLaw(100, 2.0, 30, 22),
	}
	for _, d := range cases {
		tr := runRealize(t, d, Exact, sortnet.Oracle, false, 23)
		m := seq.SumDegrees(d) / 2
		delta := seq.MaxDegree(d)
		bound := delta
		if sm := int(math.Sqrt(float64(m)))*2 + 2; sm < bound {
			bound = sm
		}
		// Lemma 10: phases ≤ min{Δ, O(√m)} (each δ takes ≤ 2 phases).
		phases, _ := tr.Output(tr.IDs[0], "phases")
		if int(phases) > 2*bound+2 {
			t.Fatalf("Δ=%d m=%d: %d phases exceeds Lemma 10 bound %d", delta, m, phases, 2*bound+2)
		}
	}
}

func TestBystandersStayIsolated(t *testing.T) {
	// Nodes at odd Gk positions are bystanders (active=false): they must end
	// with zero edges while the active half realizes its sequence.
	n := 24
	inputs := make([]any, n)
	for i := range inputs {
		if i%2 == 0 {
			inputs[i] = 3
		} else {
			inputs[i] = 0
		}
	}
	s := ncc.New(ncc.Config{N: n, Seed: 31, Strict: true, Inputs: inputs})
	sortnet.RegisterOracle(s)
	tr, err := s.Run(func(nd *ncc.Node) {
		env := Setup(nd, sortnet.Oracle)
		deg := nd.Input().(int)
		active := deg > 0
		out := Realize(nd, env, deg, Exact, active)
		nd.SetOutput("realized", int64(out.Realized))
		nd.SetOutput("active", b2i(active))
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if tr.Unrealizable {
		t.Fatal("12 nodes of degree 3 is graphic; flagged unrealizable")
	}
	g := buildGraph(tr)
	for i, id := range tr.IDs {
		want := 0
		if i%2 == 0 {
			want = 3
		}
		if g.Degree(i) != want {
			t.Fatalf("position %d: degree %d, want %d", i, g.Degree(i), want)
		}
		_ = id
	}
}

// edgeStorageCounts returns how many endpoints stored each canonical edge.
func edgeStorageCounts(tr *ncc.Trace) map[[2]ncc.ID]int {
	seen := map[[2]ncc.ID]int{}
	for id, nr := range tr.Nodes {
		for _, p := range nr.Neighbors {
			a, b := id, p
			if a > b {
				a, b = b, a
			}
			seen[[2]ncc.ID{a, b}]++
		}
	}
	return seen
}

func TestExplicitRealization(t *testing.T) {
	for _, d := range [][]int{
		gen.Regular(16, 5),
		gen.FromRandomGraph(40, 0.2, 77),
		gen.StarHeavy(30, 1, 20),
		{2, 2, 2},
	} {
		tr := runRealize(t, d, Exact, sortnet.Oracle, true, 55)
		if tr.Unrealizable {
			t.Fatalf("%v: unrealizable", d)
		}
		g := buildGraph(tr)
		if !g.DegreesMatch(d) {
			t.Fatalf("%v: explicit degrees %v", d, g.Degrees())
		}
		// Explicit = every edge stored at both endpoints, exactly once each.
		for e, c := range edgeStorageCounts(tr) {
			if c != 2 {
				t.Fatalf("%v: edge %v stored %d times, want 2", d, e, c)
			}
		}
		// Reverse notifications equal the member-stored edge count per node.
		for _, id := range tr.IDs {
			fwd := len(tr.Nodes[id].Neighbors)
			rev, _ := tr.Output(id, "reverse")
			realized, _ := tr.Output(id, "realized")
			if int64(fwd) != realized {
				t.Fatalf("node %d: stored %d edges but realized %d", id, fwd, realized)
			}
			_ = rev
		}
	}
}

func TestExplicitCapViolationsStayZero(t *testing.T) {
	// Strict mode is already enforced by runRealize; this documents that the
	// staggered notification keeps max receive below capacity on a dense
	// instance.
	d := gen.Regular(64, 31)
	tr := runRealize(t, d, Exact, sortnet.Oracle, true, 61)
	if tr.Metrics.RecvViolations != 0 || tr.Metrics.SendViolations != 0 {
		t.Fatalf("capacity violations: %+v", tr.Metrics)
	}
}
