package core

import (
	"reflect"
	"testing"

	"graphrealize/internal/ncc"
	"graphrealize/internal/sortnet"
)

// step_test.go checks the resumable-step compilation of the degree
// realization pipeline: SetupStep → RealizeStep → MakeExplicitStep driven by
// the flat scheduler must produce traces byte-identical to the blocking
// pipeline under the barrier driver, for realizable and unrealizable inputs.

func runRealizeStepFlat(t *testing.T, d []int, mode Mode, explicit bool, seed int64) (*ncc.Trace, error) {
	t.Helper()
	n := len(d)
	inputs := make([]any, n)
	for i, v := range d {
		inputs[i] = v
	}
	s := ncc.New(ncc.Config{N: n, Seed: seed, Strict: true, Inputs: inputs, Sched: ncc.SchedFlat})
	sortnet.RegisterOracle(s)
	return s.RunProgram(func(nd *ncc.Node) ncc.Op {
		return SetupStep(nd, sortnet.Oracle, func(env *Env) ncc.Op {
			deg := nd.Input().(int)
			return RealizeStep(nd, env, deg, mode, true, func(out Outcome) ncc.Op {
				nd.SetOutput("ok", b2i(out.OK))
				nd.SetOutput("phases", int64(out.Phases))
				nd.SetOutput("realized", int64(out.Realized))
				nd.SetOutput("delta", int64(out.Delta))
				if out.OK && explicit {
					return MakeExplicitStep(nd, env, out.Neighbors, out.Delta, func(stored int) ncc.Op {
						nd.SetOutput("reverse", int64(stored))
						return ncc.Done()
					})
				}
				return ncc.Done()
			})
		})
	})
}

func TestRealizeStepMatchesBlocking(t *testing.T) {
	cases := []struct {
		name     string
		d        []int
		mode     Mode
		explicit bool
	}{
		{"exact", []int{3, 3, 2, 2, 2, 2}, Exact, false},
		{"exact-explicit", []int{4, 3, 3, 2, 2, 2, 2, 2}, Exact, true},
		{"envelope", []int{9, 1, 1, 1}, Envelope, false},
		{"single", []int{0}, Exact, false},
		{"unrealizable", []int{5, 1}, Exact, false},
	}
	for _, c := range cases {
		seed := int64(len(c.d)) * 7
		base, berr := runRealizeErr(c.d, c.mode, sortnet.Oracle, c.explicit, seed)
		flat, ferr := runRealizeStepFlat(t, c.d, c.mode, c.explicit, seed)
		if (berr == nil) != (ferr == nil) || (berr != nil && berr.Error() != ferr.Error()) {
			t.Fatalf("%s: errors differ: blocking=%v flat=%v", c.name, berr, ferr)
		}
		if !reflect.DeepEqual(base, flat) {
			t.Fatalf("%s: flat step trace differs from blocking barrier trace", c.name)
		}
	}
}
