// Package core implements the paper's primary contribution: distributed
// degree-sequence realization in the NCC model (§4).
//
//   - Realize runs the parallel Havel–Hakimi of Algorithm 3: per phase the
//     nodes re-sort by remaining degree, learn the maximum degree δ and its
//     multiplicity N by aggregation, split the first q·(δ+1) ranks into q
//     star groups, and each group's center multicasts its ID to its δ
//     members, who store the implicit overlay edge (Theorem 11).
//   - Envelope mode changes exactly the paper's Step 13 alteration: a member
//     whose remaining degree would go negative clamps to zero instead of
//     raising the alarm, yielding an upper-envelope realization with
//     Σd′ ≤ 2Σd (Theorem 13).
//   - MakeExplicit converts an implicit realization into an explicit one by
//     having every edge holder notify the other endpoint, randomly staggered
//     so per-round receive load stays within the node capacity w.h.p.
//     (Theorem 12; the paper routes this through the token-collection
//     primitive, which direct addressing subsumes here because every holder
//     already knows its endpoint's ID).
//
// The protocol is written for NCC0 and therefore also runs unchanged in
// NCC1 (the paper's Remark in §2).
package core

import (
	"fmt"

	"graphrealize/internal/aggregate"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
	"graphrealize/internal/rankov"
	"graphrealize/internal/sortnet"
)

// Message kinds used by this package (0x70–0x7F block).
const (
	kNotify uint8 = 0x70 + iota
)

// Mode selects exact realization (Algorithm 3) or the upper-envelope variant
// of §4.3.
type Mode int

const (
	// Exact declares Unrealizable on non-graphic inputs (Theorem 11).
	Exact Mode = iota
	// Envelope clamps negative remainders to zero, realizing an upper
	// envelope D′ ≥ D with Σd′ ≤ 2Σd (Theorem 13).
	Envelope
)

// Env bundles the structural state shared by the realization protocols:
// the converted path, the structure L, the annotated TBFS on Gk, and the
// sorter. Build it once with Setup and reuse it across protocol stages.
type Env struct {
	Path primitives.Path
	Lv   primitives.Levels
	GK   primitives.Tree
	Sort sortnet.Sorter
}

// SetupStep builds the §3.1 structures on Gk and delivers the Env to k.
// Rounds: O(log n).
func SetupStep(nd *ncc.Node, method sortnet.Method, k func(*Env) ncc.Op) ncc.Op {
	return primitives.BuildAllStep(nd, func(p primitives.Path, lv primitives.Levels, t primitives.Tree) ncc.Op {
		env := &Env{Path: p, Lv: lv, GK: t}
		env.Sort = sortnet.Sorter{Method: method, Path: p, Pos: t.Pos, Tree: &env.GK}
		return k(env)
	})
}

// Setup is the blocking form of SetupStep.
func Setup(nd *ncc.Node, method sortnet.Method) *Env {
	var out *Env
	ncc.RunOps(nd, SetupStep(nd, method, func(env *Env) ncc.Op { out = env; return ncc.Done() }))
	return out
}

// Outcome reports a node's view of the realization.
type Outcome struct {
	// OK is false when the instance was declared unrealizable (Exact mode).
	OK bool
	// Phases is the number of while-loop iterations executed (Lemma 10
	// bounds it by min{Δ, √m} + 1).
	Phases int
	// Realized is the node's degree in the realized graph: the edges it
	// stored as a member plus, if it served as a group center, the members
	// that stored it.
	Realized int
	// Delta is the maximum degree observed in the first phase (= Δ of the
	// input), useful to later stages.
	Delta int
	// Neighbors lists the IDs this node stored via AddEdge (the implicit
	// edges it is responsible for); MakeExplicit consumes it.
	Neighbors []ncc.ID
}

// Realize runs distributed degree realization. deg is this node's required
// degree. active=false makes the node a bystander that participates in the
// global primitives but neither requests nor receives edges — the
// connectivity algorithm (§6.2) uses this to realize a degree sequence on
// only the d₀+1 core nodes while the rest of the network idles in lockstep.
//
// Edges are stored implicitly: each member stores its group center's ID via
// AddEdge. Centers do not store members (use MakeExplicit afterwards for an
// explicit realization).
func Realize(nd *ncc.Node, env *Env, deg int, mode Mode, active bool) Outcome {
	var out Outcome
	ncc.RunOps(nd, RealizeStep(nd, env, deg, mode, active, func(o Outcome) ncc.Op { out = o; return ncc.Done() }))
	return out
}

// RealizeStep is the resumable form of Realize; the Outcome is delivered
// to k.
func RealizeStep(nd *ncc.Node, env *Env, deg int, mode Mode, active bool, k func(Outcome) ncc.Op) ncc.Op {
	n := nd.N()
	out := Outcome{OK: true}

	// Input validation. A degree outside [0, n−1] is unrealizable; Envelope
	// mode clamps it (an envelope cannot exceed n−1 either — the paper's
	// envelope guarantee presumes d ≤ n−1).
	myDeg := deg
	bad := int64(0)
	if myDeg < 0 || myDeg > n-1 {
		if mode == Exact && active {
			bad = 1
		}
		if myDeg < 0 {
			myDeg = 0
		}
		if myDeg > n-1 {
			myDeg = n - 1
		}
	}
	done := false // true once this node served as a group center

	var phase func() ncc.Op
	phase = func() ncc.Op {
		// Sort key: live active nodes by remaining degree; finished centers
		// sink to −1 and bystanders to −2, below any live zero-degree node.
		key := int64(myDeg)
		if done {
			key = -1
		}
		if !active {
			key = -2
		}
		return env.Sort.SortStep(nd, key, func(sr sortnet.Result) ncc.Op {
			// δ = current maximum remaining degree (Step 4 broadcast).
			return aggregate.AggregateBroadcastStep(nd, &env.GK, key, aggregate.MaxOp(), func(delta64 int64) ncc.Op {
				if delta64 < 1 {
					return k(out)
				}
				out.Phases++
				delta := int(delta64)
				if out.Phases == 1 {
					out.Delta = delta
				}
				// N = multiplicity of δ (Step 6 aggregation + broadcast).
				cnt := int64(0)
				if key == delta64 {
					cnt = 1
				}
				return aggregate.AggregateBroadcastStep(nd, &env.GK, cnt, aggregate.SumOp(), func(sum int64) ncc.Op {
					bigN := int(sum)
					q := bigN / (delta + 1)
					if q < 1 {
						q = 1
					}
					// Group structure: centers at ranks α(δ+1) for α ∈ [0, q);
					// each center's members are the next δ ranks (Steps 7–10).
					// The liveness invariant (see DESIGN.md §4/T5 notes)
					// guarantees every member rank belongs to a live active
					// node.
					isCenter := !done && active && key >= 0 &&
						sr.Rank%(delta+1) == 0 && sr.Rank/(delta+1) < q
					return rankov.BuildStep(nd, sr.Rank, sr.Pred, sr.Succ, func(ov *rankov.Overlay) ncc.Op {
						var job *rankov.Job
						if isCenter {
							job = &rankov.Job{Payload: nd.ID(), Lo: sr.Rank + 1, Hi: sr.Rank + delta}
						}
						return rankov.DisseminateStep(nd, ov, &env.GK, job, func(groups []rankov.Job) ncc.Op {
							neg := int64(0)
							for _, g := range groups {
								if g.Lo != sr.Rank {
									panic(fmt.Sprintf("core: rank %d received a group token for rank %d", sr.Rank, g.Lo))
								}
								nd.AddEdge(g.Payload)
								out.Neighbors = append(out.Neighbors, g.Payload)
								out.Realized++
								myDeg--
								if myDeg < 0 {
									if mode == Envelope {
										myDeg = 0
									} else {
										neg = 1
									}
								}
							}
							if isCenter {
								done = true
								myDeg = 0
								out.Realized += delta
							}
							// Step 13's alarm: any negative remainder makes
							// the sequence unrealizable; everyone learns it in
							// one aggregation.
							return aggregate.AggregateBroadcastStep(nd, &env.GK, neg, aggregate.OrOp(), func(alarm int64) ncc.Op {
								if alarm == 1 {
									nd.Unrealizable()
									out.OK = false
									return k(out)
								}
								return phase()
							})
						})
					})
				})
			})
		})
	}

	return aggregate.AggregateBroadcastStep(nd, &env.GK, bad, aggregate.OrOp(), func(v int64) ncc.Op {
		if v == 1 {
			nd.Unrealizable()
			out.OK = false
			return k(out)
		}
		if !active {
			myDeg = 0
		}
		return phase()
	})
}

// MakeExplicit converts the implicit realization into an explicit one: every
// node that stored an edge notifies the other endpoint of its own ID, and
// the endpoint stores the reverse edge. Sends are randomly staggered over a
// window of ~4Δ/capacity rounds so that receive load stays within capacity
// w.h.p. (Theorem 12's O(m/n + Δ/log n + log n) shape).
//
// neighbors must be exactly the IDs this node stored via AddEdge during
// Realize; delta the maximum degree (Outcome.Delta, identical at all nodes).
// Returns the number of reverse edges stored.
func MakeExplicit(nd *ncc.Node, env *Env, neighbors []ncc.ID, delta int) int {
	var out int
	ncc.RunOps(nd, MakeExplicitStep(nd, env, neighbors, delta, func(stored int) ncc.Op { out = stored; return ncc.Done() }))
	return out
}

// MakeExplicitStep is the resumable form of MakeExplicit; the number of
// reverse edges stored is delivered to k.
func MakeExplicitStep(nd *ncc.Node, env *Env, neighbors []ncc.ID, delta int, k func(int) ncc.Op) ncc.Op {
	capi := nd.Capacity()
	budget := capi / 2
	if budget < 1 {
		budget = 1
	}
	window := (4*delta)/capi + 4
	// Every node stored at most Δ edges, so a backlog drains within
	// ⌈Δ/budget⌉ rounds; the total schedule length is common knowledge and
	// all nodes run it in lockstep.
	total := window + delta/budget + 4
	// Schedule each notification in a uniformly random round of the window.
	// All randomness is drawn before the first suspension, so the schedule is
	// identical across scheduler drivers.
	schedule := make(map[int][]ncc.ID, len(neighbors))
	for _, nb := range neighbors {
		r := nd.Rand().Intn(window)
		schedule[r] = append(schedule[r], nb)
	}
	stored := 0
	var backlog []ncc.ID
	var round func(r int) ncc.Op
	round = func(r int) ncc.Op {
		if r >= total {
			if len(backlog) > 0 {
				panic(fmt.Sprintf("core: MakeExplicit backlog not drained (%d left of %d, window %d)",
					len(backlog), len(neighbors), total))
			}
			return k(stored)
		}
		backlog = append(backlog, schedule[r]...)
		nSend := len(backlog)
		if nSend > budget {
			nSend = budget
		}
		for i := 0; i < nSend; i++ {
			nd.Send(backlog[i], ncc.Message{Kind: kNotify})
		}
		backlog = backlog[nSend:]
		return ncc.Next(func(nd *ncc.Node, w ncc.Wake) ncc.Op {
			for _, m := range w.Msgs {
				if m.Kind == kNotify {
					nd.AddEdge(m.Src)
					stored++
				}
			}
			return round(r + 1)
		})
	}
	return round(0)
}
