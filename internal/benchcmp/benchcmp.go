// Package benchcmp parses `go test -bench` output and compares two runs,
// the medians-based core of the CI benchmark-regression gate (cmd/benchgate).
// benchstat remains the tool for human-readable statistics; this package
// exists so the gate has a dependency-free, threshold-based pass/fail rule.
package benchcmp

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count, and
// the ns/op value. The -8 style GOMAXPROCS suffix is stripped from the name
// so runs from machines with different core counts compare.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+)\s+ns/op`)

// Parse reads benchmark output and returns ns/op samples keyed by benchmark
// name. Repeated runs of one benchmark (-count > 1) accumulate samples.
func Parse(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %v", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// fullLine additionally captures the -benchmem counters when present.
var fullLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+)\s+ns/op(?:\s+([0-9.eE+]+)\s+B/op)?(?:\s+([0-9.eE+]+)\s+allocs/op)?`)

// Result is one benchmark's medians over repeated samples, including the
// -benchmem counters when the run reported them (zero otherwise).
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Samples  int     `json:"samples"`
}

// ParseResults reads benchmark output (ideally produced with -benchmem) and
// returns per-benchmark medians sorted by name — the recording form used by
// committed BENCH_<sha>.json snapshots.
func ParseResults(r io.Reader) ([]Result, error) {
	type acc struct{ ns, b, allocs []float64 }
	accs := map[string]*acc{}
	var names []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := fullLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		a := accs[m[1]]
		if a == nil {
			a = &acc{}
			accs[m[1]] = a
			names = append(names, m[1])
		}
		for i, dst := range []*[]float64{&a.ns, &a.b, &a.allocs} {
			field := m[3+i]
			if field == "" {
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value in %q: %v", sc.Text(), err)
			}
			*dst = append(*dst, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(names)
	out := make([]Result, 0, len(names))
	for _, name := range names {
		a := accs[name]
		out = append(out, Result{
			Name:     name,
			NsOp:     Median(a.ns),
			BytesOp:  Median(a.b),
			AllocsOp: Median(a.allocs),
			Samples:  len(a.ns),
		})
	}
	return out, nil
}

// Median returns the median of vs (0 for an empty slice). It sorts a copy.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Delta is one benchmark's base-to-head comparison.
type Delta struct {
	Name    string  `json:"name"`
	BaseNs  float64 `json:"base_ns_op"` // median over base samples
	HeadNs  float64 `json:"head_ns_op"` // median over head samples
	Pct     float64 `json:"pct"`        // (head-base)/base·100; positive = slower
	Samples int     `json:"samples"`    // min(#base, #head) samples backing it
}

// Compare computes per-benchmark deltas over the names present in both
// runs, sorted by name. Benchmarks present in only one run carry no signal
// for a regression gate and are skipped.
func Compare(base, head map[string][]float64) []Delta {
	var out []Delta
	for name, baseVs := range base {
		headVs, ok := head[name]
		if !ok {
			continue
		}
		b, h := Median(baseVs), Median(headVs)
		d := Delta{Name: name, BaseNs: b, HeadNs: h, Samples: min(len(baseVs), len(headVs))}
		if b > 0 {
			d.Pct = (h - b) / b * 100
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Regressions filters deltas to those matching the pattern whose slowdown
// exceeds thresholdPct.
func Regressions(deltas []Delta, match *regexp.Regexp, thresholdPct float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if match != nil && !match.MatchString(d.Name) {
			continue
		}
		if d.Pct > thresholdPct {
			out = append(out, d)
		}
	}
	return out
}
