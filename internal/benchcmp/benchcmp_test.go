package benchcmp

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: graphrealize
BenchmarkBatchRealization/sequential-8   	       3	 383126167 ns/op	 1234 B/op	   56 allocs/op
BenchmarkBatchRealization/runner-8       	       3	 103126167 ns/op
BenchmarkBatchRealization/sequential-8   	       3	 390000000 ns/op
BenchmarkBatchRealization/runner-8       	       3	  99000000 ns/op
BenchmarkRealizeDegreesRounds/n=64-8     	       3	   1000000 ns/op	        55.00 rounds	       123 msgs
--- BENCH: BenchmarkSomething
    some_test.go:12: noise line with numbers 3 4 ns/op-ish
PASS
ok  	graphrealize	12.3s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkBatchRealization/sequential"]) != 2 {
		t.Fatalf("want 2 sequential samples, got %v", got)
	}
	if len(got["BenchmarkBatchRealization/runner"]) != 2 {
		t.Fatalf("want 2 runner samples, got %v", got)
	}
	// Custom-metric lines parse their ns/op, suffixes are stripped.
	if vs := got["BenchmarkRealizeDegreesRounds/n=64"]; len(vs) != 1 || vs[0] != 1e6 {
		t.Fatalf("custom-metric line parsed wrong: %v", vs)
	}
	if len(got) != 3 {
		t.Fatalf("noise lines must not parse: %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("odd median: %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median: %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median: %v", m)
	}
	vs := []float64{9, 1}
	_ = Median(vs)
	if vs[0] != 9 {
		t.Fatal("Median must not mutate its input")
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkBatchRealization/runner": {100, 110, 105},
		"BenchmarkOnlyInBase":              {50},
		"BenchmarkStable":                  {200},
	}
	head := map[string][]float64{
		"BenchmarkBatchRealization/runner": {150, 140, 145},
		"BenchmarkOnlyInHead":              {70},
		"BenchmarkStable":                  {210},
	}
	deltas := Compare(base, head)
	if len(deltas) != 2 {
		t.Fatalf("only common benchmarks compare: %+v", deltas)
	}
	runner := deltas[0]
	if runner.Name != "BenchmarkBatchRealization/runner" {
		t.Fatalf("deltas must be name-sorted: %+v", deltas)
	}
	// medians 105 -> 145: +38.1%
	if runner.Pct < 38 || runner.Pct > 39 {
		t.Fatalf("runner delta pct wrong: %+v", runner)
	}

	gate := regexp.MustCompile(`BatchRealization`)
	regs := Regressions(deltas, gate, 30)
	if len(regs) != 1 || regs[0].Name != runner.Name {
		t.Fatalf("runner must gate at >30%%: %+v", regs)
	}
	// The stable benchmark's +5% is under threshold; the gate also ignores
	// non-matching names entirely.
	if regs := Regressions(deltas, gate, 40); len(regs) != 0 {
		t.Fatalf("38%% must pass a 40%% threshold: %+v", regs)
	}
	if regs := Regressions(deltas, regexp.MustCompile(`Stable`), 1); len(regs) != 1 {
		t.Fatalf("threshold applies per matching benchmark: %+v", regs)
	}
}

func TestParseResultsWithBenchmem(t *testing.T) {
	input := `
goos: linux
BenchmarkBatchRunner/n=256/sched=flat-8    	      10	   1000000 ns/op	  204800 B/op	    1024 allocs/op
BenchmarkBatchRunner/n=256/sched=flat-8    	      10	   3000000 ns/op	  204800 B/op	    1026 allocs/op
BenchmarkBatchRunner/n=256/sched=flat-8    	      10	   2000000 ns/op	  204800 B/op	    1025 allocs/op
BenchmarkBarrierOverhead/n=256/sched=pool-8	     100	     50000 ns/op
PASS
`
	results, err := ParseResults(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	// Name-sorted: BarrierOverhead first; counters absent without -benchmem.
	if r := results[0]; r.Name != "BenchmarkBarrierOverhead/n=256/sched=pool" ||
		r.NsOp != 50000 || r.BytesOp != 0 || r.AllocsOp != 0 || r.Samples != 1 {
		t.Fatalf("bare result wrong: %+v", r)
	}
	// Medians over three samples, GOMAXPROCS suffix stripped.
	if r := results[1]; r.Name != "BenchmarkBatchRunner/n=256/sched=flat" ||
		r.NsOp != 2000000 || r.BytesOp != 204800 || r.AllocsOp != 1025 || r.Samples != 3 {
		t.Fatalf("benchmem result wrong: %+v", r)
	}
}
