package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"graphrealize"
	"graphrealize/internal/gen"
	"graphrealize/internal/lowerbound"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
	"graphrealize/internal/seq"
)

// connectivityJob builds one batch job for the §6 realization under the
// given knowledge model.
func connectivityJob(rho []int, model graphrealize.Model, seed int64) graphrealize.Job {
	return graphrealize.Job{
		Kind: graphrealize.JobConnectivity, Seq: rho,
		Opt: &graphrealize.Options{Model: model, Seed: seed},
	}
}

// sampleThresholdOK verifies Conn(u,v) ≥ min(ρu,ρv) on sampled pairs (exact
// all-pairs is O(n²·flow); sampling keeps Full scale tractable).
func sampleThresholdOK(g *graphrealize.Graph, rho []int, samples int) bool {
	n := len(rho)
	step := n*n/samples + 1
	cnt := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			cnt++
			if cnt%step != 0 && !(u == 0 && v == n-1) {
				continue
			}
			want := rho[u]
			if rho[v] < want {
				want = rho[v]
			}
			if want > 0 && g.EdgeConnectivity(u, v) < want {
				return false
			}
		}
	}
	return true
}

// T9ConnectivityNCC1 measures Theorem 17.
func T9ConnectivityNCC1(sc Scale) *Table {
	t := &Table{
		ID:      "T9",
		Title:   "Implicit connectivity realization in NCC1 (Thm 17)",
		Claim:   "O~(1) rounds (no Δ dependence); edges ≤ 2·OPT",
		Columns: []string{"n", "Δρ", "rounds", "rounds/log n", "edges", "LB", "edges/LB", "thresholds ok"},
	}
	sizes := sc.sizes([]int{64, 256}, []int{64, 256, 1024, 4096})
	jobs := make([]graphrealize.Job, 0, len(sizes))
	for _, n := range sizes {
		jobs = append(jobs, connectivityJob(gen.UniformRho(n, n/4, int64(n)), graphrealize.NCC1, int64(n)+1))
	}
	for _, res := range realizeAll(jobs) {
		res = mustRealize(res)
		rho := res.Job.Seq
		n := len(rho)
		lb := seq.ConnectivityLowerBound(rho)
		K := ncc.CeilLog2(n)
		t.AddRow(n, n/4, res.Stats.Rounds, float64(res.Stats.Rounds)/float64(K),
			res.Graph.M(), lb, float64(res.Graph.M())/float64(lb), sampleThresholdOK(res.Graph, rho, 60))
	}
	return t
}

// T10ConnectivityNCC0 measures Theorem 18: rounds scale with Δ.
func T10ConnectivityNCC0(sc Scale) *Table {
	t := &Table{
		ID:      "T10",
		Title:   "Explicit connectivity realization in NCC0 (Thm 18)",
		Claim:   "O~(Δ) rounds; edges ≤ 2·OPT; explicit storage",
		Columns: []string{"n", "Δρ", "rounds", "real rounds", "Δ·log n", "edges", "LB", "edges/LB", "thresholds ok"},
	}
	var jobs []graphrealize.Job
	var rhoMax []int
	for _, n := range sc.sizes([]int{128}, []int{128, 512, 2048}) {
		for _, maxRho := range []int{4, 16, 64} {
			if maxRho >= n {
				continue
			}
			jobs = append(jobs, connectivityJob(gen.UniformRho(n, maxRho, int64(n+maxRho)), graphrealize.NCC0, int64(n)+2))
			rhoMax = append(rhoMax, maxRho)
		}
	}
	for i, res := range realizeAll(jobs) {
		res = mustRealize(res)
		rho := res.Job.Seq
		n := len(rho)
		lb := seq.ConnectivityLowerBound(rho)
		K := ncc.CeilLog2(n)
		t.AddRow(n, rhoMax[i], res.Stats.Rounds, realRounds(res.Stats), rhoMax[i]*K, res.Graph.M(), lb,
			float64(res.Graph.M())/float64(lb), sampleThresholdOK(res.Graph, rho, 40))
	}
	return t
}

// T11LowerBounds measures the §7 experiments: how close the upper bounds
// run to the information-theoretic floors on the adversarial families.
func T11LowerBounds(sc Scale) *Table {
	t := &Table{
		ID:      "T11",
		Title:   "Lower-bound tightness (Thms 19, 20)",
		Claim:   "measured/floor ratio is polylog on D* (√m) and Δ-regular families",
		Columns: []string{"family", "n", "Δ", "m", "floor rounds", "measured real", "ratio", "ratio/log²n"},
		Notes:   []string{"floor: IDs that must be learned / per-round capacity; measured excludes charged sort rounds"},
	}
	var jobs []graphrealize.Job
	for _, n := range sc.sizes([]int{128}, []int{128, 256, 512, 1024}) {
		// D* family: k = n/2 nodes each demanding a clique among them, so
		// m = Θ(n²) and the per-node knowledge floor is Θ(√m) = Θ(n) IDs.
		jobs = append(jobs, graphrealize.Job{
			Kind: graphrealize.JobDegrees, Seq: gen.LowerBoundDStar(n, n*n/4),
			Opt: &graphrealize.Options{Seed: int64(n) + 3}, Label: "D*-sqrt(m)",
		})
		// Δ-regular explicit family (Theorem 19), Δ = n/2.
		jobs = append(jobs, graphrealize.Job{
			Kind: graphrealize.JobDegreesExplicit, Seq: gen.Regular(n, evenCap(n/2, n)),
			Opt: &graphrealize.Options{Seed: int64(n) + 4}, Label: "Δ-regular explicit",
		})
	}
	for _, res := range realizeAll(jobs) {
		res = mustRealize(res)
		d := res.Job.Seq
		n := len(d)
		K := ncc.CeilLog2(n)
		capi := K * ncc.DefaultCapMul
		real := realRounds(res.Stats)
		var floor int
		if res.Job.Kind == graphrealize.JobDegrees {
			floor = lowerbound.ImplicitFloorDStar(d, capi)
		} else {
			floor = lowerbound.ExplicitFloor(d, capi)
		}
		tight := lowerbound.NewTightness(real, floor)
		t.AddRow(res.Job.Label, n, seq.MaxDegree(d), seq.SumDegrees(d)/2,
			floor, real, tight.Ratio, tight.Ratio/float64(K*K))
	}
	return t
}

// renderTree draws an ASCII tree from parent/child maps, by Gk label.
func renderTree(root int64, left, right map[int64]int64) []string {
	var lines []string
	var rec func(node int64, prefix string, tail, isRoot bool)
	rec = func(node int64, prefix string, tail, isRoot bool) {
		line := fmt.Sprint(node)
		childPrefix := ""
		if !isRoot {
			connector := "|-"
			childPrefix = prefix + "| "
			if tail {
				connector = "`-"
				childPrefix = prefix + "  "
			}
			line = prefix + connector + line
		}
		lines = append(lines, line)
		var kids []int64
		if l, ok := left[node]; ok {
			kids = append(kids, l)
		}
		if r, ok := right[node]; ok {
			kids = append(kids, r)
		}
		for i, k := range kids {
			rec(k, childPrefix, i == len(kids)-1, false)
		}
	}
	rec(root, "", true, true)
	return lines
}

// F1Figure1 reproduces Figure 1: the warm-up balanced binary tree built on
// the ordered path 1..8 by the odd/even recursive decomposition.
func F1Figure1(Scale) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: warm-up balanced binary tree on Gk = 1..8",
		Claim:   "binary, spans all nodes, height ≤ ⌈log n⌉+1",
		Columns: []string{"tree"},
	}
	s := ncc.New(ncc.Config{N: 8, Seed: 1, Model: ncc.NCC1, OrderedIDs: true, Strict: true})
	tr := mustRun(s, func(nd *ncc.Node) {
		p := primitives.BuildPath(nd)
		wt := primitives.BuildWarmupTree(nd, p)
		nd.SetOutput("left", int64(wt.Left))
		nd.SetOutput("right", int64(wt.Right))
		if wt.IsRoot {
			nd.SetOutput("root", 1)
		}
	})
	left, right := map[int64]int64{}, map[int64]int64{}
	var root int64
	for _, id := range tr.IDs {
		if _, ok := tr.Output(id, "root"); ok {
			root = int64(id)
		}
		if l, _ := tr.Output(id, "left"); l != 0 {
			left[int64(id)] = l
		}
		if r, _ := tr.Output(id, "right"); r != 0 {
			right[int64(id)] = r
		}
	}
	for _, line := range renderTree(root, left, right) {
		t.AddRow(line)
	}
	return t
}

// F2Figure2 reproduces Figure 2: the structure L on 1..8 and the balanced
// binary search tree the controlled BFS builds on it. The golden structure
// (root 1 → right 5; 5 → {3,7}; 3 → {2,4}; 7 → {6,8}) is asserted by
// TestFigure2Golden in internal/primitives.
func F2Figure2(Scale) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: structure L and the BBST on Gk = 1..8",
		Claim:   "levels halve the path; inorder of TBFS = 1..8",
		Columns: []string{"structure"},
	}
	s := ncc.New(ncc.Config{N: 8, Seed: 1, Model: ncc.NCC1, OrderedIDs: true, Strict: true})
	tr := mustRun(s, func(nd *ncc.Node) {
		p := primitives.BuildPath(nd)
		lv := primitives.BuildLevels(nd, p)
		for r := 0; r <= lv.Top(); r++ {
			nd.SetOutput(fmt.Sprintf("succ%d", r), int64(lv.Succ[r]))
		}
		tree := primitives.BuildTBFS(nd, lv)
		primitives.AnnotateTree(nd, &tree)
		nd.SetOutput("left", int64(tree.Left))
		nd.SetOutput("right", int64(tree.Right))
		nd.SetOutput("pos", int64(tree.Pos))
		if tree.IsRoot {
			nd.SetOutput("root", 1)
		}
	})
	// Render each level's chains.
	K := ncc.CeilLog2(8)
	for r := 0; r <= K; r++ {
		var chains []string
		seen := map[int64]bool{}
		for _, start := range tr.IDs {
			if seen[int64(start)] {
				continue
			}
			// A chain start at level r is a node with no level-r pred: walk succ links.
			isStart := true
			for _, other := range tr.IDs {
				if s, _ := tr.Output(other, fmt.Sprintf("succ%d", r)); s == int64(start) {
					isStart = false
					break
				}
			}
			if !isStart {
				continue
			}
			var chain []string
			cur := int64(start)
			for cur != 0 && !seen[cur] {
				seen[cur] = true
				chain = append(chain, fmt.Sprint(cur))
				nxt, _ := tr.Output(ncc.ID(cur), fmt.Sprintf("succ%d", r))
				cur = nxt
			}
			chains = append(chains, strings.Join(chain, "-"))
		}
		sort.Strings(chains)
		t.AddRow(fmt.Sprintf("L%d: %s", r, strings.Join(chains, "  ")))
	}
	left, right := map[int64]int64{}, map[int64]int64{}
	var root int64
	inorderOK := true
	for i, id := range tr.IDs {
		if _, ok := tr.Output(id, "root"); ok {
			root = int64(id)
		}
		if l, _ := tr.Output(id, "left"); l != 0 {
			left[int64(id)] = l
		}
		if r, _ := tr.Output(id, "right"); r != 0 {
			right[int64(id)] = r
		}
		if p, _ := tr.Output(id, "pos"); p != int64(i) {
			inorderOK = false
		}
	}
	t.AddRow("BBST (inorder = 1..8: " + fmt.Sprint(inorderOK) + "):")
	for _, line := range renderTree(root, left, right) {
		t.AddRow(line)
	}
	return t
}

var _ = math.Sqrt // keep math import if sizes change
