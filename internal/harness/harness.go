// Package harness defines the reproduction experiments: one function per
// table/figure in DESIGN.md §4 (T1–T11, F1–F2), each running the relevant
// protocols in the NCC simulator and emitting a formatted table. Both
// bench_test.go (one testing.B per experiment) and cmd/benchtab (regenerates
// everything as text) drive this package, so the numbers in EXPERIMENTS.md
// are reproducible from either entry point.
package harness

import (
	"fmt"
	"strings"
	"sync"

	"graphrealize"
)

// Table is one experiment's output: a claim being validated, columns, and
// measured rows.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects experiment sizes: Quick for CI-grade runs, Full for the
// numbers recorded in EXPERIMENTS.md.
type Scale int

const (
	// Quick keeps every experiment under a second or two.
	Quick Scale = iota
	// Full uses the sweep sizes recorded in EXPERIMENTS.md.
	Full
)

func (s Scale) sizes(quick, full []int) []int {
	if s == Quick {
		return quick
	}
	return full
}

// The realization experiments (T5–T11) fan their sweeps out through a shared
// graphrealize.Runner so multi-family/multi-n rows run on all cores. The
// pool is created lazily; SetWorkers reconfigures it (0 = GOMAXPROCS).
var (
	poolMu      sync.Mutex
	poolWorkers int
	poolSched   graphrealize.Scheduler
	pool        *graphrealize.Runner
)

// SetWorkers bounds the parallelism of the experiment sweeps. Zero or
// negative selects GOMAXPROCS. It takes effect for subsequently started
// experiments.
func SetWorkers(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	poolWorkers = n
	pool = nil
}

// SetScheduler selects the simulator driver the experiment sweeps run on
// (benchtab -scheduler). The driver never affects measured rounds or
// messages — only wall-clock — so tables stay comparable across drivers.
func SetScheduler(s graphrealize.Scheduler) {
	poolMu.Lock()
	defer poolMu.Unlock()
	poolSched = s
}

// runner returns the shared batch runner, creating it on first use.
func runner() *graphrealize.Runner {
	poolMu.Lock()
	defer poolMu.Unlock()
	if pool == nil {
		pool = graphrealize.NewRunner(poolWorkers)
	}
	return pool
}

// realizeAll stamps the configured scheduler onto every job and runs the
// batch on the shared runner — the single funnel all experiment sweeps use.
func realizeAll(jobs []graphrealize.Job) []graphrealize.Result {
	poolMu.Lock()
	sched := poolSched
	poolMu.Unlock()
	if sched != graphrealize.BarrierScheduler {
		for i := range jobs {
			var o graphrealize.Options
			if jobs[i].Opt != nil {
				o = *jobs[i].Opt
			}
			o.Scheduler = sched
			jobs[i].Opt = &o
		}
	}
	return runner().RealizeAll(jobs)
}

// Experiment pairs an ID with its runner, for enumeration.
type Experiment struct {
	ID  string
	Run func(Scale) *Table
}

// All enumerates every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"T1", T1TreeConstruction},
		{"T2", T2Sorting},
		{"T3", T3GlobalPrimitives},
		{"T4", T4LocalPrimitives},
		{"T5", T5ImplicitRealization},
		{"T6", T6ExplicitRealization},
		{"T7", T7UpperEnvelope},
		{"T8", T8TreeRealization},
		{"T9", T9ConnectivityNCC1},
		{"T10", T10ConnectivityNCC0},
		{"T11", T11LowerBounds},
		{"F1", F1Figure1},
		{"F2", F2Figure2},
	}
}
