package harness

import (
	"errors"
	"fmt"
	"math"

	"graphrealize"
	"graphrealize/internal/aggregate"
	"graphrealize/internal/gen"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
)

// mustRun executes a protocol and panics on simulator errors — experiments
// are deterministic, so an error is a bug, not a measurement.
func mustRun(s *ncc.Sim, proto func(*ncc.Node)) *ncc.Trace {
	tr, err := s.Run(proto)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return tr
}

// mustRealize unwraps a batch result; the experiment families are realizable
// by construction, so any job error is a harness bug. Call sites that can
// meaningfully report an unrealizable verdict (T5's ok column) handle
// ErrUnrealizable before calling.
func mustRealize(res graphrealize.Result) graphrealize.Result {
	if res.Err != nil {
		panic(fmt.Sprintf("harness: %s job: %v", res.Job.Kind, res.Err))
	}
	return res
}

// degreesMatch reports whether the realized overlay meets the demanded
// degree sequence exactly.
func degreesMatch(g *graphrealize.Graph, d []int) bool {
	got := g.Degrees()
	if len(got) != len(d) {
		return false
	}
	for i := range d {
		if got[i] != d[i] {
			return false
		}
	}
	return true
}

// realRounds is the protocol-executed round count: total minus the rounds
// charged by oracle collectives.
func realRounds(st *graphrealize.Stats) int {
	return st.Rounds - st.ChargedRounds
}

// T1TreeConstruction measures Theorem 1 + Corollary 2: the TBFS (structure
// L + controlled BFS + annotation) is built in O(log n) rounds with height
// ≤ ⌈log₂ n⌉ + 1, and inorder equals the path order.
func T1TreeConstruction(sc Scale) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Balanced BST construction and positions (Thm 1, Cor 2)",
		Claim:   "rounds = O(log n); height ≤ ⌈log n⌉+1; inorder = Gk order",
		Columns: []string{"n", "ceil(log n)", "rounds", "rounds/log n", "height", "inorder=Gk"},
	}
	for _, n := range sc.sizes([]int{64, 256, 1024}, []int{64, 256, 1024, 4096, 16384}) {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n), Strict: true})
		tr := mustRun(s, func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			nd.SetOutput("pos", int64(tree.Pos))
			nd.SetOutput("depth", int64(tree.Depth))
		})
		height, ok := 0, true
		for i, id := range tr.IDs {
			d, _ := tr.Output(id, "depth")
			if int(d) > height {
				height = int(d)
			}
			if p, _ := tr.Output(id, "pos"); p != int64(i) {
				ok = false
			}
		}
		K := ncc.CeilLog2(n)
		t.AddRow(n, K, tr.Metrics.Rounds, float64(tr.Metrics.Rounds)/float64(K), height, ok)
	}
	return t
}

// T2Sorting measures Theorem 3: the sorted path. The oracle charges the
// ⌈log n⌉³ bound; the odd-even protocol is the real O(n) naive baseline the
// polylogarithmic algorithm beats (ablation A1).
func T2Sorting(sc Scale) *Table {
	t := &Table{
		ID:      "T2",
		Title:   "Distributed sorting into a sorted path (Thm 3)",
		Claim:   "merge protocol O(log³ n) rounds (real) vs O(n) naive protocol",
		Columns: []string{"n", "merge rounds", "merge/log³n", "oracle charge", "oddeven rounds", "oddeven/n"},
	}
	for _, n := range sc.sizes([]int{64, 256}, []int{64, 256, 1024}) {
		run := func(m sortnet.Method) int {
			s := ncc.New(ncc.Config{N: n, Seed: int64(n) * 3, Strict: true})
			sortnet.RegisterOracle(s)
			start := 0
			tr := mustRun(s, func(nd *ncc.Node) {
				p, _, tree := primitives.BuildAll(nd)
				if tree.IsRoot {
					start = nd.Round()
				}
				srt := &sortnet.Sorter{Method: m, Path: p, Pos: tree.Pos, Tree: &tree}
				srt.Sort(nd, nd.Rand().Int63n(1000))
			})
			return tr.Metrics.Rounds - start
		}
		K := ncc.CeilLog2(n)
		oracle := run(sortnet.Oracle)
		oddEven := run(sortnet.OddEven)
		merge := run(sortnet.Merge)
		t.AddRow(n, merge, float64(merge)/float64(K*K*K), oracle, oddEven, float64(oddEven)/float64(n))
	}
	return t
}

// T3GlobalPrimitives measures Theorems 4–5: broadcast and aggregation in
// O(log n) rounds; collection in O(k + log n).
func T3GlobalPrimitives(sc Scale) *Table {
	t := &Table{
		ID:      "T3",
		Title:   "Global broadcast/aggregation/collection (Thms 4, 5)",
		Claim:   "broadcast & aggregation O(log n); collection O(k + log n)",
		Columns: []string{"n", "k tokens", "bcast rounds", "agg rounds", "collect rounds"},
	}
	for _, n := range sc.sizes([]int{64, 256}, []int{64, 256, 1024, 4096}) {
		for _, perNode := range []int{1, 4} {
			var bcast, agg, collect int
			s := ncc.New(ncc.Config{N: n, Seed: int64(n + perNode)})
			mustRun(s, func(nd *ncc.Node) {
				_, _, tree := primitives.BuildAll(nd)
				r0 := nd.Round()
				aggregate.Broadcast(nd, &tree, tree.IsRoot, 7)
				r1 := nd.Round()
				aggregate.AggregateBroadcast(nd, &tree, int64(tree.Pos), aggregate.SumOp())
				r2 := nd.Round()
				leader := aggregate.FindByPosition(nd, &tree, 0)
				r3 := nd.Round()
				toks := make([]int64, perNode)
				for i := range toks {
					toks[i] = int64(tree.Pos)
				}
				aggregate.Collect(nd, &tree, toks, leader)
				if tree.IsRoot {
					bcast, agg, collect = r1-r0, r2-r1, nd.Round()-r3
				}
			})
			t.AddRow(n, perNode*n, bcast, agg, collect)
		}
	}
	return t
}

// T4LocalPrimitives measures Theorems 6–8 over the rendezvous-routing
// realization: rounds for g groups of s members each.
func T4LocalPrimitives(sc Scale) *Table {
	t := &Table{
		ID:      "T4",
		Title:   "Local aggregation/multicast/collection (Thms 6–8)",
		Claim:   "O(L/n + ell/log n + log n) rounds per primitive",
		Columns: []string{"n", "groups", "members", "L", "agg rounds", "mcast rounds", "collect rounds"},
		Notes:   []string{"rendezvous routing over structure-L links; see DESIGN.md substitution #3"},
	}
	for _, n := range sc.sizes([]int{128}, []int{128, 512, 2048}) {
		for _, groupSize := range []int{8, 32} {
			g := n / groupSize
			var agg, mcast, collect int
			s := ncc.New(ncc.Config{N: n, Seed: int64(n * groupSize)})
			mustRun(s, func(nd *ncc.Node) {
				_, lv, tree := primitives.BuildAll(nd)
				c := aggregate.NewLocalCtx(tree.Pos, lv, &tree, nd.N())
				gid := int64(tree.Pos / groupSize)
				isHead := tree.Pos%groupSize == 0
				var dest []int64
				if isHead {
					dest = []int64{gid}
				}
				r0 := nd.Round()
				aggregate.LocalAggregate(nd, c, []aggregate.GroupValue{{GID: gid, Value: 1}}, dest, aggregate.SumOp())
				r1 := nd.Round()
				var src []aggregate.GroupToken
				if isHead {
					src = []aggregate.GroupToken{{GID: gid, Token: gid}}
				}
				aggregate.LocalMulticast(nd, c, src, []int64{gid})
				r2 := nd.Round()
				aggregate.LocalCollect(nd, c, []aggregate.GroupToken{{GID: gid, Token: int64(tree.Pos)}}, dest)
				if tree.IsRoot {
					agg, mcast, collect = r1-r0, r2-r1, nd.Round()-r2
				}
			})
			t.AddRow(n, g, groupSize, n, agg, mcast, collect)
		}
	}
	return t
}

// degreeFamilies enumerates the instance families the §4 experiments sweep.
func degreeFamilies(n int, seed int64) map[string][]int {
	return map[string][]int{
		"regular-sqrt": gen.Regular(n, evenCap(int(math.Sqrt(float64(n))), n)),
		"regular-16":   gen.Regular(n, evenCap(16, n)),
		"random-graph": gen.FromRandomGraph(n, 8.0/float64(n), seed),
		"power-law":    gen.PowerLaw(n, 2.2, n/4, seed),
		"star-heavy":   gen.StarHeavy(n, 2, n/2),
	}
}

func evenCap(d, n int) int {
	if d >= n {
		d = n - 1
	}
	if (n*d)%2 != 0 {
		d--
	}
	if d < 0 {
		d = 0
	}
	return d
}

func familyOrder() []string {
	return []string{"regular-sqrt", "regular-16", "random-graph", "power-law", "star-heavy"}
}

// T5ImplicitRealization measures Theorem 11 + Lemma 10 across families. The
// per-family runs are independent, so they fan out through the shared batch
// runner and the rows are assembled from the results in family order.
func T5ImplicitRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T5",
		Title:   "Implicit degree realization (Thm 11, Lemma 10)",
		Claim:   "rounds = O~(min{√m, Δ}); phases ≤ 2·min{√m, Δ}+2; degrees exact",
		Columns: []string{"family", "n", "Δ", "m", "min(√m,Δ)", "phases", "rounds", "real", "real/phase", "degrees ok"},
	}
	for _, n := range sc.sizes([]int{256}, []int{256, 1024, 4096}) {
		fams := degreeFamilies(n, int64(n))
		jobs := make([]graphrealize.Job, 0, len(fams))
		for _, name := range familyOrder() {
			jobs = append(jobs, graphrealize.Job{
				Kind: graphrealize.JobDegrees, Seq: fams[name],
				Opt: &graphrealize.Options{Seed: int64(n) + 7}, Label: name,
			})
		}
		for _, res := range realizeAll(jobs) {
			d := res.Job.Seq
			m := seq.SumDegrees(d) / 2
			delta := seq.MaxDegree(d)
			minB := delta
			if sm := int(math.Sqrt(float64(m))); sm < minB {
				minB = sm
			}
			if errors.Is(res.Err, graphrealize.ErrUnrealizable) {
				// A non-graphic family sequence is a failed row, not a crash.
				t.AddRow(res.Job.Label, n, delta, m, minB, res.Stats.Phases,
					res.Stats.Rounds, realRounds(res.Stats), 0.0, false)
				continue
			}
			res = mustRealize(res)
			ok := degreesMatch(res.Graph, d)
			real := realRounds(res.Stats)
			perPhase := 0.0
			if res.Stats.Phases > 0 {
				perPhase = float64(real) / float64(res.Stats.Phases)
			}
			t.AddRow(res.Job.Label, n, delta, m, minB, res.Stats.Phases, res.Stats.Rounds, real, perPhase, ok)
		}
	}
	return t
}

// T6ExplicitRealization measures Theorem 12: the extra rounds of the
// explicit conversion against the m/n + Δ/log n + log n shape. Implicit and
// explicit variants of every family run concurrently in one batch.
func T6ExplicitRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T6",
		Title:   "Explicit degree realization (Thm 12)",
		Claim:   "conversion ≈ O(m/n + Δ/log n + log n) extra rounds",
		Columns: []string{"family", "n", "Δ", "m", "implicit rounds", "explicit rounds", "extra", "bound shape"},
	}
	for _, n := range sc.sizes([]int{256}, []int{256, 1024, 4096}) {
		fams := degreeFamilies(n, int64(n))
		var jobs []graphrealize.Job
		for _, name := range familyOrder() {
			for _, kind := range []graphrealize.JobKind{graphrealize.JobDegrees, graphrealize.JobDegreesExplicit} {
				jobs = append(jobs, graphrealize.Job{
					Kind: kind, Seq: fams[name],
					Opt: &graphrealize.Options{Seed: int64(n) + 7}, Label: name,
				})
			}
		}
		results := realizeAll(jobs)
		for i := 0; i < len(results); i += 2 {
			resI, resE := mustRealize(results[i]), mustRealize(results[i+1])
			d := resI.Job.Seq
			m := seq.SumDegrees(d) / 2
			delta := seq.MaxDegree(d)
			capi := resE.Stats.Capacity
			shape := m/n + delta/capi + ncc.CeilLog2(n)
			t.AddRow(resI.Job.Label, n, delta, m, resI.Stats.Rounds, resE.Stats.Rounds,
				resE.Stats.Rounds-resI.Stats.Rounds, shape)
		}
	}
	return t
}

// T7UpperEnvelope measures Theorem 13 on non-graphic inputs; all sizes run
// as one concurrent batch.
func T7UpperEnvelope(sc Scale) *Table {
	t := &Table{
		ID:      "T7",
		Title:   "Upper-envelope realization of non-graphic sequences (Thm 13)",
		Claim:   "d' ≥ d everywhere and Σd' ≤ 2Σd",
		Columns: []string{"n", "Σd", "Σd'", "ratio", "envelope ok"},
	}
	sizes := sc.sizes([]int{64, 256}, []int{64, 256, 1024})
	jobs := make([]graphrealize.Job, 0, len(sizes))
	for _, n := range sizes {
		jobs = append(jobs, graphrealize.Job{
			Kind: graphrealize.JobUpperEnvelope, Seq: gen.NonGraphic(n, int64(n)),
			Opt: &graphrealize.Options{Seed: int64(n) + 9},
		})
	}
	for _, res := range realizeAll(jobs) {
		res = mustRealize(res)
		d := res.Job.Seq
		n := len(d)
		sumD, sumDP := 0, 0
		ok := true
		for i, dp := range res.Envelope {
			want := d[i]
			if want > n-1 {
				want = n - 1
			}
			if dp < want {
				ok = false
			}
			sumD += want
			sumDP += dp
		}
		t.AddRow(n, sumD, sumDP, float64(sumDP)/float64(sumD), ok)
	}
	return t
}

// T8TreeRealization measures Theorems 14/16 and Lemma 15: Algorithm 4 and
// Algorithm 5 run concurrently for every family.
func T8TreeRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T8",
		Title:   "Tree realization: Algorithm 4 vs Algorithm 5 (Thms 14, 16)",
		Claim:   "both O(polylog n) rounds; Alg 5 diameter = optimal (Lemma 15)",
		Columns: []string{"family", "n", "alg4 rounds", "alg4 diam", "alg5 rounds", "alg5 diam", "optimal diam"},
	}
	for _, n := range sc.sizes([]int{128}, []int{128, 512, 2048}) {
		fams := map[string][]int{
			"random":      gen.TreeSequence(n, int64(n)),
			"caterpillar": gen.CaterpillarSequence(n, n/4),
			"star":        gen.StarSequence(n),
		}
		var jobs []graphrealize.Job
		for _, name := range []string{"random", "caterpillar", "star"} {
			for _, kind := range []graphrealize.JobKind{graphrealize.JobChainTree, graphrealize.JobMinDiamTree} {
				jobs = append(jobs, graphrealize.Job{
					Kind: kind, Seq: fams[name],
					Opt: &graphrealize.Options{Seed: int64(n) * 5}, Label: name,
				})
			}
		}
		results := realizeAll(jobs)
		for i := 0; i < len(results); i += 2 {
			res4, res5 := mustRealize(results[i]), mustRealize(results[i+1])
			t.AddRow(res4.Job.Label, n, res4.Stats.Rounds, res4.Graph.TreeDiameter(),
				res5.Stats.Rounds, res5.Graph.TreeDiameter(), seq.MinTreeDiameter(res4.Job.Seq))
		}
	}
	return t
}
