package harness

import (
	"fmt"
	"math"

	"graphrealize/internal/aggregate"
	"graphrealize/internal/core"
	"graphrealize/internal/gen"
	"graphrealize/internal/graph"
	"graphrealize/internal/ncc"
	"graphrealize/internal/primitives"
	"graphrealize/internal/seq"
	"graphrealize/internal/sortnet"
	"graphrealize/internal/trees"
)

// mustRun executes a protocol and panics on simulator errors — experiments
// are deterministic, so an error is a bug, not a measurement.
func mustRun(s *ncc.Sim, proto func(*ncc.Node)) *ncc.Trace {
	tr, err := s.Run(proto)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return tr
}

func buildGraph(tr *ncc.Trace) *graph.Graph {
	idx := make(map[ncc.ID]int, len(tr.IDs))
	for i, id := range tr.IDs {
		idx[id] = i
	}
	g := graph.New(len(tr.IDs))
	for e := range tr.EdgeSet() {
		_ = g.AddEdge(idx[e[0]], idx[e[1]])
	}
	return g
}

func toInputs(d []int) []any {
	in := make([]any, len(d))
	for i, v := range d {
		in[i] = v
	}
	return in
}

// T1TreeConstruction measures Theorem 1 + Corollary 2: the TBFS (structure
// L + controlled BFS + annotation) is built in O(log n) rounds with height
// ≤ ⌈log₂ n⌉ + 1, and inorder equals the path order.
func T1TreeConstruction(sc Scale) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Balanced BST construction and positions (Thm 1, Cor 2)",
		Claim:   "rounds = O(log n); height ≤ ⌈log n⌉+1; inorder = Gk order",
		Columns: []string{"n", "ceil(log n)", "rounds", "rounds/log n", "height", "inorder=Gk"},
	}
	for _, n := range sc.sizes([]int{64, 256, 1024}, []int{64, 256, 1024, 4096, 16384}) {
		s := ncc.New(ncc.Config{N: n, Seed: int64(n), Strict: true})
		tr := mustRun(s, func(nd *ncc.Node) {
			_, _, tree := primitives.BuildAll(nd)
			nd.SetOutput("pos", int64(tree.Pos))
			nd.SetOutput("depth", int64(tree.Depth))
		})
		height, ok := 0, true
		for i, id := range tr.IDs {
			d, _ := tr.Output(id, "depth")
			if int(d) > height {
				height = int(d)
			}
			if p, _ := tr.Output(id, "pos"); p != int64(i) {
				ok = false
			}
		}
		K := ncc.CeilLog2(n)
		t.AddRow(n, K, tr.Metrics.Rounds, float64(tr.Metrics.Rounds)/float64(K), height, ok)
	}
	return t
}

// T2Sorting measures Theorem 3: the sorted path. The oracle charges the
// ⌈log n⌉³ bound; the odd-even protocol is the real O(n) naive baseline the
// polylogarithmic algorithm beats (ablation A1).
func T2Sorting(sc Scale) *Table {
	t := &Table{
		ID:      "T2",
		Title:   "Distributed sorting into a sorted path (Thm 3)",
		Claim:   "merge protocol O(log³ n) rounds (real) vs O(n) naive protocol",
		Columns: []string{"n", "merge rounds", "merge/log³n", "oracle charge", "oddeven rounds", "oddeven/n"},
	}
	for _, n := range sc.sizes([]int{64, 256}, []int{64, 256, 1024}) {
		run := func(m sortnet.Method) int {
			s := ncc.New(ncc.Config{N: n, Seed: int64(n) * 3, Strict: true})
			sortnet.RegisterOracle(s)
			start := 0
			tr := mustRun(s, func(nd *ncc.Node) {
				p, _, tree := primitives.BuildAll(nd)
				if tree.IsRoot {
					start = nd.Round()
				}
				srt := &sortnet.Sorter{Method: m, Path: p, Pos: tree.Pos, Tree: &tree}
				srt.Sort(nd, nd.Rand().Int63n(1000))
			})
			return tr.Metrics.Rounds - start
		}
		K := ncc.CeilLog2(n)
		oracle := run(sortnet.Oracle)
		oddEven := run(sortnet.OddEven)
		merge := run(sortnet.Merge)
		t.AddRow(n, merge, float64(merge)/float64(K*K*K), oracle, oddEven, float64(oddEven)/float64(n))
	}
	return t
}

// T3GlobalPrimitives measures Theorems 4–5: broadcast and aggregation in
// O(log n) rounds; collection in O(k + log n).
func T3GlobalPrimitives(sc Scale) *Table {
	t := &Table{
		ID:      "T3",
		Title:   "Global broadcast/aggregation/collection (Thms 4, 5)",
		Claim:   "broadcast & aggregation O(log n); collection O(k + log n)",
		Columns: []string{"n", "k tokens", "bcast rounds", "agg rounds", "collect rounds"},
	}
	for _, n := range sc.sizes([]int{64, 256}, []int{64, 256, 1024, 4096}) {
		for _, perNode := range []int{1, 4} {
			var bcast, agg, collect int
			s := ncc.New(ncc.Config{N: n, Seed: int64(n + perNode)})
			mustRun(s, func(nd *ncc.Node) {
				_, _, tree := primitives.BuildAll(nd)
				r0 := nd.Round()
				aggregate.Broadcast(nd, &tree, tree.IsRoot, 7)
				r1 := nd.Round()
				aggregate.AggregateBroadcast(nd, &tree, int64(tree.Pos), aggregate.SumOp())
				r2 := nd.Round()
				leader := aggregate.FindByPosition(nd, &tree, 0)
				r3 := nd.Round()
				toks := make([]int64, perNode)
				for i := range toks {
					toks[i] = int64(tree.Pos)
				}
				aggregate.Collect(nd, &tree, toks, leader)
				if tree.IsRoot {
					bcast, agg, collect = r1-r0, r2-r1, nd.Round()-r3
				}
			})
			t.AddRow(n, perNode*n, bcast, agg, collect)
		}
	}
	return t
}

// T4LocalPrimitives measures Theorems 6–8 over the rendezvous-routing
// realization: rounds for g groups of s members each.
func T4LocalPrimitives(sc Scale) *Table {
	t := &Table{
		ID:      "T4",
		Title:   "Local aggregation/multicast/collection (Thms 6–8)",
		Claim:   "O(L/n + ell/log n + log n) rounds per primitive",
		Columns: []string{"n", "groups", "members", "L", "agg rounds", "mcast rounds", "collect rounds"},
		Notes:   []string{"rendezvous routing over structure-L links; see DESIGN.md substitution #3"},
	}
	for _, n := range sc.sizes([]int{128}, []int{128, 512, 2048}) {
		for _, groupSize := range []int{8, 32} {
			g := n / groupSize
			var agg, mcast, collect int
			s := ncc.New(ncc.Config{N: n, Seed: int64(n * groupSize)})
			mustRun(s, func(nd *ncc.Node) {
				_, lv, tree := primitives.BuildAll(nd)
				c := aggregate.NewLocalCtx(tree.Pos, lv, &tree, nd.N())
				gid := int64(tree.Pos / groupSize)
				isHead := tree.Pos%groupSize == 0
				var dest []int64
				if isHead {
					dest = []int64{gid}
				}
				r0 := nd.Round()
				aggregate.LocalAggregate(nd, c, []aggregate.GroupValue{{GID: gid, Value: 1}}, dest, aggregate.SumOp())
				r1 := nd.Round()
				var src []aggregate.GroupToken
				if isHead {
					src = []aggregate.GroupToken{{GID: gid, Token: gid}}
				}
				aggregate.LocalMulticast(nd, c, src, []int64{gid})
				r2 := nd.Round()
				aggregate.LocalCollect(nd, c, []aggregate.GroupToken{{GID: gid, Token: int64(tree.Pos)}}, dest)
				if tree.IsRoot {
					agg, mcast, collect = r1-r0, r2-r1, nd.Round()-r2
				}
			})
			t.AddRow(n, g, groupSize, n, agg, mcast, collect)
		}
	}
	return t
}

// degreeFamilies enumerates the instance families the §4 experiments sweep.
func degreeFamilies(n int, seed int64) map[string][]int {
	return map[string][]int{
		"regular-sqrt": gen.Regular(n, evenCap(int(math.Sqrt(float64(n))), n)),
		"regular-16":   gen.Regular(n, evenCap(16, n)),
		"random-graph": gen.FromRandomGraph(n, 8.0/float64(n), seed),
		"power-law":    gen.PowerLaw(n, 2.2, n/4, seed),
		"star-heavy":   gen.StarHeavy(n, 2, n/2),
	}
}

func evenCap(d, n int) int {
	if d >= n {
		d = n - 1
	}
	if (n*d)%2 != 0 {
		d--
	}
	if d < 0 {
		d = 0
	}
	return d
}

func familyOrder() []string {
	return []string{"regular-sqrt", "regular-16", "random-graph", "power-law", "star-heavy"}
}

func runRealize(d []int, mode core.Mode, explicit bool, seed int64) (*ncc.Trace, int) {
	s := ncc.New(ncc.Config{N: len(d), Seed: seed, Inputs: toInputs(d)})
	sortnet.RegisterOracle(s)
	tr := mustRun(s, func(nd *ncc.Node) {
		env := core.Setup(nd, sortnet.Oracle)
		out := core.Realize(nd, env, nd.Input().(int), mode, true)
		nd.SetOutput("phases", int64(out.Phases))
		nd.SetOutput("realized", int64(out.Realized))
		if out.OK && explicit {
			core.MakeExplicit(nd, env, out.Neighbors, out.Delta)
		}
	})
	phases, _ := tr.Output(tr.IDs[0], "phases")
	return tr, int(phases)
}

// T5ImplicitRealization measures Theorem 11 + Lemma 10 across families.
func T5ImplicitRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T5",
		Title:   "Implicit degree realization (Thm 11, Lemma 10)",
		Claim:   "rounds = O~(min{√m, Δ}); phases ≤ 2·min{√m, Δ}+2; degrees exact",
		Columns: []string{"family", "n", "Δ", "m", "min(√m,Δ)", "phases", "rounds", "real", "real/phase", "degrees ok"},
	}
	for _, n := range sc.sizes([]int{256}, []int{256, 1024, 4096}) {
		fams := degreeFamilies(n, int64(n))
		for _, name := range familyOrder() {
			d := fams[name]
			tr, phases := runRealize(d, core.Exact, false, int64(n)+7)
			m := seq.SumDegrees(d) / 2
			delta := seq.MaxDegree(d)
			minB := delta
			if sm := int(math.Sqrt(float64(m))); sm < minB {
				minB = sm
			}
			ok := buildGraph(tr).DegreesMatch(d) && !tr.Unrealizable
			real := tr.Metrics.Rounds - tr.Metrics.CollectiveRounds
			perPhase := 0.0
			if phases > 0 {
				perPhase = float64(real) / float64(phases)
			}
			t.AddRow(name, n, delta, m, minB, phases, tr.Metrics.Rounds, real, perPhase, ok)
		}
	}
	return t
}

// T6ExplicitRealization measures Theorem 12: the extra rounds of the
// explicit conversion against the m/n + Δ/log n + log n shape.
func T6ExplicitRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T6",
		Title:   "Explicit degree realization (Thm 12)",
		Claim:   "conversion ≈ O(m/n + Δ/log n + log n) extra rounds",
		Columns: []string{"family", "n", "Δ", "m", "implicit rounds", "explicit rounds", "extra", "bound shape"},
	}
	for _, n := range sc.sizes([]int{256}, []int{256, 1024, 4096}) {
		fams := degreeFamilies(n, int64(n))
		for _, name := range familyOrder() {
			d := fams[name]
			trI, _ := runRealize(d, core.Exact, false, int64(n)+7)
			trE, _ := runRealize(d, core.Exact, true, int64(n)+7)
			m := seq.SumDegrees(d) / 2
			delta := seq.MaxDegree(d)
			capi := trE.Metrics.Capacity
			shape := m/n + delta/capi + ncc.CeilLog2(n)
			t.AddRow(name, n, delta, m, trI.Metrics.Rounds, trE.Metrics.Rounds,
				trE.Metrics.Rounds-trI.Metrics.Rounds, shape)
		}
	}
	return t
}

// T7UpperEnvelope measures Theorem 13 on non-graphic inputs.
func T7UpperEnvelope(sc Scale) *Table {
	t := &Table{
		ID:      "T7",
		Title:   "Upper-envelope realization of non-graphic sequences (Thm 13)",
		Claim:   "d' ≥ d everywhere and Σd' ≤ 2Σd",
		Columns: []string{"n", "Σd", "Σd'", "ratio", "envelope ok"},
	}
	for _, n := range sc.sizes([]int{64, 256}, []int{64, 256, 1024}) {
		d := gen.NonGraphic(n, int64(n))
		tr, _ := runRealize(d, core.Envelope, false, int64(n)+9)
		sumD, sumDP := 0, 0
		ok := true
		for i, id := range tr.IDs {
			dp, _ := tr.Output(id, "realized")
			want := d[i]
			if want > n-1 {
				want = n - 1
			}
			if int(dp) < want {
				ok = false
			}
			sumD += want
			sumDP += int(dp)
		}
		t.AddRow(n, sumD, sumDP, float64(sumDP)/float64(sumD), ok)
	}
	return t
}

// T8TreeRealization measures Theorems 14/16 and Lemma 15.
func T8TreeRealization(sc Scale) *Table {
	t := &Table{
		ID:      "T8",
		Title:   "Tree realization: Algorithm 4 vs Algorithm 5 (Thms 14, 16)",
		Claim:   "both O(polylog n) rounds; Alg 5 diameter = optimal (Lemma 15)",
		Columns: []string{"family", "n", "alg4 rounds", "alg4 diam", "alg5 rounds", "alg5 diam", "optimal diam"},
	}
	for _, n := range sc.sizes([]int{128}, []int{128, 512, 2048}) {
		fams := map[string][]int{
			"random":      gen.TreeSequence(n, int64(n)),
			"caterpillar": gen.CaterpillarSequence(n, n/4),
			"star":        gen.StarSequence(n),
		}
		for _, name := range []string{"random", "caterpillar", "star"} {
			d := fams[name]
			run := func(greedy bool) (*ncc.Trace, int) {
				s := ncc.New(ncc.Config{N: n, Seed: int64(n) * 5, Inputs: toInputs(d)})
				sortnet.RegisterOracle(s)
				tr := mustRun(s, func(nd *ncc.Node) {
					env := core.Setup(nd, sortnet.Oracle)
					if greedy {
						trees.RealizeGreedy(nd, env, nd.Input().(int))
					} else {
						trees.RealizeChain(nd, env, nd.Input().(int))
					}
				})
				return tr, buildGraph(tr).TreeDiameter()
			}
			tr4, d4 := run(false)
			tr5, d5 := run(true)
			t.AddRow(name, n, tr4.Metrics.Rounds, d4, tr5.Metrics.Rounds, d5, seq.MinTreeDiameter(d))
		}
	}
	return t
}
