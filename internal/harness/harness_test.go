package harness

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at Quick scale — the same
// entry point cmd/benchtab uses — and sanity-checks structure and the
// headline claims that are cheap to assert programmatically.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(Quick)
			if tab.ID != e.ID {
				t.Fatalf("table ID %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Columns) && len(tab.Columns) > 1 {
					t.Fatalf("row width %d, columns %d", len(r), len(tab.Columns))
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.Claim) {
				t.Fatal("formatted table lost the claim line")
			}
		})
	}
}

// TestT5DegreesAlwaysOK asserts the correctness column of the headline
// experiment: every family/size realizes its degrees exactly.
func TestT5DegreesAlwaysOK(t *testing.T) {
	tab := T5ImplicitRealization(Quick)
	col := -1
	for i, c := range tab.Columns {
		if c == "degrees ok" {
			col = i
		}
	}
	if col == -1 {
		t.Fatal("missing degrees-ok column")
	}
	for _, r := range tab.Rows {
		if r[col] != "true" {
			t.Fatalf("row %v: degrees not realized", r)
		}
	}
}

// TestT9T10ApproxWithinBound asserts the 2-approximation column.
func TestT9T10ApproxWithinBound(t *testing.T) {
	for _, tab := range []*Table{T9ConnectivityNCC1(Quick), T10ConnectivityNCC0(Quick)} {
		col, okCol := -1, -1
		for i, c := range tab.Columns {
			if c == "edges/LB" {
				col = i
			}
			if c == "thresholds ok" {
				okCol = i
			}
		}
		for _, r := range tab.Rows {
			if r[okCol] != "true" {
				t.Fatalf("%s row %v: thresholds violated", tab.ID, r)
			}
			if strings.Compare(r[col], "2.00") > 0 && !strings.HasPrefix(r[col], "0") && !strings.HasPrefix(r[col], "1") {
				t.Fatalf("%s row %v: approximation above 2", tab.ID, r)
			}
		}
	}
}

// TestT8GreedyOptimal asserts Lemma 15's column: alg5 diameter = optimal.
func TestT8GreedyOptimal(t *testing.T) {
	tab := T8TreeRealization(Quick)
	var alg5, opt int
	for i, c := range tab.Columns {
		if c == "alg5 diam" {
			alg5 = i
		}
		if c == "optimal diam" {
			opt = i
		}
	}
	for _, r := range tab.Rows {
		if r[alg5] != r[opt] {
			t.Fatalf("row %v: greedy diameter not optimal", r)
		}
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Claim: "c", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-cell", true)
	out := tab.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}
