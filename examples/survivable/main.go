// Survivable network design: connectivity-threshold realization (§6).
//
// A content-delivery operator runs 48 nodes in three tiers: 4 core nodes
// that must tolerate 5 simultaneous link failures between any pair, a
// distribution tier that needs 3-edge-connectivity, and edge caches that
// need only to stay attached. Each node knows only its own requirement
// ρ(v); the distributed algorithm builds an overlay with Conn(u,v) ≥
// min(ρ(u), ρ(v)) using at most twice the optimal number of links, in both
// knowledge models (Theorem 17 for NCC1, Algorithm 6 for NCC0). The example
// verifies the guarantee by computing exact max-flow min-cuts and then
// deletes random links to show the survivability in action.
//
//	go run ./examples/survivable
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	const n = 48
	rho := gen.TieredRho(n, 4, 6, 3, 1) // core ρ=6, mid ρ=3, edge ρ=1

	for _, model := range []graphrealize.Model{graphrealize.NCC0, graphrealize.NCC1} {
		name := "NCC0 (Algorithm 6, explicit)"
		if model == graphrealize.NCC1 {
			name = "NCC1 (Theorem 17, implicit)"
		}
		g, stats, err := graphrealize.RealizeConnectivity(rho, &graphrealize.Options{
			Model: model, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		lb := graphrealize.ConnectivityLowerBound(rho)
		fmt.Printf("%s\n  links=%d (lower bound %d, approx %.2f ≤ 2.00)\n  cost: %s\n",
			name, g.M(), lb, float64(g.M())/float64(lb), stats)

		// Verify the pairwise guarantee exactly: core-core pairs need ρ=6,
		// core-mid pairs only min(6,3)=3.
		worstCore, worstMixed := 1<<30, 1<<30
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 8; v++ {
				want := min(rho[u], rho[v])
				got := g.EdgeConnectivity(u, v)
				if got < want {
					log.Fatalf("threshold violated: Conn(%d,%d)=%d < %d", u, v, got, want)
				}
				if v < 4 && got < worstCore {
					worstCore = got
				}
				if v >= 4 && got < worstMixed {
					worstMixed = got
				}
			}
		}
		fmt.Printf("  verified: worst core-core connectivity %d (required %d); worst core-mid %d (required %d)\n",
			worstCore, rho[0], worstMixed, min(rho[0], rho[7]))

		// Survivability demo: cut ρ(core)-1 random links touching node 0 and
		// confirm the core stays mutually reachable.
		h := clone(g)
		rng := rand.New(rand.NewSource(3))
		cut := 0
		for cut < rho[0]-1 && len(h.Adj[0]) > 0 {
			v := h.Adj[0][rng.Intn(len(h.Adj[0]))]
			removeEdge(h, 0, v)
			cut++
		}
		fmt.Printf("  after cutting %d links at core node 0: still connected to core peers: %v\n\n",
			cut, h.EdgeConnectivity(0, 1) >= 1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clone(g *graphrealize.Graph) *graphrealize.Graph {
	h := &graphrealize.Graph{N: g.N, Adj: make([][]int, g.N)}
	for v, a := range g.Adj {
		h.Adj[v] = append([]int(nil), a...)
	}
	return h
}

func removeEdge(g *graphrealize.Graph, u, v int) {
	g.Adj[u] = remove(g.Adj[u], v)
	g.Adj[v] = remove(g.Adj[v], u)
}

func remove(a []int, x int) []int {
	out := a[:0]
	for _, v := range a {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
