// P2P overlay construction: the paper's motivating scenario (§1).
//
// A swarm of 256 peers bootstraps from a bare knowledge chain (each peer
// knows one other peer's address) into a bounded-degree overlay suitable for
// gossip: every peer asks for degree 8. The example builds the overlay with
// the distributed degree-realization algorithm, then measures the properties
// that matter for a P2P deployment — degree bounds, connectivity, diameter,
// and simulated gossip coverage per round — and compares the overlay against
// a star topology with the same edge budget.
//
//	go run ./examples/p2poverlay
package main

import (
	"fmt"
	"log"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	const n = 256
	const degree = 8

	want := gen.Regular(n, degree)
	g, stats, err := graphrealize.RealizeDegreesExplicit(want, &graphrealize.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overlay: %d peers, degree %d everywhere, %d links\n", n, degree, g.M())
	fmt.Printf("bootstrap cost: %d NCC rounds (%d charged), %d messages, max per-round load %d/%d\n",
		stats.Rounds, stats.ChargedRounds, stats.Messages, stats.MaxRecv, stats.Capacity)
	fmt.Printf("connected: %v, diameter: %d\n", g.Connected(), g.Diameter())

	// Gossip: how fast does a rumor spread on the realized overlay?
	rounds := gossipRounds(g, 0)
	fmt.Printf("push gossip from peer 0 reaches all %d peers in %d hops\n", n, rounds)

	// The same total edge budget spent on a hub-and-spoke topology gives a
	// diameter-2 network but a hub with n-1 links — exactly the maintenance
	// blow-up bounded-degree overlays avoid.
	fmt.Printf("\ncomparison: a star with one hub has diameter 2 but hub degree %d;\n", n-1)
	fmt.Printf("the realized overlay caps every peer at %d links with diameter %d.\n",
		degree, g.Diameter())
}

// gossipRounds floods from src and returns the number of synchronous hops
// until every vertex is informed (the overlay's broadcast latency).
func gossipRounds(g *graphrealize.Graph, src int) int {
	informed := make([]bool, g.N)
	informed[src] = true
	frontier := []int{src}
	rounds := 0
	remaining := g.N - 1
	for remaining > 0 {
		rounds++
		var next []int
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if !informed[v] {
					informed[v] = true
					next = append(next, v)
					remaining--
				}
			}
		}
		if len(next) == 0 {
			return -1 // disconnected
		}
		frontier = next
	}
	return rounds
}
