// Streaming multicast backbone: tree realization with minimum diameter (§5).
//
// A live-video source feeds 200 relays. Each relay advertises how many
// downstream sessions it can serve (its tree degree); the degree sequence is
// tree-realizable by construction. Algorithm 4 builds a valid but deep
// chain-shaped tree; Algorithm 5 builds the greedy tree T_G, which Lemma 15
// proves has the minimum possible diameter — the end-to-end latency bound of
// the stream. The example realizes both on the same sequence and compares
// worst-case hop latency.
//
//	go run ./examples/multicasttree
package main

import (
	"fmt"
	"log"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	const n = 200
	// Capacity classes: a few big relays, many mid, mostly leaves.
	d := gen.TreeSequence(n, 99)
	if !graphrealize.IsTreeSequence(d) {
		log.Fatal("generator bug: not a tree sequence")
	}

	chain, chainStats, err := graphrealize.RealizeTree(d, &graphrealize.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	greedy, greedyStats, err := graphrealize.RealizeMinDiameterTree(d, &graphrealize.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("relays: %d, links: %d (every tree has n-1)\n", n, greedy.M())
	fmt.Printf("Algorithm 4 (chain):  diameter %2d hops, %d rounds to build\n",
		chain.Diameter(), chainStats.Rounds)
	fmt.Printf("Algorithm 5 (greedy): diameter %2d hops, %d rounds to build\n",
		greedy.Diameter(), greedyStats.Rounds)
	fmt.Printf("optimal diameter for this capacity profile: %d (Lemma 15)\n",
		graphrealize.MinTreeDiameter(d))

	// Latency: worst-case hops from the best possible source placement.
	fmt.Printf("\nstream latency bound (eccentricity of the best source):\n")
	fmt.Printf("  chain tree:  %d hops\n", bestEccentricity(chain))
	fmt.Printf("  greedy tree: %d hops\n", bestEccentricity(greedy))
}

// bestEccentricity returns min over sources of the worst hop distance — the
// latency of the best placement, which is ⌈diameter/2⌉ for trees.
func bestEccentricity(g *graphrealize.Graph) int {
	best := 1 << 30
	for v := 0; v < g.N; v++ {
		e := eccentricity(g, v)
		if e < best {
			best = e
		}
	}
	return best
}

func eccentricity(g *graphrealize.Graph, src int) int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	ecc := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return ecc
}
