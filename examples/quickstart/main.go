// Quickstart: realize a degree sequence as a distributed overlay.
//
// Each of the six simulated peers knows only its own required degree and the
// address of one other peer (the NCC0 knowledge path). Running the
// distributed Havel–Hakimi of the paper (§4.1) yields an overlay in which
// every peer has exactly its requested degree, and the returned statistics
// are the NCC model's figures of merit: synchronous rounds and messages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphrealize"
)

func main() {
	want := []int{3, 3, 2, 2, 2, 2}
	if !graphrealize.IsGraphic(want) {
		log.Fatal("sequence is not graphic (Erdős–Gallai)")
	}

	g, stats, err := graphrealize.RealizeDegrees(want, &graphrealize.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("requested degrees:", want)
	fmt.Println("realized degrees: ", g.Degrees())
	fmt.Println("edges:")
	for _, e := range g.Edges() {
		fmt.Printf("  %d — %d\n", e[0], e[1])
	}
	fmt.Printf("cost: %d rounds (%d charged to the sorting oracle), %d messages\n",
		stats.Rounds, stats.ChargedRounds, stats.Messages)

	// Non-graphic input? Exact realization refuses; the upper-envelope
	// variant (§4.3) realizes the closest over-approximation instead.
	bad := []int{3, 3, 1, 1}
	if _, _, err := graphrealize.RealizeDegrees(bad, nil); err != nil {
		fmt.Printf("\n%v is not graphic: %v\n", bad, err)
	}
	_, envl, _, err := graphrealize.RealizeUpperEnvelope(bad, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upper envelope realizes it as %v (Σd' ≤ 2Σd)\n", envl)
}
