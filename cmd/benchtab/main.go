// Command benchtab regenerates every table and figure of the reproduction
// (DESIGN.md §4, T1–T11 and F1–F2) by running the distributed algorithms in
// the NCC simulator and printing the measured tables. EXPERIMENTS.md records
// a Full-scale run of this tool.
//
// Usage:
//
//	benchtab                 # all experiments, quick scale
//	benchtab -scale full     # the EXPERIMENTS.md sweep sizes
//	benchtab -only T5,T10    # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphrealize"
	"graphrealize/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. T5,F2); empty = all")
	workers := flag.Int("workers", 0, "parallel realization jobs per sweep (0 = GOMAXPROCS)")
	scheduler := flag.String("scheduler", "barrier", "simulator driver: barrier, pool or flat (identical tables, different wall-clock)")
	flag.Parse()
	harness.SetWorkers(*workers)
	sched, err := graphrealize.ParseScheduler(*scheduler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(2)
	}
	harness.SetScheduler(sched)

	scale := harness.Quick
	switch strings.ToLower(*scaleFlag) {
	case "quick":
	case "full":
		scale = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range harness.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t0 := time.Now()
		tab := e.Run(scale)
		fmt.Printf("%s\n[%s ran in %.2fs]\n\n", tab.Format(), e.ID, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "benchtab: no experiments matched -only")
		os.Exit(2)
	}
	fmt.Printf("benchtab: %d experiments in %.1fs (scale=%s)\n", ran, time.Since(start).Seconds(), *scaleFlag)
}
