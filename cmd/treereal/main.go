// Command treereal realizes a tree degree sequence with Algorithm 4 (chain)
// and Algorithm 5 (minimum-diameter greedy tree) and compares diameters.
// Both algorithms run concurrently through the batch Runner, sharing its
// result cache and deterministic per-job seeding.
//
// Usage:
//
//	treereal -n 64                       # random tree sequence
//	treereal -seq 3,2,2,1,1,1,1,1       # explicit sequence (n=8? check Σd)
//	treereal -n 100 -family caterpillar
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphrealize"
	"graphrealize/internal/gen"
)

func main() {
	seqFlag := flag.String("seq", "", "comma-separated tree degree sequence")
	n := flag.Int("n", 32, "node count for generated families")
	family := flag.String("family", "random", "random|caterpillar|star")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	var d []int
	if *seqFlag != "" {
		for _, s := range strings.Split(*seqFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "treereal: bad entry %q\n", s)
				os.Exit(2)
			}
			d = append(d, v)
		}
	} else {
		switch *family {
		case "random":
			d = gen.TreeSequence(*n, *seed)
		case "caterpillar":
			d = gen.CaterpillarSequence(*n, *n/4)
		case "star":
			d = gen.StarSequence(*n)
		default:
			fmt.Fprintf(os.Stderr, "treereal: unknown family %q\n", *family)
			os.Exit(2)
		}
	}
	fmt.Printf("input: n=%d tree-realizable=%v\n", len(d), graphrealize.IsTreeSequence(d))

	opt := &graphrealize.Options{Seed: *seed}
	results := graphrealize.NewRunner(0).RealizeAll([]graphrealize.Job{
		{Kind: graphrealize.JobChainTree, Seq: d, Opt: opt, Label: "algorithm 4"},
		{Kind: graphrealize.JobMinDiamTree, Seq: d, Opt: opt, Label: "algorithm 5"},
	})
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "treereal: %s: %v\n", res.Job.Label, res.Err)
			os.Exit(1)
		}
	}
	chain, greedy := results[0], results[1]
	fmt.Printf("algorithm 4 (chain):  diameter=%d  %s\n", chain.Graph.Diameter(), chain.Stats)
	fmt.Printf("algorithm 5 (greedy): diameter=%d  %s\n", greedy.Graph.Diameter(), greedy.Stats)
	fmt.Printf("optimal diameter (Lemma 15): %d\n", graphrealize.MinTreeDiameter(d))
}
